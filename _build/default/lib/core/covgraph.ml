(** Code-coverage graphs (paper §3.1).

    A coverage graph is the set of executed basic blocks, keyed by
    (module, offset) with their sizes. Graphs are built from drcov trace
    logs, merged across runs (the "trace log merging" step), and diffed
    to find feature-related or temporally-dead code. *)

type block = { b_module : string; b_off : int; b_size : int }

let block_compare a b = compare (a.b_module, a.b_off) (b.b_module, b.b_off)

let pp_block fmt b =
  Format.fprintf fmt "%s+0x%x(%d)" b.b_module b.b_off b.b_size

type t = { tbl : (string * int, int) Hashtbl.t }

let create () = { tbl = Hashtbl.create 256 }

let add t (b : block) =
  match Hashtbl.find_opt t.tbl (b.b_module, b.b_off) with
  | Some sz when sz >= b.b_size -> ()
  | _ -> Hashtbl.replace t.tbl (b.b_module, b.b_off) b.b_size

let mem t (b : block) = Hashtbl.mem t.tbl (b.b_module, b.b_off)
let mem_off t ~module_ ~off = Hashtbl.mem t.tbl (module_, off)
let cardinal t = Hashtbl.length t.tbl

let blocks t =
  Hashtbl.fold
    (fun (m, off) size acc -> { b_module = m; b_off = off; b_size = size } :: acc)
    t.tbl []
  |> List.sort block_compare

let covered_bytes t = Hashtbl.fold (fun _ size acc -> acc + size) t.tbl 0

let of_log (log : Drcov.log) : t =
  let t = create () in
  List.iter
    (fun (bb : Drcov.bb) ->
      match Drcov.module_of_bb log bb with
      | Some m ->
          add t { b_module = m.Drcov.mi_name; b_off = bb.Drcov.bb_off; b_size = bb.Drcov.bb_size }
      | None -> ())
    log.Drcov.bbs;
  t

(** Trace log merging: union of many runs' coverage. *)
let merge (ts : t list) : t =
  let out = create () in
  List.iter (fun t -> List.iter (add out) (blocks t)) ts;
  out

let of_logs logs = merge (List.map of_log logs)

(** [diff a b] = blocks of [a] that are not in [b] — the core tracediff
    operation: undesired = CovG_undesired \ CovG_wanted, and
    init-only = CovG_init \ CovG_serving. *)
let diff (a : t) (b : t) : block list =
  List.filter (fun blk -> not (mem b blk)) (blocks a)

(** Keep only blocks whose module satisfies [pred] — used to filter out
    shared-library blocks before feature blocking (§3.1, Figure 4). *)
let filter_modules pred (bl : block list) = List.filter (fun b -> pred b.b_module) bl

let is_shared_library name =
  Filename.check_suffix name ".so"

let intersect (a : t) (b : t) : block list = List.filter (mem b) (blocks a)

(** Canonicalize a coverage graph onto the *static* basic blocks of each
    module. Dynamic (drcov-style) blocks are a function of the entry
    point: straight-line execution records one long block even when it
    runs across a jump target that another phase entered directly, so
    two phases can cover the same bytes under different (offset, size)
    keys. Diffing raw dynamic blocks would then flag code as phase-only
    and wipe bytes inside live blocks. [normalize] expands every dynamic
    block into the static CFG blocks whose start it covers, making the
    diff sound. [cfg_of] maps a module name to its recovered CFG (None
    leaves that module's blocks untouched). *)
let normalize ~(cfg_of : string -> Cfg.t option) (t : t) : t =
  let out = create () in
  List.iter
    (fun b ->
      match cfg_of b.b_module with
      | None -> add out b
      | Some cfg ->
          List.iter
            (fun (sb : Cfg.block) ->
              if
                sb.Cfg.bb_size > 0 && sb.Cfg.bb_off >= b.b_off
                && sb.Cfg.bb_off < b.b_off + b.b_size
              then
                add out
                  { b_module = b.b_module; b_off = sb.Cfg.bb_off; b_size = sb.Cfg.bb_size })
            (Cfg.real_blocks cfg))
    (blocks t);
  out

let union_size (a : t) (b : t) =
  let u = merge [ a; b ] in
  cardinal u
