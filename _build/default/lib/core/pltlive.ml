(** PLT-entry liveness analysis (paper §4.2, "Attack surface reduction").

    The SELF linker records every PLT stub (extern function → stub
    offset). Combining that map with coverage graphs tells us which PLT
    entries were *executed*, which were only used during initialization,
    and which remain reachable after DynaCut removes the init-only code —
    reproducing the "43 out of 56 executed PLT entries removed in Nginx"
    analysis and the ret2plt / BROP arguments. *)

type plt_entry = {
  pe_name : string;  (** the libc function the stub resolves to *)
  pe_off : int;  (** module-relative stub offset *)
  pe_executed : bool;
  pe_init_only : bool;  (** executed during init but not during serving *)
}

type report = {
  pr_module : string;
  pr_entries : plt_entry list;
}

let plt_stub_size = Link.plt_stub_size

(** Was any covered block inside [stub, stub + stub_size)? *)
let covers (g : Covgraph.t) ~module_ ~stub =
  List.exists
    (fun (b : Covgraph.block) ->
      b.Covgraph.b_module = module_
      && b.Covgraph.b_off >= stub
      && b.Covgraph.b_off < stub + plt_stub_size)
    (Covgraph.blocks g)

(** Analyse [exe]'s PLT against initialization and serving coverage. *)
let analyse (exe : Self.t) ~(init : Covgraph.t) ~(serving : Covgraph.t) : report =
  let entries =
    List.map
      (fun (name, stub) ->
        let in_init = covers init ~module_:exe.Self.name ~stub in
        let in_serving = covers serving ~module_:exe.Self.name ~stub in
        {
          pe_name = name;
          pe_off = stub;
          pe_executed = in_init || in_serving;
          pe_init_only = in_init && not in_serving;
        })
      exe.Self.plt
  in
  { pr_module = exe.Self.name; pr_entries = entries }

let executed r = List.filter (fun e -> e.pe_executed) r.pr_entries
let removable r = List.filter (fun e -> e.pe_init_only) r.pr_entries

(** The init-only PLT stubs as coverage blocks, so they can be fed
    straight into {!Dynacut.cut}. *)
let removable_blocks (r : report) : Covgraph.block list =
  List.map
    (fun e ->
      { Covgraph.b_module = r.pr_module; b_off = e.pe_off; b_size = plt_stub_size })
    (removable r)

(** Is the PLT entry for [name] (e.g. ["fork"]) still reachable after the
    removal — the BROP-viability question. *)
let survives r name =
  List.exists (fun e -> e.pe_name = name && e.pe_executed && not e.pe_init_only)
    r.pr_entries

let pp fmt (r : report) =
  let ex = executed r and rm = removable r in
  Format.fprintf fmt "%s: %d PLT entries, %d executed, %d init-only (removable)@."
    r.pr_module (List.length r.pr_entries) (List.length ex) (List.length rm);
  List.iter
    (fun e ->
      Format.fprintf fmt "  %-12s off=0x%-6x %s%s@." e.pe_name e.pe_off
        (if e.pe_executed then "executed" else "never-run")
        (if e.pe_init_only then " [init-only: removed]" else ""))
    r.pr_entries
