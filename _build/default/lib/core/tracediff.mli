(** tracediff — undesired code-block identification (paper §3.1,
    Figure 4). *)

type report = {
  undesired : Covgraph.block list;  (** blocks safe to disable *)
  n_undesired_raw : int;  (** candidate count before module filtering *)
  n_wanted : int;  (** size of the wanted coverage *)
  n_total_undesired_cov : int;  (** size of the undesired coverage *)
}

val no_cfg : string -> Cfg.t option
(** The identity CFG provider (no normalization). *)

val feature_blocks :
  ?keep_module:(string -> bool) ->
  ?cfg_of:(string -> Cfg.t option) ->
  wanted:Drcov.log list ->
  undesired:Drcov.log list ->
  unit ->
  report
(** Feature identification: [blk ∈ CovG_undesired ∧ blk ∉ CovG_wanted].
    Multiple logs per side merge first. [keep_module] defaults to
    dropping [*.so] modules; [cfg_of] enables sound static-block
    canonicalization (recommended for any wipe policy). *)

val init_blocks :
  ?keep_module:(string -> bool) ->
  ?cfg_of:(string -> Cfg.t option) ->
  init:Drcov.log ->
  serving:Drcov.log ->
  unit ->
  report
(** Initialization-only identification from the two nudge-protocol dumps:
    [blk ∈ CovG_init ∧ blk ∉ CovG_serving]. *)

val pp_report : Format.formatter -> report -> unit
