(** ROP-gadget census over checkpoint images (paper §4.2, BROP/ret2plt
    analysis).

    A gadget is a short instruction sequence ending in [ret] that an
    attacker can enter at *any* byte offset. We scan every executable
    byte of every mapped page: decode forward up to [max_insns]; if a
    [ret] is reached, the start offset is a gadget. Wiping a feature with
    [int3] (rather than just patching its first byte) destroys these
    gadgets — the quantitative argument for the aggressive policy. *)

type census = {
  g_exec_bytes : int;  (** executable bytes scanned *)
  g_gadgets : int;  (** distinct gadget start offsets *)
  g_syscall_gadgets : int;  (** gadgets containing a [syscall] *)
}

let max_insns = 5

let scan_bytes (data : bytes) : int * int =
  let len = Bytes.length data in
  let gadgets = ref 0 and sys_gadgets = ref 0 in
  for start = 0 to len - 1 do
    let pos = ref start and steps = ref 0 and stop = ref false and has_sys = ref false in
    while not !stop do
      if !steps >= max_insns || !pos >= len then stop := true
      else
        match Decode.decode_at data !pos with
        | Insn.Ret, _ ->
            incr gadgets;
            if !has_sys then incr sys_gadgets;
            stop := true
        | Insn.Syscall, l ->
            has_sys := true;
            pos := !pos + l;
            incr steps
        | (Insn.Jmp _ | Insn.Jcc _ | Insn.Call _ | Insn.Call_r _ | Insn.Jmp_r _ | Insn.Int3 | Insn.Hlt), _
          ->
            stop := true (* control leaves the straight line *)
        | _, l ->
            pos := !pos + l;
            incr steps
        | exception (Decode.Invalid_opcode _ | Decode.Truncated_insn) -> stop := true
    done
  done;
  (!gadgets, !sys_gadgets)

(** Census over all executable pages of an image. *)
let of_image (img : Images.t) : census =
  let exec_bytes = ref 0 and gadgets = ref 0 and sys = ref 0 in
  List.iter
    (fun (v : Images.vma_img) ->
      let prot = Self.prot_of_int v.Images.vi_prot in
      if prot.Self.p_x then begin
        match Images.read_mem img v.Images.vi_start v.Images.vi_len with
        | data ->
            let g, sg = scan_bytes data in
            exec_bytes := !exec_bytes + Bytes.length data;
            gadgets := !gadgets + g;
            sys := !sys + sg
        | exception Not_found -> () (* unmapped / not dumped *)
      end)
    img.Images.mm;
  { g_exec_bytes = !exec_bytes; g_gadgets = !gadgets; g_syscall_gadgets = !sys }

let pp fmt c =
  Format.fprintf fmt "%d gadgets (%d with syscall) in %d executable bytes"
    c.g_gadgets c.g_syscall_gadgets c.g_exec_bytes
