(** The DynaCut orchestrator: freeze → checkpoint → rewrite → restore,
    with a per-stage timing breakdown matching Figure 6's legend
    (checkpoint / disable code w/ int3 / insert sighandler / restore).

    A {!session} wraps one target process tree. [cut] disables a block
    list under a policy; [reenable] restores a previous cut's journal.
    All edits go through the static images in the machine's tmpfs — the
    live process is only ever frozen, reaped, and re-created, never
    patched in place (§3.2.1). *)

type policy = {
  method_ : [ `First_byte | `Wipe | `Unmap_pages ];
  on_trap :
    [ `Kill  (** no handler: default SIGTRAP action terminates (like RAZOR) *)
    | `Terminate  (** handler calls exit(13) *)
    | `Redirect of string
      (** handler redirects saved rip to this (exported) symbol — the
          application's default error path, e.g. the 403 responder *)
    | `Verify  (** handler restores the original byte and logs (§3.2.3) *)
    ];
}

let block_features = { method_ = `First_byte; on_trap = `Kill }

type timings = {
  t_checkpoint : float;
  t_disable : float;
  t_handler : float;
  t_restore : float;
}

let total_time t = t.t_checkpoint +. t.t_disable +. t.t_handler +. t.t_restore

let pp_timings fmt t =
  Format.fprintf fmt
    "checkpoint %.4fs + disable %.4fs + sighandler %.4fs + restore %.4fs = %.4fs"
    t.t_checkpoint t.t_disable t.t_handler t.t_restore (total_time t)

type session = {
  machine : Machine.t;
  root_pid : int;
  handler_lib : Self.t;
  tmpfs : string;  (** tmpfs directory for the images (§3.3) *)
  mutable lib_bases : (int * int64) list;  (** pid -> injected handler base *)
  mutable cut_count : int;
  mutable table_mode : int64;  (** current handler mode for the whole table *)
  mutable table : (int * (int64 * int64) list) list;
      (** pid -> accumulated (trap addr, payload) entries across stacked
          cuts; re-enables remove their entries instead of clearing *)
}

exception Dynacut_error of string

let create (machine : Machine.t) ~(root_pid : int) : session =
  (* the handler library is built against the libc the target linked *)
  let libc =
    match Vfs.find_self machine.Machine.fs "libc.so" with
    | Some l -> l
    | None -> raise (Dynacut_error "libc.so not present in target filesystem")
  in
  {
    machine;
    root_pid;
    handler_lib = Handler.build ~libc ();
    tmpfs = Printf.sprintf "/tmpfs/dynacut-%d" root_pid;
    lib_bases = [];
    cut_count = 0;
    table_mode = Handler.mode_terminate;
    table = [];
  }

let tree_pids (s : session) : int list =
  let rec descendants pid =
    let kids =
      List.filter
        (fun (q : Proc.t) -> q.Proc.parent = pid && Proc.is_live q)
        (Machine.all_procs s.machine)
    in
    pid :: List.concat_map (fun (q : Proc.t) -> descendants q.Proc.pid) kids
  in
  descendants s.root_pid

let image_path s pid = Printf.sprintf "%s/dump-%d.img" s.tmpfs pid

let load_image s pid : Images.t =
  match Vfs.find s.machine.Machine.fs (image_path s pid) with
  | Some blob -> Images.decode blob
  | None -> raise (Dynacut_error (Printf.sprintf "no image for pid %d" pid))

let store_image s (img : Images.t) : unit =
  Vfs.add s.machine.Machine.fs (image_path s img.Images.core.Images.c_pid)
    (Images.encode img)

(* stage 1: freeze the tree and checkpoint every process into tmpfs *)
let stage_checkpoint s pids =
  List.iter (fun pid -> Machine.freeze s.machine ~pid) pids;
  List.iter
    (fun pid ->
      let img = Checkpoint.dump s.machine ~pid ~mode:Checkpoint.Dynacut () in
      store_image s img)
    pids

(* stage 2: apply the block-disabling edits; returns journals *)
let stage_disable s pids ~(blocks : Covgraph.block list) ~method_ :
    Rewriter.journal list =
  List.map
    (fun pid ->
      let img = load_image s pid in
      let patches, img =
        match method_ with
        | `First_byte -> (Rewriter.disable_first_byte img blocks, img)
        | `Wipe -> (Rewriter.wipe_blocks img blocks, img)
        | `Unmap_pages ->
            (* unmap whole pages; partially-covered pages are wiped *)
            let unmaps, img = Rewriter.unmap_block_pages img blocks in
            let still_mapped =
              List.filter
                (fun b ->
                  match Images.find_vma img (Rewriter.block_vaddr img b) with
                  | Some _ -> true
                  | None -> false)
                blocks
            in
            (unmaps @ Rewriter.wipe_blocks img still_mapped, img)
      in
      store_image s img;
      { Rewriter.j_pid = pid; j_patches = patches })
    pids

(* stage 3: inject (or re-use) the handler library, write the policy
   table, register the SIGTRAP sigaction *)
let stage_handler s pids ~(blocks : Covgraph.block list) ~on_trap
    ~(journals : Rewriter.journal list) =
  match on_trap with
  | `Kill -> ()
  | (`Terminate | `Redirect _ | `Verify) as trap ->
      let libc =
        match Vfs.find_self s.machine.Machine.fs "libc.so" with
        | Some l -> l
        | None -> raise (Dynacut_error "libc.so vanished")
      in
      List.iter
        (fun pid ->
          let img = load_image s pid in
          let libc_base =
            match Rewriter.module_base img "libc.so" with
            | Some b -> b
            | None -> raise (Dynacut_error "target does not map libc.so")
          in
          let img, base =
            match Rewriter.module_base img s.handler_lib.Self.name with
            | Some base -> (img, base) (* already injected by an earlier cut *)
            | None ->
                let img, base =
                  Inject.inject img ~lib:s.handler_lib ~deps:[ (libc, libc_base) ] ()
                in
                s.lib_bases <- (pid, base) :: List.remove_assoc pid s.lib_bases;
                (img, base)
          in
          let journal =
            List.find (fun (j : Rewriter.journal) -> j.Rewriter.j_pid = pid) journals
          in
          let exe =
            match Vfs.find_self s.machine.Machine.fs img.Images.core.Images.c_exe with
            | Some e -> e
            | None -> raise (Dynacut_error "target executable not in filesystem")
          in
          let mode, new_entries =
            match trap with
            | `Terminate -> (Handler.mode_terminate, [])
            | `Redirect sym ->
                let target =
                  match Self.find_symbol exe sym with
                  | Some sm -> (
                      match Rewriter.module_base img exe.Self.name with
                      | Some mb -> Int64.add mb (Int64.of_int sm.Self.sym_off)
                      | None -> raise (Dynacut_error "exe module not mapped"))
                  | None ->
                      raise
                        (Dynacut_error
                           (Printf.sprintf "redirect target %s not found in %s" sym
                              exe.Self.name))
                in
                ( Handler.mode_redirect,
                  List.map (fun b -> (Rewriter.block_vaddr img b, target)) blocks )
            | `Verify ->
                ( Handler.mode_verify,
                  List.filter_map
                    (function
                      | Rewriter.Bytes_patch { p_vaddr; p_orig } when Bytes.length p_orig = 1
                        ->
                          Some (p_vaddr, Int64.of_int (Char.code (Bytes.get p_orig 0)))
                      | _ -> None)
                    journal.Rewriter.j_patches )
          in
          (* stacked cuts accumulate entries; the mode is table-global, so
             redirect and verify payloads must not be mixed *)
          let prev = Option.value ~default:[] (List.assoc_opt pid s.table) in
          if prev <> [] && mode <> s.table_mode then
            raise
              (Dynacut_error
                 "cannot stack cuts with different trap modes (redirect vs                   verify); re-enable the earlier cut first");
          let merged =
            List.fold_left
              (fun acc (addr, payload) -> (addr, payload) :: List.remove_assoc addr acc)
              prev new_entries
          in
          s.table <- (pid, merged) :: List.remove_assoc pid s.table;
          s.table_mode <- mode;
          Inject.write_policy img ~lib:s.handler_lib ~base ~mode ~entries:merged;
          let img =
            Rewriter.set_sigaction img ~signum:Abi.sigtrap
              ~handler:(Inject.lib_sym s.handler_lib ~base Handler.sym_handler)
              ~restorer:(Inject.lib_sym s.handler_lib ~base Handler.sym_restorer)
          in
          store_image s img)
        pids

(* stage 4: replace the live processes with the rewritten images *)
let stage_restore s pids =
  List.iter
    (fun pid ->
      Machine.reap s.machine ~pid;
      let p = Restore.restore s.machine (load_image s pid) in
      p.Proc.frozen <- false)
    pids

(** Under the redirect policy, the saved instruction pointer is rewritten
    by a constant target, so the trap site and the error path must share
    a stack frame: "we require that the entries of the default error
    handler and unwanted code features reside within the same function"
    (§3.2.2). Keep only the feature blocks inside the redirect target's
    function — the dispatcher edges. Blocking those entry blocks is
    sufficient to disable the feature; deeper feature code stays mapped
    (use [`Wipe] + [`Kill] when that residue matters). *)
let redirect_filter (s : session) ~(sym : string) (blocks : Covgraph.block list) :
    Covgraph.block list =
  let root = Machine.proc_exn s.machine s.root_pid in
  match Vfs.find_self s.machine.Machine.fs root.Proc.exe_path with
  | None -> blocks
  | Some exe -> (
      match Self.find_symbol exe sym with
      | None -> blocks (* resolution fails loudly later, in stage_handler *)
      | Some target ->
          let bounds = Funcbounds.of_self exe in
          List.filter
            (fun (b : Covgraph.block) ->
              b.Covgraph.b_module = exe.Self.name
              && Funcbounds.same_function bounds b.Covgraph.b_off target.Self.sym_off)
            blocks)

(** Disable [blocks] in the target tree under [policy]. Returns per-pid
    journals (for {!reenable}) and the stage timing breakdown. *)
let cut (s : session) ~(blocks : Covgraph.block list) ~(policy : policy) :
    Rewriter.journal list * timings =
  s.cut_count <- s.cut_count + 1;
  let blocks =
    match policy.on_trap with
    | `Redirect sym -> redirect_filter s ~sym blocks
    | `Kill | `Terminate | `Verify -> blocks
  in
  let pids = tree_pids s in
  let (), t_checkpoint = Stats.time_it (fun () -> stage_checkpoint s pids) in
  let journals, t_disable =
    Stats.time_it (fun () -> stage_disable s pids ~blocks ~method_:policy.method_)
  in
  let (), t_handler =
    Stats.time_it (fun () ->
        stage_handler s pids ~blocks ~on_trap:policy.on_trap ~journals)
  in
  let (), t_restore = Stats.time_it (fun () -> stage_restore s pids) in
  (journals, { t_checkpoint; t_disable; t_handler; t_restore })

(** Restore previously disabled features from their journals: replace the
    [int3] bytes with the original instruction bytes and remap any
    unmapped pages (§3.2.2's bidirectional transformation). *)
let reenable (s : session) (journals : Rewriter.journal list) : timings =
  let pids = tree_pids s in
  let (), t_checkpoint = Stats.time_it (fun () -> stage_checkpoint s pids) in
  let (), t_disable =
    Stats.time_it (fun () ->
        List.iter
          (fun (j : Rewriter.journal) ->
            match List.find_opt (fun pid -> pid = j.Rewriter.j_pid) pids with
            | None -> ()
            | Some pid ->
                let img = load_image s pid in
                Rewriter.restore_bytes img j.Rewriter.j_patches;
                let img = Rewriter.remap img j.Rewriter.j_patches in
                (* drop only this journal's entries from the policy table;
                   entries from other (still active) cuts remain *)
                let restored_addrs =
                  List.filter_map
                    (function
                      | Rewriter.Bytes_patch { p_vaddr; _ } -> Some p_vaddr
                      | Rewriter.Unmap_patch _ -> None)
                    j.Rewriter.j_patches
                in
                let remaining =
                  List.filter
                    (fun (addr, _) -> not (List.mem addr restored_addrs))
                    (Option.value ~default:[] (List.assoc_opt pid s.table))
                in
                s.table <- (pid, remaining) :: List.remove_assoc pid s.table;
                (match
                   ( List.assoc_opt pid s.lib_bases,
                     Rewriter.module_base img s.handler_lib.Self.name )
                 with
                | Some base, Some _ ->
                    let mode =
                      if remaining = [] then Handler.mode_terminate else s.table_mode
                    in
                    Inject.write_policy img ~lib:s.handler_lib ~base ~mode
                      ~entries:remaining
                | _ -> ());
                store_image s img)
          journals)
  in
  let (), t_restore = Stats.time_it (fun () -> stage_restore s pids) in
  { t_checkpoint; t_disable; t_handler = 0.; t_restore }

(** Install a seccomp-style syscall denylist across the tree via image
    rewriting (paper §5): after initialization a server no longer needs
    fork/open/socket-style syscalls, and filtering them out closes the
    kernel attack surface the way Ghavamnia et al. do — but switchable at
    run time, because it is just another image edit. [denied = None]
    clears the filter. *)
let apply_seccomp (s : session) ~(denied : int list option) : timings =
  let pids = tree_pids s in
  let (), t_checkpoint = Stats.time_it (fun () -> stage_checkpoint s pids) in
  let (), t_disable =
    Stats.time_it (fun () ->
        List.iter
          (fun pid ->
            let img = load_image s pid in
            store_image s (Rewriter.set_seccomp img ~denied))
          pids)
  in
  let (), t_restore = Stats.time_it (fun () -> stage_restore s pids) in
  { t_checkpoint; t_disable; t_handler = 0.; t_restore }

(** Read the verifier's false-positive log from the live process
    (§3.2.3): addresses whose blocking was reverted at run time. *)
let verifier_log (s : session) ~(pid : int) : int64 list =
  match (Machine.proc s.machine pid, List.assoc_opt pid s.lib_bases) with
  | Some p, Some base ->
      let _, log = Inject.read_handler_state p ~lib:s.handler_lib ~base in
      log
  | _ -> []

let handler_hits (s : session) ~(pid : int) : int64 =
  match (Machine.proc s.machine pid, List.assoc_opt pid s.lib_bases) with
  | Some p, Some base ->
      let hits, _ = Inject.read_handler_state p ~lib:s.handler_lib ~base in
      hits
  | _ -> 0L
