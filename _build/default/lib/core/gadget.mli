(** ROP-gadget census over checkpoint images (paper §4.2): short
    ret-terminated instruction runs reachable from *any* byte offset.
    Wiping code with int3 destroys them; first-byte patching does not —
    the quantitative side of §3.2.2's policy trade-off. *)

type census = {
  g_exec_bytes : int;
  g_gadgets : int;
  g_syscall_gadgets : int;  (** gadgets containing a [syscall] *)
}

val max_insns : int
(** Gadget length bound (instructions before the [ret]). *)

val scan_bytes : bytes -> int * int
(** (gadgets, syscall gadgets) in one byte region. *)

val of_image : Images.t -> census
(** Census over every executable, dumped VMA of the image. *)

val pp : Format.formatter -> census -> unit
