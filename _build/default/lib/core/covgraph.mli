(** Code-coverage graphs (paper §3.1).

    A coverage graph is a set of executed basic blocks keyed by
    (module, offset); blocks come from drcov trace logs, merge across
    runs, and diff to expose feature-related or temporally-dead code. *)

type block = {
  b_module : string;  (** module name, e.g. ["ngx"] or ["libc.so"] *)
  b_off : int;  (** module-relative offset of the block's first byte *)
  b_size : int;  (** bytes *)
}

val block_compare : block -> block -> int
val pp_block : Format.formatter -> block -> unit

type t

val create : unit -> t

val add : t -> block -> unit
(** Insert a block; a re-insert keeps the larger recorded size. *)

val mem : t -> block -> bool
(** Membership is by (module, offset) — sizes are advisory. *)

val mem_off : t -> module_:string -> off:int -> bool
val cardinal : t -> int

val blocks : t -> block list
(** All blocks, sorted by (module, offset). *)

val covered_bytes : t -> int

val of_log : Drcov.log -> t
val of_logs : Drcov.log list -> t

val merge : t list -> t
(** Trace-log merging: the union of several runs' coverage. *)

val diff : t -> t -> block list
(** [diff a b] = blocks of [a] absent from [b] — the tracediff core:
    undesired = CovG_undesired \ CovG_wanted (§3.1). *)

val intersect : t -> t -> block list

val filter_modules : (string -> bool) -> block list -> block list
(** Keep blocks whose module satisfies the predicate — used to exclude
    shared-library blocks before feature blocking (§3.1, Figure 4). *)

val is_shared_library : string -> bool
(** True for [*.so] module names. *)

val union_size : t -> t -> int

val normalize : cfg_of:(string -> Cfg.t option) -> t -> t
(** Canonicalize coverage onto each module's *static* basic blocks.
    Dynamic (drcov-style) blocks depend on the entry point, so two phases
    can cover the same bytes under different keys; diffing raw dynamic
    blocks can then flag bytes inside live blocks. [normalize] expands
    every dynamic block into the static blocks whose start it covers,
    making diffs sound. Modules for which [cfg_of] returns [None] pass
    through unchanged. *)
