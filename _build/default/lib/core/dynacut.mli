(** The DynaCut orchestrator: freeze → checkpoint → rewrite → restore,
    with Figure 6's stage-timing breakdown.

    Typical use:
    {[
      let session = Dynacut.create machine ~root_pid in
      let journals, t =
        Dynacut.cut session ~blocks
          ~policy:{ method_ = `First_byte; on_trap = `Redirect "err_403" }
      in
      (* ... the feature now answers through the app's error path ... *)
      let _t = Dynacut.reenable session journals in
    ]} *)

type policy = {
  method_ : [ `First_byte  (** int3 in each block's first byte *)
            | `Wipe  (** int3 over every byte (anti-ROP) *)
            | `Unmap_pages  (** drop fully-covered pages; wipe the rest *) ];
  on_trap :
    [ `Kill  (** no handler: default SIGTRAP action terminates *)
    | `Terminate  (** injected handler calls exit(13) *)
    | `Redirect of string
      (** handler rewrites the saved rip to this exported symbol — the
          application's default error path (§3.2.2, Figure 5). Only
          blocks in the target's own function are patched (the paper's
          same-function requirement); blocking those dispatcher-edge
          blocks disables the feature. *)
    | `Verify
      (** over-elimination check (§3.2.3): the handler restores the
          original byte, logs the address, and retries *) ];
}

val block_features : policy
(** [{ method_ = `First_byte; on_trap = `Kill }] — the default of most
    static debloaters. *)

type timings = {
  t_checkpoint : float;
  t_disable : float;
  t_handler : float;
  t_restore : float;
}

val total_time : timings -> float
val pp_timings : Format.formatter -> timings -> unit

type session = {
  machine : Machine.t;
  root_pid : int;
  handler_lib : Self.t;  (** the injectable SIGTRAP handler (§3.3) *)
  tmpfs : string;  (** image directory in the machine fs *)
  mutable lib_bases : (int * int64) list;
  mutable cut_count : int;
  mutable table_mode : int64;
  mutable table : (int * (int64 * int64) list) list;
      (** accumulated policy entries per pid: stacked cuts merge, partial
          re-enables remove only their own entries *)
}

exception Dynacut_error of string

val create : Machine.t -> root_pid:int -> session
(** Build a session for the process tree rooted at [root_pid]; the
    handler library is linked against the target's libc. *)

val tree_pids : session -> int list
(** The root and its live descendants (multi-process support, §3.2.1). *)

val redirect_filter :
  session -> sym:string -> Covgraph.block list -> Covgraph.block list
(** The same-function restriction applied by [cut] under [`Redirect]. *)

val cut :
  session ->
  blocks:Covgraph.block list ->
  policy:policy ->
  Rewriter.journal list * timings
(** Disable [blocks] across the tree: freeze, checkpoint to tmpfs,
    rewrite the images, inject/update the handler, restore. The live
    processes keep their pids, memory and TCP connections. *)

val reenable : session -> Rewriter.journal list -> timings
(** Restore a previous cut: original bytes back, pages remapped, policy
    table emptied. *)

val apply_seccomp : session -> denied:int list option -> timings
(** Install ([Some denylist]) or clear ([None]) a syscall filter across
    the tree by image rewriting — §5's dynamic seccomp. *)

val verifier_log : session -> pid:int -> int64 list
(** Addresses the [`Verify] handler restored at run time — the
    false-positive report of §3.2.3. *)

val handler_hits : session -> pid:int -> int64
(** Number of SIGTRAP deliveries the injected handler served. *)
