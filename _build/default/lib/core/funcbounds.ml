(** Function-boundary recovery over SELF binaries.

    The redirect policy (§3.2.2) requires the blocked blocks and the
    error-path target to live in the same function, so sigreturn lands
    with a consistent stack. Symbols alone don't distinguish function
    entries from in-function labels, so we detect entries the way binary
    tools do: by the compiler's prologue idiom —
    [push rbp; mov rbp, rsp] — which MiniC emits at every function. *)

type t = { fb_starts : int array  (** sorted module-relative offsets *) }

(* encoded prologue: push rbp = 36 05; mov rbp, rsp = 01 54 *)
let prologue = [| 0x36; 0x05; 0x01; 0x54 |]

let of_self (exe : Self.t) : t =
  let starts = ref [] in
  List.iter
    (fun (s : Self.section) ->
      if s.Self.sec_prot.Self.p_x then begin
        let data = s.Self.sec_data in
        let n = Bytes.length data in
        for off = 0 to n - Array.length prologue do
          let matches = ref true in
          Array.iteri
            (fun k b -> if Char.code (Bytes.get data (off + k)) <> b then matches := false)
            prologue;
          if !matches then starts := (s.Self.sec_off + off) :: !starts
        done
      end)
    exe.Self.sections;
  { fb_starts = Array.of_list (List.sort compare !starts) }

(** Module-relative start of the function containing [off], if any. *)
let function_of (t : t) (off : int) : int option =
  let n = Array.length t.fb_starts in
  let rec bsearch lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      if t.fb_starts.(mid) <= off then bsearch (mid + 1) hi (Some t.fb_starts.(mid))
      else bsearch lo (mid - 1) best
  in
  bsearch 0 (n - 1) None

let same_function (t : t) a b =
  match (function_of t a, function_of t b) with
  | Some x, Some y -> x = y
  | _ -> false
