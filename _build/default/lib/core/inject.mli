(** Shared-library injection into checkpoint images (paper §3.3): choose
    a base (user-specified or a randomized-but-unused gap), perform
    global-data and PLT/GOT relocations, create the VMAs, append the
    pages. *)

exception Inject_error of string

val default_hint : int64
(** Start of the search for an unused region. *)

val find_gap : Images.t -> hint:int64 -> size:int -> int64
(** First page-aligned, collision-free address at or after [hint]. *)

val inject :
  Images.t ->
  lib:Self.t ->
  ?base:int64 ->
  deps:(Self.t * int64) list ->
  unit ->
  Images.t * int64
(** Inject [lib] into the image. [deps] supplies the modules (usually
    just libc at its runtime base) that the library's extern GOT
    relocations resolve against. Returns the extended image and the
    chosen base. Raises {!Inject_error} on VMA collision or unresolved
    symbols. *)

val lib_sym : Self.t -> base:int64 -> string -> int64
(** Absolute address of a symbol of the injected library. *)

val write_policy :
  Images.t ->
  lib:Self.t ->
  base:int64 ->
  mode:int64 ->
  entries:(int64 * int64) list ->
  unit
(** Fill the handler's policy area: mode word, table length, and
    (trap address, payload) pairs — redirect targets under
    {!Handler.mode_redirect}, original bytes under
    {!Handler.mode_verify}. *)

val read_handler_state : Proc.t -> lib:Self.t -> base:int64 -> int64 * int64 list
(** (hit count, false-positive log) read back from a live process. *)
