(** Live-basic-block accounting over execution phases (Figure 10):
    "live" = mapped, executable, not disabled; static debloaters are
    flat lines, DynaCut steps at each phase transition. *)

type phase = { ph_label : string; ph_time : float; ph_live : int }
type track = { tr_name : string; tr_total : int; tr_phases : phase list }

val percent : track -> phase -> float
val make : name:string -> total:int -> phase list -> track

val flat : name:string -> total:int -> kept:int -> times:float list -> track
(** A static debloater's constant-live track. *)

val max_live_percent : track -> float
val pp : Format.formatter -> track list -> unit
