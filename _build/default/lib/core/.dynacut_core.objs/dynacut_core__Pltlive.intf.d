lib/core/pltlive.mli: Covgraph Format Self
