lib/core/inject.mli: Images Proc Self
