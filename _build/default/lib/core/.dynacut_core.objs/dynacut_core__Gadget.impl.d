lib/core/gadget.ml: Bytes Decode Format Images Insn List Self
