lib/core/inject.ml: Buffer Bytes Handler Images Int64 List Loader Mem Printf Proc Self
