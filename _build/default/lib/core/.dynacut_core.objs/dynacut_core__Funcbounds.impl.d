lib/core/funcbounds.ml: Array Bytes Char List Self
