lib/core/tracediff.ml: Cfg Covgraph Drcov Format List
