lib/core/tracediff.mli: Cfg Covgraph Drcov Format
