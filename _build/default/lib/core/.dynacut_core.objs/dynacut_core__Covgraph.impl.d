lib/core/covgraph.ml: Cfg Drcov Filename Format Hashtbl List
