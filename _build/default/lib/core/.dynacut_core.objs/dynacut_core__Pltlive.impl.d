lib/core/pltlive.ml: Covgraph Format Link List Self
