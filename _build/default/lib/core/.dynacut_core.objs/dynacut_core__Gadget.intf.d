lib/core/gadget.mli: Format Images
