lib/core/funcbounds.mli: Self
