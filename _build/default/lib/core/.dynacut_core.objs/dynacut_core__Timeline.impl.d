lib/core/timeline.ml: Format List
