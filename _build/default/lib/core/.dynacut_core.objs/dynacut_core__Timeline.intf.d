lib/core/timeline.mli: Format
