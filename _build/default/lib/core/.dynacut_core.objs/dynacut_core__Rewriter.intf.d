lib/core/rewriter.mli: Covgraph Images
