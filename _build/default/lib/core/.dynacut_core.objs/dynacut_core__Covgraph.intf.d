lib/core/covgraph.mli: Cfg Drcov Format
