lib/core/dynacut.ml: Abi Bytes Char Checkpoint Covgraph Format Funcbounds Handler Images Inject Int64 List Machine Option Printf Proc Restore Rewriter Self Stats Vfs
