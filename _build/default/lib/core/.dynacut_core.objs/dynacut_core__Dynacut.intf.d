lib/core/dynacut.mli: Covgraph Format Machine Rewriter Self
