lib/core/rewriter.ml: Buffer Bytes Covgraph Hashtbl Images Int64 List Option Printf String
