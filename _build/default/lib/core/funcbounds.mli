(** Function-boundary recovery by prologue detection
    ([push rbp; mov rbp, rsp]) — backs the redirect policy's
    same-function requirement (§3.2.2). *)

type t = { fb_starts : int array  (** sorted module-relative entries *) }

val of_self : Self.t -> t

val function_of : t -> int -> int option
(** Entry offset of the function containing the given offset. *)

val same_function : t -> int -> int -> bool
