(** Live-basic-block accounting over execution phases (paper Figure 10).

    "Live" means reachable by an attacker: a block counts as live while
    it is mapped, executable, and not disabled. DynaCut's number changes
    at every phase transition; static debloaters (RAZOR, Chisel) are
    horizontal lines because their one-time cut holds for the whole
    lifetime. All percentages are normalized against the vanilla
    binary's total static block count (recovered by {!Cfg}, our Angr
    stand-in). *)

type phase = {
  ph_label : string;
  ph_time : float;  (** x position, arbitrary units (paper uses seconds) *)
  ph_live : int;  (** live blocks during this phase *)
}

type track = { tr_name : string; tr_total : int; tr_phases : phase list }

let percent track ph = 100. *. float_of_int ph.ph_live /. float_of_int track.tr_total

(** Build a DynaCut track from a sequence of (label, time, disabled-block
    count) checkpoints against a [total] static block count and a
    [mapped] count of blocks present in memory at each point. *)
let make ~name ~total phases = { tr_name = name; tr_total = total; tr_phases = phases }

(** A static debloater's flat track: [kept] blocks forever. *)
let flat ~name ~total ~kept ~times =
  {
    tr_name = name;
    tr_total = total;
    tr_phases = List.map (fun t -> { ph_label = ""; ph_time = t; ph_live = kept }) times;
  }

let max_live_percent track =
  List.fold_left (fun acc ph -> max acc (percent track ph)) 0. track.tr_phases

let pp fmt (tracks : track list) =
  List.iter
    (fun tr ->
      Format.fprintf fmt "%s (total %d):@." tr.tr_name tr.tr_total;
      List.iter
        (fun ph ->
          Format.fprintf fmt "  t=%5.1f  live=%6d  (%5.1f%%)  %s@." ph.ph_time ph.ph_live
            (percent tr ph) ph.ph_label)
        tr.tr_phases)
    tracks
