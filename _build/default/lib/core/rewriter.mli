(** The process rewriter (paper §3.2.1, §3.3): every DynaCut code edit is
    applied to a *static checkpoint image*, never to live memory, which
    is what rules out rewriter/target races. All destructive edits are
    journaled so features can be restored later (bidirectional
    transformation, §3.2.2). *)

type patch =
  | Bytes_patch of { p_vaddr : int64; p_orig : bytes }
      (** original bytes at a virtual address, before an int3 overwrite *)
  | Unmap_patch of {
      u_vma : Images.vma_img;
      u_pages : (int64 * bytes) list;
    }  (** a dropped VMA and its page contents *)

type journal = { j_pid : int; j_patches : patch list }

exception Rewrite_error of string

val int3 : char
(** The one-byte trap, ['\xCC']. *)

val module_base : Images.t -> string -> int64 option
(** Base address of a module inside an image (lowest VMA named
    ["<module>:<section>"]). *)

val block_vaddr : Images.t -> Covgraph.block -> int64
(** Absolute address of a (module-relative) coverage block in this
    process. Raises {!Rewrite_error} if the module is not mapped. *)

val disable_first_byte : Images.t -> Covgraph.block list -> patch list
(** Replace the first byte of each block with [int3] — the cheap default
    that blocks a feature entered through its unique first block
    (§3.2.2). *)

val wipe_blocks : Images.t -> Covgraph.block list -> patch list
(** Fill every byte of each block with [int3] — also defeats code reuse
    (ROP) against the disabled feature. *)

val unmap_block_pages :
  Images.t -> Covgraph.block list -> patch list * Images.t
(** Unmap the code pages *fully covered* by the blocks: VMAs split, pages
    dropped from the image. Returns the journal and the rebuilt image. *)

val restore_bytes : Images.t -> patch list -> unit
(** Undo byte patches in place (feature re-enable). *)

val remap : Images.t -> patch list -> Images.t
(** Re-insert unmapped VMAs and their page contents. *)

val set_sigaction :
  Images.t -> signum:int -> handler:int64 -> restorer:int64 -> Images.t
(** Register a signal disposition in the core image — how DynaCut wires
    its injected SIGTRAP handler and restorer (§3.3). *)

val set_seccomp : Images.t -> denied:int list option -> Images.t
(** Install (or clear) a syscall denylist in the core image (§5's
    dynamic seccomp filtering). A filtered syscall delivers SIGSYS. *)

val journal_bytes : journal -> int
(** Total original bytes held by a journal (reporting helper). *)
