(** PLT-entry liveness analysis (paper §4.2): which PLT stubs were
    executed, which only during initialization, and what survives the
    init wipe — the ret2plt / BROP attack-surface accounting. *)

type plt_entry = {
  pe_name : string;
  pe_off : int;
  pe_executed : bool;
  pe_init_only : bool;
}

type report = { pr_module : string; pr_entries : plt_entry list }

val plt_stub_size : int

val covers : Covgraph.t -> module_:string -> stub:int -> bool
(** Did coverage touch the stub's byte range? *)

val analyse : Self.t -> init:Covgraph.t -> serving:Covgraph.t -> report
val executed : report -> plt_entry list
val removable : report -> plt_entry list

val removable_blocks : report -> Covgraph.block list
(** Init-only stubs as coverage blocks, ready for {!Dynacut.cut}. *)

val survives : report -> string -> bool
(** Is the named entry still reachable after init removal? ([survives r
    "fork"] is the BROP-viability question.) *)

val pp : Format.formatter -> report -> unit
