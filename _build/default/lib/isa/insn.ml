(** vx86 instructions.

    The encoding (see {!Encode}) is variable-length, 1-10 bytes, and —
    crucially for DynaCut — opcode [0xCC] is the one-byte trap instruction
    [Int3], so overwriting the *first byte* of any basic block turns it into
    a trap exactly as on x86 (paper §3.2.2). [0x90] is the one-byte [Nop]
    used when wiping needs to keep alignment.

    Displacements and 32-bit immediates are stored as OCaml [int]s but
    encoded as 32-bit two's complement; the encoder rejects out-of-range
    values. *)

type cond =
  | Eq
  | Ne
  | Lt (* signed *)
  | Le
  | Gt
  | Ge
  | Ult (* unsigned *)
  | Ule
  | Ugt
  | Uge

let cond_to_int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Le -> 3
  | Gt -> 4
  | Ge -> 5
  | Ult -> 6
  | Ule -> 7
  | Ugt -> 8
  | Uge -> 9

let cond_of_int = function
  | 0 -> Eq
  | 1 -> Ne
  | 2 -> Lt
  | 3 -> Le
  | 4 -> Gt
  | 5 -> Ge
  | 6 -> Ult
  | 7 -> Ule
  | 8 -> Ugt
  | 9 -> Uge
  | n -> invalid_arg (Printf.sprintf "cond_of_int: %d" n)

(** Logical negation of a condition, used by the compiler's branch lowering. *)
let cond_negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt
  | Ult -> Uge
  | Ule -> Ugt
  | Ugt -> Ule
  | Uge -> Ult

let cond_name = function
  | Eq -> "e"
  | Ne -> "ne"
  | Lt -> "l"
  | Le -> "le"
  | Gt -> "g"
  | Ge -> "ge"
  | Ult -> "b"
  | Ule -> "be"
  | Ugt -> "a"
  | Uge -> "ae"

type t =
  | Nop
  | Int3
  | Hlt
  | Mov_rr of Reg.t * Reg.t (* dst, src *)
  | Mov_ri of Reg.t * int64
  | Load of Reg.t * Reg.t * int (* dst <- [src + disp] (64-bit) *)
  | Store of Reg.t * int * Reg.t (* [dst + disp] <- src (64-bit) *)
  | Load8 of Reg.t * Reg.t * int (* dst <- zx([src + disp], 1 byte) *)
  | Store8 of Reg.t * int * Reg.t (* [dst + disp] <- low byte of src *)
  | Add_rr of Reg.t * Reg.t
  | Add_ri of Reg.t * int
  | Sub_rr of Reg.t * Reg.t
  | Sub_ri of Reg.t * int
  | Imul_rr of Reg.t * Reg.t
  | Idiv_rr of Reg.t * Reg.t (* dst <- dst / src, signed; #DE on zero *)
  | Imod_rr of Reg.t * Reg.t (* dst <- dst mod src, signed; #DE on zero *)
  | And_rr of Reg.t * Reg.t
  | Or_rr of Reg.t * Reg.t
  | Xor_rr of Reg.t * Reg.t
  | Shl_ri of Reg.t * int (* shift count 0..63 *)
  | Shr_ri of Reg.t * int
  | Sar_ri of Reg.t * int
  | Shl_rr of Reg.t * Reg.t
  | Shr_rr of Reg.t * Reg.t
  | Neg of Reg.t
  | Not of Reg.t
  | Cmp_rr of Reg.t * Reg.t
  | Cmp_ri of Reg.t * int
  | Test_rr of Reg.t * Reg.t
  | Jmp of int (* rel to next insn *)
  | Jcc of cond * int
  | Call of int
  | Call_r of Reg.t
  | Jmp_r of Reg.t
  | Ret
  | Push of Reg.t
  | Pop of Reg.t
  | Syscall
  | Lea of Reg.t * int (* dst <- rip_next + disp (PC-relative address) *)

(** Encoded length in bytes; must agree with {!Encode}/{!Decode}. *)
let length = function
  | Nop | Int3 | Hlt | Ret | Syscall -> 1
  | Mov_rr _ | Call_r _ | Jmp_r _ | Push _ | Pop _ | Neg _ | Not _ -> 2
  | Add_rr _ | Sub_rr _ | Imul_rr _ | Idiv_rr _ | Imod_rr _ | And_rr _ | Or_rr _
  | Xor_rr _ | Cmp_rr _ | Test_rr _ | Shl_rr _ | Shr_rr _ ->
      2
  | Shl_ri _ | Shr_ri _ | Sar_ri _ -> 3
  | Jmp _ | Call _ -> 5
  | Jcc _ -> 6
  | Lea _ -> 6
  | Add_ri _ | Sub_ri _ | Cmp_ri _ -> 6
  | Load _ | Store _ | Load8 _ | Store8 _ -> 7
  | Mov_ri _ -> 10

(** Does this instruction end a basic block? Mirrors drcov's notion: any
    control transfer terminates the current block. *)
let is_block_end = function
  | Jmp _ | Jcc _ | Call _ | Call_r _ | Jmp_r _ | Ret | Syscall | Hlt | Int3 ->
      true
  | _ -> false

let pp fmt t =
  let f = Format.fprintf in
  match t with
  | Nop -> f fmt "nop"
  | Int3 -> f fmt "int3"
  | Hlt -> f fmt "hlt"
  | Mov_rr (d, s) -> f fmt "mov %a, %a" Reg.pp d Reg.pp s
  | Mov_ri (d, i) -> f fmt "mov %a, %Ld" Reg.pp d i
  | Load (d, s, o) -> f fmt "mov %a, [%a%+d]" Reg.pp d Reg.pp s o
  | Store (d, o, s) -> f fmt "mov [%a%+d], %a" Reg.pp d o Reg.pp s
  | Load8 (d, s, o) -> f fmt "movzx %a, byte [%a%+d]" Reg.pp d Reg.pp s o
  | Store8 (d, o, s) -> f fmt "mov byte [%a%+d], %a" Reg.pp d o Reg.pp s
  | Add_rr (d, s) -> f fmt "add %a, %a" Reg.pp d Reg.pp s
  | Add_ri (d, i) -> f fmt "add %a, %d" Reg.pp d i
  | Sub_rr (d, s) -> f fmt "sub %a, %a" Reg.pp d Reg.pp s
  | Sub_ri (d, i) -> f fmt "sub %a, %d" Reg.pp d i
  | Imul_rr (d, s) -> f fmt "imul %a, %a" Reg.pp d Reg.pp s
  | Idiv_rr (d, s) -> f fmt "idiv %a, %a" Reg.pp d Reg.pp s
  | Imod_rr (d, s) -> f fmt "imod %a, %a" Reg.pp d Reg.pp s
  | And_rr (d, s) -> f fmt "and %a, %a" Reg.pp d Reg.pp s
  | Or_rr (d, s) -> f fmt "or %a, %a" Reg.pp d Reg.pp s
  | Xor_rr (d, s) -> f fmt "xor %a, %a" Reg.pp d Reg.pp s
  | Shl_ri (d, n) -> f fmt "shl %a, %d" Reg.pp d n
  | Shr_ri (d, n) -> f fmt "shr %a, %d" Reg.pp d n
  | Sar_ri (d, n) -> f fmt "sar %a, %d" Reg.pp d n
  | Shl_rr (d, s) -> f fmt "shl %a, %a" Reg.pp d Reg.pp s
  | Shr_rr (d, s) -> f fmt "shr %a, %a" Reg.pp d Reg.pp s
  | Neg r -> f fmt "neg %a" Reg.pp r
  | Not r -> f fmt "not %a" Reg.pp r
  | Cmp_rr (a, b) -> f fmt "cmp %a, %a" Reg.pp a Reg.pp b
  | Cmp_ri (a, i) -> f fmt "cmp %a, %d" Reg.pp a i
  | Test_rr (a, b) -> f fmt "test %a, %a" Reg.pp a Reg.pp b
  | Jmp d -> f fmt "jmp %+d" d
  | Jcc (c, d) -> f fmt "j%s %+d" (cond_name c) d
  | Call d -> f fmt "call %+d" d
  | Call_r r -> f fmt "call %a" Reg.pp r
  | Jmp_r r -> f fmt "jmp %a" Reg.pp r
  | Ret -> f fmt "ret"
  | Push r -> f fmt "push %a" Reg.pp r
  | Pop r -> f fmt "pop %a" Reg.pp r
  | Syscall -> f fmt "syscall"
  | Lea (d, o) -> f fmt "lea %a, [rip%+d]" Reg.pp d o

let to_string t = Format.asprintf "%a" pp t
