(** vx86 instruction encoder.

    Opcode map (deliberately x86-flavoured where it matters):

    {v
      0x90 nop          0xCC int3         0xF4 hlt          0xC3 ret
      0x01 mov r,r      0x02 mov r,imm64  0x03 load         0x04 store
      0x05 load8        0x06 store8
      0x10 add r,r      0x11 add r,i32    0x12 sub r,r      0x13 sub r,i32
      0x14 imul         0x15 idiv         0x16 imod
      0x17 and          0x18 or           0x19 xor
      0x1A shl r,i8     0x1B shr r,i8     0x1C sar r,i8
      0x1D shl r,r      0x1E shr r,r      0x1F neg          0x20 not
      0x21 cmp r,r      0x22 cmp r,i32    0x23 test r,r
      0x30 jmp rel32    0x31 jcc c,rel32  0x32 call rel32
      0x33 call r       0x34 jmp r        0x36 push         0x37 pop
      0x40 syscall      0x41 lea r,[rip+d32]
    v} *)

exception Encode_error of string

let check_i32 what v =
  if v < -0x8000_0000 || v > 0x7fff_ffff then
    raise (Encode_error (Printf.sprintf "%s: %d does not fit in 32 bits" what v))

let check_shift what v =
  if v < 0 || v > 63 then
    raise (Encode_error (Printf.sprintf "%s: shift count %d out of range" what v))

(* 32-bit two's-complement write of an OCaml int *)
let w_i32 b v = Bytesx.W.u32 b (v land 0xffff_ffff)
let w_reg b r = Bytesx.W.u8 b (Reg.to_int r)
let w_regpair b a c = Bytesx.W.u8 b ((Reg.to_int a lsl 4) lor Reg.to_int c)

let emit (b : Bytesx.W.t) (i : Insn.t) =
  let open Bytesx.W in
  let open Insn in
  match i with
  | Nop -> u8 b 0x90
  | Int3 -> u8 b 0xCC
  | Hlt -> u8 b 0xF4
  | Ret -> u8 b 0xC3
  | Syscall -> u8 b 0x40
  | Mov_rr (d, s) ->
      u8 b 0x01;
      w_regpair b d s
  | Mov_ri (d, imm) ->
      u8 b 0x02;
      w_reg b d;
      u64 b imm
  | Load (d, s, off) ->
      check_i32 "load disp" off;
      u8 b 0x03;
      w_reg b d;
      w_reg b s;
      w_i32 b off
  | Store (d, off, s) ->
      check_i32 "store disp" off;
      u8 b 0x04;
      w_reg b d;
      w_reg b s;
      w_i32 b off
  | Load8 (d, s, off) ->
      check_i32 "load8 disp" off;
      u8 b 0x05;
      w_reg b d;
      w_reg b s;
      w_i32 b off
  | Store8 (d, off, s) ->
      check_i32 "store8 disp" off;
      u8 b 0x06;
      w_reg b d;
      w_reg b s;
      w_i32 b off
  | Add_rr (d, s) ->
      u8 b 0x10;
      w_regpair b d s
  | Add_ri (d, v) ->
      check_i32 "add imm" v;
      u8 b 0x11;
      w_reg b d;
      w_i32 b v
  | Sub_rr (d, s) ->
      u8 b 0x12;
      w_regpair b d s
  | Sub_ri (d, v) ->
      check_i32 "sub imm" v;
      u8 b 0x13;
      w_reg b d;
      w_i32 b v
  | Imul_rr (d, s) ->
      u8 b 0x14;
      w_regpair b d s
  | Idiv_rr (d, s) ->
      u8 b 0x15;
      w_regpair b d s
  | Imod_rr (d, s) ->
      u8 b 0x16;
      w_regpair b d s
  | And_rr (d, s) ->
      u8 b 0x17;
      w_regpair b d s
  | Or_rr (d, s) ->
      u8 b 0x18;
      w_regpair b d s
  | Xor_rr (d, s) ->
      u8 b 0x19;
      w_regpair b d s
  | Shl_ri (d, n) ->
      check_shift "shl" n;
      u8 b 0x1A;
      w_reg b d;
      u8 b n
  | Shr_ri (d, n) ->
      check_shift "shr" n;
      u8 b 0x1B;
      w_reg b d;
      u8 b n
  | Sar_ri (d, n) ->
      check_shift "sar" n;
      u8 b 0x1C;
      w_reg b d;
      u8 b n
  | Shl_rr (d, s) ->
      u8 b 0x1D;
      w_regpair b d s
  | Shr_rr (d, s) ->
      u8 b 0x1E;
      w_regpair b d s
  | Neg r ->
      u8 b 0x1F;
      w_reg b r
  | Not r ->
      u8 b 0x20;
      w_reg b r
  | Cmp_rr (x, y) ->
      u8 b 0x21;
      w_regpair b x y
  | Cmp_ri (x, v) ->
      check_i32 "cmp imm" v;
      u8 b 0x22;
      w_reg b x;
      w_i32 b v
  | Test_rr (x, y) ->
      u8 b 0x23;
      w_regpair b x y
  | Jmp rel ->
      check_i32 "jmp rel" rel;
      u8 b 0x30;
      w_i32 b rel
  | Jcc (c, rel) ->
      check_i32 "jcc rel" rel;
      u8 b 0x31;
      u8 b (cond_to_int c);
      w_i32 b rel
  | Call rel ->
      check_i32 "call rel" rel;
      u8 b 0x32;
      w_i32 b rel
  | Call_r r ->
      u8 b 0x33;
      w_reg b r
  | Jmp_r r ->
      u8 b 0x34;
      w_reg b r
  | Push r ->
      u8 b 0x36;
      w_reg b r
  | Pop r ->
      u8 b 0x37;
      w_reg b r
  | Lea (d, off) ->
      check_i32 "lea disp" off;
      u8 b 0x41;
      w_reg b d;
      w_i32 b off

let to_bytes (i : Insn.t) : bytes =
  let b = Bytesx.W.create ~size:12 () in
  emit b i;
  Bytesx.W.to_bytes b

let program (is : Insn.t list) : bytes =
  let b = Bytesx.W.create ~size:(16 * List.length is) () in
  List.iter (emit b) is;
  Bytesx.W.to_bytes b
