(** vx86 instruction decoder / disassembler.

    The decoder is the component the paper's threat model assumes "correct
    and sound" (§2); ours is total: every byte sequence either decodes to
    exactly one instruction or raises {!Invalid_opcode} (the machine turns
    that into a #UD / SIGILL). Decoding a region that DynaCut wiped with
    [0xCC] yields [Int3] at every offset — the property that defeats
    jump-into-the-middle-of-a-block code reuse (§3.2.1). *)

exception Invalid_opcode of int
exception Truncated_insn

(** [fetch] must return the byte at offset [i] from the decode point or
    raise; the machine wires it to address-space reads with execute
    permission checks. *)
type fetch = int -> int

let sx32 v = if v land 0x8000_0000 <> 0 then v - (1 lsl 32) else v

let decode (fetch : fetch) : Insn.t * int =
  let u8 i = fetch i in
  let reg i = Reg.of_int (fetch i land 0x0f) in
  let regpair i =
    let b = fetch i in
    (Reg.of_int ((b lsr 4) land 0x0f), Reg.of_int (b land 0x0f))
  in
  let i32 i =
    let b0 = fetch i
    and b1 = fetch (i + 1)
    and b2 = fetch (i + 2)
    and b3 = fetch (i + 3) in
    sx32 (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))
  in
  let i64 i =
    let lo = Int64.of_int (i32 i land 0xffff_ffff) in
    let lo = Int64.logand lo 0xffff_ffffL in
    let hi = Int64.of_int (i32 (i + 4) land 0xffff_ffff) in
    let hi = Int64.logand hi 0xffff_ffffL in
    Int64.logor lo (Int64.shift_left hi 32)
  in
  let op = u8 0 in
  let open Insn in
  match op with
  | 0x90 -> (Nop, 1)
  | 0xCC -> (Int3, 1)
  | 0xF4 -> (Hlt, 1)
  | 0xC3 -> (Ret, 1)
  | 0x40 -> (Syscall, 1)
  | 0x01 ->
      let d, s = regpair 1 in
      (Mov_rr (d, s), 2)
  | 0x02 -> (Mov_ri (reg 1, i64 2), 10)
  | 0x03 -> (Load (reg 1, reg 2, i32 3), 7)
  | 0x04 -> (Store (reg 1, i32 3, reg 2), 7)
  | 0x05 -> (Load8 (reg 1, reg 2, i32 3), 7)
  | 0x06 -> (Store8 (reg 1, i32 3, reg 2), 7)
  | 0x10 ->
      let d, s = regpair 1 in
      (Add_rr (d, s), 2)
  | 0x11 -> (Add_ri (reg 1, i32 2), 6)
  | 0x12 ->
      let d, s = regpair 1 in
      (Sub_rr (d, s), 2)
  | 0x13 -> (Sub_ri (reg 1, i32 2), 6)
  | 0x14 ->
      let d, s = regpair 1 in
      (Imul_rr (d, s), 2)
  | 0x15 ->
      let d, s = regpair 1 in
      (Idiv_rr (d, s), 2)
  | 0x16 ->
      let d, s = regpair 1 in
      (Imod_rr (d, s), 2)
  | 0x17 ->
      let d, s = regpair 1 in
      (And_rr (d, s), 2)
  | 0x18 ->
      let d, s = regpair 1 in
      (Or_rr (d, s), 2)
  | 0x19 ->
      let d, s = regpair 1 in
      (Xor_rr (d, s), 2)
  | 0x1A -> (Shl_ri (reg 1, u8 2 land 63), 3)
  | 0x1B -> (Shr_ri (reg 1, u8 2 land 63), 3)
  | 0x1C -> (Sar_ri (reg 1, u8 2 land 63), 3)
  | 0x1D ->
      let d, s = regpair 1 in
      (Shl_rr (d, s), 2)
  | 0x1E ->
      let d, s = regpair 1 in
      (Shr_rr (d, s), 2)
  | 0x1F -> (Neg (reg 1), 2)
  | 0x20 -> (Not (reg 1), 2)
  | 0x21 ->
      let a, b = regpair 1 in
      (Cmp_rr (a, b), 2)
  | 0x22 -> (Cmp_ri (reg 1, i32 2), 6)
  | 0x23 ->
      let a, b = regpair 1 in
      (Test_rr (a, b), 2)
  | 0x30 -> (Jmp (i32 1), 5)
  | 0x31 ->
      let c = u8 1 in
      if c > 9 then raise (Invalid_opcode op)
      else (Jcc (cond_of_int c, i32 2), 6)
  | 0x32 -> (Call (i32 1), 5)
  | 0x33 -> (Call_r (reg 1), 2)
  | 0x34 -> (Jmp_r (reg 1), 2)
  | 0x36 -> (Push (reg 1), 2)
  | 0x37 -> (Pop (reg 1), 2)
  | 0x41 -> (Lea (reg 1, i32 2), 6)
  | op -> raise (Invalid_opcode op)

(** Decode a single instruction out of [buf] at [pos]. *)
let decode_at (buf : bytes) (pos : int) : Insn.t * int =
  decode (fun i ->
      if pos + i >= Bytes.length buf then raise Truncated_insn
      else Char.code (Bytes.get buf (pos + i)))

(** Linear disassembly of a whole byte region, as
    [(offset, insn, len) list]. Stops at the first undecodable byte,
    returning what was decoded so far plus the bad offset. *)
let disassemble (buf : bytes) : (int * Insn.t * int) list * int option =
  let rec go pos acc =
    if pos >= Bytes.length buf then (List.rev acc, None)
    else
      match decode_at buf pos with
      | insn, len -> go (pos + len) ((pos, insn, len) :: acc)
      | exception (Invalid_opcode _ | Truncated_insn) -> (List.rev acc, Some pos)
  in
  go 0 []

let pp_listing fmt (buf : bytes) ~(base : int64) =
  let insns, bad = disassemble buf in
  List.iter
    (fun (off, insn, _len) ->
      Format.fprintf fmt "%16Lx: %a@." (Int64.add base (Int64.of_int off)) Insn.pp insn)
    insns;
  match bad with
  | None -> ()
  | Some pos -> Format.fprintf fmt "%16Lx: <undecodable>@." (Int64.add base (Int64.of_int pos))
