(** Two-pass assembler: symbolic items to section bytes + symbols + relocs.

    The assembler never resolves a symbol itself — every symbolic reference
    becomes a relocation, and the linker ({!Dynacut_elf.Link}) resolves them
    once section layout is known. This mirrors how real toolchains split the
    work, and it is what lets DynaCut later re-do "global data relocations
    and PLT relocations" on an *injected* library (paper §3.3). *)

type reloc_kind =
  | Rel32 of int
      (** pc-relative 32-bit field; payload is the section offset of the
          *next* instruction (branch displacements are relative to it). *)
  | Abs64  (** absolute 64-bit address of the symbol. *)

type reloc = {
  r_section : string;
  r_offset : int;  (** offset of the 4- or 8-byte field within the section *)
  r_kind : reloc_kind;
  r_symbol : string;
  r_addend : int;
}

type symbol = {
  s_name : string;
  s_section : string;
  s_offset : int;
  s_global : bool;
  s_kind : [ `Func | `Object ];
}

type obj = {
  o_name : string;
  o_sections : (string * bytes) list;  (** in layout order *)
  o_symbols : symbol list;
  o_relocs : reloc list;
  o_bss_size : int;
}

(** Assembly items. A [*_sym] item references a symbol that may live in any
    section of any module; the linker resolves it. *)
type item =
  | Ins of Insn.t
  | Jmp_sym of string
  | Jcc_sym of Insn.cond * string
  | Call_sym of string
      (** direct call; if the symbol is extern, the linker routes it
          through a PLT stub *)
  | Lea_sym of Reg.t * string * int
      (** dst <- address of symbol + addend (rip-relative, PIC-safe) *)
  | Mov_sym_abs of Reg.t * string * int
      (** dst <- 64-bit absolute address (rejected in shared objects) *)
  | Label of string
  | Global of string
  | Byte of int
  | Word64 of int64
  | Str of string  (** raw bytes, no terminator *)
  | Strz of string  (** NUL-terminated string *)
  | Zeros of int
  | Addr64 of string * int  (** data word holding address of symbol+addend *)
  | Align of int
  | Section of string
  | Comment of string

exception Asm_error of string

let item_size = function
  | Ins i -> Insn.length i
  | Jmp_sym _ -> 5
  | Jcc_sym _ -> 6
  | Call_sym _ -> 5
  | Lea_sym _ -> 6
  | Mov_sym_abs _ -> 10
  | Label _ | Global _ | Section _ | Comment _ -> 0
  | Byte _ -> 1
  | Word64 _ -> 8
  | Str s -> String.length s
  | Strz s -> String.length s + 1
  | Zeros n -> n
  | Addr64 _ -> 8
  | Align _ -> -1 (* depends on position *)

(** Assemble [items] into an object named [name].

    Section order is the order of first appearance; items before any
    [Section] directive land in [".text"]. *)
let assemble ~name (items : item list) : obj =
  (* pass 1: offsets and symbols *)
  let offsets : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let section_order = ref [] in
  let cur = ref ".text" in
  let touch s =
    if not (Hashtbl.mem offsets s) then (
      Hashtbl.add offsets s 0;
      section_order := s :: !section_order)
  in
  touch ".text";
  let symbols = ref [] in
  let globals = Hashtbl.create 8 in
  let off () = Hashtbl.find offsets !cur in
  let bump n = Hashtbl.replace offsets !cur (off () + n) in
  List.iter
    (fun item ->
      match item with
      | Section s ->
          cur := s;
          touch s
      | Label l ->
          if List.exists (fun s -> s.s_name = l) !symbols then
            raise (Asm_error (Printf.sprintf "%s: duplicate label %s" name l));
          symbols :=
            {
              s_name = l;
              s_section = !cur;
              s_offset = off ();
              s_global = false;
              s_kind = (if !cur = ".text" then `Func else `Object);
            }
            :: !symbols
      | Global g -> Hashtbl.replace globals g ()
      | Align n ->
          let o = off () in
          let pad = (n - (o mod n)) mod n in
          bump pad
      | Comment _ -> ()
      | it -> bump (item_size it))
    items;
  (* pass 2: emit *)
  let buffers : (string, Bytesx.W.t) Hashtbl.t = Hashtbl.create 8 in
  let buf s =
    match Hashtbl.find_opt buffers s with
    | Some b -> b
    | None ->
        let b = Bytesx.W.create () in
        Hashtbl.add buffers s b;
        b
  in
  let relocs = ref [] in
  let cur = ref ".text" in
  let add_reloc ~offset ~kind ~sym ~addend =
    relocs :=
      { r_section = !cur; r_offset = offset; r_kind = kind; r_symbol = sym; r_addend = addend }
      :: !relocs
  in
  List.iter
    (fun item ->
      let b = buf !cur in
      let o = Bytesx.W.length b in
      match item with
      | Section s -> cur := s
      | Label _ | Global _ | Comment _ -> ()
      | Align n ->
          let pad = (n - (o mod n)) mod n in
          (* pad code sections with nop so linear disassembly stays valid *)
          let fill = if !cur = ".text" || !cur = ".plt" then 0x90 else 0x00 in
          for _ = 1 to pad do
            Bytesx.W.u8 b fill
          done
      | Ins i -> Encode.emit b i
      | Jmp_sym s ->
          add_reloc ~offset:(o + 1) ~kind:(Rel32 (o + 5)) ~sym:s ~addend:0;
          Encode.emit b (Insn.Jmp 0)
      | Jcc_sym (c, s) ->
          add_reloc ~offset:(o + 2) ~kind:(Rel32 (o + 6)) ~sym:s ~addend:0;
          Encode.emit b (Insn.Jcc (c, 0))
      | Call_sym s ->
          add_reloc ~offset:(o + 1) ~kind:(Rel32 (o + 5)) ~sym:s ~addend:0;
          Encode.emit b (Insn.Call 0)
      | Lea_sym (r, s, a) ->
          add_reloc ~offset:(o + 2) ~kind:(Rel32 (o + 6)) ~sym:s ~addend:a;
          Encode.emit b (Insn.Lea (r, 0))
      | Mov_sym_abs (r, s, a) ->
          add_reloc ~offset:(o + 2) ~kind:Abs64 ~sym:s ~addend:a;
          Encode.emit b (Insn.Mov_ri (r, 0L))
      | Byte v -> Bytesx.W.u8 b (v land 0xff)
      | Word64 v -> Bytesx.W.u64 b v
      | Str s -> Bytesx.W.string b s
      | Strz s ->
          Bytesx.W.string b s;
          Bytesx.W.u8 b 0
      | Zeros n ->
          for _ = 1 to n do
            Bytesx.W.u8 b 0
          done
      | Addr64 (s, a) ->
          add_reloc ~offset:o ~kind:Abs64 ~sym:s ~addend:a;
          Bytesx.W.u64 b 0L)
    items;
  let symbols =
    List.rev_map
      (fun s -> { s with s_global = Hashtbl.mem globals s.s_name })
      !symbols
  in
  let sections =
    List.rev_map
      (fun s ->
        ( s,
          match Hashtbl.find_opt buffers s with
          | Some b -> Bytesx.W.to_bytes b
          | None -> Bytes.create 0 ))
      !section_order
  in
  (* sanity: pass-1 sizes must match pass-2 emission *)
  List.iter
    (fun (s, b) ->
      let want = Hashtbl.find offsets s in
      if Bytes.length b <> want then
        raise
          (Asm_error
             (Printf.sprintf "%s: section %s size mismatch pass1=%d pass2=%d" name s want
                (Bytes.length b))))
    sections;
  { o_name = name; o_sections = sections; o_symbols = symbols; o_relocs = List.rev !relocs; o_bss_size = 0 }

let find_symbol obj n = List.find_opt (fun s -> s.s_name = n) obj.o_symbols

(** All symbols referenced by relocations but not defined in the object —
    the linker must resolve these against dependencies (e.g. libc.so). *)
let undefined_symbols obj =
  let defined = List.map (fun s -> s.s_name) obj.o_symbols in
  obj.o_relocs
  |> List.filter_map (fun r ->
         if List.mem r.r_symbol defined then None else Some r.r_symbol)
  |> List.sort_uniq compare
