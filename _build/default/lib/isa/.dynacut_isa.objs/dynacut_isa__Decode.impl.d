lib/isa/decode.ml: Bytes Char Format Insn Int64 List Reg
