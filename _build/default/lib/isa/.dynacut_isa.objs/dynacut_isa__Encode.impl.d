lib/isa/encode.ml: Bytesx Insn List Printf Reg
