lib/isa/asm.ml: Bytes Bytesx Encode Hashtbl Insn List Printf Reg String
