(** MiniC code generator: AST to {!Asm} items.

    A deliberately simple stack-machine lowering: every expression leaves
    its value in [rax], binary operators evaluate left-push-right-pop.
    Correctness over cleverness — the point is the *shape* of the output:

    - each [Switch] becomes a compare/branch dispatcher whose case bodies
      and default label all live in one function (the paper's §3.2.2
      precondition for signal-handler IP redirection);
    - every call to an undefined (libc) function becomes a [Call_sym] that
      the linker routes through a PLT stub;
    - [Label] statements become exported symbols so experiments can name
      redirect targets and feature entry points. *)

open Ast

exception Compile_error of string

type ctx = {
  unit_name : string;
  func_align : int;
  mutable items : Asm.item list;  (** reversed *)
  mutable fresh : int;
  strings : (string, string) Hashtbl.t;  (** literal -> rodata label *)
  mutable locals : (string * int) list;  (** name -> slot index *)
  mutable nslots : int;
  mutable breaks : string list;
  mutable conts : string list;
  mutable fn : string;
}

let emit c it = c.items <- it :: c.items
let ins c i = emit c (Asm.Ins i)

let fresh_label c hint =
  c.fresh <- c.fresh + 1;
  Printf.sprintf ".L$%s$%s%d" c.fn hint c.fresh

let str_label c lit =
  match Hashtbl.find_opt c.strings lit with
  | Some l -> l
  | None ->
      let l = Printf.sprintf ".str$%d" (Hashtbl.length c.strings) in
      Hashtbl.add c.strings lit l;
      l

let slot_of c name = List.assoc_opt name c.locals

let add_local c name =
  match slot_of c name with
  | Some s -> s
  | None ->
      let s = c.nslots in
      c.nslots <- s + 1;
      c.locals <- (name, s) :: c.locals;
      s

let slot_disp slot = -8 * (slot + 1)

(* pre-scan a body to count local slots (so the prologue can reserve them
   before any Decl executes) *)
let rec scan_stmt c = function
  | Decl (n, _) -> ignore (add_local c n)
  | If (_, a, b) ->
      List.iter (scan_stmt c) a;
      List.iter (scan_stmt c) b
  | While (_, b) -> List.iter (scan_stmt c) b
  | Switch (_, cases, dflt) ->
      List.iter (fun (_, b) -> List.iter (scan_stmt c) b) cases;
      List.iter (scan_stmt c) dflt
  | Assign _ | Store _ | Return _ | Expr _ | Break | Continue | Label _ -> ()

let is_cmp = function
  | Lt | Le | Gt | Ge | Ult | Ugt | Eq | Ne -> true
  | _ -> false

let cond_of_binop = function
  | Lt -> Insn.Lt
  | Le -> Insn.Le
  | Gt -> Insn.Gt
  | Ge -> Insn.Ge
  | Ult -> Insn.Ult
  | Ugt -> Insn.Ugt
  | Eq -> Insn.Eq
  | Ne -> Insn.Ne
  | _ -> assert false

let rec compile_expr c (e : expr) =
  match e with
  | Int v -> ins c (Insn.Mov_ri (Reg.Rax, v))
  | Str lit -> emit c (Asm.Lea_sym (Reg.Rax, str_label c lit, 0))
  | Var n -> (
      match slot_of c n with
      | Some s -> ins c (Insn.Load (Reg.Rax, Reg.Rbp, slot_disp s))
      | None ->
          (* 64-bit global variable *)
          emit c (Asm.Lea_sym (Reg.R10, n, 0));
          ins c (Insn.Load (Reg.Rax, Reg.R10, 0)))
  | Addr n -> emit c (Asm.Lea_sym (Reg.Rax, n, 0))
  | Unop (Neg, e) ->
      compile_expr c e;
      ins c (Insn.Neg Reg.Rax)
  | Unop (Bitnot, e) ->
      compile_expr c e;
      ins c (Insn.Not Reg.Rax)
  | Unop (Lognot, e) ->
      compile_expr c e;
      let l = fresh_label c "not" in
      ins c (Insn.Cmp_ri (Reg.Rax, 0));
      ins c (Insn.Mov_ri (Reg.Rax, 1L));
      emit c (Asm.Jcc_sym (Insn.Eq, l));
      ins c (Insn.Mov_ri (Reg.Rax, 0L));
      emit c (Asm.Label l)
  | Binop (Land, a, b) ->
      let lfalse = fresh_label c "andF" and lend = fresh_label c "andE" in
      compile_expr c a;
      ins c (Insn.Test_rr (Reg.Rax, Reg.Rax));
      emit c (Asm.Jcc_sym (Insn.Eq, lfalse));
      compile_expr c b;
      ins c (Insn.Test_rr (Reg.Rax, Reg.Rax));
      emit c (Asm.Jcc_sym (Insn.Eq, lfalse));
      ins c (Insn.Mov_ri (Reg.Rax, 1L));
      emit c (Asm.Jmp_sym lend);
      emit c (Asm.Label lfalse);
      ins c (Insn.Mov_ri (Reg.Rax, 0L));
      emit c (Asm.Label lend)
  | Binop (Lor, a, b) ->
      let ltrue = fresh_label c "orT" and lend = fresh_label c "orE" in
      compile_expr c a;
      ins c (Insn.Test_rr (Reg.Rax, Reg.Rax));
      emit c (Asm.Jcc_sym (Insn.Ne, ltrue));
      compile_expr c b;
      ins c (Insn.Test_rr (Reg.Rax, Reg.Rax));
      emit c (Asm.Jcc_sym (Insn.Ne, ltrue));
      ins c (Insn.Mov_ri (Reg.Rax, 0L));
      emit c (Asm.Jmp_sym lend);
      emit c (Asm.Label ltrue);
      ins c (Insn.Mov_ri (Reg.Rax, 1L));
      emit c (Asm.Label lend)
  | Binop (op, a, b) when is_cmp op ->
      binop_operands c a b;
      let l = fresh_label c "cc" in
      ins c (Insn.Cmp_rr (Reg.Rax, Reg.Rcx));
      ins c (Insn.Mov_ri (Reg.Rax, 1L));
      emit c (Asm.Jcc_sym (cond_of_binop op, l));
      ins c (Insn.Mov_ri (Reg.Rax, 0L));
      emit c (Asm.Label l)
  | Binop (op, a, b) ->
      binop_operands c a b;
      let i =
        match op with
        | Add -> Insn.Add_rr (Reg.Rax, Reg.Rcx)
        | Sub -> Insn.Sub_rr (Reg.Rax, Reg.Rcx)
        | Mul -> Insn.Imul_rr (Reg.Rax, Reg.Rcx)
        | Div -> Insn.Idiv_rr (Reg.Rax, Reg.Rcx)
        | Mod -> Insn.Imod_rr (Reg.Rax, Reg.Rcx)
        | Band -> Insn.And_rr (Reg.Rax, Reg.Rcx)
        | Bor -> Insn.Or_rr (Reg.Rax, Reg.Rcx)
        | Bxor -> Insn.Xor_rr (Reg.Rax, Reg.Rcx)
        | Shl -> Insn.Shl_rr (Reg.Rax, Reg.Rcx)
        | Shr -> Insn.Shr_rr (Reg.Rax, Reg.Rcx)
        | _ -> assert false
      in
      ins c i
  | Deref (W64, a) ->
      compile_expr c a;
      ins c (Insn.Load (Reg.Rax, Reg.Rax, 0))
  | Deref (W8, a) ->
      compile_expr c a;
      ins c (Insn.Load8 (Reg.Rax, Reg.Rax, 0))
  | Call (f, args) ->
      compile_args c args;
      emit c (Asm.Call_sym f)
  | Callp (fp, args) ->
      compile_expr c fp;
      ins c (Insn.Push Reg.Rax);
      compile_args c args ~extra_pop:(fun () -> ins c (Insn.Pop Reg.R11));
      ins c (Insn.Call_r Reg.R11)

(* evaluate a then b, leaving a in rax, b in rcx *)
and binop_operands c a b =
  compile_expr c a;
  ins c (Insn.Push Reg.Rax);
  compile_expr c b;
  ins c (Insn.Mov_rr (Reg.Rcx, Reg.Rax));
  ins c (Insn.Pop Reg.Rax)

(* Push all arg values, then pop them into the argument registers in
   reverse. [extra_pop] runs after args are popped, before the call —
   used by Callp to fetch the saved function pointer. *)
and compile_args c ?(extra_pop = fun () -> ()) args =
  let n = List.length args in
  if n > List.length Reg.args then
    raise (Compile_error (Printf.sprintf "%s: too many arguments (%d)" c.fn n));
  List.iter
    (fun a ->
      compile_expr c a;
      ins c (Insn.Push Reg.Rax))
    args;
  List.iteri
    (fun i _ ->
      let reg = List.nth Reg.args (n - 1 - i) in
      ins c (Insn.Pop reg))
    args;
  extra_pop ()

let rec compile_stmt c (s : stmt) =
  match s with
  | Decl (n, e) ->
      let slot = add_local c n in
      compile_expr c e;
      ins c (Insn.Store (Reg.Rbp, slot_disp slot, Reg.Rax))
  | Assign (n, e) -> (
      compile_expr c e;
      match slot_of c n with
      | Some slot -> ins c (Insn.Store (Reg.Rbp, slot_disp slot, Reg.Rax))
      | None ->
          emit c (Asm.Lea_sym (Reg.R10, n, 0));
          ins c (Insn.Store (Reg.R10, 0, Reg.Rax)))
  | Store (w, addr, value) -> (
      compile_expr c addr;
      ins c (Insn.Push Reg.Rax);
      compile_expr c value;
      ins c (Insn.Mov_rr (Reg.Rcx, Reg.Rax));
      ins c (Insn.Pop Reg.Rax);
      match w with
      | W64 -> ins c (Insn.Store (Reg.Rax, 0, Reg.Rcx))
      | W8 -> ins c (Insn.Store8 (Reg.Rax, 0, Reg.Rcx)))
  | If (cond, then_, else_) ->
      let lelse = fresh_label c "else" and lend = fresh_label c "fi" in
      compile_expr c cond;
      ins c (Insn.Test_rr (Reg.Rax, Reg.Rax));
      emit c (Asm.Jcc_sym (Insn.Eq, lelse));
      List.iter (compile_stmt c) then_;
      emit c (Asm.Jmp_sym lend);
      emit c (Asm.Label lelse);
      List.iter (compile_stmt c) else_;
      emit c (Asm.Label lend)
  | While (cond, body) ->
      let ltop = fresh_label c "loop" and lend = fresh_label c "pool" in
      c.breaks <- lend :: c.breaks;
      c.conts <- ltop :: c.conts;
      emit c (Asm.Label ltop);
      compile_expr c cond;
      ins c (Insn.Test_rr (Reg.Rax, Reg.Rax));
      emit c (Asm.Jcc_sym (Insn.Eq, lend));
      List.iter (compile_stmt c) body;
      emit c (Asm.Jmp_sym ltop);
      emit c (Asm.Label lend);
      c.breaks <- List.tl c.breaks;
      c.conts <- List.tl c.conts
  | Switch (scrut, cases, dflt) ->
      let lend = fresh_label c "esw" in
      let ldflt = fresh_label c "dfl" in
      let case_labels = List.map (fun (k, _) -> (k, fresh_label c "case")) cases in
      compile_expr c scrut;
      (* the dispatcher: a chain of cmp/je — one distinct edge per feature *)
      List.iter
        (fun (k, lbl) ->
          if k < -0x8000_0000 || k > 0x7fff_ffff then
            raise (Compile_error "switch case key out of 32-bit range");
          ins c (Insn.Cmp_ri (Reg.Rax, k));
          emit c (Asm.Jcc_sym (Insn.Eq, lbl)))
        case_labels;
      emit c (Asm.Jmp_sym ldflt);
      List.iter2
        (fun (_, body) (_, lbl) ->
          emit c (Asm.Label lbl);
          List.iter (compile_stmt c) body;
          emit c (Asm.Jmp_sym lend))
        cases case_labels;
      emit c (Asm.Label ldflt);
      List.iter (compile_stmt c) dflt;
      emit c (Asm.Label lend)
  | Return e ->
      compile_expr c e;
      emit c (Asm.Jmp_sym (Printf.sprintf ".L$%s$ret" c.fn))
  | Expr e -> compile_expr c e
  | Break -> (
      match c.breaks with
      | l :: _ -> emit c (Asm.Jmp_sym l)
      | [] -> raise (Compile_error (c.fn ^ ": break outside loop")))
  | Continue -> (
      match c.conts with
      | l :: _ -> emit c (Asm.Jmp_sym l)
      | [] -> raise (Compile_error (c.fn ^ ": continue outside loop")))
  | Label name ->
      emit c (Asm.Global name);
      emit c (Asm.Label name)

let compile_func c (f : func) =
  c.fn <- f.fname;
  if List.length f.params > List.length Reg.args then
    raise
      (Compile_error
         (Printf.sprintf "%s: too many parameters (%d; max %d)" f.fname
            (List.length f.params) (List.length Reg.args)));
  c.locals <- [];
  c.nslots <- 0;
  c.breaks <- [];
  c.conts <- [];
  List.iter (fun p -> ignore (add_local c p)) f.params;
  List.iter (scan_stmt c) f.body;
  emit c (Asm.Align c.func_align);
  emit c (Asm.Global f.fname);
  emit c (Asm.Label f.fname);
  (* prologue *)
  ins c (Insn.Push Reg.Rbp);
  ins c (Insn.Mov_rr (Reg.Rbp, Reg.Rsp));
  if c.nslots > 0 then ins c (Insn.Sub_ri (Reg.Rsp, 8 * c.nslots));
  List.iteri
    (fun i p ->
      let slot = match slot_of c p with Some s -> s | None -> assert false in
      ins c (Insn.Store (Reg.Rbp, slot_disp slot, List.nth Reg.args i)))
    f.params;
  List.iter (compile_stmt c) f.body;
  (* implicit return 0 *)
  ins c (Insn.Mov_ri (Reg.Rax, 0L));
  emit c (Asm.Label (Printf.sprintf ".L$%s$ret" c.fn));
  ins c (Insn.Mov_rr (Reg.Rsp, Reg.Rbp));
  ins c (Insn.Pop Reg.Rbp);
  ins c Insn.Ret

let compile_global c (g : global) =
  emit c (Asm.Align 8);
  emit c (Asm.Global g.gname);
  emit c (Asm.Label g.gname);
  match g.ginit with
  | Zeroed n -> emit c (Asm.Zeros n)
  | Qwords ws -> List.iter (fun w -> emit c (Asm.Word64 w)) ws
  | Gbytes s -> emit c (Asm.Str s)
  | Gaddrs syms -> List.iter (fun s -> emit c (Asm.Addr64 (s, 0))) syms

(** Compile a unit to assembler items (text, rodata, data). Extra raw
    items (e.g. a crt0 [_start]) can be appended by the caller before
    assembly.

    [func_align] aligns every function entry; the default (16) matches
    ordinary compilers. Passing 4096 gives the paper's §5 "separate each
    feature-related code block into separate memory pages" layout, which
    lets DynaCut unload a feature by unmapping its page — faster than
    patching every block with int3. *)
let compile_unit ?(func_align = 16) (u : comp_unit) : Asm.item list =
  let c =
    {
      unit_name = u.cu_name;
      func_align;
      items = [];
      fresh = 0;
      strings = Hashtbl.create 32;
      locals = [];
      nslots = 0;
      breaks = [];
      conts = [];
      fn = "";
    }
  in
  emit c (Asm.Section ".text");
  List.iter (compile_func c) u.funcs;
  (* string literals *)
  emit c (Asm.Section ".rodata");
  Hashtbl.iter
    (fun lit lbl ->
      emit c (Asm.Label lbl);
      emit c (Asm.Strz lit))
    c.strings;
  emit c (Asm.Section ".data");
  List.iter (compile_global c) u.globals;
  ignore c.unit_name;
  List.rev c.items

let assemble_unit ?func_align (u : comp_unit) ?(extra_items = []) () : Asm.obj =
  Asm.assemble ~name:u.cu_name (compile_unit ?func_align u @ extra_items)
