(** Thin combinator layer over the MiniC AST — the guest applications in
    {!Dynacut_apps} are written against this. Operators are suffixed with
    [:] to avoid shadowing OCaml's arithmetic. *)

open Ast

let i n = Int (Int64.of_int n)
let i64 n = Int n
let v n = Var n
let s lit = Str lit
let addr n = Addr n
let call f args = Call (f, args)
let callp fp args = Callp (fp, args)
let load64 a = Deref (W64, a)
let load8 a = Deref (W8, a)

let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Mod, a, b)
let ( &: ) a b = Binop (Band, a, b)
let ( |: ) a b = Binop (Bor, a, b)
let ( ^: ) a b = Binop (Bxor, a, b)
let ( <<: ) a b = Binop (Shl, a, b)
let ( >>: ) a b = Binop (Shr, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( ==: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( &&: ) a b = Binop (Land, a, b)
let ( ||: ) a b = Binop (Lor, a, b)
let not_ a = Unop (Lognot, a)
let neg a = Unop (Neg, a)

let decl n e = Decl (n, e)
let set n e = Assign (n, e)
let store64 a value = Store (W64, a, value)
let store8 a value = Store (W8, a, value)
let if_ c t e = If (c, t, e)
let when_ c t = If (c, t, [])
let while_ c b = While (c, b)
let forever b = While (Int 1L, b)
let switch e cases ~default = Switch (e, cases, default)
let ret e = Return e
let ret0 = Return (Int 0L)
let expr e = Expr e
let do_ f args = Expr (Call (f, args))
let break_ = Break
let continue_ = Continue
let label n = Label n

let func fname params body = { fname; params; body }
let global_zero gname n = { gname; ginit = Zeroed n }
let global_q gname ws = { gname; ginit = Qwords ws }
let global_bytes gname sdata = { gname; ginit = Gbytes sdata }
let global_addrs gname syms = { gname; ginit = Gaddrs syms }

let unit_ cu_name ?(globals = []) funcs = { cu_name; funcs; globals }
