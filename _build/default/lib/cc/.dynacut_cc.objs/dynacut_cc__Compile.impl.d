lib/cc/compile.ml: Asm Ast Hashtbl Insn List Printf Reg
