lib/cc/dsl.ml: Ast Int64
