lib/cc/ast.ml:
