(** MiniC — the small imperative language the guest applications are
    written in.

    MiniC exists because the paper's workloads (Nginx, Lighttpd, Redis,
    SPEC INT) are real compiled programs whose *binary structure* matters
    to DynaCut: request dispatchers must compile to compare-and-branch
    chains inside one function, features must occupy distinct basic
    blocks, initialization must be ordinary code, and libc calls must go
    through PLT stubs. Compiling MiniC through {!Compile} yields exactly
    that structure. *)

type width = W8 | W64

type unop =
  | Neg
  | Lognot  (** C's [!]: 1 if zero, else 0 *)
  | Bitnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Ult
  | Ugt
  | Eq
  | Ne
  | Land  (** short-circuit && *)
  | Lor  (** short-circuit || *)

type expr =
  | Int of int64
  | Str of string  (** address of a NUL-terminated literal in .rodata *)
  | Var of string  (** local, parameter, or 64-bit global *)
  | Addr of string  (** address of a global symbol *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Callp of expr * expr list  (** indirect call through a function pointer *)
  | Deref of width * expr  (** load through a pointer *)

type stmt =
  | Decl of string * expr  (** introduce a local with an initial value *)
  | Assign of string * expr
  | Store of width * expr * expr  (** [Store (w, addr, value)] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Switch of expr * (int * stmt list) list * stmt list
      (** cases do NOT fall through; compiles to the cmp/branch dispatcher
          pattern DynaCut's feature blocking relies on (§3.1) *)
  | Return of expr
  | Expr of expr
  | Break
  | Continue
  | Label of string
      (** named point inside the function, exported as a symbol — used to
          mark default error paths for DynaCut's redirect policy (§3.2.2) *)

type func = { fname : string; params : string list; body : stmt list }

type ginit =
  | Zeroed of int  (** size in bytes (goes to .bss-like zeroed .data) *)
  | Qwords of int64 list
  | Gbytes of string
  | Gaddrs of string list  (** table of symbol addresses (function tables) *)

type global = { gname : string; ginit : ginit }

type comp_unit = { cu_name : string; funcs : func list; globals : global list }
