(** Figure 4: "Diff-based feature-related basic block discovery: our
    tracediff.py tool automatically calculates undesired basic blocks
    using different execution traces."

    The paper's figure is a screenshot of the tool's output on
    Redis-server, showing libc.so blocks being excluded and the
    feature-related block locations in the binary. We regenerate that
    output for rkv's SET feature, annotating each block with its
    enclosing symbol. *)

type result = {
  f4_raw : int;  (** undesired candidates before library filtering *)
  f4_filtered : int;
  f4_blocks : (Covgraph.block * string) list;  (** block, enclosing symbol *)
}

let enclosing_symbol (exe : Self.t) (off : int) : string =
  let best =
    List.fold_left
      (fun acc (s : Self.sym) ->
        if s.Self.sym_off <= off && s.Self.sym_kind = Self.Func
           && not (String.length s.Self.sym_name > 2 && String.sub s.Self.sym_name 0 2 = ".L")
        then
          match acc with
          | Some (b : Self.sym) when b.Self.sym_off >= s.Self.sym_off -> acc
          | _ -> Some s
        else acc)
      None exe.Self.symbols
  in
  match best with
  | Some s -> Printf.sprintf "%s+0x%x" s.Self.sym_name (off - s.Self.sym_off)
  | None -> "?"

let run fmt =
  Common.section fmt "Figure 4: tracediff output (rkv, SET feature)";
  let cfg_of = Common.cfg_of_app Workload.rkv in
  let _, wanted =
    Workload.trace_requests ~app:Workload.rkv ~requests:Workload.kv_wanted
      ~nudge_at_ready:true ()
  in
  let _, undesired =
    Workload.trace_requests ~app:Workload.rkv ~requests:Workload.kv_undesired
      ~nudge_at_ready:true ()
  in
  let report = Tracediff.feature_blocks ~cfg_of ~wanted:[ wanted ] ~undesired:[ undesired ] () in
  let exe = Common.app_exe Workload.rkv in
  Format.fprintf fmt "$ dynacut tracediff -w wanted.drcov -u undesired.drcov@.";
  Format.fprintf fmt
    "undesired coverage: %d blocks; wanted coverage: %d blocks@."
    report.Tracediff.n_total_undesired_cov report.Tracediff.n_wanted;
  Format.fprintf fmt
    "diff: %d candidate blocks, %d after excluding shared-library (libc.so) blocks@.@."
    report.Tracediff.n_undesired_raw
    (List.length report.Tracediff.undesired);
  Format.fprintf fmt "feature-related code block locations in rkv:@.";
  let annotated =
    List.map (fun (b : Covgraph.block) -> (b, enclosing_symbol exe b.Covgraph.b_off))
      report.Tracediff.undesired
  in
  List.iter
    (fun ((b : Covgraph.block), sym) ->
      Format.fprintf fmt "  0x%06x  %3d bytes   %s@." b.Covgraph.b_off b.Covgraph.b_size sym)
    annotated;
  Format.fprintf fmt "@.";
  {
    f4_raw = report.Tracediff.n_undesired_raw;
    f4_filtered = List.length report.Tracediff.undesired;
    f4_blocks = annotated;
  }
