(** Figure 9: number of executed basic blocks, number of
    initialization-only basic blocks removed by DynaCut, total static
    basic blocks (Angr in the paper, {!Cfg} here), binary code size, and
    the size of the removed initialization code, per application. *)

type row = {
  f9_app : string;
  f9_executed : int;  (** deduplicated executed blocks in the app binary *)
  f9_removed : int;  (** init-only blocks removed *)
  f9_total_static : int;  (** Angr-style static block count *)
  f9_code_size : int;
  f9_init_size : int;  (** bytes of removed init code *)
}

let pct_removed r =
  100. *. float_of_int r.f9_removed /. float_of_int (max 1 r.f9_executed)

let apps : Workload.app list =
  [
    Workload.ltpd;
    Workload.ngx;
    Workload.spec_app Spec.perlbench;
    Workload.spec_app Spec.mcf;
    Workload.spec_app Spec.omnetpp;
    Workload.spec_app Spec.xalancbmk;
    Workload.spec_app Spec.x264;
    Workload.spec_app Spec.deepsjeng;
    Workload.spec_app Spec.leela;
  ]

let measure (app : Workload.app) : row =
  let init_blocks, init_log, serving_log = Common.init_only_blocks app in
  let name = app.Workload.a_name in
  let executed = Common.executed_own name [ init_log; serving_log ] in
  let own_init = Common.own_blocks name init_blocks in
  let exe = Common.app_exe app in
  let cfg = Cfg.of_self exe in
  {
    f9_app = name;
    f9_executed = List.length executed;
    f9_removed = List.length own_init;
    f9_total_static = List.length (Cfg.real_blocks cfg);
    f9_code_size = Self.text_size exe;
    f9_init_size = Common.own_code_bytes name init_blocks;
  }

let run fmt =
  Common.section fmt
    "Figure 9: executed vs removed (init-only) basic blocks per application";
  let rows = List.map measure apps in
  Format.fprintf fmt "%s@."
    (Table.render
       ~headers:
         [
           "app"; "BB executed"; "BB removed"; "% removed"; "total BB #";
           "code size"; "init code rm";
         ]
       (List.map
          (fun r ->
            [
              r.f9_app;
              string_of_int r.f9_executed;
              string_of_int r.f9_removed;
              Printf.sprintf "%.1f%%" (pct_removed r);
              string_of_int r.f9_total_static;
              Table.human_bytes r.f9_code_size;
              Table.human_bytes r.f9_init_size;
            ])
          rows));
  let spec_rows =
    List.filter (fun r -> r.f9_app <> "ltpd" && r.f9_app <> "ngx") rows
  in
  let avg = Stats.mean (List.map pct_removed spec_rows) in
  Format.fprintf fmt
    "@.SPEC removal rate: %.1f%% .. %.1f%% (average %.1f%%); servers: ltpd %.1f%%, ngx %.1f%%@."
    (List.fold_left (fun a r -> min a (pct_removed r)) 100. spec_rows)
    (List.fold_left (fun a r -> max a (pct_removed r)) 0. spec_rows)
    avg
    (pct_removed (List.find (fun r -> r.f9_app = "ltpd") rows))
    (pct_removed (List.find (fun r -> r.f9_app = "ngx") rows));
  Format.fprintf fmt "@.%s@."
    (Table.stacked_bars ~unit:" blocks" ~segments:[ "removed (init-only)"; "still live" ]
       (List.map
          (fun r ->
            ( r.f9_app,
              [ float_of_int r.f9_removed; float_of_int (r.f9_executed - r.f9_removed) ] ))
          rows));
  rows
