(** §4.2 attack-surface analyses:

    - {b PLT-entry removal}: how many *executed* PLT entries are
      init-only and get wiped after initialization (paper: Nginx 43/56,
      Lighttpd 33/57 at full scale), whether the [fork] entry survives,
      and what that means for ret2plt;
    - {b BROP}: the gadget census of the process image before and after
      init-code removal (wipe policy), plus the two BROP preconditions
      the paper names — usable PLT entries (e.g. [write]) and a
      fork-respawn primitive. *)

type plt_row = {
  sp_app : string;
  sp_total : int;
  sp_executed : int;
  sp_removed : int;
  sp_fork_removed : bool;
  sp_removed_names : string list;
}

let plt_for (app : Workload.app) : plt_row =
  let _, init_log, serving_log = Common.init_only_blocks app in
  let exe = Common.app_exe app in
  let report =
    Pltlive.analyse exe
      ~init:(Covgraph.of_log init_log)
      ~serving:(Covgraph.of_log serving_log)
  in
  let removed = Pltlive.removable report in
  {
    sp_app = app.Workload.a_name;
    sp_total = List.length report.Pltlive.pr_entries;
    sp_executed = List.length (Pltlive.executed report);
    sp_removed = List.length removed;
    sp_fork_removed =
      List.exists (fun (e : Pltlive.plt_entry) -> e.Pltlive.pe_name = "fork") removed;
    sp_removed_names = List.map (fun (e : Pltlive.plt_entry) -> e.Pltlive.pe_name) removed;
  }

type brop_row = {
  sb_app : string;
  sb_gadgets_before : int;
  sb_gadgets_after : int;
  sb_fork_plt_gone : bool;
}

(** Gadget census before/after wiping the init-only code in the image. *)
let brop_for (app : Workload.app) : brop_row =
  let init_blocks, init_log, serving_log = Common.init_only_blocks app in
  let c = Workload.spawn app in
  Workload.wait_ready c;
  Machine.freeze c.Workload.m ~pid:c.Workload.pid;
  let img = Checkpoint.dump c.Workload.m ~pid:c.Workload.pid () in
  let before = Gadget.of_image img in
  (* wipe init-only blocks + init-only PLT stubs in the image *)
  let exe = Common.app_exe app in
  let plt_report =
    Pltlive.analyse exe
      ~init:(Covgraph.of_log init_log)
      ~serving:(Covgraph.of_log serving_log)
  in
  let to_wipe = init_blocks @ Pltlive.removable_blocks plt_report in
  let (_ : Rewriter.patch list) = Rewriter.wipe_blocks img to_wipe in
  let after = Gadget.of_image img in
  {
    sb_app = app.Workload.a_name;
    sb_gadgets_before = before.Gadget.g_gadgets;
    sb_gadgets_after = after.Gadget.g_gadgets;
    sb_fork_plt_gone =
      List.exists
        (fun (e : Pltlive.plt_entry) -> e.Pltlive.pe_name = "fork")
        (Pltlive.removable plt_report);
  }

let run fmt =
  Common.section fmt "Section 4.2: PLT-entry removal and BROP viability";
  let rows = List.map plt_for [ Workload.ngx; Workload.ltpd ] in
  Format.fprintf fmt "%s@."
    (Table.render
       ~headers:[ "app"; "PLT entries"; "executed"; "init-only (removed)"; "fork removed" ]
       (List.map
          (fun r ->
            [
              r.sp_app;
              string_of_int r.sp_total;
              string_of_int r.sp_executed;
              string_of_int r.sp_removed;
              (if r.sp_fork_removed then "yes" else "no");
            ])
          rows));
  List.iter
    (fun r ->
      Format.fprintf fmt "  %s removed PLT entries: %s@." r.sp_app
        (String.concat ", " r.sp_removed_names))
    rows;
  Format.fprintf fmt "@.BROP gadget census (before/after init-code wipe):@.";
  let brops = List.map brop_for [ Workload.ngx; Workload.ltpd ] in
  Format.fprintf fmt "%s@."
    (Table.render
       ~headers:[ "app"; "gadgets before"; "gadgets after"; "reduction"; "fork PLT gone" ]
       (List.map
          (fun b ->
            [
              b.sb_app;
              string_of_int b.sb_gadgets_before;
              string_of_int b.sb_gadgets_after;
              Printf.sprintf "%.1f%%"
                (100.
                *. float_of_int (b.sb_gadgets_before - b.sb_gadgets_after)
                /. float_of_int (max 1 b.sb_gadgets_before));
              (if b.sb_fork_plt_gone then "yes" else "no");
            ])
          brops));
  Format.fprintf fmt
    "@.BROP needs (1) a respawning worker — blocked when the fork PLT entry is@.\
     wiped after the worker is created — and (2) an output PLT entry like@.\
     write() to leak memory; both preconditions degrade with the wipe above.@.";
  (rows, brops)
