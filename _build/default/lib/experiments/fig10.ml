(** Figure 10: number of live basic blocks over time — DynaCut vs the
    static debloaters (RAZOR, Chisel) on the Lighttpd stand-in.

    Scenario (paper §4.2): the server serves read-only pages most of the
    time; the administrator opens a short window (t=8..9) for uploading
    files with HTTP PUT, then closes it; the program terminates at t=12.

    DynaCut's schedule, executed for real on the machine:
    - launch from a customized image: never-executed blocks are wiped
      (what a static debloater would also drop) but init code is kept —
      live = every block the workloads ever execute;
    - t=2 "Finish initialization": init-only blocks and the PUT/DELETE
      feature blocks are disabled — live = serving code only;
    - t=8 "Enable HTTP PUT/DELETE": the feature journal is restored;
    - t=9: disabled again;
    - t=12: terminate — live = 0.

    RAZOR (trained on all traces, one ring of CFG expansion) and Chisel
    (trace-minimal) are flat lines: their cut cannot follow the phases. *)

type result = {
  f10_total : int;
  f10_dynacut : Timeline.track;
  f10_razor : Timeline.track;
  f10_chisel : Timeline.track;
  f10_functional : bool;  (** GET kept working at every phase *)
}

let times = [ 0.; 2.; 8.; 9.; 12. ]

let blocks_of_static ~name (bs : Cfg.block list) : Covgraph.block list =
  List.map
    (fun (b : Cfg.block) ->
      { Covgraph.b_module = name; b_off = b.Cfg.bb_off; b_size = b.Cfg.bb_size })
    bs

let run fmt =
  Common.section fmt "Figure 10: live basic blocks over time (ltpd)";
  let app = Workload.ltpd in
  let name = app.Workload.a_name in
  (* --- traces --- *)
  let init_only, init_log, _serving_all = Common.init_only_blocks app in
  let feature_blocks =
    Common.own_blocks name (Common.web_feature_blocks app)
  in
  let _, wanted_log =
    Workload.trace_requests ~app ~requests:Workload.web_wanted ~nudge_at_ready:true ()
  in
  let _, undesired_log =
    Workload.trace_requests ~app ~requests:Workload.web_undesired ~nudge_at_ready:true ()
  in
  let all_cov =
    Covgraph.normalize ~cfg_of:(Common.cfg_of_app app)
      (Covgraph.of_logs [ init_log; wanted_log; undesired_log ])
  in
  let exe = Common.app_exe app in
  let cfg = Cfg.of_self exe in
  let static = Cfg.real_blocks cfg in
  let total = List.length static in
  (* --- DynaCut, for real --- *)
  let never_executed =
    List.filter
      (fun (b : Cfg.block) ->
        not (Covgraph.mem_off all_cov ~module_:name ~off:b.Cfg.bb_off))
      static
  in
  let c = Workload.spawn app in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let disabled = Hashtbl.create 512 in
  let count_disabled blocks = List.iter (fun (b : Covgraph.block) -> Hashtbl.replace disabled b.Covgraph.b_off ()) blocks in
  let live () = total - Hashtbl.length disabled in
  let get_ok () =
    let r = Workload.rpc c (Workload.http_get "/index.html") in
    let sub = "hello from ltpd" and n = String.length r in
    let sl = String.length sub in
    let rec go i = i + sl <= n && (String.sub r i sl = sub || go (i + 1)) in
    go 0
  in
  (* launch profile: never-executed code wiped *)
  let nv_blocks = blocks_of_static ~name never_executed in
  let _ = Dynacut.cut session ~blocks:nv_blocks ~policy:{ Dynacut.method_ = `Wipe; on_trap = `Kill } in
  count_disabled nv_blocks;
  let ok0 = get_ok () in
  let live0 = live () in
  (* t=2: drop init + features *)
  let own_init = Common.own_blocks name init_only in
  let _ = Dynacut.cut session ~blocks:own_init ~policy:{ Dynacut.method_ = `Wipe; on_trap = `Kill } in
  count_disabled own_init;
  let feat_journals, _ =
    Dynacut.cut session ~blocks:feature_blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }
  in
  count_disabled feature_blocks;
  let ok2 = get_ok () in
  let put_blocked =
    let r = Workload.rpc c (Workload.http_put "/w.txt" "x") in
    let n = String.length r in
    n >= 12 && String.sub r 9 3 = "403"
  in
  let live2 = live () in
  (* t=8: open the PUT window *)
  let (_ : Dynacut.timings) = Dynacut.reenable session feat_journals in
  List.iter (fun (b : Covgraph.block) -> Hashtbl.remove disabled b.Covgraph.b_off) feature_blocks;
  let put_ok =
    let r = Workload.rpc c (Workload.http_put "/w.txt" "window-upload") in
    let n = String.length r in
    n >= 12 && String.sub r 9 3 = "201"
  in
  let live8 = live () in
  (* t=9: close it again *)
  let _ =
    Dynacut.cut session ~blocks:feature_blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }
  in
  count_disabled feature_blocks;
  let ok9 = get_ok () in
  let live9 = live () in
  (* t=12: terminate *)
  Machine.post_signal c.Workload.m ~pid:c.Workload.pid ~signum:Abi.sigkill;
  let dynacut_track =
    Timeline.make ~name:"DynaCut" ~total
      [
        { Timeline.ph_label = "boot (customized launch image)"; ph_time = 0.; ph_live = live0 };
        { Timeline.ph_label = "finish initialization"; ph_time = 2.; ph_live = live2 };
        { Timeline.ph_label = "enable HTTP PUT/DELETE"; ph_time = 8.; ph_live = live8 };
        { Timeline.ph_label = "window closed"; ph_time = 9.; ph_live = live9 };
        { Timeline.ph_label = "terminate program"; ph_time = 12.; ph_live = 0 };
      ]
  in
  (* --- static baselines --- *)
  let _, rz = Razor.debloat ~level:Razor.L1 exe ~coverage:all_cov in
  let ch = Chisel.debloat exe ~coverage:all_cov ~oracle:Chisel.no_oracle in
  let razor_track = Timeline.flat ~name:"RAZOR" ~total ~kept:rz.Razor.s_kept ~times in
  let chisel_track =
    Timeline.flat ~name:"CHISEL" ~total ~kept:ch.Chisel.c_stats.Razor.s_kept ~times
  in
  let functional = ok0 && ok2 && put_blocked && put_ok && ok9 in
  if not functional then
    Format.fprintf fmt
      "  (checks: boot GET %b, post-init GET %b, PUT blocked %b, PUT in window %b, final GET %b)@."
      ok0 ok2 put_blocked put_ok ok9;
  Timeline.pp fmt [ dynacut_track; razor_track; chisel_track ];
  Format.fprintf fmt
    "@.max live under DynaCut: %.1f%% of %d static blocks (RAZOR flat %.1f%%, Chisel flat %.1f%%)@."
    (Timeline.max_live_percent dynacut_track)
    total
    (Timeline.max_live_percent razor_track)
    (Timeline.max_live_percent chisel_track);
  Format.fprintf fmt "functional at every phase: %s@."
    (if functional then "yes (GET served; PUT 403 outside window, 201 inside)" else "NO");
  {
    f10_total = total;
    f10_dynacut = dynacut_track;
    f10_razor = razor_track;
    f10_chisel = chisel_track;
    f10_functional = functional;
  }
