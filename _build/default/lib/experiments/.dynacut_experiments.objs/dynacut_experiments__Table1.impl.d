lib/experiments/table1.ml: Common Dynacut Format List Machine Printf Proc String Table Workload
