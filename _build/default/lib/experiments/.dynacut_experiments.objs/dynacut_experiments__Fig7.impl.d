lib/experiments/fig7.ml: Common Dynacut Format Images List Machine Option Printf Proc Self Spec String Table Vfs Workload
