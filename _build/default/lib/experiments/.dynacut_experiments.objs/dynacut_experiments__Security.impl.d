lib/experiments/security.ml: Checkpoint Common Covgraph Format Gadget List Machine Pltlive Printf Rewriter String Table Workload
