lib/experiments/fig4.ml: Common Covgraph Format List Printf Self String Tracediff Workload
