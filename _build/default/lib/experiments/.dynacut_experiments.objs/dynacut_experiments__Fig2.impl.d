lib/experiments/fig2.ml: Array Bytes Common Covgraph Format List Option Self Spec Workload
