lib/experiments/common.ml: Cfg Covgraph Drcov Format Hashtbl List Machine Option Self Spec Tracediff Vfs Workload
