lib/experiments/fig9.ml: Cfg Common Format List Printf Self Spec Stats Table Workload
