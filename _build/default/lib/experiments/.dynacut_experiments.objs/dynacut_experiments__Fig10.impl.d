lib/experiments/fig10.ml: Abi Cfg Chisel Common Covgraph Dynacut Format Hashtbl List Machine Razor String Timeline Workload
