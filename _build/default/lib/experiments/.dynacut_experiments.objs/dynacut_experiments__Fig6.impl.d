lib/experiments/fig6.ml: Common Covgraph Dynacut Format Images List Machine Option Printf Stats String Table Vfs Workload
