lib/experiments/fig8.ml: Array Common Dynacut Format Int64 List Machine Net Option Printf Rkv Stats String Table Vfs Workload
