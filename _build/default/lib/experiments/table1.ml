(** Table 1: Redis CVEs mitigated by DynaCut's feature blocking.

    For each CVE we (1) demonstrate the exploit against the vanilla rkv
    server — a crash or a corrupted heap canary — and (2) block the
    vulnerable command with DynaCut (redirecting to the server's own
    error path) and re-run the exploit: the attacker gets "-ERR unknown
    command", the canary stays intact, and the server stays up. *)

type outcome = Crashed | Corrupted | Refused | Survived_clean

let outcome_to_string = function
  | Crashed -> "server crashed (SIGSEGV)"
  | Corrupted -> "memory corrupted"
  | Refused -> "-ERR (feature blocked)"
  | Survived_clean -> "no effect"

type cve = {
  cve_id : string;
  cve_desc : string;
  cve_exploit : string;  (** the malicious request *)
  cve_profile : string list;  (** benign uses of the command, for tracing *)
}

let cves =
  [
    {
      cve_id = "CVE-2021-32625";
      cve_desc = "STRALGO LCS, integer overflow (crash)";
      cve_exploit = Printf.sprintf "STRALGO %s %s\n" (String.make 60 'b') (String.make 60 'b');
      cve_profile = [ "STRALGO abc abd\n" ];
    };
    {
      cve_id = "CVE-2021-29477";
      cve_desc = "STRALGO LCS, integer overflow (OOB write)";
      cve_exploit = Printf.sprintf "STRALGO %s aaaa\n" (String.make 16 'a');
      cve_profile = [ "STRALGO abc abd\n" ];
    };
    {
      cve_id = "CVE-2019-10193";
      cve_desc = "SETRANGE, stack-buffer overflow";
      (* a negative offset walks backwards over the slot's own key *)
      cve_exploit = "SETRANGE greeting -32 XXXX\n";
      cve_profile = [ "SETRANGE greeting 1 x\n" ];
    };
    {
      cve_id = "CVE-2019-10192";
      cve_desc = "SETRANGE, heap-buffer overflow";
      cve_exploit = "SETRANGE greeting 999999 X\n";
      cve_profile = [ "SETRANGE greeting 1 x\n" ];
    };
    {
      cve_id = "CVE-2016-8339";
      cve_desc = "CONFIG SET, buffer overflow";
      cve_exploit = "CONFIG SET " ^ String.make 40 'Z' ^ "\n";
      cve_profile = [ "CONFIG SET small\n"; "CONFIG GET x\n" ];
    };
  ]

let probe_outcome (c : Workload.ctx) (reply : string) : outcome =
  match (Machine.proc_exn c.Workload.m c.Workload.pid).Proc.state with
  | Proc.Killed _ -> Crashed
  | Proc.Exited _ -> Crashed
  | _ ->
      if reply = "-ERR unknown command" then Refused
      else
        let info = Workload.rpc c "INFO\n" in
        let corrupted =
          let sub = "CORRUPTED" and n = String.length info in
          let sl = String.length sub in
          let rec go i = i + sl <= n && (String.sub info i sl = sub || go (i + 1)) in
          go 0
        in
        if corrupted then Corrupted
        else if Workload.rpc c "GET greeting\n" <> "$hello" then
          (* store contents damaged (key or value overwritten) *)
          Corrupted
        else Survived_clean

let attack_vanilla (cve : cve) : outcome =
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  let reply = Workload.rpc c cve.cve_exploit in
  probe_outcome c reply

let attack_dynacut (cve : cve) : outcome * bool =
  let blocks = Common.rkv_feature_blocks cve.cve_profile in
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "rkv_err" }
  in
  let reply = Workload.rpc c cve.cve_exploit in
  let o = probe_outcome c reply in
  (* wanted commands still served after the block *)
  let still_serves = Workload.rpc c "GET greeting\n" = "$hello" in
  (o, still_serves)

let run fmt =
  Common.section fmt "Table 1: Redis CVEs mitigated by feature blocking";
  let rows =
    List.map
      (fun cve ->
        let vanilla = attack_vanilla cve in
        let dc, serves = attack_dynacut cve in
        (cve, vanilla, dc, serves))
      cves
  in
  Format.fprintf fmt "%s@."
    (Table.render
       ~headers:[ "CVE"; "description"; "vanilla rkv"; "under DynaCut"; "GETs ok" ]
       ~aligns:[ Table.L; Table.L; Table.L; Table.L; Table.L ]
       (List.map
          (fun (cve, vanilla, dc, serves) ->
            [
              cve.cve_id;
              cve.cve_desc;
              outcome_to_string vanilla;
              outcome_to_string dc;
              (if serves then "yes" else "NO");
            ])
          rows));
  rows
