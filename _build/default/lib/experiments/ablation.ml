(** Ablations of DynaCut's design choices (DESIGN.md §5) and the paper's
    §5 extensions, implemented and measured:

    1. {b blocking policy}: first-byte int3 vs full wipe vs page unmap
       (on a page-per-function build) — rewrite cost vs residual ROP
       surface, quantifying §3.2.2's "increases security … adds
       performance overhead" trade-off and §5's "faster than replacing
       code with int3" prediction;
    2. {b trace canonicalization}: diffing raw dynamic blocks vs
       CFG-normalized coverage — how many unsound removals the
       normalization prevents;
    3. {b automatic phase detection}: the §5 syscall-trigger nudge vs the
       operator-watches-the-log protocol — do they find the same
       init-only set?
    4. {b library debloating} (§5): wiping the init-only blocks *inside
       libc.so*, not just the application;
    5. {b redeploy from a customized image} (§4.1 footnote 5): restoring
       an already-debloated checkpoint vs booting + re-profiling. *)

(* ---------- 1. blocking-policy ablation ---------- *)

type policy_row = {
  ab_policy : string;
  ab_disable_s : float;
  ab_bytes_patched : int;
  ab_gadgets_after : int;
  ab_blocked : bool;
}

let install_rkv_page_aligned (m : Machine.t) ~libc =
  Vfs.add_self m.Machine.fs "rkv" (Crt0.link_app ~func_align:4096 ~libc Rkv.unit_rkv);
  Vfs.add m.Machine.fs "/etc/rkv.conf" Rkv.config;
  Vfs.add m.Machine.fs "/data/dump.rdb" Rkv.rdb

let rkv_paged : Workload.app =
  {
    Workload.a_name = "rkv";
    a_port = Some Rkv.port;
    a_banner = Rkv.ready_banner;
    a_install = install_rkv_page_aligned;
  }

(** Feature blocks of rkv's SET on the page-aligned build: the whole
    [rkv_cmd_set] function occupies its own page, so unmapping is
    feasible. *)
let paged_feature_blocks () =
  let cfg_of = Common.cfg_of_app rkv_paged in
  let _, wanted =
    Workload.trace_requests ~app:rkv_paged ~requests:Workload.kv_wanted
      ~nudge_at_ready:true ()
  in
  let _, undesired =
    Workload.trace_requests ~app:rkv_paged ~requests:Workload.kv_undesired
      ~nudge_at_ready:true ()
  in
  (Tracediff.feature_blocks ~cfg_of ~wanted:[ wanted ] ~undesired:[ undesired ] ())
    .Tracediff.undesired

(** For the unmap policy on a page-per-function build, the unit of
    removal is the feature function's *pages*: every function whose entry
    block is itself feature-only (reached exclusively through the blocked
    dispatcher edge) contributes its full page range, padding included. *)
let page_blocks_of_features ~(exe : Self.t) (blocks : Covgraph.block list) :
    Covgraph.block list =
  let bounds = Funcbounds.of_self exe in
  let feature_offs =
    List.filter_map
      (fun (b : Covgraph.block) ->
        if b.Covgraph.b_module = exe.Self.name then Some b.Covgraph.b_off else None)
      blocks
  in
  let owned_functions =
    List.sort_uniq compare
      (List.filter_map
         (fun off ->
           match Funcbounds.function_of bounds off with
           (* the prologue (function entry) itself is feature-only *)
           | Some f when List.mem f feature_offs -> Some f
           | _ -> None)
         feature_offs)
  in
  let starts = bounds.Funcbounds.fb_starts in
  let page = 4096 in
  List.concat_map
    (fun f ->
      (* extent: from this function's page to the next function's page *)
      let next =
        Array.fold_left
          (fun acc s -> if s > f && s < acc then s else acc)
          max_int starts
      in
      let lo = f / page * page in
      let hi = if next = max_int then lo + page else next / page * page in
      let npages = max 1 ((hi - lo) / page) in
      List.init npages (fun k ->
          { Covgraph.b_module = exe.Self.name; b_off = lo + (k * page); b_size = page }))
    owned_functions

let measure_policy ~(blocks : Covgraph.block list) (name, method_) : policy_row =
  let c = Workload.spawn rkv_paged in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let blocks =
    match method_ with
    | `Unmap_pages ->
        let exe = Option.get (Vfs.find_self c.Workload.m.Machine.fs "rkv") in
        (* dispatcher edge blocks stay int3-patched; function pages unmapped *)
        blocks @ page_blocks_of_features ~exe blocks
    | _ -> blocks
  in
  let journals, t =
    Dynacut.cut session ~blocks ~policy:{ Dynacut.method_; on_trap = `Kill }
  in
  let bytes =
    List.fold_left (fun a j -> a + Rewriter.journal_bytes j) 0 journals
  in
  (* gadget surface left inside the feature region *)
  let img = Checkpoint.dump c.Workload.m ~pid:c.Workload.pid () in
  let gadgets =
    List.fold_left
      (fun acc (b : Covgraph.block) ->
        match
          Images.read_mem img (Rewriter.block_vaddr img b) b.Covgraph.b_size
        with
        | data ->
            let g, _ = Gadget.scan_bytes data in
            acc + g
        | exception (Not_found | Rewriter.Rewrite_error _) -> acc)
      0 blocks
  in
  let (_ : string) = Workload.rpc c "SET a 1\n" in
  let blocked = not (Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid)) in
  {
    ab_policy = name;
    ab_disable_s = t.Dynacut.t_disable;
    ab_bytes_patched = bytes;
    ab_gadgets_after = gadgets;
    ab_blocked = blocked;
  }

let run_policy fmt =
  Format.fprintf fmt "1. blocking policy (rkv SET, page-per-function build)@.";
  let blocks = paged_feature_blocks () in
  let rows =
    List.map
      (measure_policy ~blocks)
      [ ("first-byte int3", `First_byte); ("wipe blocks", `Wipe); ("unmap pages", `Unmap_pages) ]
  in
  Format.fprintf fmt "%s@."
    (Table.render
       ~headers:[ "policy"; "disable time(s)"; "bytes touched"; "gadgets left in feature"; "feature blocked" ]
       (List.map
          (fun r ->
            [
              r.ab_policy;
              Printf.sprintf "%.5f" r.ab_disable_s;
              string_of_int r.ab_bytes_patched;
              string_of_int r.ab_gadgets_after;
              (if r.ab_blocked then "yes" else "NO");
            ])
          rows));
  rows

(* ---------- 2. normalization ablation ---------- *)

let normalization_for fmt (app : Workload.app) =
  let init_log, serving =
    Common.server_phases app ~requests:(Workload.web_wanted @ Workload.kv_wanted)
  in
  let raw = Tracediff.init_blocks ~init:init_log ~serving () in
  let normalized =
    Tracediff.init_blocks ~cfg_of:(Common.cfg_of_app app) ~init:init_log ~serving ()
  in
  (* unsound raw candidates: their byte range overlaps a static block the
     serving phase still executes (wiping them would corrupt live code) *)
  let cfg_of = Common.cfg_of_app app in
  let serving_norm = Covgraph.normalize ~cfg_of (Covgraph.of_log serving) in
  let unsound =
    List.filter
      (fun (b : Covgraph.block) ->
        List.exists
          (fun (sv : Covgraph.block) ->
            sv.Covgraph.b_module = b.Covgraph.b_module
            && sv.Covgraph.b_off < b.Covgraph.b_off + b.Covgraph.b_size
            && b.Covgraph.b_off < sv.Covgraph.b_off + sv.Covgraph.b_size)
          (Covgraph.blocks serving_norm))
      raw.Tracediff.undesired
  in
  Format.fprintf fmt
    "  %-5s raw dynamic diff %3d candidates | CFG-normalized %3d | unsound raw candidates %d@."
    app.Workload.a_name
    (List.length raw.Tracediff.undesired)
    (List.length normalized.Tracediff.undesired)
    (List.length unsound);
  (List.length raw.Tracediff.undesired, List.length normalized.Tracediff.undesired, List.length unsound)

let run_normalization fmt =
  Format.fprintf fmt "2. trace canonicalization (init-diff)@.";
  let l = normalization_for fmt Workload.ltpd in
  let n = normalization_for fmt Workload.ngx in
  Format.fprintf fmt
    "an unsound raw candidate points into a block the serving phase still@.\
     executes: wiping it crashes the server (the pre-normalization Figure 7@.\
     run did exactly that)@.@.";
  (l, n)

(* ---------- 3. automatic phase detection ---------- *)

let run_autophase fmt =
  Format.fprintf fmt "3. automatic phase detection (accept-syscall trigger vs log watching)@.";
  let app = Workload.rkv in
  let reqs = Workload.kv_wanted in
  let cfg_of = Common.cfg_of_app app in
  let manual_init, manual_serving = Common.server_phases app ~requests:reqs in
  let auto_init, auto_serving = Workload.trace_requests_auto ~app ~requests:reqs () in
  let manual = Tracediff.init_blocks ~cfg_of ~init:manual_init ~serving:manual_serving () in
  let auto = Tracediff.init_blocks ~cfg_of ~init:auto_init ~serving:auto_serving () in
  let set_of r =
    let g = Covgraph.create () in
    List.iter (Covgraph.add g) r.Tracediff.undesired;
    g
  in
  let gm = set_of manual and ga = set_of auto in
  let common = List.length (Covgraph.intersect gm ga) in
  Format.fprintf fmt
    "manual nudge: %d init-only blocks; automatic (first accept): %d;@.\
     agreement: %d blocks (%.1f%% of the manual set) — the syscall trigger@.\
     needs no operator in the loop (§5)@.@."
    (Covgraph.cardinal gm) (Covgraph.cardinal ga) common
    (100. *. float_of_int common /. float_of_int (max 1 (Covgraph.cardinal gm)));
  (Covgraph.cardinal gm, Covgraph.cardinal ga, common)

(* ---------- 4. library debloating ---------- *)

let run_libcut fmt =
  Format.fprintf fmt "4. shared-library debloating (libc.so init-only code, ltpd)@.";
  let app = Workload.ltpd in
  let init_blocks, _, _ = Common.init_only_blocks app in
  let libc_blocks =
    List.filter (fun (b : Covgraph.block) -> b.Covgraph.b_module = "libc.so") init_blocks
  in
  let app_blocks = Common.own_blocks "ltpd" init_blocks in
  let c = Workload.spawn app in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let _, t =
    Dynacut.cut session ~blocks:libc_blocks
      ~policy:{ Dynacut.method_ = `Wipe; on_trap = `Kill }
  in
  (* the server must still answer everything *)
  let ok =
    List.for_all
      (fun r -> String.length (Workload.rpc c r) > 0)
      Workload.web_wanted
    && Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid)
  in
  Format.fprintf fmt
    "init-only blocks: %d in ltpd itself, %d inside libc.so; wiped the@.\
     libc ones in %.4fs — server still serves the full mix: %s@.@."
    (List.length app_blocks) (List.length libc_blocks) (Dynacut.total_time t)
    (if ok then "yes" else "NO");
  (List.length libc_blocks, ok)

(* ---------- 5. restore-vs-boot ---------- *)

let run_restore_vs_boot fmt =
  Format.fprintf fmt
    "5. deploying from a customized image vs booting from scratch (ltpd)@.";
  (* cold boot + init-code removal, timed end to end *)
  let init_blocks, _, _ = Common.init_only_blocks Workload.ltpd in
  let (c, session), t_boot =
    Stats.time_it (fun () ->
        let c = Workload.spawn Workload.ltpd in
        Workload.wait_ready c;
        let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
        let _ =
          Dynacut.cut session ~blocks:init_blocks
            ~policy:{ Dynacut.method_ = `Wipe; on_trap = `Kill }
        in
        (c, session))
  in
  (* the paper's footnote 5: "end-users can directly restore the
     'customized' process image, which can be even faster than launching
     the program from the start" — kill the server and bring it back from
     the already-customized image *)
  let pid = c.Workload.pid in
  let path = Printf.sprintf "%s/dump-%d.img" session.Dynacut.tmpfs pid in
  Machine.post_signal c.Workload.m ~pid ~signum:Abi.sigkill;
  let (_ : Proc.t), t_restore =
    Stats.time_it (fun () ->
        Machine.reap c.Workload.m ~pid;
        Restore.restore_from_tmpfs c.Workload.m ~path)
  in
  let serves =
    String.length (Workload.rpc c (Workload.http_get "/index.html")) > 0
  in
  Format.fprintf fmt
    "boot + profile-guided init wipe: %.4fs (host) | redeploy from the@.     customized image: %.4fs — %.0fx faster, already debloated; serving: %s@.@."
    t_boot t_restore (t_boot /. max 1e-9 t_restore)
    (if serves then "yes" else "NO");
  (t_boot, t_restore, serves)

(* ---------- 6. dynamic seccomp ---------- *)

let run_seccomp fmt =
  Format.fprintf fmt
    "6. dynamic seccomp filtering by image rewriting (§5, after Ghavamnia et al.)@.";
  let c = Workload.spawn Workload.ltpd in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  (* post-initialization, a static web server needs none of these *)
  let denied =
    [ Abi.sys_fork; Abi.sys_socket; Abi.sys_bind; Abi.sys_listen; Abi.sys_mmap ]
  in
  let t = Dynacut.apply_seccomp session ~denied:(Some denied) in
  let ok =
    List.for_all
      (fun r -> String.length (Workload.rpc c r) > 0)
      Workload.web_wanted
    && Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid)
  in
  Format.fprintf fmt
    "denied post-init syscalls: %s; filter installed by a %.4fs image@.     rewrite; full request mix still served: %s — any code-reuse payload@.     invoking them now dies with SIGSYS, and the filter is removable the@.     same way when a maintenance window needs it@.@."
    (String.concat ", " (List.map Abi.syscall_name denied))
    (Dynacut.total_time t)
    (if ok then "yes" else "NO");
  (List.length denied, ok)

let run fmt =
  Common.section fmt "Ablations: policies, normalization, autophase, library debloating";
  let p = run_policy fmt in
  let n = run_normalization fmt in
  let a = run_autophase fmt in
  let l = run_libcut fmt in
  let r = run_restore_vs_boot fmt in
  let sc = run_seccomp fmt in
  (p, n, a, l, r, sc)
