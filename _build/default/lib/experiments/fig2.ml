(** Figure 2: visualization of process memory footprints — executed
    (serving) basic blocks, initialization-only basic blocks, and
    never-executed basic blocks, for 605.mcf_s and the Lighttpd stand-in.

    Rendered as an ASCII map of the binary's [.text]: each cell covers a
    fixed byte range; '#' = executed post-init, '!' = init-only (the
    paper's red), '.' = never executed (the paper's gray). *)

type cell = Never | Init_only | Serving

type result = {
  f2_app : string;
  f2_cells : cell array;
  f2_bytes_per_cell : int;
  f2_pct_never : float;
  f2_pct_init : float;
  f2_pct_serving : float;
}

let classify ~(app : Workload.app) : result =
  let init_blocks, init_log, serving_log = Common.init_only_blocks app in
  let exe = Common.app_exe app in
  let text = Option.get (Self.find_section exe ".text") in
  let tsize = Bytes.length text.Self.sec_data in
  let cells_w = 64 in
  let bytes_per_cell = max 16 (tsize / (cells_w * 24) * 16) in
  let ncells = (tsize + bytes_per_cell - 1) / bytes_per_cell in
  let cells = Array.make ncells Never in
  let mark kind (b : Covgraph.block) =
    if b.Covgraph.b_module = app.Workload.a_name then
      let off = b.Covgraph.b_off - text.Self.sec_off in
      if off >= 0 && off < tsize then
        for k = off / bytes_per_cell to min (ncells - 1) ((off + b.Covgraph.b_size - 1) / bytes_per_cell)
        do
          (* serving wins over init-only *)
          if not (cells.(k) = Serving && kind = Init_only) then cells.(k) <- kind
        done
  in
  (* post-initialization coverage first, then overlay the init-only set
     (a cell that runs in both phases counts as serving) *)
  ignore init_log;
  List.iter (mark Serving) (Covgraph.blocks (Covgraph.of_log serving_log));
  List.iter (mark Init_only) init_blocks;
  let count k = Array.fold_left (fun a c -> if c = k then a + 1 else a) 0 cells in
  let pct k = 100. *. float_of_int (count k) /. float_of_int (max 1 ncells) in
  {
    f2_app = app.Workload.a_name;
    f2_cells = cells;
    f2_bytes_per_cell = bytes_per_cell;
    f2_pct_never = pct Never;
    f2_pct_init = pct Init_only;
    f2_pct_serving = pct Serving;
  }

let render fmt (r : result) =
  Format.fprintf fmt "%s (.text map, 1 cell = %d bytes)@." r.f2_app r.f2_bytes_per_cell;
  Format.fprintf fmt "  '#' executed (serving)  '!' init-only  '.' never executed@.";
  Array.iteri
    (fun k c ->
      if k mod 64 = 0 then Format.fprintf fmt "  ";
      Format.pp_print_char fmt (match c with Never -> '.' | Init_only -> '!' | Serving -> '#');
      if k mod 64 = 63 then Format.fprintf fmt "@.")
    r.f2_cells;
  if Array.length r.f2_cells mod 64 <> 0 then Format.fprintf fmt "@.";
  Format.fprintf fmt "  never-executed %.1f%%  init-only %.1f%%  serving %.1f%%@.@."
    r.f2_pct_never r.f2_pct_init r.f2_pct_serving

let run fmt =
  Common.section fmt "Figure 2: memory footprint of executed / init-only / unused blocks";
  let mcf = classify ~app:(Workload.spec_app Spec.mcf) in
  let ltpd = classify ~app:Workload.ltpd in
  render fmt mcf;
  render fmt ltpd;
  (mcf, ltpd)
