(** Figure 7: DynaCut's overhead for removing initialization code from
    process images — checkpoint/restore time vs code-update time per
    application, with the .text and CRIU-image sizes the paper tabulates
    under the chart.

    The removal uses the aggressive wipe policy (init code is never
    needed again, so there is nothing to redirect to), and each run ends
    with a *functional validation*: servers must still answer the full
    request mix, SPEC kernels must still finish with the same checksum
    as an untouched run. *)

type row = {
  f7_app : string;
  f7_code_size : int;  (** .text bytes *)
  f7_image_size : int;  (** CRIU image bytes (all processes) *)
  f7_ckpt_restore : float;  (** checkpoint + restore seconds *)
  f7_code_update : float;  (** image rewriting seconds *)
  f7_blocks_removed : int;
  f7_validated : bool;
}

let apps : Workload.app list =
  [
    Workload.ltpd;
    Workload.ngx;
    Workload.spec_app Spec.perlbench;
    Workload.spec_app Spec.mcf;
    Workload.spec_app Spec.omnetpp;
    Workload.spec_app Spec.xalancbmk;
    Workload.spec_app Spec.x264;
    Workload.spec_app Spec.leela;
  ]

let spec_console_result (c : Workload.ctx) =
  (* the "<name>: result N" line *)
  let s = Workload.console c in
  match String.index_opt s ':' with
  | _ ->
      let lines = String.split_on_char '\n' s in
      List.find_opt
        (fun l ->
          let n = String.length l in
          let has_result =
            let sub = "result" in
            let sl = String.length sub in
            let rec go i = i + sl <= n && (String.sub l i sl = sub || go (i + 1)) in
            go 0
          in
          has_result)
        lines
      |> Option.value ~default:""

let vanilla_spec_result (k : Spec.kernel) =
  let c = Workload.spawn (Workload.spec_app k) in
  Workload.wait_ready c;
  let (_ : Proc.state) = Workload.run_to_exit c in
  spec_console_result c

let measure (app : Workload.app) : row =
  let init_blocks, _, _ = Common.init_only_blocks app in
  let c = Workload.spawn app in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let _journals, t =
    Dynacut.cut session ~blocks:init_blocks
      ~policy:{ Dynacut.method_ = `Wipe; on_trap = `Kill }
  in
  let image_size =
    List.fold_left
      (fun acc pid ->
        acc
        + Images.image_size
            (Images.decode
               (Option.get
                  (Vfs.find c.Workload.m.Machine.fs
                     (Printf.sprintf "%s/dump-%d.img" session.Dynacut.tmpfs pid)))))
      0 (Dynacut.tree_pids session)
  in
  (* functional validation on the rewritten process *)
  let validated =
    if app.Workload.a_port <> None then (
      let reqs =
        if app.Workload.a_name = "rkv" then Workload.kv_wanted else Workload.web_wanted
      in
      List.for_all
        (fun r ->
          let resp = Workload.rpc c r in
          String.length resp > 0
          && Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid))
        reqs)
    else begin
      let k = Spec.find app.Workload.a_name in
      match Workload.run_to_exit c with
      | Proc.Exited 0 -> spec_console_result c = vanilla_spec_result k
      | _ -> false
    end
  in
  let exe = Option.get (Vfs.find_self c.Workload.m.Machine.fs app.Workload.a_name) in
  {
    f7_app = app.Workload.a_name;
    f7_code_size = Self.text_size exe;
    f7_image_size = image_size;
    f7_ckpt_restore = t.Dynacut.t_checkpoint +. t.Dynacut.t_restore;
    f7_code_update = t.Dynacut.t_disable +. t.Dynacut.t_handler;
    f7_blocks_removed = List.length init_blocks;
    f7_validated = validated;
  }

let run fmt =
  Common.section fmt "Figure 7: overhead of initialization-code removal";
  let rows = List.map measure apps in
  Format.fprintf fmt "%s@."
    (Table.render
       ~headers:
         [
           "app"; "code size"; "image size"; "ckpt+restore(s)"; "code update(s)";
           "init BBs removed"; "still correct";
         ]
       (List.map
          (fun r ->
            [
              r.f7_app;
              Table.human_bytes r.f7_code_size;
              Table.human_bytes r.f7_image_size;
              Printf.sprintf "%.4f" r.f7_ckpt_restore;
              Printf.sprintf "%.4f" r.f7_code_update;
              string_of_int r.f7_blocks_removed;
              (if r.f7_validated then "yes" else "NO");
            ])
          rows));
  Format.fprintf fmt "@.%s@."
    (Table.stacked_bars ~unit:"s" ~segments:[ "checkpoint/restore"; "code update" ]
       (List.map (fun r -> (r.f7_app, [ r.f7_ckpt_restore; r.f7_code_update ])) rows));
  rows
