(** Shared plumbing for the paper-reproduction experiments. *)

let section fmt title =
  Format.fprintf fmt "@.=== %s ===@.@." title

(** Coverage of one traced server session handling [requests], split by
    the init nudge. *)
let server_phases (app : Workload.app) ~(requests : string list) :
    Drcov.log * Drcov.log =
  match Workload.trace_requests ~app ~requests ~nudge_at_ready:true () with
  | Some init_log, serving -> (init_log, serving)
  | None, _ -> assert false

(** Merged (init + serving) coverage of a server session. *)
let server_total_coverage (app : Workload.app) ~(requests : string list) :
    Covgraph.t =
  let init_log, serving = server_phases app ~requests in
  Covgraph.of_logs [ init_log; serving ]

(* a forward declaration would be circular; the provider lives below but
   is needed by the block-identification helpers, so define it first *)

(** Cached CFG provider over a machine filesystem: module names are fs
    paths of SELF binaries, so [cfg_of] resolves any traced module
    (the app binary and libc.so alike). *)
let cfg_provider (fs : Vfs.t) : string -> Cfg.t option =
  let cache : (string, Cfg.t option) Hashtbl.t = Hashtbl.create 8 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some v -> v
    | None ->
        let v = Option.map Cfg.of_self (Vfs.find_self fs name) in
        Hashtbl.add cache name v;
        v

(** A provider over a throwaway installation of [app] (same binaries as
    any machine the app is spawned on — builds are deterministic). *)
let cfg_of_app (app : Workload.app) : string -> Cfg.t option =
  let c = Workload.spawn app in
  cfg_provider c.Workload.m.Machine.fs

(** Feature blocks for the web servers' PUT/DELETE features. *)
let web_feature_blocks (app : Workload.app) : Covgraph.block list =
  let cfg_of = cfg_of_app app in
  let _, wanted = Workload.trace_requests ~app ~requests:Workload.web_wanted ~nudge_at_ready:true () in
  let _, undesired =
    Workload.trace_requests ~app ~requests:Workload.web_undesired ~nudge_at_ready:true ()
  in
  (Tracediff.feature_blocks ~cfg_of ~wanted:[ wanted ] ~undesired:[ undesired ] ())
    .Tracediff.undesired

(** Feature blocks for one rkv command (traced against the wanted mix). *)
let rkv_feature_blocks (requests : string list) : Covgraph.block list =
  let cfg_of = cfg_of_app Workload.rkv in
  let _, wanted =
    Workload.trace_requests ~app:Workload.rkv ~requests:Workload.kv_wanted
      ~nudge_at_ready:true ()
  in
  let _, undesired =
    Workload.trace_requests ~app:Workload.rkv ~requests ~nudge_at_ready:true ()
  in
  (Tracediff.feature_blocks ~cfg_of ~wanted:[ wanted ] ~undesired:[ undesired ] ())
    .Tracediff.undesired

(** Init-only blocks of an app (server: banner nudge + request mix;
    SPEC: banner nudge + run to completion). *)
let init_only_blocks (app : Workload.app) : Covgraph.block list * Drcov.log * Drcov.log =
  let cfg_of = cfg_of_app app in
  let init_log, serving =
    if app.Workload.a_port <> None then
      server_phases app ~requests:(Workload.web_wanted @ Workload.kv_wanted)
    else
      let k = Spec.find app.Workload.a_name in
      Workload.trace_spec k
  in
  let report = Tracediff.init_blocks ~cfg_of ~init:init_log ~serving:serving () in
  (report.Tracediff.undesired, init_log, serving)

(** The main executable of an app, as linked. *)
let app_exe (app : Workload.app) : Self.t =
  let c = Workload.spawn app in
  Option.get (Vfs.find_self c.Workload.m.Machine.fs app.Workload.a_name)

let text_size (exe : Self.t) = Self.text_size exe

(** Sum of sizes of the app's own (non-library) blocks in a list. *)
let own_code_bytes (app_name : string) (blocks : Covgraph.block list) =
  List.fold_left
    (fun acc (b : Covgraph.block) ->
      if b.Covgraph.b_module = app_name then acc + b.Covgraph.b_size else acc)
    0 blocks

let own_blocks (app_name : string) (blocks : Covgraph.block list) =
  List.filter (fun (b : Covgraph.block) -> b.Covgraph.b_module = app_name) blocks

(** Executed blocks (deduplicated) belonging to the app binary itself. *)
let executed_own (app_name : string) (logs : Drcov.log list) =
  Covgraph.of_logs logs |> Covgraph.blocks
  |> List.filter (fun (b : Covgraph.block) -> b.Covgraph.b_module = app_name)
