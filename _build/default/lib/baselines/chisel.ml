(** Chisel-like static debloater (Heo et al., CCS '18; Figure 10's second
    comparison point).

    Chisel searches for a *minimal* program that still passes a
    user-supplied oracle, guided by reinforcement learning over program
    elements. Its cuts are more aggressive than RAZOR's — no robustness
    expansion — which is why the paper reports Chisel removing more
    blocks on average (66% vs 53.1%).

    Our model: start from exactly the traced blocks (no expansion), then
    run a delta-repair loop against an [oracle] — if the oracle fails on
    the candidate binary, re-add the blocks the failure touched (the
    statistical-model-guided search collapsed to its fixpoint). Like
    Chisel, the result is a single static binary. *)

type result = {
  c_binary : Self.t;
  c_stats : Razor.stats;
  c_iterations : int;  (** oracle-repair rounds until fixpoint *)
}

(** [debloat exe ~coverage ~oracle] where [oracle candidate] returns
    [Ok ()] if the candidate still passes the test suite, or
    [Error blocks] naming blocks that must be restored. *)
let debloat ?(max_iterations = 8) (exe : Self.t) ~(coverage : Covgraph.t)
    ~(oracle : Self.t -> (unit, Covgraph.block list) Stdlib.result) : result =
  let cfg = Cfg.of_self exe in
  let total = List.length (Cfg.real_blocks cfg) in
  let keep = Hashtbl.create 512 in
  List.iter
    (fun (b : Cfg.block) ->
      if Covgraph.mem_off coverage ~module_:exe.Self.name ~off:b.Cfg.bb_off then
        Hashtbl.replace keep b.Cfg.bb_off ())
    (Cfg.real_blocks cfg);
  let build () =
    let removed = ref 0 in
    let sections =
      List.map
        (fun (sec : Self.section) ->
          if not sec.Self.sec_prot.Self.p_x then sec
          else begin
            let data = Bytes.copy sec.Self.sec_data in
            List.iter
              (fun (b : Cfg.block) ->
                let in_sec =
                  b.Cfg.bb_off >= sec.Self.sec_off
                  && b.Cfg.bb_off < sec.Self.sec_off + Bytes.length data
                in
                if in_sec && b.Cfg.bb_size > 0 && not (Hashtbl.mem keep b.Cfg.bb_off)
                then begin
                  Bytes.fill data (b.Cfg.bb_off - sec.Self.sec_off) b.Cfg.bb_size '\xCC';
                  incr removed
                end)
              (Cfg.real_blocks cfg);
            { sec with Self.sec_data = data }
          end)
        exe.Self.sections
    in
    ({ exe with Self.sections }, !removed)
  in
  let rec iterate n =
    let candidate, removed = build () in
    if n >= max_iterations then (candidate, removed, n)
    else
      match oracle candidate with
      | Ok () -> (candidate, removed, n)
      | Error blocks ->
          List.iter
            (fun (b : Covgraph.block) ->
              match Cfg.block_containing cfg b.Covgraph.b_off with
              | Some sb -> Hashtbl.replace keep sb.Cfg.bb_off ()
              | None -> ())
            blocks;
          iterate (n + 1)
  in
  let binary, removed, iterations = iterate 0 in
  {
    c_binary = binary;
    c_stats = { Razor.s_total = total; s_kept = total - removed; s_removed = removed };
    c_iterations = iterations;
  }

(** Convenience oracle that accepts everything — pure trace-minimal cut. *)
let no_oracle : Self.t -> (unit, Covgraph.block list) Stdlib.result = fun _ -> Ok ()
