(** RAZOR-like static binary debloater (Qian et al., USENIX Security '19;
    the paper's primary comparison point in Figure 10).

    RAZOR keeps the basic blocks observed in training traces and then
    applies control-flow heuristics (its "zCode" levels) to keep *related*
    code that the traces missed — direct successors, fall-throughs, and
    error paths — trading debloating rate for robustness. Everything else
    is rewritten to trap instructions, once, for the whole lifetime of
    the binary: this is the static, time-insensitive cut DynaCut's
    timeline beats in Figure 10.

    Our implementation operates on SELF executables using the static CFG
    ({!Cfg}): [debloat] returns a new binary whose removed blocks are
    filled with [int3]. *)

type stats = {
  s_total : int;  (** static blocks in the binary *)
  s_kept : int;
  s_removed : int;
}

let percent_removed s =
  100. *. float_of_int s.s_removed /. float_of_int (max 1 s.s_total)

(** Heuristic expansion level, like RAZOR's zL0..zL3. Level 0 keeps only
    traced blocks; each level adds one ring of static CFG successors. *)
type level = L0 | L1 | L2 | L3

let level_rings = function L0 -> 0 | L1 -> 1 | L2 -> 2 | L3 -> 3

(** Compute the kept set of static block offsets. *)
let kept_blocks ~(cfg : Cfg.t) ~(coverage : Covgraph.t) ~(module_ : string)
    ~(level : level) : (int, unit) Hashtbl.t =
  let kept = Hashtbl.create 512 in
  (* seed: every static block whose start was traced *)
  List.iter
    (fun (b : Cfg.block) ->
      if Covgraph.mem_off coverage ~module_ ~off:b.Cfg.bb_off then
        Hashtbl.replace kept b.Cfg.bb_off ())
    (Cfg.real_blocks cfg);
  (* successor map from the static CFG (branch targets + fallthroughs) *)
  let succs = Hashtbl.create 512 in
  List.iter
    (fun (from_insn, target) ->
      match Cfg.block_containing cfg from_insn with
      | Some b ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt succs b.Cfg.bb_off) in
          Hashtbl.replace succs b.Cfg.bb_off (target :: cur)
      | None -> ())
    cfg.Cfg.cfg_edges;
  (* rings of expansion *)
  for _ = 1 to level_rings level do
    let frontier = Hashtbl.fold (fun off () acc -> off :: acc) kept [] in
    List.iter
      (fun off ->
        List.iter
          (fun tgt ->
            match Cfg.block_containing cfg tgt with
            | Some b -> Hashtbl.replace kept b.Cfg.bb_off ()
            | None -> ())
          (Option.value ~default:[] (Hashtbl.find_opt succs off)))
      frontier
  done;
  kept

(** Produce the statically debloated binary: blocks outside the kept set
    are filled with trap bytes. *)
let debloat ?(level = L1) (exe : Self.t) ~(coverage : Covgraph.t) : Self.t * stats
    =
  let cfg = Cfg.of_self exe in
  let kept = kept_blocks ~cfg ~coverage ~module_:exe.Self.name ~level in
  let total = List.length (Cfg.real_blocks cfg) in
  let removed = ref 0 in
  let sections =
    List.map
      (fun (sec : Self.section) ->
        if not sec.Self.sec_prot.Self.p_x then sec
        else begin
          let data = Bytes.copy sec.Self.sec_data in
          List.iter
            (fun (b : Cfg.block) ->
              let in_sec =
                b.Cfg.bb_off >= sec.Self.sec_off
                && b.Cfg.bb_off < sec.Self.sec_off + Bytes.length data
              in
              if in_sec && b.Cfg.bb_size > 0 && not (Hashtbl.mem kept b.Cfg.bb_off)
              then begin
                Bytes.fill data (b.Cfg.bb_off - sec.Self.sec_off) b.Cfg.bb_size '\xCC';
                incr removed
              end)
            (Cfg.real_blocks cfg);
          { sec with Self.sec_data = data }
        end)
      exe.Self.sections
  in
  ( { exe with Self.sections },
    { s_total = total; s_kept = total - !removed; s_removed = !removed } )

(** Live-block count of the debloated binary — the flat line of
    Figure 10. *)
let live_blocks (s : stats) = s.s_kept
