lib/baselines/razor.ml: Bytes Cfg Covgraph Hashtbl List Option Self
