lib/baselines/chisel.ml: Bytes Cfg Covgraph Hashtbl List Razor Self Stdlib
