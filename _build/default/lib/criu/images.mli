(** CRIU process images: one checkpoint = core + mm + pagemap + pages +
    files + tcp, mirroring the files the paper's modified CRIT edits
    (§3.3). Binary codec included; {!Crit} provides the text form. *)

type regs_img = { r_gpr : int64 array; r_rip : int64; r_flags : int }

type sigaction_img = { sg_signum : int; sg_handler : int64; sg_restorer : int64 }

type core = {
  c_pid : int;
  c_parent : int;
  c_comm : string;
  c_exe : string;
  c_regs : regs_img;
  c_sigactions : sigaction_img list;
  c_state : string;
  c_seccomp : int list option;  (** denied-syscall filter, if installed *)
}

type vma_img = {
  vi_start : int64;
  vi_len : int;
  vi_prot : int;  (** {!Self.prot_to_int} encoding *)
  vi_file : (string * int) option;  (** backing file + offset *)
  vi_name : string;
}

type pagemap_entry = { pm_vaddr : int64; pm_npages : int; pm_off : int }

type fd_img =
  | Fi_stdin
  | Fi_stdout
  | Fi_stderr
  | Fi_file of string * int
  | Fi_listener of int
  | Fi_sock of int

type files = { f_fds : (int * fd_img) list; f_next_fd : int }
type tcp = Net.conn_snapshot list

type t = {
  core : core;
  mm : vma_img list;
  pagemap : pagemap_entry list;
  pages : bytes;
  files : files;
  tcp : tcp;
  mmap_hint : int64;
}

val page_size : int

val image_size : t -> int
(** Approximate on-disk size — the "image size" of Figure 7. *)

val find_vma : t -> int64 -> vma_img option

val read_mem : t -> int64 -> int -> bytes
(** Read dumped memory at a virtual address. Raises [Not_found] if the
    range is not fully populated. *)

val write_mem : t -> int64 -> bytes -> unit
(** Patch dumped memory in place; raises [Not_found] outside populated
    pages. *)

exception Format_error of string

val encode : t -> string
val decode : string -> t
