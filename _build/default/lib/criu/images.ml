(** CRIU process images.

    One checkpoint of one process = five image files, mirroring the files
    the paper's modified CRIT edits (§3.3):

    - {b core}: pid/comm/exe, registers, signal dispositions (the file
      DynaCut patches to register its SIGTRAP handler + restorer);
    - {b mm}: the full VMA list (start, end, prot, backing file, offset);
    - {b pagemap}: which virtual pages are populated with dumped data;
    - {b pages}: the raw page contents, in pagemap order;
    - {b files} and {b tcp}: fd table and established-connection state
      (the [TCP_REPAIR] data that lets live connections survive restore).

    Each image has a binary (TLV-flavoured) codec used for the tmpfs
    files, and {!Crit} provides the decode/encode text round-trip. *)

type regs_img = {
  r_gpr : int64 array;  (** 16 *)
  r_rip : int64;
  r_flags : int;
}

type sigaction_img = { sg_signum : int; sg_handler : int64; sg_restorer : int64 }

type core = {
  c_pid : int;
  c_parent : int;
  c_comm : string;
  c_exe : string;
  c_regs : regs_img;
  c_sigactions : sigaction_img list;
  c_state : string;  (** informational: Proc.state_to_string at dump *)
  c_seccomp : int list option;  (** denied-syscall filter, if installed *)
}

type vma_img = {
  vi_start : int64;
  vi_len : int;
  vi_prot : int;  (** Self.prot_to_int encoding *)
  vi_file : (string * int) option;
  vi_name : string;
}

(** A run of consecutive populated pages, with its bytes' offset into the
    pages image. *)
type pagemap_entry = { pm_vaddr : int64; pm_npages : int; pm_off : int }

type fd_img =
  | Fi_stdin
  | Fi_stdout
  | Fi_stderr
  | Fi_file of string * int
  | Fi_listener of int
  | Fi_sock of int

type files = { f_fds : (int * fd_img) list; f_next_fd : int }

type tcp = Net.conn_snapshot list

type t = {
  core : core;
  mm : vma_img list;
  pagemap : pagemap_entry list;
  pages : bytes;
  files : files;
  tcp : tcp;
  mmap_hint : int64;
}

let page_size = 4096

(** Total bytes across all images — the "image size" Figure 7 reports. *)
let image_size (t : t) =
  Bytes.length t.pages + (List.length t.mm * 64) + (List.length t.pagemap * 24) + 256

let find_vma (t : t) addr =
  List.find_opt
    (fun v ->
      addr >= v.vi_start && addr < Int64.add v.vi_start (Int64.of_int v.vi_len))
    t.mm

(** Read [len] bytes at virtual address [addr] out of the dumped pages.
    Raises [Not_found] if the range is not fully populated. *)
let read_mem (t : t) (addr : int64) (len : int) : bytes =
  let out = Bytes.create len in
  let got = ref 0 in
  List.iter
    (fun pm ->
      let run_start = pm.pm_vaddr in
      let run_len = pm.pm_npages * page_size in
      let run_end = Int64.add run_start (Int64.of_int run_len) in
      for k = 0 to len - 1 do
        let a = Int64.add addr (Int64.of_int k) in
        if a >= run_start && a < run_end then begin
          let off = pm.pm_off + Int64.to_int (Int64.sub a run_start) in
          Bytes.set out k (Bytes.get t.pages off);
          incr got
        end
      done)
    t.pagemap;
  if !got < len then raise Not_found;
  out

(** Write [data] at virtual address [addr] into the dumped pages in place.
    Raises [Not_found] if any byte falls outside populated pages. *)
let write_mem (t : t) (addr : int64) (data : bytes) : unit =
  let len = Bytes.length data in
  let written = Array.make len false in
  List.iter
    (fun pm ->
      let run_start = pm.pm_vaddr in
      let run_len = pm.pm_npages * page_size in
      let run_end = Int64.add run_start (Int64.of_int run_len) in
      for k = 0 to len - 1 do
        let a = Int64.add addr (Int64.of_int k) in
        if a >= run_start && a < run_end then begin
          let off = pm.pm_off + Int64.to_int (Int64.sub a run_start) in
          Bytes.set t.pages off (Bytes.get data k);
          written.(k) <- true
        end
      done)
    t.pagemap;
  if Array.exists not written then raise Not_found

(* ---------- binary codec ---------- *)

let magic = "CRIU\x01"

exception Format_error of string

let encode (t : t) : string =
  let open Bytesx.W in
  let b = create ~size:(Bytes.length t.pages + 1024) () in
  string b magic;
  (* core *)
  int_as_u64 b t.core.c_pid;
  int_as_u64 b t.core.c_parent;
  lstring b t.core.c_comm;
  lstring b t.core.c_exe;
  Array.iter (u64 b) t.core.c_regs.r_gpr;
  u64 b t.core.c_regs.r_rip;
  u32 b t.core.c_regs.r_flags;
  u32 b (List.length t.core.c_sigactions);
  List.iter
    (fun s ->
      u32 b s.sg_signum;
      u64 b s.sg_handler;
      u64 b s.sg_restorer)
    t.core.c_sigactions;
  lstring b t.core.c_state;
  (match t.core.c_seccomp with
  | None -> u8 b 0
  | Some denied ->
      u8 b 1;
      u32 b (List.length denied);
      List.iter (u32 b) denied);
  (* mm *)
  u32 b (List.length t.mm);
  List.iter
    (fun v ->
      u64 b v.vi_start;
      int_as_u64 b v.vi_len;
      u8 b v.vi_prot;
      (match v.vi_file with
      | None -> u8 b 0
      | Some (f, off) ->
          u8 b 1;
          lstring b f;
          int_as_u64 b off);
      lstring b v.vi_name)
    t.mm;
  (* pagemap *)
  u32 b (List.length t.pagemap);
  List.iter
    (fun pm ->
      u64 b pm.pm_vaddr;
      u32 b pm.pm_npages;
      int_as_u64 b pm.pm_off)
    t.pagemap;
  (* pages *)
  lbytes b t.pages;
  (* files *)
  u32 b (List.length t.files.f_fds);
  List.iter
    (fun (fd, k) ->
      u32 b fd;
      match k with
      | Fi_stdin -> u8 b 0
      | Fi_stdout -> u8 b 1
      | Fi_stderr -> u8 b 2
      | Fi_file (p, pos) ->
          u8 b 3;
          lstring b p;
          int_as_u64 b pos
      | Fi_listener port ->
          u8 b 4;
          u32 b port
      | Fi_sock cid ->
          u8 b 5;
          u32 b cid)
    t.files.f_fds;
  u32 b t.files.f_next_fd;
  (* tcp *)
  u32 b (List.length t.tcp);
  List.iter
    (fun (s : Net.conn_snapshot) ->
      u32 b s.Net.cs_id;
      u32 b s.Net.cs_port;
      lstring b s.Net.cs_c2s;
      u32 b s.Net.cs_c2s_consumed;
      lstring b s.Net.cs_s2c;
      u32 b s.Net.cs_s2c_consumed;
      u8 b (if s.Net.cs_client_closed then 1 else 0);
      u8 b (if s.Net.cs_server_closed then 1 else 0))
    t.tcp;
  u64 b t.mmap_hint;
  contents b

let decode (s : string) : t =
  let open Bytesx.R in
  let r = of_string s in
  if take r (String.length magic) <> magic then raise (Format_error "bad magic");
  let c_pid = int_of_u64 r in
  let c_parent = int_of_u64 r in
  let c_comm = lstring r in
  let c_exe = lstring r in
  let r_gpr = Array.init 16 (fun _ -> u64 r) in
  let r_rip = u64 r in
  let r_flags = u32 r in
  let nsig = u32 r in
  let c_sigactions =
    List.init nsig (fun _ ->
        let sg_signum = u32 r in
        let sg_handler = u64 r in
        let sg_restorer = u64 r in
        { sg_signum; sg_handler; sg_restorer })
  in
  let c_state = lstring r in
  let c_seccomp =
    match u8 r with
    | 0 -> None
    | _ ->
        let n = u32 r in
        Some (List.init n (fun _ -> u32 r))
  in
  let nvma = u32 r in
  let mm =
    List.init nvma (fun _ ->
        let vi_start = u64 r in
        let vi_len = int_of_u64 r in
        let vi_prot = u8 r in
        let vi_file =
          match u8 r with
          | 0 -> None
          | _ ->
              let f = lstring r in
              let off = int_of_u64 r in
              Some (f, off)
        in
        let vi_name = lstring r in
        { vi_start; vi_len; vi_prot; vi_file; vi_name })
  in
  let npm = u32 r in
  let pagemap =
    List.init npm (fun _ ->
        let pm_vaddr = u64 r in
        let pm_npages = u32 r in
        let pm_off = int_of_u64 r in
        { pm_vaddr; pm_npages; pm_off })
  in
  let pages = lbytes r in
  let nfd = u32 r in
  let f_fds =
    List.init nfd (fun _ ->
        let fd = u32 r in
        let k =
          match u8 r with
          | 0 -> Fi_stdin
          | 1 -> Fi_stdout
          | 2 -> Fi_stderr
          | 3 ->
              let p = lstring r in
              let pos = int_of_u64 r in
              Fi_file (p, pos)
          | 4 -> Fi_listener (u32 r)
          | 5 -> Fi_sock (u32 r)
          | k -> raise (Format_error (Printf.sprintf "bad fd kind %d" k))
        in
        (fd, k))
  in
  let f_next_fd = u32 r in
  let ntcp = u32 r in
  let tcp =
    List.init ntcp (fun _ ->
        let cs_id = u32 r in
        let cs_port = u32 r in
        let cs_c2s = lstring r in
        let cs_c2s_consumed = u32 r in
        let cs_s2c = lstring r in
        let cs_s2c_consumed = u32 r in
        let cs_client_closed = u8 r = 1 in
        let cs_server_closed = u8 r = 1 in
        {
          Net.cs_id;
          cs_port;
          cs_c2s;
          cs_c2s_consumed;
          cs_s2c;
          cs_s2c_consumed;
          cs_client_closed;
          cs_server_closed;
        })
  in
  let mmap_hint = u64 r in
  {
    core =
      {
        c_pid;
        c_parent;
        c_comm;
        c_exe;
        c_regs = { r_gpr; r_rip; r_flags };
        c_sigactions;
        c_state;
        c_seccomp;
      };
    mm;
    pagemap;
    pages;
    files = { f_fds; f_next_fd };
    tcp;
    mmap_hint;
  }
