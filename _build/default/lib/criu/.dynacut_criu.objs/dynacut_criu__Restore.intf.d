lib/criu/restore.mli: Images Machine Proc
