lib/criu/crit.ml: Array Bytes Bytesx Char Images Int64 List Net Printf Self Sexpr String Table
