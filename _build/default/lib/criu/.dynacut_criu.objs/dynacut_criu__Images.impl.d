lib/criu/images.ml: Array Bytes Bytesx Int64 List Net Printf String
