lib/criu/images.mli: Net
