lib/criu/checkpoint.ml: Abi Array Buffer Fun Hashtbl Images Int64 List Machine Mem Net Printf Proc Self Vfs
