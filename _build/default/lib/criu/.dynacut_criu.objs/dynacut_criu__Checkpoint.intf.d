lib/criu/checkpoint.mli: Images Machine
