lib/criu/restore.ml: Array Bytes Hashtbl Images Int64 List Machine Mem Net Printf Proc Self Vfs
