(** Checkpoint: dump a frozen process into {!Images}. *)

type mode =
  | Vanilla
      (** stock CRIU: file-backed executable pages are *not* dumped and
          fault back in from the binary at restore — losing any code
          patches, the problem the paper's CRIU change fixes (§3.3) *)
  | Dynacut  (** also dump PROT_EXEC | FILE_PRIVATE pages *)

val dump : Machine.t -> pid:int -> ?mode:mode -> unit -> Images.t
(** Dump one (frozen) process. *)

val dump_tree : Machine.t -> root:int -> ?mode:mode -> unit -> Images.t list
(** Dump a process and its live descendants (multi-process apps). *)

val save_to_tmpfs : Machine.t -> dir:string -> Images.t -> string
(** Serialize into the machine's tmpfs (§3.3); returns the path. *)
