(** The kernel ABI shared between the machine and guest code generators:
    syscall numbers, signal numbers, and the signal-frame layout.

    Guest libc ({!Dynacut_guestlib}) and the machine's syscall dispatcher
    both read these constants, so they can never drift apart. *)

(* --- syscall numbers (in rax; args in rdi, rsi, rdx, rcx) --- *)

let sys_exit = 0
let sys_write = 1
let sys_read = 2
let sys_open = 3
let sys_close = 4
let sys_mmap = 5
let sys_munmap = 6
let sys_mprotect = 7
let sys_fork = 8
let sys_sigaction = 9
let sys_sigreturn = 10
let sys_nanosleep = 11
let sys_getpid = 12
let sys_socket = 13
let sys_bind = 14
let sys_listen = 15
let sys_accept = 16
let sys_recv = 17
let sys_send = 18
let sys_gettime = 19
let sys_kill = 20
let sys_rand = 21

let syscall_name = function
  | 0 -> "exit"
  | 1 -> "write"
  | 2 -> "read"
  | 3 -> "open"
  | 4 -> "close"
  | 5 -> "mmap"
  | 6 -> "munmap"
  | 7 -> "mprotect"
  | 8 -> "fork"
  | 9 -> "sigaction"
  | 10 -> "sigreturn"
  | 11 -> "nanosleep"
  | 12 -> "getpid"
  | 13 -> "socket"
  | 14 -> "bind"
  | 15 -> "listen"
  | 16 -> "accept"
  | 17 -> "recv"
  | 18 -> "send"
  | 19 -> "gettime"
  | 20 -> "kill"
  | 21 -> "rand"
  | n -> Printf.sprintf "sys_%d" n

(* --- errno-style return values (negative, like raw Linux syscalls) --- *)

let enoent = -2
let ebadf = -9
let enomem = -12
let efault = -14
let einval = -22
let enosys = -38
let econnreset = -104

(* --- signals --- *)

let sigill = 4
let sigtrap = 5
let sigfpe = 8
let sigkill = 9
let sigsegv = 11
let sigterm = 15
let sigsys = 31
let nsig = 32

let signal_name = function
  | 4 -> "SIGILL"
  | 5 -> "SIGTRAP"
  | 8 -> "SIGFPE"
  | 9 -> "SIGKILL"
  | 11 -> "SIGSEGV"
  | 15 -> "SIGTERM"
  | 31 -> "SIGSYS"
  | n -> Printf.sprintf "SIG%d" n

(* --- signal frame layout (pushed on the user stack at delivery) ---

   offset  field
   0       magic (FRAME_MAGIC)
   8       signal number
   16      saved rip            <- handlers rewrite this to redirect
   24      saved flags (bit0 zf, bit1 sf, bit2 cf, bit3 of)
   32      saved r0..r15 (16 x 8 bytes)
   total   160 bytes

   Delivery pushes the frame, then pushes the sigaction's restorer address
   as the handler's return address, and sets rdi = signum,
   rsi = frame address. The restorer issues sys_sigreturn with rsp at the
   frame base. *)

let frame_magic = 0x51C7F4A3L
let frame_size = 160
let frame_off_magic = 0
let frame_off_signum = 8
let frame_off_rip = 16
let frame_off_flags = 24
let frame_off_regs = 32

(* --- mmap prot bits (match Self.prot_to_int) --- *)

let prot_read = 4
let prot_write = 2
let prot_exec = 1

(* --- file descriptors --- *)

let fd_stdin = 0
let fd_stdout = 1
let fd_stderr = 2
