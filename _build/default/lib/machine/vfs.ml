(** Machine-wide simulated filesystem.

    Stores SELF binaries, shared libraries, and application config files.
    Server workloads read their configuration from here during the
    initialization phase — the code DynaCut later removes. Also hosts the
    tmpfs directory the paper checkpoints into (§3.3). *)

type t = { files : (string, string) Hashtbl.t }

let create () = { files = Hashtbl.create 32 }
let add t path content = Hashtbl.replace t.files path content
let find t path = Hashtbl.find_opt t.files path
let exists t path = Hashtbl.mem t.files path
let remove t path = Hashtbl.remove t.files path

let size t path =
  match find t path with Some c -> String.length c | None -> 0

let list t = Hashtbl.fold (fun k _ acc -> k :: acc) t.files [] |> List.sort compare

(** Store / fetch a SELF binary. *)
let add_self t path (s : Self.t) = add t path (Self.to_bytes s)

let find_self t path =
  match find t path with
  | None -> None
  | Some c -> (
      try Some (Self.of_bytes c)
      with Self.Format_error _ | Bytesx.Truncated _ -> None)
