(** Machine-wide simulated filesystem: binaries, libraries, config files,
    and the tmpfs directory checkpoints land in (§3.3). *)

type t

val create : unit -> t
val add : t -> string -> string -> unit
val find : t -> string -> string option
val exists : t -> string -> bool
val remove : t -> string -> unit
val size : t -> string -> int
val list : t -> string list

val add_self : t -> string -> Self.t -> unit
(** Store a SELF binary at a path. *)

val find_self : t -> string -> Self.t option
(** Decode a stored SELF binary; [None] for plain files. *)
