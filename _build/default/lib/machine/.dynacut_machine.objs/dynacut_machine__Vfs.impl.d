lib/machine/vfs.ml: Bytesx Hashtbl List Self String
