lib/machine/machine.mli: Hashtbl Net Proc Rng Vfs
