lib/machine/vfs.mli: Self
