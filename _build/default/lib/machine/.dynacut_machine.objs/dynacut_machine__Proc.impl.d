lib/machine/proc.ml: Abi Array Buffer Hashtbl Mem Printf Reg String
