lib/machine/mem.mli: Hashtbl Self
