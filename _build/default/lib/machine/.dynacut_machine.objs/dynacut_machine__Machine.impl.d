lib/machine/machine.ml: Abi Array Buffer Bytes Bytesx Decode Hashtbl Insn Int64 List Loader Mem Net Printf Proc Reg Rng Self String Vfs
