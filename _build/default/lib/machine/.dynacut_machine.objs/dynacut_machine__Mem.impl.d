lib/machine/mem.ml: Buffer Bytes Char Fun Hashtbl Int64 List Printf Self
