lib/machine/proc.mli: Buffer Hashtbl Mem Reg
