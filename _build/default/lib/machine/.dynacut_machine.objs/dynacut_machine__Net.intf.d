lib/machine/net.mli: Buffer
