lib/machine/net.ml: Buffer Hashtbl String
