lib/machine/abi.ml: Printf
