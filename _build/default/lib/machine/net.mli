(** Machine-wide simulated TCP: listeners keyed by port, bidirectional
    byte-queue connections. Connections live in the "kernel", which is
    what makes CRIU-style TCP repair possible: a restored process
    re-attaches to still-existing connection objects, so clients survive
    a DynaCut rewrite (§3.3, Figure 8). *)

type conn = {
  conn_id : int;
  conn_port : int;
  c2s : Buffer.t;
  s2c : Buffer.t;
  mutable c2s_consumed : int;
  mutable s2c_consumed : int;
  mutable client_closed : bool;
  mutable server_closed : bool;
}

type listener = {
  l_port : int;
  mutable backlog : conn list;
  mutable accepting : bool;
}

type t

val create : unit -> t

val listen : t -> int -> listener
(** Register (or fetch) the listener on a port. *)

val find_listener : t -> int -> listener option
val find_conn : t -> int -> conn option

(** {2 Host (driver/client) side} *)

exception Refused of int

val connect : t -> int -> conn
(** Connect to a guest listener; raises {!Refused} if nothing listens. *)

val client_send : conn -> string -> unit
val client_recv : conn -> string
(** Drain everything the server wrote since the last call. *)

val client_pending : conn -> int
val client_close : conn -> unit

(** {2 Guest (server) side} *)

val server_accept : listener -> conn option
val server_pending : conn -> int

val server_recv : conn -> int -> string option
(** [None] = would block; [Some ""] = peer closed (EOF). *)

val server_send : conn -> string -> int
val server_close : conn -> unit

(** {2 Checkpoint support (TCP repair)} *)

type conn_snapshot = {
  cs_id : int;
  cs_port : int;
  cs_c2s : string;
  cs_c2s_consumed : int;
  cs_s2c : string;
  cs_s2c_consumed : int;
  cs_client_closed : bool;
  cs_server_closed : bool;
}

val snapshot_conn : conn -> conn_snapshot

val repair_conn : t -> conn_snapshot -> conn
(** Re-attach a snapshotted connection: in-place rewrites keep the live
    kernel object (client bytes sent during the freeze are preserved);
    migration-style restores rebuild it from the snapshot. *)
