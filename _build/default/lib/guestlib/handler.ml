(** The injectable SIGTRAP handler library, [dynacut_handler.so]
    (paper §3.2.2–§3.2.3 and Figure 5).

    Position-independent shared object containing:
    - [dc_handler(signum, frame)] — the fault handler. Reads the saved
      instruction pointer from the signal frame, looks it up in the policy
      table and either {b redirects} the saved rip to the application's
      default error path, {b terminates}, or — in {b verifier} mode —
      restores the original first byte of the block, logs the false
      positive, and retries (§3.2.3).
    - [__dc_restorer] — the sigreturn trampoline registered as the
      sigaction restorer (the paper's 9-byte [rt_sigreturn] stub).
    - a [.data] policy area that DynaCut's injector patches: mode, table
      length, and (address, payload) pairs.

    The library calls libc's [exit] and [mprotect] through its own
    PLT/GOT, which is exactly why DynaCut must perform PLT relocations
    when injecting it (§3.3). *)

open Dsl

(** Policy modes stored in [dc_mode]. *)
let mode_terminate = 0L

let mode_redirect = 1L
let mode_verify = 2L

let max_table_entries = 4096
let max_log_entries = 4096

(** Exit status used when a blocked feature is touched under the
    terminate policy; distinctive so tests can assert on it. *)
let blocked_exit_status = 13

let minic =
  unit_ "dynacut_handler"
    ~globals:
      [
        global_q "dc_mode" [ mode_terminate ];
        global_q "dc_table_len" [ 0L ];
        global_zero "dc_table" (max_table_entries * 16);
        global_q "dc_log_len" [ 0L ];
        global_zero "dc_log" (max_log_entries * 8);
        global_q "dc_hits" [ 0L ];
      ]
    [
      func "dc_handler" [ "signum"; "frame" ]
        [
          expr (v "signum");
          decl "rip" (load64 (v "frame" +: i Abi.frame_off_rip));
          decl "mode" (v "dc_mode");
          set "dc_hits" (v "dc_hits" +: i 1);
          when_ (v "mode" ==: i 0) [ do_ "exit" [ i blocked_exit_status ] ];
          decl "n" (v "dc_table_len");
          decl "t" (addr "dc_table");
          decl "k" (i 0);
          decl "entry" (i 0);
          while_ (v "k" <: v "n")
            [
              set "entry" (v "t" +: (v "k" *: i 16));
              when_
                (load64 (v "entry") ==: v "rip")
                [
                  if_ (v "mode" ==: i 1)
                    [
                      (* redirect: rewrite the saved instruction pointer so
                         sigreturn lands on the error path (Figure 5, step 3) *)
                      store64 (v "frame" +: i Abi.frame_off_rip)
                        (load64 (v "entry" +: i 8));
                      ret (i 0);
                    ]
                    [
                      (* verifier: restore the original byte and retry *)
                      decl "page" ((v "rip" >>: i 12) <<: i 12);
                      do_ "mprotect" [ v "page"; i 4096; i 7 ];
                      store8 (v "rip") (load64 (v "entry" +: i 8));
                      do_ "mprotect" [ v "page"; i 4096; i 5 ];
                      decl "ln" (v "dc_log_len");
                      store64 (addr "dc_log" +: (v "ln" *: i 8)) (v "rip");
                      set "dc_log_len" (v "ln" +: i 1);
                      ret (i 0);
                    ];
                ];
              set "k" (v "k" +: i 1);
            ];
          (* rip not in the table: fail closed *)
          do_ "exit" [ i blocked_exit_status ];
          ret0;
        ];
    ]

(* The signal restorer: rt_sigreturn with rsp at the frame base. *)
let restorer_items =
  [
    Asm.Section ".text";
    Asm.Align 16;
    Asm.Global "__dc_restorer";
    Asm.Label "__dc_restorer";
    Asm.Ins (Insn.Mov_ri (Reg.Rax, Int64.of_int Abi.sys_sigreturn));
    Asm.Ins Insn.Syscall;
  ]

(** Build [dynacut_handler.so] against a given libc. *)
let build ~libc () : Self.t =
  let items = Compile.compile_unit minic @ restorer_items in
  let obj = Asm.assemble ~name:"dynacut_handler" items in
  Link.link_shared ~name:"dynacut_handler.so" ~libs:[ libc ] obj

(* --- symbol names the DynaCut injector patches --- *)

let sym_handler = "dc_handler"
let sym_restorer = "__dc_restorer"
let sym_mode = "dc_mode"
let sym_table_len = "dc_table_len"
let sym_table = "dc_table"
let sym_log_len = "dc_log_len"
let sym_log = "dc_log"
let sym_hits = "dc_hits"
