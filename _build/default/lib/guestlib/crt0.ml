(** Process startup stub: [_start] calls [main] and passes its return
    value to [exit]. Appended to every application object before linking. *)

let items =
  [
    Asm.Section ".text";
    Asm.Global "_start";
    Asm.Label "_start";
    Asm.Call_sym "main";
    Asm.Ins (Insn.Mov_rr (Reg.Rdi, Reg.Rax));
    Asm.Ins (Insn.Mov_ri (Reg.Rax, Int64.of_int Abi.sys_exit));
    Asm.Ins Insn.Syscall;
  ]

(** Build a complete application: compile the MiniC unit, add [_start],
    link against libc. [func_align] = 4096 gives the page-per-function
    layout for unmap-based feature unloading (paper §5). *)
let link_app ?func_align ?(extra_items = []) ~libc (u : Ast.comp_unit) : Self.t =
  let obj =
    Asm.assemble ~name:u.Ast.cu_name
      (Compile.compile_unit ?func_align u @ extra_items @ items)
  in
  Link.link_exec ~name:u.Ast.cu_name ~entry:"_start" ~libs:[ libc ] obj
