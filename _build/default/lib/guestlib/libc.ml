(** The guest C library, [libc.so].

    Two layers, like a real libc:
    - raw syscall wrappers (hand-written vx86: load the syscall number,
      [syscall], [ret] — arguments are already in the right registers);
    - string/memory/format routines compiled from MiniC, so the library
      has real loops and basic blocks. The paper's tracediff filters
      library blocks out of feature diffs (§3.1), and its PLT analysis
      counts entries pointing at these functions (§4.2) — both need a
      libc with genuine code in it. *)

open Dsl

let syswrap name nr =
  [
    Asm.Align 16;
    Asm.Global name;
    Asm.Label name;
    Asm.Ins (Insn.Mov_ri (Reg.Rax, Int64.of_int nr));
    Asm.Ins Insn.Syscall;
    Asm.Ins Insn.Ret;
  ]

let syscall_wrappers =
  List.concat_map
    (fun (name, nr) -> syswrap name nr)
    [
      ("exit", Abi.sys_exit);
      ("write", Abi.sys_write);
      ("read", Abi.sys_read);
      ("open", Abi.sys_open);
      ("close", Abi.sys_close);
      ("mmap", Abi.sys_mmap);
      ("munmap", Abi.sys_munmap);
      ("mprotect", Abi.sys_mprotect);
      ("fork", Abi.sys_fork);
      ("sigaction", Abi.sys_sigaction);
      ("nanosleep", Abi.sys_nanosleep);
      ("getpid", Abi.sys_getpid);
      ("socket", Abi.sys_socket);
      ("bind", Abi.sys_bind);
      ("listen", Abi.sys_listen);
      ("accept", Abi.sys_accept);
      ("recv", Abi.sys_recv);
      ("send", Abi.sys_send);
      ("gettime", Abi.sys_gettime);
      ("kill", Abi.sys_kill);
      ("rand", Abi.sys_rand);
    ]

(* MiniC layer *)
let minic =
  unit_ "libc"
    ~globals:[ global_zero "__itoa_buf" 32; global_zero "__itoa_tmp" 32 ]
    [
      func "strlen" [ "p" ]
        [
          decl "n" (i 0);
          while_ (load8 (v "p" +: v "n") <>: i 0) [ set "n" (v "n" +: i 1) ];
          ret (v "n");
        ];
      func "strcmp" [ "a"; "b" ]
        [
          decl "ca" (i 0);
          decl "cb" (i 0);
          forever
            [
              set "ca" (load8 (v "a"));
              set "cb" (load8 (v "b"));
              when_ (v "ca" <>: v "cb") [ ret (v "ca" -: v "cb") ];
              when_ (v "ca" ==: i 0) [ ret (i 0) ];
              set "a" (v "a" +: i 1);
              set "b" (v "b" +: i 1);
            ];
          ret0;
        ];
      func "strncmp" [ "a"; "b"; "n" ]
        [
          decl "ca" (i 0);
          decl "cb" (i 0);
          while_ (v "n" >: i 0)
            [
              set "ca" (load8 (v "a"));
              set "cb" (load8 (v "b"));
              when_ (v "ca" <>: v "cb") [ ret (v "ca" -: v "cb") ];
              when_ (v "ca" ==: i 0) [ ret (i 0) ];
              set "a" (v "a" +: i 1);
              set "b" (v "b" +: i 1);
              set "n" (v "n" -: i 1);
            ];
          ret (i 0);
        ];
      func "memcpy" [ "d"; "src"; "n" ]
        [
          decl "k" (i 0);
          while_ (v "k" <: v "n")
            [
              store8 (v "d" +: v "k") (load8 (v "src" +: v "k"));
              set "k" (v "k" +: i 1);
            ];
          ret (v "d");
        ];
      func "memset" [ "d"; "c"; "n" ]
        [
          decl "k" (i 0);
          while_ (v "k" <: v "n")
            [ store8 (v "d" +: v "k") (v "c"); set "k" (v "k" +: i 1) ];
          ret (v "d");
        ];
      func "strcpy" [ "d"; "src" ]
        [
          decl "k" (i 0);
          decl "c" (i 1);
          while_ (v "c" <>: i 0)
            [
              set "c" (load8 (v "src" +: v "k"));
              store8 (v "d" +: v "k") (v "c");
              set "k" (v "k" +: i 1);
            ];
          ret (v "d");
        ];
      (* find [c] in [s]; index or -1 *)
      func "strchr_idx" [ "p"; "c" ]
        [
          decl "k" (i 0);
          decl "ch" (i 0);
          forever
            [
              set "ch" (load8 (v "p" +: v "k"));
              when_ (v "ch" ==: v "c") [ ret (v "k") ];
              when_ (v "ch" ==: i 0) [ ret (neg (i 1)) ];
              set "k" (v "k" +: i 1);
            ];
          ret0;
        ];
      func "atoi" [ "p" ]
        [
          decl "sign" (i 1);
          decl "val" (i 0);
          decl "c" (i 0);
          when_ (load8 (v "p") ==: i 45 (* '-' *))
            [ set "sign" (neg (i 1)); set "p" (v "p" +: i 1) ];
          forever
            [
              set "c" (load8 (v "p"));
              if_ ((v "c" >=: i 48) &&: (v "c" <=: i 57))
                [
                  set "val" ((v "val" *: i 10) +: (v "c" -: i 48));
                  set "p" (v "p" +: i 1);
                ]
                [ ret (v "val" *: v "sign") ];
            ];
          ret0;
        ];
      (* format [value] as decimal into [buf]; returns length *)
      func "itoa" [ "buf"; "value" ]
        [
          decl "len" (i 0);
          decl "neg" (i 0);
          decl "tmp" (addr "__itoa_tmp");
          decl "k" (i 0);
          when_ (v "value" <: i 0) [ set "neg" (i 1); set "value" (i 0 -: v "value") ];
          if_ (v "value" ==: i 0)
            [ store8 (v "tmp") (i 48); set "k" (i 1) ]
            [
              while_ (v "value" >: i 0)
                [
                  store8 (v "tmp" +: v "k") ((v "value" %: i 10) +: i 48);
                  set "value" (v "value" /: i 10);
                  set "k" (v "k" +: i 1);
                ];
            ];
          when_ (v "neg" ==: i 1)
            [ store8 (v "buf") (i 45); set "len" (i 1) ];
          (* reverse digits into buf *)
          while_ (v "k" >: i 0)
            [
              set "k" (v "k" -: i 1);
              store8 (v "buf" +: v "len") (load8 (v "tmp" +: v "k"));
              set "len" (v "len" +: i 1);
            ];
          store8 (v "buf" +: v "len") (i 0);
          ret (v "len");
        ];
      func "puts" [ "p" ]
        [
          do_ "write" [ i 1; v "p"; call "strlen" [ v "p" ] ];
          ret (call "write" [ i 1; s "\n"; i 1 ]);
        ];
      (* write a string then a decimal then a newline to stdout: the log
         line servers print when initialization completes *)
      func "log_kv" [ "msg"; "value" ]
        [
          do_ "write" [ i 1; v "msg"; call "strlen" [ v "msg" ] ];
          decl "n" (call "itoa" [ addr "__itoa_buf"; v "value" ]);
          do_ "write" [ i 1; addr "__itoa_buf"; v "n" ];
          ret (call "write" [ i 1; s "\n"; i 1 ]);
        ];
    ]

(** Build and link [libc.so]. *)
let build () : Self.t =
  let items = Compile.compile_unit minic @ (Asm.Section ".text" :: syscall_wrappers) in
  let obj = Asm.assemble ~name:"libc" items in
  Link.link_shared ~name:"libc.so" obj
