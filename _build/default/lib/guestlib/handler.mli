(** The injectable SIGTRAP handler library, [dynacut_handler.so]
    (paper §3.2.2–§3.2.3, Figure 5): a position-independent shared object
    whose handler looks the trapping address up in a policy table and
    redirects the saved instruction pointer, terminates, or — in verifier
    mode — restores the original byte and logs the false positive. The
    policy area is patched by {!Dynacut_core.Inject.write_policy}. *)

val mode_terminate : int64
val mode_redirect : int64
val mode_verify : int64

val max_table_entries : int
val max_log_entries : int

val blocked_exit_status : int
(** exit(13): the status the terminate policy uses, asserted by tests. *)

val minic : Ast.comp_unit
(** The handler's MiniC source (exposed for inspection/disassembly). *)

val build : libc:Self.t -> unit -> Self.t
(** Link [dynacut_handler.so] against a libc (its [exit]/[mprotect]
    calls go through its own PLT/GOT — why injection re-runs PLT
    relocations, §3.3). *)

(** {2 Symbol names the injector patches} *)

val sym_handler : string
val sym_restorer : string
val sym_mode : string
val sym_table_len : string
val sym_table : string
val sym_log_len : string
val sym_log : string
val sym_hits : string
