lib/guestlib/handler.ml: Abi Asm Compile Dsl Insn Int64 Link Reg Self
