lib/guestlib/crt0.ml: Abi Asm Ast Compile Insn Int64 Link Reg Self
