lib/guestlib/handler.mli: Ast Self
