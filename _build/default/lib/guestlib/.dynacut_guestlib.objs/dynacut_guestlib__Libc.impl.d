lib/guestlib/libc.ml: Abi Asm Compile Dsl Insn Int64 Link List Reg Self
