lib/tracer/drcov.ml: Buffer Int64 List Printf String
