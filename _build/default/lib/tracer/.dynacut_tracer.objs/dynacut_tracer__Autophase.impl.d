lib/tracer/autophase.ml: Abi Collector Drcov List Machine Proc
