lib/tracer/collector.ml: Drcov Hashtbl Int64 List Machine Mem Proc String
