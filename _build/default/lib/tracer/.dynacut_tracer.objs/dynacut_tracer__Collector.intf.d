lib/tracer/collector.mli: Drcov Machine Proc
