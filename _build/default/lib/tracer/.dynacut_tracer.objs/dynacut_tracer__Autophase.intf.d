lib/tracer/autophase.mli: Collector Drcov Machine Proc
