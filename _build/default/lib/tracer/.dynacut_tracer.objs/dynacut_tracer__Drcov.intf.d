lib/tracer/drcov.mli:
