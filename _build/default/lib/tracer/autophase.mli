(** Automatic initialization/serving transition detection — the paper's
    §5 item, implemented: the init-phase nudge fires on the first serving
    syscall (e.g. [accept]) instead of an operator watching the log. *)

type trigger =
  | On_accept  (** servers: the first accept() of the traced tree *)
  | On_recv
  | On_first_of of int list  (** custom syscall set *)
  | After_insns of int64  (** fallback budget for batch programs *)

type t

val arm : Machine.t -> Collector.t -> trigger:trigger -> t
(** Install the syscall probe; the nudge fires at most once. *)

val poll : t -> root:Proc.t -> unit
(** Drive the [After_insns] fallback between scheduler runs. *)

val fired : t -> bool
val init_log : t -> Drcov.log option
val disarm : t -> unit
