(** Automatic initialization/serving transition detection — the paper's
    §5 future-work item, implemented: "we can monitor specific system
    calls to determine the end of the initialization phase, making
    DynaCut fully automatic."

    The heuristic follows Ghavamnia et al. (Temporal system-call
    specialization, USENIX Security '20), whose transition points for
    server applications are where the process enters its serving loop:
    we treat the first *blocking-capable* serving syscall — [accept] for
    servers — as the transition and fire the collector's nudge there,
    with no operator in the loop. A fallback fires on the first [recv]
    (accept-less servers inheriting sockets) and, for batch programs, on
    the first [nanosleep] or after a configurable retired-instruction
    budget. *)

type trigger =
  | On_accept  (** first accept() by the traced tree (servers) *)
  | On_recv
  | On_first_of of int list  (** first of these syscall numbers *)
  | After_insns of int64  (** fallback for programs with no clear marker *)

type t = {
  collector : Collector.t;
  machine : Machine.t;
  mutable fired : bool;
  mutable init_log : Drcov.log option;
  trigger : trigger;
  prev_hook : Machine.syscall_hook option;
}

let syscalls_of_trigger = function
  | On_accept -> [ Abi.sys_accept ]
  | On_recv -> [ Abi.sys_recv ]
  | On_first_of l -> l
  | After_insns _ -> []

(** Arm automatic phase detection on an already-attached collector. The
    nudge fires at most once; the init-phase coverage is then available
    via {!init_log}. *)
let arm (machine : Machine.t) (collector : Collector.t) ~(trigger : trigger) : t =
  let t =
    {
      collector;
      machine;
      fired = false;
      init_log = None;
      trigger;
      prev_hook = machine.Machine.on_syscall;
    }
  in
  let watch = syscalls_of_trigger trigger in
  machine.Machine.on_syscall <-
    Some
      (fun p nr ->
        (match t.prev_hook with Some h -> h p nr | None -> ());
        if (not t.fired) && List.mem nr watch then begin
          t.fired <- true;
          t.init_log <- Some (Collector.nudge collector)
        end);
  t

(** Poll the fallback budget trigger; call this between scheduler runs
    when using [After_insns]. *)
let poll (t : t) ~(root : Proc.t) : unit =
  match t.trigger with
  | After_insns budget when (not t.fired) && root.Proc.retired >= budget ->
      t.fired <- true;
      t.init_log <- Some (Collector.nudge t.collector)
  | _ -> ()

let fired t = t.fired
let init_log t = t.init_log

let disarm (t : t) : unit = t.machine.Machine.on_syscall <- t.prev_hook
