(** drcov-format execution trace logs.

    DynamoRIO's drcov tool emits a module table plus a table of executed
    basic blocks as (module id, start offset, size) — precisely the
    "tuples of <BB addr, BB size>" the paper's undesired-code identifier
    consumes (§3.1). We reproduce the text flavour of the format so logs
    are greppable and diffable. *)

type module_info = {
  mi_id : int;
  mi_name : string;
  mi_base : int64;
  mi_end : int64;
}

type bb = {
  bb_mod : int;  (** module id *)
  bb_off : int;  (** module-relative offset *)
  bb_size : int;
  bb_seq : int;  (** first-execution sequence number (temporal order) *)
}

type log = { modules : module_info list; bbs : bb list }

let module_of_bb log b = List.find_opt (fun m -> m.mi_id = b.bb_mod) log.modules

let bb_count log = List.length log.bbs

(** Total bytes of code covered. *)
let covered_bytes log = List.fold_left (fun a b -> a + b.bb_size) 0 log.bbs

let to_string (l : log) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "DRCOV VERSION: 2\n";
  Buffer.add_string b "DRCOV FLAVOR: dynacut\n";
  Buffer.add_string b
    (Printf.sprintf "Module Table: version 2, count %d\n" (List.length l.modules));
  Buffer.add_string b "Columns: id, base, end, path\n";
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "%3d, 0x%Lx, 0x%Lx, %s\n" m.mi_id m.mi_base m.mi_end m.mi_name))
    l.modules;
  Buffer.add_string b (Printf.sprintf "BB Table: %d bbs\n" (List.length l.bbs));
  Buffer.add_string b "module id, start, size, seq\n";
  List.iter
    (fun bb ->
      Buffer.add_string b
        (Printf.sprintf "%3d, 0x%x, %d, %d\n" bb.bb_mod bb.bb_off bb.bb_size bb.bb_seq))
    l.bbs;
  Buffer.contents b

exception Parse_error of string

let parse_line_fields s = String.split_on_char ',' s |> List.map String.trim

let of_string (s : string) : log =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let rec skip_headers = function
    | l :: rest when String.length l >= 12 && String.sub l 0 12 = "Module Table" -> (
        match String.rindex_opt l ' ' with
        | Some i ->
            let n = int_of_string (String.sub l (i + 1) (String.length l - i - 1)) in
            (n, rest)
        | None -> raise (Parse_error "bad module table header"))
    | _ :: rest -> skip_headers rest
    | [] -> raise (Parse_error "no module table")
  in
  let nmod, rest = skip_headers lines in
  let rest = match rest with _cols :: r -> r | [] -> raise (Parse_error "truncated") in
  let rec take n acc rest =
    if n = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> raise (Parse_error "truncated module table")
      | l :: r -> (
          match parse_line_fields l with
          | [ id; base; end_; path ] ->
              take (n - 1)
                ({
                   mi_id = int_of_string id;
                   mi_base = Int64.of_string base;
                   mi_end = Int64.of_string end_;
                   mi_name = path;
                 }
                :: acc)
                r
          | _ -> raise (Parse_error ("bad module line: " ^ l)))
  in
  let modules, rest = take nmod [] rest in
  let rest =
    match rest with
    | bbhdr :: _cols :: r when String.length bbhdr >= 8 && String.sub bbhdr 0 8 = "BB Table" -> r
    | _ -> raise (Parse_error "no bb table")
  in
  let bbs =
    List.map
      (fun l ->
        match parse_line_fields l with
        | [ m; off; size; seq ] ->
            {
              bb_mod = int_of_string m;
              bb_off = int_of_string off;
              bb_size = int_of_string size;
              bb_seq = int_of_string seq;
            }
        | _ -> raise (Parse_error ("bad bb line: " ^ l)))
      rest
  in
  { modules; bbs }
