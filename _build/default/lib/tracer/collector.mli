(** The code-coverage collector (DynamoRIO/drcov stand-in): deduplicated
    (module, offset, size) blocks per traced process tree, with the
    paper's two extensions — init-phase nudges and multi-process
    tracing (§3.1, §3.3). *)

type t

val modules_of_proc : Proc.t -> (string * int64 * int64) list
(** (name, base, end) of each mapped module, derived from VMA names. *)

val attach : Machine.t -> pid:int -> t
(** Start tracing [pid]; children forked later are traced automatically
    and their coverage merges into the same map. *)

val current_log : t -> Drcov.log

val nudge : t -> Drcov.log
(** Dump the coverage collected so far (the phase that just ended) and
    clear the code cache (§3.1). *)

val detach : t -> Drcov.log
(** Stop tracing; returns the post-last-nudge coverage. *)

val dumps : t -> Drcov.log list
(** All nudge outputs, oldest first. *)
