(** The SPEC INTspeed stand-ins (paper §4: seven C/C++ benchmarks of the
    suite, used as CPU/memory-intensive workloads without a crisp
    init/serving boundary).

    Each kernel has the same skeleton as its namesake: an initialization
    phase (read an input file, build data structures, mmap a heap sized
    so the CRIU image sizes keep the paper's ordering at 1/100 scale),
    an "init done" log line (the point the paper picks as the transition
    when the application is "fully started"), and a compute loop.

    The init-code *share* is tuned per kernel so Figure 9 reproduces the
    paper's ordering: perlbench has by far the most init-only code
    (41.4% of executed blocks), mcf is the smallest binary, xalancbmk has
    a large binary but a shallower init than perlbench. *)

open Dsl

type kernel = {
  k_name : string;  (** e.g. "600.perlbench_s" *)
  k_unit : Ast.comp_unit;
  k_files : (string * string) list;  (** input files *)
  k_heap : int;  (** mmap'd heap bytes (drives image size) *)
}

let init_done_banner name = name ^ ": init done"

(* common scaffolding: mmap the heap, print the banner, loop [rounds]
   over [compute], print a result, exit *)
let kernel_main ~name ~heap ~rounds ~init_calls ~compute_call =
  func "main" []
    (init_calls
    @ [
        set "heap" (call "mmap" [ i 0; i heap; i 6 ]);
        do_ "puts" [ s (init_done_banner name) ];
        decl "round" (i 0);
        while_ (v "round" <: i rounds)
          [ do_ compute_call [ v "round" ]; set "round" (v "round" +: i 1) ];
        do_ "log_kv" [ s (name ^ ": result "); v "checksum" ];
        ret0;
      ])

(* ---------- 600.perlbench_s: text processing with a deep init ---------- *)

let perlbench =
  let name = "600.perlbench_s" in
  let globals =
    [
      global_q "heap" [ 0L ];
      global_q "checksum" [ 0L ];
      global_zero "optable" (128 * 8);
      global_zero "keyword_tbl" (64 * 16);
      global_q "keyword_count" [ 0L ];
      global_zero "script" 1024;
      global_zero "corpus" 1024;
      global_zero "regex_nfa" 512;
      global_zero "interp_stack" 256;
      global_q "interp_sp" [ 0L ];
      global_zero "fmt_buf" 128;
    ]
  in
  let init_funcs =
    [
      func "pl_init_optable" []
        [
          decl "k" (i 0);
          while_ (v "k" <: i 128)
            [
              store64 (addr "optable" +: (v "k" *: i 8)) ((v "k" *: i 37) %: i 97);
              set "k" (v "k" +: i 1);
            ];
          ret0;
        ];
      func "pl_add_keyword" [ "w"; "id" ]
        [
          decl "slot" (addr "keyword_tbl" +: (v "keyword_count" *: i 16));
          decl "k" (i 0);
          while_ ((load8 (v "w" +: v "k") <>: i 0) &&: (v "k" <: i 7))
            [
              store8 (v "slot" +: v "k") (load8 (v "w" +: v "k"));
              set "k" (v "k" +: i 1);
            ];
          store64 (v "slot" +: i 8) (v "id");
          set "keyword_count" (v "keyword_count" +: i 1);
          ret0;
        ];
      func "pl_init_keywords" []
        [
          do_ "pl_add_keyword" [ s "my"; i 1 ];
          do_ "pl_add_keyword" [ s "sub"; i 2 ];
          do_ "pl_add_keyword" [ s "if"; i 3 ];
          do_ "pl_add_keyword" [ s "else"; i 4 ];
          do_ "pl_add_keyword" [ s "while"; i 5 ];
          do_ "pl_add_keyword" [ s "for"; i 6 ];
          do_ "pl_add_keyword" [ s "print"; i 7 ];
          do_ "pl_add_keyword" [ s "split"; i 8 ];
          do_ "pl_add_keyword" [ s "join"; i 9 ];
          do_ "pl_add_keyword" [ s "push"; i 10 ];
          do_ "pl_add_keyword" [ s "return"; i 11 ];
          do_ "pl_add_keyword" [ s "use"; i 12 ];
          ret0;
        ];
      func "pl_load_script" []
        [
          decl "fd" (call "open" [ s "/input/perl.pl" ]);
          when_ (v "fd" <: i 0) [ ret (neg (i 1)) ];
          decl "n" (call "read" [ v "fd"; addr "script"; i 1023 ]);
          store8 (addr "script" +: v "n") (i 0);
          do_ "close" [ v "fd" ];
          ret (v "n");
        ];
      (* a toy "compile": count keywords in the script, build the regex
         nfa table, warm the interpreter stack *)
      func "pl_compile_script" []
        [
          decl "p" (addr "script");
          decl "hits" (i 0);
          while_ (load8 (v "p") <>: i 0)
            [
              decl "k" (i 0);
              while_ (v "k" <: v "keyword_count")
                [
                  decl "slot" (addr "keyword_tbl" +: (v "k" *: i 16));
                  decl "wl" (call "strlen" [ v "slot" ]);
                  when_
                    (call "strncmp" [ v "p"; v "slot"; v "wl" ] ==: i 0)
                    [ set "hits" (v "hits" +: i 1) ];
                  set "k" (v "k" +: i 1);
                ];
              set "p" (v "p" +: i 1);
            ];
          set "checksum" (v "checksum" +: v "hits");
          ret (v "hits");
        ];
      func "pl_build_regex" []
        [
          decl "k" (i 0);
          while_ (v "k" <: i 64)
            [
              store64 (addr "regex_nfa" +: (v "k" *: i 8)) ((v "k" *: i 13) &: i 255);
              set "k" (v "k" +: i 1);
            ];
          ret0;
        ];
      func "pl_init_interp" []
        [
          do_ "memset" [ addr "interp_stack"; i 0; i 256 ];
          set "interp_sp" (i 0);
          ret0;
        ];
      func "pl_load_corpus" []
        [
          decl "fd" (call "open" [ s "/input/mail.txt" ]);
          when_ (v "fd" <: i 0) [ ret (neg (i 1)) ];
          decl "n" (call "read" [ v "fd"; addr "corpus"; i 1023 ]);
          store8 (addr "corpus" +: v "n") (i 0);
          do_ "close" [ v "fd" ];
          ret (v "n");
        ];
      func "pl_init_formats" []
        [
          decl "k" (i 0);
          while_ (v "k" <: i 16)
            [
              store8 (addr "fmt_buf" +: v "k") (i 37 (* '%' *));
              set "k" (v "k" +: i 1);
            ];
          ret0;
        ];
    ]
  in
  let compute =
    [
      (* the serving phase proper: scan, regex-match, interpret, format *)
      func "pl_scan_words" []
        [
          decl "p" (addr "corpus");
          decl "words" (i 0);
          decl "inword" (i 0);
          while_ (load8 (v "p") <>: i 0)
            [
              decl "ch" (load8 (v "p"));
              if_ ((v "ch" ==: i 32) ||: (v "ch" ==: i 10))
                [ set "inword" (i 0) ]
                [
                  when_ (v "inword" ==: i 0)
                    [ set "words" (v "words" +: i 1); set "inword" (i 1) ];
                ];
              set "p" (v "p" +: i 1);
            ];
          ret (v "words");
        ];
      (* walk the toy NFA over the corpus: state transitions via the
         regex table built at init *)
      func "pl_match_regex" [ "needle" ]
        [
          decl "state" (i 0);
          decl "hits" (i 0);
          decl "p" (addr "corpus");
          decl "ch" (load8 (v "p"));
          while_ (v "ch" <>: i 0)
            [
              if_ (v "ch" ==: load8 (v "needle" +: v "state"))
                [
                  set "state" (v "state" +: i 1);
                  when_ (load8 (v "needle" +: v "state") ==: i 0)
                    [ set "hits" (v "hits" +: i 1); set "state" (i 0) ];
                ]
                [ set "state" (i 0) ];
              set "p" (v "p" +: i 1);
              set "ch" (load8 (v "p"));
            ];
          ret (v "hits");
        ];
      (* a tiny stack interpreter over the optable *)
      func "pl_interp_exec" [ "steps" ]
        [
          decl "acc" (i 1);
          decl "k" (i 0);
          while_ (v "k" <: v "steps")
            [
              decl "op" (load64 (addr "optable" +: ((v "k" %: i 128) *: i 8)));
              decl "sp" (v "interp_sp");
              if_ (v "op" %: i 3 ==: i 0)
                [
                  when_ (v "sp" <: i 31)
                    [
                      store64 (addr "interp_stack" +: (v "sp" *: i 8)) (v "acc");
                      set "interp_sp" (v "sp" +: i 1);
                    ];
                ]
                [
                  if_ (v "op" %: i 3 ==: i 1)
                    [
                      when_ (v "sp" >: i 0)
                        [
                          set "interp_sp" (v "sp" -: i 1);
                          set "acc"
                            (v "acc"
                            +: load64 (addr "interp_stack" +: ((v "sp" -: i 1) *: i 8)));
                        ];
                    ]
                    [ set "acc" ((v "acc" *: i 31) +: v "op") ];
                ];
              set "k" (v "k" +: i 1);
            ];
          ret (v "acc" &: i 0xffff);
        ];
      func "pl_hash_corpus" []
        [
          decl "p" (addr "corpus");
          decl "h" (i 5381);
          decl "ch" (load8 (v "p"));
          while_ (v "ch" <>: i 0)
            [
              set "h" (((v "h" <<: i 5) +: v "h") ^: v "ch");
              set "p" (v "p" +: i 1);
              set "ch" (load8 (v "p"));
            ];
          ret (v "h" &: i 1023);
        ];
      func "pl_format_report" [ "words"; "hits" ]
        [
          decl "n" (call "itoa" [ addr "fmt_buf"; v "words" ]);
          store8 (addr "fmt_buf" +: v "n") (i 47 (* '/' *));
          decl "n2" (call "itoa" [ addr "fmt_buf" +: v "n" +: i 1; v "hits" ]);
          ret (v "n" +: v "n2" +: i 1);
        ];
      func "pl_round" [ "r" ]
        [
          decl "words" (call "pl_scan_words" []);
          decl "hits" (call "pl_match_regex" [ s "the" ]);
          set "hits" (v "hits" +: call "pl_match_regex" [ s "From:" ]);
          decl "iv" (call "pl_interp_exec" [ i 40 ]);
          decl "h" (call "pl_hash_corpus" []);
          decl "flen" (call "pl_format_report" [ v "words"; v "hits" ]);
          set "checksum"
            (v "checksum" +: v "words" +: v "hits" +: v "iv" +: v "h" +: v "flen" +: v "r");
          ret0;
        ];
    ]
  in
  {
    k_name = name;
    k_unit =
      unit_ name ~globals
        (init_funcs @ compute
        @ [
            kernel_main ~name ~heap:1_843_200 ~rounds:40
              ~init_calls:
                [
                  do_ "pl_init_optable" [];
                  do_ "pl_init_keywords" [];
                  do_ "pl_load_script" [];
                  do_ "pl_compile_script" [];
                  do_ "pl_build_regex" [];
                  do_ "pl_init_interp" [];
                  do_ "pl_load_corpus" [];
                  do_ "pl_init_formats" [];
                ]
              ~compute_call:"pl_round";
          ]);
    k_files =
      [
        ( "/input/perl.pl",
          "use strict\nmy $x = 0\nsub scan { my $l = split ' '\n  while $l { \
           $x = $x + 1\n    if $x { print $x } else { push @out, $x }\n  }\n  \
           return $x\n}\nfor my $m (@mail) { scan($m) }\nprint join ',', @out\n" );
        ( "/input/mail.txt",
          "From: alice@example.com\nTo: bob@example.com\nSubject: benchmark \
           corpus\n\nDear Bob, this is a message body with enough words to \
           make word counting interesting. Regards, Alice.\n\nFrom: \
           carol@example.com\nSubject: re: benchmark\n\nshort reply\n" );
      ];
    k_heap = 1_843_200;
  }

(* ---------- 605.mcf_s: min-cost-flow relaxation, tiny binary ---------- *)

let mcf =
  let name = "605.mcf_s" in
  let nn = 32 in
  let globals =
    [
      global_q "heap" [ 0L ];
      global_q "checksum" [ 0L ];
      global_zero "cost" (nn * nn * 8);
      global_zero "dist" (nn * 8);
    ]
  in
  let funcs =
    [
      func "mcf_read_network" []
        [
          decl "fd" (call "open" [ s "/input/net.in" ]);
          decl "seed" (i 12345);
          when_ (v "fd" >=: i 0)
            [
              decl "buf" (addr "dist");
              decl "n" (call "read" [ v "fd"; v "buf"; i 8 ]);
              expr (v "n");
              do_ "close" [ v "fd" ];
              set "seed" (load8 (v "buf") +: i 7);
            ];
          (* synth arc costs *)
          decl "k" (i 0);
          while_ (v "k" <: i (nn * nn))
            [
              set "seed" (((v "seed" *: i 1103515245) +: i 12345) &: i 0x7fffffff);
              store64 (addr "cost" +: (v "k" *: i 8)) ((v "seed" %: i 97) +: i 1);
              set "k" (v "k" +: i 1);
            ];
          ret0;
        ];
      func "mcf_init_dist" []
        [
          decl "k" (i 0);
          while_ (v "k" <: i nn)
            [
              store64 (addr "dist" +: (v "k" *: i 8)) (i 1000000);
              set "k" (v "k" +: i 1);
            ];
          store64 (addr "dist") (i 0);
          ret0;
        ];
      func "mcf_update_prices" []
        [
          decl "k" (i 0);
          decl "acc" (i 0);
          while_ (v "k" <: i 32)
            [
              decl "d" (load64 (addr "dist" +: (v "k" *: i 8)));
              when_ (v "d" <: i 1000000)
                [ store64 (addr "dist" +: (v "k" *: i 8)) (v "d" +: (v "k" %: i 3)) ];
              set "acc" (v "acc" +: v "d");
              set "k" (v "k" +: i 1);
            ];
          ret (v "acc");
        ];
      func "mcf_check_feasible" []
        [
          decl "k" (i 0);
          decl "bad" (i 0);
          while_ (v "k" <: i 32)
            [
              when_ (load64 (addr "dist" +: (v "k" *: i 8)) >: i 1000000)
                [ set "bad" (v "bad" +: i 1) ];
              set "k" (v "k" +: i 1);
            ];
          ret (v "bad");
        ];
      (* one Bellman-Ford-ish relaxation sweep *)
      func "mcf_round" [ "r" ]
        [
          decl "u" (i 0);
          while_ (v "u" <: i nn)
            [
              decl "w" (i 0);
              while_ (v "w" <: i nn)
                [
                  decl "du" (load64 (addr "dist" +: (v "u" *: i 8)));
                  decl "cw" (load64 (addr "cost" +: (((v "u" *: i nn) +: v "w") *: i 8)));
                  decl "dw" (load64 (addr "dist" +: (v "w" *: i 8)));
                  when_ (v "du" +: v "cw" <: v "dw")
                    [ store64 (addr "dist" +: (v "w" *: i 8)) (v "du" +: v "cw") ];
                  set "w" (v "w" +: i 1);
                ];
              set "u" (v "u" +: i 1);
            ];
          decl "prices" (call "mcf_update_prices" []);
          decl "bad" (call "mcf_check_feasible" []);
          set "checksum"
            (v "checksum"
            +: load64 (addr "dist" +: (i (nn - 1) *: i 8))
            +: (v "prices" &: i 255) +: v "bad" +: v "r");
          ret0;
        ];
    ]
  in
  {
    k_name = name;
    k_unit =
      unit_ name ~globals
        (funcs
        @ [
            kernel_main ~name ~heap:286_720 ~rounds:25
              ~init_calls:
                [
                  do_ "mcf_read_network" [];
                  do_ "mcf_init_dist" [];
                ]
              ~compute_call:"mcf_round";
          ]);
    k_files = [ ("/input/net.in", "G") ];
    k_heap = 286_720;
  }

(* ---------- 620.omnetpp_s: discrete event simulation ---------- *)

let omnetpp =
  let name = "620.omnetpp_s" in
  let qcap = 128 in
  let globals =
    [
      global_q "heap" [ 0L ];
      global_q "checksum" [ 0L ];
      global_zero "evq" (qcap * 16);
      global_q "evq_len" [ 0L ];
      global_q "sim_time" [ 0L ];
      global_zero "modules" (16 * 24);
      global_q "module_count" [ 0L ];
    ]
  in
  let funcs =
    [
      func "om_register_module" [ "id"; "delay" ]
        [
          decl "slot" (addr "modules" +: (v "module_count" *: i 24));
          store64 (v "slot") (v "id");
          store64 (v "slot" +: i 8) (v "delay");
          store64 (v "slot" +: i 16) (i 0);
          set "module_count" (v "module_count" +: i 1);
          ret0;
        ];
      func "om_build_network" []
        [
          do_ "om_register_module" [ i 1; i 3 ];
          do_ "om_register_module" [ i 2; i 5 ];
          do_ "om_register_module" [ i 3; i 7 ];
          do_ "om_register_module" [ i 4; i 11 ];
          do_ "om_register_module" [ i 5; i 13 ];
          do_ "om_register_module" [ i 6; i 2 ];
          ret0;
        ];
      (* binary min-heap keyed by time: push *)
      func "om_push" [ "time"; "payload" ]
        [
          when_ (v "evq_len" >=: i qcap) [ ret (neg (i 1)) ];
          decl "k" (v "evq_len");
          set "evq_len" (v "evq_len" +: i 1);
          store64 (addr "evq" +: (v "k" *: i 16)) (v "time");
          store64 (addr "evq" +: (v "k" *: i 16) +: i 8) (v "payload");
          while_ (v "k" >: i 0)
            [
              decl "parent" ((v "k" -: i 1) /: i 2);
              decl "tk" (load64 (addr "evq" +: (v "k" *: i 16)));
              decl "tp" (load64 (addr "evq" +: (v "parent" *: i 16)));
              when_ (v "tk" >=: v "tp") [ break_ ];
              (* swap *)
              decl "pk" (load64 (addr "evq" +: (v "k" *: i 16) +: i 8));
              decl "pp" (load64 (addr "evq" +: (v "parent" *: i 16) +: i 8));
              store64 (addr "evq" +: (v "k" *: i 16)) (v "tp");
              store64 (addr "evq" +: (v "k" *: i 16) +: i 8) (v "pp");
              store64 (addr "evq" +: (v "parent" *: i 16)) (v "tk");
              store64 (addr "evq" +: (v "parent" *: i 16) +: i 8) (v "pk");
              set "k" (v "parent");
            ];
          ret0;
        ];
      func "om_pop" []
        [
          when_ (v "evq_len" ==: i 0) [ ret (neg (i 1)) ];
          decl "top" (load64 (addr "evq" +: i 8));
          set "sim_time" (load64 (addr "evq"));
          set "evq_len" (v "evq_len" -: i 1);
          (* move last to root and sift down *)
          decl "lt" (load64 (addr "evq" +: (v "evq_len" *: i 16)));
          decl "lp" (load64 (addr "evq" +: (v "evq_len" *: i 16) +: i 8));
          store64 (addr "evq") (v "lt");
          store64 (addr "evq" +: i 8) (v "lp");
          decl "k" (i 0);
          forever
            [
              decl "l" ((v "k" *: i 2) +: i 1);
              decl "r" ((v "k" *: i 2) +: i 2);
              decl "m" (v "k");
              when_
                ((v "l" <: v "evq_len")
                &&: (load64 (addr "evq" +: (v "l" *: i 16))
                    <: load64 (addr "evq" +: (v "m" *: i 16))))
                [ set "m" (v "l") ];
              when_
                ((v "r" <: v "evq_len")
                &&: (load64 (addr "evq" +: (v "r" *: i 16))
                    <: load64 (addr "evq" +: (v "m" *: i 16))))
                [ set "m" (v "r") ];
              when_ (v "m" ==: v "k") [ break_ ];
              decl "tk" (load64 (addr "evq" +: (v "k" *: i 16)));
              decl "pk" (load64 (addr "evq" +: (v "k" *: i 16) +: i 8));
              store64 (addr "evq" +: (v "k" *: i 16)) (load64 (addr "evq" +: (v "m" *: i 16)));
              store64 (addr "evq" +: (v "k" *: i 16) +: i 8)
                (load64 (addr "evq" +: (v "m" *: i 16) +: i 8));
              store64 (addr "evq" +: (v "m" *: i 16)) (v "tk");
              store64 (addr "evq" +: (v "m" *: i 16) +: i 8) (v "pk");
              set "k" (v "m");
            ];
          ret (v "top");
        ];
      func "om_seed_events" []
        [
          decl "k" (i 0);
          while_ (v "k" <: v "module_count")
            [
              do_ "om_push" [ load64 (addr "modules" +: (v "k" *: i 24) +: i 8); v "k" ];
              set "k" (v "k" +: i 1);
            ];
          ret0;
        ];
      func "om_collect_stats" []
        [
          decl "k" (i 0);
          decl "total" (i 0);
          decl "maxc" (i 0);
          while_ (v "k" <: v "module_count")
            [
              decl "cnt" (load64 (addr "modules" +: (v "k" *: i 24) +: i 16));
              set "total" (v "total" +: v "cnt");
              when_ (v "cnt" >: v "maxc") [ set "maxc" (v "cnt") ];
              set "k" (v "k" +: i 1);
            ];
          ret (v "total" +: (v "maxc" <<: i 8));
        ];
      (* process 50 events per round; each event re-schedules itself *)
      func "om_round" [ "r" ]
        [
          decl "n" (i 0);
          while_ (v "n" <: i 50)
            [
              decl "m" (call "om_pop" []);
              when_ (v "m" <: i 0) [ break_ ];
              decl "delay" (load64 (addr "modules" +: (v "m" *: i 24) +: i 8));
              store64 (addr "modules" +: (v "m" *: i 24) +: i 16)
                (load64 (addr "modules" +: (v "m" *: i 24) +: i 16) +: i 1);
              do_ "om_push" [ v "sim_time" +: v "delay"; v "m" ];
              set "n" (v "n" +: i 1);
            ];
          decl "stats" (call "om_collect_stats" []);
          set "checksum" (v "checksum" +: v "sim_time" +: (v "stats" &: i 4095) +: v "r");
          ret0;
        ];
    ]
  in
  {
    k_name = name;
    k_unit =
      unit_ name ~globals
        (funcs
        @ [
            kernel_main ~name ~heap:2_191_360 ~rounds:30
              ~init_calls:
                [
                  do_ "om_build_network" [];
                  do_ "om_seed_events" [];
                ]
              ~compute_call:"om_round";
          ]);
    k_files = [];
    k_heap = 2_191_360;
  }

(* ---------- 623.xalancbmk_s: XML tokenize + transform ---------- *)

let xalancbmk =
  let name = "623.xalancbmk_s" in
  let globals =
    [
      global_q "heap" [ 0L ];
      global_q "checksum" [ 0L ];
      global_zero "xml" 1024;
      global_zero "tokens" (256 * 16);
      global_q "token_count" [ 0L ];
      global_zero "templates" (16 * 16);
      global_q "template_count" [ 0L ];
      global_zero "out" 1024;
    ]
  in
  let funcs =
    [
      func "xa_load_xml" []
        [
          decl "fd" (call "open" [ s "/input/doc.xml" ]);
          when_ (v "fd" <: i 0) [ ret (neg (i 1)) ];
          decl "n" (call "read" [ v "fd"; addr "xml"; i 1023 ]);
          store8 (addr "xml" +: v "n") (i 0);
          do_ "close" [ v "fd" ];
          ret (v "n");
        ];
      (* tokenise: record (kind, offset) pairs — kind 1 = open tag,
         2 = close tag, 3 = text *)
      func "xa_tokenize" []
        [
          decl "p" (addr "xml");
          decl "off" (i 0);
          while_ (load8 (v "p" +: v "off") <>: i 0)
            [
              decl "slot" (addr "tokens" +: (v "token_count" *: i 16));
              decl "ch" (load8 (v "p" +: v "off"));
              if_ (v "ch" ==: i 60 (* '<' *))
                [
                  if_ (load8 (v "p" +: v "off" +: i 1) ==: i 47 (* '/' *))
                    [ store64 (v "slot") (i 2) ]
                    [ store64 (v "slot") (i 1) ];
                  store64 (v "slot" +: i 8) (v "off");
                  set "token_count" (v "token_count" +: i 1);
                  while_
                    ((load8 (v "p" +: v "off") <>: i 62 (* '>' *))
                    &&: (load8 (v "p" +: v "off") <>: i 0))
                    [ set "off" (v "off" +: i 1) ];
                ]
                [
                  store64 (v "slot") (i 3);
                  store64 (v "slot" +: i 8) (v "off");
                  set "token_count" (v "token_count" +: i 1);
                  while_
                    ((load8 (v "p" +: v "off") <>: i 60)
                    &&: (load8 (v "p" +: v "off") <>: i 0))
                    [ set "off" (v "off" +: i 1) ];
                  set "off" (v "off" -: i 1);
                ];
              set "off" (v "off" +: i 1);
            ];
          ret (v "token_count");
        ];
      func "xa_add_template" [ "kind"; "action" ]
        [
          decl "slot" (addr "templates" +: (v "template_count" *: i 16));
          store64 (v "slot") (v "kind");
          store64 (v "slot" +: i 8) (v "action");
          set "template_count" (v "template_count" +: i 1);
          ret0;
        ];
      func "xa_load_stylesheet" []
        [
          do_ "xa_add_template" [ i 1; i 10 ];
          do_ "xa_add_template" [ i 2; i 20 ];
          do_ "xa_add_template" [ i 3; i 30 ];
          ret0;
        ];
      (* serialize the transformed tree: emit tags with indentation *)
      func "xa_emit_output" []
        [
          decl "k" (i 0);
          decl "o" (i 0);
          decl "depth" (i 0);
          while_ ((v "k" <: v "token_count") &&: (v "o" <: i 1000))
            [
              decl "kind" (load64 (addr "tokens" +: (v "k" *: i 16)));
              when_ (v "kind" ==: i 1)
                [
                  decl "sp" (i 0);
                  while_ ((v "sp" <: v "depth") &&: (v "o" <: i 1000))
                    [
                      store8 (addr "out" +: v "o") (i 32);
                      set "o" (v "o" +: i 1);
                      set "sp" (v "sp" +: i 1);
                    ];
                  store8 (addr "out" +: v "o") (i 60);
                  set "o" (v "o" +: i 1);
                  set "depth" (v "depth" +: i 1);
                ];
              when_ (v "kind" ==: i 2)
                [
                  when_ (v "depth" >: i 0) [ set "depth" (v "depth" -: i 1) ];
                  store8 (addr "out" +: v "o") (i 62);
                  set "o" (v "o" +: i 1);
                ];
              when_ (v "kind" ==: i 3)
                [
                  store8 (addr "out" +: v "o") (i 46);
                  set "o" (v "o" +: i 1);
                ];
              set "k" (v "k" +: i 1);
            ];
          store8 (addr "out" +: v "o") (i 0);
          ret (v "o");
        ];
      (* apply templates over the token stream *)
      func "xa_round" [ "r" ]
        [
          decl "k" (i 0);
          decl "acc" (i 0);
          while_ (v "k" <: v "token_count")
            [
              decl "kind" (load64 (addr "tokens" +: (v "k" *: i 16)));
              decl "t" (i 0);
              while_ (v "t" <: v "template_count")
                [
                  when_
                    (load64 (addr "templates" +: (v "t" *: i 16)) ==: v "kind")
                    [
                      set "acc"
                        (v "acc" +: load64 (addr "templates" +: (v "t" *: i 16) +: i 8));
                    ];
                  set "t" (v "t" +: i 1);
                ];
              set "k" (v "k" +: i 1);
            ];
          decl "olen" (call "xa_emit_output" []);
          set "checksum" (v "checksum" +: v "acc" +: v "olen" +: v "r");
          ret0;
        ];
    ]
  in
  {
    k_name = name;
    k_unit =
      unit_ name ~globals
        (funcs
        @ [
            kernel_main ~name ~heap:1_955_840 ~rounds:35
              ~init_calls:
                [
                  do_ "xa_load_xml" [];
                  do_ "xa_tokenize" [];
                  do_ "xa_load_stylesheet" [];
                ]
              ~compute_call:"xa_round";
          ]);
    k_files =
      [
        ( "/input/doc.xml",
          "<catalog><book id=\"1\"><title>The Art of Simulation</title>\
           <author>K. Author</author></book><book id=\"2\"><title>Process \
           Rewriting</title><author>A. Nother</author></book></catalog>" );
      ];
    k_heap = 1_955_840;
  }

(* ---------- 625.x264_s: motion estimation over macroblocks ---------- *)

let x264 =
  let name = "625.x264_s" in
  let w = 64 and h = 32 in
  let globals =
    [
      global_q "heap" [ 0L ];
      global_q "checksum" [ 0L ];
      global_q "frame_cur" [ 0L ];
      global_q "frame_ref" [ 0L ];
      global_zero "cost_tbl" (64 * 8);
    ]
  in
  let funcs =
    [
      func "xv_alloc_frames" []
        [
          set "frame_cur" (call "mmap" [ i 0; i (w * h); i 6 ]);
          set "frame_ref" (call "mmap" [ i 0; i (w * h); i 6 ]);
          ret0;
        ];
      func "xv_fill_frames" []
        [
          decl "k" (i 0);
          decl "seed" (i 777);
          while_ (v "k" <: i (w * h))
            [
              set "seed" (((v "seed" *: i 1103515245) +: i 12345) &: i 0x7fffffff);
              store8 (v "frame_cur" +: v "k") (v "seed" &: i 255);
              store8 (v "frame_ref" +: v "k") ((v "seed" >>: i 8) &: i 255);
              set "k" (v "k" +: i 1);
            ];
          ret0;
        ];
      func "xv_init_cost_table" []
        [
          decl "k" (i 0);
          while_ (v "k" <: i 64)
            [
              store64 (addr "cost_tbl" +: (v "k" *: i 8)) (v "k" *: v "k");
              set "k" (v "k" +: i 1);
            ];
          ret0;
        ];
      (* SAD of an 8x8 block at (bx,by) against ref shifted by (dx,dy) *)
      func "xv_sad" [ "bx"; "by"; "dx"; "dy" ]
        [
          decl "acc" (i 0);
          decl "y" (i 0);
          while_ (v "y" <: i 8)
            [
              decl "x" (i 0);
              while_ (v "x" <: i 8)
                [
                  decl "cx" (v "bx" +: v "x");
                  decl "cy" (v "by" +: v "y");
                  decl "rx" ((v "cx" +: v "dx" +: i w) %: i w);
                  decl "ry" ((v "cy" +: v "dy" +: i h) %: i h);
                  decl "a" (load8 (v "frame_cur" +: ((v "cy" *: i w) +: v "cx")));
                  decl "b" (load8 (v "frame_ref" +: ((v "ry" *: i w) +: v "rx")));
                  decl "d" (v "a" -: v "b");
                  when_ (v "d" <: i 0) [ set "d" (i 0 -: v "d") ];
                  set "acc" (v "acc" +: v "d");
                  set "x" (v "x" +: i 1);
                ];
              set "y" (v "y" +: i 1);
            ];
          ret (v "acc");
        ];
      (* refine around the best match with the cost table *)
      func "xv_refine" [ "bx"; "by"; "best" ]
        [
          decl "improved" (v "best");
          decl "k" (i 0);
          while_ (v "k" <: i 4)
            [
              decl "c"
                (call "xv_sad" [ v "bx"; v "by"; v "k" %: i 2; v "k" /: i 2 ]
                +: load64 (addr "cost_tbl" +: ((v "k" %: i 64) *: i 8)));
              when_ (v "c" <: v "improved") [ set "improved" (v "c") ];
              set "k" (v "k" +: i 1);
            ];
          ret (v "improved");
        ];
      func "xv_entropy_estimate" [ "bx"; "by" ]
        [
          decl "acc" (i 0);
          decl "y" (i 0);
          while_ (v "y" <: i 8)
            [
              decl "x" (i 0);
              while_ (v "x" <: i 8)
                [
                  decl "px"
                    (load8 (v "frame_cur" +: (((v "by" +: v "y") *: i 64) +: v "bx" +: v "x")));
                  set "acc" (v "acc" +: load64 (addr "cost_tbl" +: ((v "px" &: i 63) *: i 8)));
                  set "x" (v "x" +: i 1);
                ];
              set "y" (v "y" +: i 1);
            ];
          ret (v "acc" >>: i 6);
        ];
      (* full-search motion estimation over a +-2 window per round *)
      func "xv_round" [ "r" ]
        [
          decl "bx" ((v "r" *: i 8) %: i (w - 8));
          decl "by" ((v "r" *: i 4) %: i (h - 8));
          decl "best" (i 999999999);
          decl "dy" (neg (i 2));
          while_ (v "dy" <=: i 2)
            [
              decl "dx" (neg (i 2));
              while_ (v "dx" <=: i 2)
                [
                  decl "c" (call "xv_sad" [ v "bx"; v "by"; v "dx"; v "dy" ]);
                  when_ (v "c" <: v "best") [ set "best" (v "c") ];
                  set "dx" (v "dx" +: i 1);
                ];
              set "dy" (v "dy" +: i 1);
            ];
          set "best" (call "xv_refine" [ v "bx"; v "by"; v "best" ]);
          decl "ent" (call "xv_entropy_estimate" [ v "bx"; v "by" ]);
          set "checksum" (v "checksum" +: v "best" +: v "ent");
          ret0;
        ];
    ]
  in
  {
    k_name = name;
    k_unit =
      unit_ name ~globals
        (funcs
        @ [
            kernel_main ~name ~heap:1_597_440 ~rounds:20
              ~init_calls:
                [
                  do_ "xv_alloc_frames" [];
                  do_ "xv_fill_frames" [];
                  do_ "xv_init_cost_table" [];
                ]
              ~compute_call:"xv_round";
          ]);
    k_files = [];
    k_heap = 1_597_440;
  }

(* ---------- 631.deepsjeng_s: alpha-beta game search ---------- *)

let deepsjeng =
  let name = "631.deepsjeng_s" in
  let globals =
    [
      global_q "heap" [ 0L ];
      global_q "checksum" [ 0L ];
      global_zero "board" 64;
      global_zero "zobrist" (64 * 8);
      global_q "nodes" [ 0L ];
    ]
  in
  let funcs =
    [
      func "ds_init_board" []
        [
          decl "k" (i 0);
          while_ (v "k" <: i 64)
            [ store8 (addr "board" +: v "k") ((v "k" *: i 7) %: i 5); set "k" (v "k" +: i 1) ];
          ret0;
        ];
      func "ds_init_zobrist" []
        [
          decl "k" (i 0);
          decl "seed" (i 31337);
          while_ (v "k" <: i 64)
            [
              set "seed" (((v "seed" *: i64 6364136223846793005L) +: i64 1442695040888963407L));
              store64 (addr "zobrist" +: (v "k" *: i 8)) (v "seed");
              set "k" (v "k" +: i 1);
            ];
          ret0;
        ];
      func "ds_eval" []
        [
          decl "acc" (i 0);
          decl "k" (i 0);
          while_ (v "k" <: i 64)
            [
              set "acc"
                (v "acc"
                +: (load8 (addr "board" +: v "k")
                   *: (load64 (addr "zobrist" +: (v "k" *: i 8)) &: i 15)));
              set "k" (v "k" +: i 1);
            ];
          ret (v "acc");
        ];
      (* negamax with a move that rotates one square's piece *)
      func "ds_search" [ "depth"; "alpha"; "beta" ]
        [
          set "nodes" (v "nodes" +: i 1);
          when_ (v "depth" ==: i 0) [ ret (call "ds_eval" []) ];
          decl "best" (neg (i 99999999));
          decl "mv" (i 0);
          while_ (v "mv" <: i 4)
            [
              decl "sq" (((v "depth" *: i 13) +: (v "mv" *: i 17)) %: i 64);
              decl "old" (load8 (addr "board" +: v "sq"));
              store8 (addr "board" +: v "sq") ((v "old" +: i 1) %: i 5);
              decl "sc"
                (i 0 -: call "ds_search" [ v "depth" -: i 1; i 0 -: v "beta"; i 0 -: v "alpha" ]);
              store8 (addr "board" +: v "sq") (v "old");
              when_ (v "sc" >: v "best") [ set "best" (v "sc") ];
              when_ (v "best" >: v "alpha") [ set "alpha" (v "best") ];
              when_ (v "alpha" >=: v "beta") [ break_ ];
              set "mv" (v "mv" +: i 1);
            ];
          ret (v "best");
        ];
      func "ds_round" [ "r" ]
        [
          decl "sc" (call "ds_search" [ i 4; neg (i 99999999); i 99999999 ]);
          set "checksum" (v "checksum" +: v "sc" +: v "r");
          ret0;
        ];
    ]
  in
  {
    k_name = name;
    k_unit =
      unit_ name ~globals
        (funcs
        @ [
            kernel_main ~name ~heap:102_400 ~rounds:15
              ~init_calls:
                [
                  do_ "ds_init_board" [];
                  do_ "ds_init_zobrist" [];
                ]
              ~compute_call:"ds_round";
          ]);
    k_files = [];
    k_heap = 102_400;
  }

(* ---------- 641.leela_s: random playouts ---------- *)

let leela =
  let name = "641.leela_s" in
  let bsz = 81 in
  let globals =
    [
      global_q "heap" [ 0L ];
      global_q "checksum" [ 0L ];
      global_zero "goban" bsz;
      global_q "wins" [ 0L ];
      global_zero "pattern_tbl" (32 * 8);
    ]
  in
  let funcs =
    [
      func "lz_init_board" []
        [ do_ "memset" [ addr "goban"; i 0; i bsz ]; ret0 ];
      func "lz_init_patterns" []
        [
          decl "k" (i 0);
          while_ (v "k" <: i 32)
            [
              store64 (addr "pattern_tbl" +: (v "k" *: i 8)) ((v "k" *: i 2654435761) &: i 0xffff);
              set "k" (v "k" +: i 1);
            ];
          ret0;
        ];
      (* one random playout: fill empty points alternately, score *)
      func "lz_playout" []
        [
          do_ "memset" [ addr "goban"; i 0; i bsz ];
          decl "turn" (i 1);
          decl "moves" (i 0);
          while_ (v "moves" <: i bsz)
            [
              decl "p" (call "rand" [ i bsz ]);
              when_ (load8 (addr "goban" +: v "p") ==: i 0)
                [
                  store8 (addr "goban" +: v "p") (v "turn");
                  set "turn" (i 3 -: v "turn");
                ];
              set "moves" (v "moves" +: i 1);
            ];
          decl "black" (i 0);
          decl "k" (i 0);
          while_ (v "k" <: i bsz)
            [
              when_ (load8 (addr "goban" +: v "k") ==: i 1) [ set "black" (v "black" +: i 1) ];
              set "k" (v "k" +: i 1);
            ];
          ret (v "black" >: i (bsz / 2));
        ];
      func "lz_round" [ "r" ]
        [
          decl "k" (i 0);
          while_ (v "k" <: i 8)
            [
              set "wins" (v "wins" +: call "lz_playout" []);
              set "k" (v "k" +: i 1);
            ];
          set "checksum" (v "checksum" +: v "wins" +: v "r");
          ret0;
        ];
    ]
  in
  {
    k_name = name;
    k_unit =
      unit_ name ~globals
        (funcs
        @ [
            kernel_main ~name ~heap:112_640 ~rounds:12
              ~init_calls:
                [
                  do_ "lz_init_board" [];
                  do_ "lz_init_patterns" [];
                ]
              ~compute_call:"lz_round";
          ]);
    k_files = [];
    k_heap = 112_640;
  }

(** The suite, in the paper's Figure 9 order. *)
let all = [ perlbench; mcf; omnetpp; xalancbmk; x264; deepsjeng; leela ]

let find name = List.find (fun k -> k.k_name = name) all

let install (m : Machine.t) ~libc (k : kernel) : unit =
  Vfs.add_self m.Machine.fs k.k_name (Crt0.link_app ~libc k.k_unit);
  List.iter (fun (p, c) -> Vfs.add m.Machine.fs p c) k.k_files
