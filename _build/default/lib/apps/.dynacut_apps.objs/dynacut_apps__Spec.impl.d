lib/apps/spec.ml: Ast Crt0 Dsl List Machine Vfs
