lib/apps/rkv.ml: Crt0 Dsl Int64 List Machine Vfs
