lib/apps/ltpd.ml: Crt0 Dsl Httplib Int64 List Machine Vfs
