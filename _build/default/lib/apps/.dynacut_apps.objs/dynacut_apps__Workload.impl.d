lib/apps/workload.ml: Autophase Collector Drcov Lazy Libc List Ltpd Machine Net Ngx Printf Proc Rkv Self Spec String Vfs
