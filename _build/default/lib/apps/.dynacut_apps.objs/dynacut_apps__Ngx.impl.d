lib/apps/ngx.ml: Crt0 Dsl Httplib Int64 List Ltpd Machine Vfs
