lib/apps/httplib.ml: Dsl
