(** rkv — the Redis stand-in: an in-memory key-value server with "a
    well-defined feature set" (paper §4), a command-table dispatcher, and
    deliberately vulnerable implementations of the commands behind the
    CVEs in Table 1:

    - [STRALGO] — unchecked LCS matrix indexing (CVE-2021-32625 /
      CVE-2021-29477, integer overflow): long inputs index far outside
      the DP matrix and crash the server;
    - [SETRANGE] — unchecked offset (CVE-2019-10192/10193, buffer
      overflow): writes past the 64-byte value corrupt the adjacent heap
      canary (or crash outright for huge offsets);
    - [CONFIG SET] — unchecked copy into a 16-byte parameter buffer
      (CVE-2016-8339): overflows into the admin token next to it.

    The exploits are *real* against the vanilla binary — benchmarks
    demonstrate the crash / corruption, then block the command with
    DynaCut and demonstrate "-ERR" + an intact canary. *)

open Dsl

let port = 6379
let ready_banner = "rkv: ready to accept connections"

(* store layout: 256 slots x (used 8B | key 32B | value 64B) *)
let nslots = 256
let slot_used = 0
let slot_key = 8
let slot_val = 40
let slot_size = 104

(* command ids *)
let c_get = 1
let c_set = 2
let c_del = 3
let c_exists = 4
let c_incr = 5
let c_append = 6
let c_setrange = 7
let c_stralgo = 8
let c_config = 9
let c_ping = 10
let c_echo = 11
let c_keys = 12
let c_flushall = 13
let c_info = 14

(* commands present in the binary but outside every workload mix — the
   unused feature surface a static debloater must gamble on *)
let c_ttl = 15
let c_expire = 16
let c_persist = 17
let c_type = 18
let c_rename = 19
let c_getrange = 20
let c_strlen = 21
let c_mget = 22
let c_randomkey = 23
let c_scan = 24
let c_auth = 25
let c_save = 26
let c_debug = 27
let c_getset = 28
let c_dbsize = 29

let command_names =
  [
    ("GET", c_get);
    ("SET", c_set);
    ("DEL", c_del);
    ("EXISTS", c_exists);
    ("INCR", c_incr);
    ("APPEND", c_append);
    ("SETRANGE", c_setrange);
    ("STRALGO", c_stralgo);
    ("CONFIG", c_config);
    ("PING", c_ping);
    ("ECHO", c_echo);
    ("KEYS", c_keys);
    ("FLUSHALL", c_flushall);
    ("INFO", c_info);
    ("TTL", c_ttl);
    ("EXPIRE", c_expire);
    ("PERSIST", c_persist);
    ("TYPE", c_type);
    ("RENAME", c_rename);
    ("GETRANGE", c_getrange);
    ("STRLEN", c_strlen);
    ("MGET", c_mget);
    ("RANDOMKEY", c_randomkey);
    ("SCAN", c_scan);
    ("AUTH", c_auth);
    ("SAVE", c_save);
    ("DEBUG", c_debug);
    ("GETSET", c_getset);
    ("DBSIZE", c_dbsize);
  ]

let globals =
  [
    global_zero "rbuf" 512;
    global_zero "obuf" 512;
    global_zero "arg_cmd" 32;
    global_zero "arg_key" 64;
    global_zero "arg_val" 256;
    global_q "cfg_port" [ Int64.of_int port ];
    global_q "cfg_maxmemory" [ 0L ];
    global_q "cfg_appendonly" [ 0L ];
    global_zero "cfg_logfile" 32;
    global_zero "cfg_buf" 512;
    global_q "store_base" [ 0L ];
    global_q "nkeys" [ 0L ];
    global_q "requests" [ 0L ];
    (* the LCS DP matrix: 16x16 cells of 8 bytes; the canary and admin
       token sit right behind the vulnerable buffers, in declaration
       order, so overflows hit them *)
    global_zero "lcs_matrix" (16 * 16 * 8);
    global_zero "config_param" 16;
    global_bytes "admin_token" "secret-token\x00\x00\x00\x00";
    global_q "heap_canary" [ 0xC0FFEEL ];
  ]

(* ---------- init phase ---------- *)

let init_funcs =
  [
    func "rkv_read_config" []
      [
        decl "fd" (call "open" [ s "/etc/rkv.conf" ]);
        when_ (v "fd" <: i 0) [ ret (neg (i 1)) ];
        decl "n" (call "read" [ v "fd"; addr "cfg_buf"; i 511 ]);
        store8 (addr "cfg_buf" +: v "n") (i 0);
        do_ "close" [ v "fd" ];
        decl "p" (addr "cfg_buf");
        while_ (load8 (v "p") <>: i 0)
          [
            when_
              (call "strncmp" [ v "p"; s "port "; i 5 ] ==: i 0)
              [ set "cfg_port" (call "atoi" [ v "p" +: i 5 ]) ];
            when_
              (call "strncmp" [ v "p"; s "maxmemory "; i 10 ] ==: i 0)
              [ set "cfg_maxmemory" (call "atoi" [ v "p" +: i 10 ]) ];
            when_
              (call "strncmp" [ v "p"; s "appendonly "; i 11 ] ==: i 0)
              [ set "cfg_appendonly" (call "atoi" [ v "p" +: i 11 ]) ];
            while_ ((load8 (v "p") <>: i 10) &&: (load8 (v "p") <>: i 0))
              [ set "p" (v "p" +: i 1) ];
            when_ (load8 (v "p") ==: i 10) [ set "p" (v "p" +: i 1) ];
          ];
        ret0;
      ];
    func "rkv_init_store" []
      [
        set "store_base" (call "mmap" [ i 0; i (nslots * slot_size + 4096); i 6 ]);
        decl "k" (i 0);
        while_ (v "k" <: i nslots)
          [
            store64 (v "store_base" +: (v "k" *: i slot_size)) (i 0);
            set "k" (v "k" +: i 1);
          ];
        ret (v "store_base");
      ];
    (* load the RDB-style snapshot: "key value" lines *)
    func "rkv_load_rdb" []
      [
        decl "fd" (call "open" [ s "/data/dump.rdb" ]);
        when_ (v "fd" <: i 0) [ ret (i 0) ];
        decl "n" (call "read" [ v "fd"; addr "cfg_buf"; i 511 ]);
        store8 (addr "cfg_buf" +: v "n") (i 0);
        do_ "close" [ v "fd" ];
        decl "p" (addr "cfg_buf");
        decl "loaded" (i 0);
        while_ (load8 (v "p") <>: i 0)
          [
            (* key into arg_key *)
            decl "k" (i 0);
            while_
              ((load8 (v "p") <>: i 32) &&: (load8 (v "p") <>: i 0)
              &&: (load8 (v "p") <>: i 10) &&: (v "k" <: i 31))
              [
                store8 (addr "arg_key" +: v "k") (load8 (v "p"));
                set "k" (v "k" +: i 1);
                set "p" (v "p" +: i 1);
              ];
            store8 (addr "arg_key" +: v "k") (i 0);
            when_ (load8 (v "p") ==: i 32) [ set "p" (v "p" +: i 1) ];
            (* value into arg_val *)
            decl "k2" (i 0);
            while_
              ((load8 (v "p") <>: i 10) &&: (load8 (v "p") <>: i 0) &&: (v "k2" <: i 63))
              [
                store8 (addr "arg_val" +: v "k2") (load8 (v "p"));
                set "k2" (v "k2" +: i 1);
                set "p" (v "p" +: i 1);
              ];
            store8 (addr "arg_val" +: v "k2") (i 0);
            when_ (v "k" >: i 0)
              [
                do_ "rkv_store_set" [ addr "arg_key"; addr "arg_val" ];
                set "loaded" (v "loaded" +: i 1);
              ];
            when_ (load8 (v "p") ==: i 10) [ set "p" (v "p" +: i 1) ];
          ];
        ret (v "loaded");
      ];
  ]

(* ---------- the store ---------- *)

let store_funcs =
  [
    func "rkv_hash" [ "p" ]
      [
        decl "h" (i 5381);
        decl "c" (load8 (v "p"));
        while_ (v "c" <>: i 0)
          [
            set "h" (((v "h" <<: i 5) +: v "h") ^: v "c");
            set "p" (v "p" +: i 1);
            set "c" (load8 (v "p"));
          ];
        ret (v "h" &: i (nslots - 1));
      ];
    (* find slot for key; returns slot addr or 0 *)
    func "rkv_store_find" [ "key" ]
      [
        decl "h" (call "rkv_hash" [ v "key" ]);
        decl "probe" (i 0);
        while_ (v "probe" <: i nslots)
          [
            decl "slot" (v "store_base" +: (((v "h" +: v "probe") %: i nslots) *: i slot_size));
            when_ (load64 (v "slot") ==: i 0) [ ret (i 0) ];
            when_
              (call "strcmp" [ v "slot" +: i slot_key; v "key" ] ==: i 0)
              [ ret (v "slot") ];
            set "probe" (v "probe" +: i 1);
          ];
        ret (i 0);
      ];
    func "rkv_store_set" [ "key"; "value" ]
      [
        decl "slot" (call "rkv_store_find" [ v "key" ]);
        when_ (v "slot" ==: i 0)
          [
            decl "h" (call "rkv_hash" [ v "key" ]);
            decl "probe" (i 0);
            while_ ((v "probe" <: i nslots) &&: (v "slot" ==: i 0))
              [
                decl "cand"
                  (v "store_base" +: (((v "h" +: v "probe") %: i nslots) *: i slot_size));
                when_ (load64 (v "cand") ==: i 0) [ set "slot" (v "cand") ];
                set "probe" (v "probe" +: i 1);
              ];
            when_ (v "slot" ==: i 0) [ ret (neg (i 1)) ];
            store64 (v "slot") (i 1);
            do_ "strcpy" [ v "slot" +: i slot_key; v "key" ];
            set "nkeys" (v "nkeys" +: i 1);
          ];
        do_ "strcpy" [ v "slot" +: i slot_val; v "value" ];
        ret0;
      ];
    func "rkv_store_del" [ "key" ]
      [
        decl "slot" (call "rkv_store_find" [ v "key" ]);
        when_ (v "slot" ==: i 0) [ ret (i 0) ];
        store64 (v "slot") (i 2) (* tombstone: probing continues past it *);
        store8 (v "slot" +: i slot_key) (i 0);
        set "nkeys" (v "nkeys" -: i 1);
        ret (i 1);
      ];
  ]

(* ---------- request parsing and replies ---------- *)

let proto_funcs =
  [
    (* tokenize rbuf into arg_cmd / arg_key / arg_val (rest of line) *)
    func "rkv_parse" []
      [
        decl "p" (addr "rbuf");
        decl "k" (i 0);
        while_
          ((load8 (v "p") <>: i 32) &&: (load8 (v "p") <>: i 10)
          &&: (load8 (v "p") <>: i 0) &&: (v "k" <: i 31))
          [
            store8 (addr "arg_cmd" +: v "k") (load8 (v "p"));
            set "k" (v "k" +: i 1);
            set "p" (v "p" +: i 1);
          ];
        store8 (addr "arg_cmd" +: v "k") (i 0);
        when_ (load8 (v "p") ==: i 32) [ set "p" (v "p" +: i 1) ];
        decl "k2" (i 0);
        while_
          ((load8 (v "p") <>: i 32) &&: (load8 (v "p") <>: i 10)
          &&: (load8 (v "p") <>: i 0) &&: (v "k2" <: i 63))
          [
            store8 (addr "arg_key" +: v "k2") (load8 (v "p"));
            set "k2" (v "k2" +: i 1);
            set "p" (v "p" +: i 1);
          ];
        store8 (addr "arg_key" +: v "k2") (i 0);
        when_ (load8 (v "p") ==: i 32) [ set "p" (v "p" +: i 1) ];
        decl "k3" (i 0);
        while_
          ((load8 (v "p") <>: i 10) &&: (load8 (v "p") <>: i 0) &&: (v "k3" <: i 255))
          [
            store8 (addr "arg_val" +: v "k3") (load8 (v "p"));
            set "k3" (v "k3" +: i 1);
            set "p" (v "p" +: i 1);
          ];
        store8 (addr "arg_val" +: v "k3") (i 0);
        ret0;
      ];
    (* the command table: name -> id *)
    func "rkv_lookup_command" []
      (List.map
         (fun (name, id) ->
           when_ (call "strcmp" [ addr "arg_cmd"; s name ] ==: i 0) [ ret (i id) ])
         command_names
      @ [ ret (i 0) ]);
    func "rkv_reply" [ "c"; "msg" ]
      [ ret (call "send" [ v "c"; v "msg"; call "strlen" [ v "msg" ] ]) ];
    func "rkv_reply_int" [ "c"; "n" ]
      [
        store8 (addr "obuf") (i 58 (* ':' *));
        decl "len" (call "itoa" [ addr "obuf" +: i 1; v "n" ]);
        ret (call "send" [ v "c"; addr "obuf"; v "len" +: i 1 ]);
      ];
  ]

(* ---------- commands ---------- *)

let command_funcs =
  [
    func "rkv_cmd_get" [ "c" ]
      [
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        when_ (v "slot" ==: i 0) [ ret (call "rkv_reply" [ v "c"; s "$-1" ]) ];
        store8 (addr "obuf") (i 36 (* '$' *));
        do_ "strcpy" [ addr "obuf" +: i 1; v "slot" +: i slot_val ];
        ret (call "rkv_reply" [ v "c"; addr "obuf" ]);
      ];
    func "rkv_cmd_set" [ "c" ]
      [
        label "rkv_feat_set";
        do_ "rkv_store_set" [ addr "arg_key"; addr "arg_val" ];
        ret (call "rkv_reply" [ v "c"; s "+OK" ]);
      ];
    func "rkv_cmd_del" [ "c" ]
      [ ret (call "rkv_reply_int" [ v "c"; call "rkv_store_del" [ addr "arg_key" ] ]) ];
    func "rkv_cmd_exists" [ "c" ]
      [
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        ret (call "rkv_reply_int" [ v "c"; v "slot" <>: i 0 ]);
      ];
    func "rkv_cmd_incr" [ "c" ]
      [
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        decl "n" (i 0);
        when_ (v "slot" <>: i 0) [ set "n" (call "atoi" [ v "slot" +: i slot_val ]) ];
        set "n" (v "n" +: i 1);
        do_ "itoa" [ addr "arg_val"; v "n" ];
        do_ "rkv_store_set" [ addr "arg_key"; addr "arg_val" ];
        ret (call "rkv_reply_int" [ v "c"; v "n" ]);
      ];
    func "rkv_cmd_append" [ "c" ]
      [
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        when_ (v "slot" ==: i 0)
          [
            do_ "rkv_store_set" [ addr "arg_key"; addr "arg_val" ];
            ret (call "rkv_reply_int" [ v "c"; call "strlen" [ addr "arg_val" ] ]);
          ];
        decl "n" (call "strlen" [ v "slot" +: i slot_val ]);
        do_ "strcpy" [ v "slot" +: i slot_val +: v "n"; addr "arg_val" ];
        ret (call "rkv_reply_int" [ v "c"; call "strlen" [ v "slot" +: i slot_val ] ]);
      ];
    (* CVE-2019-10192/10193: SETRANGE key offset data — the offset is
       never bounds-checked against the 64-byte value buffer *)
    func "rkv_cmd_setrange" [ "c" ]
      [
        label "rkv_feat_setrange";
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        when_ (v "slot" ==: i 0) [ ret (call "rkv_reply" [ v "c"; s "$-1" ]) ];
        (* arg_val = "<offset> <data>" *)
        decl "off" (call "atoi" [ addr "arg_val" ]);
        decl "sp" (call "strchr_idx" [ addr "arg_val"; i 32 ]);
        when_ (v "sp" <: i 0) [ ret (call "rkv_reply" [ v "c"; s "-ERR syntax" ]) ];
        decl "data" (addr "arg_val" +: v "sp" +: i 1);
        decl "k" (i 0);
        (* BUG: no check that off + strlen(data) <= 64 *)
        while_ (load8 (v "data" +: v "k") <>: i 0)
          [
            store8 (v "slot" +: i slot_val +: v "off" +: v "k") (load8 (v "data" +: v "k"));
            set "k" (v "k" +: i 1);
          ];
        ret (call "rkv_reply_int" [ v "c"; v "off" +: v "k" ]);
      ];
    (* CVE-2021-32625 / CVE-2021-29477: STRALGO a b computes an LCS in a
       16x16 matrix; lengths are truncated to int8-ish arithmetic that
       overflows, so long strings index far out of bounds *)
    func "rkv_cmd_stralgo" [ "c" ]
      [
        label "rkv_feat_stralgo";
        decl "a" (addr "arg_key");
        decl "b" (addr "arg_val");
        decl "la" (call "strlen" [ v "a" ]);
        decl "lb" (call "strlen" [ v "b" ]);
        (* BUG: the matrix is 16x16 but indices use the raw lengths *)
        decl "ia" (i 1);
        while_ (v "ia" <=: v "la")
          [
            decl "ib" (i 1);
            while_ (v "ib" <=: v "lb")
              [
                decl "cell" (addr "lcs_matrix" +: (((v "ia" *: i 16) +: v "ib") *: i 8));
                if_
                  (load8 (v "a" +: v "ia" -: i 1) ==: load8 (v "b" +: v "ib" -: i 1))
                  [
                    store64 (v "cell")
                      (load64
                         (addr "lcs_matrix"
                         +: ((((v "ia" -: i 1) *: i 16) +: (v "ib" -: i 1)) *: i 8))
                      +: i 1);
                  ]
                  [
                    decl "up"
                      (load64
                         (addr "lcs_matrix"
                         +: ((((v "ia" -: i 1) *: i 16) +: v "ib") *: i 8)));
                    decl "left"
                      (load64
                         (addr "lcs_matrix"
                         +: (((v "ia" *: i 16) +: (v "ib" -: i 1)) *: i 8)));
                    if_ (v "up" >: v "left")
                      [ store64 (v "cell") (v "up") ]
                      [ store64 (v "cell") (v "left") ];
                  ];
                set "ib" (v "ib" +: i 1);
              ];
            set "ia" (v "ia" +: i 1);
          ];
        ret
          (call "rkv_reply_int"
             [ v "c"; load64 (addr "lcs_matrix" +: (((v "la" *: i 16) +: v "lb") *: i 8)) ]);
      ];
    (* CVE-2016-8339: CONFIG SET param value copies the value into a
       16-byte buffer with no bound; the admin token lives next door *)
    func "rkv_cmd_config" [ "c" ]
      [
        label "rkv_feat_config";
        when_
          (call "strncmp" [ addr "arg_key"; s "SET"; i 3 ] ==: i 0)
          [
            decl "k" (i 0);
            (* BUG: copies up to 255 bytes into config_param[16] *)
            while_ (load8 (addr "arg_val" +: v "k") <>: i 0)
              [
                store8 (addr "config_param" +: v "k") (load8 (addr "arg_val" +: v "k"));
                set "k" (v "k" +: i 1);
              ];
            ret (call "rkv_reply" [ v "c"; s "+OK" ]);
          ];
        when_
          (call "strncmp" [ addr "arg_key"; s "GET"; i 3 ] ==: i 0)
          [
            store8 (addr "obuf") (i 36);
            do_ "strcpy" [ addr "obuf" +: i 1; addr "config_param" ];
            ret (call "rkv_reply" [ v "c"; addr "obuf" ]);
          ];
        ret (call "rkv_reply" [ v "c"; s "-ERR config" ]);
      ];
    func "rkv_cmd_keys" [ "c" ] [ ret (call "rkv_reply_int" [ v "c"; v "nkeys" ]) ];
    (* ---- the cold command set ---- *)
    func "rkv_cmd_ttl" [ "c" ]
      [
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        when_ (v "slot" ==: i 0) [ ret (call "rkv_reply_int" [ v "c"; neg (i 2) ]) ];
        (* no per-key expiry metadata: -1 = no TTL, like Redis *)
        ret (call "rkv_reply_int" [ v "c"; neg (i 1) ]);
      ];
    func "rkv_cmd_expire" [ "c" ]
      [
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        when_ (v "slot" ==: i 0) [ ret (call "rkv_reply_int" [ v "c"; i 0 ]) ];
        (* mark the slot with the deadline cycle *)
        store64 (v "slot") (call "gettime" [] +: call "atoi" [ addr "arg_val" ]);
        ret (call "rkv_reply_int" [ v "c"; i 1 ]);
      ];
    func "rkv_cmd_persist" [ "c" ]
      [
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        when_ (v "slot" ==: i 0) [ ret (call "rkv_reply_int" [ v "c"; i 0 ]) ];
        store64 (v "slot") (i 1);
        ret (call "rkv_reply_int" [ v "c"; i 1 ]);
      ];
    func "rkv_cmd_type" [ "c" ]
      [
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        when_ (v "slot" ==: i 0) [ ret (call "rkv_reply" [ v "c"; s "+none" ]) ];
        ret (call "rkv_reply" [ v "c"; s "+string" ]);
      ];
    func "rkv_cmd_rename" [ "c" ]
      [
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        when_ (v "slot" ==: i 0) [ ret (call "rkv_reply" [ v "c"; s "-ERR no such key" ]) ];
        do_ "rkv_store_set" [ addr "arg_val"; v "slot" +: i slot_val ];
        do_ "rkv_store_del" [ addr "arg_key" ];
        ret (call "rkv_reply" [ v "c"; s "+OK" ]);
      ];
    func "rkv_cmd_getrange" [ "c" ]
      [
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        when_ (v "slot" ==: i 0) [ ret (call "rkv_reply" [ v "c"; s "$-1" ]) ];
        decl "start" (call "atoi" [ addr "arg_val" ]);
        decl "len" (call "strlen" [ v "slot" +: i slot_val ]);
        when_ (v "start" >=: v "len") [ ret (call "rkv_reply" [ v "c"; s "$" ]) ];
        store8 (addr "obuf") (i 36);
        do_ "strcpy" [ addr "obuf" +: i 1; v "slot" +: i slot_val +: v "start" ];
        ret (call "rkv_reply" [ v "c"; addr "obuf" ]);
      ];
    func "rkv_cmd_strlen" [ "c" ]
      [
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        when_ (v "slot" ==: i 0) [ ret (call "rkv_reply_int" [ v "c"; i 0 ]) ];
        ret (call "rkv_reply_int" [ v "c"; call "strlen" [ v "slot" +: i slot_val ] ]);
      ];
    func "rkv_cmd_mget" [ "c" ]
      [
        (* arg_key and arg_val name two keys *)
        decl "n" (i 0);
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        do_ "strcpy" [ addr "obuf"; s "*" ];
        when_ (v "slot" <>: i 0)
          [
            set "n" (call "strlen" [ addr "obuf" ]);
            do_ "strcpy" [ addr "obuf" +: v "n"; v "slot" +: i slot_val ];
          ];
        decl "slot2" (call "rkv_store_find" [ addr "arg_val" ]);
        when_ (v "slot2" <>: i 0)
          [
            set "n" (call "strlen" [ addr "obuf" ]);
            store8 (addr "obuf" +: v "n") (i 32);
            do_ "strcpy" [ addr "obuf" +: v "n" +: i 1; v "slot2" +: i slot_val ];
          ];
        ret (call "rkv_reply" [ v "c"; addr "obuf" ]);
      ];
    func "rkv_cmd_randomkey" [ "c" ]
      [
        when_ (v "nkeys" ==: i 0) [ ret (call "rkv_reply" [ v "c"; s "$-1" ]) ];
        decl "start" (call "rand" [ i nslots ]);
        decl "k" (i 0);
        while_ (v "k" <: i nslots)
          [
            decl "slot"
              (v "store_base" +: (((v "start" +: v "k") %: i nslots) *: i slot_size));
            when_ (load64 (v "slot") ==: i 1)
              [
                store8 (addr "obuf") (i 36);
                do_ "strcpy" [ addr "obuf" +: i 1; v "slot" +: i slot_key ];
                ret (call "rkv_reply" [ v "c"; addr "obuf" ]);
              ];
            set "k" (v "k" +: i 1);
          ];
        ret (call "rkv_reply" [ v "c"; s "$-1" ]);
      ];
    func "rkv_cmd_scan" [ "c" ]
      [
        decl "cursor" (call "atoi" [ addr "arg_key" ]);
        decl "found" (i 0);
        decl "k" (v "cursor");
        while_ ((v "k" <: i nslots) &&: (v "found" <: i 4))
          [
            decl "slot" (v "store_base" +: (v "k" *: i slot_size));
            when_ (load64 (v "slot") ==: i 1) [ set "found" (v "found" +: i 1) ];
            set "k" (v "k" +: i 1);
          ];
        ret (call "rkv_reply_int" [ v "c"; v "k" %: i nslots ]);
      ];
    func "rkv_cmd_auth" [ "c" ]
      [
        if_
          (call "strcmp" [ addr "arg_key"; addr "admin_token" ] ==: i 0)
          [ ret (call "rkv_reply" [ v "c"; s "+OK" ]) ]
          [ ret (call "rkv_reply" [ v "c"; s "-ERR invalid password" ]) ];
      ];
    func "rkv_cmd_save" [ "c" ]
      [
        (* the fs is read-only: report the failure like a misconfigured
           redis would *)
        decl "written" (i 0);
        decl "k" (i 0);
        while_ (v "k" <: i nslots)
          [
            when_ (load64 (v "store_base" +: (v "k" *: i slot_size)) ==: i 1)
              [ set "written" (v "written" +: i 1) ];
            set "k" (v "k" +: i 1);
          ];
        expr (v "written");
        ret (call "rkv_reply" [ v "c"; s "-ERR read-only filesystem" ]);
      ];
    func "rkv_cmd_debug" [ "c" ]
      [
        when_
          (call "strcmp" [ addr "arg_key"; s "SLEEP" ] ==: i 0)
          [
            do_ "nanosleep" [ call "atoi" [ addr "arg_val" ] ];
            ret (call "rkv_reply" [ v "c"; s "+OK" ]);
          ];
        when_
          (call "strcmp" [ addr "arg_key"; s "SEGFAULT" ] ==: i 0)
          [ expr (load64 (i 0)); ret0 ];
        ret (call "rkv_reply" [ v "c"; s "-ERR unknown debug subcommand" ]);
      ];
    func "rkv_cmd_getset" [ "c" ]
      [
        decl "slot" (call "rkv_store_find" [ addr "arg_key" ]);
        if_ (v "slot" ==: i 0)
          [ do_ "rkv_reply" [ v "c"; s "$-1" ] ]
          [
            store8 (addr "obuf") (i 36);
            do_ "strcpy" [ addr "obuf" +: i 1; v "slot" +: i slot_val ];
            do_ "rkv_reply" [ v "c"; addr "obuf" ];
          ];
        do_ "rkv_store_set" [ addr "arg_key"; addr "arg_val" ];
        ret0;
      ];
    func "rkv_cmd_flushall" [ "c" ]
      [
        decl "k" (i 0);
        while_ (v "k" <: i nslots)
          [
            store64 (v "store_base" +: (v "k" *: i slot_size)) (i 0);
            set "k" (v "k" +: i 1);
          ];
        set "nkeys" (i 0);
        ret (call "rkv_reply" [ v "c"; s "+OK" ]);
      ];
    func "rkv_cmd_info" [ "c" ]
      [
        do_ "strcpy" [ addr "obuf"; s "keys=" ];
        decl "n" (call "strlen" [ addr "obuf" ]);
        set "n" (v "n" +: call "itoa" [ addr "obuf" +: v "n"; v "nkeys" ]);
        do_ "strcpy" [ addr "obuf" +: v "n"; s " canary=" ];
        set "n" (call "strlen" [ addr "obuf" ]);
        if_ (v "heap_canary" ==: i 0xC0FFEE)
          [ do_ "strcpy" [ addr "obuf" +: v "n"; s "ok" ] ]
          [ do_ "strcpy" [ addr "obuf" +: v "n"; s "CORRUPTED" ] ];
        ret (call "rkv_reply" [ v "c"; addr "obuf" ]);
      ];
  ]

let dispatch_funcs =
  [
    (* the big switch-case dispatcher; default = exported error path *)
    func "rkv_dispatch" [ "c" ]
      [
        do_ "rkv_parse" [];
        decl "cmd" (call "rkv_lookup_command" []);
        set "requests" (v "requests" +: i 1);
        switch (v "cmd")
          [
            (c_get, [ do_ "rkv_cmd_get" [ v "c" ] ]);
            (c_set, [ do_ "rkv_cmd_set" [ v "c" ] ]);
            (c_del, [ do_ "rkv_cmd_del" [ v "c" ] ]);
            (c_exists, [ do_ "rkv_cmd_exists" [ v "c" ] ]);
            (c_incr, [ do_ "rkv_cmd_incr" [ v "c" ] ]);
            (c_append, [ do_ "rkv_cmd_append" [ v "c" ] ]);
            (c_setrange, [ do_ "rkv_cmd_setrange" [ v "c" ] ]);
            (c_stralgo, [ do_ "rkv_cmd_stralgo" [ v "c" ] ]);
            (c_config, [ do_ "rkv_cmd_config" [ v "c" ] ]);
            (c_ping, [ do_ "rkv_reply" [ v "c"; s "+PONG" ] ]);
            (c_echo, [ do_ "rkv_reply" [ v "c"; addr "arg_key" ] ]);
            (c_keys, [ do_ "rkv_cmd_keys" [ v "c" ] ]);
            (c_flushall, [ do_ "rkv_cmd_flushall" [ v "c" ] ]);
            (c_info, [ do_ "rkv_cmd_info" [ v "c" ] ]);
            (c_ttl, [ do_ "rkv_cmd_ttl" [ v "c" ] ]);
            (c_expire, [ do_ "rkv_cmd_expire" [ v "c" ] ]);
            (c_persist, [ do_ "rkv_cmd_persist" [ v "c" ] ]);
            (c_type, [ do_ "rkv_cmd_type" [ v "c" ] ]);
            (c_rename, [ do_ "rkv_cmd_rename" [ v "c" ] ]);
            (c_getrange, [ do_ "rkv_cmd_getrange" [ v "c" ] ]);
            (c_strlen, [ do_ "rkv_cmd_strlen" [ v "c" ] ]);
            (c_mget, [ do_ "rkv_cmd_mget" [ v "c" ] ]);
            (c_randomkey, [ do_ "rkv_cmd_randomkey" [ v "c" ] ]);
            (c_scan, [ do_ "rkv_cmd_scan" [ v "c" ] ]);
            (c_auth, [ do_ "rkv_cmd_auth" [ v "c" ] ]);
            (c_save, [ do_ "rkv_cmd_save" [ v "c" ] ]);
            (c_debug, [ do_ "rkv_cmd_debug" [ v "c" ] ]);
            (c_getset, [ do_ "rkv_cmd_getset" [ v "c" ] ]);
            (c_dbsize, [ do_ "rkv_cmd_keys" [ v "c" ] ]);
          ]
          ~default:
            [ label "rkv_err"; do_ "rkv_reply" [ v "c"; s "-ERR unknown command" ] ];
        ret0;
      ];
    func "rkv_serve_loop" [ "sfd" ]
      [
        forever
          [
            decl "c" (call "accept" [ v "sfd" ]);
            decl "n" (call "recv" [ v "c"; addr "rbuf"; i 511 ]);
            when_ (v "n" >: i 0)
              [
                store8 (addr "rbuf" +: v "n") (i 0);
                do_ "rkv_dispatch" [ v "c" ];
              ];
            do_ "close" [ v "c" ];
          ];
        ret0;
      ];
    func "main" []
      [
        do_ "rkv_read_config" [];
        do_ "rkv_init_store" [];
        decl "loaded" (call "rkv_load_rdb" []);
        do_ "log_kv" [ s "rkv: loaded keys "; v "loaded" ];
        decl "sfd" (call "socket" []);
        do_ "bind" [ v "sfd"; v "cfg_port" ];
        do_ "listen" [ v "sfd" ];
        do_ "puts" [ s ready_banner ];
        do_ "rkv_serve_loop" [ v "sfd" ];
        ret0;
      ];
  ]

let unit_rkv =
  unit_ "rkv" ~globals (init_funcs @ store_funcs @ proto_funcs @ command_funcs @ dispatch_funcs)

let config = "port 6379\nmaxmemory 1048576\nappendonly 0\n"
let rdb = "greeting hello\ncounter 41\ncolor blue\n"

let install (m : Machine.t) ~libc : unit =
  Vfs.add_self m.Machine.fs "rkv" (Crt0.link_app ~libc unit_rkv);
  Vfs.add m.Machine.fs "/etc/rkv.conf" config;
  Vfs.add m.Machine.fs "/data/dump.rdb" rdb
