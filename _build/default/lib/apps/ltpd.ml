(** ltpd — the Lighttpd stand-in: event-driven, single-process web server
    with a WebDAV extension (paper §4, "Lighttpd has an event-driven
    single-process architecture", evaluated at v1.4.59 with the WebDAV
    module enabled).

    Phase structure mirrors the real thing:
    - initialization: parse /etc/ltpd.conf, build the mimetype table,
      set up the connection cache, bind the socket — all code that is
      dead after boot (the red blocks of Figure 2b);
    - [server_main_loop] (the transition point named in §3.1): the
      accept/dispatch loop with a big method switch whose default lands
      on the exported [ltpd_403] label — DynaCut's redirect target. *)

open Dsl

let port = 8080
let ready_banner = "lighttpd: server started"

(* upload slots for the WebDAV PUT feature *)
let upload_slots = 8
let slot_name = 32
let slot_data = 128
let slot_size = slot_name + slot_data + 8 (* name, data, used flag *)

let globals =
  Httplib.globals
  @ [
      global_q "cfg_port" [ Int64.of_int port ];
      global_q "cfg_maxconn" [ 0L ];
      global_q "cfg_keepalive" [ 0L ];
      global_q "cfg_loglevel" [ 0L ];
      global_zero "cfg_docroot" 64;
      global_zero "cfg_buf" 1024;
      global_zero "mime_table" (32 * 16);
      global_q "mime_count" [ 0L ];
      global_q "cache_base" [ 0L ];
      global_q "requests_served" [ 0L ];
      global_zero "uploads" (upload_slots * slot_size);
      global_q "auth_enabled" [ 0L ];
    ]

(* ---------- initialization-phase code ---------- *)

let init_funcs =
  [
    (* read /etc/ltpd.conf into cfg_buf *)
    func "ltpd_read_config" []
      [
        decl "fd" (call "open" [ s "/etc/ltpd.conf" ]);
        when_ (v "fd" <: i 0) [ do_ "puts" [ s "ltpd: no config" ]; ret (neg (i 1)) ];
        decl "n" (call "read" [ v "fd"; addr "cfg_buf"; i 1023 ]);
        store8 (addr "cfg_buf" +: v "n") (i 0);
        do_ "close" [ v "fd" ];
        ret (v "n");
      ];
    (* parse "key=value" lines *)
    func "ltpd_parse_config" []
      [
        decl "p" (addr "cfg_buf");
        while_ (load8 (v "p") <>: i 0)
          [
            when_
              (call "strncmp" [ v "p"; s "port="; i 5 ] ==: i 0)
              [ set "cfg_port" (call "atoi" [ v "p" +: i 5 ]) ];
            when_
              (call "strncmp" [ v "p"; s "maxconn="; i 8 ] ==: i 0)
              [ set "cfg_maxconn" (call "atoi" [ v "p" +: i 8 ]) ];
            when_
              (call "strncmp" [ v "p"; s "keepalive="; i 10 ] ==: i 0)
              [ set "cfg_keepalive" (call "atoi" [ v "p" +: i 10 ]) ];
            when_
              (call "strncmp" [ v "p"; s "loglevel="; i 9 ] ==: i 0)
              [ set "cfg_loglevel" (call "atoi" [ v "p" +: i 9 ]) ];
            when_
              (call "strncmp" [ v "p"; s "docroot="; i 8 ] ==: i 0)
              [
                decl "k" (i 0);
                decl "q" (v "p" +: i 8);
                while_
                  ((load8 (v "q") <>: i 10) &&: (load8 (v "q") <>: i 0) &&: (v "k" <: i 63))
                  [
                    store8 (addr "cfg_docroot" +: v "k") (load8 (v "q"));
                    set "k" (v "k" +: i 1);
                    set "q" (v "q" +: i 1);
                  ];
                store8 (addr "cfg_docroot" +: v "k") (i 0);
              ];
            (* skip to next line *)
            while_ ((load8 (v "p") <>: i 10) &&: (load8 (v "p") <>: i 0))
              [ set "p" (v "p" +: i 1) ];
            when_ (load8 (v "p") ==: i 10) [ set "p" (v "p" +: i 1) ];
          ];
        ret0;
      ];
    (* one mimetype registration: copies ext into the table *)
    func "ltpd_mime_add" [ "ext"; "id" ]
      [
        decl "slot" (addr "mime_table" +: (v "mime_count" *: i 16));
        decl "k" (i 0);
        while_ ((load8 (v "ext" +: v "k") <>: i 0) &&: (v "k" <: i 7))
          [
            store8 (v "slot" +: v "k") (load8 (v "ext" +: v "k"));
            set "k" (v "k" +: i 1);
          ];
        store8 (v "slot" +: v "k") (i 0);
        store64 (v "slot" +: i 8) (v "id");
        set "mime_count" (v "mime_count" +: i 1);
        ret0;
      ];
    func "ltpd_build_mime_table" []
      [
        do_ "ltpd_mime_add" [ s "html"; i 1 ];
        do_ "ltpd_mime_add" [ s "txt"; i 2 ];
        do_ "ltpd_mime_add" [ s "css"; i 3 ];
        do_ "ltpd_mime_add" [ s "js"; i 4 ];
        do_ "ltpd_mime_add" [ s "png"; i 5 ];
        do_ "ltpd_mime_add" [ s "jpg"; i 6 ];
        do_ "ltpd_mime_add" [ s "gif"; i 7 ];
        do_ "ltpd_mime_add" [ s "ico"; i 8 ];
        ret (v "mime_count");
      ];
    (* allocate and scrub the connection cache *)
    func "ltpd_init_cache" []
      [
        decl "sz" (i 65536);
        set "cache_base" (call "mmap" [ i 0; v "sz"; i 6 ]);
        do_ "memset" [ v "cache_base"; i 0; i 4096 ];
        (* free-list threading through the cache *)
        decl "k" (i 0);
        while_ (v "k" <: i 63)
          [
            store64
              (v "cache_base" +: (v "k" *: i 1024))
              (v "cache_base" +: ((v "k" +: i 1) *: i 1024));
            set "k" (v "k" +: i 1);
          ];
        ret (v "cache_base");
      ];
    func "ltpd_init_uploads" []
      [
        do_ "memset" [ addr "uploads"; i 0; i (upload_slots * slot_size) ];
        ret0;
      ];
    func "ltpd_setup_socket" []
      [
        decl "sfd" (call "socket" []);
        do_ "bind" [ v "sfd"; v "cfg_port" ];
        do_ "listen" [ v "sfd" ];
        ret (v "sfd");
      ];
  ]

(* ---------- serving-phase code ---------- *)

let serve_funcs =
  [
    (* file lookup under the docroot; body copied into http_obuf tail *)
    func "ltpd_open_docfile" []
      [
        do_ "strcpy" [ addr "http_file"; addr "cfg_docroot" ];
        decl "n" (call "strlen" [ addr "http_file" ]);
        do_ "strcpy" [ addr "http_file" +: v "n"; addr "http_path" ];
        ret (call "open" [ addr "http_file" ]);
      ];
    (* WebDAV upload slot lookup by path; returns slot addr or 0 *)
    func "ltpd_find_upload" []
      [
        decl "k" (i 0);
        while_ (v "k" <: i upload_slots)
          [
            decl "slot" (addr "uploads" +: (v "k" *: i slot_size));
            when_
              ((load64 (v "slot" +: i (slot_name + slot_data)) ==: i 1)
              &&: (call "strcmp" [ v "slot"; addr "http_path" ] ==: i 0))
              [ ret (v "slot") ];
            set "k" (v "k" +: i 1);
          ];
        ret (i 0);
      ];
    (* scan request headers for a prefix; returns its offset or -1 *)
    func "ltpd_find_header" [ "name"; "nlen" ]
      [
        decl "k" (i 0);
        while_ (load8 (addr "http_rbuf" +: v "k") <>: i 0)
          [
            when_
              (call "strncmp" [ addr "http_rbuf" +: v "k"; v "name"; v "nlen" ] ==: i 0)
              [ ret (v "k" +: v "nlen") ];
            set "k" (v "k" +: i 1);
          ];
        ret (neg (i 1));
      ];
    func "ltpd_handle_get" [ "c" ]
      [
        (* uploads shadow the docroot *)
        decl "slot" (call "ltpd_find_upload" []);
        when_ (v "slot" <>: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_200; v "slot" +: i slot_name ]) ];
        decl "fd" (call "ltpd_open_docfile" []);
        when_ (v "fd" <: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_404; s "not found" ]) ];
        decl "n" (call "read" [ v "fd"; addr "http_file"; i 255 ]);
        store8 (addr "http_file" +: v "n") (i 0);
        do_ "close" [ v "fd" ];
        set "requests_served" (v "requests_served" +: i 1);
        (* conditional GET (mod_expire) — our clients never send it *)
        when_
          (call "ltpd_find_header" [ s "If-None-Match: "; i 15 ] >=: i 0)
          [
            decl "etag" (call "ltpd_etag_compute" [ addr "http_file"; v "n" ]);
            expr (v "etag");
            ret (call "http_reply" [ v "c"; s "HTTP/1.0 304 Not Modified\r\n"; i 0 ]);
          ];
        (* compression (mod_deflate) — never negotiated by our clients *)
        when_
          (call "ltpd_find_header" [ s "Accept-Encoding: gzip"; i 21 ] >=: i 0)
          [ do_ "ltpd_gzip_body" [ addr "http_file"; v "n" ] ];
        (* partial content — never requested *)
        decl "range" (call "ltpd_parse_range" []);
        when_ (v "range" >=: i 0)
          [
            ret
              (call "http_reply"
                 [ v "c"; s "HTTP/1.0 206 Partial Content\r\n"; addr "http_file" +: v "range" ]);
          ];
        ret (call "http_reply" [ v "c"; s Httplib.st_200; addr "http_file" ]);
      ];
    func "ltpd_handle_head" [ "c" ]
      [
        decl "fd" (call "ltpd_open_docfile" []);
        when_ (v "fd" <: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_404; i 0 ]) ];
        do_ "close" [ v "fd" ];
        ret (call "http_reply" [ v "c"; s Httplib.st_200; i 0 ]);
      ];
    func "ltpd_handle_post" [ "c" ]
      [
        decl "body" (call "http_body" []);
        when_ (v "body" ==: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_200; s "empty" ]) ];
        ret (call "http_reply" [ v "c"; s Httplib.st_200; v "body" ]);
      ];
    (* WebDAV PUT: store body into an upload slot (the data-write feature
       the paper disables in read-only windows) *)
    func "ltpd_dav_put" [ "c" ]
      [
        label "ltpd_feat_put";
        decl "body" (call "http_body" []);
        when_ (v "body" ==: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_403; s "no body" ]) ];
        (* reuse existing slot or claim a free one *)
        decl "slot" (call "ltpd_find_upload" []);
        when_ (v "slot" ==: i 0)
          [
            decl "k" (i 0);
            while_ ((v "k" <: i upload_slots) &&: (v "slot" ==: i 0))
              [
                decl "cand" (addr "uploads" +: (v "k" *: i slot_size));
                when_ (load64 (v "cand" +: i (slot_name + slot_data)) ==: i 0)
                  [ set "slot" (v "cand") ];
                set "k" (v "k" +: i 1);
              ];
          ];
        when_ (v "slot" ==: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_403; s "full" ]) ];
        do_ "strcpy" [ v "slot"; addr "http_path" ];
        decl "k2" (i 0);
        while_ ((load8 (v "body" +: v "k2") <>: i 0) &&: (v "k2" <: i (slot_data - 1)))
          [
            store8 (v "slot" +: i slot_name +: v "k2") (load8 (v "body" +: v "k2"));
            set "k2" (v "k2" +: i 1);
          ];
        store8 (v "slot" +: i slot_name +: v "k2") (i 0);
        store64 (v "slot" +: i (slot_name + slot_data)) (i 1);
        ret (call "http_reply" [ v "c"; s Httplib.st_201; s "stored" ]);
      ];
    func "ltpd_dav_delete" [ "c" ]
      [
        label "ltpd_feat_delete";
        decl "slot" (call "ltpd_find_upload" []);
        when_ (v "slot" ==: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_404; i 0 ]) ];
        store64 (v "slot" +: i (slot_name + slot_data)) (i 0);
        ret (call "http_reply" [ v "c"; s Httplib.st_204; i 0 ]);
      ];
    func "ltpd_handle_options" [ "c" ]
      [
        ret
          (call "http_reply"
             [ v "c"; s Httplib.st_200; s "Allow: GET,HEAD,POST,PUT,DELETE,OPTIONS" ]);
      ];
    func "ltpd_dav_propfind" [ "c" ]
      [ ret (call "http_reply" [ v "c"; s Httplib.st_207; s "<multistatus/>" ]) ];
    (* -------- mod_* features: present and reachable in the binary but
       never exercised by our workloads — the gray blocks of Figure 2b.
       Real Lighttpd ships mod_cgi, mod_auth, mod_rewrite, mod_proxy,
       mod_deflate, mod_expire, mod_status, mod_ssi and more, and a
       typical deployment uses almost none of them. -------- *)
    func "ltpd_cgi_build_env" []
      [
        (* SCRIPT_NAME= + path, QUERY_STRING= ... into the cache area *)
        decl "env" (v "cache_base" +: i 8192);
        do_ "strcpy" [ v "env"; s "SCRIPT_NAME=" ];
        decl "n" (call "strlen" [ v "env" ]);
        do_ "strcpy" [ v "env" +: v "n"; addr "http_path" ];
        decl "q" (call "strchr_idx" [ addr "http_path"; i 63 (* '?' *) ]);
        when_ (v "q" >=: i 0)
          [
            set "n" (call "strlen" [ v "env" ]);
            do_ "strcpy" [ v "env" +: v "n"; s " QUERY_STRING=" ];
            set "n" (call "strlen" [ v "env" ]);
            do_ "strcpy" [ v "env" +: v "n"; addr "http_path" +: v "q" +: i 1 ];
          ];
        ret (v "env");
      ];
    func "ltpd_handle_cgi" [ "c" ]
      [
        decl "env" (call "ltpd_cgi_build_env" []);
        expr (v "env");
        decl "fd" (call "ltpd_open_docfile" []);
        when_ (v "fd" <: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_404; s "no script" ]) ];
        decl "n" (call "read" [ v "fd"; addr "http_file"; i 255 ]);
        store8 (addr "http_file" +: v "n") (i 0);
        do_ "close" [ v "fd" ];
        ret (call "http_reply" [ v "c"; s Httplib.st_200; addr "http_file" ]);
      ];
    func "ltpd_auth_decode_basic" [ "src"; "dst" ]
      [
        (* toy base64-ish decode: rotate each byte *)
        decl "k" (i 0);
        decl "ch" (load8 (v "src"));
        while_ ((v "ch" <>: i 0) &&: (v "k" <: i 63))
          [
            store8 (v "dst" +: v "k") ((v "ch" +: i 13) &: i 127);
            set "k" (v "k" +: i 1);
            set "ch" (load8 (v "src" +: v "k"));
          ];
        store8 (v "dst" +: v "k") (i 0);
        ret (v "k");
      ];
    func "ltpd_auth_check" [ "c" ]
      [
        when_ (v "auth_enabled" ==: i 0) [ ret (i 1) ];
        decl "cred" (v "cache_base" +: i 12288);
        do_ "ltpd_auth_decode_basic" [ addr "http_rbuf"; v "cred" ];
        when_
          (call "strcmp" [ v "cred"; s "admin:hunter2" ] ==: i 0)
          [ ret (i 1) ];
        ret (call "http_reply" [ v "c"; s Httplib.st_403; s "auth required" ]);
      ];
    func "ltpd_rewrite_url" []
      [
        decl "n" (call "strlen" [ addr "http_path" ]);
        when_ (v "n" >: i 200) [ store8 (addr "http_path" +: i 200) (i 0) ];
        (* /old/... -> /new/... *)
        when_
          (call "strncmp" [ addr "http_path"; s "/old/"; i 5 ] ==: i 0)
          [
            store8 (addr "http_path" +: i 1) (i 110);
            store8 (addr "http_path" +: i 2) (i 101);
            store8 (addr "http_path" +: i 3) (i 119);
          ];
        ret0;
      ];
    (* mod_deflate: toy RLE "compression" into the cache *)
    func "ltpd_gzip_body" [ "src"; "len" ]
      [
        decl "out" (v "cache_base" +: i 16384);
        decl "k" (i 0);
        decl "o" (i 0);
        while_ (v "k" <: v "len")
          [
            decl "ch" (load8 (v "src" +: v "k"));
            decl "run" (i 1);
            while_
              ((v "k" +: v "run" <: v "len")
              &&: (load8 (v "src" +: v "k" +: v "run") ==: v "ch")
              &&: (v "run" <: i 255))
              [ set "run" (v "run" +: i 1) ];
            store8 (v "out" +: v "o") (v "run");
            store8 (v "out" +: v "o" +: i 1) (v "ch");
            set "o" (v "o" +: i 2);
            set "k" (v "k" +: v "run");
          ];
        ret (v "o");
      ];
    (* mod_expire: etag + cache-control computation *)
    func "ltpd_etag_compute" [ "p"; "len" ]
      [
        decl "h" (i 2166136261);
        decl "k" (i 0);
        while_ (v "k" <: v "len")
          [
            set "h" ((v "h" ^: load8 (v "p" +: v "k")) *: i 16777619);
            set "k" (v "k" +: i 1);
          ];
        ret (v "h" &: i 0x7fffffff);
      ];
    (* mod_status: statistics page *)
    func "ltpd_status_page" [ "c" ]
      [
        (* built in http_file: http_reply composes in http_obuf, so the
           body must live elsewhere *)
        do_ "strcpy" [ addr "http_file"; s "uptime=" ];
        decl "n" (call "strlen" [ addr "http_file" ]);
        set "n" (v "n" +: call "itoa" [ addr "http_file" +: v "n"; call "gettime" [] ]);
        do_ "strcpy" [ addr "http_file" +: v "n"; s " served=" ];
        set "n" (call "strlen" [ addr "http_file" ]);
        do_ "itoa" [ addr "http_file" +: v "n"; v "requests_served" ];
        ret (call "http_reply" [ v "c"; s Httplib.st_200; addr "http_file" ]);
      ];
    (* mod_proxy: upstream forwarding (no upstream configured -> 404) *)
    func "ltpd_proxy_pass" [ "c" ]
      [
        decl "up" (call "socket" []);
        when_ (v "up" <: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_404; s "bad gateway" ]) ];
        do_ "close" [ v "up" ];
        ret (call "http_reply" [ v "c"; s Httplib.st_404; s "no upstream" ]);
      ];
    (* Range: header parsing for partial GETs *)
    func "ltpd_parse_range" []
      [
        decl "p" (addr "http_rbuf");
        decl "k" (i 0);
        while_ (load8 (v "p" +: v "k") <>: i 0)
          [
            when_
              (call "strncmp" [ v "p" +: v "k"; s "Range: bytes="; i 13 ] ==: i 0)
              [ ret (call "atoi" [ v "p" +: v "k" +: i 13 ]) ];
            set "k" (v "k" +: i 1);
          ];
        ret (neg (i 1));
      ];
    (* directory listing for trailing-slash paths *)
    func "ltpd_dirlist" [ "c" ]
      [
        do_ "strcpy" [ addr "http_file"; s "<ul>" ];
        decl "k" (i 0);
        while_ (v "k" <: v "mime_count")
          [
            decl "n" (call "strlen" [ addr "http_file" ]);
            do_ "strcpy" [ addr "http_file" +: v "n"; s "<li>entry</li>" ];
            set "k" (v "k" +: i 1);
          ];
        decl "n2" (call "strlen" [ addr "http_file" ]);
        do_ "strcpy" [ addr "http_file" +: v "n2"; s "</ul>" ];
        ret (call "http_reply" [ v "c"; s Httplib.st_200; addr "http_file" ]);
      ];
    (* log rotation, triggered by a (never sent) admin request *)
    func "ltpd_log_rotate" []
      [
        decl "fd" (call "open" [ s "/var/log/ltpd.log" ]);
        when_ (v "fd" >=: i 0) [ do_ "close" [ v "fd" ] ];
        ret0;
      ];
    (* the request dispatcher: the big switch with the in-function 403
       error path at the exported label *)
    func "ltpd_dispatch" [ "c" ]
      [
        decl "m" (call "http_parse_method" []);
        do_ "http_parse_path" [];
        do_ "ltpd_rewrite_url" [];
        (* auth is disabled in the shipped config: the check returns
           immediately, its verification half stays cold *)
        when_ (call "ltpd_auth_check" [ v "c" ] ==: i 0) [ ret (i 0) ];
        switch (v "m")
          [
            ( Httplib.m_get,
              [
                if_
                  (call "strncmp" [ addr "http_path"; s "/cgi-bin/"; i 9 ] ==: i 0)
                  [ do_ "ltpd_handle_cgi" [ v "c" ] ]
                  [
                    if_
                      (call "strcmp" [ addr "http_path"; s "/server-status" ] ==: i 0)
                      [ do_ "ltpd_status_page" [ v "c" ] ]
                      [
                        if_
                          (call "strncmp" [ addr "http_path"; s "/proxy/"; i 7 ] ==: i 0)
                          [ do_ "ltpd_proxy_pass" [ v "c" ] ]
                          [
                            if_
                              (call "strcmp" [ addr "http_path"; s "/" ] ==: i 0)
                              [ do_ "ltpd_dirlist" [ v "c" ] ]
                              [
                                when_
                                  (call "strcmp" [ addr "http_path"; s "/admin/rotate" ] ==: i 0)
                                  [ do_ "ltpd_log_rotate" [] ];
                                do_ "ltpd_handle_get" [ v "c" ];
                              ];
                          ];
                      ];
                  ];
              ] );
            (Httplib.m_head, [ do_ "ltpd_handle_head" [ v "c" ] ]);
            (Httplib.m_post, [ do_ "ltpd_handle_post" [ v "c" ] ]);
            (Httplib.m_put, [ do_ "ltpd_dav_put" [ v "c" ] ]);
            (Httplib.m_delete, [ do_ "ltpd_dav_delete" [ v "c" ] ]);
            (Httplib.m_options, [ do_ "ltpd_handle_options" [ v "c" ] ]);
            (Httplib.m_propfind, [ do_ "ltpd_dav_propfind" [ v "c" ] ]);
          ]
          ~default:
            [
              label "ltpd_403";
              do_ "http_reply" [ v "c"; s Httplib.st_403; s "forbidden" ];
            ];
        ret0;
      ];
    (* the transition point, named after Lighttpd's server_main_loop() *)
    func "server_main_loop" [ "sfd" ]
      [
        forever
          [
            decl "c" (call "accept" [ v "sfd" ]);
            decl "n" (call "recv" [ v "c"; addr "http_rbuf"; i 1023 ]);
            when_ (v "n" >: i 0)
              [
                store8 (addr "http_rbuf" +: v "n") (i 0);
                do_ "ltpd_dispatch" [ v "c" ];
              ];
            do_ "close" [ v "c" ];
          ];
        ret0;
      ];
    func "main" []
      [
        do_ "ltpd_read_config" [];
        do_ "ltpd_parse_config" [];
        do_ "ltpd_build_mime_table" [];
        do_ "ltpd_init_cache" [];
        do_ "ltpd_init_uploads" [];
        decl "sfd" (call "ltpd_setup_socket" []);
        do_ "puts" [ s ready_banner ];
        do_ "server_main_loop" [ v "sfd" ];
        ret0;
      ];
  ]

let unit_ltpd = unit_ "ltpd" ~globals (Httplib.funcs @ init_funcs @ serve_funcs)

let config =
  "port=8080\nmaxconn=64\nkeepalive=1\nloglevel=2\ndocroot=/www\n"

let site_files =
  [
    ("/www/index.html", "<html><body>hello from ltpd</body></html>");
    ("/www/about.txt", "ltpd test site");
    ("/www/style.css", "body { color: black }");
  ]

(** Build the binary and install it plus its config + docroot into a
    machine filesystem. *)
let install (m : Machine.t) ~libc : unit =
  Vfs.add_self m.Machine.fs "ltpd" (Crt0.link_app ~libc unit_ltpd);
  Vfs.add m.Machine.fs "/etc/ltpd.conf" config;
  List.iter (fun (p, c) -> Vfs.add m.Machine.fs p c) site_files
