(** ngx — the Nginx stand-in: master/worker architecture (paper §4:
    "Nginx uses multiple processes, organized in a master-worker style",
    v1.18.0 with the WebDAV extension, configured with one worker as in
    the paper's §4.2 footnote).

    The master parses a larger configuration than ltpd (server blocks,
    locations, upstreams, module init chain) — which is why Figure 9
    shows Nginx with the larger init-code fraction (56% vs 46%). The
    worker's request handler dispatches WebDAV methods through
    [ngx_http_dav_handler], a direct transcription of the paper's
    Listing 1, with the default error path at the exported
    [ngx_declined] label. *)

open Dsl

let port = 8090
let ready_banner = "nginx: workers ready"

let globals =
  Httplib.globals
  @ [
      global_q "cfg_port" [ Int64.of_int port ];
      global_q "cfg_workers" [ 1L ];
      global_q "cfg_gzip" [ 0L ];
      global_q "cfg_sendfile" [ 0L ];
      global_q "cfg_timeout" [ 0L ];
      global_zero "cfg_docroot" 64;
      global_zero "cfg_buf" 2048;
      global_zero "locations" (16 * 72);
      global_q "location_count" [ 0L ];
      global_zero "upstreams" (8 * 32);
      global_q "upstream_count" [ 0L ];
      global_zero "mime_hash" (64 * 8);
      global_q "pool_base" [ 0L ];
      global_q "log_fd" [ 0L ];
      global_q "is_worker" [ 0L ];
      global_zero "dav_store" (8 * 168);
      global_q "modules_inited" [ 0L ];
    ]

let slot_name = 32
let slot_data = 128
let slot_size = slot_name + slot_data + 8

(* ---------- master initialization ---------- *)

let init_funcs =
  [
    func "ngx_read_config" []
      [
        decl "fd" (call "open" [ s "/etc/nginx.conf" ]);
        when_ (v "fd" <: i 0) [ do_ "puts" [ s "nginx: no config" ]; ret (neg (i 1)) ];
        decl "n" (call "read" [ v "fd"; addr "cfg_buf"; i 2047 ]);
        store8 (addr "cfg_buf" +: v "n") (i 0);
        do_ "close" [ v "fd" ];
        ret (v "n");
      ];
    func "ngx_conf_int" [ "p"; "key"; "klen" ]
      [
        when_ (call "strncmp" [ v "p"; v "key"; v "klen" ] ==: i 0)
          [ ret (call "atoi" [ v "p" +: v "klen" ]) ];
        ret (neg (i 1));
      ];
    func "ngx_parse_config" []
      [
        decl "p" (addr "cfg_buf");
        decl "x" (i 0);
        while_ (load8 (v "p") <>: i 0)
          [
            set "x" (call "ngx_conf_int" [ v "p"; s "listen "; i 7 ]);
            when_ (v "x" >=: i 0) [ set "cfg_port" (v "x") ];
            set "x" (call "ngx_conf_int" [ v "p"; s "worker_processes "; i 17 ]);
            when_ (v "x" >=: i 0) [ set "cfg_workers" (v "x") ];
            set "x" (call "ngx_conf_int" [ v "p"; s "gzip "; i 5 ]);
            when_ (v "x" >=: i 0) [ set "cfg_gzip" (v "x") ];
            set "x" (call "ngx_conf_int" [ v "p"; s "sendfile "; i 9 ]);
            when_ (v "x" >=: i 0) [ set "cfg_sendfile" (v "x") ];
            set "x" (call "ngx_conf_int" [ v "p"; s "keepalive_timeout "; i 18 ]);
            when_ (v "x" >=: i 0) [ set "cfg_timeout" (v "x") ];
            when_
              (call "strncmp" [ v "p"; s "root "; i 5 ] ==: i 0)
              [
                decl "k" (i 0);
                decl "q" (v "p" +: i 5);
                while_
                  ((load8 (v "q") <>: i 10)
                  &&: (load8 (v "q") <>: i 59 (* ';' *))
                  &&: (load8 (v "q") <>: i 0) &&: (v "k" <: i 63))
                  [
                    store8 (addr "cfg_docroot" +: v "k") (load8 (v "q"));
                    set "k" (v "k" +: i 1);
                    set "q" (v "q" +: i 1);
                  ];
                store8 (addr "cfg_docroot" +: v "k") (i 0);
              ];
            when_
              (call "strncmp" [ v "p"; s "location "; i 9 ] ==: i 0)
              [ do_ "ngx_add_location" [ v "p" +: i 9 ] ];
            when_
              (call "strncmp" [ v "p"; s "upstream "; i 9 ] ==: i 0)
              [ do_ "ngx_add_upstream" [ v "p" +: i 9 ] ];
            while_ ((load8 (v "p") <>: i 10) &&: (load8 (v "p") <>: i 0))
              [ set "p" (v "p" +: i 1) ];
            when_ (load8 (v "p") ==: i 10) [ set "p" (v "p" +: i 1) ];
          ];
        ret0;
      ];
    func "ngx_add_location" [ "src" ]
      [
        decl "slot" (addr "locations" +: (v "location_count" *: i 72));
        decl "k" (i 0);
        while_
          ((load8 (v "src" +: v "k") <>: i 32)
          &&: (load8 (v "src" +: v "k") <>: i 10)
          &&: (load8 (v "src" +: v "k") <>: i 0) &&: (v "k" <: i 63))
          [
            store8 (v "slot" +: v "k") (load8 (v "src" +: v "k"));
            set "k" (v "k" +: i 1);
          ];
        store8 (v "slot" +: v "k") (i 0);
        store64 (v "slot" +: i 64) (v "k");
        set "location_count" (v "location_count" +: i 1);
        ret0;
      ];
    func "ngx_add_upstream" [ "src" ]
      [
        decl "slot" (addr "upstreams" +: (v "upstream_count" *: i 32));
        decl "k" (i 0);
        while_
          ((load8 (v "src" +: v "k") <>: i 10)
          &&: (load8 (v "src" +: v "k") <>: i 0) &&: (v "k" <: i 31))
          [
            store8 (v "slot" +: v "k") (load8 (v "src" +: v "k"));
            set "k" (v "k" +: i 1);
          ];
        set "upstream_count" (v "upstream_count" +: i 1);
        ret0;
      ];
    (* a toy string hash used to seed the mime hash table *)
    func "ngx_hash" [ "p" ]
      [
        decl "h" (i 5381);
        decl "c" (load8 (v "p"));
        while_ (v "c" <>: i 0)
          [
            set "h" (((v "h" <<: i 5) +: v "h") ^: v "c");
            set "p" (v "p" +: i 1);
            set "c" (load8 (v "p"));
          ];
        ret (v "h" &: i 63);
      ];
    func "ngx_init_mime_hash" []
      [
        store64 (addr "mime_hash" +: (call "ngx_hash" [ s "html" ] *: i 8)) (i 1);
        store64 (addr "mime_hash" +: (call "ngx_hash" [ s "txt" ] *: i 8)) (i 2);
        store64 (addr "mime_hash" +: (call "ngx_hash" [ s "css" ] *: i 8)) (i 3);
        store64 (addr "mime_hash" +: (call "ngx_hash" [ s "js" ] *: i 8)) (i 4);
        store64 (addr "mime_hash" +: (call "ngx_hash" [ s "png" ] *: i 8)) (i 5);
        store64 (addr "mime_hash" +: (call "ngx_hash" [ s "svg" ] *: i 8)) (i 6);
        ret0;
      ];
    func "ngx_init_pool" []
      [
        set "pool_base" (call "mmap" [ i 0; i 131072; i 6 ]);
        decl "k" (i 0);
        while_ (v "k" <: i 16)
          [
            do_ "memset" [ v "pool_base" +: (v "k" *: i 4096); i 0; i 64 ];
            set "k" (v "k" +: i 1);
          ];
        ret (v "pool_base");
      ];
    (* the module init chain: each module "registers" itself *)
    func "ngx_module_core_init" []
      [ set "modules_inited" (v "modules_inited" +: i 1); ret0 ];
    func "ngx_module_http_init" []
      [
        do_ "ngx_init_mime_hash" [];
        set "modules_inited" (v "modules_inited" +: i 1);
        ret0;
      ];
    func "ngx_module_dav_init" []
      [
        do_ "memset" [ addr "dav_store"; i 0; i (8 * 168) ];
        set "modules_inited" (v "modules_inited" +: i 1);
        ret0;
      ];
    func "ngx_module_log_init" []
      [
        set "log_fd" (i 2);
        set "modules_inited" (v "modules_inited" +: i 1);
        ret0;
      ];
    func "ngx_module_rewrite_init" []
      [ set "modules_inited" (v "modules_inited" +: i 1); ret0 ];
    func "ngx_init_modules" []
      [
        do_ "ngx_module_core_init" [];
        do_ "ngx_module_http_init" [];
        do_ "ngx_module_dav_init" [];
        do_ "ngx_module_log_init" [];
        do_ "ngx_module_rewrite_init" [];
        ret (v "modules_inited");
      ];
    func "ngx_setup_listener" []
      [
        decl "sfd" (call "socket" []);
        do_ "bind" [ v "sfd"; v "cfg_port" ];
        do_ "listen" [ v "sfd" ];
        ret (v "sfd");
      ];
  ]

(* ---------- worker serving code ---------- *)

let serve_funcs =
  [
    func "ngx_open_docfile" []
      [
        do_ "strcpy" [ addr "http_file"; addr "cfg_docroot" ];
        decl "n" (call "strlen" [ addr "http_file" ]);
        do_ "strcpy" [ addr "http_file" +: v "n"; addr "http_path" ];
        ret (call "open" [ addr "http_file" ]);
      ];
    func "ngx_find_dav" []
      [
        decl "k" (i 0);
        while_ (v "k" <: i 8)
          [
            decl "slot" (addr "dav_store" +: (v "k" *: i slot_size));
            when_
              ((load64 (v "slot" +: i (slot_name + slot_data)) ==: i 1)
              &&: (call "strcmp" [ v "slot"; addr "http_path" ] ==: i 0))
              [ ret (v "slot") ];
            set "k" (v "k" +: i 1);
          ];
        ret (i 0);
      ];
    func "ngx_http_get" [ "c" ]
      [
        decl "slot" (call "ngx_find_dav" []);
        when_ (v "slot" <>: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_200; v "slot" +: i slot_name ]) ];
        decl "fd" (call "ngx_open_docfile" []);
        when_ (v "fd" <: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_404; s "404" ]) ];
        decl "n" (call "read" [ v "fd"; addr "http_file"; i 255 ]);
        store8 (addr "http_file" +: v "n") (i 0);
        do_ "close" [ v "fd" ];
        ret (call "http_reply" [ v "c"; s Httplib.st_200; addr "http_file" ]);
      ];
    func "ngx_http_head" [ "c" ]
      [
        decl "fd" (call "ngx_open_docfile" []);
        when_ (v "fd" <: i 0) [ ret (call "http_reply" [ v "c"; s Httplib.st_404; i 0 ]) ];
        do_ "close" [ v "fd" ];
        ret (call "http_reply" [ v "c"; s Httplib.st_200; i 0 ]);
      ];
    func "ngx_http_post" [ "c" ]
      [
        decl "body" (call "http_body" []);
        when_ (v "body" ==: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_200; s "empty" ]) ];
        ret (call "http_reply" [ v "c"; s Httplib.st_200; v "body" ]);
      ];
    func "ngx_dav_put" [ "c" ]
      [
        label "ngx_feat_put";
        decl "body" (call "http_body" []);
        when_ (v "body" ==: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_403; s "no body" ]) ];
        decl "slot" (call "ngx_find_dav" []);
        when_ (v "slot" ==: i 0)
          [
            decl "k" (i 0);
            while_ ((v "k" <: i 8) &&: (v "slot" ==: i 0))
              [
                decl "cand" (addr "dav_store" +: (v "k" *: i slot_size));
                when_ (load64 (v "cand" +: i (slot_name + slot_data)) ==: i 0)
                  [ set "slot" (v "cand") ];
                set "k" (v "k" +: i 1);
              ];
          ];
        when_ (v "slot" ==: i 0)
          [ ret (call "http_reply" [ v "c"; s Httplib.st_403; s "full" ]) ];
        do_ "strcpy" [ v "slot"; addr "http_path" ];
        decl "k2" (i 0);
        while_ ((load8 (v "body" +: v "k2") <>: i 0) &&: (v "k2" <: i (slot_data - 1)))
          [
            store8 (v "slot" +: i slot_name +: v "k2") (load8 (v "body" +: v "k2"));
            set "k2" (v "k2" +: i 1);
          ];
        store8 (v "slot" +: i slot_name +: v "k2") (i 0);
        store64 (v "slot" +: i (slot_name + slot_data)) (i 1);
        ret (call "http_reply" [ v "c"; s Httplib.st_201; s "created" ]);
      ];
    func "ngx_dav_delete" [ "c" ]
      [
        label "ngx_feat_delete";
        decl "slot" (call "ngx_find_dav" []);
        when_ (v "slot" ==: i 0) [ ret (call "http_reply" [ v "c"; s Httplib.st_404; i 0 ]) ];
        store64 (v "slot" +: i (slot_name + slot_data)) (i 0);
        ret (call "http_reply" [ v "c"; s Httplib.st_204; i 0 ]);
      ];
    (* Listing 1 from the paper: the DAV method dispatcher whose default
       returns NGX_DECLINED — here, the exported 403 error path *)
    func "ngx_http_dav_handler" [ "c"; "m" ]
      [
        switch (v "m")
          [
            (Httplib.m_put, [ do_ "ngx_dav_put" [ v "c" ] ]);
            (Httplib.m_delete, [ do_ "ngx_dav_delete" [ v "c" ] ]);
            ( Httplib.m_mkcol,
              [ do_ "http_reply" [ v "c"; s Httplib.st_201; s "collection" ] ] );
            ( Httplib.m_propfind,
              [ do_ "http_reply" [ v "c"; s Httplib.st_207; s "<multistatus/>" ] ] );
          ]
          ~default:
            [
              label "ngx_declined";
              do_ "http_reply" [ v "c"; s Httplib.st_403; s "forbidden" ];
            ];
        ret0;
      ];
    func "ngx_http_handler" [ "c" ]
      [
        (* TLS ClientHello on the plain port: never happens here *)
        when_ (load8 (addr "http_rbuf") ==: i 0x16)
          [ ret (call "ngx_ssl_handshake" [ v "c" ]) ];
        when_ (call "ngx_rate_limit_check" [ v "c" ] ==: i 0) [ ret (i 0) ];
        decl "m" (call "http_parse_method" []);
        do_ "http_parse_path" [];
        do_ "ngx_access_log" [ i 200 ];
        switch (v "m")
          [
            ( Httplib.m_get,
              [
                if_
                  (call "strncmp" [ addr "http_path"; s "/api/"; i 5 ] ==: i 0)
                  [ do_ "ngx_proxy_pass" [ v "c" ] ]
                  [
                    if_
                      (call "strncmp" [ addr "http_path"; s "/fcgi/"; i 6 ] ==: i 0)
                      [ do_ "ngx_fastcgi_pass" [ v "c" ] ]
                      [ do_ "ngx_http_get" [ v "c" ] ];
                  ];
              ] );
            (Httplib.m_head, [ do_ "ngx_http_head" [ v "c" ] ]);
            (Httplib.m_post, [ do_ "ngx_http_post" [ v "c" ] ]);
            (Httplib.m_put, [ do_ "ngx_http_dav_handler" [ v "c"; v "m" ] ]);
            (Httplib.m_delete, [ do_ "ngx_http_dav_handler" [ v "c"; v "m" ] ]);
            (Httplib.m_mkcol, [ do_ "ngx_http_dav_handler" [ v "c"; v "m" ] ]);
            (Httplib.m_propfind, [ do_ "ngx_http_dav_handler" [ v "c"; v "m" ] ]);
            ( Httplib.m_options,
              [ do_ "http_reply" [ v "c"; s Httplib.st_200; s "Allow: *" ] ] );
          ]
          ~default:
            [
              label "ngx_http_403";
              do_ "http_reply" [ v "c"; s Httplib.st_403; s "forbidden" ];
            ];
        ret0;
      ];
    (* -------- reachable-but-cold modules (ngx_http_ssl_module,
       ngx_http_gzip_module, fastcgi, limit_req, upstream) — the unused
       majority of a stock nginx build -------- *)
    func "ngx_ssl_handshake" [ "c" ]
      [
        (* a toy handshake transcript: echo a fixed ServerHello *)
        decl "k" (i 0);
        decl "h" (i 0x5A);
        while_ (v "k" <: i 16)
          [
            set "h" (((v "h" *: i 31) +: v "k") &: i 255);
            store8 (addr "http_obuf" +: v "k") (v "h");
            set "k" (v "k" +: i 1);
          ];
        do_ "send" [ v "c"; addr "http_obuf"; i 16 ];
        ret (neg (i 1));
      ];
    func "ngx_rate_limit_check" [ "c" ]
      [
        expr (v "c");
        (* limit_req is not configured: the hot path is this early return *)
        when_ (v "cfg_timeout" <: i 100000) [ ret (i 1) ];
        decl "bucket" (load64 (v "pool_base" +: i 64));
        when_ (v "bucket" >: i 100)
          [
            do_ "http_reply" [ v "c"; s "HTTP/1.0 429 Too Many Requests\r\n"; i 0 ];
            ret (i 0);
          ];
        store64 (v "pool_base" +: i 64) (v "bucket" +: i 1);
        ret (i 1);
      ];
    func "ngx_gzip_encode" [ "src"; "len" ]
      [
        decl "out" (v "pool_base" +: i 8192);
        decl "k" (i 0);
        decl "o" (i 0);
        while_ (v "k" <: v "len")
          [
            decl "ch" (load8 (v "src" +: v "k"));
            decl "run" (i 1);
            while_
              ((v "k" +: v "run" <: v "len")
              &&: (load8 (v "src" +: v "k" +: v "run") ==: v "ch"))
              [ set "run" (v "run" +: i 1) ];
            store8 (v "out" +: v "o") (v "run" &: i 255);
            store8 (v "out" +: v "o" +: i 1) (v "ch");
            set "o" (v "o" +: i 2);
            set "k" (v "k" +: v "run");
          ];
        ret (v "o");
      ];
    func "ngx_upstream_pick" []
      [
        when_ (v "upstream_count" ==: i 0) [ ret (i 0) ];
        decl "k" (load64 (v "pool_base" +: i 128) %: v "upstream_count");
        store64 (v "pool_base" +: i 128) (v "k" +: i 1);
        ret (addr "upstreams" +: (v "k" *: i 32));
      ];
    func "ngx_proxy_pass" [ "c" ]
      [
        decl "up" (call "ngx_upstream_pick" []);
        when_ (v "up" ==: i 0)
          [ ret (call "http_reply" [ v "c"; s "HTTP/1.0 502 Bad Gateway\r\n"; i 0 ]) ];
        (* no real upstream to dial in this deployment *)
        ret (call "http_reply" [ v "c"; s "HTTP/1.0 504 Gateway Timeout\r\n"; i 0 ]);
      ];
    func "ngx_fastcgi_pass" [ "c" ]
      [
        (* build a FCGI_BEGIN_REQUEST-shaped record *)
        store8 (addr "http_obuf") (i 1);
        store8 (addr "http_obuf" +: i 1) (i 1);
        store8 (addr "http_obuf" +: i 2) (i 0);
        store8 (addr "http_obuf" +: i 3) (i 1);
        ret (call "http_reply" [ v "c"; s "HTTP/1.0 502 Bad Gateway\r\n"; s "no fastcgi" ]);
      ];
    func "ngx_access_log" [ "status" ]
      [
        (* access_log off in this deployment: early return is the hot path *)
        when_ (v "log_fd" <: i 100) [ ret (i 0) ];
        do_ "strcpy" [ addr "http_file"; s "- - [t] \"" ];
        decl "n" (call "strlen" [ addr "http_file" ]);
        set "n" (v "n" +: call "itoa" [ addr "http_file" +: v "n"; v "status" ]);
        do_ "write" [ v "log_fd"; addr "http_file"; v "n" ];
        ret (v "n");
      ];
    (* worker-side initialization, then the event loop — the paper's
       transition point for Nginx is ngx_worker_process_cycle() *)
    func "ngx_worker_init" []
      [
        set "is_worker" (i 1);
        do_ "memset" [ addr "http_rbuf"; i 0; i 1024 ];
        ret0;
      ];
    func "ngx_worker_process_cycle" [ "sfd" ]
      [
        do_ "ngx_worker_init" [];
        forever
          [
            decl "c" (call "accept" [ v "sfd" ]);
            decl "n" (call "recv" [ v "c"; addr "http_rbuf"; i 1023 ]);
            when_ (v "n" >: i 0)
              [
                store8 (addr "http_rbuf" +: v "n") (i 0);
                do_ "ngx_http_handler" [ v "c" ];
              ];
            do_ "close" [ v "c" ];
          ];
        ret0;
      ];
    (* master monitor loop: wakes up periodically, like the real master *)
    func "ngx_master_cycle" []
      [
        forever [ do_ "nanosleep" [ i 1000000 ] ];
        ret0;
      ];
    func "main" []
      [
        do_ "ngx_read_config" [];
        do_ "ngx_parse_config" [];
        do_ "ngx_init_modules" [];
        do_ "ngx_init_pool" [];
        decl "sfd" (call "ngx_setup_listener" []);
        (* fork the worker (one, per the paper's configuration) *)
        decl "pid" (call "fork" []);
        when_ (v "pid" ==: i 0) [ do_ "ngx_worker_process_cycle" [ v "sfd" ]; ret0 ];
        do_ "puts" [ s ready_banner ];
        do_ "ngx_master_cycle" [];
        ret0;
      ];
  ]

let unit_ngx = unit_ "ngx" ~globals (Httplib.funcs @ init_funcs @ serve_funcs)

let config =
  "listen 8090\nworker_processes 1\ngzip 1\nsendfile 1\nkeepalive_timeout 65\n\
   root /www\nlocation /\nlocation /static\nlocation /api\nupstream backend1\n\
   upstream backend2\n"

let install (m : Machine.t) ~libc : unit =
  Vfs.add_self m.Machine.fs "ngx" (Crt0.link_app ~libc unit_ngx);
  Vfs.add m.Machine.fs "/etc/nginx.conf" config;
  List.iter (fun (p, c) -> Vfs.add m.Machine.fs p c) Ltpd.site_files
