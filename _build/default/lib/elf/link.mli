(** Linker: {!Asm.obj} objects to SELF executables and shared objects.
    Generates PLT stubs + GOT slots for extern calls, resolves
    intra-module pc-relative relocations, and turns [Abs64] references
    into static patches (executables) or dynamic relocations (shared
    objects). *)

exception Link_error of string

val default_exec_base : int64
val plt_stub_size : int
val plt_entry_align : int

val extern_calls : Asm.obj -> string list
(** Symbols referenced but not defined — resolved against [libs]. *)

val link_exec :
  ?base:int64 -> name:string -> entry:string -> libs:Self.t list -> Asm.obj -> Self.t
(** Link an executable at a fixed [base]; [entry] names the start symbol.
    Raises {!Link_error} on undefined symbols or a missing entry. *)

val link_shared : name:string -> ?libs:Self.t list -> Asm.obj -> Self.t
(** Link a position-independent shared object ([Self.Dyn], base 0).
    Local absolute references become [`Local] dynamic relocations — the
    "global data relocations" DynaCut re-applies at injection. *)
