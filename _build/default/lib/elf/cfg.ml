(** Static basic-block recovery over SELF executable sections.

    The paper obtains "the number of total basic blocks of each binary ...
    using Angr" (§4.2, Figure 9). This module is our Angr stand-in: a
    recursive-descent/linear-sweep hybrid that decodes [.text] and [.plt],
    collects branch targets and fall-through edges, and splits blocks at
    every join point. *)

type block = {
  bb_off : int;  (** module-relative start *)
  bb_size : int;
  bb_insns : int;
  bb_term : [ `Jmp | `Jcc | `Call | `Ret | `Ind | `Syscall | `Trap | `Fall ];
}

type t = {
  cfg_module : string;
  cfg_blocks : block list;  (** sorted by offset *)
  cfg_edges : (int * int) list;  (** intra-module (from_block_off, to_block_off) *)
}

let term_of_insn (i : Insn.t) =
  match i with
  | Insn.Jmp _ -> `Jmp
  | Insn.Jcc _ -> `Jcc
  | Insn.Call _ -> `Call
  | Insn.Ret -> `Ret
  | Insn.Call_r _ | Insn.Jmp_r _ -> `Ind
  | Insn.Syscall -> `Syscall
  | Insn.Int3 | Insn.Hlt -> `Trap
  | _ -> `Fall

(** Decode one executable section into basic blocks. [extra_leaders] are
    module-relative offsets known to be entry points from outside the
    section's own branches — function symbols and PLT stubs. *)
let blocks_of_section ?(extra_leaders = []) (sec : Self.section) :
    block list * (int * int) list =
  let data = sec.sec_data in
  let size = Bytes.length data in
  (* pass 1: linear decode, note instruction starts, leaders and edges *)
  let insn_at = Hashtbl.create 1024 in
  (* off -> (insn, len) *)
  let pos = ref 0 in
  (try
     while !pos < size do
       let insn, len = Decode.decode_at data !pos in
       Hashtbl.replace insn_at !pos (insn, len);
       pos := !pos + len
     done
   with Decode.Invalid_opcode _ | Decode.Truncated_insn -> ());
  let leaders = Hashtbl.create 256 in
  Hashtbl.replace leaders 0 ();
  List.iter
    (fun off ->
      let rel = off - sec.sec_off in
      if rel >= 0 && rel < size then Hashtbl.replace leaders rel ())
    extra_leaders;
  let edges = ref [] in
  Hashtbl.iter
    (fun off (insn, len) ->
      let next = off + len in
      let mark o = if o >= 0 && o < size then Hashtbl.replace leaders o () in
      match insn with
      | Insn.Jmp rel ->
          mark (next + rel);
          edges := (off, next + rel) :: !edges;
          mark next
      | Insn.Jcc (_, rel) ->
          mark (next + rel);
          edges := (off, next + rel) :: (off, next) :: !edges;
          mark next
      | Insn.Call rel ->
          mark (next + rel);
          edges := (off, next + rel) :: (off, next) :: !edges;
          mark next
      | Insn.Call_r _ | Insn.Jmp_r _ | Insn.Ret | Insn.Syscall | Insn.Int3 | Insn.Hlt ->
          mark next
      | _ -> ())
    insn_at;
  (* pass 2: walk instructions in order, cutting at leaders and terminators *)
  let blocks = ref [] in
  let cur_start = ref None in
  let cur_insns = ref 0 in
  let flush_at stop term =
    match !cur_start with
    | None -> ()
    | Some st ->
        blocks := { bb_off = st; bb_size = stop - st; bb_insns = !cur_insns; bb_term = term } :: !blocks;
        cur_start := None;
        cur_insns := 0
  in
  let pos = ref 0 in
  while !pos < size do
    match Hashtbl.find_opt insn_at !pos with
    | None ->
        flush_at !pos `Trap;
        incr pos (* undecodable (data padding) — skip a byte *)
    | Some (insn, len) ->
        if !cur_start = None then cur_start := Some !pos
        else if Hashtbl.mem leaders !pos then begin
          flush_at !pos `Fall;
          cur_start := Some !pos
        end;
        incr cur_insns;
        let next = !pos + len in
        if Insn.is_block_end insn then flush_at next (term_of_insn insn);
        pos := next
  done;
  flush_at !pos `Fall;
  let base = sec.sec_off in
  let blocks =
    List.rev_map
      (fun b -> { b with bb_off = b.bb_off + base })
      !blocks
    |> List.sort (fun a b -> compare a.bb_off b.bb_off)
  in
  let edges = List.rev_map (fun (f, t) -> (f + base, t + base)) !edges in
  (blocks, edges)

(** Recover all blocks of a module's executable sections. *)
let of_self (self : Self.t) : t =
  let exec_secs =
    List.filter (fun (s : Self.section) -> s.sec_prot.Self.p_x) self.sections
  in
  let extra_leaders =
    List.map (fun (s : Self.sym) -> s.Self.sym_off) self.symbols
    @ List.map snd self.plt
  in
  let all = List.map (blocks_of_section ~extra_leaders) exec_secs in
  {
    cfg_module = self.name;
    cfg_blocks =
      List.concat_map fst all |> List.sort (fun a b -> compare a.bb_off b.bb_off);
    cfg_edges = List.concat_map snd all;
  }

let block_count t = List.length t.cfg_blocks

(** Filter out empty padding blocks (all-nop alignment runs). *)
let real_blocks t = List.filter (fun b -> b.bb_size > 0) t.cfg_blocks

let block_at t off = List.find_opt (fun b -> b.bb_off = off) t.cfg_blocks

let block_containing t off =
  List.find_opt (fun b -> off >= b.bb_off && off < b.bb_off + b.bb_size) t.cfg_blocks
