(** Linker: {!Asm.obj} objects to SELF executables and shared objects.

    - Section layout: each section of the object is placed at the next
      page-aligned module-relative offset in object order, so permissions
      can differ per VMA. Intra-module [Rel32] relocations are resolved
      here (rip-relative distances inside a module are position
      independent, which is what makes [Dyn] objects injectable anywhere).
    - Calls to symbols not defined in the object are routed through
      generated [.plt] stubs with one [.got] slot each; the GOT slot gets a
      dynamic relocation the loader (or DynaCut's injector) patches with
      the absolute address of the symbol in a needed library — eager
      binding, as the paper's GOT-patching description assumes.
    - [Abs64] relocations against local symbols are resolved statically in
      executables (fixed base) and become [`Local] dynamic relocations in
      shared objects — the "global data relocations" DynaCut re-applies
      when injecting its handler library (§3.3). *)

exception Link_error of string

let default_exec_base = 0x400000L

(* One PLT stub: lea r11, [rip+disp-to-got]; mov r11,[r11]; jmp r11 *)
let plt_stub_size = 6 + 7 + 2
let plt_entry_align = 16

type layout = { sec_offsets : (string * int) list; total : int }

let lay_out_sections (secs : (string * bytes) list) : layout =
  let off = ref 0 in
  let placed =
    List.map
      (fun (name, data) ->
        let o = !off in
        off := Self.page_align (o + max 1 (Bytes.length data));
        (name, o))
      secs
  in
  { sec_offsets = placed; total = !off }

let section_prot = function
  | ".text" | ".plt" -> Self.prot_rx
  | ".rodata" -> Self.prot_ro
  | _ -> Self.prot_rw

(** Names of functions an object calls but does not define. *)
let extern_calls (obj : Asm.obj) =
  let defined = List.map (fun (s : Asm.symbol) -> s.s_name) obj.o_symbols in
  obj.o_relocs
  |> List.filter_map (fun (r : Asm.reloc) ->
         if List.mem r.r_symbol defined then None else Some r.r_symbol)
  |> List.sort_uniq compare

let sym_of_asm ~(lookup_off : string -> int -> int) (s : Asm.symbol) : Self.sym =
  {
    Self.sym_name = s.s_name;
    sym_off = lookup_off s.s_section s.s_offset;
    sym_size = 0;
    sym_kind = (match s.s_kind with `Func -> Self.Func | `Object -> Self.Object);
    sym_global = s.s_global;
  }

(** Common linking core. [libs] supplies resolvable extern symbols; extern
    *calls* become PLT entries; any other extern reference is an error. *)
let link ~(kind : Self.kind) ~name ~entry_symbol ?(base = default_exec_base)
    ?(libs : Self.t list = []) (obj : Asm.obj) : Self.t =
  let externs = extern_calls obj in
  let lib_of_sym =
    List.filter_map
      (fun e ->
        match
          List.find_opt
            (fun (l : Self.t) ->
              match Self.find_symbol l e with
              | Some s -> s.sym_global
              | None -> false)
            libs
        with
        | Some l -> Some (e, l.Self.name)
        | None -> None)
      externs
  in
  (match List.filter (fun e -> not (List.mem_assoc e lib_of_sym)) externs with
  | [] -> ()
  | missing ->
      raise
        (Link_error
           (Printf.sprintf "%s: undefined symbols: %s" name (String.concat ", " missing))));
  (* Build .plt and .got sections if needed *)
  let plt_needed = externs <> [] in
  let plt_map = List.mapi (fun i e -> (e, i * plt_entry_align)) externs in
  let got_map = List.mapi (fun i e -> (e, i * 8)) externs in
  let sections_raw =
    obj.o_sections
    @ (if plt_needed then
         [ (* nop-fill so linear disassembly over stub padding stays valid *)
           (".plt", Bytes.make (List.length externs * plt_entry_align) '\x90');
           (".got", Bytes.create (List.length externs * 8)) ]
       else [])
  in
  let layout = lay_out_sections sections_raw in
  let sec_off s =
    match List.assoc_opt s layout.sec_offsets with
    | Some o -> o
    | None -> raise (Link_error (Printf.sprintf "%s: unknown section %s" name s))
  in
  (* mutable copies of section data for patching *)
  let data =
    List.map (fun (n, d) -> (n, Bytes.copy d)) sections_raw
  in
  let sec_data s = List.assoc s data in
  let write_i32 sec off v =
    Bytes.set_int32_le (sec_data sec) off (Int32.of_int v)
  in
  let write_i64 sec off (v : int64) = Bytes.set_int64_le (sec_data sec) off v in
  (* fill PLT stubs *)
  if plt_needed then begin
    let plt_base = sec_off ".plt" and got_base = sec_off ".got" in
    List.iter
      (fun (e, stub_off) ->
        let got_slot = got_base + List.assoc e got_map in
        let insns_at = plt_base + stub_off in
        let stub =
          Encode.program
            [
              Insn.Lea (Reg.R11, got_slot - (insns_at + 6));
              Insn.Load (Reg.R11, Reg.R11, 0);
              Insn.Jmp_r Reg.R11;
            ]
        in
        Bytes.blit stub 0 (sec_data ".plt") stub_off (Bytes.length stub))
      plt_map
  end;
  (* symbol resolution: module-relative offset of any local symbol or PLT stub *)
  let local_syms =
    List.map
      (fun (s : Asm.symbol) -> (s.s_name, sec_off s.s_section + s.s_offset))
      obj.o_symbols
  in
  let resolve sym =
    match List.assoc_opt sym local_syms with
    | Some off -> Some off
    | None -> (
        match List.assoc_opt sym plt_map with
        | Some stub_off -> Some (sec_off ".plt" + stub_off)
        | None -> None)
  in
  (* apply relocations *)
  let dynrelocs = ref [] in
  List.iter
    (fun (r : Asm.reloc) ->
      let field_mod_off = sec_off r.r_section + r.r_offset in
      match (r.r_kind, resolve r.r_symbol) with
      | Asm.Rel32 next, Some target_off ->
          let next_mod_off = sec_off r.r_section + next in
          write_i32 r.r_section r.r_offset (target_off + r.r_addend - next_mod_off)
      | Asm.Rel32 _, None ->
          raise
            (Link_error
               (Printf.sprintf "%s: pc-relative reference to extern data %s" name r.r_symbol))
      | Asm.Abs64, Some target_off ->
          (match kind with
          | Self.Exec ->
              write_i64 r.r_section r.r_offset
                (Int64.add base (Int64.of_int (target_off + r.r_addend)))
          | Self.Dyn ->
              dynrelocs :=
                { Self.dr_off = field_mod_off; dr_target = `Local r.r_symbol; dr_addend = r.r_addend }
                :: !dynrelocs)
      | Asm.Abs64, None ->
          dynrelocs :=
            { Self.dr_off = field_mod_off; dr_target = `Extern r.r_symbol; dr_addend = r.r_addend }
            :: !dynrelocs)
    obj.o_relocs;
  (* GOT slots for extern calls *)
  List.iter
    (fun (e, slot) ->
      dynrelocs :=
        { Self.dr_off = sec_off ".got" + slot; dr_target = `Extern e; dr_addend = 0 }
        :: !dynrelocs)
    got_map;
  let symbols =
    List.map
      (fun (s : Asm.symbol) ->
        sym_of_asm ~lookup_off:(fun sec off -> sec_off sec + off) s)
      obj.o_symbols
  in
  let entry =
    match entry_symbol with
    | None -> 0
    | Some e -> (
        match resolve e with
        | Some off -> off
        | None -> raise (Link_error (Printf.sprintf "%s: entry symbol %s undefined" name e)))
  in
  let needed =
    lib_of_sym |> List.map snd |> List.sort_uniq compare
  in
  {
    Self.name;
    kind;
    entry;
    base = (match kind with Self.Exec -> base | Self.Dyn -> 0L);
    sections =
      List.map
        (fun (n, d) ->
          { Self.sec_name = n; sec_off = sec_off n; sec_data = d; sec_prot = section_prot n })
        data;
    symbols;
    dynrelocs = List.rev !dynrelocs;
    needed;
    plt = List.map (fun (e, o) -> (e, sec_off ".plt" + o)) plt_map;
    got = List.map (fun (e, o) -> (e, sec_off ".got" + o)) got_map;
  }

let link_exec ?(base = default_exec_base) ~name ~entry ~libs obj : Self.t =
  link ~kind:Self.Exec ~name ~entry_symbol:(Some entry) ~base ~libs obj

let link_shared ~name ?(libs = []) obj : Self.t =
  (* shared objects may reference libc functions through their GOT *)
  link ~kind:Self.Dyn ~name ~entry_symbol:None ~libs obj
