lib/elf/cfg.mli: Self
