lib/elf/cfg.ml: Bytes Decode Hashtbl Insn List Self
