lib/elf/self.ml: Bytes Bytesx Format List Printf String
