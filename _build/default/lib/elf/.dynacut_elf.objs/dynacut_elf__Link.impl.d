lib/elf/link.ml: Asm Bytes Encode Insn Int32 Int64 List Printf Reg Self String
