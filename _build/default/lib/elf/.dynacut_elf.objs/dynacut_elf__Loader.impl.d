lib/elf/loader.ml: Bytes Int64 List Printf Self
