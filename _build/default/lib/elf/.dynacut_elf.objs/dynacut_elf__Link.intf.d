lib/elf/link.mli: Asm Self
