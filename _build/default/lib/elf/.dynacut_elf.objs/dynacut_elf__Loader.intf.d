lib/elf/loader.mli: Self
