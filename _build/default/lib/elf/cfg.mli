(** Static basic-block recovery over SELF executables — the stand-in for
    the paper's use of Angr to count total blocks (§4.2, Figure 9), and
    the canonical block universe coverage is normalized onto. *)

type block = {
  bb_off : int;  (** module-relative start *)
  bb_size : int;
  bb_insns : int;
  bb_term : [ `Jmp | `Jcc | `Call | `Ret | `Ind | `Syscall | `Trap | `Fall ];
}

type t = {
  cfg_module : string;
  cfg_blocks : block list;  (** sorted by offset *)
  cfg_edges : (int * int) list;  (** (from-insn offset, target offset) *)
}

val blocks_of_section :
  ?extra_leaders:int list -> Self.section -> block list * (int * int) list
(** Decode one executable section. [extra_leaders] adds known entry
    points (function symbols, PLT stubs) as block boundaries. *)

val of_self : Self.t -> t
(** All executable sections, with symbols and PLT stubs as leaders. *)

val block_count : t -> int

val real_blocks : t -> block list
(** Blocks with nonzero size (drops empty padding runs). *)

val block_at : t -> int -> block option
val block_containing : t -> int -> block option
