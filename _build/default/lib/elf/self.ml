(** SELF — the Simulated ELF binary format.

    A SELF binary is what the simulated filesystem stores and what the
    loader maps: page-aligned sections with per-section permissions, a
    symbol table, dynamic relocations for load-time patching, a PLT/GOT
    map (the paper's §4.2 PLT-liveness analysis reads it), and a list of
    needed shared libraries.

    Section offsets are *module-relative*: an executable is linked at a
    fixed base, a shared object ([`Dyn]) is position-independent and gets
    its base assigned at load or — for DynaCut's injected signal-handler
    library — chosen by the end user (paper §3.3). *)

type prot = { p_r : bool; p_w : bool; p_x : bool }

let prot_rx = { p_r = true; p_w = false; p_x = true }
let prot_ro = { p_r = true; p_w = false; p_x = false }
let prot_rw = { p_r = true; p_w = true; p_x = false }

let prot_to_int p =
  (if p.p_r then 4 else 0) lor (if p.p_w then 2 else 0) lor if p.p_x then 1 else 0

let prot_of_int i =
  { p_r = i land 4 <> 0; p_w = i land 2 <> 0; p_x = i land 1 <> 0 }

let prot_to_string p =
  Printf.sprintf "%c%c%c"
    (if p.p_r then 'r' else '-')
    (if p.p_w then 'w' else '-')
    (if p.p_x then 'x' else '-')

type section = {
  sec_name : string;
  sec_off : int;  (** module-relative address, page aligned *)
  sec_data : bytes;
  sec_prot : prot;
}

type sym_kind = Func | Object

type sym = {
  sym_name : string;
  sym_off : int;  (** module-relative (the ELF st_value analogue) *)
  sym_size : int;
  sym_kind : sym_kind;
  sym_global : bool;
}

(** A dynamic relocation patches the 8-byte slot at module-relative
    [dr_off] at load time. *)
type dynreloc = {
  dr_off : int;
  dr_target : [ `Extern of string  (** absolute address of a needed-lib symbol *)
              | `Local of string  (** module base + local symbol offset *) ];
  dr_addend : int;
}

type kind = Exec | Dyn

type t = {
  name : string;
  kind : kind;
  entry : int;  (** module-relative entry point (0 for libraries) *)
  base : int64;  (** preferred base; 0 for position-independent [Dyn] *)
  sections : section list;
  symbols : sym list;
  dynrelocs : dynreloc list;
  needed : string list;
  plt : (string * int) list;  (** extern function -> module-relative PLT stub *)
  got : (string * int) list;  (** extern function -> module-relative GOT slot *)
}

let page_size = 4096
let page_align n = (n + page_size - 1) / page_size * page_size

let find_symbol t name = List.find_opt (fun s -> s.sym_name = name) t.symbols

let find_section t name =
  List.find_opt (fun s -> s.sec_name = name) t.sections

let section_containing t off =
  List.find_opt
    (fun s -> off >= s.sec_off && off < s.sec_off + Bytes.length s.sec_data)
    t.sections

(** Total mapped size of the module (highest section end, page aligned). *)
let image_size t =
  List.fold_left
    (fun acc s -> max acc (page_align (s.sec_off + Bytes.length s.sec_data)))
    0 t.sections

let text_size t =
  match find_section t ".text" with
  | Some s -> Bytes.length s.sec_data
  | None -> 0

(* ---------- serialization ---------- *)

let magic = "SELF\x01"

exception Format_error of string

let to_bytes (t : t) : string =
  let open Bytesx.W in
  let b = create ~size:4096 () in
  string b magic;
  lstring b t.name;
  u8 b (match t.kind with Exec -> 0 | Dyn -> 1);
  int_as_u64 b t.entry;
  u64 b t.base;
  u32 b (List.length t.sections);
  List.iter
    (fun s ->
      lstring b s.sec_name;
      int_as_u64 b s.sec_off;
      u8 b (prot_to_int s.sec_prot);
      lbytes b s.sec_data)
    t.sections;
  u32 b (List.length t.symbols);
  List.iter
    (fun s ->
      lstring b s.sym_name;
      int_as_u64 b s.sym_off;
      int_as_u64 b s.sym_size;
      u8 b (match s.sym_kind with Func -> 0 | Object -> 1);
      u8 b (if s.sym_global then 1 else 0))
    t.symbols;
  u32 b (List.length t.dynrelocs);
  List.iter
    (fun r ->
      int_as_u64 b r.dr_off;
      (match r.dr_target with
      | `Extern s ->
          u8 b 0;
          lstring b s
      | `Local s ->
          u8 b 1;
          lstring b s);
      int_as_u64 b r.dr_addend)
    t.dynrelocs;
  u32 b (List.length t.needed);
  List.iter (lstring b) t.needed;
  u32 b (List.length t.plt);
  List.iter
    (fun (n, o) ->
      lstring b n;
      int_as_u64 b o)
    t.plt;
  u32 b (List.length t.got);
  List.iter
    (fun (n, o) ->
      lstring b n;
      int_as_u64 b o)
    t.got;
  contents b

let of_bytes (s : string) : t =
  let open Bytesx.R in
  let r = of_string s in
  let m = take r (String.length magic) in
  if m <> magic then raise (Format_error "bad magic");
  let name = lstring r in
  let kind = match u8 r with 0 -> Exec | 1 -> Dyn | k -> raise (Format_error (Printf.sprintf "bad kind %d" k)) in
  let entry = int_of_u64 r in
  let base = u64 r in
  let nsec = u32 r in
  let sections =
    List.init nsec (fun _ ->
        let sec_name = lstring r in
        let sec_off = int_of_u64 r in
        let sec_prot = prot_of_int (u8 r) in
        let sec_data = lbytes r in
        { sec_name; sec_off; sec_prot; sec_data })
  in
  let nsym = u32 r in
  let symbols =
    List.init nsym (fun _ ->
        let sym_name = lstring r in
        let sym_off = int_of_u64 r in
        let sym_size = int_of_u64 r in
        let sym_kind = match u8 r with 0 -> Func | _ -> Object in
        let sym_global = u8 r = 1 in
        { sym_name; sym_off; sym_size; sym_kind; sym_global })
  in
  let nrel = u32 r in
  let dynrelocs =
    List.init nrel (fun _ ->
        let dr_off = int_of_u64 r in
        let dr_target =
          match u8 r with
          | 0 -> `Extern (lstring r)
          | _ -> `Local (lstring r)
        in
        let dr_addend = int_of_u64 r in
        { dr_off; dr_target; dr_addend })
  in
  let nneed = u32 r in
  let needed = List.init nneed (fun _ -> lstring r) in
  let nplt = u32 r in
  let plt =
    List.init nplt (fun _ ->
        let n = lstring r in
        let o = int_of_u64 r in
        (n, o))
  in
  let ngot = u32 r in
  let got =
    List.init ngot (fun _ ->
        let n = lstring r in
        let o = int_of_u64 r in
        (n, o))
  in
  { name; kind; entry; base; sections; symbols; dynrelocs; needed; plt; got }

let pp fmt t =
  Format.fprintf fmt "%s (%s) entry=0x%x base=0x%Lx@." t.name
    (match t.kind with Exec -> "EXEC" | Dyn -> "DYN")
    t.entry t.base;
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-10s off=0x%-8x size=%-8d %s@." s.sec_name s.sec_off
        (Bytes.length s.sec_data) (prot_to_string s.sec_prot))
    t.sections;
  Format.fprintf fmt "  %d symbols, %d dynrelocs, %d PLT entries, needs [%s]@."
    (List.length t.symbols) (List.length t.dynrelocs) (List.length t.plt)
    (String.concat "; " t.needed)
