(** Loader: maps a SELF executable plus the transitive closure of its
    needed libraries, applying all dynamic relocations eagerly (GOT slots
    hold absolute libc addresses before the first instruction runs). *)

exception Load_error of string

type mapping = {
  map_vaddr : int64;
  map_data : bytes;  (** private copy, relocations applied *)
  map_prot : Self.prot;
  map_module : string;
  map_section : string;
  map_file : string;
  map_file_off : int;
}

type loaded_module = { lm_name : string; lm_base : int64; lm_self : Self.t }

type image = {
  img_entry : int64;
  img_modules : loaded_module list;
  img_mappings : mapping list;
}

val default_lib_base : int64
val lib_spacing : int64

val resolve_global : loaded_module list -> string -> int64 option
(** Absolute address of a global symbol across loaded modules. *)

val module_of_addr : image -> int64 -> loaded_module option

val relocate :
  Self.t -> base:int64 -> mods:loaded_module list -> (string * bytes) list
(** Apply a module's dynamic relocations into fresh copies of its section
    data: [`Local sym] patches get base + st_value, [`Extern sym] get the
    symbol's absolute address in [mods]. Exposed because DynaCut's
    injector re-runs exactly this step (§3.3). *)

val map_module : loaded_module -> patched:(string * bytes) list -> mapping list

val load : ?lib_base:int64 -> libs:Self.t list -> Self.t -> image
(** Load an executable; [needed] libraries are looked up by name in
    [libs], transitively. *)
