(** Loader: maps a SELF executable and its needed libraries into a flat
    list of memory mappings with permissions, applying all dynamic
    relocations eagerly (GOT slots get the absolute addresses of their
    libc targets before the process starts — the binding model the
    paper's PLT analysis assumes).

    The loader is pure: it returns the mappings; the machine materializes
    them into an address space. This is also the TCB component the paper's
    threat model trusts (§2). *)

exception Load_error of string

type mapping = {
  map_vaddr : int64;
  map_data : bytes;  (** private copy, relocations already applied *)
  map_prot : Self.prot;
  map_module : string;
  map_section : string;
  map_file : string;  (** backing file path, for file-backed VMAs *)
  map_file_off : int;  (** section offset within the module image *)
}

type loaded_module = { lm_name : string; lm_base : int64; lm_self : Self.t }

type image = {
  img_entry : int64;
  img_modules : loaded_module list;
  img_mappings : mapping list;
}

let default_lib_base = 0x7f00_0000_0000L
let lib_spacing = 0x1000_0000L

(** Absolute address of a global symbol across all loaded modules. *)
let resolve_global (mods : loaded_module list) (sym : string) : int64 option =
  List.find_map
    (fun m ->
      match Self.find_symbol m.lm_self sym with
      | Some s when s.sym_global -> Some (Int64.add m.lm_base (Int64.of_int s.sym_off))
      | _ -> None)
    mods

let module_of_addr (img : image) (addr : int64) : loaded_module option =
  List.find_opt
    (fun m ->
      addr >= m.lm_base
      && addr < Int64.add m.lm_base (Int64.of_int (Self.image_size m.lm_self)))
    img.img_modules

(** Apply [self]'s dynamic relocations into fresh copies of its section
    data, given its own base and the full module list. Returns the patched
    per-section bytes. Exposed because DynaCut's injector re-runs exactly
    this step when inserting a library into a checkpoint image (§3.3). *)
let relocate (self : Self.t) ~(base : int64) ~(mods : loaded_module list) :
    (string * bytes) list =
  let datas =
    List.map (fun (s : Self.section) -> (s.sec_name, Bytes.copy s.sec_data)) self.sections
  in
  List.iter
    (fun (r : Self.dynreloc) ->
      let value =
        match r.dr_target with
        | `Local sym -> (
            match Self.find_symbol self sym with
            | Some s -> Int64.add base (Int64.of_int (s.sym_off + r.dr_addend))
            | None ->
                raise (Load_error (Printf.sprintf "%s: local reloc to unknown %s" self.name sym)))
        | `Extern sym -> (
            match resolve_global mods sym with
            | Some a -> Int64.add a (Int64.of_int r.dr_addend)
            | None ->
                raise (Load_error (Printf.sprintf "%s: unresolved symbol %s" self.name sym)))
      in
      match Self.section_containing self r.dr_off with
      | None ->
          raise
            (Load_error (Printf.sprintf "%s: reloc offset 0x%x outside sections" self.name r.dr_off))
      | Some sec ->
          Bytes.set_int64_le (List.assoc sec.sec_name datas) (r.dr_off - sec.sec_off) value)
    self.dynrelocs;
  datas

let map_module (m : loaded_module) ~(patched : (string * bytes) list) : mapping list =
  List.map
    (fun (s : Self.section) ->
      {
        map_vaddr = Int64.add m.lm_base (Int64.of_int s.sec_off);
        map_data = List.assoc s.sec_name patched;
        map_prot = s.sec_prot;
        map_module = m.lm_name;
        map_section = s.sec_name;
        map_file = m.lm_self.name;
        map_file_off = s.sec_off;
      })
    m.lm_self.sections

(** Load [exe] plus the transitive closure of its needed libraries (looked
    up by name in [libs]). *)
let load ?(lib_base = default_lib_base) ~(libs : Self.t list) (exe : Self.t) : image =
  if exe.kind <> Self.Exec then raise (Load_error (exe.name ^ ": not an executable"));
  (* transitive closure of needed libs, in load order *)
  let rec close acc = function
    | [] -> List.rev acc
    | n :: rest ->
        if List.exists (fun (l : Self.t) -> l.name = n) acc then close acc rest
        else (
          match List.find_opt (fun (l : Self.t) -> l.name = n) libs with
          | None -> raise (Load_error ("needed library not found: " ^ n))
          | Some l -> close (l :: acc) (rest @ l.needed))
  in
  let needed = close [] exe.needed in
  let mods =
    { lm_name = exe.name; lm_base = exe.base; lm_self = exe }
    :: List.mapi
         (fun i (l : Self.t) ->
           {
             lm_name = l.name;
             lm_base = Int64.add lib_base (Int64.mul (Int64.of_int i) lib_spacing);
             lm_self = l;
           })
         needed
  in
  let mappings =
    List.concat_map
      (fun m ->
        let patched = relocate m.lm_self ~base:m.lm_base ~mods in
        map_module m ~patched)
      mods
  in
  {
    img_entry = Int64.add exe.base (Int64.of_int exe.entry);
    img_modules = mods;
    img_mappings = mappings;
  }
