(** A minimal s-expression type with printer and parser.

    CRIT (the CRIU image tool, Section 3.3 of the paper) decodes binary
    protobuf images into a human-readable text form and encodes edited text
    back. Our CRIT equivalent uses this s-expression syntax as its text
    form; [parse (print x) = x] is property-tested. *)

type t =
  | Atom of string
  | List of t list

let atom s = Atom s
let list l = List l
let int i = Atom (string_of_int i)
let i64 (i : int64) = Atom (Int64.to_string i)
let hex64 (i : int64) = Atom (Printf.sprintf "0x%Lx" i)

let field name v = List [ Atom name; v ]
(** [(name value)] — the record-field idiom used throughout CRIT output. *)

exception Parse_error of string

let needs_quoting s =
  s = ""
  || String.exists
       (fun c -> c = ' ' || c = '(' || c = ')' || c = '"' || c = '\n' || c = '\t')
       s

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let rec pp fmt = function
  | Atom s -> Format.pp_print_string fmt (if needs_quoting s then quote s else s)
  | List l ->
      Format.fprintf fmt "(@[<hov 1>%a@])"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        l

let to_string t = Format.asprintf "%a" pp t

(* --- parser --- *)

type lexer = { src : string; mutable p : int }

let peek lx = if lx.p < String.length lx.src then Some lx.src.[lx.p] else None

let advance lx = lx.p <- lx.p + 1

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\n' | '\t' | '\r') ->
      advance lx;
      skip_ws lx
  | Some ';' ->
      (* comment until end of line *)
      while peek lx <> None && peek lx <> Some '\n' do
        advance lx
      done;
      skip_ws lx
  | _ -> ()

let parse_quoted lx =
  advance lx;
  (* opening quote *)
  let b = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | None -> raise (Parse_error "unterminated string")
    | Some '"' -> advance lx
    | Some '\\' -> (
        advance lx;
        match peek lx with
        | Some 'n' ->
            Buffer.add_char b '\n';
            advance lx;
            go ()
        | Some 't' ->
            Buffer.add_char b '\t';
            advance lx;
            go ()
        | Some c ->
            Buffer.add_char b c;
            advance lx;
            go ()
        | None -> raise (Parse_error "dangling escape"))
    | Some c ->
        Buffer.add_char b c;
        advance lx;
        go ()
  in
  go ();
  Buffer.contents b

let parse_atom lx =
  let b = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | Some (' ' | '\n' | '\t' | '\r' | '(' | ')') | None -> ()
    | Some c ->
        Buffer.add_char b c;
        advance lx;
        go ()
  in
  go ();
  Buffer.contents b

let rec parse_one lx =
  skip_ws lx;
  match peek lx with
  | None -> raise (Parse_error "unexpected end of input")
  | Some '(' ->
      advance lx;
      let items = ref [] in
      let rec go () =
        skip_ws lx;
        match peek lx with
        | Some ')' -> advance lx
        | None -> raise (Parse_error "unterminated list")
        | Some _ ->
            items := parse_one lx :: !items;
            go ()
      in
      go ();
      List (List.rev !items)
  | Some '"' -> Atom (parse_quoted lx)
  | Some ')' -> raise (Parse_error "unexpected )")
  | Some _ -> Atom (parse_atom lx)

let of_string s =
  let lx = { src = s; p = 0 } in
  let v = parse_one lx in
  skip_ws lx;
  if peek lx <> None then raise (Parse_error "trailing garbage");
  v

(* --- accessors used by the CRIT codec --- *)

let get_field name = function
  | List items ->
      List.find_map
        (function
          | List [ Atom n; v ] when n = name -> Some v
          | List (Atom n :: vs) when n = name -> Some (List vs)
          | _ -> None)
        items
  | Atom _ -> None

let as_int = function
  | Atom s -> (
      match int_of_string_opt s with
      | Some i -> i
      | None -> raise (Parse_error ("not an int: " ^ s)))
  | List _ -> raise (Parse_error "expected atom, got list")

let as_i64 = function
  | Atom s -> (
      match Int64.of_string_opt s with
      | Some i -> i
      | None -> raise (Parse_error ("not an int64: " ^ s)))
  | List _ -> raise (Parse_error "expected atom, got list")

let as_atom = function
  | Atom s -> s
  | List _ -> raise (Parse_error "expected atom, got list")
