(** Mean / standard deviation / percentile helpers for the bench harness. *)

let mean xs =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
      let n = List.length sorted in
      let idx = int_of_float (p /. 100. *. float_of_int (n - 1)) in
      List.nth sorted (min (n - 1) (max 0 idx))

(** Time a thunk with [Unix]-free monotonic-ish clock ([Sys.time] measures
    processor time, which is what the rewrite-cost figures need). *)
let time_it f =
  let t0 = Sys.time () in
  let r = f () in
  let t1 = Sys.time () in
  (r, t1 -. t0)

let time_n n f =
  List.init n (fun _ ->
      let _, dt = time_it f in
      dt)
