(** ASCII table and bar-chart rendering for the benchmark harness.

    Every figure in the paper's evaluation is re-rendered by [bench/main.exe]
    as text; these helpers keep the output aligned and diff-friendly. *)

type align = L | R

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | L -> s ^ String.make (width - n) ' '
    | R -> String.make (width - n) ' ' ^ s

(** [render ~headers ~aligns rows] renders a boxed table. [aligns] defaults
    to left for the first column, right for the rest. *)
let render ?(aligns = []) ~headers rows =
  let ncols = List.length headers in
  let aligns =
    if aligns <> [] then aligns
    else L :: List.init (max 0 (ncols - 1)) (fun _ -> R)
  in
  let all = headers :: rows in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init ncols width in
  let line ch =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) ch) widths)
    ^ "+"
  in
  let row cells =
    "| "
    ^ String.concat " | "
        (List.mapi
           (fun i c ->
             let a = try List.nth aligns i with _ -> R in
             pad a (List.nth widths i) c)
           cells)
    ^ " |"
  in
  let b = Buffer.create 256 in
  Buffer.add_string b (line '-');
  Buffer.add_char b '\n';
  Buffer.add_string b (row headers);
  Buffer.add_char b '\n';
  Buffer.add_string b (line '=');
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      Buffer.add_string b (row r);
      Buffer.add_char b '\n')
    rows;
  Buffer.add_string b (line '-');
  Buffer.contents b

(** Horizontal bar chart: one labelled bar per entry, scaled to [width]. *)
let bars ?(width = 50) ?(unit = "") entries =
  let maxv = List.fold_left (fun acc (_, v) -> max acc v) 1e-9 entries in
  let labw =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let b = Buffer.create 256 in
  List.iter
    (fun (label, v) ->
      let n = int_of_float (Float.round (v /. maxv *. float_of_int width)) in
      Buffer.add_string b
        (Printf.sprintf "%s | %s %.3f%s\n" (pad L labw label) (String.make (max n 0) '#') v unit))
    entries;
  Buffer.contents b

(** Stacked horizontal bars: each entry carries labelled segments, e.g. the
    checkpoint / rewrite / restore breakdown of Figure 6. *)
let stacked_bars ?(width = 60) ?(unit = "s") ~segments entries =
  let seg_chars = [| '#'; '='; ':'; '.'; '+'; '~' |] in
  let total (vs : float list) = List.fold_left ( +. ) 0. vs in
  let maxv = List.fold_left (fun acc (_, vs) -> max acc (total vs)) 1e-9 entries in
  let labw =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let b = Buffer.create 256 in
  Buffer.add_string b "legend: ";
  List.iteri
    (fun i name ->
      Buffer.add_string b (Printf.sprintf "%c=%s  " seg_chars.(i mod 6) name))
    segments;
  Buffer.add_char b '\n';
  List.iter
    (fun (label, vs) ->
      Buffer.add_string b (pad L labw label);
      Buffer.add_string b " | ";
      List.iteri
        (fun i v ->
          let n = int_of_float (Float.round (v /. maxv *. float_of_int width)) in
          Buffer.add_string b (String.make (max n 0) seg_chars.(i mod 6)))
        vs;
      Buffer.add_string b (Printf.sprintf " %.3f%s\n" (total vs) unit))
    entries;
  Buffer.contents b

(** Sparkline-ish time series: x buckets rendered as a column chart with
    [height] rows; used for the Figure 8 throughput timeline. *)
let timeseries ?(height = 12) ~ylabel series =
  (* series : (name, float array) list; all arrays must share a length *)
  let len =
    List.fold_left (fun acc (_, a) -> max acc (Array.length a)) 0 series
  in
  let maxv =
    List.fold_left
      (fun acc (_, a) -> Array.fold_left max acc a)
      1e-9 series
  in
  let chars = [| '*'; 'o'; '+'; 'x' |] in
  let b = Buffer.create 1024 in
  List.iteri
    (fun i (name, _) ->
      Buffer.add_string b (Printf.sprintf "%c = %s   " chars.(i mod 4) name))
    series;
  Buffer.add_char b '\n';
  for row = height downto 1 do
    let thresh = float_of_int row /. float_of_int height *. maxv in
    let lo = float_of_int (row - 1) /. float_of_int height *. maxv in
    if row = height then Buffer.add_string b (Printf.sprintf "%8.1f |" maxv)
    else if row = 1 then Buffer.add_string b (Printf.sprintf "%8.1f |" lo)
    else Buffer.add_string b "         |";
    for x = 0 to len - 1 do
      let cell = ref ' ' in
      List.iteri
        (fun i (_, a) ->
          if x < Array.length a then
            let v = a.(x) in
            if v >= lo +. 1e-12 && (v <= thresh || row = height) then
              cell := chars.(i mod 4))
        series;
      Buffer.add_char b !cell
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.add_string b ("         +" ^ String.make len '-' ^ "> " ^ ylabel ^ "\n");
  Buffer.contents b

let human_bytes n =
  if n < 1024 then Printf.sprintf "%dB" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1fKB" (float_of_int n /. 1024.)
  else Printf.sprintf "%.2fMB" (float_of_int n /. 1024. /. 1024.)
