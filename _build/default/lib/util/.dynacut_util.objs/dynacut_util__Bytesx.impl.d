lib/util/bytesx.ml: Buffer Bytes Char Int64 Printf String
