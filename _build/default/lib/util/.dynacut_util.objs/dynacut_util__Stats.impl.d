lib/util/stats.ml: List Sys
