lib/util/sexpr.ml: Buffer Format Int64 List Printf String
