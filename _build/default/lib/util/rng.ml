(** Deterministic splitmix64 PRNG.

    The machine and every workload draw randomness only from here, so each
    experiment is bit-for-bit reproducible run-to-run (DESIGN.md §5). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_i64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_i64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_i64 t) 1L = 1L

let float t =
  (* 53 random bits into [0, 1) *)
  let v = Int64.to_float (Int64.shift_right_logical (next_i64 t) 11) in
  v /. 9007199254740992.0

(** Pick a uniformly random element of a non-empty list. *)
let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int t (List.length l))
