(** Little-endian byte-buffer writer and cursor reader.

    All multi-byte integers in the SELF object format and in the CRIU image
    format are little-endian, matching the x86-64 convention the paper's
    artifact targets. *)

exception Truncated of string
(** Raised by the reader when the input ends before a field is complete. *)

module W = struct
  type t = Buffer.t

  let create ?(size = 256) () : t = Buffer.create size
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u16 b v =
    u8 b (v land 0xff);
    u8 b ((v lsr 8) land 0xff)

  let u32 b v =
    u16 b (v land 0xffff);
    u16 b ((v lsr 16) land 0xffff)

  let u64 b (v : int64) =
    u32 b (Int64.to_int (Int64.logand v 0xffffffffL));
    u32 b (Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xffffffffL))

  let int_as_u64 b v = u64 b (Int64.of_int v)
  let bytes b (s : bytes) = Buffer.add_bytes b s
  let string b s = Buffer.add_string b s

  (* Length-prefixed string: u32 length + raw bytes. *)
  let lstring b s =
    u32 b (String.length s);
    string b s

  let lbytes b s =
    u32 b (Bytes.length s);
    bytes b s

  let contents (b : t) = Buffer.contents b
  let to_bytes (b : t) = Buffer.to_bytes b
  let length (b : t) = Buffer.length b
end

module R = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let of_bytes data = { data = Bytes.to_string data; pos = 0 }
  let remaining r = String.length r.data - r.pos
  let pos r = r.pos
  let eof r = r.pos >= String.length r.data

  let check r n what =
    if remaining r < n then
      raise (Truncated (Printf.sprintf "%s: need %d bytes, have %d" what n (remaining r)))

  let u8 r =
    check r 1 "u8";
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    let lo = u8 r in
    let hi = u8 r in
    lo lor (hi lsl 8)

  let u32 r =
    let lo = u16 r in
    let hi = u16 r in
    lo lor (hi lsl 16)

  let u64 r =
    let lo = Int64.of_int (u32 r) in
    let hi = Int64.of_int (u32 r) in
    Int64.logor lo (Int64.shift_left hi 32)

  let int_of_u64 r = Int64.to_int (u64 r)

  let take r n =
    check r n "take";
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let lstring r =
    let n = u32 r in
    take r n

  let lbytes r = Bytes.of_string (lstring r)
end

let hex_of_string (s : string) =
  let b = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b
