(** Quickstart: the whole DynaCut pipeline in ~40 lines.

    1. boot the Redis-like server on the simulated machine;
    2. trace wanted traffic (reads) and undesired traffic (SET) under the
       drcov-style collector;
    3. tracediff the two coverage graphs to find the SET feature blocks;
    4. cut: checkpoint, patch the blocks with int3, inject the SIGTRAP
       handler redirecting to the server's error path, restore;
    5. probe: SET now answers "-ERR", GET still works, and the server
       never restarted;
    6. re-enable and probe again.

    Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. boot *)
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  Printf.printf "booted %s, pid %d\n%!" c.Workload.app.Workload.a_name c.Workload.pid;

  (* 2-3. trace + diff (Common bundles the collector runs) *)
  let blocks = Common.rkv_feature_blocks [ "SET k v\n"; "SET k w\n" ] in
  Printf.printf "tracediff found %d SET-only basic blocks:\n" (List.length blocks);
  List.iter
    (fun (b : Covgraph.block) ->
      Printf.printf "  %s+0x%x (%d bytes)\n" b.Covgraph.b_module b.Covgraph.b_off
        b.Covgraph.b_size)
    blocks;

  (* 4. the cut *)
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let journals, t =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "rkv_err" }
  in
  Format.printf "cut applied: %a@." Dynacut.pp_timings t;

  (* 5. probe the customized process *)
  Printf.printf "SET k v      -> %s\n" (Workload.rpc c "SET k v\n");
  Printf.printf "GET greeting -> %s\n" (Workload.rpc c "GET greeting\n");
  Printf.printf "PING         -> %s\n" (Workload.rpc c "PING\n");

  (* 6. change of scenario: bring SET back *)
  let t = Dynacut.reenable session journals in
  Format.printf "feature restored: %a@." Dynacut.pp_timings t;
  Printf.printf "SET k v      -> %s\n" (Workload.rpc c "SET k v\n");
  Printf.printf "GET k        -> %s\n" (Workload.rpc c "GET k\n");
  assert (Workload.rpc c "GET k\n" = "$v");
  print_endline "quickstart OK"
