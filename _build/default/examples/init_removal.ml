(** Temporal debloating of a compute workload (Figures 7 and 9): the
    600.perlbench_s stand-in spends a large share of its executed blocks
    on initialization; once the "init done" log line appears, that code
    is dead weight — wipe it and let the program finish.

    The example verifies the rewritten process produces *exactly* the
    same result as an untouched run.

    Run with: dune exec examples/init_removal.exe *)

let result_line (c : Workload.ctx) =
  Workload.console c |> String.split_on_char '\n'
  |> List.find_opt (fun l ->
         let n = String.length l and sub = "result" in
         let sl = String.length sub in
         let rec go i = i + sl <= n && (String.sub l i sl = sub || go (i + 1)) in
         go 0)
  |> Option.value ~default:"?"

let () =
  let k = Spec.perlbench in
  let app = Workload.spec_app k in

  (* baseline: vanilla run to completion *)
  let v = Workload.spawn app in
  Workload.wait_ready v;
  let (_ : Proc.state) = Workload.run_to_exit v in
  let baseline = result_line v in
  Printf.printf "vanilla result:   %s\n" baseline;

  (* profile the init phase with the nudge protocol *)
  let init_blocks, init_log, serving_log = Common.init_only_blocks app in
  Printf.printf "coverage: %d init blocks, %d serving blocks; %d init-only\n"
    (Drcov.bb_count init_log) (Drcov.bb_count serving_log) (List.length init_blocks);

  (* fresh run: wipe the init code right after the banner, then finish *)
  let c = Workload.spawn app in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let _, t =
    Dynacut.cut session ~blocks:init_blocks
      ~policy:{ Dynacut.method_ = `Wipe; on_trap = `Kill }
  in
  Format.printf "wiped %d blocks: %a@." (List.length init_blocks) Dynacut.pp_timings t;
  (match Workload.run_to_exit c with
  | Proc.Exited 0 -> ()
  | st -> failwith ("rewritten run ended with " ^ Proc.state_to_string st));
  let customized = result_line c in
  Printf.printf "customized result: %s\n" customized;
  assert (baseline = customized);
  Printf.printf "results identical; %.1f%% of executed blocks were init-only\n"
    (100.
    *. float_of_int (List.length init_blocks)
    /. float_of_int (Drcov.bb_count init_log + Drcov.bb_count serving_log));
  print_endline "init removal OK"
