(** The paper's motivating server scenario (§1, §4.2): keep a web server
    read-only during peak hours, open a short maintenance window for
    uploads at night, and drop the initialization code as soon as boot
    finishes.

    Timeline (all on one live ltpd process, no restarts):
      boot  -> init code removed (wipe)
      peak  -> PUT/DELETE disabled, redirected to the 403 path
      night -> PUT/DELETE re-enabled, admin uploads a file
      peak  -> window closed again; the uploaded file still serves

    Run with: dune exec examples/webserver_customization.exe *)

let show title resp =
  let first_line = List.hd (String.split_on_char '\r' resp) in
  Printf.printf "%-28s %s\n%!" title first_line

let () =
  (* profile the two behaviours offline *)
  let features = Common.web_feature_blocks Workload.ltpd in
  let init_blocks, _, _ = Common.init_only_blocks Workload.ltpd in
  Printf.printf "profiled: %d PUT/DELETE blocks, %d init-only blocks\n\n"
    (List.length features) (List.length init_blocks);

  let c = Workload.spawn Workload.ltpd in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in

  (* boot finished: the initialization code will never run again *)
  let _, t =
    Dynacut.cut session ~blocks:init_blocks
      ~policy:{ Dynacut.method_ = `Wipe; on_trap = `Kill }
  in
  Format.printf "init code wiped (%d blocks): %a@.@." (List.length init_blocks)
    Dynacut.pp_timings t;

  (* peak hours: read-only *)
  let put_journal, _ =
    Dynacut.cut session ~blocks:features
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }
  in
  print_endline "-- peak hours (read-only) --";
  show "GET /index.html" (Workload.rpc c (Workload.http_get "/index.html"));
  show "PUT /report.txt" (Workload.rpc c (Workload.http_put "/report.txt" "q3 numbers"));
  show "DELETE /index.html" (Workload.rpc c (Workload.http_delete "/index.html"));

  (* midnight: the administrator opens the write window *)
  let (_ : Dynacut.timings) = Dynacut.reenable session put_journal in
  print_endline "\n-- maintenance window --";
  show "PUT /report.txt" (Workload.rpc c (Workload.http_put "/report.txt" "q3 numbers"));
  show "GET /report.txt" (Workload.rpc c (Workload.http_get "/report.txt"));

  (* window closes *)
  let _, _ =
    Dynacut.cut session ~blocks:features
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }
  in
  print_endline "\n-- peak hours again --";
  show "PUT /other.txt" (Workload.rpc c (Workload.http_put "/other.txt" "nope"));
  show "GET /report.txt" (Workload.rpc c (Workload.http_get "/report.txt"));

  let alive = Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid) in
  Printf.printf "\nserver alive across all four phases: %b\n" alive;
  assert alive;
  print_endline "webserver customization OK"
