(** Over-elimination and the verifier (§3.2.3): profiling with too few
    sample inputs misclassifies wanted code as undesired. Instead of
    crashing the first user who hits it, DynaCut's verifier library
    restores the original byte at trap time, logs the false positive,
    and lets the request proceed — the end user then fixes the block
    list from the log.

    We provoke the situation deliberately: profile rkv's "wanted"
    behaviour with GET-only traffic, so tracediff wrongly classifies
    INCR (and friends) as undesired; then we run the full wanted mix
    under the verifier.

    Run with: dune exec examples/verifier_validation.exe *)

let () =
  (* deliberately thin wanted profile: GET + PING only *)
  let thin_wanted = [ "GET greeting\n"; "PING\n"; "BOGUS\n" ] in
  let cfg_of = Common.cfg_of_app Workload.rkv in
  let _, wanted_log =
    Workload.trace_requests ~app:Workload.rkv ~requests:thin_wanted ~nudge_at_ready:true ()
  in
  let _, undesired_log =
    Workload.trace_requests ~app:Workload.rkv
      ~requests:[ "SET a 1\n"; "INCR counter\n"; "EXISTS color\n" ]
      ~nudge_at_ready:true ()
  in
  let report =
    Tracediff.feature_blocks ~cfg_of ~wanted:[ wanted_log ] ~undesired:[ undesired_log ] ()
  in
  let blocks = report.Tracediff.undesired in
  Printf.printf
    "thin profile blames %d blocks (SET, but also INCR/EXISTS paths the\n\
     user actually wants)\n\n"
    (List.length blocks);

  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Verify }
  in

  (* the wanted traffic the thin profile missed *)
  Printf.printf "INCR counter  -> %s\n" (Workload.rpc c "INCR counter\n");
  Printf.printf "EXISTS color  -> %s\n" (Workload.rpc c "EXISTS color\n");
  Printf.printf "INCR counter  -> %s  (restored path, no trap)\n"
    (Workload.rpc c "INCR counter\n");

  let log = Dynacut.verifier_log session ~pid:c.Workload.pid in
  Printf.printf "\nverifier logged %d falsely-removed addresses:\n" (List.length log);
  List.iter (fun a -> Printf.printf "  0x%Lx\n" a) log;
  assert (List.length log > 0);
  assert (Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid));
  Printf.printf
    "\nthe server survived its own mis-profiling; the %d logged blocks go\n\
     back into the wanted set for the next profiling round\n"
    (List.length log);
  print_endline "verifier validation OK"
