(** Table 1 as a story: a new software version ships a vulnerable command
    (STRALGO, CVE-2021-32625); legacy clients never use it, so the
    operator blocks it with DynaCut until it is actually needed —
    "the longer new features are used and tested, the fewer bugs they
    are likely to have" (§3.2.4).

    Run with: dune exec examples/cve_mitigation.exe *)

let exploit = Printf.sprintf "STRALGO %s %s\n" (String.make 60 'b') (String.make 60 'b')

let () =
  (* act 1: the exploit against a vanilla server *)
  print_endline "-- vanilla rkv --";
  let v = Workload.spawn Workload.rkv in
  Workload.wait_ready v;
  Printf.printf "benign STRALGO abc abd -> %s\n" (Workload.rpc v "STRALGO abc abd\n");
  let (_ : string) = Workload.rpc v exploit in
  (match (Machine.proc_exn v.Workload.m v.Workload.pid).Proc.state with
  | Proc.Killed s -> Printf.printf "exploit result: server killed by %s\n" (Abi.signal_name s)
  | st -> Printf.printf "exploit result: %s\n" (Proc.state_to_string st));

  (* act 2: the same exploit against a DynaCut-customized server *)
  print_endline "\n-- rkv with STRALGO blocked by DynaCut --";
  let blocks = Common.rkv_feature_blocks [ "STRALGO abc abd\n" ] in
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let journals, _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "rkv_err" }
  in
  Printf.printf "exploit           -> %s\n" (Workload.rpc c exploit);
  Printf.printf "GET greeting      -> %s\n" (Workload.rpc c "GET greeting\n");
  Printf.printf "INFO              -> %s\n" (Workload.rpc c "INFO\n");
  assert (Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid));

  (* act 3: the feature is eventually needed — restore it, use it *)
  print_endline "\n-- feature needed: re-enable --";
  let (_ : Dynacut.timings) = Dynacut.reenable session journals in
  Printf.printf "STRALGO abcd abd  -> %s\n" (Workload.rpc c "STRALGO abcd abd\n");
  assert (Workload.rpc c "STRALGO abcd abd\n" = ":3");
  print_endline "cve mitigation OK"
