(** Fully automatic operation — the paper's §5 items working together
    with no operator in the loop:

    1. the server boots under the tracer; {!Autophase} watches syscalls
       and fires the init nudge at the first [accept] — nobody reads logs;
    2. a profiling workload runs; the init-only diff (CFG-normalized) is
       computed and wiped, libc included;
    3. a post-init seccomp denylist is installed through the same
       image-rewriting pipeline;
    4. the hardened, already-customized image is what future deploys
       restore from directly (§4.1 footnote 5).

    Run with: dune exec examples/autopilot.exe *)

let () =
  (* 1-2: automatic phase profiling *)
  let app = Workload.rkv in
  let init_log, serving_log =
    Workload.trace_requests_auto ~app ~requests:Workload.kv_wanted ()
  in
  let report =
    Tracediff.init_blocks
      ~cfg_of:(Common.cfg_of_app app)
      ~init:init_log ~serving:serving_log ()
  in
  Printf.printf
    "autophase: nudge fired on the first accept(); init coverage %d blocks,\n\
     serving %d, init-only %d (incl. %d inside libc.so)\n\n"
    (Drcov.bb_count init_log) (Drcov.bb_count serving_log)
    (List.length report.Tracediff.undesired)
    (List.length
       (List.filter
          (fun (b : Covgraph.block) -> b.Covgraph.b_module = "libc.so")
          report.Tracediff.undesired));

  (* 3: harden a fresh instance *)
  let c = Workload.spawn app in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let _, t1 =
    Dynacut.cut session ~blocks:report.Tracediff.undesired
      ~policy:{ Dynacut.method_ = `Wipe; on_trap = `Kill }
  in
  let denied = [ Abi.sys_fork; Abi.sys_socket; Abi.sys_bind; Abi.sys_listen ] in
  let t2 = Dynacut.apply_seccomp session ~denied:(Some denied) in
  Format.printf "init wipe: %a@.seccomp:   %a@.@." Dynacut.pp_timings t1
    Dynacut.pp_timings t2;

  (* the hardened server still serves everything *)
  List.iter
    (fun r ->
      let resp = Workload.rpc c r in
      assert (String.length resp > 0))
    Workload.kv_wanted;
  Printf.printf "hardened server answered the full wanted mix\n";
  Printf.printf "GET greeting -> %s\n" (Workload.rpc c "GET greeting\n");

  (* 4: future deploys restore the hardened image directly *)
  let pid = c.Workload.pid in
  let path = Printf.sprintf "%s/dump-%d.img" session.Dynacut.tmpfs pid in
  Machine.post_signal c.Workload.m ~pid ~signum:Abi.sigkill;
  Machine.reap c.Workload.m ~pid;
  let p = Restore.restore_from_tmpfs c.Workload.m ~path in
  assert (p.Proc.seccomp = Some denied);
  Printf.printf "\nredeployed from the customized image; filter intact;\n";
  Printf.printf "GET greeting -> %s\n" (Workload.rpc c "GET greeting\n");
  assert (Workload.rpc c "GET greeting\n" = "$hello");
  print_endline "autopilot OK"
