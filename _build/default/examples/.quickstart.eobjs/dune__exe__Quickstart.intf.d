examples/quickstart.mli:
