examples/verifier_validation.mli:
