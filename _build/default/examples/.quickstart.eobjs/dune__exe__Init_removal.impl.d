examples/init_removal.ml: Common Drcov Dynacut Format List Option Printf Proc Spec String Workload
