examples/init_removal.mli:
