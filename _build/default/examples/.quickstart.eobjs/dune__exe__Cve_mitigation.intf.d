examples/cve_mitigation.mli:
