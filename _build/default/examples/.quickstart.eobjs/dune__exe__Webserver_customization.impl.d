examples/webserver_customization.ml: Common Dynacut Format List Machine Printf Proc String Workload
