examples/verifier_validation.ml: Common Dynacut List Machine Printf Proc Tracediff Workload
