examples/autopilot.ml: Abi Common Covgraph Drcov Dynacut Format List Machine Printf Proc Restore String Tracediff Workload
