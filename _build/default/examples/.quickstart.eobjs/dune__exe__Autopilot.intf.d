examples/autopilot.mli:
