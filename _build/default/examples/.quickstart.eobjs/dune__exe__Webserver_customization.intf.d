examples/webserver_customization.mli:
