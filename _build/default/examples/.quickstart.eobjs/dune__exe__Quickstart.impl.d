examples/quickstart.ml: Common Covgraph Dynacut Format List Printf Workload
