examples/cve_mitigation.ml: Abi Common Dynacut Machine Printf Proc String Workload
