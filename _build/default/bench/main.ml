(** The benchmark harness: one runner per table/figure of the paper's
    evaluation (see DESIGN.md §4 for the experiment index), plus
    Bechamel micro-benchmarks of DynaCut's hot paths.

    Usage: [dune exec bench/main.exe] runs everything;
    [dune exec bench/main.exe -- fig6 fig8] runs a subset. *)

let fmt = Format.std_formatter

(* ---------- bechamel micro-benchmarks ---------- *)

let micro_tests () =
  let open Bechamel in
  (* a frozen rkv checkpoint as a realistic workload for the codecs *)
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  Machine.freeze c.Workload.m ~pid:c.Workload.pid;
  let img = Checkpoint.dump c.Workload.m ~pid:c.Workload.pid () in
  let blob = Images.encode img in
  let exe = Option.get (Vfs.find_self c.Workload.m.Machine.fs "rkv") in
  let text = Option.get (Self.find_section exe ".text") in
  let log_init, log_srv = Common.server_phases Workload.rkv ~requests:Workload.kv_wanted in
  let g_init = Covgraph.of_log log_init and g_srv = Covgraph.of_log log_srv in
  let insns =
    Encode.program
      [ Insn.Mov_ri (Reg.Rax, 42L); Insn.Add_ri (Reg.Rax, 1); Insn.Cmp_ri (Reg.Rax, 43); Insn.Ret ]
  in
  [
    Test.make ~name:"image-encode" (Staged.stage (fun () -> ignore (Images.encode img)));
    Test.make ~name:"image-decode" (Staged.stage (fun () -> ignore (Images.decode blob)));
    Test.make ~name:"covgraph-diff" (Staged.stage (fun () -> ignore (Covgraph.diff g_init g_srv)));
    Test.make ~name:"cfg-recovery" (Staged.stage (fun () -> ignore (Cfg.of_self exe)));
    Test.make ~name:"gadget-scan-text"
      (Staged.stage (fun () -> ignore (Gadget.scan_bytes text.Self.sec_data)));
    Test.make ~name:"decode-4-insns"
      (Staged.stage (fun () -> ignore (Decode.disassemble insns)));
    Test.make ~name:"checkpoint-dump"
      (Staged.stage (fun () -> ignore (Checkpoint.dump c.Workload.m ~pid:c.Workload.pid ())));
  ]

let run_micro () =
  Common.section fmt "Micro-benchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Format.fprintf fmt "  %-24s %12.1f ns/run@." name est
          | _ -> Format.fprintf fmt "  %-24s (no estimate)@." name)
        analyzed)
    (micro_tests ());
  Format.fprintf fmt "@."

(* ---------- experiment registry ---------- *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("fig2", "memory footprint maps (605.mcf_s, ltpd)", fun () -> ignore (Fig2.run fmt));
    ("fig4", "tracediff feature discovery output", fun () -> ignore (Fig4.run fmt));
    ("fig6", "feature-customization latency breakdown", fun () -> ignore (Fig6.run fmt));
    ("fig7", "init-code removal latency + validation", fun () -> ignore (Fig7.run fmt));
    ("fig8", "rkv throughput timeline (disable/re-enable SET)", fun () -> ignore (Fig8.run fmt));
    ("fig9", "executed vs removed basic blocks", fun () -> ignore (Fig9.run fmt));
    ("fig10", "live blocks over time vs RAZOR/Chisel", fun () -> ignore (Fig10.run fmt));
    ("table1", "Redis CVE mitigation", fun () -> ignore (Table1.run fmt));
    ("security", "PLT removal + BROP gadget census (§4.2)", fun () -> ignore (Security.run fmt));
    ("ablation", "policy / normalization / autophase / libcut ablations", fun () -> ignore (Ablation.run fmt));
    ("micro", "bechamel micro-benchmarks", run_micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  let to_run =
    match args with
    | [] | [ "all" ] -> experiments
    | names ->
        List.map
          (fun n ->
            match List.find_opt (fun (id, _, _) -> id = n) experiments with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" n
                  (String.concat ", " (List.map (fun (id, _, _) -> id) experiments));
                exit 2)
          names
  in
  Format.fprintf fmt "DynaCut reproduction benchmark harness (%d experiments)@."
    (List.length to_run);
  List.iter
    (fun (id, desc, f) ->
      Format.fprintf fmt "@.>>> %s — %s@." id desc;
      let (), dt = Stats.time_it f in
      Format.fprintf fmt "<<< %s done in %.2fs (host CPU)@." id dt)
    to_run;
  Format.fprintf fmt "@.All experiments complete.@."
