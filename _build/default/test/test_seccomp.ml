(** Dynamic seccomp filtering via image rewriting (paper §5) and
    CRIT-based manual image surgery. *)

open Dsl

let libc = Test_machine.libc

let boot_rkv () =
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  c

let test_filter_kills_denied_syscall () =
  (* a post-init rkv never forks; deny fork and prove the policy bites *)
  let c = boot_rkv () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let (_ : Dynacut.timings) =
    Dynacut.apply_seccomp session ~denied:(Some [ Abi.sys_fork; Abi.sys_open ])
  in
  (* allowed traffic still flows *)
  Alcotest.(check string) "GET fine" "$hello" (Workload.rpc c "GET greeting\n");
  Alcotest.(check string) "SET fine" "+OK" (Workload.rpc c "SET k v\n");
  (* the filter persists in the live process *)
  let p = Machine.proc_exn c.Workload.m c.Workload.pid in
  Alcotest.(check bool) "filter installed" true
    (p.Proc.seccomp = Some [ Abi.sys_fork; Abi.sys_open ]);
  (* now have the guest trip it: SAVE calls nothing denied, but a fresh
     guest that calls open is killed by SIGSYS *)
  let u =
    unit_ "opener"
      [ func "main" [] [ ret (call "open" [ s "/etc/rkv.conf" ]) ] ]
  in
  Vfs.add_self c.Workload.m.Machine.fs "opener" (Crt0.link_app ~libc u);
  let q = Machine.spawn c.Workload.m ~exe_path:"opener" () in
  q.Proc.seccomp <- Some [ Abi.sys_open ];
  let (_ : _) = Machine.run c.Workload.m ~max_cycles:100_000 in
  match q.Proc.state with
  | Proc.Killed s -> Alcotest.(check int) "SIGSYS" Abi.sigsys s
  | st -> Alcotest.failf "expected SIGSYS kill, got %s" (Proc.state_to_string st)

let test_filter_survives_checkpoint_restore () =
  let c = boot_rkv () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let (_ : Dynacut.timings) =
    Dynacut.apply_seccomp session ~denied:(Some [ Abi.sys_fork ])
  in
  (* a second unrelated rewrite must not lose the filter *)
  let blocks = Common.rkv_feature_blocks [ "SET a 1\n" ] in
  let _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "rkv_err" }
  in
  let p = Machine.proc_exn c.Workload.m c.Workload.pid in
  Alcotest.(check bool) "filter survived the second rewrite" true
    (p.Proc.seccomp = Some [ Abi.sys_fork ])

let test_filter_clearable () =
  let c = boot_rkv () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let (_ : Dynacut.timings) = Dynacut.apply_seccomp session ~denied:(Some [ Abi.sys_fork ]) in
  let (_ : Dynacut.timings) = Dynacut.apply_seccomp session ~denied:None in
  let p = Machine.proc_exn c.Workload.m c.Workload.pid in
  Alcotest.(check bool) "cleared" true (p.Proc.seccomp = None);
  Alcotest.(check string) "still serves" "$hello" (Workload.rpc c "GET greeting\n")

let test_filter_inherited_by_fork () =
  let u =
    unit_ "fkf"
      [
        func "main" []
          [
            decl "pid" (call "fork" []);
            when_ (v "pid" ==: i 0) [ ret (call "open" [ s "/x" ]) ];
            do_ "nanosleep" [ i 100000 ];
            ret0;
          ];
      ]
  in
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "fkf" (Crt0.link_app ~libc u);
  let p = Machine.spawn m ~exe_path:"fkf" () in
  p.Proc.seccomp <- Some [ Abi.sys_open ];
  let (_ : _) = Machine.run m ~max_cycles:1_000_000 in
  let child =
    List.find (fun (q : Proc.t) -> q.Proc.parent = p.Proc.pid) (Machine.all_procs m)
  in
  (match child.Proc.state with
  | Proc.Killed s -> Alcotest.(check int) "child SIGSYS" Abi.sigsys s
  | st -> Alcotest.failf "expected child kill, got %s" (Proc.state_to_string st));
  Alcotest.(check bool) "parent exits fine" true (p.Proc.state = Proc.Exited 0)

(* ---------- CRIT manual surgery ---------- *)

let test_crit_edit_register_roundtrip () =
  (* the paper's crit decode/edit/encode workflow: decode the image to
     text, change a register, encode, restore — the process resumes with
     the edited register *)
  let c = boot_rkv () in
  let m = c.Workload.m in
  Machine.freeze m ~pid:c.Workload.pid;
  let img = Checkpoint.dump m ~pid:c.Workload.pid () in
  let text = Crit.decode_to_text (Images.encode img) in
  (* textual surgery: bump r15 (callee-saved, unused while blocked) *)
  let sx = Sexpr.of_string text in
  let edited =
    match sx with
    | Sexpr.List items ->
        Sexpr.List
          (List.map
             (function
               | Sexpr.List [ Sexpr.Atom "core"; core ] ->
                   let core' =
                     match core with
                     | Sexpr.List fields ->
                         Sexpr.List
                           (List.map
                              (function
                                | Sexpr.List [ Sexpr.Atom "gpr"; Sexpr.List gprs ] ->
                                    let gprs' =
                                      List.mapi
                                        (fun i g ->
                                          if i = Reg.to_int Reg.R15 then
                                            Sexpr.Atom "0x1234567890"
                                          else g)
                                        gprs
                                    in
                                    Sexpr.List [ Sexpr.Atom "gpr"; Sexpr.List gprs' ]
                                | f -> f)
                              fields)
                     | _ -> core
                   in
                   Sexpr.List [ Sexpr.Atom "core"; core' ]
               | item -> item)
             items)
    | _ -> Alcotest.fail "bad image text"
  in
  let blob' = Crit.encode_from_text (Sexpr.to_string edited) in
  Machine.reap m ~pid:c.Workload.pid;
  let p = Restore.restore m (Images.decode blob') in
  Alcotest.(check int64) "edited register restored" 0x1234567890L
    (Proc.get p.Proc.regs Reg.R15);
  (* and the process still serves *)
  Alcotest.(check string) "alive" "$hello" (Workload.rpc c "GET greeting\n")

let suite =
  [
    Alcotest.test_case "denied syscall kills (SIGSYS)" `Quick test_filter_kills_denied_syscall;
    Alcotest.test_case "filter survives later rewrites" `Quick
      test_filter_survives_checkpoint_restore;
    Alcotest.test_case "filter clearable at run time" `Quick test_filter_clearable;
    Alcotest.test_case "filter inherited across fork" `Quick test_filter_inherited_by_fork;
    Alcotest.test_case "CRIT decode/edit/encode surgery" `Quick test_crit_edit_register_roundtrip;
  ]
