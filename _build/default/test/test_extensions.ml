(** Tests for the §5 future-work features we implemented: automatic
    phase detection, page-per-function layout + unmap-based unloading,
    and library debloating. *)

let libc = Test_machine.libc

(* ---------- autophase ---------- *)

let test_autophase_fires_on_accept () =
  let c = Workload.spawn ~traced:true Workload.rkv in
  let auto =
    Autophase.arm c.Workload.m (Workload.collector c) ~trigger:Autophase.On_accept
  in
  Alcotest.(check bool) "not yet" false (Autophase.fired auto);
  Workload.wait_ready c;
  Alcotest.(check bool) "fired at accept" true (Autophase.fired auto);
  match Autophase.init_log auto with
  | Some log -> Alcotest.(check bool) "init coverage" true (Drcov.bb_count log > 0)
  | None -> Alcotest.fail "no init log"

let test_autophase_matches_manual () =
  let cfg_of = Common.cfg_of_app Workload.rkv in
  let mi, ms = Common.server_phases Workload.rkv ~requests:Workload.kv_wanted in
  let ai, as_ = Workload.trace_requests_auto ~app:Workload.rkv ~requests:Workload.kv_wanted () in
  let manual = Tracediff.init_blocks ~cfg_of ~init:mi ~serving:ms () in
  let auto = Tracediff.init_blocks ~cfg_of ~init:ai ~serving:as_ () in
  let gm = Covgraph.create () and ga = Covgraph.create () in
  List.iter (Covgraph.add gm) manual.Tracediff.undesired;
  List.iter (Covgraph.add ga) auto.Tracediff.undesired;
  let common = List.length (Covgraph.intersect gm ga) in
  let agreement = float_of_int common /. float_of_int (max 1 (Covgraph.cardinal gm)) in
  Alcotest.(check bool)
    (Printf.sprintf "agreement >= 90%% (got %.0f%%)" (agreement *. 100.))
    true (agreement >= 0.9)

let test_autophase_fallback_budget () =
  (* batch program: the After_insns trigger fires via poll *)
  let c = Workload.spawn ~traced:true (Workload.spec_app Spec.mcf) in
  let auto =
    Autophase.arm c.Workload.m (Workload.collector c)
      ~trigger:(Autophase.After_insns 50_000L)
  in
  let root = Machine.proc_exn c.Workload.m c.Workload.pid in
  let rec drive n =
    if n = 0 then ()
    else begin
      ignore (Machine.run c.Workload.m ~max_cycles:20_000);
      Autophase.poll auto ~root;
      if not (Autophase.fired auto) then drive (n - 1)
    end
  in
  drive 100;
  Alcotest.(check bool) "fired on budget" true (Autophase.fired auto)

let test_autophase_disarm_restores_hook () =
  let c = Workload.spawn ~traced:true Workload.rkv in
  let before = c.Workload.m.Machine.on_syscall in
  let auto = Autophase.arm c.Workload.m (Workload.collector c) ~trigger:Autophase.On_accept in
  Autophase.disarm auto;
  Alcotest.(check bool) "hook restored" true (c.Workload.m.Machine.on_syscall == before)

(* ---------- page-per-function layout ---------- *)

let paged_exe () = Crt0.link_app ~func_align:4096 ~libc Test_core.dispatch_server

let test_func_align_page_boundaries () =
  let exe = paged_exe () in
  let bounds = Funcbounds.of_self exe in
  Array.iter
    (fun f -> Alcotest.(check int) (Printf.sprintf "fn at 0x%x page aligned" f) 0 (f mod 4096))
    bounds.Funcbounds.fb_starts;
  Alcotest.(check bool) "several functions" true
    (Array.length bounds.Funcbounds.fb_starts >= 4)

let test_paged_binary_still_runs () =
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "dsrv" (paged_exe ());
  let p = Machine.spawn m ~exe_path:"dsrv" () in
  let (_ : _) = Machine.run m ~max_cycles:4_000_000 in
  Alcotest.(check bool) "alive in accept" true (Proc.is_live p);
  let c = Net.connect m.Machine.net 9200 in
  Net.client_send c "G";
  let (_ : _) = Machine.run m ~max_cycles:2_000_000 in
  Alcotest.(check string) "serves" "VAL=7" (Net.client_recv c)

let test_unmap_whole_feature_page () =
  (* unmap do_set's page on the paged build: SET crashes with SIGSEGV,
     GET keeps working *)
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  let exe = paged_exe () in
  Vfs.add_self m.Machine.fs "dsrv" exe;
  let p = Machine.spawn m ~exe_path:"dsrv" () in
  let (_ : _) = Machine.run m ~max_cycles:4_000_000 in
  let do_set = Option.get (Self.find_symbol exe "do_set") in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  let page_off = do_set.Self.sym_off / 4096 * 4096 in
  let blocks = [ { Covgraph.b_module = "dsrv"; b_off = page_off; b_size = 4096 } ] in
  let journals, _ =
    Dynacut.cut session ~blocks ~policy:{ Dynacut.method_ = `Unmap_pages; on_trap = `Kill }
  in
  let rpc cmd =
    let c = Net.connect m.Machine.net 9200 in
    Net.client_send c cmd;
    let (_ : _) = Machine.run m ~max_cycles:2_000_000 in
    Net.client_recv c
  in
  Alcotest.(check string) "GET fine" "VAL=7" (rpc "G");
  let (_ : string) = rpc "S" in
  (match (Machine.proc_exn m p.Proc.pid).Proc.state with
  | Proc.Killed s -> Alcotest.(check int) "SIGSEGV on unmapped page" Abi.sigsegv s
  | st -> Alcotest.failf "expected segv, got %s" (Proc.state_to_string st));
  (* remap restores the feature on a fresh process image *)
  Machine.reap m ~pid:p.Proc.pid;
  ignore journals

(* ---------- library debloating ---------- *)

let test_libc_init_only_wipe_is_safe () =
  let app = Workload.ltpd in
  let init_blocks, _, _ = Common.init_only_blocks app in
  let libc_blocks =
    List.filter (fun (b : Covgraph.block) -> b.Covgraph.b_module = "libc.so") init_blocks
  in
  Alcotest.(check bool) "found libc init-only code" true (List.length libc_blocks > 0);
  let c = Workload.spawn app in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let _ =
    Dynacut.cut session ~blocks:libc_blocks
      ~policy:{ Dynacut.method_ = `Wipe; on_trap = `Kill }
  in
  List.iter
    (fun r ->
      let resp = Workload.rpc c r in
      Alcotest.(check bool) "answered" true (String.length resp > 0))
    Workload.web_wanted;
  Alcotest.(check bool) "alive" true (Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid))

let suite =
  [
    Alcotest.test_case "autophase fires on accept" `Quick test_autophase_fires_on_accept;
    Alcotest.test_case "autophase matches manual nudge" `Quick test_autophase_matches_manual;
    Alcotest.test_case "autophase budget fallback" `Quick test_autophase_fallback_budget;
    Alcotest.test_case "autophase disarm" `Quick test_autophase_disarm_restores_hook;
    Alcotest.test_case "func_align=4096 page boundaries" `Quick test_func_align_page_boundaries;
    Alcotest.test_case "paged binary still serves" `Quick test_paged_binary_still_runs;
    Alcotest.test_case "unmap a whole feature page" `Quick test_unmap_whole_feature_page;
    Alcotest.test_case "libc init-only wipe is safe" `Quick test_libc_init_only_wipe_is_safe;
  ]
