(** Stacked-cut semantics: multiple features disabled over time on one
    live process, partially re-enabled in any order — the "gradually
    enlarged allow-list" usage the paper describes in §6. *)

let boot () =
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  c

let redirect = { Dynacut.method_ = `First_byte; on_trap = `Redirect "rkv_err" }

let test_two_features_stacked () =
  let set_blocks = Common.rkv_feature_blocks [ "SET a 1\n" ] in
  let str_blocks = Common.rkv_feature_blocks [ "STRALGO abc abd\n" ] in
  let c = boot () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let set_j, _ = Dynacut.cut session ~blocks:set_blocks ~policy:redirect in
  let _str_j, _ = Dynacut.cut session ~blocks:str_blocks ~policy:redirect in
  (* both blocked, both via the redirect (server alive) *)
  Alcotest.(check string) "SET blocked" "-ERR unknown command" (Workload.rpc c "SET a 1\n");
  Alcotest.(check string) "STRALGO blocked" "-ERR unknown command"
    (Workload.rpc c "STRALGO abc abd\n");
  Alcotest.(check string) "GET fine" "$hello" (Workload.rpc c "GET greeting\n");
  Alcotest.(check bool) "alive" true (Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid));
  (* re-enable only SET: STRALGO must stay blocked *)
  let (_ : Dynacut.timings) = Dynacut.reenable session set_j in
  Alcotest.(check string) "SET back" "+OK" (Workload.rpc c "SET a 1\n");
  Alcotest.(check string) "STRALGO still blocked" "-ERR unknown command"
    (Workload.rpc c "STRALGO abc abd\n");
  Alcotest.(check bool) "still alive" true
    (Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid))

let test_mode_conflict_rejected () =
  let set_blocks = Common.rkv_feature_blocks [ "SET a 1\n" ] in
  let str_blocks = Common.rkv_feature_blocks [ "STRALGO abc abd\n" ] in
  let c = boot () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let _ = Dynacut.cut session ~blocks:set_blocks ~policy:redirect in
  match
    Dynacut.cut session ~blocks:str_blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Verify }
  with
  | exception Dynacut.Dynacut_error _ -> ()
  | _ -> Alcotest.fail "expected mode-conflict error"

let test_many_cut_reenable_cycles () =
  (* robustness: 20 disable/enable cycles on one live server, with the
     store's state progressing through the open windows *)
  let blocks = Common.rkv_feature_blocks [ "SET a 1\n" ] in
  let c = boot () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  for k = 1 to 20 do
    let j, _ = Dynacut.cut session ~blocks ~policy:redirect in
    Alcotest.(check string) "blocked" "-ERR unknown command"
      (Workload.rpc c (Printf.sprintf "SET cyc v%d\n" k));
    let (_ : Dynacut.timings) = Dynacut.reenable session j in
    Alcotest.(check string) "set in window" "+OK"
      (Workload.rpc c (Printf.sprintf "SET cyc v%d\n" k));
    Alcotest.(check string) "stored"
      (Printf.sprintf "$v%d" k)
      (Workload.rpc c "GET cyc\n")
  done;
  Alcotest.(check bool) "alive after 40 rewrites" true
    (Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid))

let test_stacked_cut_on_multiprocess () =
  (* ngx: stack PUT/DELETE block with an extra MKCOL-ish block across the
     master/worker tree *)
  let features = Common.web_feature_blocks Workload.ngx in
  let c = Workload.spawn Workload.ngx in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let j, _ =
    Dynacut.cut session ~blocks:features
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "ngx_declined" }
  in
  let contains sub str =
    let n = String.length sub and m = String.length str in
    let rec go i = i + n <= m && (String.sub str i n = sub || go (i + 1)) in
    go 0
  in
  let put = Workload.rpc c (Workload.http_put "/a.txt" "x") in
  Alcotest.(check bool) "PUT 403" true (contains "403" put);
  let (_ : Dynacut.timings) = Dynacut.reenable session j in
  let put = Workload.rpc c (Workload.http_put "/a.txt" "x") in
  Alcotest.(check bool) "PUT 201 after reenable" true (contains "201" put);
  (* both processes alive *)
  List.iter
    (fun (p : Proc.t) -> Alcotest.(check bool) "alive" true (Proc.is_live p))
    (Machine.all_procs c.Workload.m)

let suite =
  [
    Alcotest.test_case "two features stacked, partial re-enable" `Quick
      test_two_features_stacked;
    Alcotest.test_case "mode conflict rejected" `Quick test_mode_conflict_rejected;
    Alcotest.test_case "20 cut/re-enable cycles" `Slow test_many_cut_reenable_cycles;
    Alcotest.test_case "stacked cut on master/worker" `Quick test_stacked_cut_on_multiprocess;
  ]
