(** Tests for the guest libraries: libc.so exports, the injectable
    SIGTRAP handler library, and the injection machinery. *)

let libc = Test_machine.libc

let test_libc_exports () =
  List.iter
    (fun name ->
      match Self.find_symbol libc name with
      | Some s -> Alcotest.(check bool) (name ^ " global") true s.Self.sym_global
      | None -> Alcotest.failf "libc lacks %s" name)
    [
      "write"; "read"; "open"; "close"; "mmap"; "munmap"; "mprotect"; "fork";
      "sigaction"; "nanosleep"; "getpid"; "socket"; "bind"; "listen"; "accept";
      "recv"; "send"; "exit"; "strlen"; "strcmp"; "strncmp"; "memcpy"; "memset";
      "strcpy"; "atoi"; "itoa"; "puts";
    ]

let test_libc_is_shared_object () =
  Alcotest.(check bool) "kind Dyn" true (libc.Self.kind = Self.Dyn);
  Alcotest.(check int64) "no fixed base" 0L libc.Self.base

let handler = Handler.build ~libc ()

let test_handler_symbols () =
  List.iter
    (fun name ->
      if Self.find_symbol handler name = None then Alcotest.failf "handler lacks %s" name)
    [
      Handler.sym_handler; Handler.sym_restorer; Handler.sym_mode;
      Handler.sym_table_len; Handler.sym_table; Handler.sym_log_len;
      Handler.sym_log; Handler.sym_hits;
    ]

let test_handler_needs_libc () =
  (* the handler calls exit/mprotect through its PLT: DynaCut must do PLT
     relocations at injection (§3.3) *)
  Alcotest.(check (list string)) "needed" [ "libc.so" ] handler.Self.needed;
  Alcotest.(check bool) "has exit PLT" true (List.mem_assoc "exit" handler.Self.plt);
  Alcotest.(check bool) "has mprotect PLT" true (List.mem_assoc "mprotect" handler.Self.plt)

let test_handler_position_independent () =
  (* every dynreloc must be resolvable given an arbitrary base *)
  let base = 0x7cafe000L in
  let mods =
    [
      { Loader.lm_name = handler.Self.name; lm_base = base; lm_self = handler };
      { Loader.lm_name = "libc.so"; lm_base = 0x7f0000000000L; lm_self = libc };
    ]
  in
  let patched = Loader.relocate handler ~base ~mods in
  Alcotest.(check int) "all sections patched" (List.length handler.Self.sections)
    (List.length patched)

(* ---------- injection ---------- *)

let checkpointed_rkv () =
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  Machine.freeze c.Workload.m ~pid:c.Workload.pid;
  (c, Checkpoint.dump c.Workload.m ~pid:c.Workload.pid ())

let test_inject_creates_vmas_and_pages () =
  let _, img = checkpointed_rkv () in
  let before_vmas = List.length img.Images.mm in
  let libc_base = Option.get (Rewriter.module_base img "libc.so") in
  let img', base = Inject.inject img ~lib:handler ~deps:[ (libc, libc_base) ] () in
  Alcotest.(check bool) "more vmas" true (List.length img'.Images.mm > before_vmas);
  Alcotest.(check bool) "base page aligned" true (Int64.rem base 4096L = 0L);
  (* the handler entry byte is readable at base+sym and decodes *)
  let h = Inject.lib_sym handler ~base Handler.sym_handler in
  let byte = Images.read_mem img' h 1 in
  Alcotest.(check bool) "prologue present" true (Bytes.get byte 0 = '\x36' (* push *))

let test_inject_collision_rejected () =
  let _, img = checkpointed_rkv () in
  let libc_base = Option.get (Rewriter.module_base img "libc.so") in
  (* base on top of the executable *)
  match Inject.inject img ~lib:handler ~base:0x400000L ~deps:[ (libc, libc_base) ] () with
  | exception Inject.Inject_error _ -> ()
  | _ -> Alcotest.fail "expected collision error"

let test_inject_user_chosen_base () =
  let _, img = checkpointed_rkv () in
  let libc_base = Option.get (Rewriter.module_base img "libc.so") in
  let want = 0x7abc_def0_0000L in
  let _, base = Inject.inject img ~lib:handler ~base:want ~deps:[ (libc, libc_base) ] () in
  Alcotest.(check int64) "honours the user's base (§3.3)" want base

let test_inject_got_points_at_libc () =
  let _, img = checkpointed_rkv () in
  let libc_base = Option.get (Rewriter.module_base img "libc.so") in
  let img', base = Inject.inject img ~lib:handler ~deps:[ (libc, libc_base) ] () in
  let got_off = List.assoc "exit" handler.Self.got in
  let slot = Images.read_mem img' (Int64.add base (Int64.of_int got_off)) 8 in
  let v = Bytes.get_int64_le slot 0 in
  let exit_sym = Option.get (Self.find_symbol libc "exit") in
  Alcotest.(check int64) "GOT[exit] = libc base + offset"
    (Int64.add libc_base (Int64.of_int exit_sym.Self.sym_off))
    v

let test_write_policy_roundtrip () =
  let _, img = checkpointed_rkv () in
  let libc_base = Option.get (Rewriter.module_base img "libc.so") in
  let img', base = Inject.inject img ~lib:handler ~deps:[ (libc, libc_base) ] () in
  Inject.write_policy img' ~lib:handler ~base ~mode:Handler.mode_redirect
    ~entries:[ (0x401000L, 0x402000L); (0x401100L, 0x402000L) ];
  let r64 addr = Bytes.get_int64_le (Images.read_mem img' addr 8) 0 in
  Alcotest.(check int64) "mode" Handler.mode_redirect
    (r64 (Inject.lib_sym handler ~base Handler.sym_mode));
  Alcotest.(check int64) "len" 2L (r64 (Inject.lib_sym handler ~base Handler.sym_table_len));
  let tbl = Inject.lib_sym handler ~base Handler.sym_table in
  Alcotest.(check int64) "entry0 addr" 0x401000L (r64 tbl);
  Alcotest.(check int64) "entry0 target" 0x402000L (r64 (Int64.add tbl 8L))

let test_write_policy_overflow_rejected () =
  let _, img = checkpointed_rkv () in
  let libc_base = Option.get (Rewriter.module_base img "libc.so") in
  let img', base = Inject.inject img ~lib:handler ~deps:[ (libc, libc_base) ] () in
  let too_many = List.init (Handler.max_table_entries + 1) (fun k -> (Int64.of_int k, 0L)) in
  Alcotest.check_raises "overflow" (Inject.Inject_error "policy table overflow") (fun () ->
      Inject.write_policy img' ~lib:handler ~base ~mode:Handler.mode_redirect ~entries:too_many)

let suite =
  [
    Alcotest.test_case "libc exports" `Quick test_libc_exports;
    Alcotest.test_case "libc is a shared object" `Quick test_libc_is_shared_object;
    Alcotest.test_case "handler symbols" `Quick test_handler_symbols;
    Alcotest.test_case "handler needs libc (PLT relocs)" `Quick test_handler_needs_libc;
    Alcotest.test_case "handler relocatable anywhere" `Quick test_handler_position_independent;
    Alcotest.test_case "inject creates VMAs + pages" `Quick test_inject_creates_vmas_and_pages;
    Alcotest.test_case "inject collision rejected" `Quick test_inject_collision_rejected;
    Alcotest.test_case "inject honours user base" `Quick test_inject_user_chosen_base;
    Alcotest.test_case "inject patches GOT to libc" `Quick test_inject_got_points_at_libc;
    Alcotest.test_case "policy table write/read" `Quick test_write_policy_roundtrip;
    Alcotest.test_case "policy table overflow" `Quick test_write_policy_overflow_rejected;
  ]
