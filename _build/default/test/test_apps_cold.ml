(** Tests for the "cold" feature surface: commands and modules that exist
    in the binaries but that no benchmark workload exercises. They must
    still be *correct* — DynaCut's premise is disabling working features,
    not dead code. (These tests run on their own machines and do not
    perturb the experiments' coverage.) *)

let contains sub str =
  let n = String.length sub and m = String.length str in
  let rec go i = i + n <= m && (String.sub str i n = sub || go (i + 1)) in
  go 0

let check_contains what sub str =
  if not (contains sub str) then Alcotest.failf "%s: %S not in %S" what sub str

let boot_rkv () =
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  c

(* ---------- rkv cold commands ---------- *)

let test_rkv_ttl_persist () =
  let c = boot_rkv () in
  Alcotest.(check string) "ttl missing" ":-2" (Workload.rpc c "TTL nope\n");
  Alcotest.(check string) "ttl no expiry" ":-1" (Workload.rpc c "TTL greeting\n");
  Alcotest.(check string) "expire" ":1" (Workload.rpc c "EXPIRE greeting 100\n");
  Alcotest.(check string) "expire missing" ":0" (Workload.rpc c "EXPIRE nope 5\n");
  Alcotest.(check string) "persist" ":1" (Workload.rpc c "PERSIST greeting\n");
  (* persisted key still readable *)
  Alcotest.(check string) "get after persist" "$hello" (Workload.rpc c "GET greeting\n")

let test_rkv_type_rename () =
  let c = boot_rkv () in
  Alcotest.(check string) "type" "+string" (Workload.rpc c "TYPE greeting\n");
  Alcotest.(check string) "type missing" "+none" (Workload.rpc c "TYPE nope\n");
  Alcotest.(check string) "rename" "+OK" (Workload.rpc c "RENAME greeting hi\n");
  Alcotest.(check string) "old gone" "$-1" (Workload.rpc c "GET greeting\n");
  Alcotest.(check string) "new there" "$hello" (Workload.rpc c "GET hi\n");
  Alcotest.(check string) "rename missing" "-ERR no such key" (Workload.rpc c "RENAME nope x\n")

let test_rkv_string_commands () =
  let c = boot_rkv () in
  Alcotest.(check string) "strlen" ":5" (Workload.rpc c "STRLEN greeting\n");
  Alcotest.(check string) "strlen missing" ":0" (Workload.rpc c "STRLEN nope\n");
  Alcotest.(check string) "getrange" "$llo" (Workload.rpc c "GETRANGE greeting 2\n");
  Alcotest.(check string) "getrange past end" "$" (Workload.rpc c "GETRANGE greeting 99\n");
  Alcotest.(check string) "getset old" "$hello" (Workload.rpc c "GETSET greeting newv\n");
  Alcotest.(check string) "getset stored" "$newv" (Workload.rpc c "GET greeting\n");
  Alcotest.(check string) "getset missing" "$-1" (Workload.rpc c "GETSET fresh v0\n")

let test_rkv_mget_scan () =
  let c = boot_rkv () in
  check_contains "mget both" "hello" (Workload.rpc c "MGET greeting color\n");
  check_contains "mget second" "blue" (Workload.rpc c "MGET greeting color\n");
  let r = Workload.rpc c "SCAN 0\n" in
  Alcotest.(check bool) "scan cursor" true (String.length r > 1 && r.[0] = ':');
  Alcotest.(check string) "dbsize" ":3" (Workload.rpc c "DBSIZE\n")

let test_rkv_randomkey () =
  let c = boot_rkv () in
  let r = Workload.rpc c "RANDOMKEY\n" in
  Alcotest.(check bool) "one of the rdb keys" true
    (List.mem r [ "$greeting"; "$counter"; "$color" ])

let test_rkv_auth () =
  let c = boot_rkv () in
  Alcotest.(check string) "bad password" "-ERR invalid password"
    (Workload.rpc c "AUTH wrong\n");
  Alcotest.(check string) "good password" "+OK" (Workload.rpc c "AUTH secret-token\n")

let test_rkv_save_debug () =
  let c = boot_rkv () in
  Alcotest.(check string) "save fails read-only" "-ERR read-only filesystem"
    (Workload.rpc c "SAVE\n");
  Alcotest.(check string) "debug sleep" "+OK" (Workload.rpc c "DEBUG SLEEP 1000\n");
  Alcotest.(check string) "debug unknown" "-ERR unknown debug subcommand"
    (Workload.rpc c "DEBUG FROB\n");
  (* DEBUG SEGFAULT really crashes — redis parity *)
  let (_ : string) = Workload.rpc c "DEBUG SEGFAULT\n" in
  match (Machine.proc_exn c.Workload.m c.Workload.pid).Proc.state with
  | Proc.Killed s -> Alcotest.(check int) "segv" Abi.sigsegv s
  | st -> Alcotest.failf "expected segv, got %s" (Proc.state_to_string st)

let test_rkv_cold_commands_blockable () =
  (* the point of shipping cold commands: DynaCut can block them all *)
  let profile = [ "TTL greeting\n"; "RENAME a b\n"; "SCAN 0\n"; "AUTH x\n" ] in
  let blocks = Common.rkv_feature_blocks profile in
  Alcotest.(check bool) "found distinct blocks" true (List.length blocks > 0);
  let c = boot_rkv () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "rkv_err" }
  in
  Alcotest.(check string) "TTL blocked" "-ERR unknown command" (Workload.rpc c "TTL greeting\n");
  Alcotest.(check string) "AUTH blocked" "-ERR unknown command" (Workload.rpc c "AUTH secret-token\n");
  Alcotest.(check string) "GET fine" "$hello" (Workload.rpc c "GET greeting\n")

(* ---------- ltpd cold modules ---------- *)

let boot_ltpd () =
  let c = Workload.spawn Workload.ltpd in
  Workload.wait_ready c;
  c

let test_ltpd_status_page () =
  let c = boot_ltpd () in
  let r = Workload.rpc c (Workload.http_get "/server-status") in
  check_contains "status" "uptime=" r;
  check_contains "served" "served=" r

let test_ltpd_dirlist () =
  let c = boot_ltpd () in
  let r = Workload.rpc c (Workload.http_get "/") in
  check_contains "listing" "<ul>" r;
  check_contains "entries" "<li>entry</li>" r

let test_ltpd_cgi () =
  let c = boot_ltpd () in
  (* a "script" under the docroot *)
  Vfs.add c.Workload.m.Machine.fs "/www/cgi-bin/hello.sh" "echo hello-from-cgi";
  let r = Workload.rpc c (Workload.http_get "/cgi-bin/hello.sh") in
  check_contains "cgi output" "hello-from-cgi" r;
  check_contains "missing script 404" "404"
    (Workload.rpc c (Workload.http_get "/cgi-bin/nope.sh"))

let test_ltpd_conditional_get () =
  let c = boot_ltpd () in
  let req = "GET /index.html HTTP/1.0\r\nIf-None-Match: \"xyz\"\r\n\r\n" in
  check_contains "304" "304 Not Modified" (Workload.rpc c req)

let test_ltpd_range_request () =
  let c = boot_ltpd () in
  let req = "GET /about.txt HTTP/1.0\r\nRange: bytes=5\r\n\r\n" in
  let r = Workload.rpc c req in
  check_contains "206" "206 Partial Content" r;
  (* "ltpd test site" from offset 5 = "test site" *)
  check_contains "tail" "test site" r

let test_ltpd_rewrite_rule () =
  let c = boot_ltpd () in
  Vfs.add c.Workload.m.Machine.fs "/www/new/page.txt" "rewritten-target";
  let r = Workload.rpc c (Workload.http_get "/old/page.txt") in
  check_contains "served from /new/" "rewritten-target" r

let test_ltpd_proxy_no_upstream () =
  let c = boot_ltpd () in
  check_contains "no upstream" "no upstream" (Workload.rpc c (Workload.http_get "/proxy/x"))

(* ---------- ngx cold modules ---------- *)

let boot_ngx () =
  let c = Workload.spawn Workload.ngx in
  Workload.wait_ready c;
  c

let test_ngx_api_proxy () =
  let c = boot_ngx () in
  (* upstreams exist in the config: round-robin picks one, dial fails *)
  check_contains "gateway timeout" "504" (Workload.rpc c (Workload.http_get "/api/users"))

let test_ngx_fastcgi () =
  let c = boot_ngx () in
  check_contains "bad gateway" "502" (Workload.rpc c (Workload.http_get "/fcgi/app"))

let test_ngx_tls_hello () =
  let c = boot_ngx () in
  (* a TLS ClientHello on the plain port gets the toy handshake bytes *)
  let r = Workload.rpc c "\x16\x03\x01junk" in
  Alcotest.(check int) "16-byte ServerHello" 16 (String.length r)

let test_ngx_mkcol_propfind () =
  let c = boot_ngx () in
  check_contains "mkcol" "201" (Workload.rpc c "MKCOL /col HTTP/1.0\r\n\r\n");
  check_contains "propfind" "207" (Workload.rpc c "PROPFIND / HTTP/1.0\r\n\r\n")

let suite =
  [
    Alcotest.test_case "rkv TTL/EXPIRE/PERSIST" `Quick test_rkv_ttl_persist;
    Alcotest.test_case "rkv TYPE/RENAME" `Quick test_rkv_type_rename;
    Alcotest.test_case "rkv STRLEN/GETRANGE/GETSET" `Quick test_rkv_string_commands;
    Alcotest.test_case "rkv MGET/SCAN/DBSIZE" `Quick test_rkv_mget_scan;
    Alcotest.test_case "rkv RANDOMKEY" `Quick test_rkv_randomkey;
    Alcotest.test_case "rkv AUTH" `Quick test_rkv_auth;
    Alcotest.test_case "rkv SAVE/DEBUG" `Quick test_rkv_save_debug;
    Alcotest.test_case "cold commands blockable" `Quick test_rkv_cold_commands_blockable;
    Alcotest.test_case "ltpd status page" `Quick test_ltpd_status_page;
    Alcotest.test_case "ltpd directory listing" `Quick test_ltpd_dirlist;
    Alcotest.test_case "ltpd cgi" `Quick test_ltpd_cgi;
    Alcotest.test_case "ltpd conditional GET (304)" `Quick test_ltpd_conditional_get;
    Alcotest.test_case "ltpd range request (206)" `Quick test_ltpd_range_request;
    Alcotest.test_case "ltpd rewrite rule" `Quick test_ltpd_rewrite_rule;
    Alcotest.test_case "ltpd proxy without upstream" `Quick test_ltpd_proxy_no_upstream;
    Alcotest.test_case "ngx /api proxy" `Quick test_ngx_api_proxy;
    Alcotest.test_case "ngx fastcgi" `Quick test_ngx_fastcgi;
    Alcotest.test_case "ngx TLS hello" `Quick test_ngx_tls_hello;
    Alcotest.test_case "ngx MKCOL/PROPFIND" `Quick test_ngx_mkcol_propfind;
  ]
