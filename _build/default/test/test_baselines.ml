(** Tests for the RAZOR- and Chisel-like static debloaters, including the
    behavioural contrast with DynaCut that motivates the paper: a static
    cut cannot give a removed feature back. *)

let libc = Test_machine.libc

let coverage_of (requests : string list) : Covgraph.t =
  let cfg_of = Common.cfg_of_app Workload.rkv in
  let init, serving =
    Workload.trace_requests ~app:Workload.rkv ~requests ~nudge_at_ready:true ()
  in
  Covgraph.normalize ~cfg_of
    (Covgraph.of_logs (Option.to_list init @ [ serving ]))

let rkv_exe () = Common.app_exe Workload.rkv

let test_razor_keeps_covered () =
  let exe = rkv_exe () in
  let cov = coverage_of Workload.kv_wanted in
  let debloated, stats = Razor.debloat ~level:Razor.L0 exe ~coverage:cov in
  Alcotest.(check bool) "removed some" true (stats.Razor.s_removed > 0);
  Alcotest.(check bool) "kept some" true (stats.Razor.s_kept > 0);
  (* every covered block's first byte is NOT an int3 in the output *)
  let text = Option.get (Self.find_section debloated ".text") in
  List.iter
    (fun (b : Covgraph.block) ->
      if b.Covgraph.b_module = "rkv" && b.Covgraph.b_off >= text.Self.sec_off
         && b.Covgraph.b_off < text.Self.sec_off + Bytes.length text.Self.sec_data
      then
        let byte = Char.code (Bytes.get text.Self.sec_data (b.Covgraph.b_off - text.Self.sec_off)) in
        if byte = 0xCC then Alcotest.failf "covered block 0x%x was removed" b.Covgraph.b_off)
    (Covgraph.blocks cov)

let test_razor_levels_monotone () =
  let exe = rkv_exe () in
  let cov = coverage_of Workload.kv_wanted in
  let kept level =
    let _, s = Razor.debloat ~level exe ~coverage:cov in
    s.Razor.s_kept
  in
  let k0 = kept Razor.L0 and k1 = kept Razor.L1 and k2 = kept Razor.L2 in
  Alcotest.(check bool) "L0 <= L1 <= L2" true (k0 <= k1 && k1 <= k2)

let test_chisel_more_aggressive_than_razor () =
  let exe = rkv_exe () in
  let cov = coverage_of Workload.kv_wanted in
  let _, rz = Razor.debloat ~level:Razor.L1 exe ~coverage:cov in
  let ch = Chisel.debloat exe ~coverage:cov ~oracle:Chisel.no_oracle in
  Alcotest.(check bool) "chisel keeps fewer blocks" true
    (ch.Chisel.c_stats.Razor.s_kept <= rz.Razor.s_kept)

let run_debloated (debloated : Self.t) (requests : string list) =
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "rkv" debloated;
  Vfs.add m.Machine.fs "/etc/rkv.conf" Rkv.config;
  Vfs.add m.Machine.fs "/data/dump.rdb" Rkv.rdb;
  let p = Machine.spawn m ~exe_path:"rkv" () in
  let (_ : _) = Machine.run m ~max_cycles:10_000_000 in
  let replies =
    List.map
      (fun r ->
        if not (Proc.is_live p) then "<dead>"
        else begin
          let c = Net.connect m.Machine.net Rkv.port in
          Net.client_send c r;
          let (_ : _) = Machine.run m ~max_cycles:3_000_000 in
          Net.client_recv c
        end)
      requests
  in
  (replies, p.Proc.state)

let test_debloated_binary_serves_trained_workload () =
  let exe = rkv_exe () in
  (* train on the full boot + wanted mix *)
  let cov = coverage_of Workload.kv_wanted in
  let debloated, _ = Razor.debloat ~level:Razor.L1 exe ~coverage:cov in
  let replies, st = run_debloated debloated [ "PING\n"; "GET greeting\n" ] in
  Alcotest.(check (list string)) "served" [ "+PONG"; "$hello" ] replies;
  Alcotest.(check bool) "alive" true (match st with Proc.Runnable | Proc.Blocked _ -> true | _ -> false)

let test_static_cut_kills_untrained_feature_forever () =
  (* the motivating contrast: RAZOR trained without SET terminates the
     process when SET arrives, and there is no way back *)
  let exe = rkv_exe () in
  let cov = coverage_of Workload.kv_wanted (* no SET anywhere *) in
  let debloated, _ = Razor.debloat ~level:Razor.L0 exe ~coverage:cov in
  let replies, st = run_debloated debloated [ "GET greeting\n"; "SET a 1\n"; "PING\n" ] in
  (match replies with
  | [ "$hello"; _; last ] ->
      Alcotest.(check string) "dead after SET" "<dead>" last
  | _ -> Alcotest.failf "unexpected replies: %s" (String.concat "|" replies));
  match st with
  | Proc.Killed s -> Alcotest.(check int) "SIGTRAP" Abi.sigtrap s
  | st -> Alcotest.failf "expected kill, got %s" (Proc.state_to_string st)

let test_chisel_oracle_repair () =
  let exe = rkv_exe () in
  let cov = coverage_of [ "PING\n" ] in
  (* an oracle that insists the GET path must stay *)
  let get_cov = coverage_of [ "GET greeting\n" ] in
  let missing = ref (Covgraph.diff get_cov cov) in
  let oracle (_ : Self.t) =
    match !missing with
    | [] -> Ok ()
    | blocks ->
        missing := [];
        Error blocks
  in
  let r = Chisel.debloat exe ~coverage:cov ~oracle in
  Alcotest.(check int) "one repair round" 1 r.Chisel.c_iterations;
  let replies, _ = run_debloated r.Chisel.c_binary [ "GET greeting\n" ] in
  Alcotest.(check (list string)) "repaired GET works" [ "$hello" ] replies

let suite =
  [
    Alcotest.test_case "razor keeps covered blocks" `Quick test_razor_keeps_covered;
    Alcotest.test_case "razor zL levels monotone" `Quick test_razor_levels_monotone;
    Alcotest.test_case "chisel more aggressive" `Quick test_chisel_more_aggressive_than_razor;
    Alcotest.test_case "debloated binary serves" `Quick test_debloated_binary_serves_trained_workload;
    Alcotest.test_case "static cut is forever (vs DynaCut)" `Quick
      test_static_cut_kills_untrained_feature_forever;
    Alcotest.test_case "chisel oracle repair loop" `Quick test_chisel_oracle_repair;
  ]
