test/test_apps.ml: Abi Alcotest Checkpoint Images List Machine Printf Proc Spec String Workload
