test/test_isa.ml: Alcotest Asm Bytes Char Decode Encode Insn Int64 Link List QCheck QCheck_alcotest Reg Self
