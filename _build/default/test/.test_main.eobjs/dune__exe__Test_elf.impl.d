test/test_elf.ml: Alcotest Asm Bytes Cfg Crt0 Insn Int64 Link List Loader Machine Option Printf QCheck QCheck_alcotest Reg Self Spec String Test_core Test_machine Vfs Workload
