test/test_apps_cold.ml: Abi Alcotest Common Dynacut List Machine Proc String Vfs Workload
