test/test_tracer.ml: Alcotest Ast Collector Covgraph Crt0 Drcov Dsl Int64 List Machine Net Option Printf Proc QCheck QCheck_alcotest Self Test_core Test_machine Vfs
