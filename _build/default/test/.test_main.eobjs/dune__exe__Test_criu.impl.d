test/test_criu.ml: Alcotest Array Bytes Bytesx Checkpoint Crit Crt0 Dsl Images Int64 List Machine Mem Net Option Printf Proc Restore Self String Test_machine Vfs
