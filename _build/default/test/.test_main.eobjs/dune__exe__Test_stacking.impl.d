test/test_stacking.ml: Alcotest Common Dynacut List Machine Printf Proc String Workload
