test/test_baselines.ml: Abi Alcotest Bytes Char Chisel Common Covgraph List Machine Net Option Proc Razor Rkv Self String Test_machine Vfs Workload
