test/test_experiments.ml: Alcotest Array Common Covgraph Fig2 Fig4 Fig8 Format List Printf Spec String Timeline Workload
