test/test_guestlib.ml: Alcotest Bytes Checkpoint Handler Images Inject Int64 List Loader Machine Option Rewriter Self Test_machine Workload
