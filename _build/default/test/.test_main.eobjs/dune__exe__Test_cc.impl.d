test/test_cc.ml: Alcotest Ast Compile Crt0 Dsl Hashtbl Int64 Machine Mem Option Proc QCheck QCheck_alcotest Self Test_machine Vfs
