test/test_core.ml: Abi Alcotest Cfg Collector Covgraph Crt0 Drcov Dsl Dynacut Handler Int64 List Machine Mem Net Option Printf Proc Self Test_machine Tracediff Vfs
