test/test_seccomp.ml: Abi Alcotest Checkpoint Common Crit Crt0 Dsl Dynacut Images List Machine Proc Reg Restore Sexpr Test_machine Vfs Workload
