test/test_machine_edges.ml: Abi Alcotest Asm Compile Crt0 Dsl Insn Int64 Link List Machine Mem Net Option Proc Reg Self Test_machine Vfs
