test/test_machine.ml: Abi Alcotest Asm Ast Compile Crt0 Dsl Insn Int64 Libc Link List Machine Mem Net Proc QCheck QCheck_alcotest Reg Self Vfs
