test/test_extensions.ml: Abi Alcotest Array Autophase Common Covgraph Crt0 Drcov Dynacut Funcbounds List Machine Net Option Printf Proc Self Spec String Test_core Test_machine Tracediff Vfs Workload
