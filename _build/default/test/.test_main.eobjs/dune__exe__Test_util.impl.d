test/test_util.ml: Alcotest Bytesx Int64 List Option QCheck QCheck_alcotest Rng Sexpr Stats String Table
