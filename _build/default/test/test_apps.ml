(** Guest application tests: the servers serve, the SPEC kernels compute,
    and the planted CVEs are really exploitable on the vanilla binaries. *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains sub str =
  let n = String.length sub and m = String.length str in
  let rec go i = i + n <= m && (String.sub str i n = sub || go (i + 1)) in
  go 0

let check_contains what sub str =
  if not (contains sub str) then Alcotest.failf "%s: %S not in %S" what sub str

(* ---------- ltpd ---------- *)

let test_ltpd_get_and_404 () =
  let c = Workload.spawn Workload.ltpd in
  Workload.wait_ready c;
  let r = Workload.rpc c (Workload.http_get "/index.html") in
  check_contains "status" "200 OK" r;
  check_contains "body" "hello from ltpd" r;
  let r = Workload.rpc c (Workload.http_get "/nope.html") in
  check_contains "404" "404 Not Found" r

let test_ltpd_methods () =
  let c = Workload.spawn Workload.ltpd in
  Workload.wait_ready c;
  check_contains "head" "200 OK" (Workload.rpc c (Workload.http_head "/index.html"));
  check_contains "post echoes" "a=1&b=2" (Workload.rpc c (Workload.http_post "/x" "a=1&b=2"));
  check_contains "options" "Allow:" (Workload.rpc c "OPTIONS / HTTP/1.0\r\n\r\n");
  check_contains "unknown method" "403" (Workload.rpc c "BREW /pot HTTP/1.0\r\n\r\n")

let test_ltpd_webdav_put_get_delete () =
  let c = Workload.spawn Workload.ltpd in
  Workload.wait_ready c;
  check_contains "put" "201 Created"
    (Workload.rpc c (Workload.http_put "/up.txt" "uploaded-content"));
  check_contains "get upload" "uploaded-content"
    (Workload.rpc c (Workload.http_get "/up.txt"));
  check_contains "delete" "204" (Workload.rpc c (Workload.http_delete "/up.txt"));
  check_contains "gone" "404" (Workload.rpc c (Workload.http_get "/up.txt"))

let test_ltpd_config_parsed () =
  let c = Workload.spawn Workload.ltpd in
  Workload.wait_ready c;
  (* docroot comes from the config file; serving works only if parsing
     worked *)
  check_contains "css" "color: black" (Workload.rpc c (Workload.http_get "/style.css"))

(* ---------- ngx ---------- *)

let test_ngx_master_worker () =
  let c = Workload.spawn Workload.ngx in
  Workload.wait_ready c;
  let procs = Machine.all_procs c.Workload.m in
  Alcotest.(check int) "master + worker" 2 (List.length procs);
  check_contains "get via worker" "hello from ltpd"
    (Workload.rpc c (Workload.http_get "/index.html"));
  check_contains "dav put" "201" (Workload.rpc c (Workload.http_put "/d.txt" "dav-data"));
  check_contains "dav get" "dav-data" (Workload.rpc c (Workload.http_get "/d.txt"));
  check_contains "dav delete" "204" (Workload.rpc c (Workload.http_delete "/d.txt"));
  check_contains "unknown" "403" (Workload.rpc c "BREW / HTTP/1.0\r\n\r\n")

(* ---------- rkv ---------- *)

let test_rkv_commands () =
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  Alcotest.(check string) "ping" "+PONG" (Workload.rpc c "PING\n");
  Alcotest.(check string) "get rdb key" "$hello" (Workload.rpc c "GET greeting\n");
  Alcotest.(check string) "set" "+OK" (Workload.rpc c "SET k1 v1\n");
  Alcotest.(check string) "get" "$v1" (Workload.rpc c "GET k1\n");
  Alcotest.(check string) "missing" "$-1" (Workload.rpc c "GET nope\n");
  Alcotest.(check string) "incr" ":42" (Workload.rpc c "INCR counter\n");
  Alcotest.(check string) "exists" ":1" (Workload.rpc c "EXISTS k1\n");
  Alcotest.(check string) "del" ":1" (Workload.rpc c "DEL k1\n");
  Alcotest.(check string) "exists after del" ":0" (Workload.rpc c "EXISTS k1\n");
  Alcotest.(check string) "append" ":8" (Workload.rpc c "APPEND color -red\n");
  Alcotest.(check string) "echo" "hi" (Workload.rpc c "ECHO hi\n");
  Alcotest.(check string) "unknown" "-ERR unknown command" (Workload.rpc c "BOGUS\n");
  check_contains "info" "canary=ok" (Workload.rpc c "INFO\n")

let test_rkv_setrange_benign_and_overflow () =
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  (* benign use *)
  Alcotest.(check string) "benign setrange" ":4" (Workload.rpc c "SETRANGE greeting 2 xy\n");
  Alcotest.(check string) "patched" "$hexyo" (Workload.rpc c "GET greeting\n");
  (* CVE-2019-10192 emulation: oversized offset clobbers the next slot *)
  let (_ : string) = Workload.rpc c "SETRANGE greeting 70 JUNKJUNK\n" in
  Alcotest.(check bool) "server survived the silent corruption" true
    (Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid));
  (* a huge offset crashes the server outright *)
  let (_ : string) = Workload.rpc c "SETRANGE greeting 999999 X\n" in
  match (Machine.proc_exn c.Workload.m c.Workload.pid).Proc.state with
  | Proc.Killed s -> Alcotest.(check int) "SIGSEGV" Abi.sigsegv s
  | st -> Alcotest.failf "expected crash, got %s" (Proc.state_to_string st)

let test_rkv_stralgo_benign_and_overflow () =
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  (* LCS("abcd","abd") = 3 *)
  Alcotest.(check string) "benign stralgo" ":3" (Workload.rpc c "STRALGO abcd abd\n");
  (* CVE-2021-32625 emulation: a 16-char first argument walks row 16 of
     the 16x16 matrix — outside it — and row offset (16*16+4)*8 lands
     exactly on the heap canary *)
  let (_ : string) =
    Workload.rpc c (Printf.sprintf "STRALGO %s %s\n" (String.make 16 'a') "aaaa")
  in
  check_contains "canary corrupted" "canary=CORRUPTED" (Workload.rpc c "INFO\n");
  (* and much longer inputs crash the server outright *)
  let vlong = String.make 60 'b' in
  let (_ : string) = Workload.rpc c (Printf.sprintf "STRALGO %s %s\n" vlong vlong) in
  match (Machine.proc_exn c.Workload.m c.Workload.pid).Proc.state with
  | Proc.Killed s -> Alcotest.(check int) "SIGSEGV" Abi.sigsegv s
  | st -> Alcotest.failf "expected crash, got %s" (Proc.state_to_string st)

let test_rkv_config_overflow () =
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  Alcotest.(check string) "benign config" "+OK" (Workload.rpc c "CONFIG SET small\n");
  check_contains "ok canary" "canary=ok" (Workload.rpc c "INFO\n");
  (* CVE-2016-8339 emulation: a 40-byte value overflows config_param,
     the admin token, and the canary *)
  let (_ : string) = Workload.rpc c ("CONFIG SET " ^ String.make 40 'Z' ^ "\n") in
  check_contains "corrupted" "canary=CORRUPTED" (Workload.rpc c "INFO\n")

(* ---------- SPEC kernels ---------- *)

let spec_result_line (c : Workload.ctx) =
  Workload.console c

let test_spec_kernels_run () =
  List.iter
    (fun (k : Spec.kernel) ->
      let c = Workload.spawn (Workload.spec_app k) in
      Workload.wait_ready c;
      (match Workload.run_to_exit c with
      | Proc.Exited 0 -> ()
      | st ->
          Alcotest.failf "%s ended with %s (console: %s)" k.Spec.k_name
            (Proc.state_to_string st) (spec_result_line c));
      check_contains k.Spec.k_name "result" (spec_result_line c))
    Spec.all

let test_spec_deterministic () =
  let run () =
    let c = Workload.spawn (Workload.spec_app Spec.leela) in
    Workload.wait_ready c;
    let (_ : Proc.state) = Workload.run_to_exit c in
    spec_result_line c
  in
  Alcotest.(check string) "same output across runs" (run ()) (run ())

let test_spec_image_size_ordering () =
  (* the paper's Figure 7 table: mcf has by far the smallest image,
     omnetpp the largest of the suite (we keep the ordering at 1/100
     scale) *)
  let size k =
    let c = Workload.spawn (Workload.spec_app k) in
    Workload.wait_ready c;
    Machine.freeze c.Workload.m ~pid:c.Workload.pid;
    let img = Checkpoint.dump c.Workload.m ~pid:c.Workload.pid () in
    Images.image_size img
  in
  let mcf = size Spec.mcf
  and perl = size Spec.perlbench
  and omnet = size Spec.omnetpp in
  Alcotest.(check bool) "mcf smallest" true (mcf < perl && mcf < omnet);
  Alcotest.(check bool) "omnetpp largest" true (omnet > perl)

let test_web_wanted_traffic_ok () =
  (* every wanted request gets an HTTP response (no hangs, no crashes) *)
  let c = Workload.spawn Workload.ltpd in
  Workload.wait_ready c;
  List.iter
    (fun r ->
      let resp = Workload.rpc c r in
      Alcotest.(check bool)
        (Printf.sprintf "response to %S" (String.sub r 0 (min 12 (String.length r))))
        true
        (starts_with ~prefix:"HTTP/1.0 " resp))
    (Workload.web_wanted @ Workload.web_undesired)

let suite =
  [
    Alcotest.test_case "ltpd GET + 404" `Quick test_ltpd_get_and_404;
    Alcotest.test_case "ltpd methods" `Quick test_ltpd_methods;
    Alcotest.test_case "ltpd WebDAV PUT/GET/DELETE" `Quick test_ltpd_webdav_put_get_delete;
    Alcotest.test_case "ltpd config parsing" `Quick test_ltpd_config_parsed;
    Alcotest.test_case "ngx master/worker serving" `Quick test_ngx_master_worker;
    Alcotest.test_case "rkv command set" `Quick test_rkv_commands;
    Alcotest.test_case "rkv SETRANGE overflow (CVE-2019-10192)" `Quick
      test_rkv_setrange_benign_and_overflow;
    Alcotest.test_case "rkv STRALGO overflow (CVE-2021-32625)" `Quick
      test_rkv_stralgo_benign_and_overflow;
    Alcotest.test_case "rkv CONFIG overflow (CVE-2016-8339)" `Quick test_rkv_config_overflow;
    Alcotest.test_case "SPEC kernels run to completion" `Slow test_spec_kernels_run;
    Alcotest.test_case "SPEC deterministic" `Quick test_spec_deterministic;
    Alcotest.test_case "SPEC image size ordering" `Slow test_spec_image_size_ordering;
    Alcotest.test_case "web traffic mix served" `Quick test_web_wanted_traffic_ok;
  ]
