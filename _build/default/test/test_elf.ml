(** Tests for the SELF object format, linker, loader, CFG recovery. *)

let libc = Test_machine.libc

(* ---------- serialization ---------- *)

let gen_prot = QCheck.Gen.(map Self.prot_of_int (int_range 0 7))

let gen_section =
  QCheck.Gen.(
    map3
      (fun name off data ->
        {
          Self.sec_name = "." ^ name;
          sec_off = off * 4096;
          sec_data = Bytes.of_string data;
          sec_prot = Self.prot_rw;
        })
      (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))
      (int_range 0 64) (string_size (int_range 0 200)))

let gen_self : Self.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* sections = list_size (int_range 0 4) gen_section in
  let* prot = gen_prot in
  ignore prot;
  let* name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let* nsym = int_range 0 5 in
  let symbols =
    List.init nsym (fun k ->
        {
          Self.sym_name = Printf.sprintf "s%d" k;
          sym_off = k * 16;
          sym_size = k;
          sym_kind = (if k mod 2 = 0 then Self.Func else Self.Object);
          sym_global = k mod 3 = 0;
        })
  in
  let* ndr = int_range 0 3 in
  let dynrelocs =
    List.init ndr (fun k ->
        {
          Self.dr_off = k * 8;
          dr_target = (if k mod 2 = 0 then `Extern (Printf.sprintf "e%d" k) else `Local "s0");
          dr_addend = k;
        })
  in
  return
    {
      Self.name;
      kind = Self.Dyn;
      entry = 0;
      base = 0L;
      sections;
      symbols;
      dynrelocs;
      needed = [ "libc.so" ];
      plt = [ ("write", 64) ];
      got = [ ("write", 128) ];
    }

let prop_self_roundtrip =
  QCheck.Test.make ~name:"SELF to_bytes/of_bytes roundtrip" ~count:200
    (QCheck.make gen_self) (fun s ->
      let s' = Self.of_bytes (Self.to_bytes s) in
      Self.to_bytes s' = Self.to_bytes s)

let test_self_bad_magic () =
  Alcotest.check_raises "magic" (Self.Format_error "bad magic") (fun () ->
      ignore (Self.of_bytes "XELF\x01junkjunkjunkjunk"))

let test_prot_roundtrip () =
  for k = 0 to 7 do
    Alcotest.(check int) "prot" k (Self.prot_to_int (Self.prot_of_int k))
  done

(* ---------- linker ---------- *)

let simple_obj ?(extern_call = false) () =
  Asm.assemble ~name:"t"
    ([
       Asm.Global "main";
       Asm.Label "main";
       Asm.Ins (Insn.Mov_ri (Reg.Rax, 0L));
     ]
    @ (if extern_call then [ Asm.Call_sym "write" ] else [])
    @ [
        Asm.Ins Insn.Ret;
        Asm.Section ".data";
        Asm.Global "g";
        Asm.Label "g";
        Asm.Word64 99L;
        Asm.Addr64 ("g", 0);
      ])

let test_link_exec_layout () =
  let self = Link.link_exec ~name:"t" ~entry:"main" ~libs:[] (simple_obj ()) in
  (* sections page aligned and non-overlapping *)
  let offs = List.map (fun (s : Self.section) -> s.Self.sec_off) self.Self.sections in
  List.iter (fun o -> Alcotest.(check int) "aligned" 0 (o mod 4096)) offs;
  Alcotest.(check bool) "sorted+disjoint" true
    (List.sort_uniq compare offs = offs);
  (* entry resolves to main *)
  let main = Option.get (Self.find_symbol self "main") in
  Alcotest.(check int) "entry" main.Self.sym_off self.Self.entry

let test_link_abs64_in_exec_is_static () =
  let self = Link.link_exec ~name:"t" ~entry:"main" ~libs:[] (simple_obj ()) in
  (* the Addr64(g) word should hold base + g offset, and no dynrelocs *)
  Alcotest.(check int) "no dynrelocs" 0 (List.length self.Self.dynrelocs);
  let data = Option.get (Self.find_section self ".data") in
  let g = Option.get (Self.find_symbol self "g") in
  let v = Bytes.get_int64_le data.Self.sec_data 8 in
  Alcotest.(check int64) "points at g" (Int64.add self.Self.base (Int64.of_int g.Self.sym_off)) v

let test_link_shared_abs64_is_dynreloc () =
  let self = Link.link_shared ~name:"t.so" (simple_obj ()) in
  Alcotest.(check int) "one local dynreloc" 1 (List.length self.Self.dynrelocs);
  match (List.hd self.Self.dynrelocs).Self.dr_target with
  | `Local "g" -> ()
  | _ -> Alcotest.fail "expected local reloc to g"

let test_link_plt_generation () =
  let self = Link.link_exec ~name:"t" ~entry:"main" ~libs:[ libc ] (simple_obj ~extern_call:true ()) in
  Alcotest.(check int) "one PLT entry" 1 (List.length self.Self.plt);
  Alcotest.(check int) "one GOT slot" 1 (List.length self.Self.got);
  Alcotest.(check (list string)) "needs libc" [ "libc.so" ] self.Self.needed;
  (* the GOT slot has an extern dynreloc for write *)
  Alcotest.(check bool) "extern reloc" true
    (List.exists
       (fun (r : Self.dynreloc) -> r.Self.dr_target = `Extern "write")
       self.Self.dynrelocs)

let test_link_undefined_symbol_fails () =
  match Link.link_exec ~name:"t" ~entry:"main" ~libs:[] (simple_obj ~extern_call:true ()) with
  | exception Link.Link_error msg ->
      Alcotest.(check bool) "mentions write" true
        (String.length msg > 0
        &&
        let sub = "write" and n = String.length msg in
        let sl = String.length sub in
        let rec go i = i + sl <= n && (String.sub msg i sl = sub || go (i + 1)) in
        go 0)
  | _ -> Alcotest.fail "expected Link_error"

(* ---------- loader ---------- *)

let test_loader_got_binding () =
  let self = Link.link_exec ~name:"t" ~entry:"main" ~libs:[ libc ] (simple_obj ~extern_call:true ()) in
  let img = Loader.load ~libs:[ libc ] self in
  (* find the libc module base *)
  let libc_mod =
    List.find (fun (m : Loader.loaded_module) -> m.Loader.lm_name = "libc.so") img.Loader.img_modules
  in
  let write_sym = Option.get (Self.find_symbol libc "write") in
  let expected = Int64.add libc_mod.Loader.lm_base (Int64.of_int write_sym.Self.sym_off) in
  (* read the GOT slot from the mapped bytes *)
  let got_off = List.assoc "write" self.Self.got in
  let got_map =
    List.find
      (fun (m : Loader.mapping) ->
        m.Loader.map_module = "t" && m.Loader.map_section = ".got")
      img.Loader.img_mappings
  in
  let v =
    Bytes.get_int64_le got_map.Loader.map_data
      (got_off - Int64.to_int (Int64.sub got_map.Loader.map_vaddr self.Self.base))
  in
  Alcotest.(check int64) "GOT bound to libc write" expected v

let test_loader_missing_lib_fails () =
  let self = Link.link_exec ~name:"t" ~entry:"main" ~libs:[ libc ] (simple_obj ~extern_call:true ()) in
  Alcotest.check_raises "missing" (Loader.Load_error "needed library not found: libc.so")
    (fun () -> ignore (Loader.load ~libs:[] self))

let test_relocate_local_uses_base () =
  let so = Link.link_shared ~name:"t.so" (simple_obj ()) in
  let base = 0x5000_0000L in
  let mods = [ { Loader.lm_name = "t.so"; lm_base = base; lm_self = so } ] in
  let patched = Loader.relocate so ~base ~mods in
  let g = Option.get (Self.find_symbol so "g") in
  let v = Bytes.get_int64_le (List.assoc ".data" patched) 8 in
  Alcotest.(check int64) "base + st_value" (Int64.add base (Int64.of_int g.Self.sym_off)) v

(* ---------- cfg ---------- *)

let test_cfg_splits_at_branch_target () =
  let obj =
    Asm.assemble ~name:"t"
      [
        Asm.Global "main";
        Asm.Label "main";
        Asm.Ins (Insn.Mov_ri (Reg.Rax, 1L));
        Asm.Label "loop";
        Asm.Ins (Insn.Add_ri (Reg.Rax, 1));
        Asm.Ins (Insn.Cmp_ri (Reg.Rax, 10));
        Asm.Jcc_sym (Insn.Lt, "loop");
        Asm.Ins Insn.Ret;
      ]
  in
  let self = Link.link_exec ~name:"t" ~entry:"main" ~libs:[] obj in
  let cfg = Cfg.of_self self in
  let blocks = Cfg.real_blocks cfg in
  (* main (mov), loop body (add/cmp/jcc), ret *)
  Alcotest.(check int) "three blocks" 3 (List.length blocks);
  Alcotest.(check bool) "edge back to loop" true
    (List.exists (fun (_, t) -> t = 10) cfg.Cfg.cfg_edges)

let test_cfg_block_containing () =
  let exe = Crt0.link_app ~libc Test_core.dispatch_server in
  let cfg = Cfg.of_self exe in
  List.iter
    (fun (b : Cfg.block) ->
      if b.Cfg.bb_size > 0 then begin
        match Cfg.block_containing cfg (b.Cfg.bb_off + (b.Cfg.bb_size / 2)) with
        | Some b' -> Alcotest.(check int) "same block" b.Cfg.bb_off b'.Cfg.bb_off
        | None -> Alcotest.failf "no block containing 0x%x" b.Cfg.bb_off
      end)
    (Cfg.real_blocks cfg)

let test_cfg_counts_plausible () =
  List.iter
    (fun (k : Spec.kernel) ->
      let c = Workload.spawn (Workload.spec_app k) in
      let exe = Option.get (Vfs.find_self c.Workload.m.Machine.fs k.Spec.k_name) in
      let n = Cfg.block_count (Cfg.of_self exe) in
      Alcotest.(check bool) (k.Spec.k_name ^ " nonzero blocks") true (n > 10))
    Spec.all

let suite =
  [
    QCheck_alcotest.to_alcotest prop_self_roundtrip;
    Alcotest.test_case "bad magic rejected" `Quick test_self_bad_magic;
    Alcotest.test_case "prot roundtrip" `Quick test_prot_roundtrip;
    Alcotest.test_case "exec layout" `Quick test_link_exec_layout;
    Alcotest.test_case "abs64 static in exec" `Quick test_link_abs64_in_exec_is_static;
    Alcotest.test_case "abs64 dynreloc in .so" `Quick test_link_shared_abs64_is_dynreloc;
    Alcotest.test_case "PLT/GOT generation" `Quick test_link_plt_generation;
    Alcotest.test_case "undefined symbol error" `Quick test_link_undefined_symbol_fails;
    Alcotest.test_case "loader binds GOT eagerly" `Quick test_loader_got_binding;
    Alcotest.test_case "loader missing lib" `Quick test_loader_missing_lib_fails;
    Alcotest.test_case "relocate local = base+st_value" `Quick test_relocate_local_uses_base;
    Alcotest.test_case "cfg splits at branch targets" `Quick test_cfg_splits_at_branch_target;
    Alcotest.test_case "cfg block_containing" `Quick test_cfg_block_containing;
    Alcotest.test_case "cfg on all SPEC binaries" `Quick test_cfg_counts_plausible;
  ]
