(** Unit + property tests for the vx86 ISA: encode/decode roundtrip,
    lengths, int3 semantics, assembler layout. *)

let check = Alcotest.check
let int_t = Alcotest.int

(* -- generators -- *)

let gen_reg = QCheck.Gen.(map Reg.of_int (int_range 0 15))

let gen_cond =
  QCheck.Gen.(map Insn.cond_of_int (int_range 0 9))

let gen_insn : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Insn in
  let i32 = int_range (-0x8000_0000) 0x7fff_ffff in
  let sh = int_range 0 63 in
  oneof
    [
      return Nop;
      return Int3;
      return Hlt;
      return Ret;
      return Syscall;
      map2 (fun a b -> Mov_rr (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Mov_ri (a, b)) gen_reg (map Int64.of_int int);
      map3 (fun a b c -> Load (a, b, c)) gen_reg gen_reg i32;
      map3 (fun a b c -> Store (a, c, b)) gen_reg gen_reg i32;
      map3 (fun a b c -> Load8 (a, b, c)) gen_reg gen_reg i32;
      map3 (fun a b c -> Store8 (a, c, b)) gen_reg gen_reg i32;
      map2 (fun a b -> Add_rr (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Add_ri (a, b)) gen_reg i32;
      map2 (fun a b -> Sub_rr (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Sub_ri (a, b)) gen_reg i32;
      map2 (fun a b -> Imul_rr (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Idiv_rr (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Imod_rr (a, b)) gen_reg gen_reg;
      map2 (fun a b -> And_rr (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Or_rr (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Xor_rr (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Shl_ri (a, b)) gen_reg sh;
      map2 (fun a b -> Shr_ri (a, b)) gen_reg sh;
      map2 (fun a b -> Sar_ri (a, b)) gen_reg sh;
      map2 (fun a b -> Shl_rr (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Shr_rr (a, b)) gen_reg gen_reg;
      map (fun a -> Neg a) gen_reg;
      map (fun a -> Not a) gen_reg;
      map2 (fun a b -> Cmp_rr (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Cmp_ri (a, b)) gen_reg i32;
      map2 (fun a b -> Test_rr (a, b)) gen_reg gen_reg;
      map (fun d -> Jmp d) i32;
      map2 (fun c d -> Jcc (c, d)) gen_cond i32;
      map (fun d -> Call d) i32;
      map (fun r -> Call_r r) gen_reg;
      map (fun r -> Jmp_r r) gen_reg;
      map (fun r -> Push r) gen_reg;
      map (fun r -> Pop r) gen_reg;
      map2 (fun a b -> Lea (a, b)) gen_reg i32;
    ]

let arb_insn = QCheck.make ~print:Insn.to_string gen_insn

(* -- properties -- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:2000 arb_insn (fun i ->
      let b = Encode.to_bytes i in
      let i', len = Decode.decode_at b 0 in
      i' = i && len = Bytes.length b)

let prop_length =
  QCheck.Test.make ~name:"Insn.length matches encoding" ~count:2000 arb_insn
    (fun i -> Bytes.length (Encode.to_bytes i) = Insn.length i)

let prop_program_stream =
  QCheck.Test.make ~name:"instruction streams decode back"
    ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) gen_insn))
    (fun insns ->
      let b = Encode.program insns in
      let decoded, bad = Decode.disassemble b in
      bad = None && List.map (fun (_, i, _) -> i) decoded = insns)

(* -- unit tests -- *)

let test_int3_is_single_cc () =
  let b = Encode.to_bytes Insn.Int3 in
  check int_t "one byte" 1 (Bytes.length b);
  check int_t "0xCC" 0xCC (Char.code (Bytes.get b 0))

let test_nop_is_90 () =
  let b = Encode.to_bytes Insn.Nop in
  check int_t "0x90" 0x90 (Char.code (Bytes.get b 0))

let test_wiped_region_decodes_as_traps () =
  (* a region wiped with 0xCC must decode as int3 at EVERY offset —
     the property that stops jump-into-block-middle reuse *)
  let buf = Bytes.make 64 '\xCC' in
  for off = 0 to 63 do
    let insn, len = Decode.decode_at buf off in
    check Alcotest.bool "is int3" true (insn = Insn.Int3 && len = 1)
  done

let test_cond_negate_involutive () =
  List.iter
    (fun c ->
      let c = Insn.cond_of_int c in
      Alcotest.(check bool)
        "negate twice" true
        (Insn.cond_negate (Insn.cond_negate c) = c))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let test_asm_rel32_branch () =
  (* forward and backward jumps through the assembler+linker *)
  let items =
    [
      Asm.Label "a";
      Asm.Ins (Insn.Mov_ri (Reg.Rax, 1L));
      Asm.Jmp_sym "c";
      Asm.Label "b";
      Asm.Ins (Insn.Mov_ri (Reg.Rax, 2L));
      Asm.Label "c";
      Asm.Jmp_sym "b";
    ]
  in
  let obj = Asm.assemble ~name:"t" items in
  let self = Link.link_exec ~name:"t" ~entry:"a" ~libs:[] obj in
  let text =
    match Self.find_section self ".text" with Some s -> s.Self.sec_data | None -> assert false
  in
  let insns, bad = Decode.disassemble text in
  Alcotest.(check bool) "decodes" true (bad = None);
  (* mov(10) jmp(5) mov(10) jmp(5) *)
  match insns with
  | [ (_, Insn.Mov_ri _, _); (10, Insn.Jmp 10, _); (_, Insn.Mov_ri _, _); (25, Insn.Jmp (-15), _) ] ->
      ()
  | _ -> Alcotest.failf "unexpected layout: %d insns" (List.length insns)

let test_asm_duplicate_label_rejected () =
  Alcotest.check_raises "duplicate"
    (Asm.Asm_error "t: duplicate label x")
    (fun () ->
      ignore (Asm.assemble ~name:"t" [ Asm.Label "x"; Asm.Label "x" ]))

let test_asm_alignment_nop_fill () =
  let obj =
    Asm.assemble ~name:"t"
      [ Asm.Ins Insn.Ret; Asm.Align 16; Asm.Label "f"; Asm.Ins Insn.Ret ]
  in
  let text = List.assoc ".text" obj.Asm.o_sections in
  check int_t "aligned size" 17 (Bytes.length text);
  for i = 1 to 15 do
    check int_t "nop fill" 0x90 (Char.code (Bytes.get text i))
  done

let test_undefined_symbols () =
  let obj = Asm.assemble ~name:"t" [ Asm.Call_sym "write"; Asm.Ins Insn.Ret ] in
  Alcotest.(check (list string)) "externs" [ "write" ] (Asm.undefined_symbols obj)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_length;
    QCheck_alcotest.to_alcotest prop_program_stream;
    Alcotest.test_case "int3 is 1-byte 0xCC" `Quick test_int3_is_single_cc;
    Alcotest.test_case "nop is 0x90" `Quick test_nop_is_90;
    Alcotest.test_case "wiped region decodes as traps" `Quick test_wiped_region_decodes_as_traps;
    Alcotest.test_case "cond_negate involutive" `Quick test_cond_negate_involutive;
    Alcotest.test_case "assembler resolves rel32 branches" `Quick test_asm_rel32_branch;
    Alcotest.test_case "duplicate labels rejected" `Quick test_asm_duplicate_label_rejected;
    Alcotest.test_case "align pads code with nop" `Quick test_asm_alignment_nop_fill;
    Alcotest.test_case "undefined symbol listing" `Quick test_undefined_symbols;
  ]
