(** Smoke tests for the experiments layer: the cheap experiments run end
    to end and their invariants hold (the expensive ones are exercised by
    [bench/main.exe], whose output is archived in bench_output.txt). *)

let null_fmt =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let test_timeline_math () =
  let tr =
    Timeline.make ~name:"t" ~total:200
      [
        { Timeline.ph_label = "a"; ph_time = 0.; ph_live = 100 };
        { Timeline.ph_label = "b"; ph_time = 1.; ph_live = 50 };
        { Timeline.ph_label = "c"; ph_time = 2.; ph_live = 0 };
      ]
  in
  Alcotest.(check (float 1e-9)) "max %" 50. (Timeline.max_live_percent tr);
  let flat = Timeline.flat ~name:"f" ~total:200 ~kept:80 ~times:[ 0.; 1. ] in
  Alcotest.(check (float 1e-9)) "flat %" 40. (Timeline.max_live_percent flat);
  Alcotest.(check int) "flat phases" 2 (List.length flat.Timeline.tr_phases)

let test_fig2_percentages_sum () =
  let r = Fig2.classify ~app:(Workload.spec_app Spec.mcf) in
  let total = r.Fig2.f2_pct_never +. r.Fig2.f2_pct_init +. r.Fig2.f2_pct_serving in
  Alcotest.(check bool)
    (Printf.sprintf "sums to ~100 (got %.1f)" total)
    true
    (abs_float (total -. 100.) < 0.5);
  Alcotest.(check bool) "cells exist" true (Array.length r.Fig2.f2_cells > 10)

let test_fig2_ltpd_has_all_three_classes () =
  let r = Fig2.classify ~app:Workload.ltpd in
  Alcotest.(check bool) "never-executed present" true (r.Fig2.f2_pct_never > 5.);
  Alcotest.(check bool) "init-only present" true (r.Fig2.f2_pct_init > 5.);
  Alcotest.(check bool) "serving present" true (r.Fig2.f2_pct_serving > 20.)

let test_fig4_finds_set_feature () =
  let r = Fig4.run null_fmt in
  Alcotest.(check bool) "found blocks" true (r.Fig4.f4_filtered > 5);
  Alcotest.(check bool) "filtering never adds" true (r.Fig4.f4_filtered <= r.Fig4.f4_raw);
  (* the core SET machinery must be named *)
  let syms = List.map snd r.Fig4.f4_blocks in
  let mentions prefix =
    List.exists
      (fun s -> String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix)
      syms
  in
  Alcotest.(check bool) "rkv_cmd_set listed" true (mentions "rkv_cmd_set" || mentions "rkv_feat_set");
  Alcotest.(check bool) "dispatcher edge listed" true (mentions "rkv_dispatch")

let test_common_feature_blocks_app_only () =
  (* the default tracediff filter drops library blocks *)
  List.iter
    (fun (b : Covgraph.block) ->
      Alcotest.(check bool) "not a .so" false (Covgraph.is_shared_library b.Covgraph.b_module))
    (Common.web_feature_blocks Workload.ltpd)

let test_common_init_blocks_include_libc () =
  (* init identification keeps library blocks (they are wiped too) *)
  let blocks, _, _ = Common.init_only_blocks Workload.ltpd in
  Alcotest.(check bool) "libc init code found" true
    (List.exists (fun (b : Covgraph.block) -> b.Covgraph.b_module = "libc.so") blocks)

let test_fig8_interrupt_model_monotone () =
  Alcotest.(check bool) "bigger images cost more" true
    (Fig8.interrupt_cycles ~image_bytes:1_000_000 > Fig8.interrupt_cycles ~image_bytes:100_000);
  Alcotest.(check bool) "within the paper's band for rkv-sized images" true
    (let c = Fig8.interrupt_cycles ~image_bytes:450_000 in
     c >= 400_000 && c <= 1_000_000)

let suite =
  [
    Alcotest.test_case "timeline math" `Quick test_timeline_math;
    Alcotest.test_case "fig2 percentages sum to 100" `Quick test_fig2_percentages_sum;
    Alcotest.test_case "fig2 ltpd three classes" `Quick test_fig2_ltpd_has_all_three_classes;
    Alcotest.test_case "fig4 finds the SET feature" `Quick test_fig4_finds_set_feature;
    Alcotest.test_case "feature blocks exclude libraries" `Quick test_common_feature_blocks_app_only;
    Alcotest.test_case "init blocks include libc" `Quick test_common_init_blocks_include_libc;
    Alcotest.test_case "fig8 interruption model" `Quick test_fig8_interrupt_model_monotone;
  ]
