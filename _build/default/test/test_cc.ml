(** MiniC compiler tests, including differential property testing: random
    expression/statement programs are compiled to vx86, executed on the
    machine, and checked against a reference OCaml evaluator. *)

open Dsl

let libc = Test_machine.libc

(* ---------- reference evaluator ---------- *)

exception Unsupported

let rec eval_expr (env : (string, int64) Hashtbl.t) (e : Ast.expr) : int64 =
  match e with
  | Ast.Int v -> v
  | Ast.Var n -> (
      match Hashtbl.find_opt env n with Some v -> v | None -> raise Unsupported)
  | Ast.Unop (Ast.Neg, a) -> Int64.neg (eval_expr env a)
  | Ast.Unop (Ast.Bitnot, a) -> Int64.lognot (eval_expr env a)
  | Ast.Unop (Ast.Lognot, a) -> if eval_expr env a = 0L then 1L else 0L
  | Ast.Binop (op, a, b) -> (
      let x = eval_expr env a in
      match op with
      | Ast.Land -> if x = 0L then 0L else if eval_expr env b <> 0L then 1L else 0L
      | Ast.Lor -> if x <> 0L then 1L else if eval_expr env b <> 0L then 1L else 0L
      | _ -> (
          let y = eval_expr env b in
          let bool_ c = if c then 1L else 0L in
          match op with
          | Ast.Add -> Int64.add x y
          | Ast.Sub -> Int64.sub x y
          | Ast.Mul -> Int64.mul x y
          | Ast.Div -> if y = 0L then raise Unsupported else Int64.div x y
          | Ast.Mod -> if y = 0L then raise Unsupported else Int64.rem x y
          | Ast.Band -> Int64.logand x y
          | Ast.Bor -> Int64.logor x y
          | Ast.Bxor -> Int64.logxor x y
          | Ast.Shl -> Int64.shift_left x (Int64.to_int y land 63)
          | Ast.Shr -> Int64.shift_right_logical x (Int64.to_int y land 63)
          | Ast.Lt -> bool_ (Int64.compare x y < 0)
          | Ast.Le -> bool_ (Int64.compare x y <= 0)
          | Ast.Gt -> bool_ (Int64.compare x y > 0)
          | Ast.Ge -> bool_ (Int64.compare x y >= 0)
          | Ast.Ult -> bool_ (Int64.unsigned_compare x y < 0)
          | Ast.Ugt -> bool_ (Int64.unsigned_compare x y > 0)
          | Ast.Eq -> bool_ (Int64.equal x y)
          | Ast.Ne -> bool_ (not (Int64.equal x y))
          | Ast.Land | Ast.Lor -> assert false))
  | _ -> raise Unsupported

let rec eval_stmts env (stmts : Ast.stmt list) : int64 option =
  match stmts with
  | [] -> None
  | s :: rest -> (
      match s with
      | Ast.Decl (n, e) | Ast.Assign (n, e) ->
          Hashtbl.replace env n (eval_expr env e);
          eval_stmts env rest
      | Ast.If (c, t, f) -> (
          match eval_stmts env (if eval_expr env c <> 0L then t else f) with
          | Some r -> Some r
          | None -> eval_stmts env rest)
      | Ast.While (c, body) ->
          let fuel = ref 10_000 in
          let result = ref None in
          while !result = None && eval_expr env c <> 0L && !fuel > 0 do
            decr fuel;
            result := eval_stmts env body
          done;
          if !fuel = 0 then raise Unsupported
          else (match !result with Some r -> Some r | None -> eval_stmts env rest)
      | Ast.Return e -> Some (eval_expr env e)
      | Ast.Expr e ->
          ignore (eval_expr env e);
          eval_stmts env rest
      | _ -> raise Unsupported)

(* ---------- generators ---------- *)

let var_names = [ "x"; "y"; "z" ]

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun v -> Ast.Int (Int64.of_int v)) (int_range (-1000) 1000);
        map (fun n -> Ast.Var n) (oneofl var_names);
      ]
  in
  let binops =
    [
      Ast.Add; Ast.Sub; Ast.Mul; Ast.Band; Ast.Bor; Ast.Bxor; Ast.Lt; Ast.Le;
      Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne; Ast.Ult; Ast.Ugt; Ast.Land; Ast.Lor;
      Ast.Div; Ast.Mod; Ast.Shl; Ast.Shr;
    ]
  in
  sized
    (fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [
               (1, leaf);
               ( 4,
                 let* op = oneofl binops in
                 let* a = self (n / 2) in
                 let* b = self (n / 2) in
                 (* keep div/mod/shift well-defined *)
                 match op with
                 | Ast.Div | Ast.Mod ->
                     let* d = int_range 1 64 in
                     return (Ast.Binop (op, a, Ast.Int (Int64.of_int d)))
                 | Ast.Shl | Ast.Shr ->
                     let* d = int_range 0 8 in
                     return (Ast.Binop (op, a, Ast.Int (Int64.of_int d)))
                 | _ -> return (Ast.Binop (op, a, b)) );
               (1, map (fun a -> Ast.Unop (Ast.Neg, a)) (self (n - 1)));
               (1, map (fun a -> Ast.Unop (Ast.Bitnot, a)) (self (n - 1)));
               (1, map (fun a -> Ast.Unop (Ast.Lognot, a)) (self (n - 1)));
             ]))

let gen_stmts : Ast.stmt list QCheck.Gen.t =
  let open QCheck.Gen in
  let assign =
    let* n = oneofl var_names in
    let* e = gen_expr in
    return (Ast.Assign (n, e))
  in
  let if_ =
    let* c = gen_expr in
    let* t = assign in
    let* f = assign in
    return (Ast.If (c, [ t ], [ f ]))
  in
  let bounded_loop =
    (* while (i < k) { body; i = i + 1 } with a fresh counter *)
    let* k = int_range 0 5 in
    let* body = assign in
    return
      (Ast.While
         ( Ast.Binop (Ast.Lt, Ast.Var "i", Ast.Int (Int64.of_int k)),
           [ body; Ast.Assign ("i", Ast.Binop (Ast.Add, Ast.Var "i", Ast.Int 1L)) ] ))
  in
  let* body = list_size (int_range 1 8) (frequency [ (4, assign); (2, if_); (1, bounded_loop) ]) in
  let* result = gen_expr in
  return
    ([ Ast.Decl ("x", Ast.Int 1L); Ast.Decl ("y", Ast.Int 2L); Ast.Decl ("z", Ast.Int 3L);
       Ast.Decl ("i", Ast.Int 0L) ]
    @ body
    @ [ Ast.Return result ])

(* ---------- running compiled programs ---------- *)

(** Compile main() = [stmts], run, return rax at exit via the exit code of
    a wrapper that masks to 8 bits (exit codes are small), plus the full
    64-bit value written to a result global. *)
let run_compiled (stmts : Ast.stmt list) : int64 =
  let u =
    unit_ "prop"
      ~globals:[ global_q "result" [ 0L ] ]
      [
        Ast.{ fname = "compute"; params = []; body = stmts };
        func "main" []
          [
            set "result" (call "compute" []);
            ret0;
          ];
      ]
  in
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  let exe = Crt0.link_app ~libc u in
  Vfs.add_self m.Machine.fs "prop" exe;
  let p = Machine.spawn m ~exe_path:"prop" () in
  (match Machine.run m ~max_cycles:30_000_000 with
  | `Dead -> ()
  | _ -> failwith "did not finish");
  (match p.Proc.state with
  | Proc.Exited 0 -> ()
  | st -> failwith (Proc.state_to_string st));
  let sym = Option.get (Self.find_symbol exe "result") in
  Mem.read64 p.Proc.mem (Int64.add exe.Self.base (Int64.of_int sym.Self.sym_off))

let reference (stmts : Ast.stmt list) : int64 option =
  let env = Hashtbl.create 8 in
  try eval_stmts env stmts with Unsupported -> None

let prop_expr_differential =
  QCheck.Test.make ~name:"compiled expressions match reference evaluator" ~count:150
    (QCheck.make gen_expr) (fun e ->
      let stmts =
        [ Ast.Decl ("x", Ast.Int 1L); Ast.Decl ("y", Ast.Int 2L); Ast.Decl ("z", Ast.Int 3L);
          Ast.Return e ]
      in
      match reference stmts with
      | None -> QCheck.assume_fail ()
      | Some expected -> run_compiled stmts = expected)

let prop_stmt_differential =
  QCheck.Test.make ~name:"compiled statements match reference evaluator" ~count:80
    (QCheck.make gen_stmts) (fun stmts ->
      match reference stmts with
      | None -> QCheck.assume_fail ()
      | Some expected -> run_compiled stmts = expected)

(* ---------- targeted unit tests ---------- *)

let check_prog expect stmts =
  Alcotest.(check int64) "result" expect (run_compiled stmts)

let test_short_circuit_effects () =
  (* && must not evaluate its rhs when lhs is false: the rhs here would
     divide by zero *)
  check_prog 0L
    [
      decl "a" (i 0);
      ret (v "a" &&: (i 1 /: v "a"));
    ]

let test_nested_calls () =
  let u =
    unit_ "nc"
      [
        func "add3" [ "a"; "b"; "c" ] [ ret (v "a" +: v "b" +: v "c") ];
        func "main" []
          [ ret (call "add3" [ call "add3" [ i 1; i 2; i 3 ]; i 10; call "add3" [ i 4; i 5; i 6 ] ] -: i 31) ];
      ]
  in
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "nc" (Crt0.link_app ~libc u);
  let p = Machine.spawn m ~exe_path:"nc" () in
  let (_ : _) = Machine.run m ~max_cycles:100_000 in
  Test_machine.check_exit p

let test_six_args () =
  let u =
    unit_ "sa"
      [
        func "sum6" [ "a"; "b"; "c"; "d"; "e"; "f" ]
          [ ret (v "a" +: v "b" +: v "c" +: v "d" +: v "e" +: v "f") ];
        func "main" [] [ ret (call "sum6" [ i 1; i 2; i 3; i 4; i 5; i 6 ] -: i 21) ];
      ]
  in
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "sa" (Crt0.link_app ~libc u);
  let p = Machine.spawn m ~exe_path:"sa" () in
  let (_ : _) = Machine.run m ~max_cycles:100_000 in
  Test_machine.check_exit p

let test_too_many_args_rejected () =
  let u =
    unit_ "tma"
      [
        func "f" [ "a"; "b"; "c"; "d"; "e"; "g"; "h" ] [ ret (v "a") ];
        func "main" [] [ ret (call "f" [ i 1; i 2; i 3; i 4; i 5; i 6; i 7 ]) ];
      ]
  in
  match Compile.compile_unit u with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected Compile_error"

let test_break_continue () =
  check_prog 18L
    [
      decl "acc" (i 0);
      decl "k" (i 0);
      while_ (i 1)
        [
          set "k" (v "k" +: i 1);
          when_ (v "k" ==: i 3) [ continue_ ];
          when_ (v "k" >: i 6) [ break_ ];
          set "acc" (v "acc" +: v "k");
        ];
      (* 1+2+4+5+6 = 18 (3 skipped by continue, loop exits at 7) *)
      ret (v "acc");
    ]

let test_switch_negative_and_zero () =
  check_prog 3L
    [
      decl "acc" (i 0);
      decl "k" (neg (i 1));
      while_ (v "k" <=: i 1)
        [
          switch (v "k")
            [ (-1, [ set "acc" (v "acc" +: i 1) ]); (0, [ set "acc" (v "acc" +: i 1) ]) ]
            ~default:[ set "acc" (v "acc" +: i 1) ];
          set "k" (v "k" +: i 1);
        ];
      ret (v "acc");
    ]

let test_callp_function_table () =
  let u =
    unit_ "fpt"
      ~globals:[ global_addrs "table" [ "inc"; "dbl" ] ]
      [
        func "inc" [ "a" ] [ ret (v "a" +: i 1) ];
        func "dbl" [ "a" ] [ ret (v "a" *: i 2) ];
        func "main" []
          [
            decl "f0" (load64 (addr "table"));
            decl "f1" (load64 (addr "table" +: i 8));
            ret (callp (v "f0") [ i 5 ] +: callp (v "f1") [ i 5 ] -: i 16);
          ];
      ]
  in
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "fpt" (Crt0.link_app ~libc u);
  let p = Machine.spawn m ~exe_path:"fpt" () in
  let (_ : _) = Machine.run m ~max_cycles:100_000 in
  Test_machine.check_exit p

let suite =
  [
    QCheck_alcotest.to_alcotest prop_expr_differential;
    QCheck_alcotest.to_alcotest prop_stmt_differential;
    Alcotest.test_case "&& short-circuits effects" `Quick test_short_circuit_effects;
    Alcotest.test_case "nested calls" `Quick test_nested_calls;
    Alcotest.test_case "six register args" `Quick test_six_args;
    Alcotest.test_case "seven args rejected" `Quick test_too_many_args_rejected;
    Alcotest.test_case "break/continue" `Quick test_break_continue;
    Alcotest.test_case "switch with negative keys" `Quick test_switch_negative_and_zero;
    Alcotest.test_case "function-pointer table (Callp)" `Quick test_callp_function_table;
  ]
