(** End-to-end substrate tests: compile MiniC, link against libc, load,
    run on the machine; signals, forks, sockets, traps. *)

open Dsl

let libc = Libc.build ()

(** Compile+link a MiniC unit, install it and libc in a fresh machine,
    spawn it, run to completion; returns (machine, proc). *)
let boot ?(seed = 7) ?(max_cycles = 2_000_000) (u : Ast.comp_unit) =
  let m = Machine.create ~seed () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  let app = Crt0.link_app ~libc u in
  Vfs.add_self m.Machine.fs u.Ast.cu_name app;
  let p = Machine.spawn m ~exe_path:u.Ast.cu_name () in
  let (_ : [ `Budget | `Dead | `Idle ]) = Machine.run m ~max_cycles in
  (m, p)

let exit_status (p : Proc.t) =
  match p.Proc.state with
  | Proc.Exited c -> `Exit c
  | Proc.Killed s -> `Killed s
  | _ -> `Running

let check_exit ?(expect = 0) p =
  match exit_status p with
  | `Exit c -> Alcotest.(check int) "exit code" expect c
  | `Killed s -> Alcotest.failf "killed by %s" (Abi.signal_name s)
  | `Running -> Alcotest.fail "still running (cycle budget too small?)"

(* ---------- basic execution ---------- *)

let test_hello () =
  let _, p =
    boot (unit_ "hello" [ func "main" [] [ do_ "puts" [ s "hello, world" ]; ret0 ] ])
  in
  check_exit p;
  Alcotest.(check string) "stdout" "hello, world\n" (Proc.peek_stdout p)

let test_arith () =
  let _, p =
    boot
      (unit_ "arith"
         [
           func "main" []
             [
               decl "x" (i 21 *: i 2);
               decl "y" ((v "x" -: i 2) /: i 4);
               (* 40/4 = 10 *)
               decl "z" (v "y" %: i 3);
               (* 1 *)
               ret ((v "x" +: v "y" +: v "z") -: i 53);
             ];
         ])
  in
  check_exit ~expect:0 p

let test_recursion () =
  let _, p =
    boot
      (unit_ "fib"
         [
           func "fib" [ "n" ]
             [
               when_ (v "n" <: i 2) [ ret (v "n") ];
               ret (call "fib" [ v "n" -: i 1 ] +: call "fib" [ v "n" -: i 2 ]);
             ];
           func "main" [] [ ret (call "fib" [ i 12 ] -: i 144) ];
         ])
  in
  check_exit p

let test_globals_and_strings () =
  let _, p =
    boot
      (unit_ "glb"
         ~globals:[ global_q "counter" [ 5L ]; global_zero "buf" 64 ]
         [
           func "main" []
             [
               set "counter" (v "counter" +: i 37);
               do_ "itoa" [ addr "buf"; v "counter" ];
               do_ "puts" [ addr "buf" ];
               ret (v "counter" -: i 42);
             ];
         ])
  in
  check_exit p;
  Alcotest.(check string) "printed" "42\n" (Proc.peek_stdout p)

let test_switch_dispatch () =
  let _, p =
    boot
      (unit_ "sw"
         [
           func "dispatch" [ "k" ]
             [
               switch (v "k")
                 [
                   (1, [ ret (i 100) ]);
                   (2, [ ret (i 200) ]);
                   (7, [ ret (i 700) ]);
                 ]
                 ~default:[ label "dispatch_default"; ret (i 999) ];
             ];
           func "main" []
             [
               when_ (call "dispatch" [ i 1 ] <>: i 100) [ ret (i 1) ];
               when_ (call "dispatch" [ i 2 ] <>: i 200) [ ret (i 2) ];
               when_ (call "dispatch" [ i 7 ] <>: i 700) [ ret (i 3) ];
               when_ (call "dispatch" [ i 4 ] <>: i 999) [ ret (i 4) ];
               ret0;
             ];
         ])
  in
  check_exit p

let test_libc_string_functions () =
  let _, p =
    boot
      (unit_ "strs"
         ~globals:[ global_zero "buf" 64 ]
         [
           func "main" []
             [
               when_ (call "strlen" [ s "abcde" ] <>: i 5) [ ret (i 1) ];
               when_ (call "strcmp" [ s "abc"; s "abc" ] <>: i 0) [ ret (i 2) ];
               when_ (call "strcmp" [ s "abc"; s "abd" ] >=: i 0) [ ret (i 3) ];
               when_ (call "strncmp" [ s "abcX"; s "abcY"; i 3 ] <>: i 0) [ ret (i 4) ];
               do_ "strcpy" [ addr "buf"; s "zzz" ];
               when_ (call "strcmp" [ addr "buf"; s "zzz" ] <>: i 0) [ ret (i 5) ];
               when_ (call "atoi" [ s "-123" ] <>: neg (i 123)) [ ret (i 6) ];
               when_ (call "strchr_idx" [ s "hello"; i 108 ] <>: i 2) [ ret (i 7) ];
               when_ (call "strchr_idx" [ s "hello"; i 122 ] <>: neg (i 1)) [ ret (i 8) ];
               ret0;
             ];
         ])
  in
  check_exit p

(* ---------- faults and signals ---------- *)

let test_divzero_kills () =
  let _, p =
    boot
      (unit_ "dz"
         [ func "main" [] [ decl "z" (i 0); ret (i 5 /: v "z") ] ])
  in
  match exit_status p with
  | `Killed s -> Alcotest.(check int) "SIGFPE" Abi.sigfpe s
  | _ -> Alcotest.fail "expected SIGFPE"

let test_segv_kills () =
  let _, p =
    boot (unit_ "segv" [ func "main" [] [ ret (load64 (i 0x100)) ] ])
  in
  match exit_status p with
  | `Killed s -> Alcotest.(check int) "SIGSEGV" Abi.sigsegv s
  | _ -> Alcotest.fail "expected SIGSEGV"

let test_wx_protection () =
  (* writing to .text must fault: W^X is what forces the verifier handler
     to mprotect before restoring bytes *)
  let _, p =
    boot
      (unit_ "wx"
         [ func "main" [] [ store64 (addr "main") (i 0); ret0 ] ])
  in
  match exit_status p with
  | `Killed s -> Alcotest.(check int) "SIGSEGV" Abi.sigsegv s
  | _ -> Alcotest.fail "expected SIGSEGV on .text write"

let test_mmap_munmap () =
  let _, p =
    boot
      (unit_ "mm"
         [
           func "main" []
             [
               decl "a" (call "mmap" [ i 0; i 8192; i 6 ]);
               when_ (v "a" <=: i 0) [ ret (i 1) ];
               store64 (v "a") (i 77);
               when_ (load64 (v "a") <>: i 77) [ ret (i 2) ];
               do_ "munmap" [ v "a"; i 8192 ];
               ret0;
             ];
         ])
  in
  check_exit p

let test_fork_parent_child () =
  let m, p =
    boot
      (unit_ "fk"
         [
           func "main" []
             [
               decl "pid" (call "fork" []);
               if_ (v "pid" ==: i 0)
                 [ do_ "puts" [ s "child" ]; ret (i 0) ]
                 [ do_ "puts" [ s "parent" ]; ret (i 0) ];
             ];
         ])
  in
  check_exit p;
  Alcotest.(check string) "parent out" "parent\n" (Proc.peek_stdout p);
  let children =
    List.filter (fun (q : Proc.t) -> q.Proc.parent = p.Proc.pid) (Machine.all_procs m)
  in
  match children with
  | [ c ] ->
      Alcotest.(check string) "child out" "child\n" (Proc.peek_stdout c);
      check_exit c
  | l -> Alcotest.failf "expected 1 child, got %d" (List.length l)

let test_sigtrap_default_kills () =
  (* hitting an int3 with no handler terminates the process, like most
     debloating tools' behaviour (§3.2.2) *)
  let items =
    [
      Asm.Section ".text";
      Asm.Global "main";
      Asm.Label "main";
      Asm.Ins Insn.Int3;
      Asm.Ins Insn.Ret;
    ]
  in
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  let obj = Asm.assemble ~name:"trap" (items @ Crt0.items) in
  let self = Link.link_exec ~name:"trap" ~entry:"_start" ~libs:[ libc ] obj in
  Vfs.add_self m.Machine.fs "trap" self;
  let p = Machine.spawn m ~exe_path:"trap" () in
  let (_ : _) = Machine.run m ~max_cycles:10_000 in
  match exit_status p with
  | `Killed s -> Alcotest.(check int) "SIGTRAP" Abi.sigtrap s
  | _ -> Alcotest.fail "expected SIGTRAP kill"

let test_signal_handler_redirect () =
  (* a guest installs a SIGTRAP handler that rewrites the saved rip in the
     frame — the core mechanism of DynaCut's feature blocking *)
  let u =
    unit_ "sig"
      ~globals:[ global_q "resume_at" [ 0L ] ]
      [
        func "handler" [ "signum"; "frame" ]
          [
            expr (v "signum");
            store64 (v "frame" +: i Abi.frame_off_rip) (v "resume_at");
            ret0;
          ];
        func "main" []
          [
            set "resume_at" (addr "after");
            do_ "sigaction" [ i Abi.sigtrap; addr "handler"; addr "restorer" ];
            (* fall into a trap *)
            expr (callp (addr "trapsite") []);
            ret (i 1) (* unreachable if redirect works *);
          ];
      ]
  in
  (* hand-written pieces: a trap site and a restorer *)
  let extra =
    [
      Asm.Section ".text";
      Asm.Global "trapsite";
      Asm.Label "trapsite";
      Asm.Ins Insn.Int3;
      Asm.Ins Insn.Ret;
      Asm.Global "after";
      Asm.Label "after";
      (* exit(0) directly — the redirect lands here with the trap's frame *)
      Asm.Ins (Insn.Mov_ri (Reg.Rdi, 0L));
      Asm.Ins (Insn.Mov_ri (Reg.Rax, Int64.of_int Abi.sys_exit));
      Asm.Ins Insn.Syscall;
      Asm.Global "restorer";
      Asm.Label "restorer";
      Asm.Ins (Insn.Mov_ri (Reg.Rax, Int64.of_int Abi.sys_sigreturn));
      Asm.Ins Insn.Syscall;
    ]
  in
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  let obj = Asm.assemble ~name:"sig" (Compile.compile_unit u @ extra @ Crt0.items) in
  let self = Link.link_exec ~name:"sig" ~entry:"_start" ~libs:[ libc ] obj in
  Vfs.add_self m.Machine.fs "sig" self;
  let p = Machine.spawn m ~exe_path:"sig" () in
  let (_ : _) = Machine.run m ~max_cycles:100_000 in
  check_exit ~expect:0 p

(* ---------- sockets ---------- *)

let echo_server =
  unit_ "echo"
    ~globals:[ global_zero "rbuf" 256 ]
    [
      func "main" []
        [
          decl "sfd" (call "socket" []);
          do_ "bind" [ v "sfd"; i 8080 ];
          do_ "listen" [ v "sfd" ];
          do_ "puts" [ s "listening" ];
          forever
            [
              decl "c" (call "accept" [ v "sfd" ]);
              decl "n" (call "recv" [ v "c"; addr "rbuf"; i 256 ]);
              when_ (v "n" >: i 0) [ do_ "send" [ v "c"; addr "rbuf"; v "n" ] ];
              do_ "close" [ v "c" ];
            ];
          ret0;
        ];
    ]

let test_socket_echo () =
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "echo" (Crt0.link_app ~libc echo_server);
  let p = Machine.spawn m ~exe_path:"echo" () in
  (* run until it blocks in accept *)
  (match Machine.run m ~max_cycles:1_000_000 with
  | `Idle -> ()
  | _ -> Alcotest.fail "server should be idle in accept");
  Alcotest.(check string) "banner" "listening\n" (Proc.peek_stdout p);
  let c = Net.connect m.Machine.net 8080 in
  Net.client_send c "ping!";
  let (_ : _) = Machine.run m ~max_cycles:1_000_000 in
  Alcotest.(check string) "echoed" "ping!" (Net.client_recv c);
  (* second connection on the same listener *)
  let c2 = Net.connect m.Machine.net 8080 in
  Net.client_send c2 "again";
  let (_ : _) = Machine.run m ~max_cycles:1_000_000 in
  Alcotest.(check string) "echoed 2" "again" (Net.client_recv c2)

let test_nanosleep_advances_clock () =
  let m, p =
    boot
      (unit_ "slp"
         [
           func "main" []
             [ do_ "nanosleep" [ i 100000 ]; ret (i 0) ];
         ])
  in
  check_exit p;
  Alcotest.(check bool) "clock advanced" true (m.Machine.clock >= 100_000L)

(* ---------- memory unit tests ---------- *)

let test_mem_map_read_write () =
  let mem = Mem.create () in
  let (_ : Mem.vma) =
    Mem.map mem ~vaddr:0x1000L ~len:4096 ~prot:Self.prot_rw ~name:"t" ()
  in
  Mem.write64 mem 0x1008L 0xdeadbeefL;
  Alcotest.(check int64) "rw64" 0xdeadbeefL (Mem.read64 mem 0x1008L)

let test_mem_prot_enforced () =
  let mem = Mem.create () in
  let (_ : Mem.vma) =
    Mem.map mem ~vaddr:0x1000L ~len:4096 ~prot:Self.prot_ro ~name:"t" ()
  in
  Alcotest.check_raises "write to ro" (Mem.Fault (0x1000L, Mem.Write)) (fun () ->
      Mem.write8 mem 0x1000L 1);
  Alcotest.check_raises "exec of ro" (Mem.Fault (0x1000L, Mem.Exec)) (fun () ->
      ignore (Mem.fetch8 mem 0x1000L))

let test_mem_unmap_splits_vma () =
  let mem = Mem.create () in
  let (_ : Mem.vma) =
    Mem.map mem ~vaddr:0x10000L ~len:(3 * 4096) ~prot:Self.prot_rw ~name:"t" ()
  in
  Mem.unmap mem ~vaddr:0x11000L ~len:4096;
  Alcotest.(check int) "two vmas" 2 (List.length mem.Mem.vmas);
  Alcotest.check_raises "hole faults" (Mem.Fault (0x11000L, Mem.Read)) (fun () ->
      ignore (Mem.read8 mem 0x11000L));
  (* neighbours still alive *)
  Mem.write8 mem 0x10000L 1;
  Mem.write8 mem 0x12000L 2

let test_mem_mprotect_partial () =
  let mem = Mem.create () in
  let (_ : Mem.vma) =
    Mem.map mem ~vaddr:0x10000L ~len:(2 * 4096) ~prot:Self.prot_rw ~name:"t" ()
  in
  Mem.protect mem ~vaddr:0x11000L ~len:4096 ~prot:Self.prot_ro;
  Mem.write8 mem 0x10000L 1;
  Alcotest.check_raises "ro page" (Mem.Fault (0x11000L, Mem.Write)) (fun () ->
      Mem.write8 mem 0x11000L 1);
  Alcotest.(check int) "split vmas" 2 (List.length mem.Mem.vmas)

let test_mem_copy_independent () =
  let mem = Mem.create () in
  let (_ : Mem.vma) =
    Mem.map mem ~vaddr:0x1000L ~len:4096 ~prot:Self.prot_rw ~name:"t" ()
  in
  Mem.write64 mem 0x1000L 1L;
  let c = Mem.copy mem in
  Mem.write64 mem 0x1000L 2L;
  Alcotest.(check int64) "copy unchanged" 1L (Mem.read64 c 0x1000L)

let prop_mem_rw_roundtrip =
  QCheck.Test.make ~name:"mem 64-bit write/read roundtrip" ~count:300
    QCheck.(pair (int_range 0 4088) (map Int64.of_int int))
    (fun (off, value) ->
      let mem = Mem.create () in
      let (_ : Mem.vma) =
        Mem.map mem ~vaddr:0x4000L ~len:4096 ~prot:Self.prot_rw ~name:"t" ()
      in
      Mem.write64 mem (Int64.add 0x4000L (Int64.of_int off)) value;
      Mem.read64 mem (Int64.add 0x4000L (Int64.of_int off)) = value)

let suite =
  [
    Alcotest.test_case "hello world" `Quick test_hello;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "globals + itoa" `Quick test_globals_and_strings;
    Alcotest.test_case "switch dispatch" `Quick test_switch_dispatch;
    Alcotest.test_case "libc string functions" `Quick test_libc_string_functions;
    Alcotest.test_case "div by zero -> SIGFPE" `Quick test_divzero_kills;
    Alcotest.test_case "bad load -> SIGSEGV" `Quick test_segv_kills;
    Alcotest.test_case "W^X enforced" `Quick test_wx_protection;
    Alcotest.test_case "mmap/munmap" `Quick test_mmap_munmap;
    Alcotest.test_case "fork" `Quick test_fork_parent_child;
    Alcotest.test_case "int3 default-kills" `Quick test_sigtrap_default_kills;
    Alcotest.test_case "SIGTRAP handler redirects rip" `Quick test_signal_handler_redirect;
    Alcotest.test_case "socket echo" `Quick test_socket_echo;
    Alcotest.test_case "nanosleep virtual time" `Quick test_nanosleep_advances_clock;
    Alcotest.test_case "mem map/read/write" `Quick test_mem_map_read_write;
    Alcotest.test_case "mem protections" `Quick test_mem_prot_enforced;
    Alcotest.test_case "mem unmap splits" `Quick test_mem_unmap_splits_vma;
    Alcotest.test_case "mem mprotect partial" `Quick test_mem_mprotect_partial;
    Alcotest.test_case "mem copy independent" `Quick test_mem_copy_independent;
    QCheck_alcotest.to_alcotest prop_mem_rw_roundtrip;
  ]
