(** The benchmark harness: one runner per table/figure of the paper's
    evaluation (see DESIGN.md §4 for the experiment index), plus
    Bechamel micro-benchmarks of DynaCut's hot paths.

    Usage: [dune exec bench/main.exe] runs everything;
    [dune exec bench/main.exe -- fig6 fig8] runs a subset. *)

let fmt = Format.std_formatter

(* ---------- bechamel micro-benchmarks ---------- *)

let micro_tests () =
  let open Bechamel in
  (* a frozen rkv checkpoint as a realistic workload for the codecs *)
  let c = Workload.spawn Workload.rkv in
  Workload.wait_ready c;
  Machine.freeze c.Workload.m ~pid:c.Workload.pid;
  let img = Checkpoint.dump c.Workload.m ~pid:c.Workload.pid () in
  let blob = Images.encode img in
  let exe = Option.get (Vfs.find_self c.Workload.m.Machine.fs "rkv") in
  let text = Option.get (Self.find_section exe ".text") in
  let log_init, log_srv = Common.server_phases Workload.rkv ~requests:Workload.kv_wanted in
  let g_init = Covgraph.of_log log_init and g_srv = Covgraph.of_log log_srv in
  let insns =
    Encode.program
      [ Insn.Mov_ri (Reg.Rax, 42L); Insn.Add_ri (Reg.Rax, 1); Insn.Cmp_ri (Reg.Rax, 43); Insn.Ret ]
  in
  [
    Test.make ~name:"image-encode" (Staged.stage (fun () -> ignore (Images.encode img)));
    Test.make ~name:"image-decode" (Staged.stage (fun () -> ignore (Images.decode blob)));
    Test.make ~name:"covgraph-diff" (Staged.stage (fun () -> ignore (Covgraph.diff g_init g_srv)));
    Test.make ~name:"cfg-recovery" (Staged.stage (fun () -> ignore (Cfg.of_self exe)));
    Test.make ~name:"gadget-scan-text"
      (Staged.stage (fun () -> ignore (Gadget.scan_bytes text.Self.sec_data)));
    Test.make ~name:"decode-4-insns"
      (Staged.stage (fun () -> ignore (Decode.disassemble insns)));
    Test.make ~name:"checkpoint-dump"
      (Staged.stage (fun () -> ignore (Checkpoint.dump c.Workload.m ~pid:c.Workload.pid ())));
  ]

let run_micro () =
  Common.section fmt "Micro-benchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Format.fprintf fmt "  %-24s %12.1f ns/run@." name est
          | _ -> Format.fprintf fmt "  %-24s (no estimate)@." name)
        analyzed)
    (micro_tests ());
  Format.fprintf fmt "@."

(* ---------- robustness: journaling overhead + recovery time ---------- *)

(* The §5d cost/benefit ledger: what the write-ahead journal adds to cut
   latency and restore downtime (journal on vs. off), and what it buys —
   the time to recover a tree after a worst-case controller death (mid
   pid-replace, every pid rolled back from its pristine image). Emits
   BENCH_robustness.json for the perf trajectory. *)
let run_robustness () =
  Common.section fmt "Robustness: journaling overhead + crash recovery";
  let app = Workload.ngx in
  let blocks = Common.web_feature_blocks app in
  let policy =
    { Dynacut.method_ = `First_byte; on_trap = `Redirect "ngx_declined" }
  in
  let iters = 5 in
  (* one sample = boot, cut, re-enable on a fresh fleet *)
  let sample ~journal =
    Fault.reset ();
    let c = Workload.spawn app in
    Workload.wait_ready c;
    let s = Dynacut.create ~journal c.Workload.m ~root_pid:c.Workload.pid in
    let r = Dynacut.try_cut s ~blocks ~policy () in
    let re = Dynacut.try_reenable s r.Dynacut.r_journals in
    (match (r.Dynacut.r_outcome, re.Dynacut.r_outcome) with
    | (`Applied | `Degraded), (`Applied | `Degraded) -> ()
    | _ -> failwith "robustness: benchmark cut did not apply");
    let t = r.Dynacut.r_timings in
    ( Dynacut.total_time t,
      t.Dynacut.t_restore,
      Dynacut.total_time re.Dynacut.r_timings )
  in
  let collect ~journal = List.init iters (fun _ -> sample ~journal) in
  let mean f l =
    List.fold_left (fun a x -> a +. f x) 0. l /. float_of_int (List.length l)
  in
  let on = collect ~journal:true and off = collect ~journal:false in
  let cut1 (a, _, _) = a and rst (_, b, _) = b and re3 (_, _, c) = c in
  (* worst-case crash: the controller dies replacing the last pid, so
     recovery has every pid to reap and re-create from pristine *)
  Fault.reset ();
  let c = Workload.spawn app in
  Workload.wait_ready c;
  let s = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let npids = List.length (Dynacut.tree_pids s) in
  Fault.arm ~kill:true "restore.process" (Fault.Every_nth npids);
  (match Dynacut.try_cut s ~blocks ~policy () with
  | (_ : Dynacut.cut_result) -> failwith "robustness: controller survived"
  | exception Fault.Controller_killed _ -> ());
  Fault.reset ();
  let rcv, t_recover =
    Stats.time_it (fun () ->
        Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid)
  in
  if rcv.Dynacut.rec_action <> `Rolled_back then
    failwith "robustness: worst-case crash did not roll back";
  let rows =
    [
      ("cut_total_s_journal_on", mean cut1 on);
      ("cut_total_s_journal_off", mean cut1 off);
      ("restore_downtime_s_journal_on", mean rst on);
      ("restore_downtime_s_journal_off", mean rst off);
      ("reenable_total_s_journal_on", mean re3 on);
      ("reenable_total_s_journal_off", mean re3 off);
      ("recover_worst_case_s", t_recover);
    ]
  in
  List.iter (fun (k, v) -> Format.fprintf fmt "  %-34s %.6f s@." k v) rows;
  let oc = open_out "BENCH_robustness.json" in
  Printf.fprintf oc "{\n  \"app\": %S,\n  \"iters\": %d,\n  \"pids\": %d" app.Workload.a_name
    iters npids;
  List.iter (fun (k, v) -> Printf.fprintf oc ",\n  %S: %.6f" k v) rows;
  Printf.fprintf oc "\n}\n";
  close_out oc;
  Format.fprintf fmt "  wrote BENCH_robustness.json@."

(* ---------- obs: pipeline breakdown + instrumentation overhead ---------- *)

(* What the observability registry reports and what it costs: the
   per-stage host-CPU breakdown of one ngx cut + re-enable (read back
   from the span host axis), then interleaved registry-on/registry-off
   repetitions of the same scenario to bound the instrumentation
   overhead. Emits BENCH_obs.json; the --quick smoke mode in ci.sh runs
   only this with fewer repetitions. *)
let quick = ref false

let run_obs () =
  Common.section fmt "Observability: pipeline breakdown + registry overhead";
  let app = Workload.ngx in
  let blocks = Common.web_feature_blocks app in
  let policy =
    { Dynacut.method_ = `First_byte; on_trap = `Redirect "ngx_declined" }
  in
  let iters = if !quick then 5 else 11 in
  (* one scenario = boot, cut, re-enable on a fresh fleet *)
  let scenario () =
    Fault.reset ();
    let c = Workload.spawn app in
    Workload.wait_ready c;
    let s = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
    let r = Dynacut.try_cut s ~blocks ~policy () in
    let re = Dynacut.try_reenable s r.Dynacut.r_journals in
    match (r.Dynacut.r_outcome, re.Dynacut.r_outcome) with
    | (`Applied | `Degraded), (`Applied | `Degraded) -> ()
    | _ -> failwith "obs: benchmark cut did not apply"
  in
  (* per-stage breakdown, one instrumented scenario *)
  Obs.set_enabled true;
  Obs.reset ();
  scenario ();
  let stages =
    [ "checkpoint"; "crit"; "rewrite"; "inject"; "restore"; "tcp_repair" ]
  in
  let breakdown =
    List.map
      (fun st -> (st, List.fold_left ( +. ) 0. (Obs.span_seconds st)))
      stages
  in
  List.iter
    (fun (st, s) -> Format.fprintf fmt "  stage %-12s %.6f s@." st s)
    breakdown;
  (* overhead: interleaved on/off repetitions, compared by *minimum* —
     the best-case run is the one least polluted by GC pauses and
     scheduler noise, so min-vs-min is the stable estimator of the
     registry's intrinsic cost. The registry cannot make the scenario
     faster, so a negative reading beyond jitter means the harness
     itself is broken — re-measure up to 3 times and fail loudly if the
     result never lands in the plausible [-1%, +5%] band. *)
  let time_with enabled =
    Obs.set_enabled enabled;
    Obs.reset ();
    (* start every sample from a settled heap: otherwise the enabled
       run's allocation debt is collected during the *disabled* run,
       which reads as impossible negative overhead *)
    Gc.compact ();
    let (), dt = Stats.time_it scenario in
    dt
  in
  let best l = List.fold_left min infinity l in
  let measure () =
    (* one untimed warmup pair absorbs cold allocator/page-cache state *)
    ignore (time_with true);
    ignore (time_with false);
    let on = ref [] and off = ref [] in
    for i = 1 to iters do
      (* alternate the order so drift cancels instead of biasing *)
      if i mod 2 = 0 then begin
        on := time_with true :: !on;
        off := time_with false :: !off
      end
      else begin
        off := time_with false :: !off;
        on := time_with true :: !on
      end
    done;
    (best !on, best !off)
  in
  let attempts = 3 in
  let rec bounded k =
    let m_on, m_off = measure () in
    let pct = (m_on -. m_off) /. m_off *. 100. in
    if pct >= -1. && pct <= 5. then (m_on, m_off, pct)
    else if k < attempts then begin
      Format.fprintf fmt
        "  overhead %.2f%% outside [-1%%, +5%%]; re-measuring (%d/%d)@." pct
        (k + 1) attempts;
      bounded (k + 1)
    end
    else
      failwith
        (Printf.sprintf
           "obs: instrumentation overhead %.2f%% outside [-1%%, +5%%] after \
            %d attempts — harness is mis-measuring"
           pct attempts)
  in
  let m_on, m_off, overhead_pct = bounded 1 in
  Obs.set_enabled true;
  Format.fprintf fmt "  scenario best-case: registry on %.6f s, off %.6f s@."
    m_on m_off;
  Format.fprintf fmt "  instrumentation overhead: %.2f%%@." overhead_pct;
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc "{\n  \"app\": %S,\n  \"iters\": %d" app.Workload.a_name iters;
  List.iter
    (fun (st, s) -> Printf.fprintf oc ",\n  \"stage_%s_s\": %.6f" st s)
    breakdown;
  Printf.fprintf oc ",\n  \"scenario_s_obs_on\": %.6f" m_on;
  Printf.fprintf oc ",\n  \"scenario_s_obs_off\": %.6f" m_off;
  Printf.fprintf oc ",\n  \"instr_overhead_pct\": %.4f\n}\n" overhead_pct;
  close_out oc;
  Format.fprintf fmt "  wrote BENCH_obs.json@."

(* ---------- fleet: fan-out throughput + rollout pause ---------- *)

(* The §6a fleet numbers: closed-loop requests through the kernel's
   round-robin listener fan-out as the worker count scales (virtual-
   clock throughput), and the per-wave pause a rolling rollout imposes
   on a 6-worker fleet. Emits BENCH_fleet.json; --quick shrinks the
   sweep for the ci smoke. *)
let run_fleet () =
  Common.section fmt "Fleet: fan-out throughput + rollout pause";
  let app = Workload.ltpd in
  let blocks = Common.web_feature_blocks app in
  let policy =
    { Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }
  in
  let counts = if !quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let requests = if !quick then 60 else 200 in
  let get = Workload.http_get "/index.html" in
  (* each worker count is measured twice on the same closed loop: once
     on the single-step interpreter, once through the decoded-block code
     cache (lib/bbcache), whose hit rate is reported alongside *)
  let measure ~cached n =
    Fault.reset ();
    let ctxs = Workload.spawn_fleet ~n app in
    let m = (List.hd ctxs).Workload.m in
    let bb = if cached then Some (Bbcache.enable m) else None in
    Workload.wait_fleet_ready ctxs;
    let pids = List.map (fun c -> c.Workload.pid) ctxs in
    let fleet = Fleet.create m ~port:Ltpd.port ~pids ~blocks ~policy in
    let start = m.Machine.clock in
    let served = ref 0 in
    for _ = 1 to requests do
      match Fleet.request fleet get with
      | `Reply _ -> incr served
      | `Refused | `Shed | `Timed_out _ -> ()
    done;
    let cycles = Int64.sub m.Machine.clock start in
    let per_mcycle = float_of_int !served /. (Int64.to_float cycles /. 1e6) in
    let hit_rate =
      match bb with
      | None -> 0.
      | Some b ->
          let st = Bbcache.stats b in
          let lookups = st.Bbcache.st_hits + st.Bbcache.st_decodes in
          if lookups = 0 then 0.
          else float_of_int st.Bbcache.st_hits /. float_of_int lookups
    in
    (match bb with Some b -> Bbcache.disable b | None -> ());
    Format.fprintf fmt
      "  workers=%d %s served=%d/%d cycles=%Ld  %.1f req/Mcycle%s@." n
      (if cached then "cached" else "interp")
      !served requests cycles per_mcycle
      (if cached then Printf.sprintf "  hit-rate %.4f" hit_rate else "");
    (n, !served, per_mcycle, hit_rate)
  in
  let interp = List.map (measure ~cached:false) counts in
  let throughput = List.map (measure ~cached:true) counts in
  (* per-wave rollout pause on a 6-worker fleet *)
  Fault.reset ();
  let wn = 6 and waves = 3 in
  let ctxs = Workload.spawn_fleet ~n:wn app in
  Workload.wait_fleet_ready ctxs;
  let m = (List.hd ctxs).Workload.m in
  let pids = List.map (fun c -> c.Workload.pid) ctxs in
  let fleet = Fleet.create m ~port:Ltpd.port ~pids ~blocks ~policy in
  let drive () = ignore (Fleet.request fleet get) in
  let config =
    Rollout.
      {
        r_waves = waves;
        r_sup =
          { Supervisor.default_config with Supervisor.canary_windows = 1 };
      }
  in
  let outcome, reports = Fleet.rollout fleet ~config ~drive () in
  (match outcome with
  | Rollout.Completed _ -> ()
  | o ->
      Format.fprintf fmt "  WARNING rollout: %a@." Rollout.pp_outcome o);
  List.iter
    (fun (r : Rollout.wave_report) ->
      Format.fprintf fmt "  wave %d (%d workers) pause %Ld cycles@."
        r.Rollout.wr_wave
        (List.length r.Rollout.wr_pids)
        r.Rollout.wr_pause_cycles)
    reports;
  let oc = open_out "BENCH_fleet.json" in
  Printf.fprintf oc "{\n  \"app\": %S,\n  \"requests\": %d" app.Workload.a_name
    requests;
  List.iter2
    (fun (n, served, cached_pm, hit_rate) (_, _, interp_pm, _) ->
      Printf.fprintf oc ",\n  \"served_w%d\": %d,\n  \"req_per_mcycle_w%d\": %.2f"
        n served n cached_pm;
      Printf.fprintf oc ",\n  \"req_per_mcycle_cached_w%d\": %.2f" n cached_pm;
      Printf.fprintf oc ",\n  \"req_per_mcycle_interp_w%d\": %.2f" n interp_pm;
      Printf.fprintf oc ",\n  \"cache_hit_rate_w%d\": %.4f" n hit_rate)
    throughput interp;
  (* the decoded-block cache (lib/bbcache) retired ROADMAP item 1: the
     headline req_per_mcycle_wN rows run through superblock dispatch,
     the _interp rows keep the old single-step baseline visible *)
  Printf.fprintf oc ",\n  \"serialized_interpreter\": false";
  let speedup =
    let pm l = match l with (_, _, x, _) :: _ -> x | [] -> 0. in
    if pm interp > 0. then pm throughput /. pm interp else 0.
  in
  Printf.fprintf oc ",\n  \"speedup_w1\": %.2f" speedup;
  Format.fprintf fmt "  w1 cached/interp speedup: %.2fx@." speedup;
  (* ci gate: ci.sh runs `bench --quick fleet`; a code-cache regression
     below 5x over the interpreter fails the smoke outright *)
  if speedup < 5. then
    failwith
      (Printf.sprintf "bbcache speedup regression: %.2fx < 5x at w1" speedup);
  Printf.fprintf oc ",\n  \"rollout_workers\": %d,\n  \"rollout_waves\": %d" wn
    waves;
  List.iter
    (fun (r : Rollout.wave_report) ->
      Printf.fprintf oc ",\n  \"wave%d_pause_cycles\": %Ld" r.Rollout.wr_wave
        r.Rollout.wr_pause_cycles)
    reports;
  Printf.fprintf oc "\n}\n";
  close_out oc;
  Format.fprintf fmt "  wrote BENCH_fleet.json@."

(* ---------- overload: goodput + tail latency vs offered load ---------- *)

(* The §6b resilience curves: drive the fleet open-loop at multiples of
   its measured closed-loop capacity, once with admission control +
   bounded accept queues (the shipped defaults) and once with shedding
   effectively disabled (watermark at infinity, huge backlog). The
   no-shed curve must collapse past saturation — timed-out clients
   abandon, the workers keep serving the stale backlog, goodput falls —
   while the shed curve degrades gracefully. Emits BENCH_overload.json;
   --quick shrinks the sweep for the ci smoke. *)
let run_overload () =
  Common.section fmt "Overload: goodput + p99 vs offered load, shed on/off";
  let app = Workload.ltpd in
  let blocks = Common.web_feature_blocks app in
  let policy =
    { Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }
  in
  let n = 4 in
  let get = Workload.http_get "/index.html" in
  let boot ?balancer () =
    Fault.reset ();
    let ctxs = Workload.spawn_fleet ~n app in
    Workload.wait_fleet_ready ctxs;
    let m = (List.hd ctxs).Workload.m in
    let pids = List.map (fun c -> c.Workload.pid) ctxs in
    Fleet.create ?balancer m ~port:Ltpd.port ~pids ~blocks ~policy
  in
  (* closed-loop capacity probe: one request at a time can never overload
     the fleet, so served/Mcycle here *is* the saturation point *)
  let probe_requests = if !quick then 30 else 100 in
  let fleet = boot () in
  let m = (Fleet.balancer fleet).Balancer.machine in
  let start = m.Machine.clock in
  let served = ref 0 in
  for _ = 1 to probe_requests do
    match Fleet.request fleet get with
    | `Reply _ -> incr served
    | `Refused | `Shed | `Timed_out _ -> ()
  done;
  let probe_cycles = Int64.sub m.Machine.clock start in
  if !served = 0 then failwith "overload: capacity probe served nothing";
  let capacity =
    float_of_int !served /. (Int64.to_float probe_cycles /. 1e6)
  in
  let service_cycles =
    Int64.to_float probe_cycles /. float_of_int !served
  in
  (* clients wait ~8 service times before abandoning *)
  let deadline = Int64.of_float (8. *. service_cycles) in
  (* every worker shares one virtual CPU, so k requests in flight each
     take ~k service times: admit only as many as still meet the
     deadline (with 2x headroom), and keep the accept queues shallow *)
  let shed_high =
    max 2 (Int64.to_int deadline / int_of_float service_cycles / 2)
  in
  let tuned =
    {
      (Balancer.default_config ~workers:n) with
      Balancer.b_shed_high = shed_high;
      b_shed_low = max 1 (shed_high / 2);
      b_backlog_max = 2;
    }
  in
  Format.fprintf fmt
    "  capacity %.1f req/Mcycle (service %.0f cycles), deadline %Ld cycles, \
     shed watermark %d@."
    capacity service_cycles deadline shed_high;
  let requests = if !quick then 40 else 150 in
  let multipliers = if !quick then [ 0.5; 2.0 ] else [ 0.5; 1.0; 2.0; 3.0 ] in
  let no_shed =
    {
      tuned with
      Balancer.b_shed_high = max_int;
      b_shed_low = max_int - 1;
      b_backlog_max = 1_000_000;
    }
  in
  let run_point ~shed mult =
    let fleet = boot ~balancer:(if shed then tuned else no_shed) () in
    let cfg =
      {
        Loadgen.default_config with
        Loadgen.lg_offered = mult *. capacity;
        lg_requests = requests;
        lg_deadline = deadline;
        lg_retry_budget = requests / 2;
        lg_max_cycles = 2_000_000_000;
      }
    in
    let st = Fleet.overload fleet cfg ~text:get in
    let goodput =
      float_of_int st.Loadgen.s_completed
      /. (Int64.to_float st.Loadgen.s_cycles /. 1e6)
    in
    Format.fprintf fmt
      "  shed=%-3s x%.1f  goodput %6.1f req/Mcycle  completed %d/%d  shed %d \
       timeouts %d retries %d  p99 %.0f@."
      (if shed then "on" else "off")
      mult goodput st.Loadgen.s_completed st.Loadgen.s_offered
      st.Loadgen.s_shed st.Loadgen.s_timeouts st.Loadgen.s_retries
      st.Loadgen.s_p99;
    (mult, goodput, st)
  in
  let shed_on = List.map (run_point ~shed:true) multipliers in
  let shed_off = List.map (run_point ~shed:false) multipliers in
  (* the acceptance check: past saturation the no-shed curve must fall
     visibly below the shed curve *)
  (match
     ( List.find_opt (fun (mult, _, _) -> mult >= 2.0) shed_on,
       List.find_opt (fun (mult, _, _) -> mult >= 2.0) shed_off )
   with
  | Some (_, g_on, _), Some (_, g_off, _) ->
      if g_off >= g_on then
        Format.fprintf fmt
          "  WARNING no-shed goodput (%.1f) did not collapse below shed \
           (%.1f) at 2x@."
          g_off g_on
  | _ -> ());
  let mult_key m = String.map (fun c -> if c = '.' then '_' else c)
      (Printf.sprintf "x%.1f" m)
  in
  let oc = open_out "BENCH_overload.json" in
  Printf.fprintf oc
    "{\n  \"app\": %S,\n  \"workers\": %d,\n  \"requests\": %d" app.Workload.a_name
    n requests;
  Printf.fprintf oc ",\n  \"capacity_req_per_mcycle\": %.2f" capacity;
  Printf.fprintf oc ",\n  \"service_cycles\": %.0f" service_cycles;
  Printf.fprintf oc ",\n  \"deadline_cycles\": %Ld" deadline;
  List.iter
    (fun (label, points) ->
      List.iter
        (fun (mult, goodput, st) ->
          let k = mult_key mult in
          Printf.fprintf oc ",\n  \"%s_%s_goodput\": %.2f" label k goodput;
          Printf.fprintf oc ",\n  \"%s_%s_completed\": %d" label k
            st.Loadgen.s_completed;
          Printf.fprintf oc ",\n  \"%s_%s_shed\": %d" label k st.Loadgen.s_shed;
          Printf.fprintf oc ",\n  \"%s_%s_timeouts\": %d" label k
            st.Loadgen.s_timeouts;
          Printf.fprintf oc ",\n  \"%s_%s_retries\": %d" label k
            st.Loadgen.s_retries;
          Printf.fprintf oc ",\n  \"%s_%s_p99_cycles\": %.0f" label k
            st.Loadgen.s_p99)
        points)
    [ ("shed", shed_on); ("noshed", shed_off) ];
  Printf.fprintf oc "\n}\n";
  close_out oc;
  Format.fprintf fmt "  wrote BENCH_overload.json@."

(* ---------- chaos: site x mode coverage + invariant pass rate ---------- *)

(* The §6c acceptance gate: the directed coverage matrix must exercise
   every registered fault site in every applicable mode (fail/kill/delay
   everywhere, corrupt/enospc/eio at the storage sites), and a fleet of
   seeded multi-fault schedules must pass every invariant oracle. Emits
   BENCH_chaos.json with the coverage table, the pass rate and the
   recovery-time distribution; any probe failure or invariant violation
   fails the bench. --quick keeps the full matrix (the gate) but runs
   fewer random schedules. *)
let run_chaos () =
  Common.section fmt "Chaos: site x mode coverage + invariant oracles";
  let probes = Chaos.coverage_matrix () in
  let sites = List.map fst Fault.known_sites in
  List.iter
    (fun site ->
      let mine = List.filter (fun p -> p.Chaos.p_site = site) probes in
      let cell (p : Chaos.probe) =
        Printf.sprintf "%s%s"
          (Fault.mode_to_string p.Chaos.p_mode)
          (if p.Chaos.p_ok then "" else "!FAIL")
      in
      Format.fprintf fmt "  %-22s %s@." site
        (String.concat " " (List.map cell mine)))
    sites;
  let failed = List.filter (fun p -> not p.Chaos.p_ok) probes in
  List.iter
    (fun (p : Chaos.probe) ->
      Format.fprintf fmt "  FAIL %s:%s — %s@." p.Chaos.p_site
        (Fault.mode_to_string p.Chaos.p_mode)
        p.Chaos.p_detail)
    failed;
  (* every applicable mode of every registered site must have a passing
     probe — an unexercised mode is a coverage hole, not a skip *)
  let holes =
    List.concat_map
      (fun site ->
        List.filter_map
          (fun mode ->
            if
              List.exists
                (fun p ->
                  p.Chaos.p_site = site && p.Chaos.p_mode = mode
                  && p.Chaos.p_ok)
                probes
            then None
            else Some (site, mode))
          (Fault.applicable_modes site))
      sites
  in
  let runs = if !quick then 8 else 50 in
  let reports =
    List.init runs (fun i ->
        let sched = Schedule.generate ~seed:(1000 + i) () in
        let r = Chaos.run sched in
        Format.fprintf fmt "  run seed=%d events=%d fired=%d %s@."
          sched.Schedule.sc_seed
          (List.length sched.Schedule.sc_events)
          (List.length r.Chaos.r_fired)
          (if Chaos.passed r then "pass"
           else
             String.concat "; "
               (List.map
                  (Format.asprintf "%a" Oracle.pp_violation)
                  r.Chaos.r_violations));
        r)
  in
  let violated = List.filter (fun r -> not (Chaos.passed r)) reports in
  let fired_events =
    List.fold_left (fun a r -> a + List.length r.Chaos.r_fired) 0 reports
  in
  let total_events =
    List.fold_left
      (fun a (r : Chaos.report) ->
        a + List.length r.Chaos.r_schedule.Schedule.sc_events)
      0 reports
  in
  let recovery =
    List.map (fun r -> float_of_int r.Chaos.r_recovery_cycles) reports
  in
  let p50 = Obs.percentile_list 50. recovery
  and p99 = Obs.percentile_list 99. recovery in
  Format.fprintf fmt
    "  %d probes (%d failed), %d holes; %d/%d runs passed, %d/%d events \
     fired; recovery p50 %.0f p99 %.0f cycles@."
    (List.length probes) (List.length failed) (List.length holes)
    (runs - List.length violated)
    runs fired_events total_events p50 p99;
  let oc = open_out "BENCH_chaos.json" in
  Printf.fprintf oc "{\n  \"sites\": %d,\n  \"probes\": %d" (List.length sites)
    (List.length probes);
  Printf.fprintf oc ",\n  \"probe_failures\": %d" (List.length failed);
  Printf.fprintf oc ",\n  \"coverage_holes\": %d" (List.length holes);
  List.iter
    (fun site ->
      let mine =
        List.filter (fun p -> p.Chaos.p_site = site && p.Chaos.p_ok) probes
      in
      Printf.fprintf oc ",\n  \"%s\": %S" site
        (String.concat " "
           (List.map (fun p -> Fault.mode_to_string p.Chaos.p_mode) mine)))
    sites;
  Printf.fprintf oc ",\n  \"runs\": %d,\n  \"runs_passed\": %d" runs
    (runs - List.length violated);
  Printf.fprintf oc ",\n  \"events_fired\": %d,\n  \"events_total\": %d"
    fired_events total_events;
  Printf.fprintf oc ",\n  \"recovery_p50_cycles\": %.0f" p50;
  Printf.fprintf oc ",\n  \"recovery_p99_cycles\": %.0f\n}\n" p99;
  close_out oc;
  Format.fprintf fmt "  wrote BENCH_chaos.json@.";
  if failed <> [] || holes <> [] then
    failwith
      (Printf.sprintf "chaos: %d probe failures, %d coverage holes"
         (List.length failed) (List.length holes));
  if violated <> [] then
    failwith
      (Printf.sprintf "chaos: %d of %d runs violated an invariant"
         (List.length violated) runs)

(* ---------- scrub: detection latency, repair economics, overhead ---------- *)

(* The §6d silent-corruption ledger: how fast the background scrubber
   catches a seeded bitflip as a function of the scrub interval, what a
   page repair costs against the full respawn it replaces (the graduated
   response must stay >= 5x cheaper), and what the default-rate scrubber
   adds to a served workload (<= 5% of virtual cycles). Two seeded runs
   of the same soak must produce byte-identical observability dumps.
   Emits BENCH_scrub.json. *)
let run_scrub () =
  Common.section fmt "Scrub: detection latency, repair vs respawn, overhead";
  let app = Workload.ltpd in
  let blocks = Common.web_feature_blocks app in
  let policy =
    { Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }
  in
  let n = 3 in
  let get = Workload.http_get "/index.html" in
  let boot () =
    Fault.reset ();
    Obs.reset ();
    let ctxs = Workload.spawn_fleet ~n app in
    Workload.wait_fleet_ready ctxs;
    let m = (List.hd ctxs).Workload.m in
    let pids = List.map (fun c -> c.Workload.pid) ctxs in
    let fleet = Fleet.create m ~port:Ltpd.port ~pids ~blocks ~policy in
    (m, pids, fleet)
  in
  (* detection latency vs scrub rate: one seeded flip, then advance the
     virtual clock in fixed steps pumping the background scrubber until
     a slice reports the mismatch *)
  let intervals = if !quick then [ 20_000; 5_000 ] else [ 40_000; 20_000; 10_000; 5_000 ] in
  let detection =
    List.map
      (fun interval ->
        let m, pids, fleet = boot () in
        Fleet.start_scrub
          ~config:{ Fleet.default_scrub_config with Fleet.sc_interval = interval }
          fleet;
        List.iter (fun pid -> ignore (Fleet.scrub_now fleet ~pid)) pids;
        let rng = Rng.create 1106 in
        (match Machine.bitflip m ~pid:(List.hd pids) rng with
        | Some (_, _) -> ()
        | None -> failwith "scrub: seeded bitflip found no resident page");
        let t_flip = m.Machine.clock in
        let latency = ref None in
        let steps = ref 0 in
        while !latency = None && !steps < 200 do
          incr steps;
          m.Machine.clock <- Int64.add m.Machine.clock 1_000L;
          (match Fleet.scrub_tick fleet with
          | Some r when r.Fleet.sr_findings <> [] ->
              latency := Some (Int64.sub m.Machine.clock t_flip)
          | Some _ | None -> ())
        done;
        let latency =
          match !latency with
          | Some l -> l
          | None -> failwith "scrub: flip never detected"
        in
        Format.fprintf fmt "  interval=%-6d detected after %Ld cycles@."
          interval latency;
        (interval, latency))
      intervals
  in
  (* the graduated-response economics: a measured page repair against
     the respawn the escalation path would pay instead *)
  let m, pids, fleet = boot () in
  Fleet.start_scrub fleet;
  List.iter (fun pid -> ignore (Fleet.scrub_now fleet ~pid)) pids;
  let victim = List.hd pids in
  let integrity = Fleet.integrity fleet ~pid:victim in
  (match Machine.bitflip m ~pid:victim (Rng.create 1107) with
  | Some _ -> ()
  | None -> failwith "scrub: seeded bitflip found no resident page");
  let finding =
    match Integrity.scrub_full integrity ~pids:[ victim ] () with
    | f :: _ -> f
    | [] -> failwith "scrub: forced audit missed the flip"
  in
  let t0 = m.Machine.clock in
  (match Integrity.repair integrity finding with
  | Integrity.Repaired src ->
      Format.fprintf fmt "  repair healed from %s@." src
  | Integrity.Repair_failed why -> failwith ("scrub: repair failed: " ^ why));
  let repair_cycles = Int64.to_int (Int64.sub m.Machine.clock t0) in
  let respawn_cycles = Integrity.respawn_cost integrity ~pid:victim in
  let ratio = float_of_int respawn_cycles /. float_of_int (max 1 repair_cycles) in
  Format.fprintf fmt
    "  repair %d cycles, respawn %d cycles — respawn/repair %.1fx@."
    repair_cycles respawn_cycles ratio;
  if ratio < 5. then
    failwith
      (Printf.sprintf "scrub: repair only %.1fx cheaper than respawn (need 5x)"
         ratio);
  (* scrub overhead on a served workload, default scrub rate vs none *)
  let requests = if !quick then 40 else 120 in
  let soak ~scrub =
    let m, pids, fleet = boot () in
    let start = m.Machine.clock in
    if scrub then begin
      Fleet.start_scrub fleet;
      List.iter (fun pid -> ignore (Fleet.scrub_now fleet ~pid)) pids
    end;
    for _ = 1 to requests do
      ignore (Fleet.request fleet get);
      if scrub then ignore (Fleet.scrub_tick fleet)
    done;
    Int64.to_float (Int64.sub m.Machine.clock start)
  in
  let base = soak ~scrub:false in
  let scrubbed = soak ~scrub:true in
  let overhead = (scrubbed -. base) /. base in
  Format.fprintf fmt
    "  workload %.0f cycles bare, %.0f with scrubbing — overhead %.2f%%@."
    base scrubbed (100. *. overhead);
  if overhead > 0.05 then
    failwith
      (Printf.sprintf "scrub: overhead %.2f%% exceeds the 5%% bound"
         (100. *. overhead));
  (* determinism: the same seeded flip-and-heal soak twice must dump a
     byte-identical registry (virtual instrumentation only, no host) *)
  let soak_dump () =
    let m, pids, fleet = boot () in
    Fleet.start_scrub fleet;
    List.iter (fun pid -> ignore (Fleet.scrub_now fleet ~pid)) pids;
    let rng = Rng.create 1108 in
    List.iter (fun pid -> ignore (Machine.bitflip m ~pid rng)) pids;
    for _ = 1 to requests / 2 do
      ignore (Fleet.request fleet get);
      ignore (Fleet.scrub_tick fleet)
    done;
    List.iter (fun pid -> ignore (Fleet.scrub_now fleet ~pid)) pids;
    Obs.dump_json ()
  in
  let d1 = soak_dump () and d2 = soak_dump () in
  if not (String.equal d1 d2) then
    failwith "scrub: two seeded soaks dumped different registries";
  Format.fprintf fmt "  determinism: two seeded soaks byte-identical (%d bytes)@."
    (String.length d1);
  let oc = open_out "BENCH_scrub.json" in
  Printf.fprintf oc "{\n  \"app\": %S,\n  \"workers\": %d" app.Workload.a_name n;
  List.iter
    (fun (interval, latency) ->
      Printf.fprintf oc ",\n  \"detect_cycles_interval_%d\": %Ld" interval
        latency)
    detection;
  Printf.fprintf oc ",\n  \"repair_cycles\": %d" repair_cycles;
  Printf.fprintf oc ",\n  \"respawn_cycles\": %d" respawn_cycles;
  Printf.fprintf oc ",\n  \"respawn_over_repair\": %.1f" ratio;
  Printf.fprintf oc ",\n  \"overhead_frac\": %.4f" overhead;
  Printf.fprintf oc ",\n  \"deterministic\": true\n}\n";
  close_out oc;
  Format.fprintf fmt "  wrote BENCH_scrub.json@."

(* ---------- slice: sliced-away wins + tracing overhead ---------- *)

(* The dataflow-slicing ledger: how many covered blocks the slicer cuts
   *beyond* the coverage diff on ltpd and rkv (the Sliced_away class is
   disjoint from the classic one by construction — candidates live
   inside the wanted coverage), whether the cut survives the verifier
   convergence loop with the wanted feature intact, that a seeded
   counterexample restores a wrongly sliced block bit-for-bit
   reproducibly, and what the per-instruction tracer costs while
   attached (min-vs-min, same discipline as BENCH_obs.json). Two seeded
   profiling runs must produce byte-identical observability dumps.
   Emits BENCH_slice.json. *)
let run_slice () =
  Common.section fmt "Slice: sliced-away candidates, verify loop, overhead";
  let apps = [ Workload.ltpd; Workload.rkv ] in
  let per_app =
    List.map
      (fun app ->
        let name = app.Workload.a_name in
        Fault.reset ();
        Obs.reset ();
        let p = Slicelab.profile app in
        Format.fprintf fmt
          "  %s: %d covered blocks, %d slice points -> %d sliced away (%d own)@."
          name p.Slicelab.p_report.Tracediff.n_covered
          p.Slicelab.p_report.Tracediff.n_slice_points
          (List.length p.Slicelab.p_report.Tracediff.sliced)
          (List.length p.Slicelab.p_blocks);
        if p.Slicelab.p_blocks = [] then
          failwith (Printf.sprintf "slice: no sliced-away candidates on %s" name);
        let classic, overlap =
          Slicelab.coverage_diff_overlap app p.Slicelab.p_blocks
        in
        if overlap <> 0 then
          failwith
            (Printf.sprintf
               "slice: %d of %s's sliced-away blocks overlap the coverage \
                diff — the class is not additive"
               overlap name);
        Format.fprintf fmt
          "  %s: coverage diff finds %d blocks; all %d sliced-away blocks \
           are extra@."
          name classic
          (List.length p.Slicelab.p_blocks);
        (* cut the candidates and let the verifier evict false
           positives; the wanted feature must come through intact *)
        let v =
          Slicelab.cut_and_converge app ~blocks:p.Slicelab.p_blocks ()
        in
        Format.fprintf fmt "  %s: %a" name Slicelab.pp_converge v;
        (match v.Slicelab.v_rollout with
        | Supervisor.R_promoted -> ()
        | r ->
            failwith
              (Format.asprintf "slice: %s rollout %a" name Supervisor.pp_rollout
                 r));
        if v.Slicelab.v_kept = [] then
          failwith
            (Printf.sprintf
               "slice: verifier evicted every candidate on %s — no win" name);
        List.iter
          (fun r ->
            let reply = Workload.rpc v.Slicelab.v_ctx r in
            let ok =
              if name = "rkv" then
                String.length reply > 0 && reply.[0] = '$' && reply <> "$-1"
              else
                String.length reply >= 12
                && String.sub reply 0 12 = "HTTP/1.0 200"
            in
            if not ok then
              failwith
                (Printf.sprintf "slice: %s wanted feature broken post-cut: %s"
                   name reply))
          (Slicelab.drive_requests app);
        (name, p, classic, v))
      apps
  in
  (* seeded counterexample: the converged cut only exercised the GET
     drive, so the other verbs' arms stay cut — probing one (HEAD) must
     trap, restore the block bit-for-bit, serve the reply intact, and
     surface the eviction through verifier feedback; the whole scenario
     must replay identically from the same seed *)
  let counterexample () =
    let app = Workload.ltpd in
    Fault.reset ();
    let p = Slicelab.profile app in
    let base = (Common.app_exe app).Self.base in
    (* pristine first bytes of every candidate, from an uncut instance *)
    let pc = Workload.spawn app in
    Workload.wait_ready pc;
    let pristine_byte (b : Covgraph.block) =
      Mem.peek8
        (Machine.proc_exn pc.Workload.m pc.Workload.pid).Proc.mem
        (Int64.add base (Int64.of_int b.Covgraph.b_off))
    in
    let pristine =
      List.map (fun b -> (b, pristine_byte b)) p.Slicelab.p_blocks
    in
    let v = Slicelab.cut_and_converge app ~blocks:p.Slicelab.p_blocks () in
    let c = v.Slicelab.v_ctx in
    let probe, expect = Slicelab.probe_request app in
    let reply = Workload.rpc c probe in
    let elen = String.length expect in
    if String.length reply < elen || String.sub reply 0 elen <> expect then
      failwith ("slice: probe not served through the verifier: " ^ reply);
    let before = Supervisor.blocks v.Slicelab.v_sup in
    let dropped_n = Supervisor.verifier_feedback v.Slicelab.v_sup in
    if dropped_n = 0 then
      failwith "slice: probe produced no verifier counterexample";
    let after = Supervisor.blocks v.Slicelab.v_sup in
    let dropped = List.filter (fun b -> not (List.mem b after)) before in
    (* bit-for-bit: the restored first byte equals the linked binary's *)
    List.iter
      (fun (b : Covgraph.block) ->
        let live =
          Mem.peek8
            (Machine.proc_exn c.Workload.m c.Workload.pid).Proc.mem
            (Int64.add base (Int64.of_int b.Covgraph.b_off))
        in
        let want = List.assoc b pristine in
        if live <> want then
          failwith
            (Printf.sprintf "slice: restored block %s+0x%x byte %02x != %02x"
               b.Covgraph.b_module b.Covgraph.b_off live want))
      dropped;
    List.map
      (fun (b : Covgraph.block) -> (b.Covgraph.b_module, b.Covgraph.b_off))
      dropped
  in
  let cex1 = counterexample () in
  let cex2 = counterexample () in
  if cex1 <> cex2 then
    failwith "slice: seeded counterexample scenario did not replay identically";
  Format.fprintf fmt
    "  counterexample: %d block(s) restored bit-for-bit, replayed identically@."
    (List.length cex1);
  (* tracing overhead: serve the profiling mix with and without the
     slicer attached, best-of-interleaved (the obs discipline). The
     per-instruction hook is allowed to be expensive — the check bounds
     it (and catches a hook that never detaches: the off runs would
     slow down and push the ratio under 1) *)
  let serve ~sliced =
    Gc.compact ();
    let c = Workload.spawn ~seed:44 Workload.ltpd in
    Workload.wait_ready c;
    let sl =
      if sliced then
        Some
          (Slicer.attach c.Workload.m ~pid:c.Workload.pid
             ~wanted_out:(Slicelab.wanted_out_of Workload.ltpd) ())
      else None
    in
    let (), dt =
      Stats.time_it (fun () ->
          List.iter
            (fun r -> ignore (Workload.rpc c r))
            (Slicelab.profile_requests Workload.ltpd))
    in
    Option.iter Slicer.detach sl;
    dt
  in
  let iters = if !quick then 3 else 7 in
  let best l = List.fold_left min infinity l in
  let measure () =
    ignore (serve ~sliced:true);
    ignore (serve ~sliced:false);
    let on = ref [] and off = ref [] in
    for i = 1 to iters do
      if i mod 2 = 0 then begin
        on := serve ~sliced:true :: !on;
        off := serve ~sliced:false :: !off
      end
      else begin
        off := serve ~sliced:false :: !off;
        on := serve ~sliced:true :: !on
      end
    done;
    (best !on, best !off)
  in
  let attempts = 3 in
  let rec bounded k =
    let m_on, m_off = measure () in
    let ratio = m_on /. m_off in
    (* the tracer must cost something (>= 1x beyond jitter) and stay
       within an order of magnitude of the interpreter (it adds a
       bounded amount of work per instruction) *)
    if ratio >= 0.98 && ratio <= 25. then (m_on, m_off, ratio)
    else if k < attempts then begin
      Format.fprintf fmt
        "  overhead ratio %.2fx outside [0.98, 25]; re-measuring (%d/%d)@."
        ratio (k + 1) attempts;
      bounded (k + 1)
    end
    else
      failwith
        (Printf.sprintf
           "slice: tracing overhead %.2fx outside [0.98, 25] after %d \
            attempts"
           ratio attempts)
  in
  let m_on, m_off, ratio = bounded 1 in
  Format.fprintf fmt
    "  serve best-case: slicer on %.6f s, off %.6f s — %.2fx@." m_on m_off
    ratio;
  (* determinism: two seeded profiles dump byte-identical registries
     and identical slices *)
  let dump () =
    Obs.reset ();
    let p = Slicelab.profile Workload.rkv in
    (p.Slicelab.p_points, Obs.dump_json ())
  in
  let pts1, d1 = dump () in
  let pts2, d2 = dump () in
  if pts1 <> pts2 then failwith "slice: two seeded profiles sliced differently";
  if not (String.equal d1 d2) then
    failwith "slice: two seeded profiles dumped different registries";
  Format.fprintf fmt
    "  determinism: seeded profiles byte-identical (%d bytes, %d points)@."
    (String.length d1) (List.length pts1);
  let oc = open_out "BENCH_slice.json" in
  Printf.fprintf oc "{\n  \"apps\": [%s]"
    (String.concat ", "
       (List.map (fun (n, _, _, _) -> Printf.sprintf "%S" n) per_app));
  List.iter
    (fun (n, p, classic, v) ->
      Printf.fprintf oc ",\n  \"%s_covered\": %d" n
        p.Slicelab.p_report.Tracediff.n_covered;
      Printf.fprintf oc ",\n  \"%s_slice_points\": %d" n
        p.Slicelab.p_report.Tracediff.n_slice_points;
      Printf.fprintf oc ",\n  \"%s_sliced_away\": %d" n
        (List.length p.Slicelab.p_blocks);
      Printf.fprintf oc ",\n  \"%s_coverage_diff\": %d" n classic;
      Printf.fprintf oc ",\n  \"%s_extra_beyond_coverage_diff\": %d" n
        (List.length p.Slicelab.p_blocks);
      Printf.fprintf oc ",\n  \"%s_kept_after_verify\": %d" n
        (List.length v.Slicelab.v_kept);
      Printf.fprintf oc ",\n  \"%s_verifier_restored\": %d" n
        (List.length v.Slicelab.v_restored);
      Printf.fprintf oc ",\n  \"%s_converge_rounds\": %d" n
        v.Slicelab.v_rounds)
    per_app;
  Printf.fprintf oc ",\n  \"counterexample_blocks\": %d" (List.length cex1);
  Printf.fprintf oc ",\n  \"serve_s_slicer_on\": %.6f" m_on;
  Printf.fprintf oc ",\n  \"serve_s_slicer_off\": %.6f" m_off;
  Printf.fprintf oc ",\n  \"tracing_overhead_x\": %.2f" ratio;
  Printf.fprintf oc ",\n  \"deterministic\": true\n}\n";
  close_out oc;
  Format.fprintf fmt "  wrote BENCH_slice.json@."

(* ---------- experiment registry ---------- *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("fig2", "memory footprint maps (605.mcf_s, ltpd)", fun () -> ignore (Fig2.run fmt));
    ("fig4", "tracediff feature discovery output", fun () -> ignore (Fig4.run fmt));
    ("fig6", "feature-customization latency breakdown", fun () -> ignore (Fig6.run fmt));
    ("fig7", "init-code removal latency + validation", fun () -> ignore (Fig7.run fmt));
    ("fig8", "rkv throughput timeline (disable/re-enable SET)", fun () -> ignore (Fig8.run fmt));
    ("fig9", "executed vs removed basic blocks", fun () -> ignore (Fig9.run fmt));
    ("fig10", "live blocks over time vs RAZOR/Chisel", fun () -> ignore (Fig10.run fmt));
    ("table1", "Redis CVE mitigation", fun () -> ignore (Table1.run fmt));
    ("security", "PLT removal + BROP gadget census (§4.2)", fun () -> ignore (Security.run fmt));
    ("ablation", "policy / normalization / autophase / libcut ablations", fun () -> ignore (Ablation.run fmt));
    ("robustness", "journaling overhead + crash-recovery time (§5d)", run_robustness);
    ("obs", "observability breakdown + registry overhead", run_obs);
    ("fleet", "fan-out throughput + rollout pause per wave (§6a)", run_fleet);
    ("overload", "goodput + p99 vs offered load, shed on/off (§6b)", run_overload);
    ("chaos", "site x mode fault coverage + invariant oracles (§6c)", run_chaos);
    ("scrub", "memory-integrity scrubbing: detection, repair economics (§6d)", run_scrub);
    ("slice", "dataflow slicing: sliced-away wins + tracing overhead (§7)", run_slice);
    ("micro", "bechamel micro-benchmarks", run_micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  quick := List.mem "--quick" args;
  let args = List.filter (fun a -> a <> "--quick") args in
  let to_run =
    match args with
    (* --quick alone = the obs smoke run (ci.sh's fast bench gate) *)
    | [] when !quick ->
        List.filter (fun (id, _, _) -> id = "obs") experiments
    | [] | [ "all" ] -> experiments
    | names ->
        List.map
          (fun n ->
            match List.find_opt (fun (id, _, _) -> id = n) experiments with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" n
                  (String.concat ", " (List.map (fun (id, _, _) -> id) experiments));
                exit 2)
          names
  in
  Format.fprintf fmt "DynaCut reproduction benchmark harness (%d experiments)@."
    (List.length to_run);
  List.iter
    (fun (id, desc, f) ->
      Format.fprintf fmt "@.>>> %s — %s@." id desc;
      let (), dt = Stats.time_it f in
      Format.fprintf fmt "<<< %s done in %.2fs (host CPU)@." id dt)
    to_run;
  Format.fprintf fmt "@.All experiments complete.@."
