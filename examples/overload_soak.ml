(* Determinism guard for the overload-resilience path (DESIGN.md §6b).

   The whole point of driving overload on the virtual clock is that a
   saturated run — Poisson arrivals, health-scored dispatch, admission
   control shedding, deadline timeouts, jittered retries — replays
   bit-for-bit from its seed. This soak runs the same saturating
   scenario twice from scratch and asserts the two observability dumps
   (counters, gauges, histograms, the event ring with its virtual-cycle
   timestamps) are byte-identical, and that the run actually exercised
   the machinery (shed > 0, retries > 0). A host-time leak into the
   deterministic surface, an iteration-order dependence in the balancer,
   or an un-seeded random draw anywhere in the path breaks this
   immediately. *)

let app = Workload.ltpd
let get = Workload.http_get "/index.html"

let soak () =
  Obs.reset ();
  Fault.reset ();
  let blocks = Common.web_feature_blocks app in
  let policy =
    { Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }
  in
  let n = 3 in
  let ctxs = Workload.spawn_fleet ~n app in
  Workload.wait_fleet_ready ctxs;
  let m = (List.hd ctxs).Workload.m in
  let pids = List.map (fun c -> c.Workload.pid) ctxs in
  (* a low watermark + shallow queues so saturation sheds early *)
  let balancer =
    {
      (Balancer.default_config ~workers:n) with
      Balancer.b_shed_high = 3;
      b_shed_low = 1;
      b_backlog_max = 2;
    }
  in
  let fleet = Fleet.create ~balancer m ~port:Ltpd.port ~pids ~blocks ~policy in
  let cfg =
    {
      Loadgen.default_config with
      Loadgen.lg_seed = 42;
      lg_offered = 150.;
      lg_requests = 80;
      lg_deadline = 150_000L;
      lg_retry_budget = 40;
    }
  in
  let st = Fleet.overload fleet cfg ~text:get in
  (st, Obs.dump_json ())

let () =
  let st1, dump1 = soak () in
  let st2, dump2 = soak () in
  Format.printf "run 1: %a@." Loadgen.pp_stats st1;
  Format.printf "run 2: %a@." Loadgen.pp_stats st2;
  if st1.Loadgen.s_shed = 0 then
    failwith "overload_soak: admission control never shed — not saturated";
  if st1.Loadgen.s_retries = 0 then
    failwith "overload_soak: no retries — backoff path never exercised";
  if dump1 <> dump2 then begin
    Format.printf "dump 1 (%d bytes) <> dump 2 (%d bytes)@."
      (String.length dump1) (String.length dump2);
    failwith "overload_soak: same seed produced different observability dumps"
  end;
  Format.printf
    "overload soak deterministic: %d bytes of metrics identical across runs \
     (shed=%d timeouts=%d retries=%d)@."
    (String.length dump1) st1.Loadgen.s_shed st1.Loadgen.s_timeouts
    st1.Loadgen.s_retries
