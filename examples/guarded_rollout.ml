(** Guarded rollout — the post-cut supervisor end to end.

    A cut that survives the transactional pipeline can still be the
    *wrong* cut: the coverage diff may have swept a wanted path into the
    undesired set. The supervisor turns that from an outage into a
    non-event:

    1. a *good* cut (disable PUT/DELETE) rolls out canary-first: one ngx
       worker takes the cut, serves a wanted-traffic observation window,
       and only then is the cut promoted to the whole tree;
    2. a *bad* cut (the wanted GET path under `Terminate — the first GET
       kills whatever serves it) is stopped by the canary: the worker
       that died is rebuilt from its pristine image and the master never
       sees a single patched byte;
    3. a trap-storm against a dispatch-arm cut trips the circuit
       breaker: the feature is auto-re-enabled, a half-open probe
       re-cuts after the cooldown, and a second storm abandons the cut
       for good — every decision stamped with the virtual clock.

    Run with: dune exec examples/guarded_rollout.exe *)

let get = "GET /index.html HTTP/1.0\r\n\r\n"
let put = "PUT /evil.html HTTP/1.0\r\n\r\nowned"

let status resp =
  match String.index_opt resp ' ' with
  | Some k when String.length resp >= k + 4 -> String.sub resp (k + 1) 3
  | _ -> "dead"

let () =
  Fault.reset ();
  let app = Workload.ngx in
  let c = Workload.spawn app in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let drive () = ignore (Workload.rpc ~max_cycles:800_000 c get) in
  let config = { Supervisor.default_config with Supervisor.canary_windows = 1 } in

  Printf.printf "ngx up (pids %s): GET -> %s, PUT -> %s\n\n"
    (String.concat "," (List.map string_of_int (Dynacut.tree_pids session)))
    (status (Workload.rpc c get))
    (status (Workload.rpc c put));

  (* 1. a good cut promotes: canary worker first, then the whole tree *)
  print_endline "-- good cut (disable PUT/DELETE), canary first --";
  let good =
    Supervisor.create session ~config
      ~blocks:(Common.web_feature_blocks app)
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "ngx_declined" }
  in
  let r = Supervisor.guarded_cut good ~canary:true ~drive () in
  Format.printf "rollout: %a; GET -> %s, PUT -> %s@." Supervisor.pp_rollout r
    (status (Workload.rpc c get))
    (status (Workload.rpc c put));
  print_endline (Supervisor.render_log good);
  (* roll the good cut back so the next act starts clean *)
  ignore (Dynacut.try_reenable session (Supervisor.journals good));

  (* 2. a bad cut is absorbed by the canary: the master never sees it *)
  print_endline "\n-- bad cut (wanted GET path under `Terminate), canary first --";
  let bad =
    Supervisor.create session ~config
      ~blocks:
        [
          Supervisor.block_of_sym (Common.app_exe app) ~module_:"ngx"
            ~sym:"ngx_http_get";
        ]
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Terminate }
  in
  let r = Supervisor.guarded_cut bad ~canary:true ~drive () in
  Format.printf "rollout: %a; GET -> %s (worker respawned pristine)@."
    Supervisor.pp_rollout r
    (status (Workload.rpc c get));
  print_endline (Supervisor.render_log bad);

  (* 3. the circuit breaker: storm -> trip -> auto re-enable -> half-open
     probe -> second storm -> abandoned. The "feature" is an inverted
     trace diff (wanted = PUT, undesired = GET): under [`Redirect
     "ngx_http_403"] the same-function filter keeps exactly the GET
     dispatch arm inside [ngx_http_handler] — so every wanted GET traps,
     deterministically. *)
  print_endline "\n-- trap-storm circuit breaker (no canary: worst case) --";
  let storm_blocks =
    let cfg_of = Common.cfg_of_app app in
    let _, wanted =
      Workload.trace_requests ~app ~requests:[ put ] ~nudge_at_ready:true ()
    in
    let _, undesired =
      Workload.trace_requests ~app ~requests:[ get ] ~nudge_at_ready:true ()
    in
    (Tracediff.feature_blocks ~cfg_of ~wanted:[ wanted ] ~undesired:[ undesired ]
       ())
      .Tracediff.undesired
  in
  let storm_cfg =
    {
      config with
      Supervisor.window = 5_000_000L;
      max_traps = 2;
      cooldown = 10_000_000L;
      max_trips = 2;
    }
  in
  let m = c.Workload.m in
  let storm =
    Supervisor.create session ~config:storm_cfg ~blocks:storm_blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "ngx_http_403" }
  in
  ignore (Supervisor.guarded_cut storm ~canary:false ~drive:(fun () -> ()) ());
  let storm_round () =
    for _ = 1 to 3 do drive () done;
    Supervisor.tick storm;
    Format.printf "after storm: breaker %a, GET -> %s@." Supervisor.pp_breaker
      (Supervisor.breaker_state storm)
      (status (Workload.rpc c get))
  in
  storm_round ();
  (* cooldown elapses in virtual time; the next tick half-open probes *)
  m.Machine.clock <- Int64.add m.Machine.clock storm_cfg.Supervisor.cooldown;
  Supervisor.tick storm;
  Format.printf "after cooldown: breaker %a (probe re-cut)@." Supervisor.pp_breaker
    (Supervisor.breaker_state storm);
  storm_round ();
  print_endline (Supervisor.render_log storm);
  assert (Supervisor.breaker_state storm = Supervisor.Abandoned);
  assert (Proc.is_live (Machine.proc_exn m c.Workload.pid))
