(** Adaptive fleet orchestration end-to-end (DESIGN.md §6a) — the PR's
    acceptance scenario, deterministic from one seed:

    1. boot 6 ltpd workers behind the kernel's round-robin fan-out and
       roll the PUT/DELETE cut out in 3 waves; during wave 3 the traffic
       turns PUT-heavy, the wave's canary breaches its trap SLO, and the
       rollout halts — waves 1–2 stay cut, wave 3 stays original;
    2. the PUT-heavy traffic keeps hammering the cut workers: the drift
       monitor sees the fleet-wide trap storm and re-enables the feature
       everywhere — exactly one automatic re-enable;
    3. traffic goes back to the wanted mix: the feature coverage goes
       cold, and after the hysteresis the monitor re-cuts the whole
       fleet — exactly one automatic re-cut;
    4. the whole scenario runs twice from the same seed and must produce
       byte-identical [Obs.dump_json] output.

    Run with: dune exec examples/fleet_rollout.exe *)

exception Demo_failure of string

let fail fmt = Printf.ksprintf (fun s -> raise (Demo_failure s)) fmt

let app = Workload.ltpd
let n_workers = 6
let n_waves = 3
let put = Workload.http_put "/upload.txt" "hello upload"
let delete = Workload.http_delete "/upload.txt"

let status resp =
  match String.index_opt resp ' ' with
  | Some k when String.length resp >= k + 4 -> String.sub resp (k + 1) 3
  | _ -> "???"

(* feature discovery is deterministic; do it once for both runs *)
let blocks = Common.web_feature_blocks app
let exe_base = (Common.app_exe app).Self.base

let byte_of m pid (b : Covgraph.block) =
  Mem.peek8 (Machine.proc_exn m pid).Proc.mem
    (Int64.add exe_base (Int64.of_int b.Covgraph.b_off))

(** Every effective block of [pid] is int3 (cut) XOR matches
    [originals] (byte-original). *)
let assert_state ~what m effective originals pid expect_cut =
  let got = List.map (byte_of m pid) effective in
  let all_cut = List.for_all (fun x -> x = 0xCC) got in
  let all_orig = got = originals in
  if not (all_cut || all_orig) then fail "%s: pid %d is half-patched" what pid;
  if expect_cut && not all_cut then fail "%s: pid %d should be cut" what pid;
  if (not expect_cut) && not all_orig then
    fail "%s: pid %d should be original" what pid

let run () : string =
  Obs.reset ();
  Fault.reset ();
  let ctxs = Workload.spawn_fleet ~seed:42 ~traced:true ~n:n_workers app in
  Workload.wait_fleet_ready ctxs;
  let m = (List.hd ctxs).Workload.m in
  let pids = List.map (fun c -> c.Workload.pid) ctxs in
  let policy =
    { Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }
  in
  let fleet = Fleet.create m ~port:Ltpd.port ~pids ~blocks ~policy in
  let send reqs =
    List.iter (fun r -> ignore (Fleet.request fleet r)) reqs
  in
  let wanted_batch = Workload.web_wanted in
  let put_batch = List.init 24 (fun _ -> put) in

  (* -- phase 1: 3-wave rollout; traffic turns PUT-heavy during wave 3 -- *)
  let drive () =
    let wave = int_of_float (Obs.gauge_value (Obs.gauge "fleet.wave")) in
    if wave >= n_waves then send put_batch else send wanted_batch
  in
  let outcome, reports =
    Fleet.rollout fleet ~config:Rollout.{ default_config with r_waves = n_waves }
      ~drive ()
  in
  (match outcome with
  | Rollout.Halted { wave; reason } when wave = n_waves ->
      Printf.printf "rollout: halted at wave %d (%s), %d waves committed\n"
        wave reason (List.length reports)
  | o -> fail "rollout did not halt at wave %d: %s" n_waves
           (Format.asprintf "%a" Rollout.pp_outcome o));
  let effective =
    let w = List.hd (Fleet.workers fleet) in
    Dynacut.redirect_filter w.Rollout.w_session ~sym:"ltpd_403" blocks
  in
  if effective = [] then fail "no effective blocks under the redirect filter";
  (* waves 1–2 committed and stayed cut; wave 3 reverted to original.
     originals are read from a wave-3 pid, still byte-original *)
  let wave_of pid = (Fleet.worker fleet ~pid).Rollout.w_wave in
  let wave3_pid = List.find (fun pid -> wave_of pid = n_waves) pids in
  let originals = List.map (byte_of m wave3_pid) effective in
  List.iter
    (fun pid ->
      assert_state ~what:"after halt" m effective originals pid
        (wave_of pid < n_waves))
    pids;

  (* -- phase 2: the trap storm continues; one automatic re-enable -- *)
  Fleet.start_drift fleet
    ~config:
      Drift.
        {
          default_config with
          d_period = 50_000L;
          d_trap_threshold = 4;
          d_hysteresis = 2;
        }
    ~collector:(Workload.collector (List.hd ctxs))
    ();
  let actions = ref [] in
  let spin batch rounds =
    for _ = 1 to rounds do
      send batch;
      match Fleet.tick fleet with
      | Some a -> actions := a :: !actions
      | None -> ()
    done
  in
  spin put_batch 4;
  (match !actions with
  | [ Drift.Reenabled k ] ->
      Printf.printf "drift: re-enabled %d workers after the trap storm\n" k
  | l -> fail "expected exactly one re-enable, got %d actions" (List.length l));
  List.iter
    (fun pid -> assert_state ~what:"after reenable" m effective originals pid false)
    pids;
  (* warm window: clear the uploads on every worker. The deletes are
     routed per-worker directly — the health-scored balancer spreads a
     fleet batch by load, not position, so a broadcast through it can
     miss a worker and leave its occupied-slot scan warm under wanted
     GETs, blocking the re-cut forever *)
  List.iter (fun c -> ignore (Workload.rpc c delete)) ctxs;
  (match Fleet.tick fleet with
  | Some a ->
      fail "cleanup round acted: %s" (Format.asprintf "%a" Drift.pp_action a)
  | None -> ());

  (* -- phase 3: traffic reverts to wanted; one automatic re-cut -- *)
  actions := [];
  spin wanted_batch 4;
  (match !actions with
  | [ Drift.Recut k ] ->
      Printf.printf "drift: re-cut %d workers after the cold streak\n" k
  | l -> fail "expected exactly one re-cut, got %d actions" (List.length l));
  List.iter
    (fun pid -> assert_state ~what:"after recut" m effective originals pid true)
    pids;
  (* the recut fleet blocks the feature again *)
  (match Fleet.request fleet put with
  | `Reply (_, resp) ->
      let s = status resp in
      if s <> "403" then fail "PUT after recut answered %s, not 403" s
  | `Refused | `Shed | `Timed_out _ -> fail "PUT after recut refused");
  (match Fleet.request fleet (Workload.http_get "/index.html") with
  | `Reply (_, resp) ->
      let s = status resp in
      if s <> "200" then fail "GET after recut answered %s, not 200" s
  | `Refused | `Shed | `Timed_out _ -> fail "GET after recut refused");

  (* -- epilogue: serve a wanted batch through the decoded-block cache,
     so the two-run byte-identity check below also pins cached
     execution (bbcache.* counters included) -- *)
  let bb = Bbcache.enable m in
  send wanted_batch;
  (match Fleet.request fleet (Workload.http_get "/index.html") with
  | `Reply (_, resp) ->
      let s = status resp in
      if s <> "200" then fail "cached GET answered %s, not 200" s
  | `Refused | `Shed | `Timed_out _ -> fail "cached GET refused");
  if (Bbcache.stats bb).Bbcache.st_hits = 0 then
    fail "cached epilogue never hit the code cache";
  Bbcache.disable bb;
  Obs.dump_json ()

let () =
  match run () with
  | exception Demo_failure msg ->
      Printf.printf "fleet_rollout FAILED: %s\n" msg;
      exit 1
  | dump1 -> (
      match run () with
      | exception Demo_failure msg ->
          Printf.printf "fleet_rollout FAILED on replay: %s\n" msg;
          exit 1
      | dump2 ->
          if dump1 <> dump2 then begin
            Printf.printf
              "fleet_rollout FAILED: two runs from the same seed diverged\n";
            exit 1
          end;
          Printf.printf
            "replay: byte-identical Obs.dump_json across two runs (%d bytes)\n"
            (String.length dump1);
          Printf.printf "fleet_rollout: ok\n")
