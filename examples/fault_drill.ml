(** Fault drill — the transactional cut pipeline under injected
    failures. A live-rewrite middleware must never trade availability
    for customization: every stage of cut (checkpoint → rewrite →
    inject → validate → restore) can fail, and whatever fails, the
    target either runs the fully-applied cut or is exactly the process
    it was before.

    The drill boots ngx, then:
    1. injects a one-shot fault at each pipeline site in turn and shows
       the transaction rolling back with the server still answering;
    2. marks a fault transient and shows the retry path absorbing it;
    3. runs a clean cut and probes the now-blocked feature.

    Run with: dune exec examples/fault_drill.exe *)

let get = "GET /index.html HTTP/1.0\r\n\r\n"
let put = "PUT /evil.html HTTP/1.0\r\n\r\nowned"

let status resp =
  match String.index_opt resp ' ' with
  | Some k when String.length resp >= k + 4 -> String.sub resp (k + 1) 3
  | _ -> "???"

let () =
  let app = Workload.ngx in
  let blocks = Common.web_feature_blocks app in
  let c = Workload.spawn app in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let policy =
    { Dynacut.method_ = `First_byte; on_trap = `Redirect "ngx_declined" }
  in

  Printf.printf "ngx up (pid %d): GET -> %s, PUT -> %s\n\n" c.Workload.pid
    (status (Workload.rpc c get))
    (status (Workload.rpc c put));

  print_endline "-- drill: one-shot fault at every pipeline site --";
  List.iter
    (fun site ->
      Fault.reset ();
      Fault.arm site Fault.One_shot;
      let r = Dynacut.try_cut session ~blocks ~policy () in
      Format.printf "%-18s %a; GET -> %s@." site Dynacut.pp_outcome
        r.Dynacut.r_outcome
        (status (Workload.rpc c get)))
    [
      "criu.checkpoint";
      "criu.save";
      "criu.load";
      "rewrite.patch";
      "inject.lib";
      "inject.policy";
      "restore.process";
    ];

  print_endline "\n-- drill: transient fault, absorbed by retry --";
  Fault.reset ();
  Fault.arm ~transient:true "criu.save" Fault.One_shot;
  let r = Dynacut.try_cut session ~blocks ~policy () in
  Format.printf "criu.save (transient): %a after %d retry(s), %d backoff cycles@."
    Dynacut.pp_outcome r.Dynacut.r_outcome r.Dynacut.r_retries
    r.Dynacut.r_backoff_cycles;
  Fault.reset ();

  Printf.printf "\ncustomized: GET -> %s, PUT -> %s (blocked via ngx_declined)\n"
    (status (Workload.rpc c get))
    (status (Workload.rpc c put));
  assert (Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid))
