(** Crash-recovery matrix — the §5d acceptance gate, run by ci.sh.

    For every site in [Fault.known_sites] the matrix stages a controller
    death there (kill-mode fault: [Controller_killed] unwinds past the
    transaction's own rollback, exactly like a dead process), then runs
    [Dynacut.recover] as a fresh controller and asserts the §5d
    invariant on the ngx fleet:

    - {b applied XOR unchanged, per pid}: every worker's feature blocks
      are all int3 or all original bytes — never mixed within a pid;
    - the server still answers wanted traffic;
    - the site actually fired (a site no scenario reaches fails the
      matrix — the registry and the matrix must not drift apart).

    Run with: dune exec examples/crash_matrix.exe *)

exception Matrix_failure of string

let fail fmt = Printf.ksprintf (fun s -> raise (Matrix_failure s)) fmt

let app = Workload.ngx
let get = "GET /index.html HTTP/1.0\r\n\r\n"
let put = "PUT /evil.html HTTP/1.0\r\n\r\nowned"

let status resp =
  match String.index_opt resp ' ' with
  | Some k when String.length resp >= k + 4 -> String.sub resp (k + 1) 3
  | _ -> "???"

(* feature discovery is deterministic — do it once for all scenarios *)
let blocks = Common.web_feature_blocks app

let policy_for method_ =
  { Dynacut.method_; on_trap = `Redirect "ngx_declined" }

let boot () =
  let c = Workload.spawn app in
  Workload.wait_ready c;
  c

let byte_of (c : Workload.ctx) pid (b : Covgraph.block) =
  Mem.peek8
    (Machine.proc_exn c.Workload.m pid).Proc.mem
    (Int64.add (Common.app_exe app).Self.base (Int64.of_int b.Covgraph.b_off))

(* the per-pid XOR assertion: each pid fully cut (every effective block
   starts with int3) or fully original, never a mix *)
let assert_xor ~site ~what c session effective originals =
  List.iter
    (fun pid ->
      let got = List.map (byte_of c pid) effective in
      let all_cut = List.for_all (fun x -> x = 0xCC) got in
      let all_orig = got = originals in
      if not (all_cut || all_orig) then
        fail "%s: %s: pid %d is half-patched (%s)" site what pid
          (String.concat "," (List.map string_of_int got)))
    (Dynacut.tree_pids session)

let assert_serving ~site ~what c =
  let s = status (Workload.rpc c get) in
  if s <> "200" then fail "%s: %s: GET answered %s, not 200" site what s

let assert_fired site =
  if Fault.fired site <> 1 then
    fail "%s: scenario finished but the site never fired" site

(* ---------- scenarios ---------- *)

(* Controller dies at [site] mid-cut; recovery must leave the fleet
   fully original (the tx never committed), after which a clean cut
   must still go through — both sides of the XOR. [tcp] keeps a client
   connection open across the cut (restore.tcp_repair is only on the
   path when there is a connection to repair). *)
let plain ?(method_ = `First_byte) ?(tcp = false) site =
  let c = boot () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let effective =
    Dynacut.redirect_filter session ~sym:"ngx_declined" blocks
  in
  let originals = List.map (byte_of c c.Workload.pid) effective in
  let in_flight =
    if tcp then begin
      (* open a connection and let the server block in recv on it, so
         the restore stage has TCP state to repair *)
      let conn = Net.connect c.Workload.m.Machine.net Ngx.port in
      ignore (Machine.run c.Workload.m ~max_cycles:500_000);
      Some conn
    end
    else None
  in
  Fault.arm ~kill:true site Fault.One_shot;
  (match Dynacut.try_cut session ~blocks ~policy:(policy_for method_) () with
  | (_ : Dynacut.cut_result) -> fail "%s: controller survived its death" site
  | exception Fault.Controller_killed { site = s } ->
      if s <> site then fail "%s: died at %s instead" site s);
  assert_fired site;
  let (_ : Dynacut.recovery) =
    Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid
  in
  assert_xor ~site ~what:"after recover" c session effective originals;
  (* the repaired mid-cut connection survives the crash + rollback:
     the server answers it before it accepts anything new *)
  (match in_flight with
  | None -> ()
  | Some conn ->
      Net.client_send conn get;
      ignore (Machine.run c.Workload.m ~max_cycles:2_000_000);
      let s = status (Net.client_recv conn) in
      if s <> "200" then
        fail "%s: in-flight request answered %s after recover" site s);
  assert_serving ~site ~what:"after recover" c;
  (* the tree must be cuttable again by a fresh controller *)
  let fresh = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  (match
     (Dynacut.try_cut fresh ~blocks ~policy:(policy_for `First_byte) ())
       .Dynacut.r_outcome
   with
  | `Applied | `Degraded -> ()
  | `Rolled_back rb ->
      fail "%s: clean re-cut rolled back at %s" site rb.Dynacut.rb_stage);
  assert_xor ~site ~what:"after re-cut" c fresh effective originals;
  assert_serving ~site ~what:"after re-cut" c

(* Controller dies mid-respawn of a dead worker; recovery redoes the
   unmatched respawn intent and the fleet keeps its committed cut. *)
let respawn site =
  let c = boot () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let effective =
    Dynacut.redirect_filter session ~sym:"ngx_declined" blocks
  in
  let originals = List.map (byte_of c c.Workload.pid) effective in
  let (_ : Rewriter.journal list * Dynacut.timings) =
    Dynacut.cut session ~blocks ~policy:(policy_for `First_byte)
  in
  let worker =
    match Dynacut.tree_pids session with
    | _root :: w :: _ -> w
    | _ -> fail "%s: ngx tree has no worker" site
  in
  Machine.reap c.Workload.m ~pid:worker;
  Fault.arm ~kill:true site Fault.One_shot;
  (match
     Dynacut.journaled_respawn session ~pid:worker
       ~path:(Dynacut.image_path session worker)
   with
  | (_ : Proc.t) -> fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let r = Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid in
  if r.Dynacut.rec_respawned <> [ worker ] then
    fail "%s: recovery did not redo the respawn" site;
  assert_xor ~site ~what:"after recover" c session effective originals;
  assert_serving ~site ~what:"after recover" c

(* Controller dies between the canary commit and the fleet promotion:
   the fleet is legitimately mixed across pids (canary cut, rest
   original) but every single pid must still be all-or-nothing. *)
let promote site =
  let c = boot () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let effective =
    Dynacut.redirect_filter session ~sym:"ngx_declined" blocks
  in
  let originals = List.map (byte_of c c.Workload.pid) effective in
  let sup =
    Supervisor.create session
      ~config:
        { Supervisor.default_config with Supervisor.canary_windows = 1 }
      ~blocks ~policy:(policy_for `First_byte)
  in
  let drive () = ignore (Workload.rpc ~max_cycles:800_000 c get) in
  Fault.arm ~kill:true site Fault.One_shot;
  (match Supervisor.guarded_cut sup ~canary:true ~drive () with
  | (_ : Supervisor.rollout) -> fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let (_ : Dynacut.recovery) =
    Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid
  in
  assert_xor ~site ~what:"after recover" c session effective originals;
  assert_serving ~site ~what:"after recover" c

(* Controller dies as the breaker trips and tries to re-enable: the cut
   stays committed fleet-wide — still XOR-consistent. *)
let reenable site =
  let c = boot () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let effective =
    Dynacut.redirect_filter session ~sym:"ngx_declined" blocks
  in
  let originals = List.map (byte_of c c.Workload.pid) effective in
  let sup =
    Supervisor.create session
      ~config:{ Supervisor.default_config with Supervisor.critical = true }
      ~blocks ~policy:(policy_for `First_byte)
  in
  let drive () = ignore (Workload.rpc ~max_cycles:800_000 c get) in
  (match Supervisor.guarded_cut sup ~canary:false ~drive () with
  | Supervisor.R_promoted -> ()
  | r -> fail "%s: rollout failed: %s" site (Format.asprintf "%a" Supervisor.pp_rollout r));
  (* one undesired request traps in the handler; critical = any trap
     trips the breaker on the next tick *)
  ignore (Workload.rpc ~max_cycles:800_000 c put);
  Fault.arm ~kill:true site Fault.One_shot;
  (match Supervisor.tick sup with
  | () -> fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let (_ : Dynacut.recovery) =
    Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid
  in
  assert_xor ~site ~what:"after recover" c session effective originals;
  assert_serving ~site ~what:"after recover" c

(* Controller dies inside the crit tool: no transaction was open, so
   recovery finds nothing and the fleet is untouched. *)
let crit site =
  let c = boot () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let effective =
    Dynacut.redirect_filter session ~sym:"ngx_declined" blocks
  in
  let originals = List.map (byte_of c c.Workload.pid) effective in
  Machine.freeze c.Workload.m ~pid:c.Workload.pid;
  let img = Checkpoint.dump c.Workload.m ~pid:c.Workload.pid () in
  Machine.thaw c.Workload.m ~pid:c.Workload.pid;
  let blob = Images.encode img in
  let text = Crit.decode_to_text blob in
  Fault.arm ~kill:true site Fault.One_shot;
  (match
     if site = "crit.decode" then ignore (Crit.decode_to_text blob)
     else ignore (Crit.encode_from_text text)
   with
  | () -> fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let r = Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid in
  if r.Dynacut.rec_action <> `Nothing then
    fail "%s: recovery invented work on a quiescent tree" site;
  assert_xor ~site ~what:"after recover" c session effective originals;
  assert_serving ~site ~what:"after recover" c

(* Controller dies inside the slicing tracer — attaching its hooks
   (slice.trace) or folding the dependency sets (slice.compute). The
   tracer is read-only: no transaction is open, recovery must invent no
   work, and a clean tracer retry over the untouched tree still yields
   a slice. *)
let slice_crash site =
  let c = boot () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let effective =
    Dynacut.redirect_filter session ~sym:"ngx_declined" blocks
  in
  let originals = List.map (byte_of c c.Workload.pid) effective in
  let run_slicer () =
    let sl =
      Slicer.attach c.Workload.m ~pid:c.Workload.pid
        ~wanted_out:(Slicelab.wanted_out_of app) ()
    in
    ignore (Workload.rpc c get);
    Slicer.detach sl;
    Slicer.slice sl
  in
  Fault.arm ~kill:true site Fault.One_shot;
  (match run_slicer () with
  | (_ : (string * int * int) list) ->
      fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let r = Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid in
  if r.Dynacut.rec_action <> `Nothing then
    fail "%s: recovery invented work on a quiescent tree" site;
  if run_slicer () = [] then
    fail "%s: clean slicer retry produced an empty slice" site;
  assert_xor ~site ~what:"after recover" c session effective originals;
  assert_serving ~site ~what:"after recover" c

(* Controller dies mid-cut AND the first recovery pass dies too; the
   second recovery pass must converge all the same. *)
let recover_crash site =
  let c = boot () in
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let effective =
    Dynacut.redirect_filter session ~sym:"ngx_declined" blocks
  in
  let originals = List.map (byte_of c c.Workload.pid) effective in
  Fault.arm ~kill:true "restore.process" Fault.One_shot;
  (match Dynacut.try_cut session ~blocks ~policy:(policy_for `First_byte) () with
  | (_ : Dynacut.cut_result) -> fail "%s: first controller survived" site
  | exception Fault.Controller_killed _ -> ());
  Fault.arm ~kill:true site Fault.One_shot;
  (match Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid with
  | (_ : Dynacut.recovery) -> fail "%s: recovery survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let r = Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid in
  if r.Dynacut.rec_action <> `Rolled_back then
    fail "%s: second recovery pass did not roll back" site;
  assert_xor ~site ~what:"after recover" c session effective originals;
  assert_serving ~site ~what:"after recover" c

(* ---------- fleet scenarios (§6a sites) ----------
   These run on an ltpd worker fleet: N single-process trees behind the
   round-robin fan-out, each with its own session + journal, plus the
   fleet manifest. The XOR invariant here is per worker pid. *)

let lapp = Workload.ltpd
let lget = "GET /index.html HTTP/1.0\r\n\r\n"
let lblocks = lazy (Common.web_feature_blocks lapp)

let lpolicy =
  { Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }

let fleet_boot ?balancer ?(traced = false) ~n () =
  let ctxs = Workload.spawn_fleet ~traced ~n lapp in
  Workload.wait_fleet_ready ctxs;
  let m = (List.hd ctxs).Workload.m in
  let pids = List.map (fun c -> c.Workload.pid) ctxs in
  let fleet =
    Fleet.create ?balancer m ~port:Ltpd.port ~pids ~blocks:(Lazy.force lblocks)
      ~policy:lpolicy
  in
  (ctxs, m, pids, fleet)

let fleet_byte m pid (b : Covgraph.block) =
  Mem.peek8
    (Machine.proc_exn m pid).Proc.mem
    (Int64.add (Common.app_exe lapp).Self.base (Int64.of_int b.Covgraph.b_off))

let fleet_effective fleet =
  let w = List.hd (Fleet.workers fleet) in
  Dynacut.redirect_filter w.Rollout.w_session ~sym:"ltpd_403"
    (Lazy.force lblocks)

(* per-pid XOR across the whole fleet, plus the expected side of the XOR
   for every worker ([cut_pids] cut, the rest original) *)
let assert_fleet_xor ~site ~what m pids effective originals ~cut_pids =
  List.iter
    (fun pid ->
      let got = List.map (fleet_byte m pid) effective in
      let all_cut = List.for_all (fun x -> x = 0xCC) got in
      let all_orig = got = originals in
      if not (all_cut || all_orig) then
        fail "%s: %s: pid %d is half-patched" site what pid;
      if List.mem pid cut_pids && not all_cut then
        fail "%s: %s: pid %d should be cut" site what pid;
      if (not (List.mem pid cut_pids)) && not all_orig then
        fail "%s: %s: pid %d should be original" site what pid)
    pids

let assert_fleet_serving ~site ~what fleet =
  match Fleet.request fleet lget with
  | `Reply (_, resp) ->
      let s = status resp in
      if s <> "200" then fail "%s: %s: GET answered %s, not 200" site what s
  | `Refused | `Shed | `Timed_out _ -> fail "%s: %s: fleet refused a GET" site what

let fleet_rollout_config =
  Rollout.
    {
      r_waves = 2;
      r_sup =
        { Supervisor.default_config with Supervisor.canary_windows = 1 };
    }

(* Controller dies at the start of wave 2 of a rolling rollout: wave 1's
   cut committed and must stay; recovery sees only closed waves in the
   manifest and unwinds nothing. *)
let fleet_wave site =
  let _ctxs, m, pids, fleet = fleet_boot ~n:4 () in
  let effective = fleet_effective fleet in
  let originals = List.map (fleet_byte m (List.hd pids)) effective in
  let drive () = ignore (Fleet.request fleet lget) in
  Fault.arm ~kill:true site (Fault.Every_nth 2);
  (match Fleet.rollout fleet ~config:fleet_rollout_config ~drive () with
  | (_ : Rollout.outcome * Rollout.wave_report list) ->
      fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let r = Fleet.recover m ~pids in
  if r.Fleet.fr_unwound <> [] then
    fail "%s: recovery unwound a closed wave" site;
  let wave1 =
    match Rollout.plan ~pids ~waves:2 with w :: _ -> w | [] -> []
  in
  assert_fleet_xor ~site ~what:"after recover" m pids effective originals
    ~cut_pids:wave1;
  assert_fleet_serving ~site ~what:"after recover" fleet

(* Controller dies appending the very first manifest entry (wave 1's
   Wave_begin): the kill fires before the write lands, so there is no
   manifest and no worker was touched — recovery unwinds nothing and the
   fleet is fully original. *)
let fleet_manifest site =
  let _ctxs, m, pids, fleet = fleet_boot ~n:4 () in
  let effective = fleet_effective fleet in
  let originals = List.map (fleet_byte m (List.hd pids)) effective in
  let drive () = ignore (Fleet.request fleet lget) in
  Fault.arm ~kill:true site Fault.One_shot;
  (match Fleet.rollout fleet ~config:fleet_rollout_config ~drive () with
  | (_ : Rollout.outcome * Rollout.wave_report list) ->
      fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let r = Fleet.recover m ~pids in
  if r.Fleet.fr_unwound <> [] then
    fail "%s: recovery unwound an untouched fleet" site;
  assert_fleet_xor ~site ~what:"after recover" m pids effective originals
    ~cut_pids:[];
  assert_fleet_serving ~site ~what:"after recover" fleet

(* Controller dies as the drift monitor begins a fleet-wide re-enable:
   no worker was reverted yet, so the committed cut stays fleet-wide. *)
let fleet_reenable site =
  let ctxs, m, pids, fleet = fleet_boot ~traced:true ~n:4 () in
  let effective = fleet_effective fleet in
  let originals = List.map (fleet_byte m (List.hd pids)) effective in
  let drive () = ignore (Fleet.request fleet lget) in
  (match Fleet.rollout fleet ~config:fleet_rollout_config ~drive () with
  | Rollout.Completed _, _ -> ()
  | o, _ ->
      fail "%s: rollout failed: %s" site
        (Format.asprintf "%a" Rollout.pp_outcome o));
  Fleet.start_drift fleet ~collector:(Workload.collector (List.hd ctxs)) ();
  Fault.arm ~kill:true site Fault.One_shot;
  (match Drift.reenable_fleet (Fleet.drift_monitor fleet) ~traps:99 with
  | (_ : Drift.action) -> fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let r = Fleet.recover m ~pids in
  if r.Fleet.fr_unwound <> [] then
    fail "%s: recovery unwound a completed rollout" site;
  assert_fleet_xor ~site ~what:"after recover" m pids effective originals
    ~cut_pids:pids;
  assert_fleet_serving ~site ~what:"after recover" fleet

(* Controller dies as the drift monitor begins a re-cut: no worker was
   cut yet, so the fleet stays enabled and recovery finds it quiescent. *)
let fleet_recut site =
  let ctxs, m, pids, fleet = fleet_boot ~traced:true ~n:2 () in
  let effective = fleet_effective fleet in
  let originals = List.map (fleet_byte m (List.hd pids)) effective in
  Fleet.start_drift fleet ~collector:(Workload.collector (List.hd ctxs)) ();
  Fault.arm ~kill:true site Fault.One_shot;
  (match Drift.recut_fleet (Fleet.drift_monitor fleet) with
  | (_ : Drift.action option) -> fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let r = Fleet.recover m ~pids in
  if r.Fleet.fr_unwound <> [] then
    fail "%s: recovery unwound an uncut fleet" site;
  assert_fleet_xor ~site ~what:"after recover" m pids effective originals
    ~cut_pids:[];
  assert_fleet_serving ~site ~what:"after recover" fleet

(* Controller dies inside the balancer's dispatch: no transaction was
   open anywhere, recovery must invent no work. *)
let balancer_dispatch site =
  let _ctxs, m, pids, fleet = fleet_boot ~n:2 () in
  let effective = fleet_effective fleet in
  let originals = List.map (fleet_byte m (List.hd pids)) effective in
  Fault.arm ~kill:true site Fault.One_shot;
  (match Fleet.request fleet lget with
  | (_ : [ `Reply of int * string | `Refused | `Shed | `Timed_out of int ]) ->
      fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let r = Fleet.recover m ~pids in
  List.iter
    (fun (pid, a) ->
      if a <> `Nothing then
        fail "%s: recovery invented work for quiescent pid %d" site pid)
    r.Fleet.fr_workers;
  assert_fleet_xor ~site ~what:"after recover" m pids effective originals
    ~cut_pids:[];
  assert_fleet_serving ~site ~what:"after recover" fleet

(* Controller dies while health-scoring the workers (or while admitting
   onto a bounded accept queue): same invariant as balancer_dispatch —
   dispatch opens no transaction, so recovery must invent no work. *)
let balancer_request site =
  let _ctxs, m, pids, fleet = fleet_boot ~n:2 () in
  let effective = fleet_effective fleet in
  let originals = List.map (fleet_byte m (List.hd pids)) effective in
  Fault.arm ~kill:true site Fault.One_shot;
  (match Fleet.request fleet lget with
  | (_ : [ `Reply of int * string | `Refused | `Shed | `Timed_out of int ]) ->
      fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let r = Fleet.recover m ~pids in
  List.iter
    (fun (pid, a) ->
      if a <> `Nothing then
        fail "%s: recovery invented work for quiescent pid %d" site pid)
    r.Fleet.fr_workers;
  assert_fleet_xor ~site ~what:"after recover" m pids effective originals
    ~cut_pids:[];
  assert_fleet_serving ~site ~what:"after recover" fleet

(* Controller dies inside admission control's shed path: the watermark
   is forced to zero so the very first dispatch sheds. Dying mid-shed
   leaves nothing open; after recovery the fleet (rebuilt with sane
   watermarks by fleet_boot's default config) serves again. *)
let fleet_shed site =
  let shed_now =
    {
      (Balancer.default_config ~workers:2) with
      Balancer.b_shed_high = 0;
      b_shed_low = -1;
    }
  in
  let _ctxs, m, pids, fleet = fleet_boot ~balancer:shed_now ~n:2 () in
  let effective = fleet_effective fleet in
  let originals = List.map (fleet_byte m (List.hd pids)) effective in
  Fault.arm ~kill:true site Fault.One_shot;
  (match Fleet.request fleet lget with
  | (_ : [ `Reply of int * string | `Refused | `Shed | `Timed_out of int ]) ->
      fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let r = Fleet.recover m ~pids in
  List.iter
    (fun (pid, a) ->
      if a <> `Nothing then
        fail "%s: recovery invented work for quiescent pid %d" site pid)
    r.Fleet.fr_workers;
  assert_fleet_xor ~site ~what:"after recover" m pids effective originals
    ~cut_pids:[];
  let fleet' =
    Fleet.create m ~port:Ltpd.port ~pids ~blocks:(Lazy.force lblocks)
      ~policy:lpolicy
  in
  assert_fleet_serving ~site ~what:"after recover" fleet'

(* Controller dies mid-scrub — either hashing a page (scrub.page) or
   healing a diverged one (integrity.repair). The audit is read-only and
   a repair that dies before writing burns no page-repair budget, so
   recovery must invent no work and the next controller's scrub pass
   detects the still-standing flip and heals it in place. *)
let scrub_crash site =
  let _ctxs, m, pids, fleet = fleet_boot ~n:2 () in
  let effective = fleet_effective fleet in
  let originals = List.map (fleet_byte m (List.hd pids)) effective in
  Fleet.start_scrub fleet;
  List.iter (fun pid -> ignore (Fleet.scrub_now fleet ~pid)) pids;
  let victim =
    match Machine.bitflip m ~pid:(List.hd pids) (Rng.create 4243) with
    | Some (pid, _) -> pid
    | None -> fail "%s: seeded bitflip found no resident page" site
  in
  Fault.arm ~kill:true site Fault.One_shot;
  (match Fleet.scrub_now fleet ~pid:victim with
  | (_ : Fleet.scrub_report) -> fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  let r = Fleet.recover m ~pids in
  List.iter
    (fun (pid, a) ->
      if a <> `Nothing then
        fail "%s: recovery invented work for quiescent pid %d" site pid)
    r.Fleet.fr_workers;
  (* the interrupted slice left the flip standing; the next pass must
     catch and heal it before the XOR invariant can hold *)
  let r2 = Fleet.scrub_now fleet ~pid:victim in
  if List.length r2.Fleet.sr_repaired <> 1 || r2.Fleet.sr_respawned then
    fail "%s: post-recovery scrub did not page-repair the flip" site;
  assert_fleet_xor ~site ~what:"after recover" m pids effective originals
    ~cut_pids:[];
  assert_fleet_serving ~site ~what:"after recover" fleet

(* Every registered site maps to a scenario through its family prefix
   (the registry name up to the first '.'), with per-site overrides for
   the handful that need a special driver. A site added to the registry
   inherits its family's driver automatically — and a site whose family
   has none fails the matrix rather than silently shrinking it, so the
   mapping cannot drift from [Fault.known_sites]. *)
(* Controller dies inside the decoded-block code cache — entering the
   dispatch loop (bbcache.dispatch) or evicting blocks over a dirtied
   code page (bbcache.flush). The cache is execution-only: no
   transaction is ever open, recovery must invent no work, every pid
   stays fully original, and the fleet serves again (on the single-step
   interpreter once the cache is torn down). *)
let bbcache_crash site =
  let _ctxs, m, pids, fleet = fleet_boot ~n:2 () in
  let effective = fleet_effective fleet in
  let originals = List.map (fleet_byte m (List.hd pids)) effective in
  let bb = Bbcache.enable m in
  (* warm the cache so a flush has blocks to evict *)
  assert_fleet_serving ~site ~what:"cache warm-up" fleet;
  if site = "bbcache.flush" then
    (* write a text byte back to itself: contents unchanged, but the
       page is now dirty and the next dispatch must reach the flush *)
    List.iter
      (fun pid ->
        let p = Machine.proc_exn m pid in
        let addr =
          Int64.add (Common.app_exe lapp).Self.base
            (Int64.of_int (List.hd effective).Covgraph.b_off)
        in
        Mem.poke8 p.Proc.mem addr (Mem.peek8 p.Proc.mem addr))
      pids;
  Fault.arm ~kill:true site Fault.One_shot;
  (match Fleet.request fleet lget with
  | (_ : [ `Reply of int * string | `Refused | `Shed | `Timed_out of int ]) ->
      fail "%s: controller survived its death" site
  | exception Fault.Controller_killed _ -> ());
  assert_fired site;
  Bbcache.disable bb;
  let r = Fleet.recover m ~pids in
  List.iter
    (fun (pid, a) ->
      if a <> `Nothing then
        fail "%s: recovery invented work for quiescent pid %d" site pid)
    r.Fleet.fr_workers;
  assert_fleet_xor ~site ~what:"after recover" m pids effective originals
    ~cut_pids:[];
  assert_fleet_serving ~site ~what:"after recover" fleet

let family site =
  match String.index_opt site '.' with
  | Some i -> String.sub site 0 i
  | None -> site

let scenario_of_site site =
  match site with
  (* per-site overrides: crashes that need a dedicated driver *)
  | "rewrite.unmap" -> plain ~method_:`Unmap_pages site
  | "restore.tcp_repair" -> plain ~tcp:true site
  | "restore.respawn" -> respawn site
  | "supervisor.promote" -> promote site
  | "supervisor.reenable" -> reenable site
  | "recover.replay" -> recover_crash site
  | "fleet.wave" -> fleet_wave site
  | "fleet.manifest" -> fleet_manifest site
  | "fleet.reenable" -> fleet_reenable site
  | "fleet.recut" -> fleet_recut site
  | "fleet.shed" -> fleet_shed site
  | "balancer.dispatch" -> balancer_dispatch site
  | "scrub.page" | "integrity.repair" -> scrub_crash site
  | _ -> (
      (* family defaults: the single-tree cut pipeline crashes under
         [plain]; crit round-trips under [crit]; every dispatch-path
         site (balancer scoring, accept queue, worker serve) crashes
         mid-request under [balancer_request] *)
      match family site with
      | "criu" | "rewrite" | "inject" | "restore" | "journal" -> plain site
      | "crit" -> crit site
      | "slice" -> slice_crash site
      | "balancer" | "net" -> balancer_request site
      | "bbcache" -> bbcache_crash site
      | f ->
          fail "site %s (family %s) has no crash scenario — extend crash_matrix.ml"
            site f)

let () =
  let sites = List.map fst Fault.known_sites in
  let failures = ref 0 in
  List.iter
    (fun site ->
      Fault.reset ();
      match scenario_of_site site with
      | () -> Printf.printf "%-22s ok\n%!" site
      | exception Matrix_failure msg ->
          incr failures;
          Printf.printf "%-22s FAIL: %s\n%!" site msg)
    sites;
  if !failures > 0 then begin
    Printf.printf "crash matrix: %d of %d sites FAILED\n" !failures
      (List.length sites);
    exit 1
  end;
  Printf.printf "crash matrix: all %d sites survived controller death\n"
    (List.length sites)
