#!/bin/sh
# CI entry point: build, run the full test suite, and (when ocamlformat
# is available) check formatting. Any failing step fails the script.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# Bench smoke (DESIGN.md §6): one instrumented ngx cut + re-enable with
# the per-stage breakdown and the registry-on/registry-off overhead
# bound, written to BENCH_obs.json.
echo "== bench --quick (observability smoke) =="
dune exec bench/main.exe -- --quick

# Fleet smoke (DESIGN.md §6a): fan-out throughput over a small worker
# sweep plus the per-wave rollout pause, written to BENCH_fleet.json.
echo "== bench --quick fleet =="
dune exec bench/main.exe -- --quick fleet

# Crash-recovery matrix (DESIGN.md §5d): kill the controller at every
# registered fault site mid-cut, recover, and assert each pid is fully
# cut XOR fully original. The matrix fails on any site left unexercised.
echo "== crash-recovery matrix =="
dune exec examples/crash_matrix.exe

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not installed) =="
fi

echo "ci: all green"
