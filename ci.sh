#!/bin/sh
# CI entry point: build, run the full test suite, and (when ocamlformat
# is available) check formatting. Any failing step fails the script.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not installed) =="
fi

echo "ci: all green"
