#!/bin/sh
# CI entry point: build, run the full test suite, and (when ocamlformat
# is available) check formatting. Any failing step fails the script.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# Bench smoke (DESIGN.md §6): one instrumented ngx cut + re-enable with
# the per-stage breakdown and the registry-on/registry-off overhead
# bound, written to BENCH_obs.json.
echo "== bench --quick (observability smoke) =="
dune exec bench/main.exe -- --quick

# Fleet smoke (DESIGN.md §6a): fan-out throughput over a small worker
# sweep — each count measured on the single-step interpreter and through
# the decoded-block code cache — plus the per-wave rollout pause, written
# to BENCH_fleet.json. The harness hard-fails if the cached/interp
# speedup at w1 drops below 5x (code-cache regression gate).
echo "== bench --quick fleet =="
dune exec bench/main.exe -- --quick fleet

# Overload smoke (DESIGN.md §6b): capacity probe + a two-point offered-
# load sweep with admission control on/off, written to
# BENCH_overload.json. The harness itself asserts the no-shed curve
# falls below the shed curve past saturation.
echo "== bench --quick overload =="
dune exec bench/main.exe -- --quick overload

# Determinism guard (DESIGN.md §6b): the same saturating open-loop soak
# twice from the same seed must produce byte-identical observability
# dumps (and must actually shed + retry).
echo "== overload soak determinism =="
dune exec examples/overload_soak.exe

# The static fault-site registry must match the Fault.site call sites
# actually present in lib/ — a site added in code but missing from
# Fault.known_sites would silently escape the crash matrix below. The
# registry side comes from the machine-readable dump
# (--list-fault-sites --json), not from scraping the human listing.
echo "== fault-site registry sync =="
# The call may carry optional labelled args (e.g. ~scope:pid) before the
# site literal, so match up to the first quoted string on the line.
sites_in_code=$(grep -rhoE 'Fault\.site [^"]*"[^"]+"' lib/ | sed 's/.*"\(.*\)"$/\1/' | sort -u)
sites_listed=$(dune exec bin/dynacut_cli.exe -- fleet --list-fault-sites --json \
  | grep -o '"site": *"[^"]*"' | sed 's/.*"\([^"]*\)"$/\1/' | sort -u)
if [ "$sites_in_code" != "$sites_listed" ]; then
  echo "FAIL: Fault.site calls in lib/ disagree with --list-fault-sites:"
  echo "--- in code"
  echo "$sites_in_code"
  echo "--- listed"
  echo "$sites_listed"
  exit 1
fi
echo "   $(echo "$sites_listed" | wc -l) sites in sync"

# Scrub smoke (DESIGN.md §6d): detection latency vs scrub rate, the
# repair-vs-respawn cost ratio (must stay >= 5x), the scrub overhead
# bound (<= 5% of workload cycles at the default interval), and the
# two-seeded-runs determinism check, written to BENCH_scrub.json.
echo "== bench --quick scrub =="
dune exec bench/main.exe -- --quick scrub

# Slicing smoke (DESIGN.md §7): profile ltpd and rkv under the dataflow
# slicing tracer, assert the sliced-away class cuts covered blocks the
# coverage diff cannot (disjoint by construction), converge the cut via
# verifier feedback with the wanted feature intact, replay a seeded
# counterexample bit-for-bit, and bound the tracing overhead
# (min-vs-min serve ratio), written to BENCH_slice.json.
echo "== bench --quick slice =="
dune exec bench/main.exe -- --quick slice

# Crash-recovery matrix (DESIGN.md §5d): kill the controller at every
# registered fault site mid-cut, recover, and assert each pid is fully
# cut XOR fully original. The matrix fails on any site left unexercised.
echo "== crash-recovery matrix =="
dune exec examples/crash_matrix.exe

# Chaos smoke (DESIGN.md §6c): the directed site x mode coverage matrix
# (every registered site in every applicable mode — the bench hard-fails
# on any unexercised applicable mode, i.e. a coverage hole) plus a small
# batch of seeded multi-fault schedules checked against the invariant
# oracles, written to BENCH_chaos.json. CHAOS_FULL=1 runs the full
# 50-schedule sweep instead.
if [ "${CHAOS_FULL:-0}" = "1" ]; then
  echo "== bench chaos (full sweep) =="
  dune exec bench/main.exe -- chaos
else
  echo "== bench --quick chaos =="
  dune exec bench/main.exe -- --quick chaos
fi

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not installed) =="
fi

echo "ci: all green"
