(** dynacut — the command-line front end.

    Mirrors the tooling around the paper's artifact: run guest apps on
    the simulated machine, collect drcov traces, diff them (tracediff),
    apply a dynamic cut and interact with the customized process, inspect
    checkpoint images (crit), disassemble binaries, and regenerate the
    paper's tables/figures (report).

    Everything runs against in-memory machines: trace files and images
    can be exported to the host filesystem for inspection. *)

open Cmdliner

let find_app name =
  match
    List.find_opt (fun (a : Workload.app) -> a.Workload.a_name = name) Workload.all_apps
  with
  | Some a -> a
  | None ->
      Printf.eprintf "unknown app %S; known: %s\n" name
        (String.concat ", "
           (List.map (fun (a : Workload.app) -> a.Workload.a_name) Workload.all_apps));
    exit 2

let app_arg =
  let doc = "Guest application (ltpd | ngx | rkv | 600.perlbench_s | ...)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

(* APP as an optional positional, for commands where --list-fault-sites
   can stand alone *)
let app_opt_arg =
  let doc = "Guest application (ltpd | ngx | rkv | 600.perlbench_s | ...)." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let require_app = function
  | Some a -> find_app a
  | None ->
      prerr_endline "missing APP argument";
      exit 2

let list_fault_sites_arg =
  let doc =
    "List every registered fault-injection site with a one-line \
     description. Standing alone (no APP) the listing prints \
     immediately and the command exits; combined with a run (APP \
     given) it prints after the run, so --verbose shows the per-site \
     fired count from the metric registry (fault.fired{site=...}) for \
     the faults that actually fired."
  in
  Arg.(value & flag & info [ "list-fault-sites" ] ~doc)

let verbose_arg =
  let doc = "Verbose output (for --list-fault-sites: per-site fired counts)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let print_fault_sites ?(verbose = false) () =
  List.iter
    (fun (site, desc) ->
      if verbose then
        Printf.printf "%-22s fired=%-4d %s\n" site (Fault.registry_fired site)
          desc
      else Printf.printf "%-22s %s\n" site desc)
    Fault.known_sites

(* the machine-readable registry dump behind --list-fault-sites --json:
   ci.sh's registry<->code sync check consumes it, so the shape (one
   object per site with "site", "modes", "fired", "description") is a
   stable contract *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_fault_sites_json () =
  let site_obj (site, desc) =
    let modes =
      String.concat ", "
        (List.map
           (fun m -> Printf.sprintf "%S" (Fault.mode_to_string m))
           (Fault.applicable_modes site))
    in
    Printf.sprintf
      "  {\"site\": %S, \"modes\": [%s], \"fired\": %d, \"description\": \
       \"%s\"}"
      site modes (Fault.registry_fired site) (json_escape desc)
  in
  Printf.printf "[\n%s\n]\n"
    (String.concat ",\n" (List.map site_obj Fault.known_sites))

let inject_fault_arg =
  let doc =
    "Arm a deterministic fault at a pipeline site before cutting \
     (repeatable). $(docv) is \
     SITE[:once|nth=N|on=N|p=F][:MODE][:transient][:pid=P] with MODE one \
     of kill, delay=N, corrupt, enospc, eio (default: a plain injected \
     failure), e.g. 'criu.save', 'restore.tcp_repair:nth=2', \
     'journal.append:once:corrupt', 'net.serve:delay=40000:pid=100'. \
     ':kill' simulates controller death (no rollback runs; recover with \
     $(b,dynacut recover)). See --list-fault-sites for the full site \
     registry."
  in
  Arg.(value & opt_all string [] & info [ "inject-fault" ] ~docv:"SPEC" ~doc)

let fault_seed_arg =
  let doc =
    "Seed for the fault scheduler's PRNG (probabilistic 'p=F' specs draw \
     from it). The seed in use is printed so any chaos run can be \
     replayed bit-for-bit."
  in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"N" ~doc)

let arm_faults ?seed specs =
  Fault.reset ();
  (match seed with
  | None -> ()
  | Some n ->
      Fault.seed n;
      Printf.printf "fault-seed %d\n" n);
  List.iter
    (fun spec_str ->
      try
        let site, spec, transient, mode, scope = Fault.parse_spec spec_str in
        Fault.arm_mode ?scope ~transient site spec mode
      with Invalid_argument e ->
        Printf.eprintf "bad --inject-fault %S: %s\n" spec_str e;
        exit 2)
    specs

let out_arg =
  let doc = "Write output to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "After the run, write the observability registry — counters, \
     histograms, the unified event ring, and the pipeline span breakdown \
     (checkpoint / crit / rewrite / inject / restore / tcp_repair, plus \
     journal and recover spans) including per-stage host-CPU seconds — \
     as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let write_metrics = function
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Obs.dump_json ~host:true ());
      close_out oc;
      Printf.printf "wrote %s\n" path

let emit out content =
  match out with
  | None -> print_string content
  | Some path ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length content)

(* ---------- run ---------- *)

let run_cmd =
  let requests =
    let doc = "Send $(docv) to the server after boot (repeatable)." in
    Arg.(value & opt_all string [] & info [ "r"; "request" ] ~docv:"REQ" ~doc)
  in
  let action app reqs =
    let c = Workload.spawn (find_app app) in
    Workload.wait_ready c;
    Printf.printf "%s ready (pid %d)\n" app c.Workload.pid;
    List.iter
      (fun r ->
        let r = Scanf.unescaped r in
        let resp = Workload.rpc c r in
        Printf.printf ">> %S\n<< %S\n" r resp)
      reqs;
    if reqs = [] && (find_app app).Workload.a_port = None then begin
      let st = Workload.run_to_exit c in
      Printf.printf "%s\n" (Proc.state_to_string st)
    end;
    print_string (Workload.console c)
  in
  let doc = "Boot a guest application and optionally drive requests." in
  Cmd.v (Cmd.info "run" ~doc) Term.(const action $ app_arg $ requests)

(* ---------- trace ---------- *)

let trace_cmd =
  let requests =
    let doc = "Request to send during the serving phase (repeatable)." in
    Arg.(value & opt_all string [] & info [ "r"; "request" ] ~docv:"REQ" ~doc)
  in
  let init_out =
    let doc = "Also dump the initialization-phase coverage to $(docv)." in
    Arg.(value & opt (some string) None & info [ "init-coverage" ] ~docv:"FILE" ~doc)
  in
  let action app reqs out init_out =
    let app = find_app app in
    let reqs = List.map Scanf.unescaped reqs in
    let init, serving =
      Workload.trace_requests ~app ~requests:reqs ~nudge_at_ready:true ()
    in
    (match (init, init_out) with
    | Some log, Some path -> emit (Some path) (Drcov.to_string log)
    | _ -> ());
    emit out (Drcov.to_string serving)
  in
  let doc = "Run an app under the coverage collector; print drcov logs." in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const action $ app_arg $ requests $ out_arg $ init_out)

(* ---------- tracediff ---------- *)

let tracediff_cmd =
  let wanted =
    let doc = "drcov log of wanted behaviour (host file, repeatable)." in
    Arg.(non_empty & opt_all file [] & info [ "w"; "wanted" ] ~docv:"FILE" ~doc)
  in
  let undesired =
    let doc = "drcov log of undesired behaviour (host file, repeatable)." in
    Arg.(non_empty & opt_all file [] & info [ "u"; "undesired" ] ~docv:"FILE" ~doc)
  in
  let read_log path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    try Drcov.of_string s
    with Drcov.Drcov_malformed { offset; reason } ->
      Printf.eprintf "malformed drcov log %s: line %d: %s\n" path offset reason;
      exit 2
  in
  let action wanted undesired =
    let report =
      Tracediff.feature_blocks
        ~wanted:(List.map read_log wanted)
        ~undesired:(List.map read_log undesired)
        ()
    in
    Format.printf "%a" Tracediff.pp_report report
  in
  let doc = "Diff wanted vs undesired coverage logs (the paper's tracediff.py)." in
  let man =
    [
      `S "EXIT STATUS";
      `P "0: report printed.";
      `P
        "2: a drcov log was malformed (truncated, bit-flipped, or \
         trailing garbage); the offending file and line are reported.";
    ]
  in
  Cmd.v (Cmd.info "tracediff" ~doc ~man) Term.(const action $ wanted $ undesired)

(* ---------- slice ---------- *)

(* The slice is anchored at the wanted feature's success outputs, which
   is fixed per app (the web servers' read-only GET path; rkv's GET
   hits). FEATURE names that profile; anything else is a usage error. *)
let check_slice_feature (app : Workload.app) = function
  | None -> ()
  | Some f ->
      let known = if app.Workload.a_name = "rkv" then "get" else "read-only" in
      if String.lowercase_ascii f <> known then begin
        Printf.eprintf "no sliceable feature %S for %s (anchored feature: %s)\n"
          f app.Workload.a_name known;
        exit 2
      end

let slice_sample_arg =
  let doc =
    "Sampled tracing: each accepted connection is traced with \
     probability $(docv), drawn from a seeded splitmix64 stream. Gaps \
     under-approximate the slice and are repaid by the verifier \
     counterexample loop."
  in
  Arg.(value & opt (some float) None & info [ "sample" ] ~docv:"P" ~doc)

let slice_seed_arg =
  let doc = "Machine and sampled-tracing seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let slice_cmd =
  let feature =
    let doc =
      "Wanted feature whose success outputs anchor the slice: \
       'read-only' (web servers) or 'get' (rkv). Defaults to the app's \
       anchored feature; other names are rejected."
    in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FEATURE" ~doc)
  in
  let action app feature sample seed verbose metrics =
    let app = find_app app in
    check_slice_feature app feature;
    let sample = Option.map (fun p -> (Rng.create seed, p)) sample in
    let p = Slicelab.profile ~seed ?sample app in
    Format.printf "%a@." Slicer.pp_stats p.Slicelab.p_stats;
    Format.printf
      "%d covered blocks, %d slice points -> %d sliced away (%d own-module \
       cut candidates)@."
      p.Slicelab.p_report.Tracediff.n_covered
      p.Slicelab.p_report.Tracediff.n_slice_points
      (List.length p.Slicelab.p_report.Tracediff.sliced)
      (List.length p.Slicelab.p_blocks);
    if verbose then
      Format.printf "%a" Tracediff.pp_slice_report p.Slicelab.p_report;
    write_metrics metrics;
    if p.Slicelab.p_blocks = [] then exit 6
  in
  let doc =
    "Profile an app under the dataflow slicing tracer and dump slice \
     stats plus the sliced-away cut candidates (covered blocks no \
     wanted-output slice touches)."
  in
  let man =
    [
      `S "EXIT STATUS";
      `P "0: slice computed; at least one sliced-away cut candidate found.";
      `P "2: usage error (unknown app or feature).";
      `P
        "6: the slice covers every covered block — no sliced-away \
         candidates to cut.";
    ]
  in
  Cmd.v (Cmd.info "slice" ~doc ~man)
    Term.(
      const action $ app_arg $ feature $ slice_sample_arg $ slice_seed_arg
      $ verbose_arg $ metrics_out_arg)

(* ---------- cut ---------- *)

let feature_blocks (app : Workload.app) feature =
  match (app.Workload.a_name, feature) with
  | ("ltpd" | "ngx"), "put-delete" ->
      ( Common.web_feature_blocks app,
        if app.Workload.a_name = "ltpd" then "ltpd_403" else "ngx_declined" )
  | "rkv", cmd -> (Common.rkv_feature_blocks [ cmd ^ " somekey someval\n" ], "rkv_err")
  | _ ->
      Printf.eprintf "no feature %S for %s\n" feature app.Workload.a_name;
      exit 2

let exit_status_man extra =
  [
    `S "EXIT STATUS";
    `P "0: the cut is live (possibly via the degraded fallback).";
    `P "2: usage error (unknown app, feature, or fault spec).";
    `P
      "3: the transaction rolled back — the target process tree is \
       byte-identical to its pre-cut state and still serving.";
  ]
  @ extra

let cut_cmd =
  let feature =
    let doc =
      "Feature to disable: 'put-delete' (web servers), or an rkv command \
       name such as SET, STRALGO, SETRANGE, CONFIG."
    in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FEATURE" ~doc)
  in
  let probe =
    let doc = "Request to send to the customized server (repeatable)." in
    Arg.(value & opt_all string [] & info [ "r"; "request" ] ~docv:"REQ" ~doc)
  in
  let reenable =
    let doc = "Re-enable the feature afterwards and probe again." in
    Arg.(value & flag & info [ "reenable" ] ~doc)
  in
  let slice =
    let doc =
      "Cut the $(b,Sliced_away) candidate class instead of a coverage \
       diff: profile the app under the dataflow slicing tracer, cut \
       every covered block outside the wanted-output slice under the \
       'Verify' trap policy, and converge by verifier feedback — each \
       false positive is restored bit-for-bit, evicted from the cut, \
       and re-joins the slice as a counterexample. FEATURE and \
       --reenable are ignored."
    in
    Arg.(value & flag & info [ "slice" ] ~doc)
  in
  let slice_action app probes faults seed list_sites verbose metrics =
    arm_faults ?seed faults;
    let p = Slicelab.profile app in
    Format.printf "%a@." Slicer.pp_stats p.Slicelab.p_stats;
    let v =
      Slicelab.cut_and_converge app ~blocks:p.Slicelab.p_blocks
        ~on_counterexample:(fun (b : Covgraph.block) ->
          Slicer.add_counterexample p.Slicelab.p_slicer
            ~module_:b.Covgraph.b_module ~off:b.Covgraph.b_off;
          Format.printf "verifier counterexample: %s+0x%x re-joins the slice@."
            b.Covgraph.b_module b.Covgraph.b_off)
        ()
    in
    Format.printf "%a" Slicelab.pp_converge v;
    List.iter
      (fun req ->
        let req = Scanf.unescaped req in
        Printf.printf ">> %S\n<< %S\n" req (Workload.rpc v.Slicelab.v_ctx req))
      probes;
    if faults <> [] then print_endline (Fault.report ());
    if list_sites then print_fault_sites ~verbose ();
    write_metrics metrics;
    match v.Slicelab.v_rollout with
    | Supervisor.R_promoted -> ()
    | _ -> exit 3
  in
  let action app feature probes reenable slice faults seed list_sites verbose
      metrics =
    if list_sites && app = None then begin
      print_fault_sites ~verbose ();
      exit 0
    end;
    let app = require_app app in
    if slice then begin
      slice_action app probes faults seed list_sites verbose metrics;
      exit 0
    end;
    let feature =
      match feature with
      | Some f -> f
      | None ->
          prerr_endline "missing FEATURE argument";
          exit 2
    in
    let blocks, redirect = feature_blocks app feature in
    arm_faults ?seed faults;
    let c = Workload.spawn app in
    Workload.wait_ready c;
    let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
    let r =
      Dynacut.try_cut session ~blocks
        ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect redirect }
        ()
    in
    Format.printf "cut %d blocks: %a (%a)@." (List.length blocks)
      Dynacut.pp_outcome r.Dynacut.r_outcome Dynacut.pp_timings
      r.Dynacut.r_timings;
    if r.Dynacut.r_retries > 0 then
      Format.printf "retries: %d (%d backoff cycles)@." r.Dynacut.r_retries
        r.Dynacut.r_backoff_cycles;
    List.iter
      (fun req ->
        let req = Scanf.unescaped req in
        Printf.printf ">> %S\n<< %S\n" req (Workload.rpc c req))
      probes;
    let rolled_back =
      match r.Dynacut.r_outcome with `Rolled_back _ -> true | _ -> false
    in
    if reenable && not rolled_back then begin
      let t = Dynacut.reenable session r.Dynacut.r_journals in
      Format.printf "re-enabled: %a@." Dynacut.pp_timings t;
      List.iter
        (fun req ->
          let req = Scanf.unescaped req in
          Printf.printf ">> %S\n<< %S\n" req (Workload.rpc c req))
        probes
    end;
    if faults <> [] then print_endline (Fault.report ());
    if list_sites then print_fault_sites ~verbose ();
    write_metrics metrics;
    (* exit 0: cut applied (possibly degraded); exit 3: transaction rolled
       back — target untouched and still serving *)
    if rolled_back then exit 3
  in
  let doc = "Dynamically disable a feature of a running server, then probe it." in
  Cmd.v
    (Cmd.info "cut" ~doc ~man:(exit_status_man []))
    Term.(
      const action $ app_opt_arg $ feature $ probe $ reenable $ slice
      $ inject_fault_arg $ fault_seed_arg $ list_fault_sites_arg $ verbose_arg
      $ metrics_out_arg)

(* ---------- guard ---------- *)

let guard_cmd =
  let feature =
    let doc = "Feature to disable (same choices as $(b,cut)); default put-delete \
               for the web servers, SET for rkv." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FEATURE" ~doc)
  in
  let probe =
    let doc = "Request mix driven between supervision ticks (repeatable); \
               defaults to the app's wanted-traffic mix." in
    Arg.(value & opt_all string [] & info [ "r"; "request" ] ~docv:"REQ" ~doc)
  in
  let canary =
    let doc = "Cut one worker first and promote only after a healthy \
               observation period (default true)." in
    Arg.(value & opt bool true & info [ "canary" ] ~docv:"BOOL" ~doc)
  in
  let storm =
    let doc =
      "Deliberately add the app's wanted GET path to the undesired set, \
       provoking a trap storm — a demo of the breaker tripping."
    in
    Arg.(value & flag & info [ "storm" ] ~doc)
  in
  let window =
    let doc = "Sliding SLO window in virtual cycles." in
    Arg.(value & opt int64 Supervisor.default_config.Supervisor.window
         & info [ "window" ] ~docv:"CYCLES" ~doc)
  in
  let max_traps =
    let doc =
      "Traps tolerated per window before the breaker trips. Defaults to \
       the supervisor's budget — except under --slice, where 'Verify' \
       traps are self-healing restore events, so the default is \
       effectively unbounded."
    in
    Arg.(value & opt (some int) None & info [ "max-traps" ] ~docv:"N" ~doc)
  in
  let cooldown =
    let doc = "Virtual cycles spent open before a half-open probe re-cut." in
    Arg.(value & opt int64 Supervisor.default_config.Supervisor.cooldown
         & info [ "cooldown" ] ~docv:"CYCLES" ~doc)
  in
  let max_trips =
    let doc = "Breaker trips before the cut is abandoned for good." in
    Arg.(value & opt int Supervisor.default_config.Supervisor.max_trips
         & info [ "max-trips" ] ~docv:"N" ~doc)
  in
  let max_respawns =
    let doc = "Per-worker crash-loop respawn budget." in
    Arg.(value & opt int Supervisor.default_config.Supervisor.max_respawns
         & info [ "max-respawns" ] ~docv:"N" ~doc)
  in
  let slices =
    let doc = "Post-rollout soak: traffic + supervision tick rounds." in
    Arg.(value & opt int 8 & info [ "slices" ] ~docv:"N" ~doc)
  in
  let storm_sym (app : Workload.app) =
    match app.Workload.a_name with
    | "ngx" -> "ngx_http_get"
    | "ltpd" -> "ltpd_handle_get"
    | "rkv" -> "rkv_cmd_get"
    | n ->
        Printf.eprintf "--storm is not supported for %s\n" n;
        exit 2
  in
  let slice =
    let doc =
      "Guard a cut of the $(b,Sliced_away) candidate class: profile the \
       app under the dataflow slicing tracer first, cut the candidates \
       under the 'Verify' trap policy, and during the soak feed every \
       verifier-restored false positive back into the slice as a \
       counterexample. FEATURE and --storm are ignored."
    in
    Arg.(value & flag & info [ "slice" ] ~doc)
  in
  let action app feature probes canary storm slice window max_traps cooldown
      max_trips max_respawns slices faults seed list_sites verbose metrics =
    if list_sites && app = None then begin
      print_fault_sites ~verbose ();
      exit 0
    end;
    let app = require_app app in
    let slicer = ref None in
    let blocks, on_trap =
      if slice then begin
        let p = Slicelab.profile app in
        Format.printf "%a@." Slicer.pp_stats p.Slicelab.p_stats;
        slicer := Some p.Slicelab.p_slicer;
        (p.Slicelab.p_blocks, `Verify)
      end
      else begin
        let feature =
          match feature with
          | Some f -> f
          | None -> if app.Workload.a_name = "rkv" then "SET" else "put-delete"
        in
        let blocks, redirect = feature_blocks app feature in
        (* A storm cut includes the wanted GET path. `Redirect would silently
           drop it (same-function filter), so the storm uses `Terminate: the
           first wanted request kills the canary — a maximally bad cut. *)
        if storm then
          ( blocks
            @ [
                Supervisor.block_of_sym (Common.app_exe app)
                  ~module_:app.Workload.a_name ~sym:(storm_sym app);
              ],
            `Terminate )
        else (blocks, `Redirect redirect)
      end
    in
    arm_faults ?seed faults;
    let max_traps =
      match max_traps with
      | Some n -> n
      | None ->
          if slice then 100_000
          else Supervisor.default_config.Supervisor.max_traps
    in
    let c = Workload.spawn app in
    Workload.wait_ready c;
    let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
    let config =
      { Supervisor.default_config with
        Supervisor.window; max_traps; cooldown; max_trips; max_respawns }
    in
    let sup =
      Supervisor.create session ~config ~blocks
        ~policy:{ Dynacut.method_ = `First_byte; on_trap }
    in
    let reqs =
      match probes with
      | [] ->
          if app.Workload.a_name = "rkv" then [ "GET somekey\n" ]
          else Workload.web_wanted
      | l -> List.map Scanf.unescaped l
    in
    let drive () =
      List.iter (fun r -> ignore (Workload.rpc c r)) reqs;
      ignore (Machine.run c.Workload.m ~max_cycles:20_000)
    in
    let finish code =
      print_endline (Supervisor.render_log sup);
      Format.printf "breaker: %a (trips=%d)@." Supervisor.pp_breaker
        (Supervisor.breaker_state sup) (Supervisor.trips sup);
      if faults <> [] then print_endline (Fault.report ());
      if list_sites then print_fault_sites ~verbose ();
      write_metrics metrics;
      exit code
    in
    let rollout = Supervisor.guarded_cut sup ~canary ~drive () in
    Format.printf "rollout: %a@." Supervisor.pp_rollout rollout;
    (match rollout with
    | Supervisor.R_rolled_back _ -> finish 3
    | Supervisor.R_canary_rejected | Supervisor.R_promotion_failed -> finish 4
    | Supervisor.R_promoted -> ());
    for _ = 1 to slices do
      drive ();
      (match !slicer with
      | Some sl ->
          (* `Verify traps restore blocks in place; evict them from the
             cut and re-join them to the slice as counterexamples *)
          let before = Supervisor.blocks sup in
          if Supervisor.verifier_feedback sup > 0 then begin
            let after = Supervisor.blocks sup in
            List.iter
              (fun (b : Covgraph.block) ->
                if not (List.mem b after) then begin
                  Slicer.add_counterexample sl ~module_:b.Covgraph.b_module
                    ~off:b.Covgraph.b_off;
                  Format.printf
                    "verifier counterexample: %s+0x%x re-joins the slice@."
                    b.Covgraph.b_module b.Covgraph.b_off
                end)
              before
          end
      | None -> ());
      Supervisor.tick sup
    done;
    let code =
      match Supervisor.breaker_state sup with
      | Supervisor.Abandoned -> 5
      | Supervisor.Open _ | Supervisor.Half_open _ -> 4
      | Supervisor.Closed -> if Supervisor.trips sup > 0 then 4 else 0
    in
    finish code
  in
  let doc =
    "Apply a cut under supervision: canary rollout, trap-storm circuit \
     breaker, crash-loop respawn."
  in
  let man =
    exit_status_man
      [
        `P
          "4: the rollout was stopped by the guardrails — the canary was \
           rejected, promotion failed, or the circuit breaker tripped \
           during the soak (the feature was automatically re-enabled).";
        `P
          "5: the breaker exhausted its trip budget; the cut was \
           abandoned and the feature stays enabled.";
      ]
  in
  Cmd.v
    (Cmd.info "guard" ~doc ~man)
    Term.(
      const action $ app_opt_arg $ feature $ probe $ canary $ storm $ slice
      $ window $ max_traps $ cooldown $ max_trips $ max_respawns $ slices
      $ inject_fault_arg $ fault_seed_arg $ list_fault_sites_arg $ verbose_arg
      $ metrics_out_arg)

(* ---------- recover ---------- *)

let recover_cmd =
  let feature =
    let doc = "Feature the dead controller was cutting (same choices as \
               $(b,cut)); default put-delete for the web servers, SET for rkv." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FEATURE" ~doc)
  in
  let probe =
    let doc = "Request to send to the recovered server (repeatable)." in
    Arg.(value & opt_all string [] & info [ "r"; "request" ] ~docv:"REQ" ~doc)
  in
  let crash_at =
    let doc =
      "Stage the crash: arm a kill-mode fault at site $(docv) (see \
       --list-fault-sites), run a cut that dies there mid-flight, then \
       recover the orphaned tree as a fresh controller. Without this \
       flag the command just runs recovery on whatever journal the \
       tree's tmpfs holds."
    in
    Arg.(value & opt (some string) None & info [ "crash-at" ] ~docv:"SITE" ~doc)
  in
  let action app feature probes crash_at faults seed list_sites verbose metrics =
    if list_sites && app = None then begin
      print_fault_sites ~verbose ();
      exit 0
    end;
    let app = require_app app in
    let feature =
      match feature with
      | Some f -> f
      | None -> if app.Workload.a_name = "rkv" then "SET" else "put-delete"
    in
    let blocks, redirect = feature_blocks app feature in
    arm_faults ?seed faults;
    let c = Workload.spawn app in
    Workload.wait_ready c;
    (match crash_at with
    | None -> ()
    | Some site ->
        if not (List.mem_assoc site Fault.known_sites) then begin
          Printf.eprintf "unknown --crash-at site %S; see --list-fault-sites\n"
            site;
          exit 2
        end;
        Fault.arm ~kill:true site Fault.One_shot;
        let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
        (match
           Dynacut.try_cut session ~blocks
             ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect redirect }
             ()
         with
        | _ ->
            Printf.eprintf
              "controller survived --crash-at %s (site never reached)\n" site;
            exit 2
        | exception Fault.Controller_killed { site = s } ->
            Format.printf "controller killed at %s@." s));
    match Dynacut.recover c.Workload.m ~root_pid:c.Workload.pid with
    | r ->
        Format.printf "recover: %a@." Dynacut.pp_recovery r;
        List.iter
          (fun req ->
            let req = Scanf.unescaped req in
            Printf.printf ">> %S\n<< %S\n" req (Workload.rpc c req))
          probes;
        let code =
          match r.Dynacut.rec_action with
          | `Nothing -> 0
          | `Thawed | `Rolled_back -> 6
          | `Completed -> 7
        in
        if list_sites then print_fault_sites ~verbose ();
        write_metrics metrics;
        exit code
    | exception e ->
        Printf.eprintf "recover failed: %s\n" (Printexc.to_string e);
        if list_sites then print_fault_sites ~verbose ();
        write_metrics metrics;
        exit 3
  in
  let doc =
    "Recover a process tree orphaned by a dead controller from its \
     crash-consistency journal."
  in
  let man =
    [
      `S "EXIT STATUS";
      `P "0: the journal was absent or empty — nothing to recover.";
      `P "2: usage error (unknown app, feature, or crash site), or the \
          staged crash never fired.";
      `P "3: recovery itself failed; the journal is intact, re-run it.";
      `P
        "6: an interrupted transaction was found and undone — the tree \
         was thawed or rolled back to its pristine images and is \
         byte-identical to its pre-cut state.";
      `P
        "7: the dead controller had already committed (or finished \
         aborting); only its cleanup was lost and has been redone.";
    ]
  in
  Cmd.v
    (Cmd.info "recover" ~doc ~man)
    Term.(
      const action $ app_opt_arg $ feature $ probe $ crash_at $ inject_fault_arg
      $ fault_seed_arg $ list_fault_sites_arg $ verbose_arg $ metrics_out_arg)

(* ---------- stats ---------- *)

let default_feature (app : Workload.app) = function
  | Some f -> f
  | None -> if app.Workload.a_name = "rkv" then "SET" else "put-delete"

let stats_cmd =
  let feature =
    let doc =
      "Feature to cut while gathering metrics (same choices as $(b,cut)); \
       default put-delete for the web servers, SET for rkv."
    in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FEATURE" ~doc)
  in
  let probe =
    let doc =
      "Request to drive against the customized server (repeatable); \
       defaults to the app's wanted-traffic mix."
    in
    Arg.(value & opt_all string [] & info [ "r"; "request" ] ~docv:"REQ" ~doc)
  in
  let json =
    let doc = "Dump the registry as JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let host =
    let doc =
      "Include the per-span host-CPU seconds section in the JSON dump. \
       Host times are real measurements and therefore not reproducible \
       across runs; without this flag the JSON is byte-identical for the \
       same seed and scenario."
    in
    Arg.(value & flag & info [ "host" ] ~doc)
  in
  let cached =
    let doc =
      "Run the scenario through the decoded-block code cache \
       (lib/bbcache) instead of the single-step interpreter; the dump \
       gains the bbcache.hits / bbcache.decodes / bbcache.flushes \
       counters and the bbcache.superblock_len histogram."
    in
    Arg.(value & flag & info [ "cached" ] ~doc)
  in
  let action app feature probes json host cached out faults seed list_sites
      verbose =
    if list_sites then begin
      print_fault_sites ~verbose ();
      exit 0
    end;
    let app = require_app app in
    let feature = default_feature app feature in
    let blocks, redirect = feature_blocks app feature in
    arm_faults ?seed faults;
    let c = Workload.spawn app in
    let bb = if cached then Some (Bbcache.enable c.Workload.m) else None in
    Workload.wait_ready c;
    let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
    let r =
      Dynacut.try_cut session ~blocks
        ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect redirect }
        ()
    in
    let reqs =
      match probes with
      | [] ->
          if app.Workload.a_name = "rkv" then [ "GET somekey\n" ]
          else Workload.web_wanted
      | l -> List.map Scanf.unescaped l
    in
    List.iter (fun req -> ignore (Workload.rpc c req)) reqs;
    ignore (Machine.run c.Workload.m ~max_cycles:20_000);
    (match bb with Some b -> Bbcache.disable b | None -> ());
    emit out (if json then Obs.dump_json ~host () else Obs.dump_text ());
    match r.Dynacut.r_outcome with `Rolled_back _ -> exit 3 | _ -> ()
  in
  let doc =
    "Cut a feature, drive traffic, and dump the observability registry \
     (metrics, pipeline spans, unified event ring) in one shot."
  in
  let man =
    exit_status_man []
    @ [
        `S "DETERMINISM";
        `P
          "The default (and --json) output is derived from virtual-clock \
           instrumentation only: the same seed and the same scenario \
           produce byte-identical dumps. Only --host adds wall-measured \
           data.";
      ]
  in
  Cmd.v
    (Cmd.info "stats" ~doc ~man)
    Term.(
      const action $ app_opt_arg $ feature $ probe $ json $ host $ cached
      $ out_arg $ inject_fault_arg $ fault_seed_arg $ list_fault_sites_arg
      $ verbose_arg)

(* ---------- fleet ---------- *)

let server_port (app : Workload.app) =
  match app.Workload.a_port with
  | Some p -> p
  | None ->
      Printf.eprintf "%s is a batch app; fleet needs a server (ltpd | ngx | rkv)\n"
        app.Workload.a_name;
      exit 2

let wanted_mix (app : Workload.app) =
  if app.Workload.a_name = "rkv" then Workload.kv_wanted else Workload.web_wanted

let undesired_mix (app : Workload.app) =
  if app.Workload.a_name = "rkv" then Workload.kv_undesired
  else Workload.web_undesired

let fleet_cmd =
  let feature =
    let doc =
      "Feature to roll out across the fleet (same choices as $(b,cut)); \
       default put-delete for the web servers, SET for rkv."
    in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FEATURE" ~doc)
  in
  let workers =
    let doc = "Number of fleet workers behind the round-robin fan-out." in
    Arg.(value & opt int 6 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let waves =
    let doc = "Number of rollout waves the fleet is chunked into." in
    Arg.(value & opt int 3 & info [ "waves" ] ~docv:"K" ~doc)
  in
  let drift_window =
    let doc =
      "Drift-monitor sampling window in virtual cycles (live windowed \
       drcov); 0 disables the post-rollout drift soak."
    in
    Arg.(value & opt int 50_000 & info [ "drift-window" ] ~docv:"W" ~doc)
  in
  let storm_wave =
    let doc =
      "From wave $(docv) onward, drive the app's undesired mix instead of \
       the wanted mix — that wave's canary breaches its trap SLO and the \
       rollout halts with earlier waves still cut (exit 4)."
    in
    Arg.(value & opt (some int) None & info [ "storm-wave" ] ~docv:"K" ~doc)
  in
  let slices =
    let doc = "Drift soak rounds (wanted traffic + one monitor tick each)." in
    Arg.(value & opt int 6 & info [ "slices" ] ~docv:"N" ~doc)
  in
  let offered_load =
    let doc =
      "After the rollout (and drift soak), saturate the fleet with the \
       deterministic open-loop generator at $(docv) requests per million \
       virtual cycles — Poisson arrivals, per-request deadlines, budgeted \
       retries — and print goodput, shed/timeout/retry counts and latency \
       percentiles. 0 (the default) skips the overload soak."
    in
    Arg.(value & opt float 0. & info [ "offered-load" ] ~docv:"RATE" ~doc)
  in
  let deadline =
    let doc =
      "Per-request client deadline for the $(b,--offered-load) soak, in \
       virtual cycles; a request that waits longer is abandoned (and \
       retried while the retry budget lasts)."
    in
    Arg.(value & opt int 400_000 & info [ "deadline" ] ~docv:"CYCLES" ~doc)
  in
  let sites_json =
    let doc =
      "With $(b,--list-fault-sites): dump the registry as a JSON array \
       (site, applicable modes, fired count, description) instead of the \
       human listing. ci.sh's registry sync check consumes this."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let scrub_interval =
    let doc =
      "Background memory-integrity scrubbing: every $(docv) virtual \
       cycles one worker (rotating) has a page slice of its immutable \
       VMAs digest-audited against its live baseline; a mismatch \
       quarantines the worker, heals the page from the best trusted \
       source, and escalates to a respawn only if repair fails or the \
       page diverges again. 0 (the default) disables scrubbing."
    in
    Arg.(value & opt int 0 & info [ "scrub-interval" ] ~docv:"CYCLES" ~doc)
  in
  let action app feature workers waves drift_window storm_wave slices
      offered_load deadline scrub_interval faults seed list_sites sites_json
      verbose metrics =
    let print_sites () =
      if sites_json then print_fault_sites_json ()
      else print_fault_sites ~verbose ()
    in
    if list_sites && app = None then begin
      print_sites ();
      exit 0
    end;
    let app = require_app app in
    let port = server_port app in
    let feature = default_feature app feature in
    let blocks, redirect = feature_blocks app feature in
    arm_faults ?seed faults;
    let traced = drift_window > 0 in
    let ctxs = Workload.spawn_fleet ~traced ~n:workers app in
    Workload.wait_fleet_ready ctxs;
    let m = (List.hd ctxs).Workload.m in
    let pids = List.map (fun c -> c.Workload.pid) ctxs in
    let fleet =
      Fleet.create m ~port ~pids ~blocks
        ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect redirect }
    in
    if scrub_interval > 0 then
      Fleet.start_scrub
        ~config:
          { Fleet.default_scrub_config with Fleet.sc_interval = scrub_interval }
        fleet;
    (* pump the background scrubber between request batches; only slices
       that found, refused or escalated something are worth a line *)
    let scrub_pump () =
      if scrub_interval > 0 then
        match Fleet.scrub_tick fleet with
        | Some r
          when r.Fleet.sr_findings <> []
               || r.Fleet.sr_refused <> None
               || r.Fleet.sr_respawned ->
            Format.printf "scrub: pid=%d findings=%d repaired=[%s]%s%s@."
              r.Fleet.sr_pid
              (List.length r.Fleet.sr_findings)
              (String.concat ";"
                 (List.map (fun (_, src) -> src) r.Fleet.sr_repaired))
              (if r.Fleet.sr_respawned then " respawned" else "")
              (match r.Fleet.sr_refused with
              | Some e -> " refused: " ^ e
              | None -> "")
        | Some _ | None -> ()
    in
    let send reqs =
      List.iter (fun r -> ignore (Fleet.request fleet r)) reqs;
      scrub_pump ()
    in
    let drive () =
      let w = int_of_float (Obs.gauge_value (Obs.gauge "fleet.wave")) in
      match storm_wave with
      | Some k when w >= k ->
          (* the round-robin fan-out spreads the batch across the whole
             fleet, so repeat the mix per worker to breach the canary's
             per-window trap SLO *)
          for _ = 1 to workers do
            send (undesired_mix app)
          done
      | _ -> send (wanted_mix app)
    in
    let config =
      Rollout.
        {
          r_waves = waves;
          r_sup =
            { Supervisor.default_config with Supervisor.canary_windows = 1 };
        }
    in
    let finish code =
      if scrub_interval > 0 then
        Format.printf
          "scrub: pages scanned %d (hashed %d)  mismatches %d  quarantines \
           %d  respawns %d@."
          (Obs.counter_value (Obs.counter "integrity.pages_scanned"))
          (Obs.counter_value (Obs.counter "integrity.pages_hashed"))
          (Obs.counter_value (Obs.counter "integrity.mismatches"))
          (Obs.counter_value (Obs.counter "fleet.scrub.quarantines"))
          (Obs.counter_value (Obs.counter "fleet.scrub.respawns"));
      if faults <> [] then print_endline (Fault.report ());
      if list_sites then print_sites ();
      write_metrics metrics;
      exit code
    in
    match Fleet.rollout fleet ~config ~drive () with
    | exception Fault.Controller_killed { site } ->
        (* a :kill fault staged a controller death mid-rollout: recover
           the fleet as a fresh controller would *)
        Format.printf "controller killed at %s@." site;
        let r = Fleet.recover m ~pids in
        Format.printf "recover: %a@." Fleet.pp_recovery r;
        finish 6
    | outcome, reports ->
        List.iter
          (fun (r : Rollout.wave_report) ->
            Format.printf "wave %d pids=[%s] pause=%Ld cycles@."
              r.Rollout.wr_wave
              (String.concat ";" (List.map string_of_int r.Rollout.wr_pids))
              r.Rollout.wr_pause_cycles)
          reports;
        Format.printf "rollout: %a@." Rollout.pp_outcome outcome;
        if drift_window > 0 then begin
          Fleet.start_drift fleet
            ~config:
              Drift.
                {
                  default_config with
                  d_period = Int64.of_int drift_window;
                }
            ~collector:(Workload.collector (List.hd ctxs))
            ();
          for _ = 1 to slices do
            send (wanted_mix app);
            match Fleet.tick fleet with
            | Some a -> Format.printf "drift: %a@." Drift.pp_action a
            | None -> ()
          done
        end;
        if offered_load > 0. then begin
          let cfg =
            {
              Loadgen.default_config with
              Loadgen.lg_offered = offered_load;
              lg_deadline = Int64.of_int deadline;
            }
          in
          let st =
            match Fleet.overload fleet cfg ~text:(List.hd (wanted_mix app)) with
            | st -> st
            | exception Fault.Controller_killed { site } ->
                (* a :kill fault on a dispatch-path site (balancer.*,
                   net.accept_queue, fleet.shed) fires under open-loop
                   load rather than mid-rollout: same recovery story *)
                Format.printf "controller killed at %s@." site;
                let r = Fleet.recover m ~pids in
                Format.printf "recover: %a@." Fleet.pp_recovery r;
                finish 6
          in
          let goodput =
            float_of_int st.Loadgen.s_completed
            /. (Int64.to_float st.Loadgen.s_cycles /. 1e6)
          in
          Format.printf "overload: %a@." Loadgen.pp_stats st;
          Format.printf "overload goodput %.1f req/Mcycle@." goodput
        end;
        let pid_counter name pid =
          Obs.counter_value
            (Obs.counter ~labels:[ ("pid", string_of_int pid) ] name)
        in
        let rows =
          Fleet.workers fleet
          |> List.sort (fun a b -> compare a.Rollout.w_pid b.Rollout.w_pid)
          |> List.map (fun (w : Rollout.worker) ->
                 let p = Machine.proc_exn m w.Rollout.w_pid in
                 [
                   string_of_int w.Rollout.w_pid;
                   p.Proc.comm;
                   Proc.state_to_string p.Proc.state;
                   (if w.Rollout.w_wave < 0 then "-"
                    else string_of_int w.Rollout.w_wave);
                   w.Rollout.w_state;
                   Int64.to_string w.Rollout.w_since;
                   string_of_int (pid_counter "machine.traps" w.Rollout.w_pid);
                   string_of_int (pid_counter "fleet.dispatches" w.Rollout.w_pid);
                 ])
        in
        print_string
          (Table.render
             ~headers:
               [ "PID"; "COMM"; "STATE"; "WAVE"; "LAST"; "SINCE"; "TRAPS"; "REQS" ]
             rows);
        print_newline ();
        Format.printf "drift score %.2f  refused %d@."
          (Obs.gauge_value (Obs.gauge "fleet.drift_score"))
          (Obs.counter_value (Obs.counter "fleet.refused"));
        finish (match outcome with Rollout.Completed _ -> 0 | Rollout.Halted _ -> 4)
  in
  let doc =
    "Boot N workers of one app behind the kernel's round-robin listener \
     fan-out, roll a cut out wave-by-wave with a canary gating each wave, \
     then soak under the coverage-drift monitor."
  in
  let man =
    [
      `S "EXIT STATUS";
      `P "0: the rollout completed every wave (drift actions are normal \
          operation, not failures).";
      `P "2: usage error (unknown app, feature, fault spec, or a batch \
          app without a port).";
      `P
        "4: the rollout halted — a wave's canary was rejected or a member \
         cut rolled back; the interrupted wave was reverted to original \
         while earlier waves stay cut.";
      `P
        "6: a staged ':kill' fault killed the controller mid-rollout and \
         fleet recovery converged the workers (per-pid applied XOR \
         unchanged, open wave unwound).";
    ]
  in
  Cmd.v
    (Cmd.info "fleet" ~doc ~man)
    Term.(
      const action $ app_opt_arg $ feature $ workers $ waves $ drift_window
      $ storm_wave $ slices $ offered_load $ deadline $ scrub_interval
      $ inject_fault_arg $ fault_seed_arg $ list_fault_sites_arg $ sites_json
      $ verbose_arg $ metrics_out_arg)

(* ---------- scrub ---------- *)

let scrub_cmd =
  let workers =
    let doc = "Number of fleet workers to audit." in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let flips =
    let doc =
      "Inject $(docv) seeded single-bit flips into resident immutable \
       pages (rotating over the workers) between the baseline capture \
       and the audit — a silent-corruption demo the scrubber must \
       detect and heal. 0 audits a pristine fleet."
    in
    Arg.(value & opt int 2 & info [ "flips" ] ~docv:"K" ~doc)
  in
  let seed =
    let doc = "Seed for the flip locations." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc)
  in
  let action app workers flips seed metrics =
    let app = find_app app in
    let port = server_port app in
    let blocks, redirect = feature_blocks app (default_feature app None) in
    Fault.reset ();
    let ctxs = Workload.spawn_fleet ~n:workers app in
    Workload.wait_fleet_ready ctxs;
    let m = (List.hd ctxs).Workload.m in
    let pids = List.map (fun c -> c.Workload.pid) ctxs in
    let fleet =
      Fleet.create m ~port ~pids ~blocks
        ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect redirect }
    in
    Fleet.start_scrub fleet;
    (* baseline capture: a first full audit of every worker, necessarily
       clean — the manifests record what the loader left in memory *)
    List.iter (fun pid -> ignore (Fleet.scrub_now fleet ~pid)) pids;
    let rng = Rng.create seed in
    for i = 0 to flips - 1 do
      let victim = List.nth pids (i mod List.length pids) in
      match Machine.bitflip m ~pid:victim rng with
      | Some (pid, vaddr) -> Format.printf "flip: pid=%d vaddr=0x%Lx@." pid vaddr
      | None ->
          Format.printf "flip: pid=%d has no resident immutable page@." victim
    done;
    let reports = List.map (fun pid -> Fleet.scrub_now fleet ~pid) pids in
    let rows =
      List.map
        (fun (r : Fleet.scrub_report) ->
          let pid = r.Fleet.sr_pid in
          let p = Machine.proc_exn m pid in
          [
            string_of_int pid;
            p.Proc.comm;
            Proc.state_to_string p.Proc.state;
            string_of_int
              (Integrity.pages_tracked (Fleet.integrity fleet ~pid));
            string_of_int (List.length r.Fleet.sr_findings);
            (match r.Fleet.sr_repaired with
            | [] -> "-"
            | l -> String.concat ";" (List.map snd l));
            (if r.Fleet.sr_respawned then "yes" else "no");
          ])
        reports
    in
    print_string
      (Table.render
         ~headers:
           [ "PID"; "COMM"; "STATE"; "PAGES"; "MISMATCH"; "REPAIR"; "RESPAWN" ]
         rows);
    print_newline ();
    Format.printf
      "scrub: pages scanned %d (hashed %d)  mismatches %d  respawns %d@."
      (Obs.counter_value (Obs.counter "integrity.pages_scanned"))
      (Obs.counter_value (Obs.counter "integrity.pages_hashed"))
      (Obs.counter_value (Obs.counter "integrity.mismatches"))
      (Obs.counter_value (Obs.counter "fleet.scrub.respawns"));
    (* the post-heal audit must be clean: every surviving page matches
       its baseline again *)
    let residue =
      List.concat_map
        (fun pid -> Integrity.scrub_full (Fleet.integrity fleet ~pid) ~pids:[ pid ] ())
        pids
    in
    write_metrics metrics;
    if residue <> [] then begin
      List.iter
        (fun f -> Format.printf "residue: %a@." Integrity.pp_finding f)
        residue;
      exit 3
    end
  in
  let doc =
    "Audit a fleet's immutable pages against live baselines, heal \
     seeded bit-flips page-by-page, and verify the post-repair state is \
     clean."
  in
  let man =
    [
      `S "EXIT STATUS";
      `P "0: every audited page matches its baseline after healing.";
      `P "2: usage error (unknown app, or a batch app without a port).";
      `P
        "3: residue — a page still diverged from its baseline after the \
         graduated repair/respawn response.";
    ]
  in
  Cmd.v
    (Cmd.info "scrub" ~doc ~man)
    Term.(const action $ app_arg $ workers $ flips $ seed $ metrics_out_arg)

(* ---------- top ---------- *)

let top_cmd =
  let feature =
    let doc =
      "Feature to roll out under supervision (same choices as $(b,cut)); \
       default put-delete for the web servers, SET for rkv."
    in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FEATURE" ~doc)
  in
  let storm =
    let doc =
      "Cut the app's wanted GET path too, provoking a trap storm (same \
       semantics as $(b,guard --storm)) so the summary shows breaker and \
       respawn activity."
    in
    Arg.(value & flag & info [ "storm" ] ~doc)
  in
  let canary =
    let doc = "Canary rollout before promoting (default true)." in
    Arg.(value & opt bool true & info [ "canary" ] ~docv:"BOOL" ~doc)
  in
  let slices =
    let doc = "Soak rounds (traffic + supervision tick) after rollout." in
    Arg.(value & opt int 8 & info [ "slices" ] ~docv:"N" ~doc)
  in
  let storm_sym (app : Workload.app) =
    match app.Workload.a_name with
    | "ngx" -> "ngx_http_get"
    | "ltpd" -> "ltpd_handle_get"
    | "rkv" -> "rkv_cmd_get"
    | n ->
        Printf.eprintf "--storm is not supported for %s\n" n;
        exit 2
  in
  let fleet_n =
    let doc =
      "Fleet mode: boot $(docv) workers, roll the cut out wave-by-wave, \
       soak under the drift monitor, and add per-worker WAVE / DRIFT / \
       LAST columns to the table."
    in
    Arg.(value & opt int 0 & info [ "fleet" ] ~docv:"N" ~doc)
  in
  let pid_counter name pid =
    Obs.counter_value
      (Obs.counter ~labels:[ ("pid", string_of_int pid) ] name)
  in
  let fleet_action app feature slices n =
    let blocks, redirect = feature_blocks app feature in
    Fault.reset ();
    let ctxs = Workload.spawn_fleet ~traced:true ~n app in
    Workload.wait_fleet_ready ctxs;
    let m = (List.hd ctxs).Workload.m in
    let pids = List.map (fun c -> c.Workload.pid) ctxs in
    let fleet =
      Fleet.create m ~port:(server_port app) ~pids ~blocks
        ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect redirect }
    in
    let reqs = wanted_mix app in
    let drive () = List.iter (fun r -> ignore (Fleet.request fleet r)) reqs in
    let config =
      Rollout.
        {
          r_waves = min 3 n;
          r_sup =
            { Supervisor.default_config with Supervisor.canary_windows = 1 };
        }
    in
    let outcome, _ = Fleet.rollout fleet ~config ~drive () in
    Fleet.start_drift fleet ~collector:(Workload.collector (List.hd ctxs)) ();
    Fleet.start_scrub fleet;
    for _ = 1 to slices do
      drive ();
      ignore (Fleet.tick fleet);
      ignore (Fleet.scrub_tick fleet)
    done;
    (* force one full audit per worker so the SCRUB column shows every
       worker's baselined page count, not just the slices the rotation
       reached during the soak *)
    List.iter (fun pid -> ignore (Fleet.scrub_now fleet ~pid)) pids;
    let drift = Printf.sprintf "%.2f" (Obs.gauge_value (Obs.gauge "fleet.drift_score")) in
    let rows =
      Fleet.workers fleet
      |> List.sort (fun a b -> compare a.Rollout.w_pid b.Rollout.w_pid)
      |> List.map (fun (w : Rollout.worker) ->
             let p = Machine.proc_exn m w.Rollout.w_pid in
             [
               string_of_int w.Rollout.w_pid;
               p.Proc.comm;
               Proc.state_to_string p.Proc.state;
               string_of_int (pid_counter "machine.traps" w.Rollout.w_pid);
               (if w.Rollout.w_wave < 0 then "-"
                else string_of_int w.Rollout.w_wave);
               drift;
               string_of_int
                 (Integrity.pages_tracked
                    (Fleet.integrity fleet ~pid:w.Rollout.w_pid));
               Printf.sprintf "%s@%Ld" w.Rollout.w_state w.Rollout.w_since;
             ])
    in
    print_string
      (Table.render
         ~headers:
           [ "PID"; "COMM"; "STATE"; "TRAPS"; "WAVE"; "DRIFT"; "SCRUB"; "LAST" ]
         rows);
    print_newline ();
    Format.printf "rollout: %a  reqs=%d refused=%d traps=%d@."
      Rollout.pp_outcome outcome
      (List.fold_left (fun a pid -> a + pid_counter "fleet.dispatches" pid) 0 pids)
      (Obs.counter_value (Obs.counter "fleet.refused"))
      (Obs.counter_value (Obs.counter "machine.traps"));
    Format.printf "scrub: pages scanned %d  mismatches %d@."
      (Obs.counter_value (Obs.counter "integrity.pages_scanned"))
      (Obs.counter_value (Obs.counter "integrity.mismatches"))
  in
  let action app feature storm canary slices fleet_n =
    if fleet_n > 0 then begin
      let app = require_app app in
      fleet_action app (default_feature app feature) slices fleet_n;
      exit 0
    end;
    let app = require_app app in
    let feature = default_feature app feature in
    let blocks, redirect = feature_blocks app feature in
    let blocks, on_trap =
      if storm then
        ( blocks
          @ [
              Supervisor.block_of_sym (Common.app_exe app)
                ~module_:app.Workload.a_name ~sym:(storm_sym app);
            ],
          `Terminate )
      else (blocks, `Redirect redirect)
    in
    Fault.reset ();
    let c = Workload.spawn app in
    Workload.wait_ready c;
    let m = c.Workload.m in
    let session = Dynacut.create m ~root_pid:c.Workload.pid in
    let sup =
      Supervisor.create session ~config:Supervisor.default_config ~blocks
        ~policy:{ Dynacut.method_ = `First_byte; on_trap }
    in
    let reqs =
      if app.Workload.a_name = "rkv" then [ "GET somekey\n" ]
      else Workload.web_wanted
    in
    let drive () =
      List.iter (fun r -> ignore (Workload.rpc c r)) reqs;
      ignore (Machine.run m ~max_cycles:20_000)
    in
    let rollout = Supervisor.guarded_cut sup ~canary ~drive () in
    for _ = 1 to slices do
      drive ();
      Supervisor.tick sup
    done;
    let rows =
      Machine.all_procs m
      |> List.map (fun (p : Proc.t) -> p.Proc.pid)
      |> List.sort compare
      |> List.map (fun pid ->
             let p = Machine.proc_exn m pid in
             [
               string_of_int pid;
               p.Proc.comm;
               Proc.state_to_string p.Proc.state;
               string_of_int (pid_counter "machine.traps" pid);
               string_of_int (pid_counter "supervisor.respawns" pid);
             ])
    in
    print_string
      (Table.render ~headers:[ "PID"; "COMM"; "STATE"; "TRAPS"; "RESPAWNS" ]
         rows);
    Format.printf "rollout: %a@." Supervisor.pp_rollout rollout;
    Format.printf "breaker: %a (trips=%d)  steps=%d syscalls=%d traps=%d@."
      Supervisor.pp_breaker
      (Supervisor.breaker_state sup)
      (Supervisor.trips sup)
      (Obs.counter_value (Obs.counter "machine.steps"))
      (Obs.counter_value (Obs.counter "machine.syscalls"))
      (Obs.counter_value (Obs.counter "machine.traps"))
  in
  let doc =
    "Guarded rollout, then a per-pid trap/respawn/breaker summary table \
     from the metric registry (--fleet N for the fleet view)."
  in
  Cmd.v
    (Cmd.info "top" ~doc)
    Term.(
      const action $ app_opt_arg $ feature $ storm $ canary $ slices $ fleet_n)

(* ---------- crit ---------- *)

let crit_cmd =
  let mode =
    let doc = "One of: decode (image to text), mems (VMA table)." in
    Arg.(value & pos 1 string "mems" & info [] ~docv:"MODE" ~doc)
  in
  let action app mode out =
    let c = Workload.spawn (find_app app) in
    Workload.wait_ready c;
    Machine.freeze c.Workload.m ~pid:c.Workload.pid;
    let img = Checkpoint.dump c.Workload.m ~pid:c.Workload.pid () in
    match mode with
    | "decode" -> emit out (Crit.decode_to_text (Images.encode img))
    | "mems" -> emit out (Crit.show_mems img)
    | m ->
        Printf.eprintf "unknown crit mode %S\n" m;
        exit 2
  in
  let doc = "Checkpoint an app and inspect its images (the CRIT tool)." in
  Cmd.v (Cmd.info "crit" ~doc) Term.(const action $ app_arg $ mode $ out_arg)

(* ---------- disasm ---------- *)

let disasm_cmd =
  let action app out =
    let exe = Common.app_exe (find_app app) in
    let buf = Buffer.create 65536 in
    let fmt = Format.formatter_of_buffer buf in
    Self.pp fmt exe;
    List.iter
      (fun (s : Self.section) ->
        if s.Self.sec_prot.Self.p_x then begin
          Format.fprintf fmt "@.-- %s --@." s.Self.sec_name;
          Decode.pp_listing fmt s.Self.sec_data
            ~base:(Int64.add exe.Self.base (Int64.of_int s.Self.sec_off))
        end)
      exe.Self.sections;
    Format.pp_print_flush fmt ();
    emit out (Buffer.contents buf)
  in
  let doc = "Disassemble a guest binary's executable sections." in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const action $ app_arg $ out_arg)

(* ---------- chaos ---------- *)

let chaos_cmd =
  let runs =
    let doc = "Number of seeded multi-fault schedules to generate and run." in
    Arg.(value & opt int 20 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc =
      "Base seed; run $(i,i) uses seed+$(i,i). Every random draw of a run \
       (schedule shape, fault jitter, workload) derives from its seed, so \
       any failure replays bit-for-bit."
    in
    Arg.(value & opt int 1000 & info [ "seed" ] ~docv:"S" ~doc)
  in
  let shrink =
    let doc =
      "On the first invariant violation, delta-debug the schedule down to \
       a 1-minimal event list that still violates (same seed), and write \
       the replay file for it."
    in
    Arg.(value & flag & info [ "shrink" ] ~doc)
  in
  let replay =
    let doc =
      "Re-run the single schedule in this chaos-replay file instead of \
       generating schedules; prints the report digest so two runs can be \
       compared bit-for-bit."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let out =
    let doc = "Where to write the replay file of a violating schedule." in
    Arg.(
      value
      & opt string "chaos-replay.txt"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let workers =
    let doc = "Fleet size each schedule runs against." in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let max_events =
    let doc = "Largest number of fault events in a generated schedule." in
    Arg.(value & opt int 4 & info [ "max-events" ] ~docv:"K" ~doc)
  in
  let action app runs seed shrink replay out workers max_events =
    let app = require_app app in
    (match Chaos.redirect_sym app with
    | (_ : string) -> ()
    | exception Invalid_argument _ ->
        Printf.eprintf
          "chaos drives the web servers; %s has no redirect symbol\n"
          app.Workload.a_name;
        exit 2);
    let config =
      { Chaos.default_config with Chaos.c_app = app; c_workers = workers }
    in
    let show (r : Chaos.report) =
      Format.printf "%a@.digest=%Ld@." Chaos.pp_report r
        (Chaos.report_digest r)
    in
    match replay with
    | Some file ->
        let ic = open_in file in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        let sched =
          match Schedule.of_replay text with
          | s -> s
          | exception Schedule.Unsupported_version { uv_found; uv_supported }
            ->
              Printf.eprintf
                "%s: unsupported chaos-replay version %s (this build \
                 supports %s)\n"
                file uv_found uv_supported;
              exit 2
          | exception Invalid_argument e ->
              Printf.eprintf "%s: %s\n" file e;
              exit 2
        in
        let r = Chaos.run ~config sched in
        show r;
        exit (if Chaos.passed r then 0 else 8)
    | None ->
        let failed = ref None in
        let i = ref 0 in
        while !failed = None && !i < runs do
          let sched =
            Schedule.generate ~max_events ~seed:(seed + !i) ()
          in
          let r = Chaos.run ~config sched in
          Format.printf "run %d/%d seed=%d events=%d fired=%d %s@." (!i + 1)
            runs sched.Schedule.sc_seed
            (List.length sched.Schedule.sc_events)
            (List.length r.Chaos.r_fired)
            (if Chaos.passed r then "pass" else "VIOLATION");
          if not (Chaos.passed r) then failed := Some r;
          incr i
        done;
        (match !failed with
        | None ->
            Format.printf "%d/%d schedules passed every invariant@." runs runs;
            exit 0
        | Some r ->
            show r;
            let sched = r.Chaos.r_schedule in
            let final =
              if shrink then begin
                let shrunk =
                  Shrink.minimize
                    ~failing:(fun s ->
                      not (Chaos.passed (Chaos.run ~config s)))
                    sched
                in
                Format.printf "shrunk %d -> %d events: %a@."
                  (List.length sched.Schedule.sc_events)
                  (List.length shrunk.Schedule.sc_events)
                  Schedule.pp shrunk;
                shrunk
              end
              else sched
            in
            let oc = open_out out in
            output_string oc (Schedule.to_replay final);
            close_out oc;
            Format.printf "wrote %s@." out;
            exit 8)
  in
  let doc =
    "Run seeded multi-fault chaos schedules against a worker fleet and \
     check every invariant oracle; shrink and save any failure as a \
     deterministic replay file."
  in
  let man =
    [
      `S "EXIT STATUS";
      `P "0: every schedule (or the replayed one) passed every invariant.";
      `P
        "2: usage error (unknown app, app without a redirect symbol, or \
         a malformed / future-version --replay file).";
      `P
        "8: an invariant was violated; the (possibly shrunk) schedule was \
         written as a replay file that reproduces the violation from the \
         seed alone.";
      `S "INVARIANTS";
      `P
        "Safety: every worker is applied-XOR-unchanged; no committed wave \
         is lost after manifest replay; recovery is idempotent by state \
         digest; no accepted request is silently dropped.";
      `P
        "Liveness: the fleet serves again within the recovery budget once \
         faults clear, and post-fault goodput stays above the floor.";
    ]
  in
  Cmd.v
    (Cmd.info "chaos" ~doc ~man)
    Term.(
      const action $ app_opt_arg $ runs $ seed $ shrink $ replay $ out
      $ workers $ max_events)

(* ---------- report ---------- *)

let report_cmd =
  let which =
    let doc = "Experiments to run (fig2 fig6 fig7 fig8 fig9 fig10 table1 security)." in
    Arg.(value & pos_all string [] & info [] ~docv:"EXP" ~doc)
  in
  let action which =
    let fmt = Format.std_formatter in
    let all =
      [
        ("fig2", fun () -> ignore (Fig2.run fmt));
        ("fig6", fun () -> ignore (Fig6.run fmt));
        ("fig7", fun () -> ignore (Fig7.run fmt));
        ("fig8", fun () -> ignore (Fig8.run fmt));
        ("fig9", fun () -> ignore (Fig9.run fmt));
        ("fig10", fun () -> ignore (Fig10.run fmt));
        ("table1", fun () -> ignore (Table1.run fmt));
        ("security", fun () -> ignore (Security.run fmt));
      ]
    in
    let selected =
      match which with
      | [] -> all
      | names -> List.filter (fun (n, _) -> List.mem n names) all
    in
    List.iter (fun (_, f) -> f ()) selected
  in
  let doc = "Regenerate the paper's tables and figures." in
  Cmd.v (Cmd.info "report" ~doc) Term.(const action $ which)

let () =
  let doc = "dynamic and adaptive program customization (Middleware '23)" in
  let info = Cmd.info "dynacut" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            trace_cmd;
            tracediff_cmd;
            slice_cmd;
            cut_cmd;
            guard_cmd;
            recover_cmd;
            fleet_cmd;
            scrub_cmd;
            stats_cmd;
            top_cmd;
            crit_cmd;
            disasm_cmd;
            chaos_cmd;
            report_cmd;
          ]))
