(** Chaos engine: schedule generation and replay determinism, fault-mode
    end-to-end semantics under the invariant oracles, and the ddmin
    shrinker reducing a deliberately broken invariant to a 1-minimal
    schedule that replays bit-for-bit from the seed. *)

(* ---------- schedules ---------- *)

let test_generate_deterministic () =
  let a = Schedule.generate ~seed:7 () in
  let b = Schedule.generate ~seed:7 () in
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  Alcotest.(check bool) "at least one event" true
    (List.length a.Schedule.sc_events >= 1);
  (* no two events share a site: the registry arms one entry per site *)
  let sites = List.map (fun e -> e.Schedule.ev_site) a.Schedule.sc_events in
  Alcotest.(check int) "distinct sites" (List.length sites)
    (List.length (List.sort_uniq compare sites));
  let c = Schedule.generate ~seed:8 () in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c);
  (* generated windows live inside the horizon and are non-empty *)
  List.iter
    (fun e ->
      match e.Schedule.ev_trigger with
      | Schedule.Nth n -> Alcotest.(check bool) "nth >= 1" true (n >= 1)
      | Schedule.Window (t0, t1) ->
          Alcotest.(check bool) "window non-empty" true (t1 > t0);
          Alcotest.(check bool) "window starts in horizon" true (t0 >= 0))
    (List.concat_map
       (fun seed -> (Schedule.generate ~seed ()).Schedule.sc_events)
       [ 1; 2; 3; 4; 5 ])

let test_replay_roundtrip () =
  List.iter
    (fun seed ->
      let s = Schedule.generate ~seed () in
      let s' = Schedule.of_replay (Schedule.to_replay s) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d round-trips" seed)
        true (s = s'))
    [ 1; 17; 400; 9999 ];
  (* every mode round-trips through its replay spelling *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Fault.mode_to_string m ^ " round-trips")
        true
        (Schedule.mode_of_string (Fault.mode_to_string m) = m))
    [ Fault.Fail; Fault.Kill; Fault.Delay 25_000; Fault.Corrupt;
      Fault.Enospc; Fault.Eio; Fault.Bitflip ];
  (* malformed files are rejected, not half-parsed *)
  let rejects text =
    match Schedule.of_replay text with
    | (_ : Schedule.t) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "wrong header rejected" true (rejects "not-a-replay\n");
  Alcotest.(check bool) "missing seed rejected" true
    (rejects "chaos-replay v1\nevent journal.lock fail nth 1\n");
  Alcotest.(check bool) "bad mode rejected" true
    (rejects "chaos-replay v1\nseed 3\nevent journal.lock explode nth 1\n");
  Alcotest.(check bool) "bad delay rejected" true
    (rejects "chaos-replay v1\nseed 3\nevent net.serve delay=zero nth 1\n");
  (* comments and blank lines are fine *)
  let s =
    Schedule.of_replay
      "chaos-replay v1\n# a comment\n\nseed 11\nevent criu.save corrupt nth 2\n"
  in
  Alcotest.(check int) "seed parsed" 11 s.Schedule.sc_seed;
  Alcotest.(check int) "one event" 1 (List.length s.Schedule.sc_events)

(* a well-formed file from a future format version must be refused with
   the dedicated exception — never half-parsed into a different
   schedule than the one that failed *)
let test_replay_future_version_rejected () =
  let v2 = "chaos-replay v2\nseed 3\nevent net.serve fail nth 1\n" in
  (match Schedule.of_replay v2 with
  | (_ : Schedule.t) -> Alcotest.fail "v2 file parsed as v1"
  | exception Schedule.Unsupported_version { uv_found; uv_supported } ->
      Alcotest.(check string) "found version" "v2" uv_found;
      Alcotest.(check string) "supported version" "v1" uv_supported);
  (* the registered printer renders both versions for the human *)
  (match Schedule.of_replay v2 with
  | (_ : Schedule.t) -> Alcotest.fail "v2 file parsed as v1"
  | exception e ->
      let msg = Printexc.to_string e in
      let has needle =
        let nl = String.length needle and hl = String.length msg in
        let rec go i =
          i + nl <= hl && (String.sub msg i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "printer names versions (%s)" msg)
        true
        (has "v2" && has "v1"));
  (* a header that is not a replay header at all still gets the generic
     rejection, not the version error *)
  match Schedule.of_replay "chaos-replayv2\nseed 3\n" with
  | (_ : Schedule.t) -> Alcotest.fail "junk header parsed"
  | exception Invalid_argument _ -> ()
  | exception Schedule.Unsupported_version _ ->
      Alcotest.fail "junk header misread as a future version"

(* ---------- fault modes end-to-end under the oracles ---------- *)

let sched seed events =
  {
    Schedule.sc_seed = seed;
    sc_events =
      List.map
        (fun (site, mode, trig) ->
          { Schedule.ev_site = site; ev_mode = mode; ev_trigger = trig })
        events;
  }

(* a corrupted journal frame must be caught by the checksum layer at
   read time and never violate an invariant: the torn tail is dropped,
   the tree converges, the fleet serves *)
let test_corrupt_journal_clean () =
  let s = sched 301 [ ("journal.append", Fault.Corrupt, Schedule.Nth 1) ] in
  let r = Chaos.run s in
  Alcotest.(check bool) "the corruption fired" true
    (List.mem_assoc "journal.append" r.Chaos.r_fired);
  Alcotest.(check bool)
    (Format.asprintf "no violations: %a" Chaos.pp_report r)
    true (Chaos.passed r)

(* a scheduled bitflip lands silently in a resident immutable page: the
   background scrubber must detect it within the run and heal it — the
   scrub oracle fails the run if a surviving flip went unnoticed or any
   page still diverges after the forced post-run audit *)
let test_bitflip_detected_and_healed () =
  let s = sched 305 [ ("scrub.page", Fault.Bitflip, Schedule.Nth 2) ] in
  let r = Chaos.run s in
  Alcotest.(check bool) "the bitflip fired" true
    (List.mem_assoc "scrub.page" r.Chaos.r_fired);
  Alcotest.(check bool)
    (Format.asprintf "no violations: %a" Chaos.pp_report r)
    true (Chaos.passed r)

(* a full disk at image-save time is a clean refusal: the cut is denied,
   nothing half-done, every invariant holds *)
let test_enospc_clean_refusal () =
  let s = sched 302 [ ("criu.save", Fault.Enospc, Schedule.Nth 1) ] in
  let r = Chaos.run s in
  Alcotest.(check bool) "the enospc fired" true
    (List.mem_assoc "criu.save" r.Chaos.r_fired);
  (* the guard absorbs the typed storage error: the cut is refused — as
     a rolled-back canary (halted rollout) or an explicit refusal —
     never a stranded half-patched tree *)
  let has needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "refused cleanly" true
    (List.exists
       (fun n -> has "enospc" n || has "halted" n || has "rolled back" n)
       r.Chaos.r_notes);
  Alcotest.(check bool)
    (Format.asprintf "no violations: %a" Chaos.pp_report r)
    true (Chaos.passed r)

(* ---------- the shrinker on a deliberately broken invariant ---------- *)

(* the "invariant": criu.save must never fire. Any schedule containing a
   criu.save event that strikes violates it — so ddmin must strip every
   other event and hand back exactly the criu.save one. *)
let broken_oracle (_ : Oracle.ctx) : Oracle.violation list =
  if Fault.fired "criu.save" > 0 then
    [ Oracle.violation "demo-no-save-fault" "criu.save fired" ]
  else []

let test_shrink_to_minimal_and_replay () =
  let s =
    sched 303
      [
        ("net.serve", Fault.Fail, Schedule.Nth 2);
        ("criu.save", Fault.Enospc, Schedule.Nth 1);
        ("balancer.health", Fault.Fail, Schedule.Nth 3);
      ]
  in
  let failing sc =
    not (Chaos.passed (Chaos.run ~extra_oracle:broken_oracle sc))
  in
  Alcotest.(check bool) "the full schedule violates" true (failing s);
  let minimal = Shrink.minimize ~failing s in
  Alcotest.(check int) "shrunk to one event" 1
    (List.length minimal.Schedule.sc_events);
  Alcotest.(check string) "the culprit event survives" "criu.save"
    (List.hd minimal.Schedule.sc_events).Schedule.ev_site;
  Alcotest.(check int) "seed unchanged" s.Schedule.sc_seed
    minimal.Schedule.sc_seed;
  (* the replay file reproduces the violation bit-for-bit: same report
     digest across two independent runs of the parsed schedule *)
  let replayed = Schedule.of_replay (Schedule.to_replay minimal) in
  Alcotest.(check bool) "replay parses back" true (replayed = minimal);
  let r1 = Chaos.run ~extra_oracle:broken_oracle replayed in
  let r2 = Chaos.run ~extra_oracle:broken_oracle replayed in
  Alcotest.(check bool) "replay still violates" true (not (Chaos.passed r1));
  Alcotest.(check int64) "bit-for-bit reproduction"
    (Chaos.report_digest r1) (Chaos.report_digest r2)

(* ---------- shrinker unit behavior (no fleet, pure) ---------- *)

let test_ddmin_pure () =
  (* failing = "contains both event A and event C": minimal is {A, C} *)
  let ev site = { Schedule.ev_site = site; ev_mode = Fault.Fail; ev_trigger = Schedule.Nth 1 } in
  let s =
    { Schedule.sc_seed = 5;
      sc_events = List.map ev [ "a"; "b"; "c"; "d"; "e"; "f" ] }
  in
  let failing (sc : Schedule.t) =
    let sites = List.map (fun e -> e.Schedule.ev_site) sc.Schedule.sc_events in
    List.mem "a" sites && List.mem "c" sites
  in
  let m = Shrink.minimize ~failing s in
  Alcotest.(check (list string)) "1-minimal pair" [ "a"; "c" ]
    (List.map (fun e -> e.Schedule.ev_site) m.Schedule.sc_events);
  (* single-event repro shrinks to itself *)
  let s1 = { Schedule.sc_seed = 5; sc_events = [ ev "x" ] } in
  let m1 = Shrink.minimize ~failing:(fun _ -> true) s1 in
  Alcotest.(check int) "singleton stays" 1 (List.length m1.Schedule.sc_events)

(* degenerate shrinker inputs: the contract is "the caller found a
   violating run; minimize only makes it smaller" — the empty, the
   singleton, and the already-1-minimal schedule must all come back
   unchanged, without calling [failing] more than ddmin needs *)
let test_ddmin_degenerate () =
  let ev site =
    { Schedule.ev_site = site; ev_mode = Fault.Fail; ev_trigger = Schedule.Nth 1 }
  in
  (* empty schedule: nothing to drop, no predicate call required *)
  let s0 = { Schedule.sc_seed = 9; sc_events = [] } in
  let calls = ref 0 in
  let m0 =
    Shrink.minimize ~failing:(fun _ -> incr calls; true) s0
  in
  Alcotest.(check int) "empty schedule stays empty" 0
    (List.length m0.Schedule.sc_events);
  Alcotest.(check int) "empty seed unchanged" 9 m0.Schedule.sc_seed;
  Alcotest.(check int) "empty schedule needs no runs" 0 !calls;
  (* single-fault schedule: comes back identical even when the predicate
     also fails on the (never-tried) empty subset *)
  let s1 = { Schedule.sc_seed = 10; sc_events = [ ev "criu.save" ] } in
  let m1 = Shrink.minimize ~failing:(fun _ -> true) s1 in
  Alcotest.(check bool) "singleton unchanged" true (m1 = s1);
  (* already-1-minimal: every event is load-bearing, so ddmin and the
     pruning pass must keep all of them in order *)
  let s3 =
    { Schedule.sc_seed = 11; sc_events = List.map ev [ "a"; "b"; "c" ] }
  in
  let failing (sc : Schedule.t) =
    List.length sc.Schedule.sc_events = 3
  in
  let m3 = Shrink.minimize ~failing s3 in
  Alcotest.(check (list string)) "1-minimal triple kept in order"
    [ "a"; "b"; "c" ]
    (List.map (fun e -> e.Schedule.ev_site) m3.Schedule.sc_events)

let suite =
  [
    Alcotest.test_case "schedule generation deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "replay file round-trip + rejects" `Quick
      test_replay_roundtrip;
    Alcotest.test_case "replay future version refused" `Quick
      test_replay_future_version_rejected;
    Alcotest.test_case "ddmin pure semantics" `Quick test_ddmin_pure;
    Alcotest.test_case "ddmin degenerate inputs" `Quick test_ddmin_degenerate;
    Alcotest.test_case "corrupt journal caught cleanly" `Slow
      test_corrupt_journal_clean;
    Alcotest.test_case "bitflip detected and healed" `Slow
      test_bitflip_detected_and_healed;
    Alcotest.test_case "enospc is a clean refusal" `Slow
      test_enospc_clean_refusal;
    Alcotest.test_case "broken invariant shrunk + replayed" `Slow
      test_shrink_to_minimal_and_replay;
  ]
