(** Observability subsystem tests: registry basics (labeled series,
    histogram readback), the percentile core, bounded event-ring
    eviction, and the determinism contract — the same seed and scenario
    must reproduce the unified event stream and the JSON dump
    byte-for-byte. *)

(* Every test owns the global registry for its duration: reset on entry,
   and restore the bits that survive reset (enabled flag, ring capacity)
   before returning. *)
let scrubbed f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled true;
      Obs.set_ring_capacity 1024;
      Obs.reset ())
    f

(* ---------- registry basics ---------- *)

let test_counters () =
  scrubbed @@ fun () ->
  let a = Obs.counter ~labels:[ ("pid", "1"); ("op", "cut") ] "c" in
  (* same series regardless of label order *)
  let a' = Obs.counter ~labels:[ ("op", "cut"); ("pid", "1") ] "c" in
  let b = Obs.counter ~labels:[ ("pid", "2"); ("op", "cut") ] "c" in
  Obs.incr a;
  Obs.add a' 4;
  Obs.incr b;
  Alcotest.(check int) "labels canonicalised" 5 (Obs.counter_value a);
  Alcotest.(check int) "distinct labels distinct series" 1 (Obs.counter_value b);
  let g = Obs.gauge "g" in
  Obs.set_gauge g 2.5;
  Alcotest.(check (float 1e-9)) "gauge" 2.5 (Obs.gauge_value g);
  (* disabled registry: writes are no-ops, readback still works *)
  Obs.set_enabled false;
  Obs.incr a;
  Obs.set_gauge g 9.;
  Alcotest.(check int) "disabled incr ignored" 5 (Obs.counter_value a);
  Alcotest.(check (float 1e-9)) "disabled set ignored" 2.5 (Obs.gauge_value g)

let test_histogram () =
  scrubbed @@ fun () ->
  let h = Obs.histogram ~buckets:[ 1.; 10.; 100. ] "h" in
  List.iter (Obs.observe h) [ 5.; 0.5; 50.; 500.; 7. ];
  Alcotest.(check int) "count" 5 (Obs.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 562.5 (Obs.hist_sum h);
  Alcotest.(check (list (float 1e-9)))
    "raw values keep arrival order"
    [ 5.; 0.5; 50.; 500.; 7. ]
    (Obs.hist_values h);
  Alcotest.(check (float 1e-9)) "p0 = min" 0.5 (Obs.hist_percentile h 0.);
  Alcotest.(check (float 1e-9)) "p50 exact" 7. (Obs.hist_percentile h 50.);
  Alcotest.(check (float 1e-9)) "p100 = max" 500. (Obs.hist_percentile h 100.)

let test_spans () =
  scrubbed @@ fun () ->
  Obs.register_span "idle";
  let v = Obs.with_span "work" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span passes result" 42 v;
  let v', dt = Obs.timed_span "work" (fun () -> "ok") in
  Alcotest.(check string) "timed_span passes result" "ok" v';
  Alcotest.(check bool) "timed_span measures" true (dt >= 0.);
  Alcotest.(check (list string))
    "registered + completed spans, sorted" [ "idle"; "work" ]
    (Obs.span_names ());
  Alcotest.(check int) "two completions" 2 (List.length (Obs.span_seconds "work"));
  Alcotest.(check int) "pre-registered, never hit" 0
    (List.length (Obs.span_cycles "idle"));
  (* a span records even when its body raises *)
  (try Obs.with_span "work" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "exceptional completion recorded" 3
    (List.length (Obs.span_cycles "work"))

(* ---------- event ring ---------- *)

let test_ring_eviction () =
  scrubbed @@ fun () ->
  Obs.set_ring_capacity 4;
  for i = 1 to 10 do
    Obs.event ~kind:"t" (Printf.sprintf "e%d" i)
  done;
  let evs = Obs.events () in
  Alcotest.(check int) "bounded at capacity" 4 (List.length evs);
  Alcotest.(check (list string))
    "oldest evicted first, order kept"
    [ "e7"; "e8"; "e9"; "e10" ]
    (List.map (fun e -> e.Obs.ev_detail) evs);
  Alcotest.(check (list int))
    "seq numbers never reused" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Obs.ev_seq) evs);
  Alcotest.(check int) "dropped count" 6 (Obs.ring_dropped ());
  (* shrinking evicts immediately *)
  Obs.set_ring_capacity 2;
  Alcotest.(check (list string))
    "shrink evicts oldest" [ "e9"; "e10" ]
    (List.map (fun e -> e.Obs.ev_detail) (Obs.events ()));
  Alcotest.(check int) "dropped counts shrink evictions" 8 (Obs.ring_dropped ())

(* ---------- determinism: guard scenario replays bit-for-bit ---------- *)

(** One guarded cut on the dispatch server with blocks chosen so wanted
    GET traffic storms the trap handler (the [Test_supervisor] storm),
    then a tick that trips the breaker — exercising every producer that
    feeds the unified stream: dynacut commits, journal appends, machine
    traps and supervisor decisions. *)
let guard_scenario () =
  Fault.reset ();
  Obs.reset ();
  let wanted = Test_core.trace_run [ "S"; "X"; "S" ] in
  let undesired = Test_core.trace_run [ "G"; "G" ] in
  let blocks =
    (Tracediff.feature_blocks ~wanted:[ wanted ] ~undesired:[ undesired ] ())
      .Tracediff.undesired
  in
  let m, p = Test_core.boot () in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  let config =
    {
      Supervisor.default_config with
      Supervisor.window = 5_000_000L;
      max_traps = 2;
      cooldown = 10_000_000L;
    }
  in
  let sup =
    Supervisor.create session ~config ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "err_path" }
  in
  (match Supervisor.guarded_cut sup ~canary:false ~drive:(fun () -> ()) () with
  | Supervisor.R_promoted -> ()
  | r -> Alcotest.failf "cut: %a" Supervisor.pp_rollout r);
  for _ = 1 to 3 do
    ignore (Test_core.request m "G")
  done;
  Supervisor.tick sup;
  (Obs.events (), Obs.dump_json ())

let test_guard_stream_replay () =
  scrubbed @@ fun () ->
  let evs1, dump1 = guard_scenario () in
  let evs2, dump2 = guard_scenario () in
  (* the unified stream carries every producer *)
  let kinds =
    List.sort_uniq compare (List.map (fun e -> e.Obs.ev_kind) evs1)
  in
  Alcotest.(check (list string))
    "all four producers present"
    [ "dynacut"; "journal"; "supervisor"; "trap" ]
    kinds;
  (* replay exactness: same seed, same scenario, same stream *)
  Alcotest.(check int) "same event count" (List.length evs1) (List.length evs2);
  List.iter2
    (fun a b ->
      Alcotest.(check int) "seq" a.Obs.ev_seq b.Obs.ev_seq;
      Alcotest.(check int64) "clock" a.Obs.ev_clock b.Obs.ev_clock;
      Alcotest.(check string) "kind" a.Obs.ev_kind b.Obs.ev_kind;
      Alcotest.(check string) "detail" a.Obs.ev_detail b.Obs.ev_detail)
    evs1 evs2;
  (* and the exposition is byte-identical *)
  Alcotest.(check string) "dump_json byte-identical" dump1 dump2;
  (* the host axis is the one intentionally unstable section: it must be
     absent unless asked for *)
  let has ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "default dump hides host axis" false
    (has ~needle:"spans_host_seconds" dump1);
  Alcotest.(check bool)
    "~host:true exposes it" true
    (has ~needle:"spans_host_seconds" (Obs.dump_json ~host:true ()))

(* percentiles with fewer than two samples: the degenerate cases the
   load generator hits when every request fails (or only one lands) *)
let test_percentile_degenerate () =
  Alcotest.(check (float 0.)) "empty list is 0" 0. (Obs.percentile_list 99. []);
  Alcotest.(check (float 0.)) "empty p50 is 0" 0. (Obs.percentile_list 50. []);
  Alcotest.(check (float 0.))
    "singleton is the sample at any percentile" 42.
    (Obs.percentile_list 99. [ 42. ]);
  Alcotest.(check (float 0.))
    "singleton p0 too" 42.
    (Obs.percentile_list 0. [ 42. ]);
  (* two samples interpolate between themselves *)
  Alcotest.(check (float 1e-9)) "pair p50 interpolates" 15.
    (Obs.percentile_list 50. [ 10.; 20. ]);
  Alcotest.(check (float 0.)) "pair p100 is the max" 20.
    (Obs.percentile_list 100. [ 10.; 20. ])

let suite =
  [
    Alcotest.test_case "counters, gauges, labels" `Quick test_counters;
    Alcotest.test_case "percentiles with <2 samples" `Quick
      test_percentile_degenerate;
    Alcotest.test_case "histogram readback" `Quick test_histogram;
    Alcotest.test_case "span recording" `Quick test_spans;
    Alcotest.test_case "ring bounded eviction" `Quick test_ring_eviction;
    Alcotest.test_case "guard stream replay + dump determinism" `Quick
      test_guard_stream_replay;
  ]
