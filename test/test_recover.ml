(** Crash-recovery tests (DESIGN.md §5d): kill the controller at every
    pipeline site mid-cut, run [Dynacut.recover] as a fresh controller,
    and check the §5d invariant — every pid fully cut XOR fully
    original, recovery idempotent, resurrected controllers fenced. *)

let boot = Test_core.boot
let request = Test_core.request
let feature_blocks = Test_core.feature_blocks

let redirect_policy =
  { Dynacut.method_ = `First_byte; on_trap = `Redirect "err_path" }

(* Byte-level digest of a pid's full state (memory, registers, vmas):
   the idempotency tests compare these across recovery passes. Freezes
   around the dump; faults are suppressed so an armed chaos spec cannot
   fire inside the observer. *)
let state_digest m pid =
  Fault.suppressed (fun () ->
      let was_frozen = (Machine.proc_exn m pid).Proc.frozen in
      Machine.freeze m ~pid;
      let img = Checkpoint.dump m ~pid () in
      if not was_frozen then Machine.thaw m ~pid;
      Digest.string (Images.encode img))

(* Boot the dispatch server, arm a kill-mode fault at [site], and run a
   cut that dies there. Returns the orphaned machine, the root pid, and
   the blocks of the attempted cut. *)
let crash_cut_at site =
  Fault.reset ();
  let blocks = feature_blocks () in
  let m, p = boot () in
  Fault.arm ~kill:true site Fault.One_shot;
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  (match Dynacut.try_cut session ~blocks ~policy:redirect_policy () with
  | (_ : Dynacut.cut_result) ->
      Alcotest.failf "controller survived kill at %s" site
  | exception Fault.Controller_killed { site = s } ->
      Alcotest.(check string) "died at the armed site" site s);
  (m, p.Proc.pid, blocks, session)

let check_serving m what =
  let g = request m "G" in
  Alcotest.(check bool) (what ^ ": GET answered") true
    (String.length g >= 4 && String.sub g 0 4 = "VAL=")

(* the cut never committed, so the feature must still work after
   recovery — and a fresh controller must be able to cut it cleanly *)
let check_original_then_recut m root_pid blocks =
  check_serving m "recovered";
  Alcotest.(check string) "feature intact (rolled back or untouched)" "SET-OK"
    (request m "S");
  let fresh = Dynacut.create m ~root_pid in
  let r = Dynacut.try_cut fresh ~blocks ~policy:redirect_policy () in
  (match r.Dynacut.r_outcome with
  | `Applied -> ()
  | o -> Alcotest.failf "clean re-cut failed: %a" Dynacut.pp_outcome o);
  Alcotest.(check string) "feature now cut" "ERR" (request m "S");
  check_serving m "after re-cut"

(* ---------- kill at every cut-pipeline site, then recover ---------- *)

(* expected recovery action per site, from the §5d decision table:
   before the lock there is nothing on storage; before Images_saved the
   tree was at most frozen; after it, uniform pristine rollback *)
let site_expectations =
  [
    ("journal.lock", [ `Nothing ]);
    ("journal.append", [ `Nothing; `Thawed ]);
    ("criu.checkpoint", [ `Thawed ]);
    ("criu.save", [ `Thawed ]);
    ("criu.load", [ `Rolled_back ]);
    ("rewrite.patch", [ `Rolled_back ]);
    ("inject.lib", [ `Rolled_back ]);
    ("inject.policy", [ `Rolled_back ]);
    ("restore.process", [ `Rolled_back ]);
  ]

let test_kill_at_site (site, expected) () =
  let m, root_pid, blocks, _dead = crash_cut_at site in
  let r = Dynacut.recover m ~root_pid in
  Alcotest.(check bool)
    (Format.asprintf "action for %s (%a)" site Dynacut.pp_recovery r)
    true
    (List.mem r.Dynacut.rec_action expected);
  check_original_then_recut m root_pid blocks

(* ---------- the resurrected controller is fenced ---------- *)

let test_fencing () =
  (* rewrite.patch: past Images_saved, but the tree is still alive (and
     frozen), so the competing controllers can actually reach the
     journal checks rather than dying on a missing pid *)
  let m, root_pid, blocks, dead = crash_cut_at "rewrite.patch" in
  (* before recovery, a fresh controller sees the open transaction *)
  let early = Dynacut.create m ~root_pid in
  (match Dynacut.try_cut early ~blocks ~policy:redirect_policy () with
  | (_ : Dynacut.cut_result) -> Alcotest.fail "cut through an open journal"
  | exception Journal.Busy { txid } ->
      Alcotest.(check bool) "busy names the open tx" true (txid > 0));
  let r = Dynacut.recover m ~root_pid in
  Alcotest.(check bool) "rolled back" true (r.Dynacut.rec_action = `Rolled_back);
  (* the dead controller wakes up and tries to keep going: fenced *)
  (match Dynacut.try_cut dead ~blocks ~policy:redirect_policy () with
  | (_ : Dynacut.cut_result) -> Alcotest.fail "zombie controller not fenced"
  | exception Journal.Fenced { epoch; lock_epoch } ->
      Alcotest.(check bool) "newer epoch owns the lock" true (lock_epoch > epoch));
  (* the tree itself is unharmed by the zombie's attempt *)
  check_original_then_recut m root_pid blocks

(* ---------- idempotency: recover twice == recover once ---------- *)

let test_recover_idempotent () =
  let m, root_pid, _blocks, _dead = crash_cut_at "restore.process" in
  let r1 = Dynacut.recover m ~root_pid in
  Alcotest.(check bool) "first pass rolls back" true
    (r1.Dynacut.rec_action = `Rolled_back);
  let d1 = state_digest m root_pid in
  let r2 = Dynacut.recover m ~root_pid in
  Alcotest.(check bool) "second pass finds nothing" true
    (r2.Dynacut.rec_action = `Nothing);
  Alcotest.(check string) "byte-identical state" d1 (state_digest m root_pid);
  let (_ : Dynacut.recovery) = Dynacut.recover m ~root_pid in
  Alcotest.(check string) "third pass still identical" d1
    (state_digest m root_pid);
  check_serving m "after repeated recovery"

(* crashing {e inside} recovery and re-running converges to the same
   state as a recovery that never crashed *)
let test_crash_during_recovery () =
  let m, root_pid, blocks, _dead = crash_cut_at "restore.process" in
  Fault.arm ~kill:true "recover.replay" Fault.One_shot;
  (match Dynacut.recover m ~root_pid with
  | (_ : Dynacut.recovery) -> Alcotest.fail "recovery survived its kill"
  | exception Fault.Controller_killed { site } ->
      Alcotest.(check string) "died replaying" "recover.replay" site);
  (* second recovery attempt completes the interrupted one *)
  let r = Dynacut.recover m ~root_pid in
  Alcotest.(check bool) "second attempt rolls back" true
    (r.Dynacut.rec_action = `Rolled_back);
  let d = state_digest m root_pid in
  let (_ : Dynacut.recovery) = Dynacut.recover m ~root_pid in
  Alcotest.(check string) "stable thereafter" d (state_digest m root_pid);
  check_original_then_recut m root_pid blocks

(* ---------- roll-forward: Commit on storage, cleanup lost ---------- *)

let test_roll_forward_completed () =
  Fault.reset ();
  let m, p = boot () in
  let pid = p.Proc.pid in
  (* simulate a controller that committed and died before cleanup: the
     pid is frozen mid-quiesce and the journal records a closed tx *)
  Machine.freeze m ~pid;
  let dir = Printf.sprintf "/tmpfs/dynacut-%d" pid in
  let j = Journal.attach m.Machine.fs ~dir in
  Journal.acquire j ~epoch:1;
  List.iter
    (Journal.append j ~epoch:1)
    [
      Journal.Begin { txid = 9; op = Journal.Cut; pids = [ pid ] };
      Journal.Frozen 9;
      Journal.Images_saved 9;
      Journal.Rewritten 9;
      Journal.Replaced { txid = 9; pid };
      Journal.Commit 9;
    ];
  let r = Dynacut.recover m ~root_pid:pid in
  Alcotest.(check bool) "completed" true (r.Dynacut.rec_action = `Completed);
  Alcotest.(check (list int)) "tx pids" [ pid ] r.Dynacut.rec_pids;
  Alcotest.(check bool) "thawed" false (Machine.proc_exn m pid).Proc.frozen;
  check_serving m "after roll-forward";
  let r2 = Dynacut.recover m ~root_pid:pid in
  Alcotest.(check bool) "then quiescent" true (r2.Dynacut.rec_action = `Nothing)

(* ---------- torn and corrupted journals ---------- *)

let journal_blob m root_pid =
  let path = Printf.sprintf "/tmpfs/dynacut-%d/journal" root_pid in
  match Vfs.find m.Machine.fs path with
  | Some b -> (path, b)
  | None -> Alcotest.fail "no journal on storage"

(* a crash mid-append tears the last frame; the valid prefix rules *)
let test_torn_tail () =
  let m, root_pid, blocks, _dead = crash_cut_at "restore.process" in
  let path, blob = journal_blob m root_pid in
  Vfs.add m.Machine.fs path (String.sub blob 0 (String.length blob - 7));
  let r = Dynacut.recover m ~root_pid in
  Alcotest.(check bool) "tear detected" true r.Dynacut.rec_torn;
  (* Images_saved survives in the prefix, so the answer is still a
     uniform pristine rollback *)
  Alcotest.(check bool) "rolled back from the prefix" true
    (r.Dynacut.rec_action = `Rolled_back);
  let d = state_digest m root_pid in
  let r2 = Dynacut.recover m ~root_pid in
  Alcotest.(check bool) "second pass quiescent" true
    (r2.Dynacut.rec_action = `Nothing);
  Alcotest.(check string) "idempotent on a torn journal" d
    (state_digest m root_pid);
  check_original_then_recut m root_pid blocks

(* flip a byte mid-file: everything from the damaged frame on is
   discarded; recovery still lands on a §5d-consistent state *)
let test_corrupt_mid_file () =
  let m, root_pid, blocks, _dead = crash_cut_at "restore.process" in
  let path, blob = journal_blob m root_pid in
  let b = Bytes.of_string blob in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xff));
  Vfs.add m.Machine.fs path (Bytes.to_string b);
  let r = Dynacut.recover m ~root_pid in
  Alcotest.(check bool) "corruption detected" true r.Dynacut.rec_torn;
  Alcotest.(check bool) "acted on the strongest completed record" true
    (List.mem r.Dynacut.rec_action [ `Thawed; `Rolled_back ]);
  let d = state_digest m root_pid in
  let (_ : Dynacut.recovery) = Dynacut.recover m ~root_pid in
  Alcotest.(check string) "stable" d (state_digest m root_pid);
  check_original_then_recut m root_pid blocks

(* truncating clean through frame boundaries steps the decision table
   down record by record; no cut point may crash the recovery pass *)
let test_every_truncation_point () =
  let m, root_pid, _blocks, _dead = crash_cut_at "restore.process" in
  let _path, blob = journal_blob m root_pid in
  let n = String.length blob in
  let step = max 1 (n / 23) in
  let cut_len = ref 0 in
  while !cut_len < n do
    let records, _torn =
      (* decode the prefix exactly as recovery would *)
      let m2, p2 = boot () in
      let dir = Printf.sprintf "/tmpfs/dynacut-%d" p2.Proc.pid in
      let j2 = Journal.attach m2.Machine.fs ~dir in
      Vfs.add m2.Machine.fs (dir ^ "/journal") (String.sub blob 0 !cut_len);
      Journal.read j2
    in
    (* the prefix is always a prefix of the full record sequence *)
    Alcotest.(check bool)
      (Printf.sprintf "prefix at %d decodes" !cut_len)
      true
      (List.length records <= 7);
    cut_len := !cut_len + step
  done;
  ignore m;
  ignore root_pid

(* ---------- supervisor respawns are journaled ---------- *)

let test_respawn_journaled () =
  Fault.reset ();
  let blocks = feature_blocks () in
  let m, p = boot () in
  let pid = p.Proc.pid in
  let session = Dynacut.create m ~root_pid:pid in
  (* a successful cut leaves working + pristine images in tmpfs *)
  let (_ : Rewriter.journal list * Dynacut.timings) =
    Dynacut.cut session ~blocks ~policy:redirect_policy
  in
  Alcotest.(check string) "cut live" "ERR" (request m "S");
  (* the worker dies; the controller is killed mid-respawn *)
  Machine.reap m ~pid;
  Fault.arm ~kill:true "restore.respawn" Fault.One_shot;
  (match
     Dynacut.journaled_respawn session ~pid
       ~path:(Dynacut.image_path session pid)
   with
  | (_ : Proc.t) -> Alcotest.fail "controller survived kill mid-respawn"
  | exception Fault.Controller_killed { site } ->
      Alcotest.(check string) "died respawning" "restore.respawn" site);
  Alcotest.(check bool) "worker is gone" true (Machine.proc m pid = None);
  (* recovery redoes the unmatched respawn intent *)
  let r = Dynacut.recover m ~root_pid:pid in
  Alcotest.(check (list int)) "respawn redone" [ pid ] r.Dynacut.rec_respawned;
  (* the respawned worker runs the rewritten image: still cut *)
  check_serving m "after respawn recovery";
  Alcotest.(check string) "feature still cut" "ERR" (request m "S")

(* a clean respawn leaves no journal residue behind *)
let test_respawn_clean_no_residue () =
  Fault.reset ();
  let blocks = feature_blocks () in
  let m, p = boot () in
  let pid = p.Proc.pid in
  let session = Dynacut.create m ~root_pid:pid in
  let (_ : Rewriter.journal list * Dynacut.timings) =
    Dynacut.cut session ~blocks ~policy:redirect_policy
  in
  Machine.reap m ~pid;
  let (_ : Proc.t) =
    Dynacut.journaled_respawn session ~pid
      ~path:(Dynacut.image_path session pid)
  in
  let r = Dynacut.recover m ~root_pid:pid in
  Alcotest.(check bool) "nothing to recover" true
    (r.Dynacut.rec_action = `Nothing);
  Alcotest.(check (list int)) "no respawn redone" [] r.Dynacut.rec_respawned

let suite =
  List.map
    (fun ((site, _) as se) ->
      Alcotest.test_case ("kill at " ^ site) `Quick (test_kill_at_site se))
    site_expectations
  @ [
      Alcotest.test_case "zombie controller fenced, busy before recovery"
        `Quick test_fencing;
      Alcotest.test_case "recovery is idempotent" `Quick test_recover_idempotent;
      Alcotest.test_case "crash during recovery" `Quick
        test_crash_during_recovery;
      Alcotest.test_case "roll-forward after commit" `Quick
        test_roll_forward_completed;
      Alcotest.test_case "torn journal tail" `Quick test_torn_tail;
      Alcotest.test_case "corrupted journal mid-file" `Quick
        test_corrupt_mid_file;
      Alcotest.test_case "every truncation point decodes" `Quick
        test_every_truncation_point;
      Alcotest.test_case "respawn journaled and redone" `Quick
        test_respawn_journaled;
      Alcotest.test_case "clean respawn leaves no residue" `Quick
        test_respawn_clean_no_residue;
    ]
