(** Property and analysis tests for the DynaCut core: coverage-graph
    algebra, rewrite reversibility, function bounds, gadget census, PLT
    liveness. *)

(* ---------- covgraph algebra ---------- *)

let gen_block =
  QCheck.Gen.(
    map3
      (fun m off size ->
        {
          Covgraph.b_module = (if m then "app" else "libc.so");
          b_off = off * 4;
          b_size = (size mod 32) + 1;
        })
      bool (int_range 0 512) small_nat)

let gen_blocks = QCheck.Gen.(list_size (int_range 0 60) gen_block)

let graph_of blocks =
  let g = Covgraph.create () in
  List.iter (Covgraph.add g) blocks;
  g

let arb_blocks =
  QCheck.make
    ~print:(fun bs ->
      String.concat ";"
        (List.map (fun (b : Covgraph.block) -> Printf.sprintf "%s+%x" b.Covgraph.b_module b.Covgraph.b_off) bs))
    gen_blocks

let prop_diff_soundness =
  QCheck.Test.make ~name:"diff a b contains nothing from b" ~count:300
    (QCheck.pair arb_blocks arb_blocks) (fun (xs, ys) ->
      let a = graph_of xs and b = graph_of ys in
      List.for_all (fun blk -> not (Covgraph.mem b blk)) (Covgraph.diff a b))

let prop_diff_completeness =
  QCheck.Test.make ~name:"diff a b + intersect a b covers a" ~count:300
    (QCheck.pair arb_blocks arb_blocks) (fun (xs, ys) ->
      let a = graph_of xs and b = graph_of ys in
      List.length (Covgraph.diff a b) + List.length (Covgraph.intersect a b)
      = Covgraph.cardinal a)

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative on membership" ~count:300
    (QCheck.pair arb_blocks arb_blocks) (fun (xs, ys) ->
      let ab = Covgraph.merge [ graph_of xs; graph_of ys ] in
      let ba = Covgraph.merge [ graph_of ys; graph_of xs ] in
      List.for_all (Covgraph.mem ba) (Covgraph.blocks ab)
      && List.for_all (Covgraph.mem ab) (Covgraph.blocks ba))

let prop_merge_idempotent =
  QCheck.Test.make ~name:"merge with self is identity" ~count:300 arb_blocks (fun xs ->
      let a = graph_of xs in
      Covgraph.cardinal (Covgraph.merge [ a; a ]) = Covgraph.cardinal a)

(* ---------- normalization ---------- *)

let test_normalize_splits_straddling_block () =
  let exe = Crt0.link_app ~libc:Test_machine.libc Test_core.dispatch_server in
  let cfg = Cfg.of_self exe in
  (* take two adjacent static blocks and pretend one dynamic block covered
     both (fall-through execution) *)
  let rec find_adjacent = function
    | (a : Cfg.block) :: b :: rest ->
        if a.Cfg.bb_off + a.Cfg.bb_size = b.Cfg.bb_off && a.Cfg.bb_size > 0 && b.Cfg.bb_size > 0
        then (a, b)
        else find_adjacent (b :: rest)
    | _ -> Alcotest.fail "no adjacent blocks"
  in
  let a, b = find_adjacent (Cfg.real_blocks cfg) in
  let g = Covgraph.create () in
  Covgraph.add g
    { Covgraph.b_module = "dsrv"; b_off = a.Cfg.bb_off; b_size = a.Cfg.bb_size + b.Cfg.bb_size };
  let n = Covgraph.normalize ~cfg_of:(fun m -> if m = "dsrv" then Some cfg else None) g in
  Alcotest.(check bool) "covers a" true (Covgraph.mem_off n ~module_:"dsrv" ~off:a.Cfg.bb_off);
  Alcotest.(check bool) "covers b" true (Covgraph.mem_off n ~module_:"dsrv" ~off:b.Cfg.bb_off)

let test_normalize_keeps_unknown_modules () =
  let g = Covgraph.create () in
  Covgraph.add g { Covgraph.b_module = "mystery"; b_off = 4; b_size = 8 };
  let n = Covgraph.normalize ~cfg_of:(fun _ -> None) g in
  Alcotest.(check int) "untouched" 1 (Covgraph.cardinal n)

(* ---------- rewriter reversibility ---------- *)

let checkpointed_dsrv () =
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" Test_machine.libc;
  Vfs.add_self m.Machine.fs "dsrv" (Crt0.link_app ~libc:Test_machine.libc Test_core.dispatch_server);
  let p = Machine.spawn m ~exe_path:"dsrv" () in
  let (_ : _) = Machine.run m ~max_cycles:2_000_000 in
  Machine.freeze m ~pid:p.Proc.pid;
  (m, Checkpoint.dump m ~pid:p.Proc.pid ())

let exe_blocks () =
  let exe = Crt0.link_app ~libc:Test_machine.libc Test_core.dispatch_server in
  let cfg = Cfg.of_self exe in
  List.filter_map
    (fun (b : Cfg.block) ->
      if b.Cfg.bb_size > 0 then
        Some { Covgraph.b_module = "dsrv"; b_off = b.Cfg.bb_off; b_size = b.Cfg.bb_size }
      else None)
    (Cfg.real_blocks cfg)

let prop_patch_restore_identity =
  QCheck.Test.make ~name:"disable+restore is byte-identical" ~count:25
    QCheck.(pair (int_range 0 1000) bool)
    (fun (seed, wipe) ->
      let _, img = checkpointed_dsrv () in
      let before = Images.encode img in
      let all = exe_blocks () in
      let rng = Rng.create seed in
      let victims = List.filter (fun _ -> Rng.bool rng) all in
      let patches =
        if wipe then Rewriter.wipe_blocks img victims
        else Rewriter.disable_first_byte img victims
      in
      (* patched image differs iff we patched something *)
      let mid = Images.encode img in
      (victims = [] || mid <> before)
      &&
      (Rewriter.restore_bytes img patches;
       Images.encode img = before))

let test_unmap_remap_preserves_content () =
  let _, img = checkpointed_dsrv () in
  (* pick all blocks of one full page of .text *)
  let text_base = 0x401000L in
  let before = try Some (Images.read_mem img text_base 4096) with Not_found -> None in
  match before with
  | None -> Alcotest.fail "text page not dumped"
  | Some before ->
      let blocks =
        [ { Covgraph.b_module = "dsrv"; b_off = 0x1000; b_size = 4096 } ]
      in
      let patches, img' = Rewriter.unmap_block_pages img blocks in
      Alcotest.(check bool) "unmapped" true
        (match Images.read_mem img' text_base 1 with
        | _ -> false
        | exception Not_found -> true);
      Alcotest.(check bool) "vma removed" true (Images.find_vma img' text_base = None);
      let img'' = Rewriter.remap img' patches in
      let after = Images.read_mem img'' text_base 4096 in
      Alcotest.(check bool) "content restored" true (Bytes.equal before after)

(* ---------- failure paths ---------- *)

let test_restore_rejects_live_pid () =
  let m, p = Test_core.boot () in
  Machine.freeze m ~pid:p.Proc.pid;
  let img = Checkpoint.dump m ~pid:p.Proc.pid () in
  Machine.thaw m ~pid:p.Proc.pid;
  (* restoring over a live pid must refuse, not create a twin process *)
  Alcotest.check_raises "live pid refused"
    (Restore.Restore_error (Printf.sprintf "pid %d still alive" p.Proc.pid))
    (fun () -> ignore (Restore.restore m img))

let test_cut_unknown_module_rolls_back () =
  let m, p = Test_core.boot () in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  let bogus = [ { Covgraph.b_module = "not-mapped.so"; b_off = 0; b_size = 4 } ] in
  let policy = { Dynacut.method_ = `First_byte; on_trap = `Kill } in
  let r = Dynacut.try_cut session ~blocks:bogus ~policy () in
  (match r.Dynacut.r_outcome with
  | `Rolled_back rb ->
      Alcotest.(check string) "failed in rewrite" "rewrite" rb.Dynacut.rb_stage
  | `Applied | `Degraded -> Alcotest.fail "expected rollback");
  Alcotest.(check string) "still serving" "VAL=7" (Test_core.request m "G");
  (* the raising wrapper surfaces the same rollback as Dynacut_error *)
  Alcotest.(check bool) "cut raises" true
    (match Dynacut.cut session ~blocks:bogus ~policy with
    | _ -> false
    | exception Dynacut.Dynacut_error _ -> true);
  Alcotest.(check string) "serving after raise" "VAL=7" (Test_core.request m "G")

let prop_cut_reenable_image_roundtrip =
  QCheck.Test.make ~name:"cut+reenable leaves byte-identical dump" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let m, p = Test_core.boot () in
      let pid = p.Proc.pid in
      Machine.freeze m ~pid;
      let e0 = Images.encode (Checkpoint.dump m ~pid ()) in
      Machine.thaw m ~pid;
      let rng = Rng.create seed in
      let victims = List.filter (fun _ -> Rng.bool rng) (exe_blocks ()) in
      let session = Dynacut.create m ~root_pid:pid in
      let journals, _ =
        Dynacut.cut session ~blocks:victims
          ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Kill }
      in
      let (_ : Dynacut.timings) = Dynacut.reenable session journals in
      (* restore leaves the process runnable (syscall restart); let it
         re-enter the blocked accept it was dumped in *)
      (match Machine.run m ~max_cycles:2_000_000 with
      | `Idle -> ()
      | _ -> QCheck.Test.fail_report "server did not settle after reenable");
      Machine.freeze m ~pid;
      let e1 = Images.encode (Checkpoint.dump m ~pid ()) in
      Machine.thaw m ~pid;
      String.equal e0 e1)

(* ---------- funcbounds ---------- *)

let test_funcbounds_groups_labels () =
  let exe = Crt0.link_app ~libc:Test_machine.libc Test_core.dispatch_server in
  let bounds = Funcbounds.of_self exe in
  let sym n = (Option.get (Self.find_symbol exe n)).Self.sym_off in
  Alcotest.(check bool) "feat_set with err_path (same fn)" true
    (Funcbounds.same_function bounds (sym "feat_set") (sym "err_path"));
  Alcotest.(check bool) "do_set separate from handle" false
    (Funcbounds.same_function bounds (sym "do_set") (sym "err_path"));
  Alcotest.(check bool) "main separate" false
    (Funcbounds.same_function bounds (sym "main") (sym "err_path"))

(* ---------- gadget census ---------- *)

let test_gadget_census_drops_after_wipe () =
  let _, img = checkpointed_dsrv () in
  let before = Gadget.of_image img in
  Alcotest.(check bool) "some gadgets" true (before.Gadget.g_gadgets > 0);
  let (_ : Rewriter.patch list) = Rewriter.wipe_blocks img (exe_blocks ()) in
  let after = Gadget.of_image img in
  Alcotest.(check bool) "fewer gadgets" true
    (after.Gadget.g_gadgets < before.Gadget.g_gadgets)

let test_gadget_scan_trap_region () =
  let g, s = Gadget.scan_bytes (Bytes.make 256 '\xCC') in
  Alcotest.(check int) "no gadgets in wiped region" 0 g;
  Alcotest.(check int) "no syscall gadgets" 0 s

let test_gadget_scan_counts_ret_suffixes () =
  (* mov;add;ret: offsets that decode to a ret-terminated run *)
  let bytes = Encode.program [ Insn.Mov_rr (Reg.Rax, Reg.Rcx); Insn.Add_rr (Reg.Rax, Reg.Rcx); Insn.Ret ] in
  let g, _ = Gadget.scan_bytes bytes in
  Alcotest.(check bool) "at least 3" true (g >= 3)

(* ---------- PLT liveness ---------- *)

let test_pltlive_classification () =
  let exe = Crt0.link_app ~libc:Test_machine.libc Test_core.dispatch_server in
  let stub name = List.assoc name exe.Self.plt in
  let mk offs =
    let g = Covgraph.create () in
    List.iter
      (fun o -> Covgraph.add g { Covgraph.b_module = "dsrv"; b_off = o; b_size = 2 })
      offs;
    g
  in
  (* socket used only during init; send used in both; accept serving-only *)
  let init = mk [ stub "socket"; stub "send" ] in
  let serving = mk [ stub "send"; stub "accept" ] in
  let r = Pltlive.analyse exe ~init ~serving in
  let find n = List.find (fun (e : Pltlive.plt_entry) -> e.Pltlive.pe_name = n) r.Pltlive.pr_entries in
  Alcotest.(check bool) "socket init-only" true (find "socket").Pltlive.pe_init_only;
  Alcotest.(check bool) "send not removable" false (find "send").Pltlive.pe_init_only;
  Alcotest.(check bool) "accept executed" true (find "accept").Pltlive.pe_executed;
  Alcotest.(check bool) "send survives" true (Pltlive.survives r "send")

let suite =
  [
    QCheck_alcotest.to_alcotest prop_diff_soundness;
    QCheck_alcotest.to_alcotest prop_diff_completeness;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_merge_idempotent;
    Alcotest.test_case "normalize splits straddling blocks" `Quick
      test_normalize_splits_straddling_block;
    Alcotest.test_case "normalize keeps unknown modules" `Quick
      test_normalize_keeps_unknown_modules;
    QCheck_alcotest.to_alcotest prop_patch_restore_identity;
    Alcotest.test_case "unmap/remap roundtrip" `Quick test_unmap_remap_preserves_content;
    Alcotest.test_case "restore rejects live pid" `Quick test_restore_rejects_live_pid;
    Alcotest.test_case "cut of unmapped module rolls back" `Quick
      test_cut_unknown_module_rolls_back;
    QCheck_alcotest.to_alcotest prop_cut_reenable_image_roundtrip;
    Alcotest.test_case "funcbounds label grouping" `Quick test_funcbounds_groups_labels;
    Alcotest.test_case "gadget census drops after wipe" `Quick test_gadget_census_drops_after_wipe;
    Alcotest.test_case "gadget scan of wiped region" `Quick test_gadget_scan_trap_region;
    Alcotest.test_case "gadget suffixes counted" `Quick test_gadget_scan_counts_ret_suffixes;
    Alcotest.test_case "PLT liveness classification" `Quick test_pltlive_classification;
  ]
