(** Decoded-block code cache tests: replay-exactness against the
    single-step interpreter (step/trap/syscall counters, replies, drcov
    byte-identity), nudge-precise invalidation across all three rewrite
    strategies, self-modifying-page eviction, post-[Fleet.recover] cache
    coldness, slicer interpreter-fallback, and two-run determinism of
    the observability dump with the cache enabled. *)

let get = "GET /index.html HTTP/1.0\r\n\r\n"

let lpolicy = { Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }

(* ---------- cross-mode pinning: same seed, same counters ---------- *)

(* Boot [app], cut its undesired feature, drive a wanted/undesired mix;
   returns the replies plus the Obs step/trap/syscall totals and the
   final virtual clock. The cache is enabled before the first
   instruction, so decode, init, cut, trap-handler and serving paths all
   run cached. *)
let drive_cut ~cached app reqs ~blocks ~policy =
  Obs.reset ();
  Fault.reset ();
  let c = Workload.spawn app in
  let bb = if cached then Some (Bbcache.enable c.Workload.m) else None in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let (_ : Rewriter.journal list * Dynacut.timings) =
    Dynacut.cut session ~blocks ~policy
  in
  let replies = List.map (fun r -> Workload.rpc c r) reqs in
  let v n = Obs.counter_value (Obs.counter n) in
  let out =
    ( replies,
      v "machine.steps",
      v "machine.traps",
      v "machine.syscalls",
      c.Workload.m.Machine.clock )
  in
  (match bb with Some b -> Bbcache.disable b | None -> ());
  out

let test_pinning_ltpd () =
  let reqs = Workload.web_wanted @ Workload.web_undesired @ [ get ] in
  let blocks = Common.web_feature_blocks Workload.ltpd in
  let ri, si, ti, yi, cki = drive_cut ~cached:false Workload.ltpd reqs ~blocks ~policy:lpolicy in
  let rc, sc, tc, yc, ckc = drive_cut ~cached:true Workload.ltpd reqs ~blocks ~policy:lpolicy in
  Alcotest.(check (list string)) "replies identical" ri rc;
  Alcotest.(check int) "obs steps identical" si sc;
  Alcotest.(check int) "obs traps identical" ti tc;
  Alcotest.(check int) "obs syscalls identical" yi yc;
  Alcotest.(check bool) "undesired requests really trapped" true (ti > 0);
  Alcotest.(check bool) "cached run spends fewer virtual cycles" true
    (Int64.compare ckc cki < 0)

(* rkv pins the same invariants without a cut (pure serving path) *)
let drive_plain ~cached app reqs =
  Obs.reset ();
  Fault.reset ();
  let c = Workload.spawn app in
  let bb = if cached then Some (Bbcache.enable c.Workload.m) else None in
  Workload.wait_ready c;
  let replies = List.map (fun r -> Workload.rpc c r) reqs in
  let v n = Obs.counter_value (Obs.counter n) in
  let out = (replies, v "machine.steps", v "machine.syscalls") in
  (match bb with Some b -> Bbcache.disable b | None -> ());
  out

let test_pinning_rkv () =
  let reqs = Workload.kv_wanted @ Workload.kv_undesired in
  let ri, si, yi = drive_plain ~cached:false Workload.rkv reqs in
  let rc, sc, yc = drive_plain ~cached:true Workload.rkv reqs in
  Alcotest.(check (list string)) "replies identical" ri rc;
  Alcotest.(check int) "obs steps identical" si sc;
  Alcotest.(check int) "obs syscalls identical" yi yc

(* ---------- drcov byte-identity (the tracer as cache stubs) ---------- *)

let drcov_run ~cached app reqs =
  Obs.reset ();
  Fault.reset ();
  let c = Workload.spawn ~traced:true app in
  let bb = if cached then Some (Bbcache.enable c.Workload.m) else None in
  Workload.wait_ready c;
  List.iter (fun r -> ignore (Workload.rpc c r)) reqs;
  let log = Collector.detach (Workload.collector c) in
  (match bb with Some b -> Bbcache.disable b | None -> ());
  Drcov.to_string log

let test_drcov_identity_ltpd () =
  let reqs = Workload.web_wanted @ Workload.web_undesired in
  Alcotest.(check string) "ltpd drcov byte-identical"
    (drcov_run ~cached:false Workload.ltpd reqs)
    (drcov_run ~cached:true Workload.ltpd reqs)

let test_drcov_identity_rkv () =
  let reqs = Workload.kv_wanted @ Workload.kv_undesired in
  Alcotest.(check string) "rkv drcov byte-identical"
    (drcov_run ~cached:false Workload.rkv reqs)
    (drcov_run ~cached:true Workload.rkv reqs)

(* ---------- invalidation: cut -> flush -> re-enable -> re-decode ---------- *)

(* One full roundtrip on the dispatcher server under cached execution:
   warm the cache, cut (checkpoint/rewrite/restore builds a fresh
   process, so the cache must read cold), serve against the rewritten
   text, re-enable, and prove the post-cut traffic re-decoded rather
   than reusing any pre-cut block. *)
let roundtrip method_ ~probe_cut () =
  Fault.reset ();
  let m, p = Test_core.boot () in
  let pid = p.Proc.pid in
  let bb = Bbcache.enable m in
  Alcotest.(check string) "pre-cut S" "SET-OK" (Test_core.request m "S");
  Alcotest.(check bool) "cache warm" true (Bbcache.cached_blocks bb ~pid > 0);
  let decodes_warm = (Bbcache.stats bb).Bbcache.st_decodes in
  let session = Dynacut.create m ~root_pid:pid in
  let policy = { Dynacut.method_; on_trap = `Redirect "err_path" } in
  let journals, (_ : Dynacut.timings) =
    Dynacut.cut session ~blocks:(Test_core.feature_blocks ()) ~policy
  in
  Alcotest.(check int) "cache cold after restore-from-image" 0
    (Bbcache.cached_blocks bb ~pid);
  (* wanted path serves from re-decoded blocks of the rewritten text *)
  Alcotest.(check string) "wanted intact" "VAL=8" (Test_core.request m "G");
  if probe_cut then
    Alcotest.(check string) "feature blocked" "ERR" (Test_core.request m "S");
  Alcotest.(check bool) "post-cut traffic re-decoded" true
    ((Bbcache.stats bb).Bbcache.st_decodes > decodes_warm);
  let decodes_cut = (Bbcache.stats bb).Bbcache.st_decodes in
  (* re-enable restores the original bytes through another
     checkpoint/restore: cold again, then re-decode *)
  let (_ : Dynacut.timings) = Dynacut.reenable session journals in
  Alcotest.(check int) "cache cold after re-enable" 0
    (Bbcache.cached_blocks bb ~pid);
  Alcotest.(check string) "feature restored" "SET-OK" (Test_core.request m "S");
  Alcotest.(check bool) "post-reenable traffic re-decoded" true
    ((Bbcache.stats bb).Bbcache.st_decodes > decodes_cut);
  Bbcache.disable bb

(* `Unmap_pages keeps on_trap = `Kill (its only supported action), so the
   undesired probe would kill the server — skip it and roundtrip the
   wanted path only *)
let test_roundtrip_first_byte () = roundtrip `First_byte ~probe_cut:true ()
let test_roundtrip_wipe () = roundtrip `Wipe ~probe_cut:true ()

let test_roundtrip_unmap () =
  Fault.reset ();
  let m, p = Test_core.boot () in
  let pid = p.Proc.pid in
  let bb = Bbcache.enable m in
  Alcotest.(check string) "pre-cut S" "SET-OK" (Test_core.request m "S");
  Alcotest.(check bool) "cache warm" true (Bbcache.cached_blocks bb ~pid > 0);
  let session = Dynacut.create m ~root_pid:pid in
  let journals, (_ : Dynacut.timings) =
    Dynacut.cut session
      ~blocks:(Test_core.feature_blocks ())
      ~policy:{ Dynacut.method_ = `Unmap_pages; on_trap = `Kill }
  in
  Alcotest.(check int) "cache cold after restore-from-image" 0
    (Bbcache.cached_blocks bb ~pid);
  Alcotest.(check string) "wanted intact over unmapped pages" "VAL=8"
    (Test_core.request m "G");
  let (_ : Dynacut.timings) = Dynacut.reenable session journals in
  Alcotest.(check int) "cache cold after re-enable" 0
    (Bbcache.cached_blocks bb ~pid);
  Alcotest.(check string) "feature restored" "SET-OK" (Test_core.request m "S");
  Bbcache.disable bb

(* ---------- self-modifying page: live patch evicts, never stale ---------- *)

let test_self_modifying_eviction () =
  Fault.reset ();
  let m, p = Test_core.boot () in
  let pid = p.Proc.pid in
  let bb = Bbcache.enable m in
  Alcotest.(check string) "warm" "SET-OK" (Test_core.request m "S");
  (* live first-byte int3, no checkpoint/restore cycle: the dirtied page
     must evict the cached do_set block before the next dispatch. A
     stale block would answer SET-OK; the re-decoded int3 (no verifier
     handler installed) must kill the server instead. *)
  let exe = Option.get (Vfs.find_self m.Machine.fs "dsrv") in
  let feat = Option.get (Self.find_symbol exe "feat_set") in
  let addr = Int64.add exe.Self.base (Int64.of_int feat.Self.sym_off) in
  Mem.poke8 (Machine.proc_exn m pid).Proc.mem addr 0xCC;
  let (_ : string) = Test_core.request m "S" in
  Alcotest.(check bool) "trap killed the worker (no stale block ran)" false
    (Proc.is_live (Machine.proc_exn m pid));
  Alcotest.(check bool) "eviction really happened" true
    ((Bbcache.stats bb).Bbcache.st_flushes > 0);
  Bbcache.disable bb

(* ---------- post-Fleet.recover coldness ---------- *)

let test_fleet_recover_coldness () =
  Fault.reset ();
  Obs.reset ();
  let ctxs = Workload.spawn_fleet ~n:2 Workload.ltpd in
  Workload.wait_fleet_ready ctxs;
  let m = (List.hd ctxs).Workload.m in
  let pids = List.map (fun c -> c.Workload.pid) ctxs in
  let fleet =
    Fleet.create m ~port:Ltpd.port ~pids
      ~blocks:(Common.web_feature_blocks Workload.ltpd)
      ~policy:lpolicy
  in
  let bb = Bbcache.enable m in
  for _ = 1 to 4 do
    ignore (Fleet.request fleet get)
  done;
  List.iter
    (fun pid ->
      Alcotest.(check bool) "every worker warm" true
        (Bbcache.cached_blocks bb ~pid > 0))
    pids;
  (* controller dies mid-restore during wave 1 of a rollout; recovery
     rolls the half-cut worker back from its pristine image — a fresh
     process whose cache must read cold *)
  Fault.arm ~kill:true "restore.process" Fault.One_shot;
  let config =
    Rollout.
      {
        r_waves = 2;
        r_sup = { Supervisor.default_config with Supervisor.canary_windows = 1 };
      }
  in
  let drive () = ignore (Fleet.request fleet get) in
  (match Fleet.rollout fleet ~config ~drive () with
  | (_ : Rollout.outcome * Rollout.wave_report list) ->
      Alcotest.fail "controller survived its mid-restore death"
  | exception Fault.Controller_killed _ -> ());
  let r = Fleet.recover m ~pids in
  let rolled =
    List.filter_map
      (fun (pid, a) -> if a = `Rolled_back then Some pid else None)
      r.Fleet.fr_workers
  in
  Alcotest.(check bool) "a worker was respawned from image" true (rolled <> []);
  List.iter
    (fun pid ->
      Alcotest.(check int) "no stale block survives respawn-from-image" 0
        (Bbcache.cached_blocks bb ~pid))
    rolled;
  for _ = 1 to 4 do
    ignore (Fleet.request fleet get)
  done;
  List.iter
    (fun pid ->
      Alcotest.(check bool) "respawned worker re-decoded and serves" true
        (Bbcache.cached_blocks bb ~pid > 0))
    rolled;
  Bbcache.disable bb

(* ---------- slicer forces interpreter fallback ---------- *)

let test_slicer_fallback () =
  let slice_run ~cached =
    Obs.reset ();
    Fault.reset ();
    let c = Workload.spawn Workload.ltpd in
    let bb = if cached then Some (Bbcache.enable c.Workload.m) else None in
    Workload.wait_ready c;
    let hits0 =
      match bb with Some b -> (Bbcache.stats b).Bbcache.st_hits | None -> 0
    in
    let sl =
      Slicer.attach c.Workload.m ~pid:c.Workload.pid
        ~wanted_out:(Slicelab.wanted_out_of Workload.ltpd) ()
    in
    ignore (Workload.rpc c get);
    Slicer.detach sl;
    let s = Slicer.slice sl in
    let hits_during =
      match bb with
      | Some b -> (Bbcache.stats b).Bbcache.st_hits - hits0
      | None -> 0
    in
    (match bb with Some b -> Bbcache.disable b | None -> ());
    (s, hits_during)
  in
  let si, _ = slice_run ~cached:false in
  let sc, hits = slice_run ~cached:true in
  Alcotest.(check bool) "slice non-empty" true (si <> []);
  Alcotest.(check bool) "identical slices with cache enabled" true (si = sc);
  Alcotest.(check int) "on_insn hook forced the interpreter (0 cache hits)"
    0 hits

(* ---------- two-run determinism of the dump, cache enabled ---------- *)

let test_cached_dump_deterministic () =
  let run () =
    Obs.reset ();
    Fault.reset ();
    let c = Workload.spawn Workload.ltpd in
    let bb = Bbcache.enable c.Workload.m in
    Workload.wait_ready c;
    List.iter
      (fun r -> ignore (Workload.rpc c r))
      (Workload.web_wanted @ Workload.web_undesired);
    let d = Obs.dump_json () in
    Bbcache.disable bb;
    d
  in
  Alcotest.(check string) "byte-identical dumps" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "pinning: ltpd cut, cached = interpreted" `Quick
      test_pinning_ltpd;
    Alcotest.test_case "pinning: rkv, cached = interpreted" `Quick
      test_pinning_rkv;
    Alcotest.test_case "drcov byte-identity: ltpd" `Quick
      test_drcov_identity_ltpd;
    Alcotest.test_case "drcov byte-identity: rkv" `Quick test_drcov_identity_rkv;
    Alcotest.test_case "roundtrip: first-byte cut" `Quick
      test_roundtrip_first_byte;
    Alcotest.test_case "roundtrip: wipe cut" `Quick test_roundtrip_wipe;
    Alcotest.test_case "roundtrip: unmap cut" `Quick test_roundtrip_unmap;
    Alcotest.test_case "self-modifying page evicts" `Quick
      test_self_modifying_eviction;
    Alcotest.test_case "post-Fleet.recover coldness" `Quick
      test_fleet_recover_coldness;
    Alcotest.test_case "slicer forces interpreter fallback" `Quick
      test_slicer_fallback;
    Alcotest.test_case "cached dump is deterministic" `Quick
      test_cached_dump_deterministic;
  ]
