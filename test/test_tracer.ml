(** Tests for the drcov format and the coverage collector. *)

open Dsl

let libc = Test_machine.libc

(* ---------- drcov format ---------- *)

let sample_log =
  {
    Drcov.modules =
      [
        { Drcov.mi_id = 0; mi_name = "app"; mi_base = 0x400000L; mi_end = 0x420000L };
        { Drcov.mi_id = 1; mi_name = "libc.so"; mi_base = 0x7f0000000000L; mi_end = 0x7f0000020000L };
      ];
    bbs =
      [
        { Drcov.bb_mod = 0; bb_off = 0x100; bb_size = 12; bb_seq = 0 };
        { Drcov.bb_mod = 1; bb_off = 0x40; bb_size = 3; bb_seq = 1 };
        { Drcov.bb_mod = 0; bb_off = 0x200; bb_size = 30; bb_seq = 2 };
      ];
  }

let test_drcov_roundtrip () =
  let s = Drcov.to_string sample_log in
  let l = Drcov.of_string s in
  Alcotest.(check int) "modules" 2 (List.length l.Drcov.modules);
  Alcotest.(check int) "bbs" 3 (List.length l.Drcov.bbs);
  Alcotest.(check string) "stable" s (Drcov.to_string l)

let prop_drcov_roundtrip =
  let gen =
    QCheck.Gen.(
      let* nmod = int_range 1 4 in
      let modules =
        List.init nmod (fun k ->
            {
              Drcov.mi_id = k;
              mi_name = Printf.sprintf "m%d" k;
              mi_base = Int64.of_int (k * 0x100000);
              mi_end = Int64.of_int ((k * 0x100000) + 0x10000);
            })
      in
      let* bbs =
        list_size (int_range 0 50)
          (map3
             (fun m off size -> (m mod nmod, off, (size mod 100) + 1))
             (int_range 0 10) (int_range 0 0xffff) small_nat)
      in
      let bbs = List.mapi (fun i (m, off, size) -> { Drcov.bb_mod = m; bb_off = off; bb_size = size; bb_seq = i }) bbs in
      return { Drcov.modules; bbs })
  in
  QCheck.Test.make ~name:"drcov to/of_string roundtrip" ~count:200 (QCheck.make gen)
    (fun log -> Drcov.of_string (Drcov.to_string log) = log)

let test_drcov_covered_bytes () =
  Alcotest.(check int) "sum" 45 (Drcov.covered_bytes sample_log)

(* ---------- collector ---------- *)

let counter_app =
  unit_ "cnt"
    [
      func "tick" [ "n" ] [ ret (v "n" +: i 1) ];
      func "main" []
        [
          decl "k" (i 0);
          while_ (v "k" <: i 5) [ set "k" (call "tick" [ v "k" ]) ];
          ret0;
        ];
    ]

let boot_traced u =
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs u.Ast.cu_name (Crt0.link_app ~libc u);
  let p = Machine.spawn m ~exe_path:u.Ast.cu_name () in
  let col = Collector.attach m ~pid:p.Proc.pid in
  (m, p, col)

let test_collector_dedup () =
  let m, _, col = boot_traced counter_app in
  let (_ : _) = Machine.run m ~max_cycles:100_000 in
  let log = Collector.detach col in
  (* the loop runs 5 times but its blocks appear once *)
  let keys = List.map (fun (b : Drcov.bb) -> (b.Drcov.bb_mod, b.Drcov.bb_off)) log.Drcov.bbs in
  Alcotest.(check bool) "unique" true (List.sort_uniq compare keys = List.sort compare keys);
  Alcotest.(check bool) "some blocks" true (List.length keys > 3)

let test_collector_module_attribution () =
  let m, _, col = boot_traced Test_core.dispatch_server in
  let (_ : _) = Machine.run m ~max_cycles:2_000_000 in
  let c = Net.connect m.Machine.net 9200 in
  Net.client_send c "G";
  let (_ : _) = Machine.run m ~max_cycles:2_000_000 in
  let log = Collector.detach col in
  let mods =
    List.sort_uniq compare
      (List.filter_map (fun (b : Drcov.bb) ->
           Option.map (fun m -> m.Drcov.mi_name) (Drcov.module_of_bb log b))
         log.Drcov.bbs)
  in
  Alcotest.(check (list string)) "both modules traced" [ "dsrv"; "libc.so" ] mods

let test_collector_nudge_resets () =
  let m, _, col = boot_traced counter_app in
  let (_ : _) = Machine.run m ~max_cycles:1_000 in
  let first = Collector.nudge col in
  Alcotest.(check bool) "init coverage nonempty" true (Drcov.bb_count first > 0);
  (* nothing ran since the nudge *)
  let second = Collector.detach col in
  Alcotest.(check bool) "cleared" true
    (Drcov.bb_count second <= Drcov.bb_count first);
  Alcotest.(check int) "dump recorded" 1 (List.length (Collector.dumps col))

let test_collector_follows_fork () =
  let forker =
    unit_ "fk2"
      [
        func "child_work" [] [ decl "x" (i 2 *: i 21); ret (v "x") ];
        func "main" []
          [
            decl "pid" (call "fork" []);
            when_ (v "pid" ==: i 0) [ ret (call "child_work" []) ];
            ret0;
          ];
      ]
  in
  let m, _, col = boot_traced forker in
  let (_ : _) = Machine.run m ~max_cycles:100_000 in
  let log = Collector.detach col in
  let exe = Crt0.link_app ~libc forker in
  let cw = Option.get (Self.find_symbol exe "child_work") in
  Alcotest.(check bool) "child-only code traced" true
    (List.exists (fun (b : Drcov.bb) -> b.Drcov.bb_off = cw.Self.sym_off) log.Drcov.bbs)

let test_covgraph_of_log () =
  let g = Covgraph.of_log sample_log in
  Alcotest.(check int) "cardinality" 3 (Covgraph.cardinal g);
  Alcotest.(check bool) "member" true (Covgraph.mem_off g ~module_:"app" ~off:0x100);
  Alcotest.(check bool) "nonmember" false (Covgraph.mem_off g ~module_:"app" ~off:0x101)

(* ---------- malformed logs (Drcov_malformed) ---------- *)

(* every malformed input must surface as the typed exception — never a
   bare Failure from int_of_string or an out-of-bounds crash *)
let check_malformed name ?line s =
  match Drcov.of_string s with
  | (_ : Drcov.log) -> Alcotest.failf "%s: parsed a malformed log" name
  | exception Drcov.Drcov_malformed { offset; reason } -> (
      Alcotest.(check bool) (name ^ ": reason") true (String.length reason > 0);
      match line with
      | None -> ()
      | Some l -> Alcotest.(check int) (name ^ ": offset") l offset)
  | exception e ->
      Alcotest.failf "%s: expected Drcov_malformed, got %s" name
        (Printexc.to_string e)

let sample_text = Drcov.to_string sample_log

(* keep the first [n] lines of the canonical sample (its layout: 2 header
   lines, module-table header + columns, 2 modules, bb header + columns,
   3 bbs) *)
let first_lines n =
  String.split_on_char '\n' sample_text
  |> List.filteri (fun i _ -> i < n)
  |> String.concat "\n"

let replace_line s ~line ~with_ =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> if i + 1 = line then with_ else l)
  |> String.concat "\n"

let test_drcov_malformed () =
  check_malformed "empty" "";
  (* truncated header: file ends before the module table appears *)
  check_malformed "truncated header" ~line:3 (first_lines 2);
  (* module table announced but cut short *)
  check_malformed "truncated module table" ~line:6 (first_lines 5);
  (* short tuple: a module line missing its path field *)
  check_malformed "short module tuple" ~line:5
    (replace_line sample_text ~line:5 ~with_:"  0, 0x400000, 0x420000");
  (* short tuple: a bb line missing its seq field *)
  check_malformed "short bb tuple" ~line:9
    (replace_line sample_text ~line:9 ~with_:"  0, 0x100, 12");
  (* bit-flipped numeric field *)
  check_malformed "garbled number" ~line:10
    (replace_line sample_text ~line:10 ~with_:"  1, 0xZZ, 3, 1");
  (* garbage appended after the bb table *)
  check_malformed "garbage tail" ~line:12 (sample_text ^ "not, a\n");
  (* missing bb table entirely *)
  check_malformed "no bb table" (first_lines 6)

let suite =
  [
    Alcotest.test_case "drcov roundtrip" `Quick test_drcov_roundtrip;
    Alcotest.test_case "drcov malformed inputs" `Quick test_drcov_malformed;
    QCheck_alcotest.to_alcotest prop_drcov_roundtrip;
    Alcotest.test_case "drcov covered bytes" `Quick test_drcov_covered_bytes;
    Alcotest.test_case "collector dedups blocks" `Quick test_collector_dedup;
    Alcotest.test_case "collector module attribution" `Quick test_collector_module_attribution;
    Alcotest.test_case "nudge resets the cache" `Quick test_collector_nudge_resets;
    Alcotest.test_case "collector follows fork" `Quick test_collector_follows_fork;
    Alcotest.test_case "covgraph from log" `Quick test_covgraph_of_log;
  ]
