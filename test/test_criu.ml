(** Checkpoint/restore tests: dump/restore fidelity, serialization
    roundtrips, CRIT text codec, TCP repair, and the vanilla-vs-DynaCut
    page-dumping distinction from paper §3.3. *)

open Dsl

let libc = Test_machine.libc

(* A little stateful server: counts requests, answers "pong<N>". *)
let pong_server =
  unit_ "pong"
    ~globals:[ global_q "count" [ 0L ]; global_zero "rbuf" 128; global_zero "obuf" 128 ]
    [
      func "main" []
        [
          decl "sfd" (call "socket" []);
          do_ "bind" [ v "sfd"; i 9100 ];
          do_ "listen" [ v "sfd" ];
          forever
            [
              decl "c" (call "accept" [ v "sfd" ]);
              decl "n" (call "recv" [ v "c"; addr "rbuf"; i 128 ]);
              when_ (v "n" >: i 0)
                [
                  set "count" (v "count" +: i 1);
                  do_ "strcpy" [ addr "obuf"; s "pong" ];
                  do_ "itoa" [ addr "obuf" +: i 4; v "count" ];
                  do_ "send" [ v "c"; addr "obuf"; call "strlen" [ addr "obuf" ] ];
                ];
              do_ "close" [ v "c" ];
            ];
          ret0;
        ];
    ]

let boot_server () =
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "pong" (Crt0.link_app ~libc pong_server);
  let p = Machine.spawn m ~exe_path:"pong" () in
  (match Machine.run m ~max_cycles:2_000_000 with
  | `Idle -> ()
  | _ -> Alcotest.fail "server failed to reach accept");
  (m, p)

let request m text =
  let c = Net.connect m.Machine.net 9100 in
  Net.client_send c text;
  let (_ : _) = Machine.run m ~max_cycles:2_000_000 in
  Net.client_recv c

let test_dump_restore_identity () =
  let m, p = boot_server () in
  Alcotest.(check string) "before" "pong1" (request m "hi");
  Machine.freeze m ~pid:p.Proc.pid;
  let img = Checkpoint.dump m ~pid:p.Proc.pid () in
  (* restore must reproduce registers and memory exactly *)
  Machine.reap m ~pid:p.Proc.pid;
  let p' = Restore.restore m img in
  Alcotest.(check int) "pid" p.Proc.pid p'.Proc.pid;
  Alcotest.(check int64) "rip" p.Proc.regs.Proc.rip p'.Proc.regs.Proc.rip;
  Array.iteri
    (fun i v -> Alcotest.(check int64) (Printf.sprintf "gpr%d" i) v p'.Proc.regs.Proc.gpr.(i))
    p.Proc.regs.Proc.gpr;
  Alcotest.(check int) "vma count" (List.length p.Proc.mem.Mem.vmas)
    (List.length p'.Proc.mem.Mem.vmas);
  (* every mapped byte equal *)
  List.iter
    (fun (v : Mem.vma) ->
      List.iter
        (fun (vaddr, data) ->
          let data' = Mem.peek_bytes p'.Proc.mem vaddr (Bytes.length data) in
          if not (Bytes.equal data data') then
            Alcotest.failf "page at 0x%Lx differs after restore" vaddr)
        (Mem.pages_of_vma p.Proc.mem v))
    p.Proc.mem.Mem.vmas;
  (* and the restored process still serves, with its counter intact *)
  Alcotest.(check string) "after restore" "pong2" (request m "hi again")

let test_binary_codec_roundtrip () =
  let m, p = boot_server () in
  let _ = request m "x" in
  Machine.freeze m ~pid:p.Proc.pid;
  let img = Checkpoint.dump m ~pid:p.Proc.pid () in
  let img' = Images.decode (Images.encode img) in
  Alcotest.(check string) "re-encode identical" (Images.encode img) (Images.encode img');
  Alcotest.(check int) "vmas" (List.length img.Images.mm) (List.length img'.Images.mm);
  Alcotest.(check bool) "pages" true (Bytes.equal img.Images.pages img'.Images.pages)

let test_crit_text_roundtrip () =
  let m, p = boot_server () in
  let _ = request m "x" in
  Machine.freeze m ~pid:p.Proc.pid;
  let img = Checkpoint.dump m ~pid:p.Proc.pid () in
  let blob = Images.encode img in
  let text = Crit.decode_to_text blob in
  let blob' = Crit.encode_from_text text in
  Alcotest.(check string) "crit decode/encode roundtrip" blob blob'

let test_crit_show_mems () =
  let m, p = boot_server () in
  Machine.freeze m ~pid:p.Proc.pid;
  let img = Checkpoint.dump m ~pid:p.Proc.pid () in
  let s = Crit.show_mems img in
  let contains sub str =
    let n = String.length sub and m = String.length str in
    let rec go i = i + n <= m && (String.sub str i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has pong:.text" true (contains "pong:.text" s);
  Alcotest.(check bool) "has stack" true (contains "[stack]" s)

let test_tcp_repair_mid_request () =
  (* connect, send half a request, checkpoint+restore, send the rest *)
  let m, p = boot_server () in
  let c = Net.connect m.Machine.net 9100 in
  (* let the server accept the connection and block in recv *)
  let (_ : _) = Machine.run m ~max_cycles:500_000 in
  Machine.freeze m ~pid:p.Proc.pid;
  let img = Checkpoint.dump m ~pid:p.Proc.pid () in
  Machine.reap m ~pid:p.Proc.pid;
  let (_ : Proc.t) = Restore.restore m img in
  (* client was never disturbed; finish the request *)
  Net.client_send c "ping";
  let (_ : _) = Machine.run m ~max_cycles:2_000_000 in
  Alcotest.(check string) "served across restore" "pong1" (Net.client_recv c)

let test_vanilla_mode_drops_code_patches () =
  (* the paper's motivating CRIU fix: vanilla CRIU does not dump
     file-backed executable pages, so an int3 patch written into the
     image is lost on restore (code faults back in from the binary) *)
  let m, p = boot_server () in
  Machine.freeze m ~pid:p.Proc.pid;
  let exe_self = Option.get (Vfs.find_self m.Machine.fs "pong") in
  let main_off = (Option.get (Self.find_symbol exe_self "main")).Self.sym_off in
  let main_va = Int64.add exe_self.Self.base (Int64.of_int main_off) in
  let orig_byte = Mem.peek8 p.Proc.mem main_va in
  (* vanilla dump: code pages not in the image *)
  let img_v = Checkpoint.dump m ~pid:p.Proc.pid ~mode:Checkpoint.Vanilla () in
  Alcotest.check_raises "code pages not dumped" Not_found (fun () ->
      ignore (Images.read_mem img_v main_va 1));
  (* dynacut dump: they are, and patches survive restore *)
  let img_d = Checkpoint.dump m ~pid:p.Proc.pid ~mode:Checkpoint.Dynacut () in
  Images.write_mem img_d main_va (Bytes.make 1 '\xCC');
  Machine.reap m ~pid:p.Proc.pid;
  let p' = Restore.restore m img_d in
  Alcotest.(check int) "int3 survived dynacut restore" 0xCC (Mem.peek8 p'.Proc.mem main_va);
  (* restoring the vanilla image instead brings the original byte back *)
  Machine.reap m ~pid:p'.Proc.pid;
  let p'' = Restore.restore m img_v in
  Alcotest.(check int) "vanilla restore faults code from file" orig_byte
    (Mem.peek8 p''.Proc.mem main_va)

let test_dump_tree_multiprocess () =
  let forker =
    unit_ "forker"
      [
        func "main" []
          [
            decl "pid" (call "fork" []);
            if_ (v "pid" ==: i 0)
              [ do_ "nanosleep" [ i 1000000 ]; ret0 ]
              [ do_ "nanosleep" [ i 1000000 ]; ret0 ];
          ];
      ]
  in
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "forker" (Crt0.link_app ~libc forker);
  let p = Machine.spawn m ~exe_path:"forker" () in
  (* run a little: fork happens, then both sleep *)
  let (_ : _) = Machine.run m ~max_cycles:20_000 in
  let imgs = Checkpoint.dump_tree m ~root:p.Proc.pid () in
  Alcotest.(check int) "two processes dumped" 2 (List.length imgs)

let test_image_read_write_mem () =
  let m, p = boot_server () in
  Machine.freeze m ~pid:p.Proc.pid;
  let img = Checkpoint.dump m ~pid:p.Proc.pid () in
  let exe_self = Option.get (Vfs.find_self m.Machine.fs "pong") in
  let main_va =
    Int64.add exe_self.Self.base
      (Int64.of_int (Option.get (Self.find_symbol exe_self "main")).Self.sym_off)
  in
  let before = Images.read_mem img main_va 4 in
  Images.write_mem img main_va (Bytes.of_string "\xCC\xCC\xCC\xCC");
  Alcotest.(check string) "written" "cccccccc"
    (Bytesx.hex_of_string (Bytes.to_string (Images.read_mem img main_va 4)));
  Images.write_mem img main_va before;
  Alcotest.(check bool) "restored" true (Bytes.equal before (Images.read_mem img main_va 4))

(* unseal_frames edge cases: the journal reader must keep exactly the
   valid prefix and report everything else as a located torn tail *)
let test_unseal_frames_edges () =
  let tear_kind =
    Alcotest.testable
      (fun ppf k -> Format.pp_print_string ppf (Validate.tear_kind_to_string k))
      ( = )
  in
  (* empty file: no frames, not torn — a journal that was never written *)
  let frames, tear = Validate.unseal_frames "" in
  Alcotest.(check (list string)) "empty file has no frames" [] frames;
  Alcotest.(check bool) "empty file is not torn" true (tear = None);
  (* duplicate frame: concatenation is dumb, both copies come back *)
  let f = Validate.seal "payload-a" in
  let frames, tear = Validate.unseal_frames (f ^ f) in
  Alcotest.(check (list string))
    "duplicate frame kept twice"
    [ "payload-a"; "payload-a" ] frames;
  Alcotest.(check bool) "duplicates are not torn" true (tear = None);
  (* garbage after a valid prefix: prefix kept, tear locates the frame
     boundary where the garbage starts and names the kind (too short for
     a header → truncated) *)
  let g = Validate.seal "payload-b" in
  let frames, tear = Validate.unseal_frames (f ^ g ^ "garbage tail") in
  Alcotest.(check (list string))
    "valid prefix survives garbage"
    [ "payload-a"; "payload-b" ] frames;
  (match tear with
  | None -> Alcotest.fail "garbage tail must tear"
  | Some t ->
      Alcotest.(check int)
        "tear offset is the start of the garbage"
        (String.length f + String.length g)
        t.Validate.t_offset;
      Alcotest.check tear_kind "short tail reads as truncated"
        Validate.Truncated t.Validate.t_kind);
  (* a frame whose checksum lies also ends the prefix, located at the
     mangled frame's start *)
  let mangled = Bytes.of_string (Validate.seal "payload-c") in
  Bytes.set mangled (Bytes.length mangled - 1) '\xFF';
  let frames, tear = Validate.unseal_frames (f ^ Bytes.to_string mangled) in
  Alcotest.(check (list string))
    "checksum mismatch ends the prefix" [ "payload-a" ] frames;
  (match tear with
  | None -> Alcotest.fail "checksum mismatch must tear"
  | Some t ->
      Alcotest.(check int)
        "tear offset is the mangled frame's start" (String.length f)
        t.Validate.t_offset;
      Alcotest.check tear_kind "kind is checksum-mismatch"
        Validate.Checksum_mismatch t.Validate.t_kind);
  (* a full-sized frame of wrong magic tears as bad-magic at its start *)
  let junk_header = String.make (String.length f) 'Z' in
  let frames, tear = Validate.unseal_frames (f ^ junk_header) in
  Alcotest.(check (list string)) "prefix kept before bad magic" [ "payload-a" ] frames;
  (match tear with
  | None -> Alcotest.fail "bad magic must tear"
  | Some t ->
      Alcotest.(check int) "bad-magic offset" (String.length f) t.Validate.t_offset;
      Alcotest.check tear_kind "kind is bad-magic" Validate.Bad_magic
        t.Validate.t_kind)

(* unseal error messages carry the failure kind and a byte offset, so a
   corrupt image on the tmpfs is diagnosable from the exception alone *)
let test_unseal_error_offsets () =
  let msg_of blob =
    match Validate.unseal blob with
    | (_ : string) -> Alcotest.fail "unseal accepted a corrupt blob"
    | exception Validate.Validate_error m -> m
  in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  (* short blob: truncated at its own length *)
  let m = msg_of "abc" in
  Alcotest.(check bool)
    (Printf.sprintf "short blob names truncation (%s)" m)
    true
    (contains m "truncated at byte 3");
  (* wrong magic: bad-magic at byte 0 *)
  let m = msg_of (String.make 64 'Z') in
  Alcotest.(check bool)
    (Printf.sprintf "wrong magic located at 0 (%s)" m)
    true
    (contains m "bad-magic at byte 0");
  (* flipped payload byte: checksum mismatch at the payload start *)
  let sealed = Bytes.of_string (Validate.seal "payload") in
  Bytes.set sealed (Bytes.length sealed - 1) '\xFF';
  let m = msg_of (Bytes.to_string sealed) in
  Alcotest.(check bool)
    (Printf.sprintf "checksum mismatch locates the payload (%s)" m)
    true
    (contains m "checksum-mismatch at byte 21")

let suite =
  [
    Alcotest.test_case "dump/restore identity" `Quick test_dump_restore_identity;
    Alcotest.test_case "unseal_frames edge cases" `Quick
      test_unseal_frames_edges;
    Alcotest.test_case "unseal error offsets" `Quick test_unseal_error_offsets;
    Alcotest.test_case "binary codec roundtrip" `Quick test_binary_codec_roundtrip;
    Alcotest.test_case "CRIT text roundtrip" `Quick test_crit_text_roundtrip;
    Alcotest.test_case "CRIT mems listing" `Quick test_crit_show_mems;
    Alcotest.test_case "TCP repair mid-request" `Quick test_tcp_repair_mid_request;
    Alcotest.test_case "vanilla CRIU drops code patches" `Quick test_vanilla_mode_drops_code_patches;
    Alcotest.test_case "multi-process dump" `Quick test_dump_tree_multiprocess;
    Alcotest.test_case "image read/write mem" `Quick test_image_read_write_mem;
  ]
