(** Unit + property tests for the util substrate: byte codecs,
    s-expressions, tables, PRNG, stats. *)

(* ---------- Bytesx ---------- *)

let prop_u64_roundtrip =
  QCheck.Test.make ~name:"bytesx u64 roundtrip" ~count:500
    QCheck.(map Int64.of_int int)
    (fun v ->
      let b = Bytesx.W.create () in
      Bytesx.W.u64 b v;
      Bytesx.R.u64 (Bytesx.R.of_string (Bytesx.W.contents b)) = v)

let prop_lstring_roundtrip =
  QCheck.Test.make ~name:"bytesx lstring roundtrip" ~count:300 QCheck.string (fun s ->
      let b = Bytesx.W.create () in
      Bytesx.W.lstring b s;
      Bytesx.R.lstring (Bytesx.R.of_string (Bytesx.W.contents b)) = s)

let prop_mixed_fields =
  QCheck.Test.make ~name:"bytesx mixed field sequence" ~count:300
    QCheck.(triple small_nat string (map Int64.of_int int))
    (fun (a, s, v) ->
      let b = Bytesx.W.create () in
      Bytesx.W.u32 b a;
      Bytesx.W.lstring b s;
      Bytesx.W.u64 b v;
      Bytesx.W.u8 b 0xAB;
      let r = Bytesx.R.of_string (Bytesx.W.contents b) in
      Bytesx.R.u32 r = a land 0xffffffff
      && Bytesx.R.lstring r = s
      && Bytesx.R.u64 r = v
      && Bytesx.R.u8 r = 0xAB
      && Bytesx.R.eof r)

let test_truncated_raises () =
  let r = Bytesx.R.of_string "ab" in
  Alcotest.check_raises "u64 on 2 bytes"
    (Bytesx.Truncated "u8: need 1 bytes, have 0")
    (fun () ->
      ignore (Bytesx.R.u8 r);
      ignore (Bytesx.R.u8 r);
      ignore (Bytesx.R.u8 r))

(* ---------- Sexpr ---------- *)

let gen_sexpr : Sexpr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    map (fun s -> Sexpr.Atom s)
      (oneof
         [
           string_size ~gen:(char_range 'a' 'z') (int_range 1 8);
           return "with space";
           return "quo\"te";
           return "back\\slash";
           return "new\nline";
           map string_of_int int;
         ])
  in
  sized
    (fix (fun self n ->
         if n <= 0 then atom
         else
           frequency
             [
               (2, atom);
               (1, map (fun l -> Sexpr.List l) (list_size (int_range 0 4) (self (n / 2))));
             ]))

let prop_sexpr_roundtrip =
  QCheck.Test.make ~name:"sexpr print/parse roundtrip" ~count:500
    (QCheck.make ~print:Sexpr.to_string gen_sexpr)
    (fun sx -> Sexpr.of_string (Sexpr.to_string sx) = sx)

let test_sexpr_parse_comments () =
  let sx = Sexpr.of_string "; header\n(a ; inline\n b)" in
  Alcotest.(check bool) "parsed" true (sx = Sexpr.List [ Sexpr.Atom "a"; Sexpr.Atom "b" ])

let test_sexpr_get_field () =
  let sx = Sexpr.of_string "(rec (pid 42) (name web))" in
  Alcotest.(check int) "pid" 42 (Sexpr.as_int (Option.get (Sexpr.get_field "pid" sx)));
  Alcotest.(check string) "name" "web"
    (Sexpr.as_atom (Option.get (Sexpr.get_field "name" sx)));
  Alcotest.(check bool) "missing" true (Sexpr.get_field "nope" sx = None)

let test_sexpr_trailing_garbage () =
  Alcotest.check_raises "garbage" (Sexpr.Parse_error "trailing garbage") (fun () ->
      ignore (Sexpr.of_string "(a) b"))

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_i64 a) (Rng.next_i64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_seed_changes_stream () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different" true (Rng.next_i64 a <> Rng.next_i64 b)

(* ---------- Table ---------- *)

let test_table_render_alignment () =
  let t = Table.render ~headers:[ "name"; "value" ] [ [ "x"; "1" ]; [ "longer"; "22" ] ] in
  let lines = String.split_on_char '\n' t in
  let widths = List.map String.length (List.filter (fun l -> l <> "") lines) in
  match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "equal widths" w w') rest
  | [] -> Alcotest.fail "empty table"

let test_human_bytes () =
  Alcotest.(check string) "bytes" "512B" (Table.human_bytes 512);
  Alcotest.(check string) "kb" "2.5KB" (Table.human_bytes 2560);
  Alcotest.(check string) "mb" "2.00MB" (Table.human_bytes (2 * 1024 * 1024))

(* ---------- Stats ---------- *)

let test_stats_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "stddev" 1. (Stats.stddev [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "single" 0. (Stats.stddev [ 5. ]);
  Alcotest.(check (float 1e-9)) "empty mean" 0. (Stats.mean [])

let test_stats_percentile () =
  let xs = List.init 101 float_of_int in
  Alcotest.(check (float 1e-9)) "p50" 50. (Stats.percentile 50. xs);
  Alcotest.(check (float 1e-9)) "p0" 0. (Stats.percentile 0. xs);
  Alcotest.(check (float 1e-9)) "p99" 99. (Stats.percentile 99. xs);
  Alcotest.(check (float 1e-9)) "p100" 100. (Stats.percentile 100. xs)

(* pin the estimator itself: type-7 linear interpolation over the sorted
   sample, input order irrelevant, p clamped to [0,100], empty -> 0 *)
let test_stats_percentile_interp () =
  let xs = [ 40.; 10.; 30.; 20. ] in
  Alcotest.(check (float 1e-9)) "p50 interpolates" 25. (Stats.percentile 50. xs);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 17.5 (Stats.percentile 25. xs);
  Alcotest.(check (float 1e-9)) "p99 interpolates" 39.7 (Stats.percentile 99. xs);
  Alcotest.(check (float 1e-9)) "p<0 clamps" 10. (Stats.percentile (-5.) xs);
  Alcotest.(check (float 1e-9)) "p>100 clamps" 40. (Stats.percentile 200. xs);
  Alcotest.(check (float 1e-9)) "singleton" 7. (Stats.percentile 90. [ 7. ]);
  Alcotest.(check (float 1e-9)) "empty" 0. (Stats.percentile 50. [])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_u64_roundtrip;
    QCheck_alcotest.to_alcotest prop_lstring_roundtrip;
    QCheck_alcotest.to_alcotest prop_mixed_fields;
    Alcotest.test_case "truncated read raises" `Quick test_truncated_raises;
    QCheck_alcotest.to_alcotest prop_sexpr_roundtrip;
    Alcotest.test_case "sexpr comments" `Quick test_sexpr_parse_comments;
    Alcotest.test_case "sexpr get_field" `Quick test_sexpr_get_field;
    Alcotest.test_case "sexpr trailing garbage" `Quick test_sexpr_trailing_garbage;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_changes_stream;
    Alcotest.test_case "table alignment" `Quick test_table_render_alignment;
    Alcotest.test_case "human bytes" `Quick test_human_bytes;
    Alcotest.test_case "stats mean/stddev" `Quick test_stats_mean_stddev;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats percentile interpolation" `Quick
      test_stats_percentile_interp;
  ]
