let () =
  Alcotest.run "dynacut"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("isa", Test_isa.suite);
      ("elf", Test_elf.suite);
      ("machine", Test_machine.suite);
      ("cc", Test_cc.suite);
      ("tracer", Test_tracer.suite);
      ("criu", Test_criu.suite);
      ("core", Test_core.suite);
      ("core-props", Test_core_props.suite);
      ("faults", Test_faults.suite);
      ("recover", Test_recover.suite);
      ("supervisor", Test_supervisor.suite);
      ("guestlib", Test_guestlib.suite);
      ("apps", Test_apps.suite);
      ("baselines", Test_baselines.suite);
      ("extensions", Test_extensions.suite);
      ("stacking", Test_stacking.suite);
      ("seccomp", Test_seccomp.suite);
      ("experiments", Test_experiments.suite);
      ("apps-cold", Test_apps_cold.suite);
      ("machine-edges", Test_machine_edges.suite);
      ("fleet", Test_fleet.suite);
      ("integrity", Test_integrity.suite);
      ("chaos", Test_chaos.suite);
      ("slice", Test_slice.suite);
      ("bbcache", Test_bbcache.suite);
    ]
