(** Memory-integrity scrubbing (DESIGN.md §6d): live baselines, the
    generation-skip incremental audit, bitflip detection, page repair
    from the trusted sources (including pristine + committed rewrite
    deltas), and the fleet's graduated quarantine / heal / respawn
    response. *)

let lapp = Workload.ltpd
let lblocks = lazy (Common.web_feature_blocks lapp)

let lpolicy =
  { Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }

let cnt name = Obs.counter_value (Obs.counter name)

let boot_tree () =
  Obs.reset ();
  Fault.reset ();
  let blocks = Lazy.force lblocks in
  let c = Workload.spawn lapp in
  Workload.wait_ready c;
  let s = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  (c, s, blocks)

let fleet_boot ~n () =
  Obs.reset ();
  Fault.reset ();
  let blocks = Lazy.force lblocks in
  let ctxs = Workload.spawn_fleet ~n lapp in
  Workload.wait_fleet_ready ctxs;
  let m = (List.hd ctxs).Workload.m in
  let pids = List.map (fun c -> c.Workload.pid) ctxs in
  let fleet =
    Fleet.create m ~port:Ltpd.port ~pids ~blocks ~policy:lpolicy
  in
  (m, pids, fleet)

(* ---------- baselines + the incremental audit ---------- *)

let test_baseline_clean () =
  let _c, s, _blocks = boot_tree () in
  let t = Integrity.create s in
  Alcotest.(check (list reject)) "pristine tree scrubs clean" []
    (List.map (fun _ -> ()) (Integrity.scrub_full t ()));
  Alcotest.(check bool) "baseline pages captured" true
    (Integrity.pages_tracked t > 0);
  Alcotest.(check bool) "pages were visited" true
    (cnt "integrity.pages_scanned" > 0)

let test_gen_skip () =
  let c, s, _blocks = boot_tree () in
  let m = c.Workload.m in
  let t = Integrity.create s in
  (* the first full pass after baseline capture: every page's write
     generation still matches the baseline, so nothing is hashed *)
  Alcotest.(check (list reject)) "first pass clean" []
    (List.map (fun _ -> ()) (Integrity.scrub_full t ()));
  Alcotest.(check int) "unwritten pages are never hashed" 0
    (cnt "integrity.pages_hashed");
  Alcotest.(check int) "every page skipped via its generation"
    (Integrity.pages_tracked t)
    (cnt "integrity.pages_skipped");
  (* one flipped bit bumps exactly one page's generation: the next full
     pass hashes that page alone *)
  (match Machine.bitflip m (Rng.create 7) with
  | Some _ -> ()
  | None -> Alcotest.fail "seeded bitflip found no resident page");
  let findings = Integrity.scrub_full t () in
  Alcotest.(check int) "the flip is the only finding" 1 (List.length findings);
  Alcotest.(check int) "only the written page was hashed" 1
    (cnt "integrity.pages_hashed")

let test_detect_and_repair () =
  let c, s, _blocks = boot_tree () in
  let m = c.Workload.m in
  let t = Integrity.create s in
  let (_ : Integrity.finding list) = Integrity.scrub_full t () in
  let fpid, faddr =
    match Machine.bitflip m (Rng.create 11) with
    | Some (pid, addr) -> (pid, addr)
    | None -> Alcotest.fail "seeded bitflip found no resident page"
  in
  let f =
    match Integrity.scrub_full t () with
    | [ f ] -> f
    | l -> Alcotest.failf "expected one finding, got %d" (List.length l)
  in
  Alcotest.(check int) "finding names the flipped pid" fpid f.Integrity.f_pid;
  Alcotest.(check int64) "finding names the flipped page"
    (Int64.mul (Int64.div faddr Mem.page_size64) Mem.page_size64)
    f.Integrity.f_vaddr;
  Alcotest.(check bool) "digests differ" true
    (f.Integrity.f_expected <> f.Integrity.f_found);
  Alcotest.(check bool) "recheck still diverged" false (Integrity.recheck t f);
  (* no cut has run, so no image exists: the backing binary is the best
     trusted source *)
  (match Integrity.repair t f with
  | Integrity.Repaired src -> Alcotest.(check string) "source" "file" src
  | Integrity.Repair_failed why -> Alcotest.failf "repair failed: %s" why);
  Alcotest.(check bool) "recheck matches after repair" true
    (Integrity.recheck t f);
  Alcotest.(check (list reject)) "post-repair audit clean" []
    (List.map (fun _ -> ()) (Integrity.scrub_full t ()))

(* a flip landing in a page the rewriter patched: the pristine image
   alone no longer matches the live baseline (it predates the cut), so
   repair must re-apply the committed deltas over the pristine page —
   the file source is equally stale, and the working image is gone *)
let test_repair_pristine_plus_deltas () =
  let c, s, blocks = boot_tree () in
  let m = c.Workload.m in
  let r =
    Dynacut.try_cut s ~blocks ~policy:lpolicy ()
  in
  (match r.Dynacut.r_outcome with
  | `Applied | `Degraded -> ()
  | o -> Alcotest.failf "cut did not apply: %a" Dynacut.pp_outcome o);
  let pid, p_vaddr =
    match
      List.concat_map
        (fun (j : Rewriter.journal) ->
          List.filter_map
            (function
              | Rewriter.Bytes_patch { p_vaddr; _ } ->
                  Some (j.Rewriter.j_pid, p_vaddr)
              | Rewriter.Unmap_patch _ -> None)
            j.Rewriter.j_patches)
        r.Dynacut.r_journals
    with
    | (pid, v) :: _ -> (pid, v)
    | [] -> Alcotest.fail "cut journaled no byte patch"
  in
  Alcotest.(check bool) "deltas were published at commit" true
    (Dynacut.committed_deltas s ~pid <> []);
  let t = Integrity.create s in
  Alcotest.(check (list reject)) "post-cut baseline clean" []
    (List.map (fun _ -> ()) (Integrity.scrub_full t ()));
  let mem = (Machine.proc_exn m pid).Proc.mem in
  Alcotest.(check int) "the patch byte is int3" 0xCC (Mem.peek8 mem p_vaddr);
  Mem.flip_bit mem ~addr:p_vaddr ~bit:0;
  Vfs.remove m.Machine.fs (Dynacut.image_path s pid);
  let f =
    match Integrity.scrub_full t () with
    | [ f ] -> f
    | l -> Alcotest.failf "expected one finding, got %d" (List.length l)
  in
  (match Integrity.repair t f with
  | Integrity.Repaired src -> Alcotest.(check string) "source" "pristine" src
  | Integrity.Repair_failed why -> Alcotest.failf "repair failed: %s" why);
  Alcotest.(check int) "the patch byte is int3 again" 0xCC
    (Mem.peek8 mem p_vaddr);
  Alcotest.(check (list reject)) "post-repair audit clean" []
    (List.map (fun _ -> ()) (Integrity.scrub_full t ()))

(* ---------- the fleet's graduated response ---------- *)

let test_fleet_quarantine_heal () =
  let m, pids, fleet = fleet_boot ~n:2 () in
  Fleet.start_scrub fleet;
  List.iter (fun pid -> ignore (Fleet.scrub_now fleet ~pid)) pids;
  let victim = List.hd pids in
  (match Machine.bitflip m ~pid:victim (Rng.create 23) with
  | Some _ -> ()
  | None -> Alcotest.fail "seeded bitflip found no resident page");
  let r = Fleet.scrub_now fleet ~pid:victim in
  Alcotest.(check int) "one finding" 1 (List.length r.Fleet.sr_findings);
  Alcotest.(check int) "one page healed" 1 (List.length r.Fleet.sr_repaired);
  Alcotest.(check bool) "no respawn needed" false r.Fleet.sr_respawned;
  Alcotest.(check int) "the worker was quarantined for the heal" 1
    (cnt "fleet.scrub.quarantines");
  (* un-quarantined: the fleet still answers *)
  (match Fleet.request fleet "GET /index.html HTTP/1.0\r\n\r\n" with
  | `Reply _ -> ()
  | `Refused | `Shed | `Timed_out _ -> Alcotest.fail "fleet stopped serving");
  Alcotest.(check (list reject)) "post-heal audit clean" []
    (List.map
       (fun _ -> ())
       (Integrity.scrub_full (Fleet.integrity fleet ~pid:victim) ()))

let test_fleet_redivergence_respawns () =
  let m, pids, fleet = fleet_boot ~n:2 () in
  (* roll the cut out first: escalation respawns from the newest sealed
     image, so the workers must have been checkpointed *)
  let config =
    Rollout.
      {
        r_waves = 1;
        r_sup =
          { Supervisor.default_config with Supervisor.canary_windows = 1 };
      }
  in
  let drive () =
    ignore (Fleet.request fleet "GET /index.html HTTP/1.0\r\n\r\n")
  in
  (match Fleet.rollout fleet ~config ~drive () with
  | Rollout.Completed _, _ -> ()
  | o, _ -> Alcotest.failf "rollout did not complete: %a" Rollout.pp_outcome o);
  Fleet.start_scrub fleet;
  List.iter (fun pid -> ignore (Fleet.scrub_now fleet ~pid)) pids;
  let victim, addr =
    match Machine.bitflip m ~pid:(List.hd pids) (Rng.create 29) with
    | Some (pid, addr) -> (pid, addr)
    | None -> Alcotest.fail "seeded bitflip found no resident page"
  in
  let r1 = Fleet.scrub_now fleet ~pid:victim in
  Alcotest.(check bool) "first divergence is page-repaired" true
    (List.length r1.Fleet.sr_repaired = 1 && not r1.Fleet.sr_respawned);
  (* the same page diverges again: the per-page repair budget (default
     1) is spent, so the graduated response escalates to a respawn *)
  let mem = (Machine.proc_exn m victim).Proc.mem in
  Mem.flip_bit mem ~addr ~bit:3;
  let r2 = Fleet.scrub_now fleet ~pid:victim in
  Alcotest.(check bool) "re-divergence respawns" true r2.Fleet.sr_respawned;
  Alcotest.(check int) "respawn counted" 1 (cnt "fleet.scrub.respawns");
  Alcotest.(check bool) "the worker is back" true
    (Machine.proc m victim <> None);
  Alcotest.(check (list reject)) "post-respawn audit clean" []
    (List.map
       (fun _ -> ())
       (Integrity.scrub_full (Fleet.integrity fleet ~pid:victim) ()))

(* ---------- the scrub oracle ---------- *)

let test_oracle_check_scrub () =
  let f =
    {
      Integrity.f_pid = 1;
      f_vaddr = 0x400000L;
      f_expected = 1L;
      f_found = 2L;
    }
  in
  Alcotest.(check int) "surviving flips with no detection violate" 1
    (List.length (Oracle.check_scrub ~flips:2 ~detected:0 ~residue:[]));
  Alcotest.(check int) "detection clears the flip check" 0
    (List.length (Oracle.check_scrub ~flips:2 ~detected:1 ~residue:[]));
  Alcotest.(check int) "no flips, nothing owed" 0
    (List.length (Oracle.check_scrub ~flips:0 ~detected:0 ~residue:[]));
  Alcotest.(check int) "post-repair residue violates per page" 2
    (List.length (Oracle.check_scrub ~flips:0 ~detected:0 ~residue:[ f; f ]))

let suite =
  [
    Alcotest.test_case "baseline scrubs clean" `Quick test_baseline_clean;
    Alcotest.test_case "generation skip" `Quick test_gen_skip;
    Alcotest.test_case "detect + repair from file" `Quick
      test_detect_and_repair;
    Alcotest.test_case "repair from pristine + committed deltas" `Quick
      test_repair_pristine_plus_deltas;
    Alcotest.test_case "fleet quarantine + heal" `Quick
      test_fleet_quarantine_heal;
    Alcotest.test_case "fleet re-divergence respawns" `Quick
      test_fleet_redivergence_respawns;
    Alcotest.test_case "scrub oracle" `Quick test_oracle_check_scrub;
  ]
