(** Tests for lib/slice/: def/use table exhaustiveness over the vx86
    ISA, abstract-memory properties against a naive byte-map model, the
    dataflow slicing tracer end-to-end on rkv (including sampled
    tracing and the counterexample journal), and determinism pinning of
    the splitmix64 stream every seeded component draws from. *)

(* ---------- Defuse: per-instruction def/use tables ---------- *)

(* The census is the exhaustiveness contract from both sides: [effect]
   fails to compile when a constructor lacks a match arm, and this
   count fails when [all_constructors] lags a new constructor. *)
let test_defuse_census () =
  Alcotest.(check int)
    "one sample per Insn.t constructor" 39
    (List.length Defuse.all_constructors);
  (* every arm evaluates without raising *)
  List.iter
    (fun i -> ignore (Defuse.effect i))
    Defuse.all_constructors

let test_defuse_control_matches_block_ends () =
  List.iter
    (fun i ->
      let e = Defuse.effect i in
      let straight = e.Defuse.control = Defuse.Straight in
      Alcotest.(check bool)
        (Format.asprintf "control class of %a agrees with is_block_end"
           Insn.pp i)
        (not (Insn.is_block_end i))
        straight)
    Defuse.all_constructors

let test_defuse_access_widths () =
  List.iter
    (fun i ->
      let e = Defuse.effect i in
      List.iter
        (fun (a : Defuse.access) ->
          if a.Defuse.a_len <> 1 && a.Defuse.a_len <> 8 then
            Alcotest.failf "%a: access width %d" Insn.pp i a.Defuse.a_len)
        (e.Defuse.loads @ e.Defuse.stores))
    Defuse.all_constructors

let test_defuse_spot_checks () =
  let e = Defuse.effect (Insn.Mov_rr (Reg.Rcx, Reg.Rdx)) in
  Alcotest.(check bool) "mov defs dst" true (e.Defuse.defs = [ Reg.Rcx ]);
  Alcotest.(check bool) "mov uses src" true (e.Defuse.uses = [ Reg.Rdx ]);
  let cmp = Defuse.effect (Insn.Cmp_rr (Reg.Rax, Reg.Rbx)) in
  Alcotest.(check bool) "cmp defines flags" true cmp.Defuse.defs_flags;
  Alcotest.(check bool) "cmp leaves regs" true (cmp.Defuse.defs = []);
  let jcc = Defuse.effect (Insn.Jcc (Insn.Eq, 4)) in
  Alcotest.(check bool) "jcc reads flags" true jcc.Defuse.uses_flags;
  Alcotest.(check bool)
    "jcc is a decision" true
    (jcc.Defuse.control = Defuse.Cond_jump);
  let sys = Defuse.effect Insn.Syscall in
  Alcotest.(check bool)
    "syscall crosses the kernel boundary" true
    (sys.Defuse.control = Defuse.Sys);
  Alcotest.(check bool)
    "syscall defines rax" true
    (List.mem Reg.Rax sys.Defuse.defs);
  let ret = Defuse.effect Insn.Ret in
  Alcotest.(check bool)
    "ret pops a control level" true
    (ret.Defuse.control = Defuse.Return);
  Alcotest.(check bool)
    "ret loads the return slot" true
    (List.exists
       (fun (a : Defuse.access) -> a.Defuse.a_base = Reg.Rsp)
       ret.Defuse.loads)

(* ---------- Absmem: range map vs a byte-map model ---------- *)

let test_absmem_strong_update_and_coalescing () =
  let m = Absmem.create ~eq:( = ) () in
  Absmem.write m ~addr:0L ~len:8 1;
  Absmem.write m ~addr:8L ~len:8 1;
  Alcotest.(check int) "adjacent equal ranges coalesce" 1 (Absmem.cardinal m);
  Alcotest.(check (list int)) "read sees one payload" [ 1 ]
    (Absmem.read m ~addr:0L ~len:16);
  Absmem.write m ~addr:4L ~len:4 2;
  Alcotest.(check int) "strong update splits" 3 (Absmem.cardinal m);
  Alcotest.(check (list int))
    "overwritten span carries the new payload" [ 2 ]
    (Absmem.read m ~addr:4L ~len:4);
  Alcotest.(check (list int))
    "overlap read dedups repeated payloads" [ 1; 2 ]
    (Absmem.read m ~addr:0L ~len:16);
  Absmem.write m ~addr:4L ~len:4 1;
  Alcotest.(check int) "re-equalized ranges re-coalesce" 1 (Absmem.cardinal m);
  Absmem.clear m;
  Alcotest.(check int) "clear empties" 0 (Absmem.cardinal m);
  Alcotest.(check (list int)) "read after clear" []
    (Absmem.read m ~addr:0L ~len:16)

(* Seeded random write/read workload checked against a per-byte model:
   the range map must agree with the model byte-for-byte, report
   disjoint sorted ranges, and never keep two touching ranges with
   equal payloads. *)
let test_absmem_model_equivalence () =
  let rng = Rng.create 11 in
  let m = Absmem.create ~eq:( = ) () in
  let model = Hashtbl.create 512 in
  let span = 160 in
  let check_invariants () =
    let rs = Absmem.ranges m in
    let rec walk = function
      | (a1, l1, p1) :: ((a2, _, p2) :: _ as rest) ->
          if Int64.add a1 (Int64.of_int l1) > a2 then
            Alcotest.failf "ranges overlap at %Ld" a2;
          if Int64.add a1 (Int64.of_int l1) = a2 && p1 = p2 then
            Alcotest.failf "uncoalesced equal neighbours at %Ld" a2;
          walk rest
      | _ -> ()
    in
    walk rs;
    List.iter
      (fun (a, l, p) ->
        if l <= 0 then Alcotest.failf "empty range at %Ld" a;
        for k = 0 to l - 1 do
          let addr = Int64.add a (Int64.of_int k) in
          match Hashtbl.find_opt model addr with
          | Some q when q = p -> ()
          | _ -> Alcotest.failf "range byte %Ld disagrees with model" addr
        done)
      rs;
    Hashtbl.iter
      (fun addr p ->
        let got = Absmem.read m ~addr ~len:1 in
        if got <> [ p ] then
          Alcotest.failf "model byte %Ld missing from ranges" addr)
      model
  in
  for step = 1 to 1_500 do
    let addr = Int64.of_int (Rng.int rng span) in
    let len = 1 + Rng.int rng 16 in
    if Rng.int rng 4 = 0 then begin
      (* read: same payload set as the model over the window *)
      let expected = ref [] in
      for k = 0 to len - 1 do
        match Hashtbl.find_opt model (Int64.add addr (Int64.of_int k)) with
        | Some p when not (List.mem p !expected) -> expected := p :: !expected
        | _ -> ()
      done;
      let got = Absmem.read m ~addr ~len in
      Alcotest.(check (list int))
        (Printf.sprintf "step %d: read payload set" step)
        (List.sort_uniq compare !expected)
        (List.sort_uniq compare got)
    end
    else begin
      let p = Rng.int rng 6 in
      Absmem.write m ~addr ~len p;
      for k = 0 to len - 1 do
        Hashtbl.replace model (Int64.add addr (Int64.of_int k)) p
      done
    end;
    if step mod 250 = 0 then check_invariants ()
  done;
  check_invariants ()

(* ---------- Slicer: end-to-end on rkv ---------- *)

let overlaps (b : Covgraph.block) (m, off, len) =
  m = b.Covgraph.b_module
  && off < b.Covgraph.b_off + b.Covgraph.b_size
  && b.Covgraph.b_off < off + len

let test_slicer_end_to_end () =
  let p = Slicelab.profile Workload.rkv in
  let st = p.Slicelab.p_stats in
  Alcotest.(check bool) "traced instructions" true (st.Slicer.st_insns > 0);
  Alcotest.(check bool) "anchored wanted outputs" true
    (st.Slicer.st_anchors > 0);
  Alcotest.(check bool) "nonempty slice" true (p.Slicelab.p_points <> []);
  Alcotest.(check int) "slice size matches stats" st.Slicer.st_slice_blocks
    (List.length p.Slicelab.p_points);
  Alcotest.(check bool) "sliced-away candidates found" true
    (p.Slicelab.p_blocks <> []);
  Alcotest.(check bool) "covered blocks counted" true
    (p.Slicelab.p_report.Tracediff.n_covered > 0);
  (* the class contract: no candidate block overlaps any slice span *)
  List.iter
    (fun b ->
      if List.exists (overlaps b) p.Slicelab.p_points then
        Alcotest.failf "sliced-away block %s+0x%x overlaps the slice"
          b.Covgraph.b_module b.Covgraph.b_off)
    p.Slicelab.p_report.Tracediff.sliced

let test_slicer_deterministic () =
  let a = Slicelab.profile ~seed:42 Workload.rkv in
  let b = Slicelab.profile ~seed:42 Workload.rkv in
  Alcotest.(check bool) "same seed, same slice points" true
    (a.Slicelab.p_points = b.Slicelab.p_points);
  Alcotest.(check bool) "same sliced-away candidates" true
    (a.Slicelab.p_blocks = b.Slicelab.p_blocks)

let test_slicer_sampled_deterministic () =
  let run () =
    Slicelab.profile ~sample:(Rng.create 9, 0.3) Workload.rkv
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "sampling actually skipped connections" true
    (a.Slicelab.p_stats.Slicer.st_sampled_off > 0);
  Alcotest.(check int) "same seeded sampling decisions"
    a.Slicelab.p_stats.Slicer.st_sampled_off
    b.Slicelab.p_stats.Slicer.st_sampled_off;
  Alcotest.(check bool) "sampled slice replays bit-for-bit" true
    (a.Slicelab.p_points = b.Slicelab.p_points)

let test_slicer_counterexample_journal () =
  let p = Slicelab.profile Workload.rkv in
  let sl = p.Slicelab.p_slicer in
  let before = List.length (Slicer.slice sl) in
  Slicer.add_counterexample sl ~module_:"rkv" ~off:0x7fff00;
  Slicer.add_counterexample sl ~module_:"rkv" ~off:0x7fff00;
  let cexs = Slicer.counterexamples sl in
  Alcotest.(check (list (pair string int)))
    "counterexamples dedup" [ ("rkv", 0x7fff00) ] cexs;
  let points = Slicer.slice sl in
  Alcotest.(check int) "counterexample re-joins once" (before + 1)
    (List.length points);
  Alcotest.(check bool) "re-joined with unit extent" true
    (List.mem ("rkv", 0x7fff00, 1) points);
  Alcotest.(check int) "stats count it" 1
    (Slicer.stats sl).Slicer.st_counterexamples

(* After verifier convergence the kept cut is quiescent: more wanted
   traffic produces no new feedback, so nothing gets spuriously
   restored (the drift monitor would otherwise see phantom traps). *)
let test_converged_cut_is_quiescent () =
  let p = Slicelab.profile Workload.rkv in
  let v =
    Slicelab.cut_and_converge Workload.rkv ~blocks:p.Slicelab.p_blocks ()
  in
  (match v.Slicelab.v_rollout with
  | Supervisor.R_promoted -> ()
  | r ->
      Alcotest.failf "sliced cut not promoted: %a" Supervisor.pp_rollout r);
  Alcotest.(check bool) "some candidates survive convergence" true
    (v.Slicelab.v_kept <> []);
  List.iter
    (fun r -> ignore (Workload.rpc v.Slicelab.v_ctx r))
    (Slicelab.drive_requests Workload.rkv);
  Alcotest.(check int) "no spurious verifier feedback after convergence" 0
    (Supervisor.verifier_feedback v.Slicelab.v_sup)

(* ---------- Rng: splitmix64 stream pinning ---------- *)

(* Chaos schedules, sampled slicing and the guest rand syscall all
   replay from this stream; pin its exact values so an algorithm change
   cannot silently invalidate recorded seeds. *)
let test_rng_pinned_stream () =
  let r = Rng.create 42 in
  List.iter
    (fun expected ->
      Alcotest.(check int64) "splitmix64(seed=42)" expected (Rng.next_i64 r))
    [
      0xbdd732262feb6e95L;
      0x28efe333b266f103L;
      0x47526757130f9f52L;
      0x581ce1ff0e4ae394L;
    ];
  let r7 = Rng.create 7 in
  Alcotest.(check (list int))
    "bounded draws (seed=7)"
    [ 621; 951; 336; 50; 918; 76 ]
    (List.init 6 (fun _ -> Rng.int r7 1000))

let suite =
  [
    Alcotest.test_case "defuse constructor census" `Quick test_defuse_census;
    Alcotest.test_case "defuse control vs block ends" `Quick
      test_defuse_control_matches_block_ends;
    Alcotest.test_case "defuse access widths" `Quick test_defuse_access_widths;
    Alcotest.test_case "defuse spot checks" `Quick test_defuse_spot_checks;
    Alcotest.test_case "absmem strong update + coalescing" `Quick
      test_absmem_strong_update_and_coalescing;
    Alcotest.test_case "absmem model equivalence" `Quick
      test_absmem_model_equivalence;
    Alcotest.test_case "slicer end-to-end (rkv)" `Quick test_slicer_end_to_end;
    Alcotest.test_case "slicer determinism" `Quick test_slicer_deterministic;
    Alcotest.test_case "sampled slicing determinism" `Quick
      test_slicer_sampled_deterministic;
    Alcotest.test_case "counterexample journal" `Quick
      test_slicer_counterexample_journal;
    Alcotest.test_case "converged cut is quiescent" `Quick
      test_converged_cut_is_quiescent;
    Alcotest.test_case "rng pinned stream" `Quick test_rng_pinned_stream;
  ]
