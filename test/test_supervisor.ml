(** Supervisor tests: the full circuit-breaker lifecycle (trap storm →
    trip → auto re-enable → half-open probe → re-close → abandon), the
    canary protocol on a master/worker tree, crash-loop respawn, and
    verifier feedback — each replaying bit-for-bit from a fixed seed. *)

let exe () = Crt0.link_app ~libc:Test_machine.libc Test_core.dispatch_server

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let check_log_mentions log needles =
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("log mentions " ^ needle) true (contains ~needle log))
    needles

(** A deliberately bad cut for dsrv: the blocks only wanted GET traffic
    covers. Under [`Redirect "err_path"] the same-function filter keeps
    exactly the G dispatch arm inside [handle], so every subsequent GET
    traps — a deterministic trap storm. *)
let storm_blocks () =
  let wanted = Test_core.trace_run [ "S"; "X"; "S" ] in
  let undesired = Test_core.trace_run [ "G"; "G" ] in
  (Tracediff.feature_blocks ~wanted:[ wanted ] ~undesired:[ undesired ] ())
    .Tracediff.undesired

let redirect_policy =
  { Dynacut.method_ = `First_byte; on_trap = `Redirect "err_path" }

(** Snapshot the first byte of every block (the bytes a `First_byte cut
    patches) in a pid's memory. *)
let block_bytes m pid blocks =
  let base = (exe ()).Self.base in
  let p = Machine.proc_exn m pid in
  List.map
    (fun (b : Covgraph.block) ->
      Mem.peek8 p.Proc.mem (Int64.add base (Int64.of_int b.Covgraph.b_off)))
    blocks

(* ---------- breaker lifecycle ---------- *)

let lifecycle_config =
  {
    Supervisor.default_config with
    Supervisor.window = 5_000_000L;
    max_traps = 2;
    cooldown = 10_000_000L;
    max_trips = 2;
    canary_windows = 1;
  }

(** One full lifecycle run; returns the rendered event log so two runs
    from the same seed can be compared bit-for-bit. *)
let lifecycle_run () =
  Fault.reset ();
  let blocks = storm_blocks () in
  let m, p = Test_core.boot () in
  let pid = p.Proc.pid in
  let session = Dynacut.create m ~root_pid:pid in
  let sup =
    Supervisor.create session ~config:lifecycle_config ~blocks
      ~policy:redirect_policy
  in
  let pristine = block_bytes m pid blocks in
  (match Supervisor.guarded_cut sup ~canary:false ~drive:(fun () -> ()) () with
  | Supervisor.R_promoted -> ()
  | r -> Alcotest.failf "cut: %a" Supervisor.pp_rollout r);
  Alcotest.(check string) "S unaffected" "SET-OK" (Test_core.request m "S");
  (* the S above bumped the counter: wanted GETs now answer VAL=8 *)
  (* the storm: wanted GETs now land on the error path *)
  for _ = 1 to 3 do
    Alcotest.(check string) "G storms" "ERR" (Test_core.request m "G")
  done;
  (* 3 traps > max_traps: trip #1, auto re-enable, breaker opens *)
  Supervisor.tick sup;
  (match Supervisor.breaker_state sup with
  | Supervisor.Open _ -> ()
  | b -> Alcotest.failf "expected open, got %a" Supervisor.pp_breaker b);
  Alcotest.(check int) "one trip" 1 (Supervisor.trips sup);
  Alcotest.(check bool) "journals gone" false (Supervisor.cut_live sup);
  Alcotest.(check string) "G auto-restored" "VAL=8" (Test_core.request m "G");
  Alcotest.(check (list int)) "byte-identical after re-enable" pristine
    (block_bytes m pid blocks);
  (* still cooling down: a tick inside the cooldown is a no-op *)
  Supervisor.tick sup;
  Alcotest.(check bool) "still open" true
    (match Supervisor.breaker_state sup with Supervisor.Open _ -> true | _ -> false);
  (* virtual idle time passes; the next tick half-open probes (re-cut) *)
  m.Machine.clock <- Int64.add m.Machine.clock lifecycle_config.Supervisor.cooldown;
  Supervisor.tick sup;
  (match Supervisor.breaker_state sup with
  | Supervisor.Half_open _ -> ()
  | b -> Alcotest.failf "expected half-open, got %a" Supervisor.pp_breaker b);
  Alcotest.(check bool) "probe re-cut live" true (Supervisor.cut_live sup);
  (* a healthy window closes the breaker again *)
  m.Machine.clock <- Int64.add m.Machine.clock lifecycle_config.Supervisor.window;
  Supervisor.tick sup;
  Alcotest.(check bool) "re-closed" true
    (Supervisor.breaker_state sup = Supervisor.Closed);
  (* second storm: trip #2 = max_trips — the cut is abandoned for good *)
  for _ = 1 to 3 do
    Alcotest.(check string) "G storms again" "ERR" (Test_core.request m "G")
  done;
  Supervisor.tick sup;
  Alcotest.(check bool) "abandoned" true
    (Supervisor.breaker_state sup = Supervisor.Abandoned);
  Alcotest.(check int) "two trips" 2 (Supervisor.trips sup);
  Alcotest.(check string) "feature stays enabled" "VAL=8" (Test_core.request m "G");
  Alcotest.(check (list int)) "byte-identical after abandon" pristine
    (block_bytes m pid blocks);
  (* an abandoned breaker never re-cuts, however long we wait *)
  m.Machine.clock <- Int64.add m.Machine.clock 100_000_000L;
  Supervisor.tick sup;
  Alcotest.(check bool) "stays abandoned" true
    (Supervisor.breaker_state sup = Supervisor.Abandoned);
  Supervisor.render_log sup

let test_breaker_lifecycle () =
  let log = lifecycle_run () in
  check_log_mentions log
    [
      "cut-applied";
      "breaker-tripped traps=3 trip=1";
      "reenabled";
      "half-open-probe";
      "probe-recut";
      "breaker-closed";
      "breaker-tripped traps=3 trip=2";
      "abandoned";
    ]

let test_breaker_replay () =
  let a = lifecycle_run () in
  let b = lifecycle_run () in
  Alcotest.(check string) "two runs render identical event logs" a b

(* ---------- canary rollout on a master/worker tree ---------- *)

(** A maximally bad cut for ngx: the wanted GET path under `Terminate —
    the first GET kills the process that serves it. The canary must
    absorb the blast; the master must never see the cut. *)
let ngx_storm_block () =
  Supervisor.block_of_sym (Common.app_exe Workload.ngx) ~module_:"ngx"
    ~sym:"ngx_http_get"

let canary_run () =
  Fault.reset ();
  let c = Workload.spawn Workload.ngx in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let pids = Dynacut.tree_pids session in
  Alcotest.(check int) "master + worker" 2 (List.length pids);
  let master = c.Workload.pid in
  let worker = List.hd (List.rev (List.filter (fun p -> p <> master) pids)) in
  let block = ngx_storm_block () in
  let vaddr =
    Int64.add (Common.app_exe Workload.ngx).Self.base
      (Int64.of_int block.Covgraph.b_off)
  in
  let byte_at pid =
    Mem.peek8 (Machine.proc_exn c.Workload.m pid).Proc.mem vaddr
  in
  let orig = byte_at worker in
  Alcotest.(check int) "same binary" orig (byte_at master);
  let sup =
    Supervisor.create session
      ~config:{ Supervisor.default_config with Supervisor.canary_windows = 1 }
      ~blocks:[ block ]
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Terminate }
  in
  let drive () =
    ignore
      (Workload.rpc ~max_cycles:800_000 c (Workload.http_get "/index.html"))
  in
  let rollout = Supervisor.guarded_cut sup ~canary:true ~drive () in
  Alcotest.(check bool) "canary rejected" true
    (rollout = Supervisor.R_canary_rejected);
  (* the bad cut never reached the master... *)
  Alcotest.(check int) "master untouched" orig (byte_at master);
  Alcotest.(check bool) "master alive" true
    (Proc.is_live (Machine.proc_exn c.Workload.m master));
  (* ...and the canary was reverted byte-identically (respawned from its
     pristine image after the storm killed it) *)
  Alcotest.(check int) "canary byte-original" orig (byte_at worker);
  Alcotest.(check bool) "canary alive again" true
    (Proc.is_live (Machine.proc_exn c.Workload.m worker));
  (* the tree serves wanted traffic as if nothing happened *)
  let resp = Workload.rpc c (Workload.http_get "/index.html") in
  Alcotest.(check bool)
    (Printf.sprintf "GET 200 after rejection (got %S)" resp)
    true
    (String.length resp >= 12 && String.sub resp 0 12 = "HTTP/1.0 200");
  Supervisor.render_log sup

let test_canary_rejects_bad_cut () =
  let log = canary_run () in
  check_log_mentions log [ "canary-cut"; "canary-rejected" ]

let test_canary_replay () =
  let a = canary_run () in
  let b = canary_run () in
  Alcotest.(check string) "two canary runs render identical logs" a b

(* ---------- healthy canary promotes ---------- *)

let test_canary_promotes_good_cut () =
  Fault.reset ();
  let c = Workload.spawn Workload.ngx in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let blocks = Common.web_feature_blocks Workload.ngx in
  let sup =
    Supervisor.create session
      ~config:{ Supervisor.default_config with Supervisor.canary_windows = 1 }
      ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "ngx_declined" }
  in
  let drive () =
    ignore (Workload.rpc ~max_cycles:800_000 c (Workload.http_get "/index.html"))
  in
  (match Supervisor.guarded_cut sup ~canary:true ~drive () with
  | Supervisor.R_promoted -> ()
  | r -> Alcotest.failf "expected promotion: %a" Supervisor.pp_rollout r);
  (* every pid carries the cut: the first byte of each effective block
     is int3 in both master and worker *)
  let effective = Dynacut.redirect_filter session ~sym:"ngx_declined" blocks in
  Alcotest.(check bool) "effective blocks nonempty" true (effective <> []);
  let base = (Common.app_exe Workload.ngx).Self.base in
  List.iter
    (fun pid ->
      let p = Machine.proc_exn c.Workload.m pid in
      List.iter
        (fun (b : Covgraph.block) ->
          Alcotest.(check int)
            (Printf.sprintf "pid %d off 0x%x cut" pid b.Covgraph.b_off)
            0xCC
            (Mem.peek8 p.Proc.mem (Int64.add base (Int64.of_int b.Covgraph.b_off))))
        effective)
    (Dynacut.tree_pids session);
  (* the feature is blocked, wanted traffic unaffected *)
  let put = Workload.rpc c (Workload.http_put "/up.txt" "data") in
  Alcotest.(check bool) (Printf.sprintf "PUT blocked (got %S)" put) true
    (String.length put >= 12 && String.sub put 0 12 = "HTTP/1.0 403");
  let get = Workload.rpc c (Workload.http_get "/index.html") in
  Alcotest.(check bool) "GET still 200" true
    (String.length get >= 12 && String.sub get 0 12 = "HTTP/1.0 200")

(* ---------- crash-loop respawn ---------- *)

let test_crash_loop_respawn () =
  Fault.reset ();
  let blocks = storm_blocks () in
  let m, p = Test_core.boot () in
  let pid = p.Proc.pid in
  let session = Dynacut.create m ~root_pid:pid in
  let sup =
    Supervisor.create session
      ~config:
        {
          Supervisor.default_config with
          Supervisor.max_traps = 1000;  (* keep the breaker out of the way *)
          max_respawns = 2;
        }
      ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Kill }
  in
  (match Supervisor.guarded_cut sup ~canary:false ~drive:(fun () -> ()) () with
  | Supervisor.R_promoted -> ()
  | r -> Alcotest.failf "cut: %a" Supervisor.pp_rollout r);
  let dead () = not (Proc.is_live (Machine.proc_exn m pid)) in
  (* the storm kills the server outright (un-redirected SIGTRAP)... *)
  let (_ : string) = Test_core.request m "G" in
  Alcotest.(check bool) "killed by the storm" true (dead ());
  (* ...the supervisor respawns it from the working image, cut intact *)
  Supervisor.tick sup;
  Alcotest.(check bool) "respawned" true (not (dead ()));
  Alcotest.(check string) "cut survived the respawn" "SET-OK"
    (Test_core.request m "S");
  let exe = exe () in
  let b = List.hd (Dynacut.redirect_filter session ~sym:"err_path" blocks) in
  Alcotest.(check int) "respawned image still carries int3" 0xCC
    (Mem.peek8 (Machine.proc_exn m pid).Proc.mem
       (Int64.add exe.Self.base (Int64.of_int b.Covgraph.b_off)));
  (* crash again: second (and last budgeted) respawn *)
  let (_ : string) = Test_core.request m "G" in
  Supervisor.tick sup;
  Alcotest.(check bool) "respawned again" true (not (dead ()));
  (* third crash exhausts the budget: the supervisor gives up *)
  let (_ : string) = Test_core.request m "G" in
  Supervisor.tick sup;
  Alcotest.(check bool) "respawn budget exhausted" true (dead ());
  check_log_mentions (Supervisor.render_log sup)
    [ "respawned"; "deaths=1"; "deaths=2"; "respawn-capped" ]

(* ---------- verifier feedback ---------- *)

let test_verifier_feedback_shrinks_cut () =
  Fault.reset ();
  let m, p = Test_core.boot () in
  let pid = p.Proc.pid in
  let exe = exe () in
  let get_entry = Option.get (Self.find_symbol exe "do_get") in
  (* the real feature plus a deliberate false positive: do_get's entry *)
  let fp =
    { Covgraph.b_module = "dsrv"; b_off = get_entry.Self.sym_off; b_size = 3 }
  in
  let blocks = Test_core.feature_blocks () @ [ fp ] in
  let session = Dynacut.create m ~root_pid:pid in
  let sup =
    Supervisor.create session ~config:Supervisor.default_config ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Verify }
  in
  (match Supervisor.guarded_cut sup ~canary:false ~drive:(fun () -> ()) () with
  | Supervisor.R_promoted -> ()
  | r -> Alcotest.failf "cut: %a" Supervisor.pp_rollout r);
  (* nothing logged yet: feedback is a no-op *)
  Alcotest.(check int) "no false positives yet" 0 (Supervisor.verifier_feedback sup);
  (* the wanted GET trips the verifier, which restores the byte and logs
     the address (§3.2.3) — and the request still succeeds *)
  Alcotest.(check string) "GET survives verification" "VAL=7" (Test_core.request m "G");
  Alcotest.(check int) "one false positive folded back" 1
    (Supervisor.verifier_feedback sup);
  (* the supervisor re-cut the shrunk set: do_get is out, the cut is live *)
  Alcotest.(check bool) "shrunk set excludes do_get" false
    (List.exists
       (fun (b : Covgraph.block) -> b.Covgraph.b_off = get_entry.Self.sym_off)
       (Supervisor.blocks sup));
  Alcotest.(check bool) "re-cut live" true (Supervisor.cut_live sup);
  (* GETs now run trap-free *)
  Alcotest.(check string) "GET fast path" "VAL=7" (Test_core.request m "G");
  Alcotest.(check int) "log did not grow" 1
    (List.length (Dynacut.verifier_log session ~pid));
  check_log_mentions (Supervisor.render_log sup) [ "verifier-shrunk dropped=1" ]

let suite =
  [
    Alcotest.test_case "breaker lifecycle: storm, trip, probe, abandon" `Quick
      test_breaker_lifecycle;
    Alcotest.test_case "breaker lifecycle replays bit-for-bit" `Quick
      test_breaker_replay;
    Alcotest.test_case "canary absorbs a bad cut" `Quick test_canary_rejects_bad_cut;
    Alcotest.test_case "canary rollout replays bit-for-bit" `Quick test_canary_replay;
    Alcotest.test_case "healthy canary promotes to the tree" `Quick
      test_canary_promotes_good_cut;
    Alcotest.test_case "crash-loop respawn with backoff cap" `Quick
      test_crash_loop_respawn;
    Alcotest.test_case "verifier feedback shrinks and re-cuts" `Quick
      test_verifier_feedback_shrinks_cut;
  ]
