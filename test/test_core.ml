(** End-to-end DynaCut tests: the full paper pipeline on a dispatcher
    server — trace under the collector, tracediff the feature, cut with
    each policy, exercise traps, re-enable, verify. *)

open Dsl

let libc = Test_machine.libc

(* A server with a request dispatcher: one byte selects the feature.
   'G' = read-only query (wanted), 'S' = mutation (to be disabled),
   anything else falls to the in-function error path, as §3.2.2 requires. *)
let dispatch_server =
  unit_ "dsrv"
    ~globals:[ global_q "value" [ 7L ]; global_zero "rbuf" 128; global_zero "obuf" 128 ]
    [
      func "do_get" [ "c" ]
        [
          do_ "strcpy" [ addr "obuf"; s "VAL=" ];
          do_ "itoa" [ addr "obuf" +: i 4; v "value" ];
          do_ "send" [ v "c"; addr "obuf"; call "strlen" [ addr "obuf" ] ];
          ret0;
        ];
      func "do_set" [ "c" ]
        [
          set "value" (v "value" +: i 1);
          do_ "send" [ v "c"; s "SET-OK"; i 6 ];
          ret0;
        ];
      func "handle" [ "c"; "cmd" ]
        [
          switch (v "cmd")
            [
              (71 (* G *), [ do_ "do_get" [ v "c" ] ]);
              (83 (* S *), [ label "feat_set"; do_ "do_set" [ v "c" ] ]);
            ]
            ~default:[ label "err_path"; do_ "send" [ v "c"; s "ERR"; i 3 ] ];
          ret0;
        ];
      func "main" []
        [
          decl "sfd" (call "socket" []);
          do_ "bind" [ v "sfd"; i 9200 ];
          do_ "listen" [ v "sfd" ];
          do_ "puts" [ s "ready" ];
          forever
            [
              decl "c" (call "accept" [ v "sfd" ]);
              decl "n" (call "recv" [ v "c"; addr "rbuf"; i 128 ]);
              when_ (v "n" >: i 0)
                [ do_ "handle" [ v "c"; load8 (addr "rbuf") ] ];
              do_ "close" [ v "c" ];
            ];
          ret0;
        ];
    ]

let boot () =
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "dsrv" (Crt0.link_app ~libc dispatch_server);
  let p = Machine.spawn m ~exe_path:"dsrv" () in
  (match Machine.run m ~max_cycles:2_000_000 with
  | `Idle -> ()
  | _ -> Alcotest.fail "server did not reach accept");
  (m, p)

let request m cmd =
  let c = Net.connect m.Machine.net 9200 in
  Net.client_send c cmd;
  let (_ : _) = Machine.run m ~max_cycles:2_000_000 in
  Net.client_recv c

(** Trace the server handling [cmds]; returns the drcov log. A fresh
    machine each time, like re-running the target under DynamoRIO. *)
let trace_run (cmds : string list) : Drcov.log =
  let m, p = boot () in
  let col = Collector.attach m ~pid:p.Proc.pid in
  List.iter (fun cmd -> ignore (request m cmd)) cmds;
  Collector.detach col

(** The paper's feature identification: wanted = GET + error requests,
    undesired = SET requests. *)
let feature_blocks () =
  let wanted = trace_run [ "G"; "G"; "X"; "G" ] in
  let undesired = trace_run [ "G"; "S"; "S" ] in
  (Tracediff.feature_blocks ~wanted:[ wanted ] ~undesired:[ undesired ] ()).Tracediff.undesired

let test_tracediff_finds_feature () =
  let blocks = feature_blocks () in
  Alcotest.(check bool) "found undesired blocks" true (List.length blocks > 0);
  (* all identified blocks belong to the app, not libc *)
  List.iter
    (fun (b : Covgraph.block) ->
      Alcotest.(check string) "module" "dsrv" b.Covgraph.b_module)
    blocks;
  (* the feature entry (label feat_set) must be among them *)
  let exe = Crt0.link_app ~libc dispatch_server in
  let feat = Option.get (Self.find_symbol exe "feat_set") in
  Alcotest.(check bool) "contains feature entry" true
    (List.exists (fun (b : Covgraph.block) -> b.Covgraph.b_off = feat.Self.sym_off) blocks);
  (* ...and nothing that GET traffic needs: do_get's entry is not listed *)
  let get_entry = Option.get (Self.find_symbol exe "do_get") in
  Alcotest.(check bool) "do_get untouched" true
    (not
       (List.exists
          (fun (b : Covgraph.block) -> b.Covgraph.b_off = get_entry.Self.sym_off)
          blocks))

let test_cut_kill_policy () =
  let blocks = feature_blocks () in
  let m, p = boot () in
  Alcotest.(check string) "get before" "VAL=7" (request m "G");
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  let _journals, _t =
    Dynacut.cut session ~blocks ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Kill }
  in
  Alcotest.(check string) "get still works" "VAL=7" (request m "G");
  (* hitting the blocked feature kills the server (default SIGTRAP) *)
  let (_ : string) = request m "S" in
  match (Machine.proc_exn m p.Proc.pid).Proc.state with
  | Proc.Killed s -> Alcotest.(check int) "SIGTRAP" Abi.sigtrap s
  | st -> Alcotest.failf "expected SIGTRAP kill, got %s" (Proc.state_to_string st)

let test_cut_redirect_policy () =
  let blocks = feature_blocks () in
  let m, p = boot () in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  let _journals, t =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "err_path" }
  in
  Alcotest.(check bool) "timings positive" true (Dynacut.total_time t >= 0.);
  (* blocked feature now answers with the app's own error path *)
  Alcotest.(check string) "S gets ERR" "ERR" (request m "S");
  Alcotest.(check bool) "server alive" true (Proc.is_live (Machine.proc_exn m p.Proc.pid));
  (* wanted feature unaffected; state not mutated by the blocked SET *)
  Alcotest.(check string) "G still served" "VAL=7" (request m "G");
  Alcotest.(check bool) "handler was hit" true
    (Dynacut.handler_hits session ~pid:p.Proc.pid >= 1L)

let test_cut_terminate_policy () =
  let blocks = feature_blocks () in
  let m, p = boot () in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  let _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Terminate }
  in
  let (_ : string) = request m "S" in
  match (Machine.proc_exn m p.Proc.pid).Proc.state with
  | Proc.Exited c -> Alcotest.(check int) "handler exit status" Handler.blocked_exit_status c
  | st -> Alcotest.failf "expected exit(13), got %s" (Proc.state_to_string st)

let test_reenable_restores_feature () =
  let blocks = feature_blocks () in
  let m, p = boot () in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  let journals, _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "err_path" }
  in
  Alcotest.(check string) "blocked" "ERR" (request m "S");
  let (_ : Dynacut.timings) = Dynacut.reenable session journals in
  Alcotest.(check string) "re-enabled" "SET-OK" (request m "S");
  Alcotest.(check string) "state mutated again" "VAL=8" (request m "G");
  Alcotest.(check bool) "alive" true (Proc.is_live (Machine.proc_exn m p.Proc.pid))

let test_cut_wipe_policy () =
  let blocks = feature_blocks () in
  let m, p = boot () in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  let journals, _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `Wipe; on_trap = `Redirect "err_path" }
  in
  Alcotest.(check string) "wiped feature redirects" "ERR" (request m "S");
  Alcotest.(check string) "get fine" "VAL=7" (request m "G");
  (* wiping really zapped every byte: check memory is 0xCC over a block *)
  let p' = Machine.proc_exn m p.Proc.pid in
  let exe = Option.get (Vfs.find_self m.Machine.fs "dsrv") in
  let feat = Option.get (Self.find_symbol exe "feat_set") in
  let b =
    List.find
      (fun (b : Covgraph.block) -> b.Covgraph.b_off = feat.Self.sym_off)
      blocks
  in
  let va = Int64.add exe.Self.base (Int64.of_int b.Covgraph.b_off) in
  for k = 0 to b.Covgraph.b_size - 1 do
    Alcotest.(check int) "0xCC" 0xCC (Mem.peek8 p'.Proc.mem (Int64.add va (Int64.of_int k)))
  done;
  (* and reenable brings the bytes back *)
  let (_ : Dynacut.timings) = Dynacut.reenable session journals in
  Alcotest.(check string) "restored" "SET-OK" (request m "S")

let test_verify_policy_restores_and_logs () =
  (* Over-elimination check (§3.2.3): deliberately block a *wanted* block
     (do_get's body) under `Verify; the first GET trips the handler,
     which restores the byte and logs the false positive — and the
     request still succeeds. *)
  let m, p = boot () in
  let exe = Option.get (Vfs.find_self m.Machine.fs "dsrv") in
  let get_entry = Option.get (Self.find_symbol exe "do_get") in
  let blocks =
    [ { Covgraph.b_module = "dsrv"; b_off = get_entry.Self.sym_off; b_size = 3 } ]
  in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  let _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Verify }
  in
  Alcotest.(check string) "request survives verification" "VAL=7" (request m "G");
  let log = Dynacut.verifier_log session ~pid:p.Proc.pid in
  Alcotest.(check int) "one false positive logged" 1 (List.length log);
  let expected = Int64.add exe.Self.base (Int64.of_int get_entry.Self.sym_off) in
  Alcotest.(check int64) "logged address" expected (List.hd log);
  (* second GET takes the restored fast path: log stays at 1 *)
  Alcotest.(check string) "again" "VAL=7" (request m "G");
  Alcotest.(check int) "still one" 1
    (List.length (Dynacut.verifier_log session ~pid:p.Proc.pid))

let test_cut_preserves_connection () =
  (* a client mid-connection survives the rewrite (TCP repair) *)
  let blocks = feature_blocks () in
  let m, p = boot () in
  let c = Net.connect m.Machine.net 9200 in
  let (_ : _) = Machine.run m ~max_cycles:500_000 in
  (* server is now blocked in recv on this connection *)
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  let _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "err_path" }
  in
  Net.client_send c "G";
  let (_ : _) = Machine.run m ~max_cycles:2_000_000 in
  Alcotest.(check string) "request completed across cut" "VAL=7" (Net.client_recv c)

let test_unmap_policy () =
  let blocks = feature_blocks () in
  let m, p = boot () in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  let _ =
    Dynacut.cut session ~blocks ~policy:{ Dynacut.method_ = `Unmap_pages; on_trap = `Kill }
  in
  Alcotest.(check string) "get fine" "VAL=7" (request m "G");
  let (_ : string) = request m "S" in
  (* feature blocks were either unmapped (SIGSEGV) or wiped (SIGTRAP) *)
  match (Machine.proc_exn m p.Proc.pid).Proc.state with
  | Proc.Killed s ->
      Alcotest.(check bool) "killed by segv/trap" true (s = Abi.sigsegv || s = Abi.sigtrap)
  | st -> Alcotest.failf "expected kill, got %s" (Proc.state_to_string st)

let test_collector_nudge_phases () =
  (* nudge splits coverage into init and serving phases (§3.1) *)
  let m, p = boot () in
  let col = Collector.attach m ~pid:p.Proc.pid in
  (* boot() already ran initialization; nudge now and serve *)
  let (_ : Drcov.log) = Collector.nudge col in
  ignore (request m "G");
  let serving = Collector.detach col in
  Alcotest.(check bool) "serving coverage nonempty" true (Drcov.bb_count serving > 0)

let test_cfg_total_blocks () =
  let exe = Crt0.link_app ~libc dispatch_server in
  let cfg = Cfg.of_self exe in
  let n = Cfg.block_count cfg in
  Alcotest.(check bool) "plausible block count" true (n > 20 && n < 5000);
  (* every traced block must be a prefix-aligned piece of static code:
     executed blocks start at static block starts *)
  let log = trace_run [ "G"; "S"; "X" ] in
  let g = Covgraph.of_log log in
  let starts =
    List.map (fun (b : Cfg.block) -> b.Cfg.bb_off) (Cfg.real_blocks cfg)
  in
  List.iter
    (fun (b : Covgraph.block) ->
      if b.Covgraph.b_module = "dsrv" then
        Alcotest.(check bool)
          (Printf.sprintf "block 0x%x aligns with static CFG" b.Covgraph.b_off)
          true
          (List.mem b.Covgraph.b_off starts))
    (Covgraph.blocks g)

(* ---------- handler_hits / verifier_log observability ---------- *)

let test_counters_empty_session () =
  (* before any cut — and for unknown pids — both counters read empty *)
  let m, p = boot () in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  Alcotest.(check int64) "no hits before a cut" 0L
    (Dynacut.handler_hits session ~pid:p.Proc.pid);
  Alcotest.(check (list int64)) "no verifier log before a cut" []
    (Dynacut.verifier_log session ~pid:p.Proc.pid);
  Alcotest.(check int64) "unknown pid reads zero" 0L
    (Dynacut.handler_hits session ~pid:9999);
  Alcotest.(check (list int64)) "unknown pid reads empty" []
    (Dynacut.verifier_log session ~pid:9999)

let test_counters_multi_pid () =
  (* on a master/worker tree the counters are per-pid: only the worker
     that serves the blocked request accumulates hits *)
  let c = Workload.spawn Workload.ngx in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let blocks = Common.web_feature_blocks Workload.ngx in
  let _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "ngx_declined" }
  in
  let pids = Dynacut.tree_pids session in
  Alcotest.(check int) "master + worker" 2 (List.length pids);
  List.iter
    (fun pid ->
      Alcotest.(check int64) (Printf.sprintf "pid %d starts at zero" pid) 0L
        (Dynacut.handler_hits session ~pid))
    pids;
  let (_ : string) = Workload.rpc c "PUT /u.txt HTTP/1.0\r\n\r\ndata" in
  let with_hits, without =
    List.partition (fun pid -> Dynacut.handler_hits session ~pid > 0L) pids
  in
  Alcotest.(check int) "exactly one pid served the trap" 1 (List.length with_hits);
  Alcotest.(check bool) "the master stayed clean" true
    (List.mem c.Workload.pid without);
  (* redirect mode logs nothing to the verifier log, on any pid *)
  List.iter
    (fun pid ->
      Alcotest.(check (list int64)) (Printf.sprintf "pid %d verifier empty" pid)
        [] (Dynacut.verifier_log session ~pid))
    pids

let test_counters_survive_reenable () =
  (* the injected library stays mapped across a re-enable, so the
     counters remain readable: hits persist, the log does not grow *)
  let blocks = feature_blocks () in
  let m, p = boot () in
  let pid = p.Proc.pid in
  let session = Dynacut.create m ~root_pid:pid in
  let journals, _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "err_path" }
  in
  Alcotest.(check string) "blocked" "ERR" (request m "S");
  let hits = Dynacut.handler_hits session ~pid in
  Alcotest.(check bool) "trap counted" true (hits >= 1L);
  let (_ : Dynacut.timings) = Dynacut.reenable session journals in
  Alcotest.(check string) "feature back" "SET-OK" (request m "S");
  Alcotest.(check int64) "hits persist across re-enable" hits
    (Dynacut.handler_hits session ~pid);
  Alcotest.(check (list int64)) "verifier log still empty" []
    (Dynacut.verifier_log session ~pid)

let test_counters_after_resident_lib_respawn () =
  (* regression: a later cut overwrites the pristine image with the
     handler lib already resident. A pid respawned from that image gets
     no fresh injection on the next cut (the reuse path), so the cut
     must re-record the lib base — otherwise handler_hits reads zero
     while traps are being taken *)
  let blocks = feature_blocks () in
  let m, p = boot () in
  let pid = p.Proc.pid in
  let session = Dynacut.create m ~root_pid:pid in
  let redirect = { Dynacut.method_ = `First_byte; on_trap = `Redirect "err_path" } in
  (* cut 1 injects the lib; the re-enable leaves it mapped *)
  let journals, _ = Dynacut.cut session ~blocks ~policy:redirect in
  let (_ : Dynacut.timings) = Dynacut.reenable session journals in
  (* cut 2's checkpoint re-saves the pristine image — lib inside — and
     the first blocked request kills the process *)
  let _ =
    Dynacut.cut session ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Terminate }
  in
  let (_ : string) = request m "S" in
  Alcotest.(check bool) "terminated" false (Proc.is_live (Machine.proc_exn m pid));
  let (_ : Proc.t) = Restore.respawn m ~path:(Dynacut.pristine_path session pid) in
  Dynacut.forget_pid session ~pid;
  (* cut 3 finds the lib resident and skips injection; the counter must
     still be wired up *)
  let _ = Dynacut.cut session ~blocks ~policy:redirect in
  Alcotest.(check string) "blocked again" "ERR" (request m "S");
  Alcotest.(check bool) "hits visible after resident-lib respawn" true
    (Dynacut.handler_hits session ~pid >= 1L)

let suite =
  [
    Alcotest.test_case "tracediff finds the feature" `Quick test_tracediff_finds_feature;
    Alcotest.test_case "counters: empty session and unknown pid" `Quick
      test_counters_empty_session;
    Alcotest.test_case "counters: per-pid across a worker tree" `Quick
      test_counters_multi_pid;
    Alcotest.test_case "counters: survive re-enable" `Quick
      test_counters_survive_reenable;
    Alcotest.test_case "counters: resident-lib respawn keeps them wired" `Quick
      test_counters_after_resident_lib_respawn;
    Alcotest.test_case "cut: kill policy" `Quick test_cut_kill_policy;
    Alcotest.test_case "cut: redirect policy (403-style)" `Quick test_cut_redirect_policy;
    Alcotest.test_case "cut: terminate-handler policy" `Quick test_cut_terminate_policy;
    Alcotest.test_case "re-enable restores the feature" `Quick test_reenable_restores_feature;
    Alcotest.test_case "cut: wipe policy" `Quick test_cut_wipe_policy;
    Alcotest.test_case "verifier restores + logs false positives" `Quick
      test_verify_policy_restores_and_logs;
    Alcotest.test_case "cut preserves live connections" `Quick test_cut_preserves_connection;
    Alcotest.test_case "cut: unmap policy" `Quick test_unmap_policy;
    Alcotest.test_case "collector nudge phases" `Quick test_collector_nudge_phases;
    Alcotest.test_case "static CFG aligns with dynamic blocks" `Quick test_cfg_total_blocks;
  ]
