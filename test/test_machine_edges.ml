(** Machine edge cases: signal semantics, syscall error paths, scheduler
    behaviour — the corners DynaCut's rewriting leans on. *)

open Dsl

let libc = Test_machine.libc

let boot = Test_machine.boot
let exit_status = Test_machine.exit_status

(* ---------- signals ---------- *)

let test_bad_sigreturn_magic_kills () =
  (* calling sigreturn with rsp pointing at garbage must not be a
     privilege primitive: the kernel validates the frame magic *)
  let items =
    [
      Asm.Section ".text";
      Asm.Global "main";
      Asm.Label "main";
      Asm.Ins (Insn.Mov_ri (Reg.Rax, Int64.of_int Abi.sys_sigreturn));
      Asm.Ins Insn.Syscall;
      Asm.Ins Insn.Ret;
    ]
  in
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  let obj = Asm.assemble ~name:"bsr2" (items @ Crt0.items) in
  Vfs.add_self m.Machine.fs "bsr2" (Link.link_exec ~name:"bsr2" ~entry:"_start" ~libs:[ libc ] obj);
  let p = Machine.spawn m ~exe_path:"bsr2" () in
  let (_ : _) = Machine.run m ~max_cycles:10_000 in
  match p.Proc.state with
  | Proc.Killed s -> Alcotest.(check int) "SIGSEGV" Abi.sigsegv s
  | st -> Alcotest.failf "expected kill, got %s" (Proc.state_to_string st)

let test_sigkill_uncatchable () =
  let u =
    unit_ "skill"
      [
        func "handler" [ "signum"; "frame" ] [ expr (v "signum"); expr (v "frame"); ret0 ];
        func "main" []
          [
            (* try to catch SIGKILL: the kernel must refuse *)
            ret (call "sigaction" [ i Abi.sigkill; addr "handler"; i 0 ]);
          ];
      ]
  in
  let _, p = boot u in
  (match exit_status p with
  | `Exit c -> Alcotest.(check bool) "sigaction(SIGKILL) rejected" true (c <> 0)
  | _ -> Alcotest.fail "expected exit");
  (* and SIGKILL posted from outside always kills *)
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "loop"
    (Crt0.link_app ~libc (unit_ "loop" [ func "main" [] [ forever [ expr (i 1) ]; ret0 ] ]));
  let p = Machine.spawn m ~exe_path:"loop" () in
  let (_ : _) = Machine.run m ~max_cycles:5_000 in
  Machine.post_signal m ~pid:p.Proc.pid ~signum:Abi.sigkill;
  match p.Proc.state with
  | Proc.Killed s -> Alcotest.(check int) "SIGKILL" Abi.sigkill s
  | st -> Alcotest.failf "not killed: %s" (Proc.state_to_string st)

let test_signal_interrupts_blocked_accept () =
  (* deliver a handled signal to a process blocked in accept: the handler
     runs, sigreturn re-executes the syscall, the server still accepts *)
  let u =
    unit_ "sia"
      ~globals:[ global_q "sig_count" [ 0L ]; global_zero "rb" 64 ]
      [
        func "handler" [ "signum"; "frame" ]
          [
            expr (v "signum");
            expr (v "frame");
            set "sig_count" (v "sig_count" +: i 1);
            ret0;
          ];
        func "main" []
          [
            do_ "sigaction" [ i Abi.sigterm; addr "handler"; addr "rst" ];
            decl "sfd" (call "socket" []);
            do_ "bind" [ v "sfd"; i 9300 ];
            do_ "listen" [ v "sfd" ];
            forever
              [
                decl "c" (call "accept" [ v "sfd" ]);
                decl "n" (call "recv" [ v "c"; addr "rb"; i 64 ]);
                expr (v "n");
                do_ "send" [ v "c"; s "ok"; i 2 ];
                do_ "close" [ v "c" ];
              ];
            ret0;
          ];
      ]
  in
  let rst =
    [
      Asm.Section ".text";
      Asm.Global "rst";
      Asm.Label "rst";
      Asm.Ins (Insn.Mov_ri (Reg.Rax, Int64.of_int Abi.sys_sigreturn));
      Asm.Ins Insn.Syscall;
    ]
  in
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  let obj = Asm.assemble ~name:"sia" (Compile.compile_unit u @ rst @ Crt0.items) in
  Vfs.add_self m.Machine.fs "sia" (Link.link_exec ~name:"sia" ~entry:"_start" ~libs:[ libc ] obj);
  let p = Machine.spawn m ~exe_path:"sia" () in
  let (_ : _) = Machine.run m ~max_cycles:1_000_000 in
  Alcotest.(check bool) "blocked in accept" true
    (match p.Proc.state with Proc.Blocked (Proc.On_accept _) -> true | _ -> false);
  Machine.post_signal m ~pid:p.Proc.pid ~signum:Abi.sigterm;
  let (_ : _) = Machine.run m ~max_cycles:100_000 in
  (* handler ran, then the syscall restarted and blocked again *)
  let exe = Option.get (Vfs.find_self m.Machine.fs "sia") in
  let sc = Option.get (Self.find_symbol exe "sig_count") in
  let v = Mem.read64 p.Proc.mem (Int64.add exe.Self.base (Int64.of_int sc.Self.sym_off)) in
  Alcotest.(check int64) "handler ran once" 1L v;
  Alcotest.(check bool) "re-blocked" true
    (match p.Proc.state with Proc.Blocked (Proc.On_accept _) -> true | _ -> false);
  (* and the server still serves *)
  let c = Net.connect m.Machine.net 9300 in
  Net.client_send c "x";
  let (_ : _) = Machine.run m ~max_cycles:1_000_000 in
  Alcotest.(check string) "serves after signal" "ok" (Net.client_recv c)

(* ---------- syscall error paths ---------- *)

let test_syscall_errors () =
  let _, p =
    boot
      (unit_ "errs"
         ~globals:[ global_zero "b" 16 ]
         [
           func "main" []
             [
               (* open missing file *)
               when_ (call "open" [ s "/nope" ] <>: i Abi.enoent) [ ret (i 1) ];
               (* read on a bad fd *)
               when_ (call "read" [ i 99; addr "b"; i 4 ] <>: i Abi.ebadf) [ ret (i 2) ];
               (* write to a listener fd *)
               decl "sfd" (call "socket" []);
               when_ (call "write" [ v "sfd"; addr "b"; i 1 ] <>: i Abi.einval) [ ret (i 3) ];
               (* close twice *)
               when_ (call "close" [ v "sfd" ] <>: i 0) [ ret (i 4) ];
               when_ (call "close" [ v "sfd" ] <>: i Abi.ebadf) [ ret (i 5) ];
               (* mmap at an occupied fixed address *)
               decl "a" (call "mmap" [ i 0; i 4096; i 6 ]);
               when_ (call "mmap" [ v "a"; i 4096; i 6 ] <>: i Abi.enomem) [ ret (i 6) ];
               (* unknown syscall via raw number is exercised in asm below *)
               ret0;
             ];
         ])
  in
  Test_machine.check_exit p

let test_file_read_to_eof () =
  let m = Machine.create () in
  Vfs.add m.Machine.fs "/f" "abcdef";
  Vfs.add_self m.Machine.fs "libc.so" libc;
  let u =
    unit_ "eof"
      ~globals:[ global_zero "b" 16 ]
      [
        func "main" []
          [
            decl "fd" (call "open" [ s "/f" ]);
            when_ (call "read" [ v "fd"; addr "b"; i 4 ] <>: i 4) [ ret (i 1) ];
            when_ (call "read" [ v "fd"; addr "b"; i 4 ] <>: i 2) [ ret (i 2) ];
            when_ (call "read" [ v "fd"; addr "b"; i 4 ] <>: i 0) [ ret (i 3) ];
            ret0;
          ];
      ]
  in
  Vfs.add_self m.Machine.fs "eof" (Crt0.link_app ~libc u);
  let p = Machine.spawn m ~exe_path:"eof" () in
  let (_ : _) = Machine.run m ~max_cycles:200_000 in
  Test_machine.check_exit p

let test_gettime_monotonic () =
  let _, p =
    boot
      (unit_ "gt"
         [
           func "main" []
             [
               decl "a" (call "gettime" []);
               decl "b" (call "gettime" []);
               when_ (v "b" <=: v "a") [ ret (i 1) ];
               ret0;
             ];
         ])
  in
  Test_machine.check_exit p

let test_guest_kill_guest () =
  (* parent forks a looping child and SIGKILLs it *)
  let _, p =
    boot
      (unit_ "gk"
         [
           func "main" []
             [
               decl "pid" (call "fork" []);
               when_ (v "pid" ==: i 0) [ forever [ expr (i 1) ]; ret0 ];
               do_ "nanosleep" [ i 2000 ];
               do_ "kill" [ v "pid"; i Abi.sigkill ];
               ret0;
             ];
         ])
  in
  Test_machine.check_exit p

let test_hlt_kills () =
  let items =
    [
      Asm.Section ".text";
      Asm.Global "main";
      Asm.Label "main";
      Asm.Ins Insn.Hlt;
      Asm.Ins Insn.Ret;
    ]
  in
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  let obj = Asm.assemble ~name:"h" (items @ Crt0.items) in
  Vfs.add_self m.Machine.fs "h" (Link.link_exec ~name:"h" ~entry:"_start" ~libs:[ libc ] obj);
  let p = Machine.spawn m ~exe_path:"h" () in
  let (_ : _) = Machine.run m ~max_cycles:1_000 in
  match p.Proc.state with
  | Proc.Killed s -> Alcotest.(check int) "SIGILL" Abi.sigill s
  | st -> Alcotest.failf "expected kill, got %s" (Proc.state_to_string st)

let test_stack_overflow_double_fault () =
  (* unbounded recursion blows the stack; the fault-during-frame-push
     path must terminate rather than loop *)
  let _, p =
    boot ~max_cycles:20_000_000
      (unit_ "so"
         [
           func "rec" [ "n" ] [ ret (call "rec" [ v "n" +: i 1 ]) ];
           func "main" [] [ ret (call "rec" [ i 0 ]) ];
         ])
  in
  match exit_status p with
  | `Killed s -> Alcotest.(check int) "SIGSEGV" Abi.sigsegv s
  | _ -> Alcotest.fail "expected stack-overflow kill"

let test_scheduler_fairness () =
  (* two forked busy loops plus a sleeper: all make progress *)
  let u =
    unit_ "fair"
      ~globals:[ global_q "a" [ 0L ]; global_q "b" [ 0L ] ]
      [
        func "main" []
          [
            decl "pid" (call "fork" []);
            if_ (v "pid" ==: i 0)
              [
                decl "k" (i 0);
                while_ (v "k" <: i 5000) [ set "a" (v "a" +: i 1); set "k" (v "k" +: i 1) ];
                ret0;
              ]
              [
                decl "k2" (i 0);
                while_ (v "k2" <: i 5000) [ set "b" (v "b" +: i 1); set "k2" (v "k2" +: i 1) ];
                ret0;
              ];
          ];
      ]
  in
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "fair" (Crt0.link_app ~libc u);
  let root = Machine.spawn m ~exe_path:"fair" () in
  let (_ : _) = Machine.run m ~max_cycles:10_000_000 in
  List.iter
    (fun (q : Proc.t) -> Alcotest.(check bool) "finished" true (q.Proc.state = Proc.Exited 0))
    (Machine.all_procs m);
  ignore root

let test_frozen_process_not_scheduled () =
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "loop"
    (Crt0.link_app ~libc (unit_ "loop" [ func "main" [] [ forever [ expr (i 1) ]; ret0 ] ]));
  let p = Machine.spawn m ~exe_path:"loop" () in
  let (_ : _) = Machine.run m ~max_cycles:1_000 in
  Machine.freeze m ~pid:p.Proc.pid;
  let before = p.Proc.retired in
  let (_ : _) = Machine.run m ~max_cycles:10_000 in
  Alcotest.(check int64) "no instructions while frozen" before p.Proc.retired;
  Machine.thaw m ~pid:p.Proc.pid;
  let (_ : _) = Machine.run m ~max_cycles:1_000 in
  Alcotest.(check bool) "runs after thaw" true (p.Proc.retired > before)

(* ---------- multi-listener fan-out (SO_REUSEPORT idiom) ---------- *)

let test_net_fanout_round_robin () =
  let net = Net.create () in
  let l1 = Net.listen ~owner:1 net 9400 in
  let l2 = Net.listen ~owner:2 net 9400 in
  let l3 = Net.listen ~owner:3 net 9400 in
  (* six connections round-robin across the three accepting listeners *)
  let owners =
    List.init 6 (fun _ -> (snd (Net.route net 9400)).Net.l_owner)
  in
  Alcotest.(check (list int)) "rr order" [ 1; 2; 3; 1; 2; 3 ] owners;
  Alcotest.(check int) "l1 backlog" 2 (List.length l1.Net.backlog);
  Alcotest.(check int) "l2 backlog" 2 (List.length l2.Net.backlog);
  Alcotest.(check int) "l3 backlog" 2 (List.length l3.Net.backlog)

let test_net_drain_skips_and_refuses () =
  let net = Net.create () in
  let l1 = Net.listen ~owner:1 net 9401 in
  let l2 = Net.listen ~owner:2 net 9401 in
  (* drained listeners drop out of the rotation... *)
  l1.Net.accepting <- false;
  let owners =
    List.init 3 (fun _ -> (snd (Net.route net 9401)).Net.l_owner)
  in
  Alcotest.(check (list int)) "only l2 serves" [ 2; 2; 2 ] owners;
  (* ...and with every listener drained the connection is refused *)
  l2.Net.accepting <- false;
  (match Net.connect net 9401 with
  | (_ : Net.conn) -> Alcotest.fail "expected Refused"
  | exception Net.Refused p -> Alcotest.(check int) "port" 9401 p);
  (* undrain brings the port back *)
  l1.Net.accepting <- true;
  Alcotest.(check int) "back to l1" 1 (snd (Net.route net 9401)).Net.l_owner

let test_net_owner_keyed_lookup () =
  let net = Net.create () in
  let l1 = Net.listen ~owner:1 net 9402 in
  let l2 = Net.listen ~owner:2 net 9402 in
  (match Net.find_listener_owned net ~port:9402 ~owner:2 with
  | Some l -> Alcotest.(check bool) "owner 2's listener" true (l == l2)
  | None -> Alcotest.fail "owner 2 lost its listener");
  Alcotest.(check bool) "unknown owner"
    true
    (Net.find_listener_owned net ~port:9402 ~owner:99 = None);
  (* sole-listener fallback: a single-app port ignores ownership so
     pre-fleet callers keep working *)
  let sole = Net.listen ~owner:7 net 9403 in
  (match Net.find_listener_owned net ~port:9403 ~owner:99 with
  | Some l -> Alcotest.(check bool) "sole fallback" true (l == sole)
  | None -> Alcotest.fail "sole-listener fallback broken");
  ignore l1

let test_net_bounded_backlog_refuses () =
  let net = Net.create () in
  let l = Net.listen ~owner:1 net 9404 in
  Alcotest.(check bool) "unbounded by default" false (Net.backlog_full l);
  Net.set_backlog_max l 2;
  let c1 = Net.connect net 9404 in
  let (_ : Net.conn) = Net.connect net 9404 in
  Alcotest.(check int) "depth readback" 2 (Net.backlog_depth l);
  Alcotest.(check bool) "full" true (Net.backlog_full l);
  (* a full accept queue bounces the connection instead of queueing it *)
  (match Net.connect net 9404 with
  | (_ : Net.conn) -> Alcotest.fail "expected Refused"
  | exception Net.Refused p -> Alcotest.(check int) "port" 9404 p);
  (* accepting one frees a slot *)
  (match Net.server_accept l with
  | Some _ -> ()
  | None -> Alcotest.fail "accept failed");
  Alcotest.(check bool) "slot freed" false (Net.backlog_full l);
  let (_ : Net.conn) = Net.connect net 9404 in
  Alcotest.(check bool) "full again" true (Net.backlog_full l);
  ignore c1

let test_net_deadline_expiry () =
  let net = Net.create () in
  let (_ : Net.listener) = Net.listen ~owner:1 net 9405 in
  let c = Net.connect net 9405 in
  Alcotest.(check bool) "no deadline by default" false
    (Net.expired c ~now:Int64.max_int);
  Net.set_deadline c 1_000L;
  Alcotest.(check (option int64)) "deadline readback" (Some 1_000L)
    (Net.deadline c);
  Alcotest.(check bool) "before" false (Net.expired c ~now:999L);
  (* inclusive: reaching the deadline exactly counts as expiry, so a
     clock advanced *to* the deadline cannot livelock a poller *)
  Alcotest.(check bool) "at" true (Net.expired c ~now:1_000L);
  Alcotest.(check bool) "after" true (Net.expired c ~now:1_001L)

let test_net_drain_undrain_racing () =
  let net = Net.create () in
  let l1 = Net.listen ~owner:1 net 9406 in
  let l2 = Net.listen ~owner:2 net 9406 in
  let owner () = (snd (Net.route net 9406)).Net.l_owner in
  Alcotest.(check int) "rr starts at l1" 1 (owner ());
  (* drain mid-rotation: the cursor re-targets the survivors *)
  l2.Net.accepting <- false;
  Alcotest.(check int) "l2 drained" 1 (owner ());
  (* flip the drained side between routes *)
  l2.Net.accepting <- true;
  l1.Net.accepting <- false;
  Alcotest.(check int) "flipped to l2" 2 (owner ());
  Alcotest.(check int) "still l2" 2 (owner ());
  (* both drained: refused, not queued *)
  l2.Net.accepting <- false;
  (match Net.route net 9406 with
  | (_ : Net.conn * Net.listener) -> Alcotest.fail "expected Refused"
  | exception Net.Refused p -> Alcotest.(check int) "port" 9406 p);
  (* undrain both: the rotation resumes over the full set *)
  l1.Net.accepting <- true;
  l2.Net.accepting <- true;
  let seen = List.init 4 (fun _ -> owner ()) in
  Alcotest.(check bool) "both serve again" true
    (List.mem 1 seen && List.mem 2 seen)

let test_net_guest_fleet_fanout () =
  (* two guest echo servers bind the same port on one machine; the
     kernel fans incoming connections out across both processes *)
  let m = Machine.create () in
  Vfs.add_self m.Machine.fs "libc.so" libc;
  Vfs.add_self m.Machine.fs "echo" (Crt0.link_app ~libc Test_machine.echo_server);
  let p1 = Machine.spawn m ~exe_path:"echo" () in
  let p2 = Machine.spawn m ~exe_path:"echo" () in
  let (_ : _) = Machine.run m ~max_cycles:2_000_000 in
  let ls = Net.listeners_on m.Machine.net 8080 in
  Alcotest.(check int) "two listeners on the port" 2 (List.length ls);
  let serve text =
    let c = Net.connect m.Machine.net 8080 in
    Net.client_send c text;
    let (_ : _) = Machine.run m ~max_cycles:1_000_000 in
    Net.client_recv c
  in
  Alcotest.(check string) "echo 1" "one" (serve "one");
  Alcotest.(check string) "echo 2" "two" (serve "two");
  (* both processes served one request each *)
  let retired p = (p : Proc.t).Proc.retired in
  Alcotest.(check bool) "both ran" true
    (retired p1 > 0L && retired p2 > 0L);
  (* freeze one worker: its listener stays registered but the live one
     keeps serving both slots of the rotation *)
  Machine.freeze m ~pid:p2.Proc.pid;
  (match Net.find_listener_owned m.Machine.net ~port:8080 ~owner:p2.Proc.pid with
  | Some l -> l.Net.accepting <- false
  | None -> Alcotest.fail "frozen worker lost its listener");
  Alcotest.(check string) "echo 3" "three" (serve "three");
  Alcotest.(check string) "echo 4" "four" (serve "four")

let suite =
  [
    Alcotest.test_case "bad sigreturn magic" `Quick test_bad_sigreturn_magic_kills;
    Alcotest.test_case "SIGKILL uncatchable" `Quick test_sigkill_uncatchable;
    Alcotest.test_case "signal interrupts blocked accept" `Quick
      test_signal_interrupts_blocked_accept;
    Alcotest.test_case "syscall error paths" `Quick test_syscall_errors;
    Alcotest.test_case "file read to EOF" `Quick test_file_read_to_eof;
    Alcotest.test_case "gettime monotonic" `Quick test_gettime_monotonic;
    Alcotest.test_case "guest kills guest" `Quick test_guest_kill_guest;
    Alcotest.test_case "hlt kills" `Quick test_hlt_kills;
    Alcotest.test_case "stack overflow double fault" `Quick test_stack_overflow_double_fault;
    Alcotest.test_case "scheduler fairness" `Quick test_scheduler_fairness;
    Alcotest.test_case "frozen process not scheduled" `Quick test_frozen_process_not_scheduled;
    Alcotest.test_case "net fan-out round robin" `Quick test_net_fanout_round_robin;
    Alcotest.test_case "net drain skips and refuses" `Quick test_net_drain_skips_and_refuses;
    Alcotest.test_case "net owner-keyed lookup" `Quick test_net_owner_keyed_lookup;
    Alcotest.test_case "net bounded backlog refuses" `Quick
      test_net_bounded_backlog_refuses;
    Alcotest.test_case "net deadline expiry" `Quick test_net_deadline_expiry;
    Alcotest.test_case "net drain/undrain racing" `Quick
      test_net_drain_undrain_racing;
    Alcotest.test_case "net guest fleet fan-out" `Quick test_net_guest_fleet_fanout;
  ]
