(** Fleet orchestration: wave planning, the fleet manifest, rolling
    rollouts (complete + halt), the drift closed loop, and fleet-wide
    crash recovery — all replay-exact from a fixed seed. *)

let lapp = Workload.ltpd
let lget = "GET /index.html HTTP/1.0\r\n\r\n"
let lput = "PUT /up.txt HTTP/1.0\r\n\r\nbody"
let lblocks = lazy (Common.web_feature_blocks lapp)

let lpolicy =
  { Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }

let fleet_boot ?balancer ?(traced = false) ~n () =
  Obs.reset ();
  Fault.reset ();
  (* force the tracing (which spawns throwaway machines) before the
     fleet machine exists: Fault's delay hook follows the last machine
     created, and it must point at the fleet *)
  let blocks = Lazy.force lblocks in
  let ctxs = Workload.spawn_fleet ~traced ~n lapp in
  Workload.wait_fleet_ready ctxs;
  let m = (List.hd ctxs).Workload.m in
  let pids = List.map (fun c -> c.Workload.pid) ctxs in
  let fleet =
    Fleet.create ?balancer m ~port:Ltpd.port ~pids ~blocks ~policy:lpolicy
  in
  (ctxs, m, pids, fleet)

let quick_sup = { Supervisor.default_config with Supervisor.canary_windows = 1 }

let send fleet reqs =
  List.iter (fun r -> ignore (Fleet.request fleet r)) reqs

(* ---------- wave planning ---------- *)

let test_plan () =
  let pids = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let plan = Rollout.plan ~pids ~waves:3 in
  Alcotest.(check (list (list int)))
    "contiguous, earlier waves carry the extra"
    [ [ 1; 2; 3 ]; [ 4; 5 ]; [ 6; 7 ] ]
    plan;
  Alcotest.(check (list (list int)))
    "one wave" [ pids ]
    (Rollout.plan ~pids ~waves:1);
  Alcotest.(check (list (list int)))
    "more waves than pids collapses to singletons"
    [ [ 1 ]; [ 2 ] ]
    (Rollout.plan ~pids:[ 1; 2 ] ~waves:5)

(* ---------- manifest ---------- *)

let test_manifest_roundtrip () =
  let fs = Vfs.create () in
  let man = Journal.Manifest.attach fs ~dir:"/tmpfs/fleet" in
  let entries =
    Journal.Manifest.
      [
        Wave_begin { wave = 1; pids = [ 100; 101 ] };
        Worker_cut { wave = 1; pid = 100 };
        Worker_cut { wave = 1; pid = 101 };
        Wave_done { wave = 1 };
        Wave_begin { wave = 2; pids = [ 102 ] };
        Worker_cut { wave = 2; pid = 102 };
      ]
  in
  List.iter (Journal.Manifest.append man) entries;
  let got, torn = Journal.Manifest.read man in
  Alcotest.(check bool) "not torn" false torn;
  Alcotest.(check int) "all entries" (List.length entries) (List.length got);
  Alcotest.(check bool) "roundtrip" true (got = entries);
  let s = Journal.Manifest.summarize got in
  Alcotest.(check (list int)) "wave 1 completed" [ 1 ]
    s.Journal.Manifest.m_completed;
  (match s.Journal.Manifest.m_open with
  | Some (2, [ 102 ], [ 102 ]) -> ()
  | _ -> Alcotest.fail "wave 2 should be open with pid 102 cut");
  Alcotest.(check bool) "not done" false s.Journal.Manifest.m_done;
  (* a torn tail yields the longest valid prefix, flagged *)
  (match Vfs.find fs "/tmpfs/fleet/manifest" with
  | Some raw ->
      Vfs.add fs "/tmpfs/fleet/manifest"
        (String.sub raw 0 (String.length raw - 3))
  | None -> Alcotest.fail "manifest file missing");
  let got', torn' = Journal.Manifest.read man in
  Alcotest.(check bool) "torn tail detected" true torn';
  Alcotest.(check int) "prefix survives"
    (List.length entries - 1)
    (List.length got');
  Journal.Manifest.clear man;
  let got'', torn'' = Journal.Manifest.read man in
  Alcotest.(check bool) "clear" true (got'' = [] && not torn'')

let test_manifest_halted_summary () =
  let s =
    Journal.Manifest.(
      summarize
        [
          Wave_begin { wave = 1; pids = [ 9 ] };
          Worker_cut { wave = 1; pid = 9 };
          Wave_done { wave = 1 };
          Wave_begin { wave = 2; pids = [ 10 ] };
          Rollout_halted { wave = 2 };
        ])
  in
  Alcotest.(check bool) "closed by halt" true
    (s.Journal.Manifest.m_open = None);
  Alcotest.(check (option int)) "halted wave" (Some 2)
    s.Journal.Manifest.m_halted

(* ---------- rolling rollout ---------- *)

let test_rollout_completes () =
  let _ctxs, _m, pids, fleet = fleet_boot ~n:3 () in
  let drive () = send fleet [ lget ] in
  let outcome, reports =
    Fleet.rollout fleet
      ~config:Rollout.{ r_waves = 3; r_sup = quick_sup }
      ~drive ()
  in
  (match outcome with
  | Rollout.Completed { waves } -> Alcotest.(check int) "3 waves" 3 waves
  | o -> Alcotest.failf "rollout: %a" Rollout.pp_outcome o);
  Alcotest.(check int) "a report per wave" 3 (List.length reports);
  List.iter
    (fun (r : Rollout.wave_report) ->
      Alcotest.(check bool) "waves pause for a while" true
        (r.Rollout.wr_pause_cycles > 0L))
    reports;
  List.iter
    (fun w ->
      Alcotest.(check bool) "every worker carries the cut" true
        (Rollout.cut_live w))
    (Fleet.workers fleet);
  (* the manifest records the whole rollout as done *)
  let entries, torn = Journal.Manifest.read (Fleet.manifest fleet) in
  Alcotest.(check bool) "manifest intact" false torn;
  let s = Journal.Manifest.summarize entries in
  Alcotest.(check bool) "done" true s.Journal.Manifest.m_done;
  Alcotest.(check (list int)) "waves closed" [ 1; 2; 3 ]
    s.Journal.Manifest.m_completed;
  (* the cut fleet refuses the feature and serves the rest *)
  (match Fleet.request fleet lput with
  | `Reply (_, resp) ->
      Alcotest.(check bool) "PUT blocked" true
        (String.length resp > 12 && String.sub resp 9 3 = "403")
  | `Refused | `Shed | `Timed_out _ -> Alcotest.fail "fleet refused");
  ignore pids

let test_rollout_halts_on_trap_storm () =
  let _ctxs, _m, pids, fleet = fleet_boot ~n:3 () in
  (* wave 2's canary sees undesired traffic and must reject *)
  let drive () =
    let wave = int_of_float (Obs.gauge_value (Obs.gauge "fleet.wave")) in
    if wave >= 2 then send fleet (List.init 12 (fun _ -> lput))
    else send fleet [ lget ]
  in
  let outcome, _ =
    Fleet.rollout fleet
      ~config:Rollout.{ r_waves = 2; r_sup = quick_sup }
      ~drive ()
  in
  (match outcome with
  | Rollout.Halted { wave = 2; reason = "canary-rejected" } -> ()
  | o -> Alcotest.failf "rollout: %a" Rollout.pp_outcome o);
  (* wave 1 stays cut, the halted wave is back to original *)
  let wave1 = List.hd (Rollout.plan ~pids ~waves:2) in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "pid %d cut=%b" w.Rollout.w_pid
           (List.mem w.Rollout.w_pid wave1))
        (List.mem w.Rollout.w_pid wave1)
        (Rollout.cut_live w))
    (Fleet.workers fleet);
  let entries, _ = Journal.Manifest.read (Fleet.manifest fleet) in
  let s = Journal.Manifest.summarize entries in
  Alcotest.(check (option int)) "halt recorded" (Some 2)
    s.Journal.Manifest.m_halted;
  (* the fleet still serves wanted traffic *)
  match Fleet.request fleet lget with
  | `Reply (_, resp) ->
      Alcotest.(check bool) "GET ok" true
        (String.length resp > 12 && String.sub resp 9 3 = "200")
  | `Refused | `Shed | `Timed_out _ -> Alcotest.fail "fleet refused"

(* ---------- drift closed loop ---------- *)

(* one full drift cycle; returns the actions in order for replay checks *)
let drift_scenario () =
  let ctxs, _m, _pids, fleet = fleet_boot ~traced:true ~n:2 () in
  let drive () = send fleet [ lget ] in
  (match Fleet.rollout fleet ~config:Rollout.{ r_waves = 1; r_sup = quick_sup } ~drive () with
  | Rollout.Completed _, _ -> ()
  | o, _ -> Alcotest.failf "rollout: %a" Rollout.pp_outcome o);
  Fleet.start_drift fleet
    ~config:
      Drift.
        {
          default_config with
          d_period = 50_000L;
          d_trap_threshold = 2;
          d_hysteresis = 2;
        }
    ~collector:(Workload.collector (List.hd ctxs))
    ();
  let actions = ref [] in
  let spin batch rounds =
    let fired = ref false in
    for _ = 1 to rounds do
      if not !fired then begin
        send fleet batch;
        match Fleet.tick fleet with
        | Some a ->
            actions := a :: !actions;
            fired := true
        | None -> ()
      end
    done
  in
  (* trap storm: both workers are cut, so the PUTs trap and no upload is
     ever stored — re-enable must fire, and exactly once *)
  spin (List.init 8 (fun _ -> lput)) 6;
  (* back to wanted-only traffic: all-cold for the hysteresis -> re-cut *)
  spin [ lget; lget; lget ] 8;
  let states =
    List.map (fun w -> (w.Rollout.w_pid, w.Rollout.w_state)) (Fleet.workers fleet)
  in
  (List.rev !actions, states, Obs.dump_json ())

let test_drift_reenable_then_recut () =
  let actions, states, _ = drift_scenario () in
  (match actions with
  | [ Drift.Reenabled 2; Drift.Recut 2 ] -> ()
  | l ->
      Alcotest.failf "actions: [%s]"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Drift.pp_action) l)));
  List.iter
    (fun (_, st) -> Alcotest.(check string) "final state" "recut" st)
    states

let test_drift_replay_exact () =
  let a1, s1, d1 = drift_scenario () in
  let a2, s2, d2 = drift_scenario () in
  Alcotest.(check bool) "same actions" true (a1 = a2);
  Alcotest.(check bool) "same worker states" true (s1 = s2);
  Alcotest.(check string) "byte-identical dump" d1 d2

(* ---------- fleet recovery ---------- *)

let test_recover_unwinds_open_wave () =
  let _ctxs, m, pids, fleet = fleet_boot ~n:2 () in
  let w1 = Fleet.worker fleet ~pid:(List.hd pids) in
  (* simulate a controller crash mid-wave: the first member's cut has
     committed (manifest intent + Worker_cut), the wave never closed *)
  (match Dynacut.try_cut w1.Rollout.w_session ~blocks:(Lazy.force lblocks) ~policy:lpolicy () with
  | { Dynacut.r_outcome = `Applied | `Degraded; _ } -> ()
  | { Dynacut.r_outcome = `Rolled_back _; _ } -> Alcotest.fail "setup cut failed");
  let man = Fleet.manifest fleet in
  Journal.Manifest.append man
    (Journal.Manifest.Wave_begin { wave = 1; pids });
  Journal.Manifest.append man
    (Journal.Manifest.Worker_cut { wave = 1; pid = List.hd pids });
  let r = Fleet.recover m ~pids in
  Alcotest.(check (list int)) "the committed member is unwound"
    [ List.hd pids ] r.Fleet.fr_unwound;
  Alcotest.(check int) "interrupted wave" 1 r.Fleet.fr_wave;
  (* converged: the manifest now shows the wave halted, and a second
     recovery pass is a no-op *)
  let entries, _ = Journal.Manifest.read man in
  let s = Journal.Manifest.summarize entries in
  Alcotest.(check bool) "wave closed" true (s.Journal.Manifest.m_open = None);
  let r2 = Fleet.recover m ~pids in
  Alcotest.(check (list int)) "second pass no-op" [] r2.Fleet.fr_unwound;
  (* the unwound worker serves again *)
  match Fleet.request fleet lget with
  | `Reply (_, resp) ->
      Alcotest.(check bool) "GET ok" true
        (String.length resp > 12 && String.sub resp 9 3 = "200")
  | `Refused | `Shed | `Timed_out _ -> Alcotest.fail "fleet refused"

(* ---------- health-scored dispatch (§6b) ---------- *)

let test_frozen_worker_zero_dispatches () =
  let _ctxs, m, pids, fleet = fleet_boot ~n:3 () in
  let cold = List.hd pids in
  Machine.freeze m ~pid:cold;
  for _ = 1 to 12 do
    match Fleet.request fleet lget with
    | `Reply (pid, resp) ->
        Alcotest.(check bool) "not the frozen worker" true (pid <> cold);
        Alcotest.(check string) "200" "200" (String.sub resp 9 3)
    | `Refused | `Shed | `Timed_out _ -> Alcotest.fail "fleet refused"
  done;
  Alcotest.(check int) "zero dispatches to the frozen worker" 0
    (Balancer.dispatches ~pid:cold);
  (* the decision log shows it skipped as frozen on every dispatch *)
  let ds = Balancer.decisions (Fleet.balancer fleet) in
  Alcotest.(check bool) "decisions recorded" true (List.length ds >= 12);
  List.iter
    (fun (d : Balancer.decision) ->
      match d.Balancer.d_verdict with
      | Balancer.Dispatched _ ->
          Alcotest.(check bool) "frozen pid in the skip list" true
            (List.assoc_opt cold d.Balancer.d_skipped = Some Balancer.Frozen)
      | _ -> ())
    ds;
  (* thawed, it rejoins the rotation (least-loaded: it goes first) *)
  Machine.thaw m ~pid:cold;
  for _ = 1 to 6 do
    ignore (Fleet.request fleet lget)
  done;
  Alcotest.(check bool) "serves again after thaw" true
    (Balancer.dispatches ~pid:cold > 0)

let test_breaker_open_drains_dispatch () =
  let _ctxs, m, pids, fleet = fleet_boot ~n:2 () in
  let sick = List.nth pids 0 and healthy = List.nth pids 1 in
  (* breaker open (as Supervisor.set_breaker would publish it): the
     balancer must route around the worker without being told *)
  Obs.set_gauge (Supervisor.breaker_gauge ~root_pid:sick) 1.;
  for _ = 1 to 6 do
    match Fleet.request fleet lget with
    | `Reply (pid, _) -> Alcotest.(check int) "only the healthy worker" healthy pid
    | `Refused | `Shed | `Timed_out _ -> Alcotest.fail "fleet refused"
  done;
  Alcotest.(check int) "zero dispatches while open" 0
    (Balancer.dispatches ~pid:sick);
  (* half-open: exactly one trickle probe at a time *)
  Obs.set_gauge (Supervisor.breaker_gauge ~root_pid:sick) 2.;
  Obs.set_gauge (Supervisor.breaker_gauge ~root_pid:healthy) 1.;
  let b = Fleet.balancer fleet in
  (match Balancer.dispatch b lget with
  | `Ticket tk ->
      Alcotest.(check int) "probe goes to the half-open worker" sick
        Balancer.(tk.tk_pid);
      (* a second concurrent dispatch is held back entirely *)
      (match Balancer.dispatch b lget with
      | `Refused -> ()
      | `Ticket _ | `Shed -> Alcotest.fail "half-open hold violated");
      let (_ : _) =
        Machine.run_until m ~max_cycles:2_000_000 ~pred:(fun () ->
            Net.client_pending Balancer.(tk.tk_conn) > 0)
      in
      (match Balancer.poll b tk with
      | `Reply (pid, resp) ->
          Alcotest.(check int) "probe served by the probed worker" sick pid;
          Alcotest.(check string) "probe 200" "200" (String.sub resp 9 3)
      | `Pending | `Timed_out _ -> Alcotest.fail "probe did not complete")
  | `Refused | `Shed -> Alcotest.fail "half-open worker got no probe");
  (* breaker closed again: normal rotation resumes *)
  Obs.set_gauge (Supervisor.breaker_gauge ~root_pid:sick) 0.;
  Obs.set_gauge (Supervisor.breaker_gauge ~root_pid:healthy) 0.;
  match Fleet.request fleet lget with
  | `Reply (_, resp) -> Alcotest.(check string) "200" "200" (String.sub resp 9 3)
  | `Refused | `Shed | `Timed_out _ -> Alcotest.fail "fleet refused"

let test_admission_shed_hysteresis () =
  let bcfg =
    {
      (Balancer.default_config ~workers:2) with
      Balancer.b_shed_high = 2;
      b_shed_low = 0;
    }
  in
  let _ctxs, _m, _pids, fleet = fleet_boot ~balancer:bcfg ~n:2 () in
  let b = Fleet.balancer fleet in
  let tk () =
    match Balancer.dispatch b lget with
    | `Ticket tk -> tk
    | `Shed | `Refused -> Alcotest.fail "dispatch under the watermark shed"
  in
  let t1 = tk () in
  let t2 = tk () in
  (* aggregate in-flight at the high watermark: shed, and latch *)
  (match Balancer.dispatch b lget with
  | `Shed -> ()
  | `Ticket _ | `Refused -> Alcotest.fail "expected shed at the watermark");
  Alcotest.(check bool) "shedding latched" true (Balancer.shedding b);
  (* hysteresis: one completion is not enough to re-admit *)
  Balancer.finish b t1;
  (match Balancer.dispatch b lget with
  | `Shed -> ()
  | `Ticket _ | `Refused -> Alcotest.fail "re-admitted above the low watermark");
  (* drained to the low watermark: admission resumes *)
  Balancer.finish b t2;
  (match Balancer.dispatch b lget with
  | `Ticket tk -> Balancer.finish b tk
  | `Shed | `Refused -> Alcotest.fail "did not re-admit at the low watermark");
  Alcotest.(check bool) "shedding cleared" true (not (Balancer.shedding b));
  Alcotest.(check bool) "sheds counted" true (Balancer.shed_count () >= 2)

let test_loadgen_deterministic_budget () =
  let scenario () =
    let _ctxs, _m, _pids, fleet = fleet_boot ~n:2 () in
    Fleet.overload fleet
      {
        Loadgen.default_config with
        Loadgen.lg_offered = 200.;
        lg_requests = 40;
        lg_deadline = 100_000L;
        lg_max_retries = 3;
        lg_retry_budget = 10;
      }
      ~text:lget
  in
  let s1 = scenario () in
  let s2 = scenario () in
  Alcotest.(check bool) "same seed, identical stats" true (s1 = s2);
  Alcotest.(check int) "every arrival generated" 40 s1.Loadgen.s_offered;
  Alcotest.(check bool) "some requests completed" true
    (s1.Loadgen.s_completed > 0);
  Alcotest.(check bool) "overload engaged the retry path" true
    (s1.Loadgen.s_retries > 0);
  Alcotest.(check bool) "the budget capped the retry amplification" true
    (s1.Loadgen.s_budget_exhausted > 0);
  Alcotest.(check int) "retries never exceed the budget" 10
    (min 10 s1.Loadgen.s_retries)

(* ---------- manifest compaction ---------- *)

let test_manifest_checkpoint_compact () =
  let fs = Vfs.create () in
  let man = Journal.Manifest.attach fs ~dir:"/tmpfs/fleet" in
  List.iter (Journal.Manifest.append man)
    Journal.Manifest.
      [
        Wave_begin { wave = 1; pids = [ 100; 101 ] };
        Worker_cut { wave = 1; pid = 100 };
        Worker_cut { wave = 1; pid = 101 };
        Wave_done { wave = 1 };
        Wave_begin { wave = 2; pids = [ 102; 103 ] };
        Worker_cut { wave = 2; pid = 102 };
      ];
  let before = Journal.Manifest.summarize (fst (Journal.Manifest.read man)) in
  (* tear the tail: compaction must drop it and re-seal *)
  (match Vfs.find fs "/tmpfs/fleet/manifest" with
  | Some raw -> Vfs.add fs "/tmpfs/fleet/manifest" (raw ^ "\x07garbage")
  | None -> Alcotest.fail "manifest file missing");
  let _, torn = Journal.Manifest.read man in
  Alcotest.(check bool) "tail torn" true torn;
  Journal.Manifest.compact man;
  let entries, torn' = Journal.Manifest.read man in
  Alcotest.(check bool) "fully sealed after compaction" false torn';
  (* closed history folds into one checkpoint; the open wave's records
     are re-emitted verbatim so recovery can still unwind it *)
  (match entries with
  | Journal.Manifest.
      [
        Checkpoint { completed = [ 1 ]; halted = None; done_ = false };
        Wave_begin { wave = 2; pids = [ 102; 103 ] };
        Worker_cut { wave = 2; pid = 102 };
      ] ->
      ()
  | _ ->
      Alcotest.failf "unexpected compacted manifest: [%s]"
        (String.concat "; "
           (List.map
              (Format.asprintf "%a" Journal.Manifest.pp_entry)
              entries)));
  let after = Journal.Manifest.summarize entries in
  Alcotest.(check bool) "summary preserved" true (before = after);
  (* close the wave and re-compact: everything folds into the record *)
  Journal.Manifest.append man (Journal.Manifest.Wave_done { wave = 2 });
  Journal.Manifest.compact man;
  (match Journal.Manifest.read man with
  | ( [
        Journal.Manifest.Checkpoint
          { completed = [ 1; 2 ]; halted = None; done_ = false };
      ],
      false ) ->
      ()
  | entries2, _ ->
      Alcotest.failf "re-compaction kept %d entries" (List.length entries2));
  (* a checkpoint roundtrips like any entry *)
  Journal.Manifest.append man
    (Journal.Manifest.Checkpoint
       { completed = [ 9 ]; halted = Some 3; done_ = true });
  let all, torn'' = Journal.Manifest.read man in
  Alcotest.(check bool) "appended checkpoint intact" true (not torn'');
  match List.rev all with
  | Journal.Manifest.Checkpoint { completed = [ 9 ]; halted = Some 3; done_ = true }
    :: _ ->
      ()
  | _ -> Alcotest.fail "checkpoint did not roundtrip"

(* ---------- owner-keyed routing across reap + revive ---------- *)

let test_route_after_reap_revive () =
  let _ctxs, m, pids, fleet = fleet_boot ~n:2 () in
  let victim = List.nth pids 0 and other = List.nth pids 1 in
  (* the controller dies mid-restore: the victim's processes were reaped
     and their revival is recovery's job *)
  Fault.arm ~kill:true "restore.process" Fault.One_shot;
  let w = Fleet.worker fleet ~pid:victim in
  (match
     Dynacut.try_cut w.Rollout.w_session ~blocks:(Lazy.force lblocks)
       ~policy:lpolicy ()
   with
  | (_ : Dynacut.cut_result) -> Alcotest.fail "controller survived its death"
  | exception Fault.Controller_killed _ -> ());
  Fault.reset ();
  let r = Fleet.recover m ~pids in
  (match List.assoc victim r.Fleet.fr_workers with
  | `Rolled_back -> ()
  | a ->
      Alcotest.failf "victim recovery: %s"
        (match a with
        | `Nothing -> "nothing"
        | `Thawed -> "thawed"
        | `Completed -> "completed"
        | _ -> "?"));
  (* the revived worker re-registered its listener under its own pid:
     drain the other worker and the request must route to the victim *)
  Balancer.drain (Fleet.balancer fleet) ~pid:other;
  (match Fleet.request fleet lget with
  | `Reply (pid, resp) ->
      Alcotest.(check int) "the revived worker serves" victim pid;
      Alcotest.(check string) "200" "200" (String.sub resp 9 3)
  | `Refused | `Shed | `Timed_out _ -> Alcotest.fail "fleet refused");
  Balancer.undrain (Fleet.balancer fleet) ~pid:other;
  match Fleet.request fleet lget with
  | `Reply (_, resp) -> Alcotest.(check string) "200" "200" (String.sub resp 9 3)
  | `Refused | `Shed | `Timed_out _ -> Alcotest.fail "fleet refused"

(* gray failure: one worker answers — slowly. The latency EWMA health
   term must starve it of dispatches while the storm lasts (skipped as
   Straggler), then let the per-decision decay bring it back once the
   slowness clears. *)
let test_straggler_zero_dispatches () =
  let _ctxs, _m, pids, fleet = fleet_boot ~n:3 () in
  let slow = List.hd pids in
  (* every serve by [slow] eats an extra 150k cycles — an order of
     magnitude over the healthy round trip, well under any deadline *)
  Fault.arm_mode ~scope:slow "net.serve" (Fault.Every_nth 1)
    (Fault.Delay 150_000);
  (* rotation is fair until everyone has enough latency samples for the
     relative straggler test (b_straggler_min per worker) *)
  for _ = 1 to 9 do
    ignore (Fleet.request fleet lget)
  done;
  Alcotest.(check bool) "the slow worker accrued samples" true
    (Balancer.dispatches ~pid:slow > 0);
  Alcotest.(check bool) "its EWMA reflects the delay" true
    (Balancer.ewma_latency (Fleet.balancer fleet) ~pid:slow > 100_000.);
  (* storm detected: zero dispatches while it stays slow *)
  let d0 = Balancer.dispatches ~pid:slow in
  for _ = 1 to 6 do
    match Fleet.request fleet lget with
    | `Reply (pid, _) ->
        Alcotest.(check bool) "never the straggler" true (pid <> slow)
    | `Refused | `Shed | `Timed_out _ -> Alcotest.fail "fleet refused"
  done;
  Alcotest.(check int) "zero dispatches during the storm" d0
    (Balancer.dispatches ~pid:slow);
  let straggler_skips =
    List.exists
      (fun (d : Balancer.decision) ->
        List.assoc_opt slow d.Balancer.d_skipped = Some Balancer.Straggler)
      (Balancer.decisions (Fleet.balancer fleet))
  in
  Alcotest.(check bool) "skipped as Straggler, not anything else" true
    straggler_skips;
  (* gray failure clears: the skip-time decay walks the EWMA back toward
     the fleet baseline and the worker rejoins the rotation *)
  Fault.disarm "net.serve";
  for _ = 1 to 60 do
    ignore (Fleet.request fleet lget)
  done;
  Alcotest.(check bool) "rejoins after the storm" true
    (Balancer.dispatches ~pid:slow > d0);
  match Fleet.request fleet lget with
  | `Reply (_, resp) -> Alcotest.(check string) "200" "200" (String.sub resp 9 3)
  | `Refused | `Shed | `Timed_out _ -> Alcotest.fail "fleet refused"

let suite =
  [
    Alcotest.test_case "wave planning" `Quick test_plan;
    Alcotest.test_case "straggler gets zero dispatches" `Quick
      test_straggler_zero_dispatches;
    Alcotest.test_case "manifest roundtrip + torn tail" `Quick
      test_manifest_roundtrip;
    Alcotest.test_case "manifest halted summary" `Quick
      test_manifest_halted_summary;
    Alcotest.test_case "rollout completes" `Quick test_rollout_completes;
    Alcotest.test_case "rollout halts on trap storm" `Quick
      test_rollout_halts_on_trap_storm;
    Alcotest.test_case "drift reenable then recut" `Quick
      test_drift_reenable_then_recut;
    Alcotest.test_case "drift replay exact" `Quick test_drift_replay_exact;
    Alcotest.test_case "recover unwinds open wave" `Quick
      test_recover_unwinds_open_wave;
    Alcotest.test_case "frozen worker gets zero dispatches" `Quick
      test_frozen_worker_zero_dispatches;
    Alcotest.test_case "breaker-open drains dispatch" `Quick
      test_breaker_open_drains_dispatch;
    Alcotest.test_case "admission shed hysteresis" `Quick
      test_admission_shed_hysteresis;
    Alcotest.test_case "loadgen deterministic + budget" `Quick
      test_loadgen_deterministic_budget;
    Alcotest.test_case "manifest checkpoint compaction" `Quick
      test_manifest_checkpoint_compact;
    Alcotest.test_case "owner-keyed routing after reap+revive" `Quick
      test_route_after_reap_revive;
  ]
