(** Fleet orchestration: wave planning, the fleet manifest, rolling
    rollouts (complete + halt), the drift closed loop, and fleet-wide
    crash recovery — all replay-exact from a fixed seed. *)

let lapp = Workload.ltpd
let lget = "GET /index.html HTTP/1.0\r\n\r\n"
let lput = "PUT /up.txt HTTP/1.0\r\n\r\nbody"
let lblocks = lazy (Common.web_feature_blocks lapp)

let lpolicy =
  { Dynacut.method_ = `First_byte; on_trap = `Redirect "ltpd_403" }

let fleet_boot ?(traced = false) ~n () =
  Obs.reset ();
  Fault.reset ();
  let ctxs = Workload.spawn_fleet ~traced ~n lapp in
  Workload.wait_fleet_ready ctxs;
  let m = (List.hd ctxs).Workload.m in
  let pids = List.map (fun c -> c.Workload.pid) ctxs in
  let fleet =
    Fleet.create m ~port:Ltpd.port ~pids ~blocks:(Lazy.force lblocks)
      ~policy:lpolicy
  in
  (ctxs, m, pids, fleet)

let quick_sup = { Supervisor.default_config with Supervisor.canary_windows = 1 }

let send fleet reqs =
  List.iter (fun r -> ignore (Fleet.request fleet r)) reqs

(* ---------- wave planning ---------- *)

let test_plan () =
  let pids = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let plan = Rollout.plan ~pids ~waves:3 in
  Alcotest.(check (list (list int)))
    "contiguous, earlier waves carry the extra"
    [ [ 1; 2; 3 ]; [ 4; 5 ]; [ 6; 7 ] ]
    plan;
  Alcotest.(check (list (list int)))
    "one wave" [ pids ]
    (Rollout.plan ~pids ~waves:1);
  Alcotest.(check (list (list int)))
    "more waves than pids collapses to singletons"
    [ [ 1 ]; [ 2 ] ]
    (Rollout.plan ~pids:[ 1; 2 ] ~waves:5)

(* ---------- manifest ---------- *)

let test_manifest_roundtrip () =
  let fs = Vfs.create () in
  let man = Journal.Manifest.attach fs ~dir:"/tmpfs/fleet" in
  let entries =
    Journal.Manifest.
      [
        Wave_begin { wave = 1; pids = [ 100; 101 ] };
        Worker_cut { wave = 1; pid = 100 };
        Worker_cut { wave = 1; pid = 101 };
        Wave_done { wave = 1 };
        Wave_begin { wave = 2; pids = [ 102 ] };
        Worker_cut { wave = 2; pid = 102 };
      ]
  in
  List.iter (Journal.Manifest.append man) entries;
  let got, torn = Journal.Manifest.read man in
  Alcotest.(check bool) "not torn" false torn;
  Alcotest.(check int) "all entries" (List.length entries) (List.length got);
  Alcotest.(check bool) "roundtrip" true (got = entries);
  let s = Journal.Manifest.summarize got in
  Alcotest.(check (list int)) "wave 1 completed" [ 1 ]
    s.Journal.Manifest.m_completed;
  (match s.Journal.Manifest.m_open with
  | Some (2, [ 102 ], [ 102 ]) -> ()
  | _ -> Alcotest.fail "wave 2 should be open with pid 102 cut");
  Alcotest.(check bool) "not done" false s.Journal.Manifest.m_done;
  (* a torn tail yields the longest valid prefix, flagged *)
  (match Vfs.find fs "/tmpfs/fleet/manifest" with
  | Some raw ->
      Vfs.add fs "/tmpfs/fleet/manifest"
        (String.sub raw 0 (String.length raw - 3))
  | None -> Alcotest.fail "manifest file missing");
  let got', torn' = Journal.Manifest.read man in
  Alcotest.(check bool) "torn tail detected" true torn';
  Alcotest.(check int) "prefix survives"
    (List.length entries - 1)
    (List.length got');
  Journal.Manifest.clear man;
  let got'', torn'' = Journal.Manifest.read man in
  Alcotest.(check bool) "clear" true (got'' = [] && not torn'')

let test_manifest_halted_summary () =
  let s =
    Journal.Manifest.(
      summarize
        [
          Wave_begin { wave = 1; pids = [ 9 ] };
          Worker_cut { wave = 1; pid = 9 };
          Wave_done { wave = 1 };
          Wave_begin { wave = 2; pids = [ 10 ] };
          Rollout_halted { wave = 2 };
        ])
  in
  Alcotest.(check bool) "closed by halt" true
    (s.Journal.Manifest.m_open = None);
  Alcotest.(check (option int)) "halted wave" (Some 2)
    s.Journal.Manifest.m_halted

(* ---------- rolling rollout ---------- *)

let test_rollout_completes () =
  let _ctxs, _m, pids, fleet = fleet_boot ~n:3 () in
  let drive () = send fleet [ lget ] in
  let outcome, reports =
    Fleet.rollout fleet
      ~config:Rollout.{ r_waves = 3; r_sup = quick_sup }
      ~drive ()
  in
  (match outcome with
  | Rollout.Completed { waves } -> Alcotest.(check int) "3 waves" 3 waves
  | o -> Alcotest.failf "rollout: %a" Rollout.pp_outcome o);
  Alcotest.(check int) "a report per wave" 3 (List.length reports);
  List.iter
    (fun (r : Rollout.wave_report) ->
      Alcotest.(check bool) "waves pause for a while" true
        (r.Rollout.wr_pause_cycles > 0L))
    reports;
  List.iter
    (fun w ->
      Alcotest.(check bool) "every worker carries the cut" true
        (Rollout.cut_live w))
    (Fleet.workers fleet);
  (* the manifest records the whole rollout as done *)
  let entries, torn = Journal.Manifest.read (Fleet.manifest fleet) in
  Alcotest.(check bool) "manifest intact" false torn;
  let s = Journal.Manifest.summarize entries in
  Alcotest.(check bool) "done" true s.Journal.Manifest.m_done;
  Alcotest.(check (list int)) "waves closed" [ 1; 2; 3 ]
    s.Journal.Manifest.m_completed;
  (* the cut fleet refuses the feature and serves the rest *)
  (match Fleet.request fleet lput with
  | `Reply (_, resp) ->
      Alcotest.(check bool) "PUT blocked" true
        (String.length resp > 12 && String.sub resp 9 3 = "403")
  | `Refused -> Alcotest.fail "fleet refused");
  ignore pids

let test_rollout_halts_on_trap_storm () =
  let _ctxs, _m, pids, fleet = fleet_boot ~n:3 () in
  (* wave 2's canary sees undesired traffic and must reject *)
  let drive () =
    let wave = int_of_float (Obs.gauge_value (Obs.gauge "fleet.wave")) in
    if wave >= 2 then send fleet (List.init 12 (fun _ -> lput))
    else send fleet [ lget ]
  in
  let outcome, _ =
    Fleet.rollout fleet
      ~config:Rollout.{ r_waves = 2; r_sup = quick_sup }
      ~drive ()
  in
  (match outcome with
  | Rollout.Halted { wave = 2; reason = "canary-rejected" } -> ()
  | o -> Alcotest.failf "rollout: %a" Rollout.pp_outcome o);
  (* wave 1 stays cut, the halted wave is back to original *)
  let wave1 = List.hd (Rollout.plan ~pids ~waves:2) in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "pid %d cut=%b" w.Rollout.w_pid
           (List.mem w.Rollout.w_pid wave1))
        (List.mem w.Rollout.w_pid wave1)
        (Rollout.cut_live w))
    (Fleet.workers fleet);
  let entries, _ = Journal.Manifest.read (Fleet.manifest fleet) in
  let s = Journal.Manifest.summarize entries in
  Alcotest.(check (option int)) "halt recorded" (Some 2)
    s.Journal.Manifest.m_halted;
  (* the fleet still serves wanted traffic *)
  match Fleet.request fleet lget with
  | `Reply (_, resp) ->
      Alcotest.(check bool) "GET ok" true
        (String.length resp > 12 && String.sub resp 9 3 = "200")
  | `Refused -> Alcotest.fail "fleet refused"

(* ---------- drift closed loop ---------- *)

(* one full drift cycle; returns the actions in order for replay checks *)
let drift_scenario () =
  let ctxs, _m, _pids, fleet = fleet_boot ~traced:true ~n:2 () in
  let drive () = send fleet [ lget ] in
  (match Fleet.rollout fleet ~config:Rollout.{ r_waves = 1; r_sup = quick_sup } ~drive () with
  | Rollout.Completed _, _ -> ()
  | o, _ -> Alcotest.failf "rollout: %a" Rollout.pp_outcome o);
  Fleet.start_drift fleet
    ~config:
      Drift.
        {
          default_config with
          d_period = 50_000L;
          d_trap_threshold = 2;
          d_hysteresis = 2;
        }
    ~collector:(Workload.collector (List.hd ctxs))
    ();
  let actions = ref [] in
  let spin batch rounds =
    let fired = ref false in
    for _ = 1 to rounds do
      if not !fired then begin
        send fleet batch;
        match Fleet.tick fleet with
        | Some a ->
            actions := a :: !actions;
            fired := true
        | None -> ()
      end
    done
  in
  (* trap storm: both workers are cut, so the PUTs trap and no upload is
     ever stored — re-enable must fire, and exactly once *)
  spin (List.init 8 (fun _ -> lput)) 6;
  (* back to wanted-only traffic: all-cold for the hysteresis -> re-cut *)
  spin [ lget; lget; lget ] 8;
  let states =
    List.map (fun w -> (w.Rollout.w_pid, w.Rollout.w_state)) (Fleet.workers fleet)
  in
  (List.rev !actions, states, Obs.dump_json ())

let test_drift_reenable_then_recut () =
  let actions, states, _ = drift_scenario () in
  (match actions with
  | [ Drift.Reenabled 2; Drift.Recut 2 ] -> ()
  | l ->
      Alcotest.failf "actions: [%s]"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Drift.pp_action) l)));
  List.iter
    (fun (_, st) -> Alcotest.(check string) "final state" "recut" st)
    states

let test_drift_replay_exact () =
  let a1, s1, d1 = drift_scenario () in
  let a2, s2, d2 = drift_scenario () in
  Alcotest.(check bool) "same actions" true (a1 = a2);
  Alcotest.(check bool) "same worker states" true (s1 = s2);
  Alcotest.(check string) "byte-identical dump" d1 d2

(* ---------- fleet recovery ---------- *)

let test_recover_unwinds_open_wave () =
  let _ctxs, m, pids, fleet = fleet_boot ~n:2 () in
  let w1 = Fleet.worker fleet ~pid:(List.hd pids) in
  (* simulate a controller crash mid-wave: the first member's cut has
     committed (manifest intent + Worker_cut), the wave never closed *)
  (match Dynacut.try_cut w1.Rollout.w_session ~blocks:(Lazy.force lblocks) ~policy:lpolicy () with
  | { Dynacut.r_outcome = `Applied | `Degraded; _ } -> ()
  | { Dynacut.r_outcome = `Rolled_back _; _ } -> Alcotest.fail "setup cut failed");
  let man = Fleet.manifest fleet in
  Journal.Manifest.append man
    (Journal.Manifest.Wave_begin { wave = 1; pids });
  Journal.Manifest.append man
    (Journal.Manifest.Worker_cut { wave = 1; pid = List.hd pids });
  let r = Fleet.recover m ~pids in
  Alcotest.(check (list int)) "the committed member is unwound"
    [ List.hd pids ] r.Fleet.fr_unwound;
  Alcotest.(check int) "interrupted wave" 1 r.Fleet.fr_wave;
  (* converged: the manifest now shows the wave halted, and a second
     recovery pass is a no-op *)
  let entries, _ = Journal.Manifest.read man in
  let s = Journal.Manifest.summarize entries in
  Alcotest.(check bool) "wave closed" true (s.Journal.Manifest.m_open = None);
  let r2 = Fleet.recover m ~pids in
  Alcotest.(check (list int)) "second pass no-op" [] r2.Fleet.fr_unwound;
  (* the unwound worker serves again *)
  match Fleet.request fleet lget with
  | `Reply (_, resp) ->
      Alcotest.(check bool) "GET ok" true
        (String.length resp > 12 && String.sub resp 9 3 = "200")
  | `Refused -> Alcotest.fail "fleet refused"

let suite =
  [
    Alcotest.test_case "wave planning" `Quick test_plan;
    Alcotest.test_case "manifest roundtrip + torn tail" `Quick
      test_manifest_roundtrip;
    Alcotest.test_case "manifest halted summary" `Quick
      test_manifest_halted_summary;
    Alcotest.test_case "rollout completes" `Quick test_rollout_completes;
    Alcotest.test_case "rollout halts on trap storm" `Quick
      test_rollout_halts_on_trap_storm;
    Alcotest.test_case "drift reenable then recut" `Quick
      test_drift_reenable_then_recut;
    Alcotest.test_case "drift replay exact" `Quick test_drift_replay_exact;
    Alcotest.test_case "recover unwinds open wave" `Quick
      test_recover_unwinds_open_wave;
  ]
