(** Fault-injection tests for the transactional cut pipeline: a fault at
    any registered site during [cut] must leave the target alive and
    serving its pre-cut behaviour (rollback invariant), corrupted tmpfs
    images must be rejected at load, transient faults must be retried,
    and a chaos soak drives cut/reenable cycles against ngx under random
    single-site faults. *)

let redirect_policy =
  { Dynacut.method_ = `First_byte; on_trap = `Redirect "err_path" }

(* every site the dsrv cut pipeline reaches (tcp_repair needs an open
   connection and gets its own test below) *)
let cut_sites =
  [
    "criu.checkpoint";
    "criu.save";
    "criu.load";
    "rewrite.patch";
    "inject.lib";
    "inject.policy";
    "restore.process";
  ]

(* ---------- rollback invariant, one site at a time ---------- *)

let check_rollback_at site () =
  Fault.reset ();
  let blocks = Test_core.feature_blocks () in
  let m, p = Test_core.boot () in
  Alcotest.(check string) "pre-cut G" "VAL=7" (Test_core.request m "G");
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  Fault.arm site Fault.One_shot;
  let r = Dynacut.try_cut session ~blocks ~policy:redirect_policy () in
  Alcotest.(check bool) (site ^ " fired") true (Fault.fired site = 1);
  (match r.Dynacut.r_outcome with
  | `Rolled_back rb ->
      Alcotest.(check string) "error names the site"
        ("injected fault at " ^ site) rb.Dynacut.rb_error
  | `Applied | `Degraded -> Alcotest.failf "fault at %s did not roll back" site);
  Alcotest.(check bool) "no journals" true (r.Dynacut.r_journals = []);
  (* the tree is alive and shows its *pre-cut* behaviour: the feature is
     not blocked *)
  Alcotest.(check bool) "server alive" true
    (Proc.is_live (Machine.proc_exn m p.Proc.pid));
  Alcotest.(check string) "G unchanged" "VAL=7" (Test_core.request m "G");
  Alcotest.(check string) "S unchanged" "SET-OK" (Test_core.request m "S");
  (* a clean retry with the (one-shot) fault gone now succeeds *)
  let r2 = Dynacut.try_cut session ~blocks ~policy:redirect_policy () in
  (match r2.Dynacut.r_outcome with
  | `Applied -> ()
  | o -> Alcotest.failf "clean retry: %a" Dynacut.pp_outcome o);
  Alcotest.(check string) "feature now blocked" "ERR" (Test_core.request m "S");
  Fault.reset ()

let test_rollback_tcp_repair () =
  Fault.reset ();
  let blocks = Test_core.feature_blocks () in
  let m, p = Test_core.boot () in
  (* open a connection and let the server block in recv on it, so the
     restore stage has TCP state to repair *)
  let c = Net.connect m.Machine.net 9200 in
  let (_ : _) = Machine.run m ~max_cycles:500_000 in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  Fault.arm "restore.tcp_repair" Fault.One_shot;
  let r = Dynacut.try_cut session ~blocks ~policy:redirect_policy () in
  Alcotest.(check bool) "tcp_repair fired" true (Fault.fired "restore.tcp_repair" = 1);
  (match r.Dynacut.r_outcome with
  | `Rolled_back rb -> Alcotest.(check string) "stage" "restore" rb.Dynacut.rb_stage
  | `Applied | `Degraded -> Alcotest.fail "expected rollback");
  (* the mid-cut connection still completes its request after rollback *)
  Net.client_send c "G";
  let (_ : _) = Machine.run m ~max_cycles:2_000_000 in
  Alcotest.(check string) "in-flight request survives rollback" "VAL=7"
    (Net.client_recv c);
  Alcotest.(check string) "feature unchanged" "SET-OK" (Test_core.request m "S");
  Fault.reset ()

(* ---------- image corruption ---------- *)

let test_corrupt_image_rejected () =
  let m, p = Test_core.boot () in
  Machine.freeze m ~pid:p.Proc.pid;
  let img = Checkpoint.dump m ~pid:p.Proc.pid () in
  let path = Checkpoint.save_to_tmpfs m ~dir:"/tmpfs/t" img in
  let blob = Option.get (Vfs.find m.Machine.fs path) in
  (* flip one byte in the middle of the payload *)
  let corrupt = Bytes.of_string blob in
  let k = Bytes.length corrupt / 2 in
  Bytes.set corrupt k (Char.chr (Char.code (Bytes.get corrupt k) lxor 0x40));
  Vfs.add m.Machine.fs path (Bytes.to_string corrupt);
  Alcotest.(check bool) "bit flip caught" true
    (match Restore.load_from_tmpfs m ~path with
    | _ -> false
    | exception Validate.Validate_error _ -> true);
  (* truncation *)
  Vfs.add m.Machine.fs path (String.sub blob 0 (String.length blob - 7));
  Alcotest.(check bool) "truncation caught" true
    (match Restore.load_from_tmpfs m ~path with
    | _ -> false
    | exception Validate.Validate_error _ -> true);
  (* and the good blob still loads *)
  Vfs.add m.Machine.fs path blob;
  let loaded = Restore.load_from_tmpfs m ~path in
  Alcotest.(check int) "round trip" img.Images.core.Images.c_pid
    loaded.Images.core.Images.c_pid

(* ---------- retry and degrade ---------- *)

let test_transient_fault_retried () =
  Fault.reset ();
  let blocks = Test_core.feature_blocks () in
  let m, p = Test_core.boot () in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  Fault.arm ~transient:true "criu.save" Fault.One_shot;
  let r = Dynacut.try_cut session ~blocks ~policy:redirect_policy () in
  (match r.Dynacut.r_outcome with
  | `Applied -> ()
  | o -> Alcotest.failf "expected applied after retry: %a" Dynacut.pp_outcome o);
  Alcotest.(check bool) "retried" true (r.Dynacut.r_retries >= 1);
  Alcotest.(check bool) "backoff charged" true (r.Dynacut.r_backoff_cycles > 0);
  Alcotest.(check string) "feature blocked" "ERR" (Test_core.request m "S");
  Fault.reset ()

let test_retry_class_fault_retried () =
  Fault.reset ();
  let blocks = Test_core.feature_blocks () in
  let m, p = Test_core.boot () in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  (* not flagged transient, but the caller declares criu.* retryable *)
  Fault.arm "criu.checkpoint" Fault.One_shot;
  let r =
    Dynacut.try_cut session ~retry_classes:[ "criu." ] ~blocks
      ~policy:redirect_policy ()
  in
  (match r.Dynacut.r_outcome with
  | `Applied -> ()
  | o -> Alcotest.failf "expected applied after retry: %a" Dynacut.pp_outcome o);
  Alcotest.(check bool) "retried" true (r.Dynacut.r_retries >= 1);
  Fault.reset ()

let test_degrade_falls_back_to_first_byte () =
  Fault.reset ();
  let blocks = Test_core.feature_blocks () in
  let m, p = Test_core.boot () in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  (* the aggressive method keeps failing; with ~degrade the transaction
     falls back to `First_byte instead of rolling back *)
  Fault.arm "rewrite.unmap" (Fault.Every_nth 1);
  let r =
    Dynacut.try_cut session ~degrade:true ~blocks
      ~policy:{ Dynacut.method_ = `Unmap_pages; on_trap = `Redirect "err_path" }
      ()
  in
  (match r.Dynacut.r_outcome with
  | `Degraded -> ()
  | o -> Alcotest.failf "expected degraded: %a" Dynacut.pp_outcome o);
  Alcotest.(check string) "feature still blocked" "ERR" (Test_core.request m "S");
  Alcotest.(check string) "wanted path fine" "VAL=7" (Test_core.request m "G");
  (* without ~degrade the same fault rolls the cut back *)
  Fault.reset ();
  Fault.arm "rewrite.unmap" (Fault.Every_nth 1);
  let m2, p2 = Test_core.boot () in
  let s2 = Dynacut.create m2 ~root_pid:p2.Proc.pid in
  let r2 =
    Dynacut.try_cut s2 ~blocks
      ~policy:{ Dynacut.method_ = `Unmap_pages; on_trap = `Redirect "err_path" }
      ()
  in
  (match r2.Dynacut.r_outcome with
  | `Rolled_back _ -> ()
  | o -> Alcotest.failf "expected rollback: %a" Dynacut.pp_outcome o);
  Alcotest.(check string) "unchanged" "SET-OK" (Test_core.request m2 "S");
  Fault.reset ()

(* ---------- chaos soak against ngx ---------- *)

let test_chaos_soak_ngx () =
  Fault.reset ();
  let app =
    List.find (fun (a : Workload.app) -> a.Workload.a_name = "ngx") Workload.all_apps
  in
  let blocks = Common.web_feature_blocks app in
  let c = Workload.spawn app in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let get = "GET /index.html HTTP/1.0\r\n\r\n" in
  let answers () =
    let resp = Workload.rpc c get in
    Alcotest.(check bool)
      (Printf.sprintf "GET answered (got %S)" resp)
      true
      (String.length resp > 0
      && String.sub resp 0 (min 12 (String.length resp)) = "HTTP/1.0 200")
  in
  answers ();
  let rng = Rng.create 1234 in
  let policy = { Dynacut.method_ = `First_byte; on_trap = `Redirect "ngx_declined" } in
  let chaos_sites = cut_sites @ [ "restore.tcp_repair"; "crit.encode" ] in
  for _cycle = 1 to 12 do
    Fault.reset ();
    Fault.arm (Rng.choose rng chaos_sites) Fault.One_shot;
    (match Dynacut.try_cut session ~blocks ~policy () with
    | { Dynacut.r_outcome = `Applied | `Degraded; r_journals; _ } ->
        answers ();
        (* the armed fault may fire here instead; a rolled-back reenable
           just leaves the feature blocked — still serving *)
        ignore (Dynacut.try_reenable session r_journals)
    | { Dynacut.r_outcome = `Rolled_back _; _ } -> ());
    Fault.reset ();
    (* the invariant: whatever the fault hit, ngx answers *)
    answers ()
  done;
  Alcotest.(check bool) "server alive after soak" true
    (Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid))

(* ---------- supervisor fault sites ---------- *)

(** A fault at [supervisor.promote] must leave the fleet atomic: the
    canary's cut is reverted and the other pids' transaction rolled
    back, so every pid is fully original; a clean retry then leaves
    every pid fully cut. *)
let test_promote_fault_fleet_invariant () =
  Fault.reset ();
  let app = Workload.ngx in
  let blocks = Common.web_feature_blocks app in
  let c = Workload.spawn app in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let effective = Dynacut.redirect_filter session ~sym:"ngx_declined" blocks in
  Alcotest.(check bool) "effective blocks nonempty" true (effective <> []);
  let base = (Common.app_exe app).Self.base in
  let byte_of pid (b : Covgraph.block) =
    Mem.peek8
      (Machine.proc_exn c.Workload.m pid).Proc.mem
      (Int64.add base (Int64.of_int b.Covgraph.b_off))
  in
  let originals = List.map (byte_of c.Workload.pid) effective in
  let check_fleet label want =
    List.iter
      (fun pid ->
        let got = List.map (byte_of pid) effective in
        Alcotest.(check (list int))
          (Printf.sprintf "%s: pid %d" label pid)
          want got)
      (Dynacut.tree_pids session)
  in
  let sup =
    Supervisor.create session
      ~config:{ Supervisor.default_config with Supervisor.canary_windows = 1 }
      ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Redirect "ngx_declined" }
  in
  let drive () =
    ignore (Workload.rpc ~max_cycles:800_000 c "GET /index.html HTTP/1.0\r\n\r\n")
  in
  Fault.arm "supervisor.promote" Fault.One_shot;
  (match Supervisor.guarded_cut sup ~canary:true ~drive () with
  | Supervisor.R_promotion_failed -> ()
  | r -> Alcotest.failf "expected promotion failure: %a" Supervisor.pp_rollout r);
  Alcotest.(check bool) "promote fired" true (Fault.fired "supervisor.promote" = 1);
  (* every pid fully original *)
  check_fleet "after failed promotion" originals;
  Alcotest.(check string) "feature unchanged"
    "HTTP/1.0 201" (String.sub (Workload.rpc c "PUT /u.txt HTTP/1.0\r\n\r\ndata") 0 12);
  (* the (one-shot) fault is gone: the same supervisor promotes cleanly *)
  (match Supervisor.guarded_cut sup ~canary:true ~drive () with
  | Supervisor.R_promoted -> ()
  | r -> Alcotest.failf "clean retry: %a" Supervisor.pp_rollout r);
  (* every pid fully cut *)
  check_fleet "after promotion" (List.map (fun _ -> 0xCC) effective);
  Alcotest.(check string) "feature blocked everywhere"
    "HTTP/1.0 403" (String.sub (Workload.rpc c "PUT /u.txt HTTP/1.0\r\n\r\ndata") 0 12);
  Fault.reset ()

(** A fault at [supervisor.reenable] while the breaker trips must leave
    the cut fully applied; the next tick retries and re-enables fully. *)
let test_reenable_fault_leaves_cut_intact () =
  Fault.reset ();
  (* a deliberately bad cut: the blocks only wanted GETs cover *)
  let wanted = Test_core.trace_run [ "S"; "X"; "S" ] in
  let undesired = Test_core.trace_run [ "G"; "G" ] in
  let blocks =
    (Tracediff.feature_blocks ~wanted:[ wanted ] ~undesired:[ undesired ] ())
      .Tracediff.undesired
  in
  let m, p = Test_core.boot () in
  let session = Dynacut.create m ~root_pid:p.Proc.pid in
  let sup =
    Supervisor.create session
      ~config:{ Supervisor.default_config with Supervisor.max_traps = 1 }
      ~blocks ~policy:redirect_policy
  in
  (match Supervisor.guarded_cut sup ~canary:false ~drive:(fun () -> ()) () with
  | Supervisor.R_promoted -> ()
  | r -> Alcotest.failf "cut: %a" Supervisor.pp_rollout r);
  for _ = 1 to 2 do
    Alcotest.(check string) "G storms" "ERR" (Test_core.request m "G")
  done;
  Fault.arm "supervisor.reenable" Fault.One_shot;
  Supervisor.tick sup;
  Alcotest.(check bool) "reenable fired" true (Fault.fired "supervisor.reenable" = 1);
  (* the trip failed: the cut is still fully applied, no trip recorded *)
  Alcotest.(check bool) "cut still live" true (Supervisor.cut_live sup);
  Alcotest.(check int) "no trip recorded" 0 (Supervisor.trips sup);
  Alcotest.(check string) "still blocked" "ERR" (Test_core.request m "G");
  (* next tick re-detects the storm; the fault is gone, re-enable lands *)
  Supervisor.tick sup;
  Alcotest.(check bool) "re-enabled" false (Supervisor.cut_live sup);
  Alcotest.(check int) "trip recorded" 1 (Supervisor.trips sup);
  Alcotest.(check string) "fully original" "VAL=7" (Test_core.request m "G");
  Fault.reset ()

(** A fault at [restore.respawn] leaves the dead worker dead; the next
    tick retries the respawn and brings it back with the cut intact. *)
let test_respawn_fault_retried () =
  Fault.reset ();
  let wanted = Test_core.trace_run [ "S"; "X"; "S" ] in
  let undesired = Test_core.trace_run [ "G"; "G" ] in
  let blocks =
    (Tracediff.feature_blocks ~wanted:[ wanted ] ~undesired:[ undesired ] ())
      .Tracediff.undesired
  in
  let m, p = Test_core.boot () in
  let pid = p.Proc.pid in
  let session = Dynacut.create m ~root_pid:pid in
  let sup =
    Supervisor.create session
      ~config:{ Supervisor.default_config with Supervisor.max_traps = 1000 }
      ~blocks
      ~policy:{ Dynacut.method_ = `First_byte; on_trap = `Kill }
  in
  (match Supervisor.guarded_cut sup ~canary:false ~drive:(fun () -> ()) () with
  | Supervisor.R_promoted -> ()
  | r -> Alcotest.failf "cut: %a" Supervisor.pp_rollout r);
  let (_ : string) = Test_core.request m "G" in
  Alcotest.(check bool) "killed" false (Proc.is_live (Machine.proc_exn m pid));
  Fault.arm "restore.respawn" Fault.One_shot;
  Supervisor.tick sup;
  Alcotest.(check bool) "respawn fired" true (Fault.fired "restore.respawn" = 1);
  Alcotest.(check bool) "still dead" false (Proc.is_live (Machine.proc_exn m pid));
  Supervisor.tick sup;
  Alcotest.(check bool) "respawned on retry" true
    (Proc.is_live (Machine.proc_exn m pid));
  Alcotest.(check string) "serving again" "SET-OK" (Test_core.request m "S");
  Fault.reset ()

(* ---------- guarded rollout chaos soak ---------- *)

let test_guarded_chaos_soak () =
  Fault.reset ();
  let app = Workload.ngx in
  let blocks = Common.web_feature_blocks app in
  let c = Workload.spawn app in
  Workload.wait_ready c;
  let session = Dynacut.create c.Workload.m ~root_pid:c.Workload.pid in
  let get = "GET /index.html HTTP/1.0\r\n\r\n" in
  let answers () =
    let resp = Workload.rpc c get in
    Alcotest.(check bool)
      (Printf.sprintf "GET answered (got %S)" resp)
      true
      (String.length resp > 0
      && String.sub resp 0 (min 12 (String.length resp)) = "HTTP/1.0 200")
  in
  answers ();
  let rng = Rng.create 4242 in
  let policy = { Dynacut.method_ = `First_byte; on_trap = `Redirect "ngx_declined" } in
  let config = { Supervisor.default_config with Supervisor.canary_windows = 1 } in
  let chaos_sites = List.map fst Fault.known_sites in
  (* a fault on the serving path (e.g. net.serve) aborts that one
     request; the soak's oracle is the post-cycle answers () check *)
  let drive () =
    try ignore (Workload.rpc ~max_cycles:800_000 c get)
    with Fault.Injected _ -> ()
  in
  for _cycle = 1 to 10 do
    Fault.reset ();
    Fault.arm (Rng.choose rng chaos_sites) Fault.One_shot;
    let sup = Supervisor.create session ~config ~blocks ~policy in
    (match Supervisor.guarded_cut sup ~canary:true ~drive () with
    | Supervisor.R_promoted ->
        drive ();
        Supervisor.tick sup;
        (* the armed fault may fire here instead; a rolled-back reenable
           just leaves the feature blocked — still serving *)
        ignore (Dynacut.try_reenable session (Supervisor.journals sup))
    | Supervisor.R_canary_rejected | Supervisor.R_promotion_failed
    | Supervisor.R_rolled_back _ ->
        ());
    Fault.reset ();
    (* the invariant: whatever the fault hit, ngx answers *)
    answers ()
  done;
  Alcotest.(check bool) "server alive after soak" true
    (Proc.is_live (Machine.proc_exn c.Workload.m c.Workload.pid));
  (* every site this run reached is in the static registry *)
  let known = List.map fst Fault.known_sites in
  List.iter
    (fun s -> Alcotest.(check bool) ("site registered: " ^ s) true (List.mem s known))
    (Fault.sites ())

(* ---------- the static site registry ---------- *)

let test_known_sites_registry () =
  let known = List.map fst Fault.known_sites in
  let expected =
    cut_sites
    @ [
        "restore.tcp_repair";
        "restore.respawn";
        "rewrite.unmap";
        "crit.encode";
        "crit.decode";
        "supervisor.promote";
        "supervisor.reenable";
        "journal.lock";
        "journal.append";
        "recover.replay";
        "fleet.wave";
        "fleet.manifest";
        "fleet.reenable";
        "fleet.recut";
        "balancer.dispatch";
        "balancer.health";
        "net.accept_queue";
        "net.serve";
        "fleet.shed";
        "scrub.page";
        "integrity.repair";
        "slice.trace";
        "slice.compute";
        "bbcache.dispatch";
        "bbcache.flush";
      ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("registered: " ^ s) true (List.mem s known))
    expected;
  (* the registry holds nothing beyond the sites the suites exercise *)
  Alcotest.(check int) "registry size" (List.length expected) (List.length known);
  List.iter
    (fun (_, desc) ->
      Alcotest.(check bool) "described" true (String.length desc > 0))
    Fault.known_sites

let suite =
  List.map
    (fun site ->
      Alcotest.test_case ("rollback at " ^ site) `Quick (check_rollback_at site))
    cut_sites
  @ [
      Alcotest.test_case "rollback at restore.tcp_repair" `Quick
        test_rollback_tcp_repair;
      Alcotest.test_case "corrupt/truncated image rejected" `Quick
        test_corrupt_image_rejected;
      Alcotest.test_case "transient fault retried" `Quick test_transient_fault_retried;
      Alcotest.test_case "retry-class fault retried" `Quick
        test_retry_class_fault_retried;
      Alcotest.test_case "degrade falls back to first-byte" `Quick
        test_degrade_falls_back_to_first_byte;
      Alcotest.test_case "chaos soak vs ngx" `Slow test_chaos_soak_ngx;
      Alcotest.test_case "promote fault: fleet stays atomic" `Quick
        test_promote_fault_fleet_invariant;
      Alcotest.test_case "reenable fault: cut stays intact, retried" `Quick
        test_reenable_fault_leaves_cut_intact;
      Alcotest.test_case "respawn fault: retried next tick" `Quick
        test_respawn_fault_retried;
      Alcotest.test_case "guarded rollout chaos soak" `Slow test_guarded_chaos_soak;
      Alcotest.test_case "fault-site registry complete" `Quick
        test_known_sites_registry;
    ]
