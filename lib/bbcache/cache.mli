(** Per-address-space block store with a page-granular inverse index for
    precise invalidation. Pinned to one {!Proc.t}: restore/respawn/fork
    build fresh process objects, so staleness is one physical-equality
    check and a rebuilt cache. *)

type t = {
  c_proc : Proc.t;
  c_blocks : (int64, Block.t) Hashtbl.t;
  c_by_page : (int64, Block.t list ref) Hashtbl.t;
}

val create : Proc.t -> t
val find : t -> int64 -> Block.t option
val insert : t -> Block.t -> unit
val block_count : t -> int

val evict_page : t -> int64 -> int
(** Tombstone and unindex every block overlapping the page; returns how
    many died. *)

val clear : t -> int
(** Tombstone everything; returns how many blocks died. *)
