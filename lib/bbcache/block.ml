(** A decoded basic block: the instructions from an entry point through
    the first block-ending instruction, pre-decoded once into an array of
    slots so dispatch never touches the variable-length byte stream
    again — the DynamoRIO-style "basic block cache" unit.

    Blocks are immutable except for the [b_dead] tombstone and the two
    successor links. [b_dead] is how precise invalidation composes with
    direct linking: eviction cannot chase every inbound link, so a linked
    transition re-validates its target with one boolean load instead. *)

type slot = { s_insn : Insn.t; s_len : int  (** encoded byte length *) }

type t = {
  b_start : int64;  (** entry vaddr *)
  b_size : int;  (** encoded size in bytes *)
  b_slots : slot array;
  b_pages : int64 array;  (** page indexes the encoding spans (1 or 2) *)
  mutable b_dead : bool;  (** evicted; linked predecessors must re-dispatch *)
  mutable b_s1 : t option;  (** direct-linked successors, most recent *)
  mutable b_s2 : t option;  (** first, and one victim slot *)
}

(** Block length cap: bounds decode latency and keeps invalidation local
    (a block can span at most two pages at the 10-byte max insn size). *)
let max_slots = 128

(** Decode the dynamic basic block entered at [start], ending at (and
    including) the first block-ending instruction. Returns [None] when
    the entry byte is an [Int3], unmapped, or undecodable — those must
    take the interpreter's trap path so saved rips, trap counters and
    signal frames stay identical to an uncached run. A mid-block [Int3]
    or decode failure ends the block *before* the offending byte: the
    next dispatch falls back and the interpreter owns the trap. *)
let decode (mem : Mem.t) (start : int64) : t option =
  let slots = ref [] in
  let nslots = ref 0 in
  let pos = ref start in
  let stop = ref false in
  let valid = ref true in
  while not !stop do
    match
      Decode.decode (fun i -> Mem.fetch8 mem (Int64.add !pos (Int64.of_int i)))
    with
    | exception Mem.Fault (_, _) ->
        if !nslots = 0 then valid := false;
        stop := true
    | exception Decode.Invalid_opcode _ ->
        if !nslots = 0 then valid := false;
        stop := true
    | Insn.Int3, _ ->
        if !nslots = 0 then valid := false;
        stop := true
    | insn, len ->
        slots := { s_insn = insn; s_len = len } :: !slots;
        incr nslots;
        pos := Int64.add !pos (Int64.of_int len);
        if Insn.is_block_end insn || !nslots >= max_slots then stop := true
  done;
  if not !valid then None
  else begin
    let size = Int64.to_int (Int64.sub !pos start) in
    let first = Mem.page_index start in
    let last = Mem.page_index (Int64.add start (Int64.of_int (size - 1))) in
    let npages = Int64.to_int (Int64.sub last first) + 1 in
    Some
      {
        b_start = start;
        b_size = size;
        b_slots = Array.of_list (List.rev !slots);
        b_pages = Array.init npages (fun i -> Int64.add first (Int64.of_int i));
        b_dead = false;
        b_s1 = None;
        b_s2 = None;
      }
  end
