(** Per-address-space block store: entry vaddr -> decoded block, plus the
    inverse page index that makes invalidation precise — eviction of a
    dirtied page touches exactly the blocks whose encodings overlap it,
    never the whole cache.

    A cache is pinned to one {!Proc.t} (one address space). Restore,
    respawn and fork all build a fresh process object, so the dispatcher
    detects staleness with one physical-equality check and starts cold —
    no block ever outlives the address space it was decoded from. *)

type t = {
  c_proc : Proc.t;  (** the address space the blocks were decoded from *)
  c_blocks : (int64, Block.t) Hashtbl.t;  (** entry vaddr -> live block *)
  c_by_page : (int64, Block.t list ref) Hashtbl.t;
      (** page index -> blocks whose encoding overlaps the page *)
}

let create (p : Proc.t) =
  { c_proc = p; c_blocks = Hashtbl.create 256; c_by_page = Hashtbl.create 64 }

let find c rip =
  match Hashtbl.find_opt c.c_blocks rip with
  | Some b when not b.Block.b_dead -> Some b
  | _ -> None

let insert c (b : Block.t) =
  Hashtbl.replace c.c_blocks b.Block.b_start b;
  Array.iter
    (fun idx ->
      match Hashtbl.find_opt c.c_by_page idx with
      | Some l -> l := b :: !l
      | None -> Hashtbl.replace c.c_by_page idx (ref [ b ]))
    b.Block.b_pages

let block_count c = Hashtbl.length c.c_blocks

(** Tombstone and unindex every block overlapping the page; returns how
    many died. A block spanning two pages is only counted once — the
    second page's list finds it already dead. *)
let evict_page c idx =
  match Hashtbl.find_opt c.c_by_page idx with
  | None -> 0
  | Some l ->
      let n = ref 0 in
      List.iter
        (fun (b : Block.t) ->
          if not b.Block.b_dead then begin
            b.Block.b_dead <- true;
            incr n;
            match Hashtbl.find_opt c.c_blocks b.Block.b_start with
            | Some cur when cur == b -> Hashtbl.remove c.c_blocks b.Block.b_start
            | _ -> ()
          end)
        !l;
      Hashtbl.remove c.c_by_page idx;
      !n

(** Tombstone everything; returns how many blocks died. *)
let clear c =
  let n = ref 0 in
  Hashtbl.iter
    (fun _ (b : Block.t) ->
      if not b.Block.b_dead then begin
        b.Block.b_dead <- true;
        incr n
      end)
    c.c_blocks;
  Hashtbl.reset c.c_blocks;
  Hashtbl.reset c.c_by_page;
  !n
