(** Nudge-precise invalidation: drain [Mem]'s executable-page dirty set
    into block evictions. Code modifications become visible at the next
    block boundary — the DBI flush contract. *)

val drain : Cache.t -> int
(** Evict blocks overlapping dirtied executable pages; returns how many
    died (0 when clean). Fires ["bbcache.flush"] when there is work; an
    injected [Fail] propagates as [Fault.Injected] and the caller must
    degrade rather than run stale blocks. *)

val flush : Cache.t -> int
(** Drop every block (explicit whole-cache nudge); fires the same
    ["bbcache.flush"] site. *)
