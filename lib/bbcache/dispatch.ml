(** Direct-threaded dispatch over the decoded-block cache.

    [enable] installs an [exec_cached] hook on the machine; the scheduler
    then hands each runnable process to {!exec}, which chains cached
    blocks — fall-through and taken edges alike — into superblocks until
    a trap, blocked syscall, signal, cache miss on an undecodable entry
    (int3), pending invalidation, or fuel exhaustion breaks the chain.
    Block transitions whose predecessor carries a direct link cost no
    dispatch at all; an unlinked transition pays one virtual cycle for
    the table lookup. Executed instructions cost 1/32 cycle each (decode
    was paid once, at block build), which is what moves the virtual
    req/mcycle metric, not just host time.

    The coverage tracer needs no separate instrumentation mode:
    {!Machine.exec_decoded} performs the same block bookkeeping as the
    interpreter, so each cached block entry/exit emits the identical
    [trace] hook events and drcov output is byte-for-byte the same.

    Fidelity rules: a machine with an [on_insn] hook (the dataflow
    slicer) never reaches this code — the scheduler checks the hook
    before consulting [exec_cached]. An ["bbcache.dispatch"] fault
    injected as [Fail] falls back to the interpreter for that quantum;
    a failed flush degrades the dispatcher permanently (stale blocks are
    never an option). *)

type t = {
  d_machine : Machine.t;
  d_caches : (int, Cache.t) Hashtbl.t;  (** pid -> its block cache *)
  mutable d_degraded : bool;
      (** a flush fault fired: every cache was dropped and the machine
          runs on the single-step interpreter from here on *)
  mutable d_hits : int;
  mutable d_decodes : int;
  mutable d_flushes : int;  (** blocks evicted, not flush operations *)
  mutable d_superblocks : int;
  obs_hits : Obs.counter;
  obs_decodes : Obs.counter;
  obs_flushes : Obs.counter;
  obs_sb_len : Obs.histogram;
}

type stats = {
  st_hits : int;  (** block dispatches served from the cache *)
  st_decodes : int;  (** blocks decoded (cold or re-decoded after flush) *)
  st_flushes : int;  (** blocks evicted by invalidation *)
  st_superblocks : int;  (** dispatch chains (histogrammed by length) *)
  st_blocks : int;  (** live cached blocks right now *)
}

let cache_for d (p : Proc.t) =
  match Hashtbl.find_opt d.d_caches p.Proc.pid with
  | Some c when c.Cache.c_proc == p -> c
  | _ ->
      (* first sight of this pid, or its process object was replaced
         (criu restore, supervisor respawn, fork): fresh address space,
         cold cache — no block survives a respawn-from-image *)
      let c = Cache.create p in
      Hashtbl.replace d.d_caches p.Proc.pid c;
      c

(* one virtual cycle per unlinked dispatch: the hash lookup is the
   "indirect branch" of the direct-threaded loop *)
let charge_lookup (m : Machine.t) =
  m.Machine.clock <- Int64.add m.Machine.clock 1L

let lookup_linked prev rip =
  match prev with
  | None -> None
  | Some (pb : Block.t) -> (
      match pb.Block.b_s1 with
      | Some b when b.Block.b_start = rip && not b.Block.b_dead -> Some b
      | _ -> (
          match pb.Block.b_s2 with
          | Some b when b.Block.b_start = rip && not b.Block.b_dead ->
              pb.Block.b_s2 <- pb.Block.b_s1;
              pb.Block.b_s1 <- Some b;
              Some b
          | _ -> None))

let link prev b =
  match prev with
  | None -> ()
  | Some (pb : Block.t) ->
      pb.Block.b_s2 <- pb.Block.b_s1;
      pb.Block.b_s1 <- Some b

(** Run one block; returns instructions executed. Execution leaves the
    block early when a slot diverges from fall-through (taken trap or
    signal, blocked syscall, exit) — detected by comparing rip against
    the statically known next address, never by re-reading memory. *)
let exec_block m (p : Proc.t) (b : Block.t) =
  let slots = b.Block.b_slots in
  let n = Array.length slots in
  let executed = ref 0 in
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ && !i < n do
    let s = slots.(!i) in
    let rip = p.Proc.regs.Proc.rip in
    Machine.exec_decoded m p s.Block.s_insn s.Block.s_len ~cached:true;
    incr executed;
    if
      p.Proc.state <> Proc.Runnable
      || p.Proc.frozen
      || p.Proc.regs.Proc.rip <> Int64.add rip (Int64.of_int s.Block.s_len)
    then continue_ := false
    else incr i
  done;
  !executed

let exec d (p : Proc.t) ~fuel =
  if d.d_degraded then 0
  else
    match
      if Fault.armed "bbcache.dispatch" then Fault.site "bbcache.dispatch"
    with
    | exception Fault.Injected _ -> 0 (* this quantum interprets instead *)
    | () ->
        let m = d.d_machine in
        let cache = cache_for d p in
        let mem = p.Proc.mem in
        let executed = ref 0 in
        let chained = ref 0 in
        let prev = ref None in
        (try
           let continue_ = ref true in
           while !continue_ do
             if
               p.Proc.state <> Proc.Runnable
               || p.Proc.frozen
               || !executed >= fuel
             then continue_ := false
             else begin
               (match Invalidate.drain cache with
               | 0 -> ()
               | k ->
                   d.d_flushes <- d.d_flushes + k;
                   Obs.add d.obs_flushes k;
                   (* links into evicted blocks are dead; re-dispatch *)
                   prev := None);
               let rip = p.Proc.regs.Proc.rip in
               let blk =
                 match lookup_linked !prev rip with
                 | Some b ->
                     d.d_hits <- d.d_hits + 1;
                     Obs.incr d.obs_hits;
                     Some b
                 | None -> (
                     charge_lookup m;
                     match Cache.find cache rip with
                     | Some b ->
                         d.d_hits <- d.d_hits + 1;
                         Obs.incr d.obs_hits;
                         link !prev b;
                         Some b
                     | None -> (
                         match Block.decode mem rip with
                         | None -> None (* int3/fault entry: interpreter *)
                         | Some b ->
                             d.d_decodes <- d.d_decodes + 1;
                             Obs.incr d.obs_decodes;
                             Cache.insert cache b;
                             link !prev b;
                             Some b))
               in
               match blk with
               | None -> continue_ := false
               | Some b ->
                   incr chained;
                   executed := !executed + exec_block m p b;
                   prev := Some b
             end
           done
         with Fault.Injected _ ->
           (* the flush machinery failed mid-drain: never risk a stale
              block — drop every cache and hand the machine back to the
              single-step interpreter for good *)
           Hashtbl.reset d.d_caches;
           d.d_degraded <- true);
        if !chained > 0 then begin
          d.d_superblocks <- d.d_superblocks + 1;
          Obs.observe d.obs_sb_len (float_of_int !chained)
        end;
        !executed

let enable (m : Machine.t) =
  let d =
    {
      d_machine = m;
      d_caches = Hashtbl.create 8;
      d_degraded = false;
      d_hits = 0;
      d_decodes = 0;
      d_flushes = 0;
      d_superblocks = 0;
      obs_hits = Obs.counter "bbcache.hits";
      obs_decodes = Obs.counter "bbcache.decodes";
      obs_flushes = Obs.counter "bbcache.flushes";
      obs_sb_len = Obs.histogram "bbcache.superblock_len";
    }
  in
  m.Machine.exec_cached <- Some (exec d);
  d

let disable d =
  d.d_machine.Machine.exec_cached <- None;
  Hashtbl.reset d.d_caches

let degraded d = d.d_degraded

(** Explicit whole-cache nudge across every pid. *)
let flush_all d =
  match
    Hashtbl.fold (fun _ c n -> n + Invalidate.flush c) d.d_caches 0
  with
  | n ->
      d.d_flushes <- d.d_flushes + n;
      Obs.add d.obs_flushes n;
      Hashtbl.reset d.d_caches
  | exception Fault.Injected _ ->
      Hashtbl.reset d.d_caches;
      d.d_degraded <- true

let stats d =
  {
    st_hits = d.d_hits;
    st_decodes = d.d_decodes;
    st_flushes = d.d_flushes;
    st_superblocks = d.d_superblocks;
    st_blocks = Hashtbl.fold (fun _ c n -> n + Cache.block_count c) d.d_caches 0;
  }

(** Live cached blocks for one pid, counting only a cache that still
    belongs to the pid's *current* process object — a respawned or
    restored process reads 0 until it re-decodes. *)
let cached_blocks d ~pid =
  match Hashtbl.find_opt d.d_caches pid with
  | Some c -> (
      match Machine.proc d.d_machine pid with
      | Some p when p == c.Cache.c_proc -> Cache.block_count c
      | _ -> 0)
  | None -> 0
