(** Direct-threaded dispatch over the decoded-block cache: installs the
    machine's [exec_cached] hook and chains cached blocks into
    superblocks until a trap/syscall/hook boundary. *)

type t

type stats = {
  st_hits : int;  (** block dispatches served from the cache *)
  st_decodes : int;  (** blocks decoded (cold or re-decoded after flush) *)
  st_flushes : int;  (** blocks evicted by invalidation *)
  st_superblocks : int;  (** dispatch chains (histogrammed by length) *)
  st_blocks : int;  (** live cached blocks right now *)
}

val enable : Machine.t -> t
(** Install cached execution on the machine and register the
    [bbcache.*] observability counters. Interpreted semantics are
    preserved exactly (same hooks, counters, signals); only the cycle
    cost model changes. *)

val disable : t -> unit
(** Uninstall and drop every cache; the machine single-steps again. *)

val exec : t -> Proc.t -> fuel:int -> int
(** The installed hook: run up to [fuel] instructions out of the cache;
    0 means "fall back to one interpreter step". *)

val flush_all : t -> unit
(** Explicit whole-cache nudge across every pid (fires
    ["bbcache.flush"]). *)

val degraded : t -> bool
(** True after an injected flush failure forced interpreter-only mode. *)

val stats : t -> stats

val cached_blocks : t -> pid:int -> int
(** Live cached blocks for the pid's *current* process object; a
    respawned/restored process reads 0 until it re-decodes. *)
