(** Nudge-precise invalidation: the bridge from [Mem]'s executable-page
    dirty set to block eviction.

    Every path that modifies code — the rewriter's first-byte int3
    patches, block wipes and page unmaps (via [Mem.poke8]/[protect]/
    [unmap] on the restored image), [committed_deltas] replay, the
    integrity scrubber's repairs, seeded bit flips, and any guest store
    that lands on an executable page — marks the page index in
    [Mem.exec_dirty]. The dispatcher drains that set before running
    another cached block, so a modification is visible at the next block
    boundary: exactly the DBI contract (DynamoRIO flushes the fragments
    overlapping a modified page and re-builds from current bytes).

    Restore and respawn need no draining at all: they build a fresh
    [Proc.t], which the dispatcher detects by physical equality and
    answers with a cold cache. *)

(** Evict the blocks overlapping the dirtied executable pages of the
    cache's address space; returns how many blocks died (0 when the
    dirty set was empty). The ["bbcache.flush"] fault site models the
    flush machinery itself failing — an injected [Fail] propagates as
    [Fault.Injected] and the dispatcher must degrade to the interpreter
    rather than ever run a stale block. *)
let drain (c : Cache.t) =
  let mem = c.Cache.c_proc.Proc.mem in
  if not (Mem.exec_dirty_pending mem) then 0
  else begin
    Fault.site "bbcache.flush";
    List.fold_left
      (fun n idx -> n + Cache.evict_page c idx)
      0 (Mem.take_exec_dirty mem)
  end

(** Unconditionally drop every block of the cache (explicit whole-cache
    nudge); fires the same ["bbcache.flush"] site. *)
let flush (c : Cache.t) =
  Fault.site "bbcache.flush";
  Cache.clear c
