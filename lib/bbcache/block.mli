(** A decoded basic block — the cache unit: instructions pre-decoded once
    from the entry point through the first block-ending instruction. *)

type slot = { s_insn : Insn.t; s_len : int  (** encoded byte length *) }

type t = {
  b_start : int64;  (** entry vaddr *)
  b_size : int;  (** encoded size in bytes *)
  b_slots : slot array;
  b_pages : int64 array;  (** page indexes the encoding spans *)
  mutable b_dead : bool;  (** evicted; linked predecessors must re-dispatch *)
  mutable b_s1 : t option;  (** direct-linked successors, most recent *)
  mutable b_s2 : t option;  (** first, and one victim slot *)
}

val max_slots : int
(** Block length cap (bounds decode latency; ≤ 2 pages spanned). *)

val decode : Mem.t -> int64 -> t option
(** Decode the dynamic basic block entered at the address. [None] when
    the entry byte is an [Int3], unmapped or undecodable — those take
    the interpreter's trap path so trap accounting stays replay-exact.
    A mid-block [Int3] or decode failure ends the block before it. *)
