(** Facade for the decoded-block code cache (DESIGN.md "Code cache"):
    [Block] decodes, [Cache] stores, [Dispatch] executes, [Invalidate]
    evicts. Consumers normally need only [enable]/[disable] plus the
    stats accessors. *)

type t = Dispatch.t
type stats = Dispatch.stats = {
  st_hits : int;
  st_decodes : int;
  st_flushes : int;
  st_superblocks : int;
  st_blocks : int;
}

let enable = Dispatch.enable
let disable = Dispatch.disable
let flush_all = Dispatch.flush_all
let degraded = Dispatch.degraded
let stats = Dispatch.stats
let cached_blocks = Dispatch.cached_blocks
