(** The code-coverage collector — our DynamoRIO+drcov stand-in.

    Attaches to a machine's basic-block hook and records deduplicated
    (module, offset, size) blocks per traced process tree. Supports the
    paper's two extensions (§3.1, §3.3):

    - {b nudges}: [nudge] dumps the coverage collected so far (the
      initialization-phase coverage) and clears the code cache, so the
      remainder of the run yields the serving-phase coverage;
    - {b multi-process}: children of traced processes are traced
      automatically, and blocks merge into one coverage map per tree. *)

type t = {
  machine : Machine.t;
  roots : (int, unit) Hashtbl.t;  (** traced pids (incl. discovered children) *)
  mutable module_map : (string * int64 * int64) list;  (** name, base, end *)
  seen : (int * int * int, int) Hashtbl.t;  (** (mod, off, size) -> seq *)
  mutable seq : int;
  mutable dumps : Drcov.log list;  (** nudge outputs, oldest first *)
  prev_hook : Machine.trace_hook option;
  (* windowed live sampling (fleet drift monitor) — rides alongside the
     cumulative map without disturbing nudge/dump semantics *)
  mutable win_period : int64 option;  (** None = windowing off *)
  mutable win_keep : int;  (** retained closed windows *)
  mutable win_last : int64;  (** virtual clock at last rotation *)
  win_seen : (int * int * int, int) Hashtbl.t;  (** current window *)
  mutable win_seq : int;
  mutable win_logs : Drcov.log list;  (** closed windows, oldest first *)
}

let module_of_vma_name name =
  match String.index_opt name ':' with
  | Some i -> String.sub name 0 i
  | None -> name

(** Derive the module list of a process from its VMA names: the module
    spans from its lowest to highest section VMA. *)
let modules_of_proc (p : Proc.t) : (string * int64 * int64) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v : Mem.vma) ->
      let m = module_of_vma_name v.Mem.va_name in
      if m <> "[stack]" && m <> "[anon]" then begin
        let lo, hi =
          match Hashtbl.find_opt tbl m with
          | Some (lo, hi) -> (min lo v.Mem.va_start, max hi (Mem.vma_end v))
          | None -> (v.Mem.va_start, Mem.vma_end v)
        in
        Hashtbl.replace tbl m (lo, hi)
      end)
    p.Proc.mem.Mem.vmas;
  Hashtbl.fold (fun name (lo, hi) acc -> (name, lo, hi) :: acc) tbl []
  |> List.sort compare

let locate t (addr : int64) =
  let rec go i = function
    | [] -> None
    | (_, base, end_) :: _ when addr >= base && addr < end_ ->
        Some (i, Int64.to_int (Int64.sub addr base))
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.module_map

let on_block t (p : Proc.t) (start : int64) (size : int) =
  let traced =
    Hashtbl.mem t.roots p.Proc.pid
    ||
    (* follow forks: trace children of traced processes *)
    if Hashtbl.mem t.roots p.Proc.parent then begin
      Hashtbl.replace t.roots p.Proc.pid ();
      (* the child may share module layout; merge any new modules *)
      List.iter
        (fun (n, lo, hi) ->
          if not (List.exists (fun (n', _, _) -> n' = n) t.module_map) then
            t.module_map <- t.module_map @ [ (n, lo, hi) ])
        (modules_of_proc p);
      true
    end
    else false
  in
  if traced then
    match locate t start with
    | None -> () (* anonymous memory (JIT/stack) — drcov skips those too *)
    | Some (mid, off) ->
        let key = (mid, off, size) in
        if not (Hashtbl.mem t.seen key) then begin
          Hashtbl.replace t.seen key t.seq;
          t.seq <- t.seq + 1
        end;
        if t.win_period <> None && not (Hashtbl.mem t.win_seen key) then begin
          Hashtbl.replace t.win_seen key t.win_seq;
          t.win_seq <- t.win_seq + 1
        end

(** Start tracing [pid] (and its future children) on [machine]. *)
let attach (machine : Machine.t) ~pid : t =
  let p = Machine.proc_exn machine pid in
  let t =
    {
      machine;
      roots = Hashtbl.create 4;
      module_map = modules_of_proc p;
      seen = Hashtbl.create 1024;
      seq = 0;
      dumps = [];
      prev_hook = machine.Machine.trace;
      win_period = None;
      win_keep = 0;
      win_last = 0L;
      win_seen = Hashtbl.create 256;
      win_seq = 0;
      win_logs = [];
    }
  in
  Hashtbl.replace t.roots pid ();
  machine.Machine.trace <-
    Some
      (fun p start size ->
        (match t.prev_hook with Some h -> h p start size | None -> ());
        on_block t p start size);
  t

(** Register an additional root to trace — how a fleet collector follows
    several sibling workers with one merged module map. *)
let add_root t ~pid =
  let p = Machine.proc_exn t.machine pid in
  Hashtbl.replace t.roots pid ();
  List.iter
    (fun (n, lo, hi) ->
      if not (List.exists (fun (n', _, _) -> n' = n) t.module_map) then
        t.module_map <- t.module_map @ [ (n, lo, hi) ])
    (modules_of_proc p)

let log_of t (seen : (int * int * int, int) Hashtbl.t) : Drcov.log =
  let modules =
    List.mapi
      (fun i (name, base, end_) ->
        { Drcov.mi_id = i; mi_name = name; mi_base = base; mi_end = end_ })
      t.module_map
  in
  let bbs =
    Hashtbl.fold
      (fun (m, off, size) seq acc ->
        { Drcov.bb_mod = m; bb_off = off; bb_size = size; bb_seq = seq } :: acc)
      seen []
    |> List.sort (fun a b -> compare a.Drcov.bb_seq b.Drcov.bb_seq)
  in
  { Drcov.modules; bbs }

let current_log t : Drcov.log = log_of t t.seen

(** The nudge (§3.1): dump the coverage collected so far and clear the
    code cache. The dumped log is the coverage of the phase that just
    ended (e.g. initialization). *)
let nudge t : Drcov.log =
  let log = current_log t in
  t.dumps <- t.dumps @ [ log ];
  Hashtbl.reset t.seen;
  log

(** Stop tracing; returns the final (post-last-nudge) coverage. *)
let detach t : Drcov.log =
  t.machine.Machine.trace <- t.prev_hook;
  current_log t

let dumps t = t.dumps

(* ---------- windowed live sampling (fleet drift monitor) ---------- *)

(** Begin sampling in fixed virtual-clock windows of [period] cycles,
    retaining the last [keep] closed windows. Restarting discards any
    previous window state. *)
let start_window t ~period ~keep =
  t.win_period <- Some period;
  t.win_keep <- max 1 keep;
  t.win_last <- t.machine.Machine.clock;
  Hashtbl.reset t.win_seen;
  t.win_seq <- 0;
  t.win_logs <- []

(** Rotate the current window if at least one period elapsed on the
    machine's virtual clock. Returns the closed window's log, or [None]
    if the window is still open. Call after driving traffic. *)
let window_tick t : Drcov.log option =
  match t.win_period with
  | None -> None
  | Some period ->
      if Int64.sub t.machine.Machine.clock t.win_last < period then None
      else begin
        let log = log_of t t.win_seen in
        t.win_logs <- t.win_logs @ [ log ];
        (let excess = List.length t.win_logs - t.win_keep in
         if excess > 0 then t.win_logs <- List.filteri (fun i _ -> i >= excess) t.win_logs);
        Hashtbl.reset t.win_seen;
        t.win_seq <- 0;
        t.win_last <- t.machine.Machine.clock;
        Some log
      end

(** Retained closed windows, oldest first. *)
let window_logs t = t.win_logs

(** Union coverage over the retained windows plus the open partial one —
    the drift monitor's "what does live traffic reach right now" view. *)
let window_coverage t : Drcov.log =
  let merged = Hashtbl.create 256 in
  let add (log : Drcov.log) =
    List.iter
      (fun (bb : Drcov.bb) ->
        let key = (bb.Drcov.bb_mod, bb.Drcov.bb_off, bb.Drcov.bb_size) in
        if not (Hashtbl.mem merged key) then
          Hashtbl.replace merged key (Hashtbl.length merged))
      log.Drcov.bbs
  in
  List.iter add t.win_logs;
  add (log_of t t.win_seen);
  log_of t merged

(** Stop windowed sampling and clear its state; cumulative coverage and
    nudge dumps are unaffected. *)
let stop_window t =
  t.win_period <- None;
  Hashtbl.reset t.win_seen;
  t.win_seq <- 0;
  t.win_logs <- []
