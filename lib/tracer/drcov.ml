(** drcov-format execution trace logs.

    DynamoRIO's drcov tool emits a module table plus a table of executed
    basic blocks as (module id, start offset, size) — precisely the
    "tuples of <BB addr, BB size>" the paper's undesired-code identifier
    consumes (§3.1). We reproduce the text flavour of the format so logs
    are greppable and diffable. *)

type module_info = {
  mi_id : int;
  mi_name : string;
  mi_base : int64;
  mi_end : int64;
}

type bb = {
  bb_mod : int;  (** module id *)
  bb_off : int;  (** module-relative offset *)
  bb_size : int;
  bb_seq : int;  (** first-execution sequence number (temporal order) *)
}

type log = { modules : module_info list; bbs : bb list }

let module_of_bb log b = List.find_opt (fun m -> m.mi_id = b.bb_mod) log.modules

let bb_count log = List.length log.bbs

(** Total bytes of code covered. *)
let covered_bytes log = List.fold_left (fun a b -> a + b.bb_size) 0 log.bbs

let to_string (l : log) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "DRCOV VERSION: 2\n";
  Buffer.add_string b "DRCOV FLAVOR: dynacut\n";
  Buffer.add_string b
    (Printf.sprintf "Module Table: version 2, count %d\n" (List.length l.modules));
  Buffer.add_string b "Columns: id, base, end, path\n";
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "%3d, 0x%Lx, 0x%Lx, %s\n" m.mi_id m.mi_base m.mi_end m.mi_name))
    l.modules;
  Buffer.add_string b (Printf.sprintf "BB Table: %d bbs\n" (List.length l.bbs));
  Buffer.add_string b "module id, start, size, seq\n";
  List.iter
    (fun bb ->
      Buffer.add_string b
        (Printf.sprintf "%3d, 0x%x, %d, %d\n" bb.bb_mod bb.bb_off bb.bb_size bb.bb_seq))
    l.bbs;
  Buffer.contents b

exception Drcov_malformed of { offset : int; reason : string }
(** A truncated or corrupted trace file. [offset] is the 1-based line
    number of the offending line (one past the last line when the file
    ends too early). Trace logs travel through the host filesystem
    ([trace -o] / [tracediff -w]), so bit flips and truncation are
    ordinary events there — consumers get a typed error, never a bare
    [Failure] or an out-of-bounds crash. *)

let malformed offset fmt =
  Printf.ksprintf (fun reason -> raise (Drcov_malformed { offset; reason })) fmt

let parse_line_fields s = String.split_on_char ',' s |> List.map String.trim

(* wrap the stdlib parsers so a bit-flipped number reports its line *)
let int_field ~line ~what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> malformed line "bad %s %S" what s

let int64_field ~line ~what s =
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> malformed line "bad %s %S" what s

let of_string (s : string) : log =
  (* keep 1-based line numbers through the blank-line filter, so errors
     point into the file as the user sees it *)
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let eof = 1 + List.fold_left (fun acc (n, _) -> max acc n) 0 lines in
  let rec skip_headers = function
    | (ln, l) :: rest when String.length l >= 12 && String.sub l 0 12 = "Module Table"
      -> (
        match String.rindex_opt l ' ' with
        | Some i ->
            let n =
              int_field ~line:ln ~what:"module count"
                (String.sub l (i + 1) (String.length l - i - 1))
            in
            (n, rest)
        | None -> malformed ln "bad module table header")
    | _ :: rest -> skip_headers rest
    | [] -> malformed eof "no module table"
  in
  let nmod, rest = skip_headers lines in
  let rest =
    match rest with _cols :: r -> r | [] -> malformed eof "truncated after module table header"
  in
  let rec take n acc rest =
    if n = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> malformed eof "truncated module table (%d more expected)" n
      | (ln, l) :: r -> (
          match parse_line_fields l with
          | [ id; base; end_; path ] ->
              take (n - 1)
                ({
                   mi_id = int_field ~line:ln ~what:"module id" id;
                   mi_base = int64_field ~line:ln ~what:"module base" base;
                   mi_end = int64_field ~line:ln ~what:"module end" end_;
                   mi_name = path;
                 }
                :: acc)
                r
          | _ -> malformed ln "bad module line: %s" l)
  in
  let modules, rest = take nmod [] rest in
  let rest =
    match rest with
    | (_, bbhdr) :: _cols :: r
      when String.length bbhdr >= 8 && String.sub bbhdr 0 8 = "BB Table" ->
        r
    | (ln, _) :: _ -> malformed ln "no bb table"
    | [] -> malformed eof "no bb table"
  in
  let bbs =
    List.map
      (fun (ln, l) ->
        match parse_line_fields l with
        | [ m; off; size; seq ] ->
            {
              bb_mod = int_field ~line:ln ~what:"bb module id" m;
              bb_off = int_field ~line:ln ~what:"bb offset" off;
              bb_size = int_field ~line:ln ~what:"bb size" size;
              bb_seq = int_field ~line:ln ~what:"bb seq" seq;
            }
        | _ -> malformed ln "bad bb line: %s" l)
      rest
  in
  { modules; bbs }
