(** drcov-format execution trace logs: a module table plus executed basic
    blocks as (module id, offset, size) — the paper's
    "tuples of <BB addr, BB size>" (§3.1). *)

type module_info = {
  mi_id : int;
  mi_name : string;
  mi_base : int64;
  mi_end : int64;
}

type bb = {
  bb_mod : int;
  bb_off : int;
  bb_size : int;
  bb_seq : int;  (** first-execution order *)
}

type log = { modules : module_info list; bbs : bb list }

val module_of_bb : log -> bb -> module_info option
val bb_count : log -> int
val covered_bytes : log -> int

val to_string : log -> string

exception Drcov_malformed of { offset : int; reason : string }
(** A truncated or corrupted trace log. [offset] is the 1-based line
    number of the offending line (one past the last line when the file
    ends too early). *)

val of_string : string -> log
(** Inverse of {!to_string}; raises {!Drcov_malformed} on any malformed
    input — truncated header or tables, short tuples, non-numeric
    fields, trailing garbage — never a bare [Failure] or an
    out-of-bounds access. *)
