(** The code-coverage collector (DynamoRIO/drcov stand-in): deduplicated
    (module, offset, size) blocks per traced process tree, with the
    paper's two extensions — init-phase nudges and multi-process
    tracing (§3.1, §3.3). *)

type t

val modules_of_proc : Proc.t -> (string * int64 * int64) list
(** (name, base, end) of each mapped module, derived from VMA names. *)

val attach : Machine.t -> pid:int -> t
(** Start tracing [pid]; children forked later are traced automatically
    and their coverage merges into the same map. *)

val current_log : t -> Drcov.log

val nudge : t -> Drcov.log
(** Dump the coverage collected so far (the phase that just ended) and
    clear the code cache (§3.1). *)

val detach : t -> Drcov.log
(** Stop tracing; returns the post-last-nudge coverage. *)

val dumps : t -> Drcov.log list
(** All nudge outputs, oldest first. *)

val add_root : t -> pid:int -> unit
(** Also trace [pid] (a sibling worker); its modules merge into the
    collector's map so fleet-wide coverage shares one block namespace. *)

(** {2 Windowed live sampling}

    A drift monitor needs "what does traffic reach {e right now}", not
    cumulative coverage: these sample into fixed virtual-clock windows
    alongside (and without disturbing) the cumulative map and nudges. *)

val start_window : t -> period:int64 -> keep:int -> unit
(** Sample in windows of [period] virtual cycles, retaining the last
    [keep] closed windows. Restarting discards previous window state. *)

val window_tick : t -> Drcov.log option
(** Rotate the window if a period elapsed; returns the closed window. *)

val window_logs : t -> Drcov.log list
(** Retained closed windows, oldest first. *)

val window_coverage : t -> Drcov.log
(** Union of the retained windows plus the open partial window. *)

val stop_window : t -> unit
(** Stop windowed sampling; cumulative coverage is unaffected. *)
