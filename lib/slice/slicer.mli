(** Dynamic dataflow slicing tracer — records def-use provenance at
    block granularity while the guest runs (forward dependency-set
    propagation, so no trace is retained), anchors slices at
    wanted-feature socket outputs, and yields the set of blocks the
    wanted outputs depend on. Covered blocks outside that set are
    [Sliced_away] cut candidates. Deterministic given the machine seed
    and drive, so slices replay bit-for-bit and verifier
    counterexamples re-join reproducibly. *)

type t

type stats = {
  st_insns : int;  (** instructions traced *)
  st_blocks_seen : int;  (** distinct dynamic blocks interned *)
  st_slice_blocks : int;  (** blocks in the slice (incl. counterexamples) *)
  st_anchors : int;  (** wanted outputs anchored *)
  st_sets : int;  (** hash-consed depsets interned *)
  st_mem_ranges : int;  (** live abstract-memory ranges, all procs *)
  st_counterexamples : int;
  st_sampled_off : int;  (** sampling decisions that disabled tracing *)
}

val attach :
  Machine.t ->
  pid:int ->
  ?sample:Rng.t * float ->
  wanted_out:(string -> bool) ->
  unit ->
  t
(** Start slicing [pid] and its future children, chaining after any
    [on_insn]/[on_syscall] hooks already installed. [wanted_out]
    decides which socket-write payloads are wanted-feature outputs
    (slice anchors). [sample] (rng, probability) enables sampled
    tracing: each accept attempt draws a fresh seeded decision whether
    tracing is on — gaps under-approximate the slice and are repaid by
    the verifier counterexample loop. Fault site ["slice.trace"]. *)

val detach : t -> unit
(** Restore the chained hooks; computed state stays readable. *)

val slice : t -> (string * int * int) list
(** Every (module name, block-start offset, extent in bytes) span that
    contributed to a wanted output, plus counterexamples (extent 1).
    Dynamic blocks are maximal fall-through runs and can span several
    static CFG blocks — match static blocks by range overlap, not
    start-point membership. Fault site ["slice.compute"]. *)

val add_counterexample : t -> module_:string -> off:int -> unit
(** A verifier false positive — a sliced-away block trapped post-cut.
    Re-joins the slice permanently and journals the event
    (["slice.counterexamples"] counter + ring event). *)

val counterexamples : t -> (string * int) list
val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
