(** Dynamic dataflow slicing tracer — the third block-identification
    mode, alongside the drcov collector's coverage diff.

    Runs as a chained [Machine.on_insn] / [Machine.on_syscall] hook
    pair over a traced process tree and computes, per storage location
    (register, flags, abstract memory range), the *dependency set* of
    dynamic basic blocks whose execution contributed to the location's
    current value — the forward-propagation formulation of dynamic
    slicing, which never retains the trace itself. Whenever the guest
    emits a wanted output (a socket write whose payload satisfies the
    [wanted_out] predicate), the dependency sets reachable from that
    output — argument registers, the written buffer's abstract memory,
    the control context — are folded into the slice. Every covered
    block outside the final slice ran without ever contributing to a
    wanted output: the [Sliced_away] cut-candidate class.

    Control dependence uses a per-call-depth control stack: conditional
    and indirect transfers union their decision's dependencies into the
    current level (later blocks at that level depend on every decision
    taken there so far — conservative), calls push the caller's context
    plus the call site, returns pop. Depsets are hash-consed sorted
    arrays with memoized pairwise unions, so per-instruction cost is a
    few table lookups.

    Determinism: everything replays bit-for-bit from the machine's
    virtual clock and seed, so a slice can be recomputed on demand from
    a twin run instead of storing traces, and a verifier counterexample
    (a wrongly sliced block that trapped post-cut) re-joins the slice
    reproducibly via {!add_counterexample}. *)

(* ---------- hash-consed dependency sets ---------- *)

type set = { sid : int; elts : int array  (** sorted, unique block ids *) }

type pstate = {
  regdep : set array;  (** 16 GPRs *)
  mutable flagdep : set;  (** zf/sf/cf/of as one pseudo-location *)
  mutable ctrl : set array;  (** control stack; index = call depth *)
  mutable depth : int;
  mem : set Absmem.t;
  mutable cur : set;  (** {cur block} as a singleton (empty off-module) *)
  mutable cur_id : int;  (** dense id of [cur], or -1 off-module *)
  mutable cur_vaddr : int64;  (** vaddr the current dynamic block began at *)
  mutable expect_new : bool;  (** next insn starts a new dynamic block *)
}

type stats = {
  st_insns : int;  (** instructions traced *)
  st_blocks_seen : int;  (** distinct dynamic blocks interned *)
  st_slice_blocks : int;  (** blocks in the slice (incl. counterexamples) *)
  st_anchors : int;  (** wanted outputs anchored *)
  st_sets : int;  (** hash-consed depsets interned *)
  st_mem_ranges : int;  (** live abstract-memory ranges, all procs *)
  st_counterexamples : int;
  st_sampled_off : int;  (** sampling decisions that disabled tracing *)
}

type t = {
  machine : Machine.t;
  roots : (int, unit) Hashtbl.t;
  mutable module_map : (string * int64 * int64) list;
  (* block interning: (module idx, offset) <-> dense id *)
  ids : (int * int, int) Hashtbl.t;
  mutable rev : (int * int) array;
  mutable nblocks : int;
  (* dynamic blocks are maximal fall-through runs, so one can span
     several static CFG blocks; [ext] records the longest extent (in
     bytes, through the start of the last instruction executed) seen
     per block id, and {!slice} reports spans so callers can match
     static blocks by overlap rather than start-point membership *)
  ext : (int, int) Hashtbl.t;
  (* depset interning *)
  sets : (int array, set) Hashtbl.t;
  mutable nsets : int;
  unions : (int * int, set) Hashtbl.t;
  singles : (int, set) Hashtbl.t;
  empty : set;
  procs : (int, pstate) Hashtbl.t;
  wanted_out : string -> bool;
  mutable slice_deps : set;
  mutable anchors : int;
  mutable insns : int;
  mutable counterexamples : (string * int) list;
  (* sampled-tracing mode: a fresh seeded decision per accepted
     connection; gaps under-approximate the slice and are repaid by the
     verifier counterexample loop *)
  sample : (Rng.t * float) option;
  mutable tracing : bool;
  mutable sampled_off : int;
  prev_insn : Machine.insn_hook option;
  prev_syscall : Machine.syscall_hook option;
  obs_anchors : Obs.counter;
}

(* ---------- set algebra ---------- *)

let intern t (elts : int array) : set =
  match Hashtbl.find_opt t.sets elts with
  | Some s -> s
  | None ->
      let s = { sid = t.nsets; elts } in
      t.nsets <- t.nsets + 1;
      Hashtbl.add t.sets elts s;
      s

let singleton t b =
  match Hashtbl.find_opt t.singles b with
  | Some s -> s
  | None ->
      let s = intern t [| b |] in
      Hashtbl.add t.singles b s;
      s

let merge (a : int array) (b : int array) : int array =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then (out.(!k) <- x; incr i)
    else if y < x then (out.(!k) <- y; incr j)
    else (out.(!k) <- x; incr i; incr j);
    incr k
  done;
  while !i < na do out.(!k) <- a.(!i); incr i; incr k done;
  while !j < nb do out.(!k) <- b.(!j); incr j; incr k done;
  if !k = na + nb then out else Array.sub out 0 !k

let union t (a : set) (b : set) : set =
  if a == b || Array.length b.elts = 0 then a
  else if Array.length a.elts = 0 then b
  else begin
    let key = if a.sid < b.sid then (a.sid, b.sid) else (b.sid, a.sid) in
    match Hashtbl.find_opt t.unions key with
    | Some s -> s
    | None ->
        let s = intern t (merge a.elts b.elts) in
        Hashtbl.add t.unions key s;
        s
  end

(* ---------- block identities ---------- *)

let locate t (addr : int64) =
  let rec go i = function
    | [] -> None
    | (_, base, end_) :: _ when addr >= base && addr < end_ ->
        Some (i, Int64.to_int (Int64.sub addr base))
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.module_map

let intern_block t mid off : int =
  match Hashtbl.find_opt t.ids (mid, off) with
  | Some id -> id
  | None ->
      let id = t.nblocks in
      if id >= Array.length t.rev then begin
        let bigger = Array.make (max 64 (2 * Array.length t.rev)) (0, 0) in
        Array.blit t.rev 0 bigger 0 (Array.length t.rev);
        t.rev <- bigger
      end;
      t.rev.(id) <- (mid, off);
      t.nblocks <- id + 1;
      Hashtbl.add t.ids (mid, off) id;
      id

(* ---------- per-process state ---------- *)

let fresh_pstate t : pstate =
  {
    regdep = Array.make 16 t.empty;
    flagdep = t.empty;
    ctrl = Array.make 16 t.empty;
    depth = 0;
    mem = Absmem.create ();
    cur = t.empty;
    cur_id = -1;
    cur_vaddr = 0L;
    expect_new = true;
  }

let pstate_of t (p : Proc.t) : pstate =
  match Hashtbl.find_opt t.procs p.Proc.pid with
  | Some st -> st
  | None ->
      let st = fresh_pstate t in
      Hashtbl.add t.procs p.Proc.pid st;
      st

let traced t (p : Proc.t) =
  Hashtbl.mem t.roots p.Proc.pid
  ||
  (* follow forks: children of traced processes are traced too *)
  if Hashtbl.mem t.roots p.Proc.parent then begin
    Hashtbl.replace t.roots p.Proc.pid ();
    List.iter
      (fun (n, lo, hi) ->
        if not (List.exists (fun (n', _, _) -> n' = n) t.module_map) then
          t.module_map <- t.module_map @ [ (n, lo, hi) ])
      (Collector.modules_of_proc p);
    true
  end
  else false

let ctrl_top st = st.ctrl.(st.depth)

let push_ctrl t st (s : set) =
  let d = st.depth + 1 in
  if d >= Array.length st.ctrl then begin
    let bigger = Array.make (2 * Array.length st.ctrl) t.empty in
    Array.blit st.ctrl 0 bigger 0 (Array.length st.ctrl);
    st.ctrl <- bigger
  end;
  st.ctrl.(d) <- s;
  st.depth <- d

(* ---------- the per-instruction hook ---------- *)

let on_insn t (p : Proc.t) (insn : Insn.t) =
  if t.tracing && traced t p then begin
    let st = pstate_of t p in
    t.insns <- t.insns + 1;
    let regs = p.Proc.regs in
    if st.expect_new then begin
      (match locate t regs.Proc.rip with
      | Some (mid, off) ->
          let id = intern_block t mid off in
          st.cur <- singleton t id;
          st.cur_id <- id
      | None ->
          st.cur <- t.empty (* anonymous memory; drcov skips it too *);
          st.cur_id <- -1);
      st.cur_vaddr <- regs.Proc.rip;
      st.expect_new <- false
    end;
    if st.cur_id >= 0 then begin
      let rel = Int64.to_int (Int64.sub regs.Proc.rip st.cur_vaddr) + 1 in
      match Hashtbl.find_opt t.ext st.cur_id with
      | Some e when e >= rel -> ()
      | _ -> Hashtbl.replace t.ext st.cur_id rel
    end;
    let e = Defuse.effect insn in
    let ea (a : Defuse.access) =
      Int64.add (Proc.get regs a.Defuse.a_base) (Int64.of_int a.Defuse.a_disp)
    in
    (* the value every def carries: its data sources, the control
       context that let this instruction run, and the block computing it *)
    let u = ref (union t st.cur (ctrl_top st)) in
    List.iter
      (fun r -> u := union t !u st.regdep.(Reg.to_int r))
      e.Defuse.uses;
    if e.Defuse.uses_flags then u := union t !u st.flagdep;
    List.iter
      (fun a ->
        List.iter
          (fun s -> u := union t !u s)
          (Absmem.read st.mem ~addr:(ea a) ~len:a.Defuse.a_len))
      e.Defuse.loads;
    let u = !u in
    List.iter (fun r -> st.regdep.(Reg.to_int r) <- u) e.Defuse.defs;
    if e.Defuse.defs_flags then st.flagdep <- u;
    List.iter
      (fun a -> Absmem.write st.mem ~addr:(ea a) ~len:a.Defuse.a_len u)
      e.Defuse.stores;
    (match e.Defuse.control with
    | Defuse.Straight | Defuse.Jump | Defuse.Stop | Defuse.Sys -> ()
    | Defuse.Cond_jump ->
        (* blocks after a decision depend on every decision taken at
           this level so far — union, never overwrite *)
        st.ctrl.(st.depth) <-
          union t (ctrl_top st) (union t st.flagdep st.cur)
    | Defuse.Indirect_jump r ->
        st.ctrl.(st.depth) <-
          union t (ctrl_top st) (union t st.regdep.(Reg.to_int r) st.cur)
    | Defuse.Call_push -> push_ctrl t st (union t (ctrl_top st) st.cur)
    | Defuse.Indirect_call r ->
        push_ctrl t st
          (union t (ctrl_top st) (union t st.regdep.(Reg.to_int r) st.cur))
    | Defuse.Return -> st.depth <- max 0 (st.depth - 1));
    if Insn.is_block_end insn then st.expect_new <- true
  end

(* ---------- the syscall hook: anchors + input modelling ---------- *)

let anchor t (st : pstate) ~(regs : Proc.regs) ~(buf : int64) ~(len : int) =
  let d = ref (union t st.cur (ctrl_top st)) in
  List.iter
    (fun r -> d := union t !d st.regdep.(Reg.to_int r))
    [ Reg.Rdi; Reg.Rsi; Reg.Rdx ];
  ignore regs;
  List.iter
    (fun s -> d := union t !d s)
    (if len > 0 then Absmem.read st.mem ~addr:buf ~len else []);
  t.slice_deps <- union t t.slice_deps !d;
  t.anchors <- t.anchors + 1;
  Obs.incr t.obs_anchors

let buf_cap = 65_536

let on_syscall t (p : Proc.t) (nr : int) =
  if traced t p then begin
    (* sampled mode: one fresh seeded decision per accept attempt *)
    (match t.sample with
    | Some (rng, p_on) when nr = Abi.sys_accept ->
        let on = Rng.float rng < p_on in
        if t.tracing && not on then t.sampled_off <- t.sampled_off + 1;
        t.tracing <- on
    | _ -> ());
    (* a new connection is a fresh control context: without this reset,
       the accept loop's check of the previous handler's return value
       unions that whole request's dependency set (miss/error arms
       included) into the loop-depth control cell forever, and every
       later anchor inherits it — the slice would converge to the
       coverage. Data still flows across connections through memory;
       only stale control dependence is dropped. *)
    (if nr = Abi.sys_accept && t.tracing then
       match Hashtbl.find_opt t.procs p.Proc.pid with
       | Some st ->
           for i = 0 to st.depth do
             st.ctrl.(i) <- t.empty
           done;
           st.flagdep <- t.empty
       | None -> ());
    if t.tracing then begin
      let st = pstate_of t p in
      let regs = p.Proc.regs in
      let a1 = Proc.get regs Reg.Rdi
      and a2 = Proc.get regs Reg.Rsi
      and a3 = Proc.get regs Reg.Rdx in
      let is_sock fd =
        match Hashtbl.find_opt p.Proc.fds (Int64.to_int fd) with
        | Some (Proc.Fd_sock _) -> true
        | _ -> false
      in
      if (nr = Abi.sys_write || nr = Abi.sys_send) && is_sock a1 then begin
        let len = min (max 0 (Int64.to_int a3)) buf_cap in
        let payload =
          match Mem.read_bytes p.Proc.mem a2 len with
          | b -> Bytes.to_string b
          | exception Mem.Fault _ -> ""
        in
        if t.wanted_out payload then anchor t st ~regs ~buf:a2 ~len
      end
      else if nr = Abi.sys_read || nr = Abi.sys_recv then begin
        (* bytes arriving from outside the program: defined here, by
           the receiving block in its control context *)
        let len = min (max 0 (Int64.to_int a3)) buf_cap in
        if len > 0 then
          Absmem.write st.mem ~addr:a2 ~len (union t st.cur (ctrl_top st))
      end
    end
  end

(* ---------- lifecycle ---------- *)

(** Start slicing [pid] (and its future children) on [machine], chained
    after any hooks already installed. [wanted_out] decides which
    socket-write payloads count as wanted-feature outputs (the slice
    anchors). [sample] (rng, probability) enables sampled tracing: each
    accept attempt re-decides whether tracing is on. *)
let attach (machine : Machine.t) ~pid ?sample ~(wanted_out : string -> bool)
    () : t =
  Fault.site "slice.trace";
  let p = Machine.proc_exn machine pid in
  let empty = { sid = 0; elts = [||] } in
  let t =
    {
      machine;
      roots = Hashtbl.create 4;
      module_map = Collector.modules_of_proc p;
      ids = Hashtbl.create 256;
      rev = Array.make 256 (0, 0);
      nblocks = 0;
      ext = Hashtbl.create 256;
      sets = Hashtbl.create 1024;
      nsets = 1;
      unions = Hashtbl.create 4096;
      singles = Hashtbl.create 256;
      empty;
      procs = Hashtbl.create 4;
      wanted_out;
      slice_deps = empty;
      anchors = 0;
      insns = 0;
      counterexamples = [];
      sample;
      tracing = true;
      sampled_off = 0;
      prev_insn = machine.Machine.on_insn;
      prev_syscall = machine.Machine.on_syscall;
      obs_anchors = Obs.counter "slice.anchors";
    }
  in
  Hashtbl.add t.sets [||] empty;
  Hashtbl.replace t.roots pid ();
  machine.Machine.on_insn <-
    Some
      (fun p insn ->
        (match t.prev_insn with Some h -> h p insn | None -> ());
        on_insn t p insn);
  machine.Machine.on_syscall <-
    Some
      (fun p nr ->
        (match t.prev_syscall with Some h -> h p nr | None -> ());
        on_syscall t p nr);
  t

(** Stop slicing: restore the chained hooks. The computed state stays
    readable ({!slice}, {!stats}). *)
let detach t =
  t.machine.Machine.on_insn <- t.prev_insn;
  t.machine.Machine.on_syscall <- t.prev_syscall

(** A verifier false positive: a block we sliced away trapped post-cut,
    so it does affect the wanted feature. Re-joins the slice (and every
    future {!slice} computation) and journals the event. *)
let add_counterexample t ~(module_ : string) ~(off : int) =
  if not (List.mem (module_, off) t.counterexamples) then begin
    t.counterexamples <- t.counterexamples @ [ (module_, off) ];
    Obs.incr (Obs.counter "slice.counterexamples");
    Obs.event ~kind:"slice"
      (Printf.sprintf "counterexample %s+0x%x re-joins slice" module_ off)
  end

let counterexamples t = t.counterexamples

(** The slice: every (module name, offset, extent) span whose dynamic
    block contributed to a wanted output, plus the verifier
    counterexamples (extent 1). A dynamic block is a maximal
    fall-through run, so its span can cross several static CFG blocks;
    match static blocks against the slice by range overlap. *)
let slice t : (string * int * int) list =
  Fault.site "slice.compute";
  Obs.with_span "slice.compute" @@ fun () ->
  let name mid =
    match List.nth_opt t.module_map mid with
    | Some (n, _, _) -> n
    | None -> Printf.sprintf "module%d" mid
  in
  let of_id id =
    let mid, off = t.rev.(id) in
    let len =
      match Hashtbl.find_opt t.ext id with Some e -> e | None -> 1
    in
    (name mid, off, len)
  in
  let from_deps = Array.to_list (Array.map of_id t.slice_deps.elts) in
  List.fold_left
    (fun acc (m, off) ->
      if List.exists (fun (m', o', _) -> m' = m && o' = off) acc then acc
      else acc @ [ (m, off, 1) ])
    from_deps t.counterexamples

let stats t : stats =
  {
    st_insns = t.insns;
    st_blocks_seen = t.nblocks;
    st_slice_blocks = List.length (slice t);
    st_anchors = t.anchors;
    st_sets = t.nsets;
    st_mem_ranges =
      Hashtbl.fold (fun _ st acc -> acc + Absmem.cardinal st.mem) t.procs 0;
    st_counterexamples = List.length t.counterexamples;
    st_sampled_off = t.sampled_off;
  }

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "slicer: %d insns, %d blocks seen, %d in slice (%d anchors, %d \
     counterexamples), %d depsets, %d mem ranges%s"
    s.st_insns s.st_blocks_seen s.st_slice_blocks s.st_anchors
    s.st_counterexamples s.st_sets s.st_mem_ranges
    (if s.st_sampled_off > 0 then
       Printf.sprintf ", %d sampled off" s.st_sampled_off
     else "")
