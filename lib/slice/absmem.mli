(** Abstract memory for the dynamic slicer: payloads keyed by address
    ranges with strong-update writes, range splitting, and coalescing of
    adjacent equal-payload ranges — table size proportional to distinct
    touched regions, not bytes. *)

type 'a t

val create : ?eq:('a -> 'a -> bool) -> unit -> 'a t
(** [eq] (default physical equality) decides when adjacent ranges
    coalesce — pass structural equality for unshared payloads. *)

val write : 'a t -> addr:int64 -> len:int -> 'a -> unit
(** Strong update: [addr, addr+len) carries exactly the payload
    afterwards. [len <= 0] is a no-op. *)

val read : 'a t -> addr:int64 -> len:int -> 'a list
(** Payloads of every range overlapping [addr, addr+len), address
    order, deduplicated physically. Empty = nothing known there. *)

val ranges : 'a t -> (int64 * int * 'a) list
(** All ranges as (start, len, payload), sorted by start — disjoint,
    and no two adjacent ranges with equal payloads (coalescing
    invariant). *)

val cardinal : 'a t -> int
val clear : 'a t -> unit
