(** Per-instruction def/use tables over the vx86 ISA — one match arm
    per {!Insn.t} constructor, so a new instruction fails to compile
    until its dataflow is declared. *)

type access = {
  a_base : Reg.t;  (** effective address = [a_base] + [a_disp] *)
  a_disp : int;
  a_len : int;  (** bytes touched: 1 or 8 *)
}

type control =
  | Straight
  | Jump
  | Cond_jump
  | Indirect_jump of Reg.t
  | Call_push
  | Indirect_call of Reg.t
  | Return
  | Sys
  | Stop

type effect = {
  uses : Reg.t list;  (** registers read (address bases included) *)
  defs : Reg.t list;  (** registers written *)
  uses_flags : bool;
  defs_flags : bool;
  loads : access list;
  stores : access list;
  control : control;
}

val effect : Insn.t -> effect
(** Total over {!Insn.t}. Syscall buffer memory effects are modelled by
    the slicer's syscall hook, not here. *)

val all_constructors : Insn.t list
(** One representative instance per constructor (exhaustiveness test
    input); its length is the constructor count of {!Insn.t}. *)
