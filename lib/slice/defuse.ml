(** Per-instruction def/use tables over the vx86 ISA.

    One total function, {!effect}, maps every {!Insn.t} constructor to
    the registers it reads and writes, whether it reads or writes the
    condition flags, the memory operands it loads from and stores to
    (as base register + displacement + width, so the dynamic tracer can
    recompute the effective address from pre-execution registers), and
    its control class. The match is intentionally one arm per
    constructor — adding an instruction to {!Insn.t} fails to compile
    here until its dataflow is declared, and the exhaustiveness test
    walks a sample of every constructor. *)

type access = {
  a_base : Reg.t;  (** effective address = [a_base] + [a_disp] *)
  a_disp : int;
  a_len : int;  (** bytes touched: 1 or 8 *)
}

(** How the instruction leaves the instruction stream. The slicer keys
    its control-dependence bookkeeping off this: conditional and
    indirect transfers make a decision (later blocks depend on it),
    calls push a control-stack level, returns pop one. *)
type control =
  | Straight  (** falls through; no transfer *)
  | Jump  (** unconditional direct transfer — no decision made *)
  | Cond_jump  (** decision read from the flags *)
  | Indirect_jump of Reg.t  (** decision read from a register *)
  | Call_push  (** direct call: pushes a control level *)
  | Indirect_call of Reg.t  (** indirect call: decision + push *)
  | Return  (** pops a control level *)
  | Sys  (** syscall: kernel boundary (block end) *)
  | Stop  (** hlt / int3: execution does not continue *)

type effect = {
  uses : Reg.t list;  (** registers read (address bases included) *)
  defs : Reg.t list;  (** registers written *)
  uses_flags : bool;
  defs_flags : bool;
  loads : access list;
  stores : access list;
  control : control;
}

let straight ?(uses = []) ?(defs = []) ?(uses_flags = false)
    ?(defs_flags = false) ?(loads = []) ?(stores = []) ?(control = Straight) ()
    =
  { uses; defs; uses_flags; defs_flags; loads; stores; control }

(* dst <- f(dst, src) *)
let alu_rr d s = straight ~uses:[ d; s ] ~defs:[ d ] ()

(* dst <- f(dst, imm) *)
let alu_ri d = straight ~uses:[ d ] ~defs:[ d ] ()

let effect : Insn.t -> effect = function
  | Insn.Nop -> straight ()
  | Insn.Int3 -> straight ~control:Stop ()
  | Insn.Hlt -> straight ~control:Stop ()
  | Insn.Mov_rr (d, s) -> straight ~uses:[ s ] ~defs:[ d ] ()
  | Insn.Mov_ri (d, _) -> straight ~defs:[ d ] ()
  | Insn.Load (d, b, off) ->
      straight ~uses:[ b ] ~defs:[ d ]
        ~loads:[ { a_base = b; a_disp = off; a_len = 8 } ]
        ()
  | Insn.Store (b, off, s) ->
      straight ~uses:[ b; s ]
        ~stores:[ { a_base = b; a_disp = off; a_len = 8 } ]
        ()
  | Insn.Load8 (d, b, off) ->
      straight ~uses:[ b ] ~defs:[ d ]
        ~loads:[ { a_base = b; a_disp = off; a_len = 1 } ]
        ()
  | Insn.Store8 (b, off, s) ->
      straight ~uses:[ b; s ]
        ~stores:[ { a_base = b; a_disp = off; a_len = 1 } ]
        ()
  | Insn.Add_rr (d, s) -> alu_rr d s
  | Insn.Add_ri (d, _) -> alu_ri d
  | Insn.Sub_rr (d, s) -> alu_rr d s
  | Insn.Sub_ri (d, _) -> alu_ri d
  | Insn.Imul_rr (d, s) -> alu_rr d s
  | Insn.Idiv_rr (d, s) -> alu_rr d s
  | Insn.Imod_rr (d, s) -> alu_rr d s
  | Insn.And_rr (d, s) -> alu_rr d s
  | Insn.Or_rr (d, s) -> alu_rr d s
  | Insn.Xor_rr (d, s) -> alu_rr d s
  | Insn.Shl_ri (d, _) -> alu_ri d
  | Insn.Shr_ri (d, _) -> alu_ri d
  | Insn.Sar_ri (d, _) -> alu_ri d
  | Insn.Shl_rr (d, s) -> alu_rr d s
  | Insn.Shr_rr (d, s) -> alu_rr d s
  | Insn.Neg d -> alu_ri d
  | Insn.Not d -> alu_ri d
  | Insn.Cmp_rr (a, b) -> straight ~uses:[ a; b ] ~defs_flags:true ()
  | Insn.Cmp_ri (a, _) -> straight ~uses:[ a ] ~defs_flags:true ()
  | Insn.Test_rr (a, b) -> straight ~uses:[ a; b ] ~defs_flags:true ()
  | Insn.Jmp _ -> straight ~control:Jump ()
  | Insn.Jcc (_, _) -> straight ~uses_flags:true ~control:Cond_jump ()
  | Insn.Call _ ->
      straight ~uses:[ Reg.Rsp ] ~defs:[ Reg.Rsp ]
        ~stores:[ { a_base = Reg.Rsp; a_disp = -8; a_len = 8 } ]
        ~control:Call_push ()
  | Insn.Call_r r ->
      straight ~uses:[ r; Reg.Rsp ] ~defs:[ Reg.Rsp ]
        ~stores:[ { a_base = Reg.Rsp; a_disp = -8; a_len = 8 } ]
        ~control:(Indirect_call r) ()
  | Insn.Jmp_r r -> straight ~uses:[ r ] ~control:(Indirect_jump r) ()
  | Insn.Ret ->
      straight ~uses:[ Reg.Rsp ] ~defs:[ Reg.Rsp ]
        ~loads:[ { a_base = Reg.Rsp; a_disp = 0; a_len = 8 } ]
        ~control:Return ()
  | Insn.Push r ->
      straight ~uses:[ r; Reg.Rsp ] ~defs:[ Reg.Rsp ]
        ~stores:[ { a_base = Reg.Rsp; a_disp = -8; a_len = 8 } ]
        ()
  | Insn.Pop r ->
      straight ~uses:[ Reg.Rsp ] ~defs:[ r; Reg.Rsp ]
        ~loads:[ { a_base = Reg.Rsp; a_disp = 0; a_len = 8 } ]
        ()
  | Insn.Syscall ->
      (* the ABI argument registers feed the kernel; rax carries both
         the syscall number in and the result out. Buffer memory
         effects depend on the syscall and are modelled by the slicer's
         syscall hook, not here. *)
      straight
        ~uses:[ Reg.Rax; Reg.Rdi; Reg.Rsi; Reg.Rdx; Reg.Rcx ]
        ~defs:[ Reg.Rax ] ~control:Sys ()
  | Insn.Lea (d, _) -> straight ~defs:[ d ] ()

(** One representative instance of every {!Insn.t} constructor, for the
    exhaustiveness test: the length of this list is the constructor
    count, and folding {!effect} over it exercises every match arm. *)
let all_constructors : Insn.t list =
  let r = Reg.Rax and s = Reg.Rbx in
  [
    Insn.Nop;
    Insn.Int3;
    Insn.Hlt;
    Insn.Mov_rr (r, s);
    Insn.Mov_ri (r, 1L);
    Insn.Load (r, s, 8);
    Insn.Store (r, 8, s);
    Insn.Load8 (r, s, 8);
    Insn.Store8 (r, 8, s);
    Insn.Add_rr (r, s);
    Insn.Add_ri (r, 1);
    Insn.Sub_rr (r, s);
    Insn.Sub_ri (r, 1);
    Insn.Imul_rr (r, s);
    Insn.Idiv_rr (r, s);
    Insn.Imod_rr (r, s);
    Insn.And_rr (r, s);
    Insn.Or_rr (r, s);
    Insn.Xor_rr (r, s);
    Insn.Shl_ri (r, 1);
    Insn.Shr_ri (r, 1);
    Insn.Sar_ri (r, 1);
    Insn.Shl_rr (r, s);
    Insn.Shr_rr (r, s);
    Insn.Neg r;
    Insn.Not r;
    Insn.Cmp_rr (r, s);
    Insn.Cmp_ri (r, 1);
    Insn.Test_rr (r, s);
    Insn.Jmp 4;
    Insn.Jcc (Insn.Eq, 4);
    Insn.Call 4;
    Insn.Call_r r;
    Insn.Jmp_r r;
    Insn.Ret;
    Insn.Push r;
    Insn.Pop r;
    Insn.Syscall;
    Insn.Lea (r, 4);
  ]
