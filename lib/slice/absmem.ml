(** Abstract memory model for the dynamic slicer.

    Keys dynamic memory defs/uses by address ranges instead of bytes:
    a strong-update write of [(addr, len)] installs one range carrying
    its payload (splitting whatever it overlaps), and adjacent ranges
    with equal payloads coalesce, so the table size stays proportional
    to the number of distinct touched regions — not to the bytes
    touched. With hash-consed dependency sets as payloads (physical
    equality), a server writing a 4 KiB buffer in 512 8-byte stores of
    the same provenance collapses to a single range. *)

module M = Map.Make (Int64)

type 'a t = {
  eq : 'a -> 'a -> bool;  (** payload equality used for coalescing *)
  mutable ranges : (int * 'a) M.t;  (** start -> (len, payload); disjoint *)
}

let create ?(eq = fun a b -> a == b) () = { eq; ranges = M.empty }
let clear t = t.ranges <- M.empty
let cardinal t = M.cardinal t.ranges

let ranges t =
  M.fold (fun lo (len, pay) acc -> (lo, len, pay) :: acc) t.ranges []
  |> List.rev

let end_ lo len = Int64.add lo (Int64.of_int len)

(* every range overlapping [addr, addr+len), address order: at most one
   starting below [addr], then a walk over those starting inside *)
let overlapping t ~(addr : int64) ~(len : int) =
  let hi = end_ addr len in
  let below =
    match M.find_last_opt (fun k -> Int64.compare k addr < 0) t.ranges with
    | Some (lo, (l, pay)) when Int64.compare (end_ lo l) addr > 0 ->
        [ (lo, l, pay) ]
    | _ -> []
  in
  let rec walk acc from =
    match M.find_first_opt (fun k -> Int64.compare k from >= 0) t.ranges with
    | Some (lo, (l, pay)) when Int64.compare lo hi < 0 ->
        walk ((lo, l, pay) :: acc) (end_ lo (max l 1))
    | _ -> List.rev acc
  in
  below @ walk [] addr

(** Payloads of every range overlapping [addr, addr+len), in address
    order, physically deduplicated. Empty when nothing is known there. *)
let read t ~(addr : int64) ~(len : int) : 'a list =
  (* fast path: the window sits inside a single range *)
  match M.find_last_opt (fun k -> Int64.compare k addr <= 0) t.ranges with
  | Some (lo, (l, pay)) when Int64.compare (end_ lo l) (end_ addr len) >= 0 ->
      [ pay ]
  | _ ->
      let pays = List.map (fun (_, _, p) -> p) (overlapping t ~addr ~len) in
      List.fold_left
        (fun acc p -> if List.memq p acc then acc else p :: acc)
        [] pays
      |> List.rev

(* re-attach the parts of an overlapped range that stick out of the
   written window *)
let split_around t ~(addr : int64) ~(len : int) (lo, l, pay) =
  let hi = end_ addr len and rhi = end_ lo l in
  t.ranges <- M.remove lo t.ranges;
  if Int64.compare lo addr < 0 then
    t.ranges <- M.add lo (Int64.to_int (Int64.sub addr lo), pay) t.ranges;
  if Int64.compare rhi hi > 0 then
    t.ranges <- M.add hi (Int64.to_int (Int64.sub rhi hi), pay) t.ranges

(** Strong update: [addr, addr+len) now carries exactly [pay].
    Overlapped ranges are split; equal-payload neighbours coalesce. *)
let write t ~(addr : int64) ~(len : int) (pay : 'a) : unit =
  if len > 0 then begin
    (match M.find_opt addr t.ranges with
    | Some (l, old) when l = len && t.eq old pay -> ()  (* fast path: rewrite *)
    | _ ->
        List.iter (split_around t ~addr ~len) (overlapping t ~addr ~len);
        (* coalesce with an equal-payload left neighbour ending at [addr]
           and right neighbour starting at [addr+len) *)
        let lo, len =
          match
            M.find_last_opt (fun k -> Int64.compare k addr < 0) t.ranges
          with
          | Some (llo, (ll, lpay))
            when Int64.equal (end_ llo ll) addr && t.eq lpay pay ->
              t.ranges <- M.remove llo t.ranges;
              (llo, ll + len)
          | _ -> (addr, len)
        in
        let len =
          match M.find_opt (end_ lo len) t.ranges with
          | Some (rl, rpay) when t.eq rpay pay ->
              t.ranges <- M.remove (end_ lo len) t.ranges;
              len + rl
          | _ -> len
        in
        t.ranges <- M.add lo (len, pay) t.ranges)
  end
