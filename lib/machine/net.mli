(** Machine-wide simulated TCP: listeners keyed by port, bidirectional
    byte-queue connections. Connections live in the "kernel", which is
    what makes CRIU-style TCP repair possible: a restored process
    re-attaches to still-existing connection objects, so clients survive
    a DynaCut rewrite (§3.3, Figure 8).

    A port may carry several listeners, one per worker process tree (the
    SO_REUSEPORT idiom): {!connect} round-robins over the listeners whose
    [accepting] flag is set, so a fleet balancer can drain a worker by
    clearing the flag without touching the worker itself. *)

type conn = {
  conn_id : int;
  conn_port : int;
  c2s : Buffer.t;
  s2c : Buffer.t;
  mutable c2s_consumed : int;
  mutable s2c_consumed : int;
  mutable client_closed : bool;
  mutable server_closed : bool;
}

type listener = {
  l_port : int;
  l_owner : int;  (** owning process tree root; -1 = unowned (legacy) *)
  mutable backlog : conn list;
  mutable accepting : bool;
}

type t

val create : unit -> t

val listen : ?owner:int -> t -> int -> listener
(** Register (or fetch) [owner]'s listener on a port. Distinct owners get
    distinct listeners on the same port, in registration order. *)

val unlisten : t -> listener -> unit
(** Remove a listener (dead worker); pending backlog is dropped. *)

val find_listener : t -> int -> listener option
(** First-registered listener on the port (single-listener legacy view). *)

val find_listener_owned : t -> port:int -> owner:int -> listener option
(** The listener [owner]'s tree registered on [port]; falls back to a sole
    listener regardless of owner so single-app setups keep resolving. *)

val listeners_on : t -> int -> listener list
(** All listeners on a port, in registration order. *)

val find_conn : t -> int -> conn option

(** {2 Host (driver/client) side} *)

exception Refused of int

val connect : t -> int -> conn
(** Connect to a guest listener; round-robins over accepting listeners.
    Raises {!Refused} if nothing listens or no listener is accepting. *)

val route : t -> int -> conn * listener
(** Like {!connect} but also returns the listener the connection was
    dispatched to, for per-worker accounting. *)

val client_send : conn -> string -> unit
val client_recv : conn -> string
(** Drain everything the server wrote since the last call. *)

val client_pending : conn -> int
val client_close : conn -> unit

(** {2 Guest (server) side} *)

val server_accept : listener -> conn option
val server_pending : conn -> int

val server_recv : conn -> int -> string option
(** [None] = would block; [Some ""] = peer closed (EOF). *)

val server_send : conn -> string -> int
val server_close : conn -> unit

(** {2 Checkpoint support (TCP repair)} *)

type conn_snapshot = {
  cs_id : int;
  cs_port : int;
  cs_c2s : string;
  cs_c2s_consumed : int;
  cs_s2c : string;
  cs_s2c_consumed : int;
  cs_client_closed : bool;
  cs_server_closed : bool;
}

val snapshot_conn : conn -> conn_snapshot

val repair_conn : t -> conn_snapshot -> conn
(** Re-attach a snapshotted connection: in-place rewrites keep the live
    kernel object (client bytes sent during the freeze are preserved);
    migration-style restores rebuild it from the snapshot. *)
