(** Machine-wide simulated TCP: listeners keyed by port, bidirectional
    byte-queue connections. Connections live in the "kernel", which is
    what makes CRIU-style TCP repair possible: a restored process
    re-attaches to still-existing connection objects, so clients survive
    a DynaCut rewrite (§3.3, Figure 8).

    A port may carry several listeners, one per worker process tree (the
    SO_REUSEPORT idiom): {!connect} round-robins over the listeners whose
    [accepting] flag is set, so a fleet balancer can drain a worker by
    clearing the flag without touching the worker itself. *)

type conn = {
  conn_id : int;
  conn_port : int;
  c2s : Buffer.t;
  s2c : Buffer.t;
  mutable c2s_consumed : int;
  mutable s2c_consumed : int;
  mutable client_closed : bool;
  mutable server_closed : bool;
  mutable deadline : int64 option;
      (** virtual-clock instant after which the client abandons; host
          (client) state only, never checkpointed *)
}

type listener = {
  l_port : int;
  l_owner : int;  (** owning process tree root; -1 = unowned (legacy) *)
  mutable backlog : conn list;
  mutable accepting : bool;
  mutable backlog_max : int;
      (** accept-queue bound; [max_int] = unbounded (legacy) *)
}

type t

val create : unit -> t

val listen : ?owner:int -> t -> int -> listener
(** Register (or fetch) [owner]'s listener on a port. Distinct owners get
    distinct listeners on the same port, in registration order. *)

val unlisten : t -> listener -> unit
(** Remove a listener (dead worker); pending backlog is dropped. *)

val find_listener : t -> int -> listener option
(** First-registered listener on the port (single-listener legacy view). *)

val find_listener_owned : t -> port:int -> owner:int -> listener option
(** The listener [owner]'s tree registered on [port]; falls back to a sole
    listener regardless of owner so single-app setups keep resolving. *)

val listeners_on : t -> int -> listener list
(** All listeners on a port, in registration order. *)

val find_conn : t -> int -> conn option

(** {2 Host (driver/client) side} *)

exception Refused of int

exception Timed_out of int
(** A connection's virtual-clock deadline passed before the reply landed
    (the id is the connection's). Distinct from {!Refused}: the request
    was admitted, then abandoned. *)

val connect : t -> int -> conn
(** Connect to a guest listener; round-robins over the accepting
    listeners with accept-queue room. Raises {!Refused} if nothing
    listens, no listener is accepting, or every backlog is full. *)

val route : t -> int -> conn * listener
(** Like {!connect} but also returns the listener the connection was
    dispatched to, for per-worker accounting. *)

val connect_via : t -> listener -> conn
(** Admit one connection onto a {e specific} listener's accept queue —
    the health-scored balancer's entry point, bypassing the kernel
    round-robin. Raises {!Refused} when the listener is not accepting or
    its bounded backlog is full. Fault site [net.accept_queue] guards
    the bounded-admission decision. *)

val backlog_depth : listener -> int
(** Pending, not-yet-accepted connections (also exposed as the
    [net.accept_queue_depth{owner,port}] gauge). *)

val backlog_full : listener -> bool
val set_backlog_max : listener -> int -> unit
(** Bound the accept queue (clamped to >= 1); [max_int] = unbounded. *)

val set_deadline : conn -> int64 -> unit
(** Arm a client-side deadline (absolute virtual-clock instant). The
    kernel never enforces it: clients poll {!expired} and abandon. *)

val deadline : conn -> int64 option

val expired : conn -> now:int64 -> bool
(** True once [now] reaches the deadline ([now >= deadline]). *)

val client_send : conn -> string -> unit
val client_recv : conn -> string
(** Drain everything the server wrote since the last call. *)

val client_pending : conn -> int
val client_close : conn -> unit

(** {2 Guest (server) side} *)

val server_accept : listener -> conn option
val server_pending : conn -> int

val server_recv : conn -> int -> string option
(** [None] = would block; [Some ""] = peer closed (EOF). *)

val server_send : conn -> string -> int
val server_close : conn -> unit

(** {2 Checkpoint support (TCP repair)} *)

type conn_snapshot = {
  cs_id : int;
  cs_port : int;
  cs_c2s : string;
  cs_c2s_consumed : int;
  cs_s2c : string;
  cs_s2c_consumed : int;
  cs_client_closed : bool;
  cs_server_closed : bool;
}

val snapshot_conn : conn -> conn_snapshot

val repair_conn : t -> conn_snapshot -> conn
(** Re-attach a snapshotted connection: in-place rewrites keep the live
    kernel object (client bytes sent during the freeze are preserved);
    migration-style restores rebuild it from the snapshot. *)
