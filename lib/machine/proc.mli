(** A guest process: registers, memory, signal dispositions, file
    descriptors, scheduler state. *)

type regs = {
  gpr : int64 array;  (** 16 GPRs, indexed by [Reg.to_int] *)
  mutable rip : int64;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable of_ : bool;
}

val fresh_regs : unit -> regs
val copy_regs : regs -> regs
val get : regs -> Reg.t -> int64
val set : regs -> Reg.t -> int64 -> unit

val pack_flags : regs -> int
(** Condition flags as the signal frame stores them (see {!Abi}). *)

val unpack_flags : regs -> int -> unit

type fd_kind =
  | Fd_stdin
  | Fd_stdout
  | Fd_stderr
  | Fd_file of { path : string; mutable pos : int }
  | Fd_listener of int  (** bound port, -1 before bind *)
  | Fd_sock of int  (** kernel connection id *)

type block_reason =
  | On_accept of int
  | On_recv of int
  | On_sleep of int64  (** absolute wake cycle *)

type state =
  | Runnable
  | Blocked of block_reason
  | Exited of int
  | Killed of int  (** terminating signal *)

type sigaction = { sa_handler : int64; sa_restorer : int64 }

type t = {
  pid : int;
  parent : int;
  comm : string;
  exe_path : string;
  mem : Mem.t;
  regs : regs;
  mutable state : state;
  mutable frozen : bool;
  sigactions : sigaction option array;
  fds : (int, fd_kind) Hashtbl.t;
  mutable next_fd : int;
  mutable mmap_hint : int64;
  stdout : Buffer.t;
  mutable stdout_drained : int;
  mutable retired : int64;  (** instructions executed *)
  mutable block_start : int64 option;  (** open basic block, for tracing *)
  mutable seccomp : int list option;
      (** seccomp-style denylist of syscall numbers; [None] = no filter *)
  mutable exit_notified : bool;
      (** the machine's [on_exit] hook already fired for this process
          object (the hook must fire exactly once per death) *)
}

val stack_top : int64
val stack_size : int
val mmap_base : int64

val is_live : t -> bool
val create : pid:int -> parent:int -> comm:string -> exe_path:string -> mem:Mem.t -> t
val alloc_fd : t -> fd_kind -> int

val drain_stdout : t -> string
(** Console output since the last drain — how the operator watches for
    the init-done log line (§3.1). *)

val peek_stdout : t -> string
val fork_copy : t -> pid:int -> t
val state_to_string : state -> string
