(** Per-process virtual memory: sparse 4 KiB page table + VMA list.
    Pages carry protections (the hot path is one hash lookup); VMAs carry
    the metadata CRIU's [mm] image records and DynaCut edits. *)

type access = Read | Write | Exec

val access_to_string : access -> string

exception Fault of int64 * access
(** Bad or forbidden access; the machine turns this into SIGSEGV. *)

type vma = {
  va_start : int64;
  va_len : int;  (** bytes, page multiple *)
  va_prot : Self.prot;
  va_file : (string * int) option;  (** backing file path + offset *)
  va_name : string;  (** e.g. "ngx:.text", "[stack]", "[anon]" *)
}

val vma_end : vma -> int64

type page = {
  pg_data : bytes;
  mutable pg_prot : Self.prot;
  mutable pg_gen : int;
      (** write generation: bumped on every store (including kernel pokes
          and {!flip_bit}) — the dirty-tracking signal the integrity
          scrubber uses to skip provably-unchanged pages cheaply *)
}

type t = {
  pages : (int64, page) Hashtbl.t;
  mutable vmas : vma list;
  exec_dirty : (int64, unit) Hashtbl.t;
      (** page indexes of executable pages modified since the last
          {!take_exec_dirty} — the precise invalidation signal for the
          decoded-block code cache *)
}

val page_size : int
val page_size64 : int64
val page_index : int64 -> int64
val page_base : int64 -> int64
val page_offset : int64 -> int
val align_up : int -> int

val create : unit -> t
val find_vma : t -> int64 -> vma option

val map :
  t ->
  vaddr:int64 ->
  len:int ->
  prot:Self.prot ->
  ?file:(string * int) option ->
  name:string ->
  unit ->
  vma
(** Map a fresh region; raises [Invalid_argument] on overlap or
    misalignment. All pages are populated (zeroed). *)

val unmap : t -> vaddr:int64 -> len:int -> unit
(** Drop pages; fully-covered VMAs are removed, partial ones split. *)

val protect : t -> vaddr:int64 -> len:int -> prot:Self.prot -> unit
(** mprotect: changes page protections, splitting VMAs as needed. *)

(** {2 Checked accesses (raise {!Fault} on violation)} *)

val read8 : t -> int64 -> int
val fetch8 : t -> int64 -> int
(** Instruction fetch: requires execute permission. *)

val write8 : t -> int64 -> int -> unit
val read64 : t -> int64 -> int64
val write64 : t -> int64 -> int64 -> unit
val read_bytes : t -> int64 -> int -> bytes
val write_bytes : t -> int64 -> bytes -> unit

val read_cstring : t -> int64 -> string
(** NUL-terminated string (bounded at 1 MiB). *)

(** {2 Kernel-side accesses (ignore protections, not presence)} *)

val poke8 : t -> int64 -> int -> unit
val peek8 : t -> int64 -> int
val poke_bytes : t -> int64 -> bytes -> unit
val peek_bytes : t -> int64 -> int -> bytes

(** {2 Whole-space operations} *)

val copy : t -> t
(** Deep copy (fork, checkpoint). *)

val pages_of_vma : t -> vma -> (int64 * bytes) list
(** Populated pages of a VMA in address order. *)

val total_mapped_bytes : t -> int

(** {2 Page integrity primitives} *)

val digest_bytes : bytes -> int64
(** FNV-1a over raw bytes (the page-digest function). *)

val page_digest : t -> int64 -> int64 option
(** Digest of the resident page containing the address; [None] when the
    page is not populated. *)

val page_gen : t -> int64 -> int option
(** Write generation of the resident page containing the address. *)

val flip_bit : t -> addr:int64 -> bit:int -> unit
(** Flip one bit in a resident page, ignoring protections — the seeded
    silent-corruption injector behind [Fault.Bitflip]. Bumps the page's
    write generation (the generation models a hardware dirty bit, which
    a flip trips even though software write paths were bypassed).
    Raises {!Fault} on a non-resident page. *)

val find_free : t -> hint:int64 -> len:int -> int64
(** First page-aligned gap of [len] bytes at or after [hint]. *)

(** {2 Executable-page dirty tracking (code-cache invalidation)} *)

val exec_dirty_pending : t -> bool
(** Whether any executable page was modified since the last drain. O(1);
    the cache dispatcher polls this at every block boundary. *)

val take_exec_dirty : t -> int64 list
(** Dirtied executable page indexes since the last call; clears the set. *)
