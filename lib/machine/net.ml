(** Machine-wide simulated TCP: listeners keyed by port, bidirectional
    connections with byte queues.

    Connections live in the machine's "kernel", not in the process — that
    is what makes CRIU-style TCP repair possible: the checkpoint records
    the connection ids and queue contents, and restore re-attaches the
    process's fds to the still-existing kernel objects, so a client mid-
    request survives a DynaCut rewrite (paper §3.3, Figure 8).

    A port may carry several listeners (one per worker process tree, the
    SO_REUSEPORT idiom): [connect] round-robins new connections over the
    listeners that are currently [accepting], which is what the fleet
    balancer drains and undrains during a rolling rollout. *)

type conn = {
  conn_id : int;
  conn_port : int;
  c2s : Buffer.t;  (** client -> server bytes, pending *)
  s2c : Buffer.t;
  mutable c2s_consumed : int;  (** bytes already read by server *)
  mutable s2c_consumed : int;
  mutable client_closed : bool;
  mutable server_closed : bool;
  mutable deadline : int64 option;
      (** virtual-clock instant after which the client abandons; host
          (client) state only, never checkpointed *)
}

type listener = {
  l_port : int;
  l_owner : int;  (** owning process tree root; -1 = unowned (legacy) *)
  mutable backlog : conn list;  (** pending, not yet accepted *)
  mutable accepting : bool;
  mutable backlog_max : int;
      (** accept-queue bound; [max_int] = unbounded (legacy) *)
}

type t = {
  mutable next_conn : int;
  listeners : (int, listener list) Hashtbl.t;
      (** port -> listeners, in registration order *)
  rr : (int, int) Hashtbl.t;  (** port -> round-robin cursor *)
  conns : (int, conn) Hashtbl.t;
}

let create () =
  {
    next_conn = 1;
    listeners = Hashtbl.create 8;
    rr = Hashtbl.create 8;
    conns = Hashtbl.create 32;
  }

let listeners_on t port =
  match Hashtbl.find_opt t.listeners port with Some ls -> ls | None -> []

let listen ?(owner = -1) t port =
  let ls = listeners_on t port in
  match List.find_opt (fun l -> l.l_owner = owner) ls with
  | Some l -> l
  | None ->
      let l =
        {
          l_port = port;
          l_owner = owner;
          backlog = [];
          accepting = true;
          backlog_max = max_int;
        }
      in
      Hashtbl.replace t.listeners port (ls @ [ l ]);
      l

let unlisten t (l : listener) =
  let ls = List.filter (fun x -> x != l) (listeners_on t l.l_port) in
  if ls = [] then Hashtbl.remove t.listeners l.l_port
  else Hashtbl.replace t.listeners l.l_port ls

let find_listener t port =
  match listeners_on t port with [] -> None | l :: _ -> Some l

(** The listener a given process tree owns on [port]. Falls back to a sole
    listener regardless of owner, so pre-fleet single-app setups (and
    images restored before ownership existed) keep resolving. *)
let find_listener_owned t ~port ~owner =
  match listeners_on t port with
  | [] -> None
  | [ l ] -> Some l
  | ls -> List.find_opt (fun l -> l.l_owner = owner) ls

let find_conn t id = Hashtbl.find_opt t.conns id

(* ---------- host (driver/client) side ---------- *)

exception Refused of int

exception Timed_out of int
(** A connection's virtual-clock deadline passed before the reply landed
    (the id is the connection's). Distinct from {!Refused}: the request
    was admitted, then abandoned. *)

let backlog_depth (l : listener) = List.length l.backlog
let backlog_full (l : listener) = backlog_depth l >= l.backlog_max
let set_backlog_max (l : listener) n = l.backlog_max <- max 1 n

let depth_gauge (l : listener) =
  Obs.gauge
    ~labels:
      [ ("owner", string_of_int l.l_owner); ("port", string_of_int l.l_port) ]
    "net.accept_queue_depth"

(** Pick the next accepting listener with accept-queue room on [port],
    round-robin over the registration order. Deterministic: the cursor
    lives in the kernel and only ever advances by dispatch. *)
let pick_listener t port : listener =
  let ls = listeners_on t port in
  let accepting =
    List.filter (fun l -> l.accepting && not (backlog_full l)) ls
  in
  match accepting with
  | [] -> raise (Refused port)
  | _ ->
      let n = List.length accepting in
      let cur = match Hashtbl.find_opt t.rr port with Some k -> k | None -> 0 in
      Hashtbl.replace t.rr port (cur + 1);
      List.nth accepting (cur mod n)

(** Admit one connection onto [l]'s accept queue. Raises {!Refused} when
    the listener is not accepting or its bounded backlog is full. Fault
    site [net.accept_queue] guards the bounded-admission decision, so
    legacy unbounded listeners never reach it. *)
let connect_via t (l : listener) : conn =
  if not l.accepting then raise (Refused l.l_port);
  if l.backlog_max < max_int then begin
    Fault.site "net.accept_queue";
    if backlog_full l then raise (Refused l.l_port)
  end;
  let c =
    {
      conn_id = t.next_conn;
      conn_port = l.l_port;
      c2s = Buffer.create 64;
      s2c = Buffer.create 64;
      c2s_consumed = 0;
      s2c_consumed = 0;
      client_closed = false;
      server_closed = false;
      deadline = None;
    }
  in
  t.next_conn <- t.next_conn + 1;
  Hashtbl.replace t.conns c.conn_id c;
  l.backlog <- l.backlog @ [ c ];
  Obs.set_gauge (depth_gauge l) (float_of_int (backlog_depth l));
  c

(** Host connects to a guest listener; returns the connection together
    with the listener it was dispatched to (for per-worker accounting). *)
let route t port : conn * listener =
  let l = pick_listener t port in
  (connect_via t l, l)

let connect t port = fst (route t port)

let set_deadline (c : conn) (at : int64) = c.deadline <- Some at
let deadline (c : conn) = c.deadline

let expired (c : conn) ~(now : int64) =
  match c.deadline with Some d -> now >= d | None -> false

let client_send (c : conn) (s : string) = Buffer.add_string c.c2s s

(** Drain whatever the server has written since the last call. *)
let client_recv (c : conn) : string =
  let all = Buffer.contents c.s2c in
  let fresh = String.sub all c.s2c_consumed (String.length all - c.s2c_consumed) in
  c.s2c_consumed <- String.length all;
  fresh

let client_pending (c : conn) = Buffer.length c.s2c - c.s2c_consumed
let client_close (c : conn) = c.client_closed <- true

(* ---------- guest (server) side ---------- *)

let server_accept (l : listener) : conn option =
  match l.backlog with
  | [] -> None
  | c :: rest ->
      (* the gray-failure hook: a [Delay]-mode fault here stalls this
         worker's service of the connection (scoped per owner pid, so a
         chaos schedule can make exactly one fleet member a straggler).
         Sits before the pop, so a fail/kill fault leaves the backlog
         intact and the accept retries like an EINTR. *)
      Fault.site ~scope:l.l_owner "net.serve";
      l.backlog <- rest;
      Obs.set_gauge (depth_gauge l) (float_of_int (backlog_depth l));
      Some c

let server_pending (c : conn) = Buffer.length c.c2s - c.c2s_consumed

let server_recv (c : conn) (maxlen : int) : string option =
  let avail = server_pending c in
  if avail = 0 then if c.client_closed then Some "" else None
  else
    let n = min avail maxlen in
    let s = String.sub (Buffer.contents c.c2s) c.c2s_consumed n in
    c.c2s_consumed <- c.c2s_consumed + n;
    Some s

let server_send (c : conn) (s : string) =
  if c.server_closed then 0
  else begin
    Buffer.add_string c.s2c s;
    String.length s
  end

let server_close (c : conn) = c.server_closed <- true

(* ---------- checkpoint support (TCP repair) ---------- *)

type conn_snapshot = {
  cs_id : int;
  cs_port : int;
  cs_c2s : string;
  cs_c2s_consumed : int;
  cs_s2c : string;
  cs_s2c_consumed : int;
  cs_client_closed : bool;
  cs_server_closed : bool;
}

let snapshot_conn (c : conn) =
  {
    cs_id = c.conn_id;
    cs_port = c.conn_port;
    cs_c2s = Buffer.contents c.c2s;
    cs_c2s_consumed = c.c2s_consumed;
    cs_s2c = Buffer.contents c.s2c;
    cs_s2c_consumed = c.s2c_consumed;
    cs_client_closed = c.client_closed;
    cs_server_closed = c.server_closed;
  }

(** TCP repair: restore a connection's state into the kernel table. If the
    connection object still exists (the common in-place-rewrite case) its
    queues are reset to the snapshot; otherwise it is re-created. *)
let repair_conn t (s : conn_snapshot) : conn =
  let c =
    match Hashtbl.find_opt t.conns s.cs_id with
    | Some c -> c
    | None ->
        (* migration-style restore: rebuild the socket from the snapshot *)
        let c =
          {
            conn_id = s.cs_id;
            conn_port = s.cs_port;
            c2s = Buffer.create 64;
            s2c = Buffer.create 64;
            c2s_consumed = s.cs_c2s_consumed;
            s2c_consumed = s.cs_s2c_consumed;
            client_closed = s.cs_client_closed;
            server_closed = s.cs_server_closed;
            deadline = None;
          }
        in
        Buffer.add_string c.c2s s.cs_c2s;
        Buffer.add_string c.s2c s.cs_s2c;
        Hashtbl.replace t.conns s.cs_id c;
        t.next_conn <- max t.next_conn (s.cs_id + 1);
        c
  in
  (* In-place rewrite: only the *server-side read position* is owned by the
     checkpointed process; client-side state (new bytes sent while the
     process was frozen) is kept in the live kernel object. *)
  c.c2s_consumed <- min s.cs_c2s_consumed (Buffer.length c.c2s);
  c.server_closed <- s.cs_server_closed;
  c
