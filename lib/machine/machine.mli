(** The virtual machine: processes, CPU interpreter, signal delivery,
    syscall dispatch, round-robin scheduler, deterministic virtual clock
    (1 cycle per retired instruction). Plays the role of Linux + the CPU
    and is part of the paper's trusted computing base (§2). *)

type trace_hook = Proc.t -> int64 -> int -> unit
(** (process, block start vaddr, block size) at every dynamic basic-block
    completion — the tracer's input. *)

type syscall_hook = Proc.t -> int -> unit
(** (process, syscall number) before dispatch — backs automatic phase
    detection (§5). *)

type exit_hook = Proc.t -> unit
(** Fires exactly once when a process dies (exit syscall, fatal signal,
    double fault) — the supervisor's crash-loop detector. *)

type insn_hook = Proc.t -> Insn.t -> unit
(** Fires before every decoded instruction executes, with registers
    still holding pre-execution values (effective addresses of its
    memory operands can be recomputed) — the dataflow slicer's input.
    Int3 traps take the trap path and bypass it. *)

type t = {
  fs : Vfs.t;
  net : Net.t;
  procs : (int, Proc.t) Hashtbl.t;
  mutable next_pid : int;
  mutable clock : int64;  (** virtual cycles *)
  mutable trace : trace_hook option;
  mutable on_syscall : syscall_hook option;
  mutable on_exit : exit_hook option;
  mutable on_insn : insn_hook option;
  rng : Rng.t;  (** feeds the guest [rand] syscall *)
  syscall_cost : int;
  mutable spawn_order : int list;
  obs_steps : Obs.counter;
      (** registry handles cached at {!create} so the interpreter's
          per-instruction bump costs a field write, not a name lookup *)
  obs_traps : Obs.counter;
  obs_syscalls : Obs.counter;
  mutable cycle_frac : int;
      (** sub-cycle accumulator for cached execution: pre-decoded
          instructions cost 1/32 cycle each, carried into [clock] *)
  mutable exec_cached : (Proc.t -> fuel:int -> int) option;
      (** installed by the decoded-block code cache ([Bbcache.enable]):
          run the process for up to [fuel] instructions out of the cache,
          returning how many executed (0 = fall back to one interpreter
          step). Consulted by {!run} only while [on_insn] is [None] —
          per-instruction fidelity (the slicer) always wins. *)
}

val create : ?seed:int -> unit -> t
(** Also installs this machine's virtual clock as the registry's
    timestamp source ([Obs.set_clock]) and its {!bitflip} injector as
    the [Fault.Bitflip] hook; the most recently created machine wins. *)

val bitflip : t -> ?pid:int -> Rng.t -> (int * int64) option
(** Flip one seeded bit in a resident page of an immutable
    (non-writable) VMA — silent corruption of text/rodata. The victim is
    [?pid] when given (and live), else a seeded pick among live
    processes; page, byte and bit are drawn from [rng]. Returns the
    victim pid and the flipped address; [None] when nothing qualifies.
    Installed as the [Fault.Bitflip] hook by {!create}. *)

(** {2 Processes} *)

val proc : t -> int -> Proc.t option
val proc_exn : t -> int -> Proc.t
val live_procs : t -> Proc.t list
val all_procs : t -> Proc.t list

val tree_root : t -> int -> int
(** Root pid of a process tree (walks the parent chain while the parent
    is still a known process); listeners are owned per tree root. *)

exception Exec_error of string

val spawn : t -> exe_path:string -> ?comm:string -> unit -> Proc.t
(** Load a SELF binary from the machine fs (libraries resolved there
    too), map it + a stack, and create a runnable process. *)

(** {2 Signals} *)

val deliver_signal : t -> Proc.t -> signum:int -> at:int64 -> unit
(** Deliver with saved rip = [at]; builds the {!Abi} frame or applies the
    default action (terminate). *)

val post_signal : t -> pid:int -> signum:int -> unit

exception Seccomp_denied
(** Internal marker for a filtered syscall (delivered as SIGSYS). *)

(** {2 Execution} *)

val step : t -> Proc.t -> unit
(** Execute exactly one instruction (assumes the process is runnable). *)

val exec_decoded : t -> Proc.t -> Insn.t -> int -> cached:bool -> unit
(** Execute one already-decoded instruction (anything but [Int3], which
    never enters the code cache) of byte length [len]; assumes the
    process is runnable and its rip is the instruction's address.
    [cached] selects the cost model only — 1 cycle interpreted, 1/32
    cycle pre-decoded; every other effect (block bookkeeping,
    trace/insn hooks, [Obs] counters, signal delivery) is identical in
    both modes, which keeps cached runs replay-exact. The decoded-block
    cache is the only intended caller with [~cached:true]. *)

val run : t -> max_cycles:int -> [ `Budget | `Dead | `Idle ]
(** Round-robin scheduling until the budget runs out ([`Budget]), every
    live process blocks on external input ([`Idle]), or none remain
    ([`Dead]). Sleep-blocked processes fast-forward the clock. *)

val run_until :
  t -> max_cycles:int -> pred:(unit -> bool) -> [ `Budget | `Dead | `Idle | `Pred ]

(** {2 Checkpoint support} *)

val freeze : t -> pid:int -> unit
(** Exclude from scheduling (CRIU freeze). Idempotent; a no-op on dead
    or unknown pids, so a rollback can re-freeze blindly. *)

val thaw : t -> pid:int -> unit
(** Idempotent inverse of {!freeze}; no-op on unknown pids. *)

val reap : t -> pid:int -> unit
(** Remove a process object (after dumping, before restore).
    Idempotent: reaping an already-reaped pid is a no-op, and the pid
    keeps its scheduling slot for a later {!install}. *)

val install : t -> Proc.t -> unit
(** Install a restored process (CRIU restore). *)
