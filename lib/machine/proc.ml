(** A guest process: registers, memory, signal dispositions, file
    descriptors, scheduler state. *)

type regs = {
  gpr : int64 array;  (** 16 GPRs, indexed by [Reg.to_int] *)
  mutable rip : int64;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable of_ : bool;
}

let fresh_regs () =
  { gpr = Array.make 16 0L; rip = 0L; zf = false; sf = false; cf = false; of_ = false }

let copy_regs r =
  { gpr = Array.copy r.gpr; rip = r.rip; zf = r.zf; sf = r.sf; cf = r.cf; of_ = r.of_ }

let get r reg = r.gpr.(Reg.to_int reg)
let set r reg v = r.gpr.(Reg.to_int reg) <- v

(** Pack condition flags as the signal frame stores them. *)
let pack_flags r =
  (if r.zf then 1 else 0)
  lor (if r.sf then 2 else 0)
  lor (if r.cf then 4 else 0)
  lor if r.of_ then 8 else 0

let unpack_flags r v =
  r.zf <- v land 1 <> 0;
  r.sf <- v land 2 <> 0;
  r.cf <- v land 4 <> 0;
  r.of_ <- v land 8 <> 0

type fd_kind =
  | Fd_stdin
  | Fd_stdout
  | Fd_stderr
  | Fd_file of { path : string; mutable pos : int }
  | Fd_listener of int  (** port *)
  | Fd_sock of int  (** connection id *)

type block_reason =
  | On_accept of int  (** fd *)
  | On_recv of int  (** fd *)
  | On_sleep of int64  (** absolute wake cycle *)

type state =
  | Runnable
  | Blocked of block_reason
  | Exited of int
  | Killed of int  (** terminating signal *)

type sigaction = { sa_handler : int64; sa_restorer : int64 }

type t = {
  pid : int;
  parent : int;
  comm : string;
  exe_path : string;
  mem : Mem.t;
  regs : regs;
  mutable state : state;
  mutable frozen : bool;  (** excluded from scheduling (CRIU freeze) *)
  sigactions : sigaction option array;  (** indexed by signal number *)
  fds : (int, fd_kind) Hashtbl.t;
  mutable next_fd : int;
  mutable mmap_hint : int64;
  stdout : Buffer.t;  (** host-visible console output *)
  mutable stdout_drained : int;
  mutable retired : int64;  (** instructions executed *)
  mutable block_start : int64 option;  (** current basic block, for tracing *)
  mutable seccomp : int list option;
      (** seccomp-style denylist of syscall numbers; [None] = no filter.
          Installed by DynaCut's image rewriting (paper §5) *)
  mutable exit_notified : bool;
      (** the machine's [on_exit] hook already fired for this process
          object — death can be observed at several interpreter exits,
          the hook must fire exactly once *)
}

let stack_top = 0x7ffd_0000_0000L
let stack_size = 256 * 1024
let mmap_base = 0x100_0000_0000L

let is_live p = match p.state with Runnable | Blocked _ -> true | _ -> false

let create ~pid ~parent ~comm ~exe_path ~mem =
  let fds = Hashtbl.create 8 in
  Hashtbl.replace fds 0 Fd_stdin;
  Hashtbl.replace fds 1 Fd_stdout;
  Hashtbl.replace fds 2 Fd_stderr;
  {
    pid;
    parent;
    comm;
    exe_path;
    mem;
    regs = fresh_regs ();
    state = Runnable;
    frozen = false;
    sigactions = Array.make Abi.nsig None;
    fds;
    next_fd = 3;
    mmap_hint = mmap_base;
    stdout = Buffer.create 128;
    stdout_drained = 0;
    retired = 0L;
    block_start = None;
    seccomp = None;
    exit_notified = false;
  }

let alloc_fd p kind =
  let fd = p.next_fd in
  p.next_fd <- fd + 1;
  Hashtbl.replace p.fds fd kind;
  fd

(** Console output appended since the last drain (host-side log watching —
    how the end user observes "initialization finished", §3.1). *)
let drain_stdout p =
  let all = Buffer.contents p.stdout in
  let s = String.sub all p.stdout_drained (String.length all - p.stdout_drained) in
  p.stdout_drained <- String.length all;
  s

let peek_stdout p = Buffer.contents p.stdout

(** Deep fork-copy with a new pid; registers and fds duplicated, memory
    cloned copy-on-nothing (full copy). *)
let fork_copy p ~pid =
  let fds = Hashtbl.copy p.fds in
  (* file positions are per-process: deep-copy Fd_file cells *)
  Hashtbl.iter
    (fun k v ->
      match v with
      | Fd_file { path; pos } -> Hashtbl.replace fds k (Fd_file { path; pos })
      | _ -> ())
    fds;
  {
    pid;
    parent = p.pid;
    comm = p.comm;
    exe_path = p.exe_path;
    mem = Mem.copy p.mem;
    regs = copy_regs p.regs;
    state = Runnable;
    frozen = false;
    sigactions = Array.copy p.sigactions;
    fds;
    next_fd = p.next_fd;
    mmap_hint = p.mmap_hint;
    stdout = Buffer.create 128;
    stdout_drained = 0;
    retired = 0L;
    block_start = None;
    seccomp = p.seccomp;
    exit_notified = false;
  }

let state_to_string = function
  | Runnable -> "runnable"
  | Blocked (On_accept fd) -> Printf.sprintf "blocked(accept fd=%d)" fd
  | Blocked (On_recv fd) -> Printf.sprintf "blocked(recv fd=%d)" fd
  | Blocked (On_sleep t) -> Printf.sprintf "blocked(sleep until %Ld)" t
  | Exited c -> Printf.sprintf "exited(%d)" c
  | Killed s -> Printf.sprintf "killed(%s)" (Abi.signal_name s)
