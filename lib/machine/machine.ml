(** The virtual machine: processes, CPU interpreter, signal delivery,
    syscall dispatch, round-robin scheduler, and a deterministic virtual
    clock (1 cycle per retired instruction).

    This plays the role of the Linux kernel + CPU in the paper's setup and
    is part of the trusted computing base its threat model assumes (§2). *)

type trace_hook = Proc.t -> int64 -> int -> unit
(** Called with (process, block start vaddr, block size in bytes) whenever a
    dynamic basic block completes — the tracer's input. *)

type syscall_hook = Proc.t -> int -> unit
(** Called with (process, syscall number) before each syscall is
    dispatched — the probe behind automatic phase detection (§5's
    "monitor specific system calls to determine the end of the
    initialization phase"). *)

type exit_hook = Proc.t -> unit
(** Called exactly once when a process transitions to a dead state
    (exit, fatal signal) — how a post-cut supervisor notices a worker
    killed by an un-redirected SIGTRAP/SIGILL and respawns it. *)

type insn_hook = Proc.t -> Insn.t -> unit
(** Called before every decoded instruction executes (registers still
    hold their pre-execution values, so effective addresses can be
    recomputed) — the dataflow slicer's input. Int3 traps bypass it. *)

type t = {
  fs : Vfs.t;
  net : Net.t;
  procs : (int, Proc.t) Hashtbl.t;
  mutable next_pid : int;
  mutable clock : int64;
  mutable trace : trace_hook option;
  mutable on_syscall : syscall_hook option;
  mutable on_exit : exit_hook option;
  mutable on_insn : insn_hook option;
  rng : Rng.t;
  syscall_cost : int;  (** extra cycles charged per syscall *)
  mutable spawn_order : int list;  (** pids in creation order, for RR *)
  obs_steps : Obs.counter;  (** cached registry handles: the interpreter *)
  obs_traps : Obs.counter;  (** bumps these once per event, so the lookup *)
  obs_syscalls : Obs.counter;  (** cost is paid at [create], not per insn *)
  mutable cycle_frac : int;
      (** sub-cycle accumulator for cached execution: pre-decoded
          instructions cost 1/32 cycle each, carried into [clock] *)
  mutable exec_cached : (Proc.t -> fuel:int -> int) option;
      (** installed by the decoded-block code cache ([Bbcache.enable]):
          run [p] for up to [fuel] instructions out of the cache,
          returning the number executed (0 = fall back to single-step).
          The scheduler only consults it while no [on_insn] hook is
          installed — per-instruction fidelity (the slicer) always wins *)
}

(* Flip one seeded bit in a resident page of an immutable (non-writable)
   VMA — silent corruption of text/rodata, the failure the integrity
   scrubber exists to catch. The victim is [pid] when given (and live),
   else a seeded pick among live processes; the page, byte and bit are
   seeded draws. Returns the victim pid and flipped address, or [None]
   when there is nothing to corrupt. *)
let bitflip t ?pid rng : (int * int64) option =
  let live =
    List.filter_map
      (fun q ->
        match Hashtbl.find_opt t.procs q with
        | Some p when Proc.is_live p -> Some p
        | _ -> None)
      (List.rev t.spawn_order)
  in
  let victim =
    match pid with
    | Some q -> List.find_opt (fun (p : Proc.t) -> p.Proc.pid = q) live
    | None -> ( match live with [] -> None | l -> Some (Rng.choose rng l))
  in
  match victim with
  | None -> None
  | Some p ->
      let mem = p.Proc.mem in
      let pages =
        List.concat_map
          (fun (v : Mem.vma) ->
            if v.Mem.va_prot.Self.p_w then []
            else List.map fst (Mem.pages_of_vma mem v))
          mem.Mem.vmas
      in
      if pages = [] then None
      else begin
        let base = Rng.choose rng pages in
        let addr = Int64.add base (Int64.of_int (Rng.int rng Mem.page_size)) in
        let bit = Rng.int rng 8 in
        Mem.flip_bit mem ~addr ~bit;
        Obs.incr
          (Obs.counter
             ~labels:[ ("pid", string_of_int p.Proc.pid) ]
             "integrity.bitflips");
        Obs.event ~kind:"fault"
          (Printf.sprintf "bitflip pid=%d vaddr=0x%Lx bit=%d" p.Proc.pid addr
             bit);
        Some (p.Proc.pid, addr)
      end

let create ?(seed = 42) () =
  let t =
    {
      fs = Vfs.create ();
      net = Net.create ();
      procs = Hashtbl.create 8;
      next_pid = 100;
      clock = 0L;
      trace = None;
      on_syscall = None;
      on_exit = None;
      on_insn = None;
      rng = Rng.create seed;
      syscall_cost = 40;
      spawn_order = [];
      obs_steps = Obs.counter "machine.steps";
      obs_traps = Obs.counter "machine.traps";
      obs_syscalls = Obs.counter "machine.syscalls";
      cycle_frac = 0;
      exec_cached = None;
    }
  in
  (* the registry's event/span timestamps follow this machine's virtual
     clock from here on (last machine created wins — scenarios build the
     machine under test last) *)
  Obs.set_clock (Some (fun () -> t.clock));
  (* delay-mode faults ([Fault.Delay n]) charge their latency to this
     machine's virtual clock — gray failures are slow, not wrong *)
  Fault.set_delay_hook (Some (fun n -> t.clock <- Int64.add t.clock (Int64.of_int n)));
  (* bitflip-mode faults ([Fault.Bitflip]) corrupt a resident immutable
     page of this machine's scoped (or seeded) victim — silently *)
  Fault.set_bitflip_hook
    (Some (fun ~scope rng -> ignore (bitflip t ?pid:scope rng)));
  t

let proc t pid = Hashtbl.find_opt t.procs pid

let proc_exn t pid =
  match proc t pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Machine.proc: no pid %d" pid)

let live_procs t =
  List.filter_map
    (fun pid ->
      match proc t pid with Some p when Proc.is_live p -> Some p | _ -> None)
    (List.rev t.spawn_order)

let all_procs t =
  List.filter_map (fun pid -> proc t pid) (List.rev t.spawn_order)

(** Root of [pid]'s process tree: walk the parent chain while the parent
    is still a known process. Identifies which worker a listener belongs
    to when several trees share a port. *)
let rec tree_root t pid =
  match proc t pid with
  | None -> pid
  | Some p ->
      if p.Proc.parent <> 0 && Hashtbl.mem t.procs p.Proc.parent then
        tree_root t p.Proc.parent
      else pid

(* ---------- process creation ---------- *)

exception Exec_error of string

(** Load [exe_path] from the machine filesystem and create a process.
    All SELF files present in the filesystem are candidates for resolving
    [needed] libraries. *)
let spawn t ~exe_path ?comm () =
  let exe =
    match Vfs.find_self t.fs exe_path with
    | Some s -> s
    | None -> raise (Exec_error ("no such binary: " ^ exe_path))
  in
  let libs =
    List.filter_map (fun p -> Vfs.find_self t.fs p) (Vfs.list t.fs)
  in
  let img = Loader.load ~libs exe in
  let mem = Mem.create () in
  List.iter
    (fun (m : Loader.mapping) ->
      let len = Bytes.length m.map_data in
      if len > 0 then begin
        let (_ : Mem.vma) =
          Mem.map mem ~vaddr:m.map_vaddr ~len ~prot:m.map_prot
            ~file:(Some (m.map_file, m.map_file_off))
            ~name:(m.map_module ^ ":" ^ m.map_section)
            ()
        in
        (* loader writes bypass protections *)
        Mem.poke_bytes mem m.map_vaddr m.map_data
      end)
    img.Loader.img_mappings;
  let stack_lo = Int64.sub Proc.stack_top (Int64.of_int Proc.stack_size) in
  let (_ : Mem.vma) =
    Mem.map mem ~vaddr:stack_lo ~len:Proc.stack_size ~prot:Self.prot_rw ~name:"[stack]" ()
  in
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let comm = match comm with Some c -> c | None -> exe.Self.name in
  let p = Proc.create ~pid ~parent:0 ~comm ~exe_path ~mem in
  p.Proc.regs.Proc.rip <- img.Loader.img_entry;
  Proc.set p.Proc.regs Reg.Rsp (Int64.sub Proc.stack_top 64L);
  Hashtbl.replace t.procs pid p;
  t.spawn_order <- pid :: t.spawn_order;
  p

(* ---------- tracing helpers ---------- *)

let end_block t (p : Proc.t) ~(next : int64) =
  match p.Proc.block_start with
  | None -> ()
  | Some start ->
      let size = Int64.to_int (Int64.sub next start) in
      (match t.trace with
      | Some hook when size > 0 -> hook p start size
      | _ -> ());
      p.Proc.block_start <- None

(* ---------- signals ---------- *)

(* death can be observed at several interpreter exits (default signal
   action, exit syscall, hlt, double fault); the per-process flag makes
   the hook fire exactly once per death, wherever it is noticed *)
let notify_exit t (p : Proc.t) =
  if (not (Proc.is_live p)) && not p.Proc.exit_notified then begin
    p.Proc.exit_notified <- true;
    match t.on_exit with Some hook -> hook p | None -> ()
  end

(** Deliver [signum] to [p] with the saved rip = [at] (the faulting /
    trapping instruction). Builds the signal frame described in {!Abi} or
    applies the default action (terminate). *)
let deliver_signal t (p : Proc.t) ~(signum : int) ~(at : int64) =
  end_block t p ~next:at;
  let action =
    if signum = Abi.sigkill then None else p.Proc.sigactions.(signum)
  in
  (match action with
  | None -> p.Proc.state <- Proc.Killed signum
  | Some { Proc.sa_handler; sa_restorer } -> (
      let regs = p.Proc.regs in
      let rsp = Proc.get regs Reg.Rsp in
      let frame = Int64.sub rsp (Int64.of_int Abi.frame_size) in
      try
        let w64 off v = Mem.write64 p.Proc.mem (Int64.add frame (Int64.of_int off)) v in
        w64 Abi.frame_off_magic Abi.frame_magic;
        w64 Abi.frame_off_signum (Int64.of_int signum);
        w64 Abi.frame_off_rip at;
        w64 Abi.frame_off_flags (Int64.of_int (Proc.pack_flags regs));
        Array.iteri (fun i v -> w64 (Abi.frame_off_regs + (8 * i)) v) regs.Proc.gpr;
        (* push the restorer as the handler's return address *)
        let new_rsp = Int64.sub frame 8L in
        Mem.write64 p.Proc.mem new_rsp sa_restorer;
        Proc.set regs Reg.Rsp new_rsp;
        Proc.set regs Reg.Rdi (Int64.of_int signum);
        Proc.set regs Reg.Rsi frame;
        regs.Proc.rip <- sa_handler;
        (* a signal can only be handled by a runnable process; interrupt
           blocking syscalls (they will restart after sigreturn) *)
        p.Proc.state <- Proc.Runnable
      with Mem.Fault _ ->
        (* stack overflow while building the frame: double fault *)
        p.Proc.state <- Proc.Killed Abi.sigsegv));
  notify_exit t p

let do_sigreturn (p : Proc.t) =
  let regs = p.Proc.regs in
  let frame = Proc.get regs Reg.Rsp in
  let r64 off = Mem.read64 p.Proc.mem (Int64.add frame (Int64.of_int off)) in
  try
    if r64 Abi.frame_off_magic <> Abi.frame_magic then
      p.Proc.state <- Proc.Killed Abi.sigsegv
    else begin
      let saved_rip = r64 Abi.frame_off_rip in
      let saved_flags = Int64.to_int (r64 Abi.frame_off_flags) in
      for i = 0 to 15 do
        regs.Proc.gpr.(i) <- r64 (Abi.frame_off_regs + (8 * i))
      done;
      Proc.unpack_flags regs saved_flags;
      regs.Proc.rip <- saved_rip
      (* rsp restored from the frame's saved registers *)
    end
  with Mem.Fault _ -> p.Proc.state <- Proc.Killed Abi.sigsegv

(** Host- or guest-initiated kill. *)
let post_signal t ~pid ~signum =
  match proc t pid with
  | None -> ()
  | Some p when Proc.is_live p -> deliver_signal t p ~signum ~at:p.Proc.regs.Proc.rip
  | Some _ -> ()

(* ---------- syscalls ---------- *)

exception Seccomp_denied

type sys_outcome =
  | Ret of int64  (** advance rip, rax = value *)
  | Block_retry of Proc.block_reason  (** do not advance rip; re-execute *)
  | Block_after of Proc.block_reason  (** advance rip; resume on wake *)
  | Terminate of Proc.state
  | Sigret  (** registers fully replaced by the frame *)

let fd_kind (p : Proc.t) fd = Hashtbl.find_opt p.Proc.fds (Int64.to_int fd)

let do_syscall t (p : Proc.t) : sys_outcome =
  let regs = p.Proc.regs in
  let nr = Int64.to_int (Proc.get regs Reg.Rax) in
  Obs.incr t.obs_syscalls;
  (match t.on_syscall with Some hook -> hook p nr | None -> ());
  (* seccomp-style filtering (paper §5): a denied syscall delivers
     SIGSYS, whose default action terminates *)
  (match p.Proc.seccomp with
  | Some denied when List.mem nr denied -> raise Seccomp_denied
  | _ -> ());
  let a1 = Proc.get regs Reg.Rdi
  and a2 = Proc.get regs Reg.Rsi
  and a3 = Proc.get regs Reg.Rdx
  and a4 = Proc.get regs Reg.Rcx in
  let ret_i i = Ret (Int64.of_int i) in
  let open Abi in
  try
    if nr = sys_exit then Terminate (Proc.Exited (Int64.to_int a1))
    else if nr = sys_write then (
      let len = Int64.to_int a3 in
      let data = Mem.read_bytes p.Proc.mem a2 len in
      match fd_kind p a1 with
      | Some (Proc.Fd_stdout | Proc.Fd_stderr) ->
          Buffer.add_bytes p.Proc.stdout data;
          ret_i len
      | Some (Proc.Fd_sock cid) -> (
          match Net.find_conn t.net cid with
          | Some c -> ret_i (Net.server_send c (Bytes.to_string data))
          | None -> ret_i econnreset)
      | Some (Proc.Fd_file _) -> ret_i einval (* read-only fs *)
      | Some (Proc.Fd_listener _) -> ret_i einval
      | Some Proc.Fd_stdin | None -> ret_i ebadf)
    else if nr = sys_read then (
      match fd_kind p a1 with
      | Some (Proc.Fd_file f) -> (
          match Vfs.find t.fs f.path with
          | None -> ret_i ebadf
          | Some content ->
              let len = min (Int64.to_int a3) (String.length content - f.pos) in
              let len = max len 0 in
              Mem.write_bytes p.Proc.mem a2 (Bytes.of_string (String.sub content f.pos len));
              f.pos <- f.pos + len;
              ret_i len)
      | Some (Proc.Fd_sock cid) -> (
          match Net.find_conn t.net cid with
          | None -> ret_i econnreset
          | Some c -> (
              match Net.server_recv c (Int64.to_int a3) with
              | Some s ->
                  Mem.write_bytes p.Proc.mem a2 (Bytes.of_string s);
                  ret_i (String.length s)
              | None -> Block_retry (Proc.On_recv (Int64.to_int a1))))
      | Some Proc.Fd_stdin -> ret_i 0 (* EOF *)
      | _ -> ret_i ebadf)
    else if nr = sys_open then (
      let path = Mem.read_cstring p.Proc.mem a1 in
      if Vfs.exists t.fs path then
        ret_i (Proc.alloc_fd p (Proc.Fd_file { path; pos = 0 }))
      else ret_i enoent)
    else if nr = sys_close then (
      match fd_kind p a1 with
      | Some (Proc.Fd_sock cid) ->
          (match Net.find_conn t.net cid with
          | Some c -> Net.server_close c
          | None -> ());
          Hashtbl.remove p.Proc.fds (Int64.to_int a1);
          ret_i 0
      | Some _ ->
          Hashtbl.remove p.Proc.fds (Int64.to_int a1);
          ret_i 0
      | None -> ret_i ebadf)
    else if nr = sys_mmap then (
      let len = Int64.to_int a2 in
      let prot = Self.prot_of_int (Int64.to_int a3) in
      if len <= 0 then ret_i einval
      else begin
        let vaddr =
          if a1 = 0L then Mem.find_free p.Proc.mem ~hint:p.Proc.mmap_hint ~len
          else a1
        in
        match Mem.map p.Proc.mem ~vaddr ~len ~prot ~name:"[anon]" () with
        | v ->
            p.Proc.mmap_hint <- Mem.vma_end v;
            Ret vaddr
        | exception Invalid_argument _ -> ret_i enomem
      end)
    else if nr = sys_munmap then (
      Mem.unmap p.Proc.mem ~vaddr:a1 ~len:(Int64.to_int a2);
      ret_i 0)
    else if nr = sys_mprotect then (
      Mem.protect p.Proc.mem ~vaddr:a1 ~len:(Int64.to_int a2)
        ~prot:(Self.prot_of_int (Int64.to_int a3));
      ret_i 0)
    else if nr = sys_fork then (
      let child_pid = t.next_pid in
      t.next_pid <- child_pid + 1;
      let child = Proc.fork_copy p ~pid:child_pid in
      (* both continue after the syscall *)
      let next = Int64.add regs.Proc.rip 1L in
      child.Proc.regs.Proc.rip <- next;
      Proc.set child.Proc.regs Reg.Rax 0L;
      Hashtbl.replace t.procs child_pid child;
      t.spawn_order <- child_pid :: t.spawn_order;
      ret_i child_pid)
    else if nr = sys_sigaction then (
      let signum = Int64.to_int a1 in
      if signum <= 0 || signum >= nsig || signum = sigkill then ret_i einval
      else begin
        p.Proc.sigactions.(signum) <-
          (if a2 = 0L then None else Some { Proc.sa_handler = a2; sa_restorer = a3 });
        ret_i 0
      end)
    else if nr = sys_sigreturn then (
      do_sigreturn p;
      Sigret)
    else if nr = sys_nanosleep then
      Block_after (Proc.On_sleep (Int64.add t.clock a1))
    else if nr = sys_getpid then ret_i p.Proc.pid
    else if nr = sys_socket then ret_i (Proc.alloc_fd p (Proc.Fd_listener (-1)))
    else if nr = sys_bind then (
      match fd_kind p a1 with
      | Some (Proc.Fd_listener _) ->
          Hashtbl.replace p.Proc.fds (Int64.to_int a1) (Proc.Fd_listener (Int64.to_int a2));
          ret_i 0
      | _ -> ret_i ebadf)
    else if nr = sys_listen then (
      match fd_kind p a1 with
      | Some (Proc.Fd_listener port) when port >= 0 ->
          let (_ : Net.listener) =
            Net.listen ~owner:(tree_root t p.Proc.pid) t.net port
          in
          ret_i 0
      | _ -> ret_i ebadf)
    else if nr = sys_accept then (
      match fd_kind p a1 with
      | Some (Proc.Fd_listener port) -> (
          match
            Net.find_listener_owned t.net ~port
              ~owner:(tree_root t p.Proc.pid)
          with
          | None -> ret_i einval
          | Some l -> (
              match Net.server_accept l with
              | Some conn -> ret_i (Proc.alloc_fd p (Proc.Fd_sock conn.Net.conn_id))
              | None -> Block_retry (Proc.On_accept (Int64.to_int a1))))
      | _ -> ret_i ebadf)
    else if nr = sys_recv then (
      match fd_kind p a1 with
      | Some (Proc.Fd_sock cid) -> (
          match Net.find_conn t.net cid with
          | None -> ret_i econnreset
          | Some c -> (
              match Net.server_recv c (Int64.to_int a3) with
              | Some s ->
                  Mem.write_bytes p.Proc.mem a2 (Bytes.of_string s);
                  ret_i (String.length s)
              | None -> Block_retry (Proc.On_recv (Int64.to_int a1))))
      | _ -> ret_i ebadf)
    else if nr = sys_send then (
      match fd_kind p a1 with
      | Some (Proc.Fd_sock cid) -> (
          match Net.find_conn t.net cid with
          | None -> ret_i econnreset
          | Some c ->
              let data = Mem.read_bytes p.Proc.mem a2 (Int64.to_int a3) in
              ret_i (Net.server_send c (Bytes.to_string data)))
      | _ -> ret_i ebadf)
    else if nr = sys_gettime then Ret t.clock
    else if nr = sys_kill then (
      post_signal t ~pid:(Int64.to_int a1) ~signum:(Int64.to_int a2);
      ret_i 0)
    else if nr = sys_rand then
      Ret (Int64.of_int (Rng.int t.rng (max 1 (Int64.to_int a1))))
    else (
      ignore a4;
      ret_i enosys)
  with
  | Mem.Fault _ -> Ret (Int64.of_int efault)
  | Bytesx.Truncated _ -> Ret (Int64.of_int efault)

(* ---------- the interpreter ---------- *)

let cond_true (regs : Proc.regs) (c : Insn.cond) =
  let z = regs.Proc.zf
  and s = regs.Proc.sf
  and cf = regs.Proc.cf
  and o = regs.Proc.of_ in
  match c with
  | Insn.Eq -> z
  | Insn.Ne -> not z
  | Insn.Lt -> s <> o
  | Insn.Le -> z || s <> o
  | Insn.Gt -> (not z) && s = o
  | Insn.Ge -> s = o
  | Insn.Ult -> cf
  | Insn.Ule -> cf || z
  | Insn.Ugt -> (not cf) && not z
  | Insn.Uge -> not cf

let set_cmp_flags (regs : Proc.regs) a b =
  let diff = Int64.sub a b in
  regs.Proc.zf <- Int64.equal a b;
  regs.Proc.sf <- Int64.compare diff 0L < 0;
  regs.Proc.cf <- Int64.unsigned_compare a b < 0;
  (* signed overflow of a - b *)
  let sa = Int64.compare a 0L < 0
  and sb = Int64.compare b 0L < 0
  and sd = Int64.compare diff 0L < 0 in
  regs.Proc.of_ <- (sa <> sb) && sd <> sa

let set_test_flags (regs : Proc.regs) a b =
  let v = Int64.logand a b in
  regs.Proc.zf <- Int64.equal v 0L;
  regs.Proc.sf <- Int64.compare v 0L < 0;
  regs.Proc.cf <- false;
  regs.Proc.of_ <- false

(** Execute one already-decoded instruction of [p] (anything but [Int3],
    which never enters the code cache); assumes [p] runnable. [cached]
    selects the cost model only: interpreted instructions cost one cycle,
    pre-decoded ones 1/32 (decode was paid once, when the block was
    built). Every other effect — block bookkeeping, trace/insn hooks,
    [Obs] counters, signal delivery — is identical in both modes, which
    is what keeps cached runs replay-exact against interpreted ones. *)
let exec_decoded t (p : Proc.t) insn len ~cached =
  let regs = p.Proc.regs in
  let rip = regs.Proc.rip in
  let mem = p.Proc.mem in
  (
      if p.Proc.block_start = None then p.Proc.block_start <- Some rip;
      (match t.on_insn with Some hook -> hook p insn | None -> ());
      let next = Int64.add rip (Int64.of_int len) in
      (if cached then begin
         t.cycle_frac <- t.cycle_frac + 1;
         if t.cycle_frac >= 32 then begin
           t.cycle_frac <- 0;
           t.clock <- Int64.add t.clock 1L
         end
       end
       else t.clock <- Int64.add t.clock 1L);
      p.Proc.retired <- Int64.add p.Proc.retired 1L;
      Obs.incr t.obs_steps;
      let g r = Proc.get regs r and s r v = Proc.set regs r v in
      let goto target =
        end_block t p ~next;
        regs.Proc.rip <- target
      in
      let fallthrough () = regs.Proc.rip <- next in
      try
        match insn with
        | Insn.Nop -> fallthrough ()
        | Insn.Hlt -> (
            end_block t p ~next;
            p.Proc.state <- Proc.Killed Abi.sigill)
        | Insn.Int3 -> assert false (* handled above *)
        | Insn.Mov_rr (d, src) ->
            s d (g src);
            fallthrough ()
        | Insn.Mov_ri (d, imm) ->
            s d imm;
            fallthrough ()
        | Insn.Load (d, b, off) ->
            s d (Mem.read64 mem (Int64.add (g b) (Int64.of_int off)));
            fallthrough ()
        | Insn.Store (b, off, src) ->
            Mem.write64 mem (Int64.add (g b) (Int64.of_int off)) (g src);
            fallthrough ()
        | Insn.Load8 (d, b, off) ->
            s d (Int64.of_int (Mem.read8 mem (Int64.add (g b) (Int64.of_int off))));
            fallthrough ()
        | Insn.Store8 (b, off, src) ->
            Mem.write8 mem
              (Int64.add (g b) (Int64.of_int off))
              (Int64.to_int (Int64.logand (g src) 0xffL));
            fallthrough ()
        | Insn.Add_rr (d, src) ->
            s d (Int64.add (g d) (g src));
            fallthrough ()
        | Insn.Add_ri (d, v) ->
            s d (Int64.add (g d) (Int64.of_int v));
            fallthrough ()
        | Insn.Sub_rr (d, src) ->
            s d (Int64.sub (g d) (g src));
            fallthrough ()
        | Insn.Sub_ri (d, v) ->
            s d (Int64.sub (g d) (Int64.of_int v));
            fallthrough ()
        | Insn.Imul_rr (d, src) ->
            s d (Int64.mul (g d) (g src));
            fallthrough ()
        | Insn.Idiv_rr (d, src) ->
            if g src = 0L then (
              end_block t p ~next;
              deliver_signal t p ~signum:Abi.sigfpe ~at:rip)
            else begin
              s d (Int64.div (g d) (g src));
              fallthrough ()
            end
        | Insn.Imod_rr (d, src) ->
            if g src = 0L then (
              end_block t p ~next;
              deliver_signal t p ~signum:Abi.sigfpe ~at:rip)
            else begin
              s d (Int64.rem (g d) (g src));
              fallthrough ()
            end
        | Insn.And_rr (d, src) ->
            s d (Int64.logand (g d) (g src));
            fallthrough ()
        | Insn.Or_rr (d, src) ->
            s d (Int64.logor (g d) (g src));
            fallthrough ()
        | Insn.Xor_rr (d, src) ->
            s d (Int64.logxor (g d) (g src));
            fallthrough ()
        | Insn.Shl_ri (d, n) ->
            s d (Int64.shift_left (g d) n);
            fallthrough ()
        | Insn.Shr_ri (d, n) ->
            s d (Int64.shift_right_logical (g d) n);
            fallthrough ()
        | Insn.Sar_ri (d, n) ->
            s d (Int64.shift_right (g d) n);
            fallthrough ()
        | Insn.Shl_rr (d, src) ->
            s d (Int64.shift_left (g d) (Int64.to_int (g src) land 63));
            fallthrough ()
        | Insn.Shr_rr (d, src) ->
            s d (Int64.shift_right_logical (g d) (Int64.to_int (g src) land 63));
            fallthrough ()
        | Insn.Neg d ->
            s d (Int64.neg (g d));
            fallthrough ()
        | Insn.Not d ->
            s d (Int64.lognot (g d));
            fallthrough ()
        | Insn.Cmp_rr (a, b) ->
            set_cmp_flags regs (g a) (g b);
            fallthrough ()
        | Insn.Cmp_ri (a, v) ->
            set_cmp_flags regs (g a) (Int64.of_int v);
            fallthrough ()
        | Insn.Test_rr (a, b) ->
            set_test_flags regs (g a) (g b);
            fallthrough ()
        | Insn.Jmp rel -> goto (Int64.add next (Int64.of_int rel))
        | Insn.Jcc (c, rel) ->
            if cond_true regs c then goto (Int64.add next (Int64.of_int rel))
            else begin
              (* conditional not taken still ends the block (drcov-style) *)
              end_block t p ~next;
              fallthrough ()
            end
        | Insn.Call rel ->
            let rsp = Int64.sub (g Reg.Rsp) 8L in
            Mem.write64 mem rsp next;
            s Reg.Rsp rsp;
            goto (Int64.add next (Int64.of_int rel))
        | Insn.Call_r r ->
            let target = g r in
            let rsp = Int64.sub (g Reg.Rsp) 8L in
            Mem.write64 mem rsp next;
            s Reg.Rsp rsp;
            goto target
        | Insn.Jmp_r r -> goto (g r)
        | Insn.Ret ->
            let rsp = g Reg.Rsp in
            let target = Mem.read64 mem rsp in
            s Reg.Rsp (Int64.add rsp 8L);
            goto target
        | Insn.Push r ->
            let rsp = Int64.sub (g Reg.Rsp) 8L in
            Mem.write64 mem rsp (g r);
            s Reg.Rsp rsp;
            fallthrough ()
        | Insn.Pop r ->
            let rsp = g Reg.Rsp in
            s r (Mem.read64 mem rsp);
            s Reg.Rsp (Int64.add rsp 8L);
            fallthrough ()
        | Insn.Lea (d, off) ->
            s d (Int64.add next (Int64.of_int off));
            fallthrough ()
        | Insn.Syscall -> (
            end_block t p ~next;
            t.clock <- Int64.add t.clock (Int64.of_int t.syscall_cost);
            match do_syscall t p with
            | exception Seccomp_denied ->
                deliver_signal t p ~signum:Abi.sigsys ~at:rip
            | Ret v ->
                s Reg.Rax v;
                fallthrough ()
            | Block_retry reason ->
                (* rip stays at the syscall: it re-executes on wake *)
                p.Proc.state <- Proc.Blocked reason
            | Block_after reason ->
                s Reg.Rax 0L;
                fallthrough ();
                p.Proc.state <- Proc.Blocked reason
            | Terminate st ->
                p.Proc.state <- st
            | Sigret -> ())
      with Mem.Fault (_, _) -> deliver_signal t p ~signum:Abi.sigsegv ~at:rip)

(** Execute exactly one instruction of [p]; assumes [p] runnable. *)
let step_insn t (p : Proc.t) =
  let rip = p.Proc.regs.Proc.rip in
  let mem = p.Proc.mem in
  match
    Decode.decode (fun i -> Mem.fetch8 mem (Int64.add rip (Int64.of_int i)))
  with
  | exception Mem.Fault (a, _) ->
      ignore a;
      deliver_signal t p ~signum:Abi.sigsegv ~at:rip
  | exception Decode.Invalid_opcode _ ->
      deliver_signal t p ~signum:Abi.sigill ~at:rip
  | Insn.Int3, _ ->
      (* breakpoint: saved rip = the int3 itself, so a verifier handler can
         restore the original byte and simply sigreturn to retry (§3.2.3) *)
      t.clock <- Int64.add t.clock 1L;
      Obs.incr t.obs_traps;
      if Obs.enabled () then begin
        Obs.incr
          (Obs.counter
             ~labels:[ ("pid", string_of_int p.Proc.pid) ]
             "machine.traps");
        Obs.event ~kind:"trap"
          (Printf.sprintf "pid=%d comm=%s rip=0x%Lx" p.Proc.pid p.Proc.comm rip)
      end;
      deliver_signal t p ~signum:Abi.sigtrap ~at:rip
  | insn, len -> exec_decoded t p insn len ~cached:false

let step t (p : Proc.t) =
  step_insn t p;
  (* exit-syscall and hlt deaths bypass deliver_signal *)
  notify_exit t p

(* ---------- scheduler ---------- *)

let wake_check t (p : Proc.t) =
  match p.Proc.state with
  | Proc.Blocked (Proc.On_sleep wake) -> if t.clock >= wake then p.Proc.state <- Proc.Runnable
  | Proc.Blocked (Proc.On_accept fd) -> (
      match Hashtbl.find_opt p.Proc.fds fd with
      | Some (Proc.Fd_listener port) -> (
          match
            Net.find_listener_owned t.net ~port
              ~owner:(tree_root t p.Proc.pid)
          with
          | Some l when l.Net.backlog <> [] -> p.Proc.state <- Proc.Runnable
          | _ -> ())
      | _ -> p.Proc.state <- Proc.Runnable (* fd vanished: let syscall fail *))
  | Proc.Blocked (Proc.On_recv fd) -> (
      match Hashtbl.find_opt p.Proc.fds fd with
      | Some (Proc.Fd_sock cid) -> (
          match Net.find_conn t.net cid with
          | Some c -> if Net.server_pending c > 0 || c.Net.client_closed then p.Proc.state <- Proc.Runnable
          | None -> p.Proc.state <- Proc.Runnable)
      | _ -> p.Proc.state <- Proc.Runnable)
  | _ -> ()

let runnable t =
  List.filter
    (fun p -> (not p.Proc.frozen) && p.Proc.state = Proc.Runnable)
    (live_procs t)

let quantum = 256

(** Run the machine for at most [max_cycles] virtual cycles. Returns
    [`Idle] when every live process is blocked on external input (the host
    should inject work), [`Budget] when the cycle budget ran out, and
    [`Dead] when no live processes remain. *)
let run t ~max_cycles =
  let deadline = Int64.add t.clock (Int64.of_int max_cycles) in
  let rec loop () =
    if t.clock >= deadline then `Budget
    else begin
      List.iter (wake_check t) (live_procs t);
      match runnable t with
      | [] ->
          (* advance the clock to the earliest sleeper, if any *)
          let sleepers =
            List.filter_map
              (fun p ->
                match p.Proc.state with
                | Proc.Blocked (Proc.On_sleep w) when not p.Proc.frozen -> Some w
                | _ -> None)
              (live_procs t)
          in
          if live_procs t = [] then `Dead
          else (
            match sleepers with
            | [] -> `Idle
            | ws ->
                let earliest = List.fold_left min (List.hd ws) ws in
                t.clock <- max t.clock (min earliest deadline);
                if t.clock >= deadline then `Budget else loop ())
      | rs ->
          List.iter
            (fun p ->
              let budget = ref quantum in
              while
                !budget > 0 && p.Proc.state = Proc.Runnable && (not p.Proc.frozen)
                && t.clock < deadline
              do
                match t.exec_cached with
                | Some exec when t.on_insn = None -> (
                    (* decoded-block dispatch; per-insn hooks (the slicer)
                       force the single-step interpreter *)
                    match exec p ~fuel:!budget with
                    | 0 ->
                        (* cache declined (int3 at rip, fault, injected
                           dispatch fault): single-step this one *)
                        step t p;
                        decr budget
                    | n ->
                        budget := !budget - n;
                        notify_exit t p)
                | _ ->
                    step t p;
                    decr budget
              done)
            rs;
          loop ()
    end
  in
  loop ()

(** Run until [pred] holds, all processes die, or the budget expires. *)
let run_until t ~max_cycles ~pred =
  let deadline = Int64.add t.clock (Int64.of_int max_cycles) in
  let rec go () =
    if pred () then `Pred
    else if t.clock >= deadline then `Budget
    else
      match run t ~max_cycles:(min 10_000 (Int64.to_int (Int64.sub deadline t.clock))) with
      | `Dead -> `Dead
      | `Idle -> if pred () then `Pred else `Idle
      | `Budget -> go ()
  in
  go ()

(* ---------- checkpoint support ---------- *)

(* freeze/thaw/reap are idempotent: the transactional cut pipeline may
   re-run or unwind any stage, so "already frozen", "already thawed" and
   "already reaped" must all be harmless no-ops. *)

let freeze t ~pid =
  match proc t pid with
  | Some p when Proc.is_live p -> p.Proc.frozen <- true
  | Some _ | None -> ()

let thaw t ~pid =
  match proc t pid with Some p -> p.Proc.frozen <- false | None -> ()

(** Remove a process (after its image was dumped, before restore). The
    pid stays in [spawn_order] so a later {!install} keeps its
    scheduling slot. *)
let reap t ~pid = Hashtbl.remove t.procs pid

(** Install a restored process object (CRIU restore). *)
let install t (p : Proc.t) =
  Hashtbl.replace t.procs p.Proc.pid p;
  if not (List.mem p.Proc.pid t.spawn_order) then
    t.spawn_order <- p.Proc.pid :: t.spawn_order;
  t.next_pid <- max t.next_pid (p.Proc.pid + 1)
